# Empty compiler generated dependencies file for inpg_tour.
# This may be replaced when dependencies are built.
