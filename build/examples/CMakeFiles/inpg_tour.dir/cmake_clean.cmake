file(REMOVE_RECURSE
  "CMakeFiles/inpg_tour.dir/inpg_tour.cpp.o"
  "CMakeFiles/inpg_tour.dir/inpg_tour.cpp.o.d"
  "inpg_tour"
  "inpg_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inpg_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
