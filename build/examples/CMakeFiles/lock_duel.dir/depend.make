# Empty dependencies file for lock_duel.
# This may be replaced when dependencies are built.
