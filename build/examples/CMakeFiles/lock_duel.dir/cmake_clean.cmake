file(REMOVE_RECURSE
  "CMakeFiles/lock_duel.dir/lock_duel.cpp.o"
  "CMakeFiles/lock_duel.dir/lock_duel.cpp.o.d"
  "lock_duel"
  "lock_duel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_duel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
