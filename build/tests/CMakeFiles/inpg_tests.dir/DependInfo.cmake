
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_coherence.cc" "tests/CMakeFiles/inpg_tests.dir/test_coherence.cc.o" "gcc" "tests/CMakeFiles/inpg_tests.dir/test_coherence.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/inpg_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/inpg_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_demotion.cc" "tests/CMakeFiles/inpg_tests.dir/test_demotion.cc.o" "gcc" "tests/CMakeFiles/inpg_tests.dir/test_demotion.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/inpg_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/inpg_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_inpg.cc" "tests/CMakeFiles/inpg_tests.dir/test_inpg.cc.o" "gcc" "tests/CMakeFiles/inpg_tests.dir/test_inpg.cc.o.d"
  "/root/repo/tests/test_inpg_edge.cc" "tests/CMakeFiles/inpg_tests.dir/test_inpg_edge.cc.o" "gcc" "tests/CMakeFiles/inpg_tests.dir/test_inpg_edge.cc.o.d"
  "/root/repo/tests/test_locks.cc" "tests/CMakeFiles/inpg_tests.dir/test_locks.cc.o" "gcc" "tests/CMakeFiles/inpg_tests.dir/test_locks.cc.o.d"
  "/root/repo/tests/test_matrix.cc" "tests/CMakeFiles/inpg_tests.dir/test_matrix.cc.o" "gcc" "tests/CMakeFiles/inpg_tests.dir/test_matrix.cc.o.d"
  "/root/repo/tests/test_noc_basic.cc" "tests/CMakeFiles/inpg_tests.dir/test_noc_basic.cc.o" "gcc" "tests/CMakeFiles/inpg_tests.dir/test_noc_basic.cc.o.d"
  "/root/repo/tests/test_noc_units.cc" "tests/CMakeFiles/inpg_tests.dir/test_noc_units.cc.o" "gcc" "tests/CMakeFiles/inpg_tests.dir/test_noc_units.cc.o.d"
  "/root/repo/tests/test_protocol_units.cc" "tests/CMakeFiles/inpg_tests.dir/test_protocol_units.cc.o" "gcc" "tests/CMakeFiles/inpg_tests.dir/test_protocol_units.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/inpg_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/inpg_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/inpg_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/inpg_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/inpg_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/inpg_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/inpg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
