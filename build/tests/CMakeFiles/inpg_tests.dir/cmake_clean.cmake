file(REMOVE_RECURSE
  "CMakeFiles/inpg_tests.dir/test_coherence.cc.o"
  "CMakeFiles/inpg_tests.dir/test_coherence.cc.o.d"
  "CMakeFiles/inpg_tests.dir/test_common.cc.o"
  "CMakeFiles/inpg_tests.dir/test_common.cc.o.d"
  "CMakeFiles/inpg_tests.dir/test_demotion.cc.o"
  "CMakeFiles/inpg_tests.dir/test_demotion.cc.o.d"
  "CMakeFiles/inpg_tests.dir/test_harness.cc.o"
  "CMakeFiles/inpg_tests.dir/test_harness.cc.o.d"
  "CMakeFiles/inpg_tests.dir/test_inpg.cc.o"
  "CMakeFiles/inpg_tests.dir/test_inpg.cc.o.d"
  "CMakeFiles/inpg_tests.dir/test_inpg_edge.cc.o"
  "CMakeFiles/inpg_tests.dir/test_inpg_edge.cc.o.d"
  "CMakeFiles/inpg_tests.dir/test_locks.cc.o"
  "CMakeFiles/inpg_tests.dir/test_locks.cc.o.d"
  "CMakeFiles/inpg_tests.dir/test_matrix.cc.o"
  "CMakeFiles/inpg_tests.dir/test_matrix.cc.o.d"
  "CMakeFiles/inpg_tests.dir/test_noc_basic.cc.o"
  "CMakeFiles/inpg_tests.dir/test_noc_basic.cc.o.d"
  "CMakeFiles/inpg_tests.dir/test_noc_units.cc.o"
  "CMakeFiles/inpg_tests.dir/test_noc_units.cc.o.d"
  "CMakeFiles/inpg_tests.dir/test_protocol_units.cc.o"
  "CMakeFiles/inpg_tests.dir/test_protocol_units.cc.o.d"
  "CMakeFiles/inpg_tests.dir/test_sim.cc.o"
  "CMakeFiles/inpg_tests.dir/test_sim.cc.o.d"
  "CMakeFiles/inpg_tests.dir/test_trace.cc.o"
  "CMakeFiles/inpg_tests.dir/test_trace.cc.o.d"
  "CMakeFiles/inpg_tests.dir/test_workload.cc.o"
  "CMakeFiles/inpg_tests.dir/test_workload.cc.o.d"
  "inpg_tests"
  "inpg_tests.pdb"
  "inpg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inpg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
