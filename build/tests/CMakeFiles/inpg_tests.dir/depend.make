# Empty dependencies file for inpg_tests.
# This may be replaced when dependencies are built.
