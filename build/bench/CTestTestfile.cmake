# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_table1_config "/root/repo/build/bench/bench_table1_config" "quick=1" "cs_scale=0.004" "seeds=1")
set_tests_properties(smoke_bench_table1_config PROPERTIES  LABELS "bench_smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig02_lco "/root/repo/build/bench/bench_fig02_lco" "quick=1" "cs_scale=0.004" "seeds=1")
set_tests_properties(smoke_bench_fig02_lco PROPERTIES  LABELS "bench_smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig07_synthesis "/root/repo/build/bench/bench_fig07_synthesis" "quick=1" "cs_scale=0.004" "seeds=1")
set_tests_properties(smoke_bench_fig07_synthesis PROPERTIES  LABELS "bench_smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig08_cs_char "/root/repo/build/bench/bench_fig08_cs_char" "quick=1" "cs_scale=0.004" "seeds=1")
set_tests_properties(smoke_bench_fig08_cs_char PROPERTIES  LABELS "bench_smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig09_profile "/root/repo/build/bench/bench_fig09_profile" "quick=1" "cs_scale=0.004" "seeds=1")
set_tests_properties(smoke_bench_fig09_profile PROPERTIES  LABELS "bench_smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig10_rtt "/root/repo/build/bench/bench_fig10_rtt" "quick=1" "cs_scale=0.004" "seeds=1")
set_tests_properties(smoke_bench_fig10_rtt PROPERTIES  LABELS "bench_smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig11_cs_expedition "/root/repo/build/bench/bench_fig11_cs_expedition" "quick=1" "cs_scale=0.004" "seeds=1")
set_tests_properties(smoke_bench_fig11_cs_expedition PROPERTIES  LABELS "bench_smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig12_roi "/root/repo/build/bench/bench_fig12_roi" "quick=1" "cs_scale=0.004" "seeds=1")
set_tests_properties(smoke_bench_fig12_roi PROPERTIES  LABELS "bench_smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig13_primitives "/root/repo/build/bench/bench_fig13_primitives" "quick=1" "cs_scale=0.004" "seeds=1")
set_tests_properties(smoke_bench_fig13_primitives PROPERTIES  LABELS "bench_smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig14_deployment "/root/repo/build/bench/bench_fig14_deployment" "quick=1" "cs_scale=0.004" "seeds=1")
set_tests_properties(smoke_bench_fig14_deployment PROPERTIES  LABELS "bench_smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig15_scaling "/root/repo/build/bench/bench_fig15_scaling" "quick=1" "cs_scale=0.004" "seeds=1")
set_tests_properties(smoke_bench_fig15_scaling PROPERTIES  LABELS "bench_smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablation "/root/repo/build/bench/bench_ablation" "quick=1" "cs_scale=0.004" "seeds=1")
set_tests_properties(smoke_bench_ablation PROPERTIES  LABELS "bench_smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablation_quick "/root/repo/build/bench/bench_ablation" "quick=1" "cs_scale=0.004" "benchmark=md")
set_tests_properties(smoke_bench_ablation_quick PROPERTIES  LABELS "bench_smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
