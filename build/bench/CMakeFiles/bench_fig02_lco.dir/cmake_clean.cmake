file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_lco.dir/bench_fig02_lco.cc.o"
  "CMakeFiles/bench_fig02_lco.dir/bench_fig02_lco.cc.o.d"
  "bench_fig02_lco"
  "bench_fig02_lco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_lco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
