# Empty compiler generated dependencies file for bench_fig02_lco.
# This may be replaced when dependencies are built.
