# Empty dependencies file for bench_fig09_profile.
# This may be replaced when dependencies are built.
