file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_primitives.dir/bench_fig13_primitives.cc.o"
  "CMakeFiles/bench_fig13_primitives.dir/bench_fig13_primitives.cc.o.d"
  "bench_fig13_primitives"
  "bench_fig13_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
