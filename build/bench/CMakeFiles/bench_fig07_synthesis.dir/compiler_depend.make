# Empty compiler generated dependencies file for bench_fig07_synthesis.
# This may be replaced when dependencies are built.
