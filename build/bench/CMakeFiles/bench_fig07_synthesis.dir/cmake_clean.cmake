file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_synthesis.dir/bench_fig07_synthesis.cc.o"
  "CMakeFiles/bench_fig07_synthesis.dir/bench_fig07_synthesis.cc.o.d"
  "bench_fig07_synthesis"
  "bench_fig07_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
