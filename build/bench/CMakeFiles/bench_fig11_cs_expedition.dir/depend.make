# Empty dependencies file for bench_fig11_cs_expedition.
# This may be replaced when dependencies are built.
