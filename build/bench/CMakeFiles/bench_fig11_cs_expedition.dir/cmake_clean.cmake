file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cs_expedition.dir/bench_fig11_cs_expedition.cc.o"
  "CMakeFiles/bench_fig11_cs_expedition.dir/bench_fig11_cs_expedition.cc.o.d"
  "bench_fig11_cs_expedition"
  "bench_fig11_cs_expedition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cs_expedition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
