file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_deployment.dir/bench_fig14_deployment.cc.o"
  "CMakeFiles/bench_fig14_deployment.dir/bench_fig14_deployment.cc.o.d"
  "bench_fig14_deployment"
  "bench_fig14_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
