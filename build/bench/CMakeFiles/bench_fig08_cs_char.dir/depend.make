# Empty dependencies file for bench_fig08_cs_char.
# This may be replaced when dependencies are built.
