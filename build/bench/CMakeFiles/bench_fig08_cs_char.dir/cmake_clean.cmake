file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_cs_char.dir/bench_fig08_cs_char.cc.o"
  "CMakeFiles/bench_fig08_cs_char.dir/bench_fig08_cs_char.cc.o.d"
  "bench_fig08_cs_char"
  "bench_fig08_cs_char.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_cs_char.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
