file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_roi.dir/bench_fig12_roi.cc.o"
  "CMakeFiles/bench_fig12_roi.dir/bench_fig12_roi.cc.o.d"
  "bench_fig12_roi"
  "bench_fig12_roi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_roi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
