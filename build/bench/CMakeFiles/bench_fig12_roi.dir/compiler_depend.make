# Empty compiler generated dependencies file for bench_fig12_roi.
# This may be replaced when dependencies are built.
