# Empty compiler generated dependencies file for inpg_sim.
# This may be replaced when dependencies are built.
