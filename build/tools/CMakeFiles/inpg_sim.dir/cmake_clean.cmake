file(REMOVE_RECURSE
  "CMakeFiles/inpg_sim.dir/inpg_sim.cc.o"
  "CMakeFiles/inpg_sim.dir/inpg_sim.cc.o.d"
  "inpg_sim"
  "inpg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inpg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
