
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coh/coherence_msg.cc" "src/CMakeFiles/inpg.dir/coh/coherence_msg.cc.o" "gcc" "src/CMakeFiles/inpg.dir/coh/coherence_msg.cc.o.d"
  "/root/repo/src/coh/coherent_system.cc" "src/CMakeFiles/inpg.dir/coh/coherent_system.cc.o" "gcc" "src/CMakeFiles/inpg.dir/coh/coherent_system.cc.o.d"
  "/root/repo/src/coh/directory.cc" "src/CMakeFiles/inpg.dir/coh/directory.cc.o" "gcc" "src/CMakeFiles/inpg.dir/coh/directory.cc.o.d"
  "/root/repo/src/coh/golden_memory.cc" "src/CMakeFiles/inpg.dir/coh/golden_memory.cc.o" "gcc" "src/CMakeFiles/inpg.dir/coh/golden_memory.cc.o.d"
  "/root/repo/src/coh/l1_controller.cc" "src/CMakeFiles/inpg.dir/coh/l1_controller.cc.o" "gcc" "src/CMakeFiles/inpg.dir/coh/l1_controller.cc.o.d"
  "/root/repo/src/coh/memory_controller.cc" "src/CMakeFiles/inpg.dir/coh/memory_controller.cc.o" "gcc" "src/CMakeFiles/inpg.dir/coh/memory_controller.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/inpg.dir/common/config.cc.o" "gcc" "src/CMakeFiles/inpg.dir/common/config.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/inpg.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/inpg.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/inpg.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/inpg.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/inpg.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/inpg.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/inpg.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/inpg.dir/common/stats.cc.o.d"
  "/root/repo/src/common/strutil.cc" "src/CMakeFiles/inpg.dir/common/strutil.cc.o" "gcc" "src/CMakeFiles/inpg.dir/common/strutil.cc.o.d"
  "/root/repo/src/common/trace.cc" "src/CMakeFiles/inpg.dir/common/trace.cc.o" "gcc" "src/CMakeFiles/inpg.dir/common/trace.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/inpg.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/inpg.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/mechanism.cc" "src/CMakeFiles/inpg.dir/harness/mechanism.cc.o" "gcc" "src/CMakeFiles/inpg.dir/harness/mechanism.cc.o.d"
  "/root/repo/src/harness/system.cc" "src/CMakeFiles/inpg.dir/harness/system.cc.o" "gcc" "src/CMakeFiles/inpg.dir/harness/system.cc.o.d"
  "/root/repo/src/harness/system_config.cc" "src/CMakeFiles/inpg.dir/harness/system_config.cc.o" "gcc" "src/CMakeFiles/inpg.dir/harness/system_config.cc.o.d"
  "/root/repo/src/harness/table_printer.cc" "src/CMakeFiles/inpg.dir/harness/table_printer.cc.o" "gcc" "src/CMakeFiles/inpg.dir/harness/table_printer.cc.o.d"
  "/root/repo/src/inpg/big_router.cc" "src/CMakeFiles/inpg.dir/inpg/big_router.cc.o" "gcc" "src/CMakeFiles/inpg.dir/inpg/big_router.cc.o.d"
  "/root/repo/src/inpg/lock_barrier_table.cc" "src/CMakeFiles/inpg.dir/inpg/lock_barrier_table.cc.o" "gcc" "src/CMakeFiles/inpg.dir/inpg/lock_barrier_table.cc.o.d"
  "/root/repo/src/inpg/packet_generator.cc" "src/CMakeFiles/inpg.dir/inpg/packet_generator.cc.o" "gcc" "src/CMakeFiles/inpg.dir/inpg/packet_generator.cc.o.d"
  "/root/repo/src/inpg/synthesis_model.cc" "src/CMakeFiles/inpg.dir/inpg/synthesis_model.cc.o" "gcc" "src/CMakeFiles/inpg.dir/inpg/synthesis_model.cc.o.d"
  "/root/repo/src/noc/arbiter.cc" "src/CMakeFiles/inpg.dir/noc/arbiter.cc.o" "gcc" "src/CMakeFiles/inpg.dir/noc/arbiter.cc.o.d"
  "/root/repo/src/noc/flit.cc" "src/CMakeFiles/inpg.dir/noc/flit.cc.o" "gcc" "src/CMakeFiles/inpg.dir/noc/flit.cc.o.d"
  "/root/repo/src/noc/input_unit.cc" "src/CMakeFiles/inpg.dir/noc/input_unit.cc.o" "gcc" "src/CMakeFiles/inpg.dir/noc/input_unit.cc.o.d"
  "/root/repo/src/noc/network.cc" "src/CMakeFiles/inpg.dir/noc/network.cc.o" "gcc" "src/CMakeFiles/inpg.dir/noc/network.cc.o.d"
  "/root/repo/src/noc/network_interface.cc" "src/CMakeFiles/inpg.dir/noc/network_interface.cc.o" "gcc" "src/CMakeFiles/inpg.dir/noc/network_interface.cc.o.d"
  "/root/repo/src/noc/output_unit.cc" "src/CMakeFiles/inpg.dir/noc/output_unit.cc.o" "gcc" "src/CMakeFiles/inpg.dir/noc/output_unit.cc.o.d"
  "/root/repo/src/noc/packet.cc" "src/CMakeFiles/inpg.dir/noc/packet.cc.o" "gcc" "src/CMakeFiles/inpg.dir/noc/packet.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/CMakeFiles/inpg.dir/noc/router.cc.o" "gcc" "src/CMakeFiles/inpg.dir/noc/router.cc.o.d"
  "/root/repo/src/noc/routing.cc" "src/CMakeFiles/inpg.dir/noc/routing.cc.o" "gcc" "src/CMakeFiles/inpg.dir/noc/routing.cc.o.d"
  "/root/repo/src/ocor/ocor_policy.cc" "src/CMakeFiles/inpg.dir/ocor/ocor_policy.cc.o" "gcc" "src/CMakeFiles/inpg.dir/ocor/ocor_policy.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/inpg.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/inpg.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/inpg.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/inpg.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sync/abql_lock.cc" "src/CMakeFiles/inpg.dir/sync/abql_lock.cc.o" "gcc" "src/CMakeFiles/inpg.dir/sync/abql_lock.cc.o.d"
  "/root/repo/src/sync/lock_manager.cc" "src/CMakeFiles/inpg.dir/sync/lock_manager.cc.o" "gcc" "src/CMakeFiles/inpg.dir/sync/lock_manager.cc.o.d"
  "/root/repo/src/sync/lock_primitive.cc" "src/CMakeFiles/inpg.dir/sync/lock_primitive.cc.o" "gcc" "src/CMakeFiles/inpg.dir/sync/lock_primitive.cc.o.d"
  "/root/repo/src/sync/mcs_lock.cc" "src/CMakeFiles/inpg.dir/sync/mcs_lock.cc.o" "gcc" "src/CMakeFiles/inpg.dir/sync/mcs_lock.cc.o.d"
  "/root/repo/src/sync/qsl_lock.cc" "src/CMakeFiles/inpg.dir/sync/qsl_lock.cc.o" "gcc" "src/CMakeFiles/inpg.dir/sync/qsl_lock.cc.o.d"
  "/root/repo/src/sync/tas_lock.cc" "src/CMakeFiles/inpg.dir/sync/tas_lock.cc.o" "gcc" "src/CMakeFiles/inpg.dir/sync/tas_lock.cc.o.d"
  "/root/repo/src/sync/thread_context.cc" "src/CMakeFiles/inpg.dir/sync/thread_context.cc.o" "gcc" "src/CMakeFiles/inpg.dir/sync/thread_context.cc.o.d"
  "/root/repo/src/sync/ticket_lock.cc" "src/CMakeFiles/inpg.dir/sync/ticket_lock.cc.o" "gcc" "src/CMakeFiles/inpg.dir/sync/ticket_lock.cc.o.d"
  "/root/repo/src/workload/benchmark_profile.cc" "src/CMakeFiles/inpg.dir/workload/benchmark_profile.cc.o" "gcc" "src/CMakeFiles/inpg.dir/workload/benchmark_profile.cc.o.d"
  "/root/repo/src/workload/phase_recorder.cc" "src/CMakeFiles/inpg.dir/workload/phase_recorder.cc.o" "gcc" "src/CMakeFiles/inpg.dir/workload/phase_recorder.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/inpg.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/inpg.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
