# Empty compiler generated dependencies file for inpg.
# This may be replaced when dependencies are built.
