file(REMOVE_RECURSE
  "libinpg.a"
)
