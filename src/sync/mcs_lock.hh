/**
 * @file
 * Mellor-Crummey & Scott (MCS) list lock [26]: threads enqueue with an
 * atomic swap on a tail pointer and spin on their own qnode flag; a
 * releaser hands the lock directly to its successor, eliminating most
 * cache-line bouncing.
 */

#ifndef INPG_SYNC_MCS_LOCK_HH
#define INPG_SYNC_MCS_LOCK_HH

#include <vector>

#include "sync/lock_primitive.hh"

namespace inpg {

/**
 * MCS lock. The tail pointer holds 0 (free) or thread-id + 1; each
 * thread's qnode is two cache lines: `next` (successor id + 1, or 0)
 * and `locked` (1 while waiting).
 */
class McsLock : public LockPrimitive
{
  public:
    /**
     * @param tail_addr    queue tail pointer line
     * @param next_addrs   per-thread successor-pointer lines
     * @param locked_addrs per-thread wait-flag lines
     */
    McsLock(std::string name, CoherentSystem &system, Simulator &sim,
            const SyncConfig &cfg, int threads, Addr tail_addr,
            std::vector<Addr> next_addrs, std::vector<Addr> locked_addrs);

    void acquire(ThreadId t, DoneFn done,
                 ThreadHooks *hooks = nullptr) override;
    void release(ThreadId t, DoneFn done) override;
    LockKind kind() const override { return LockKind::Mcs; }

  protected:
    /**
     * Hook for QslLock: polls of the locked flag route through here so
     * the subclass can count retries and divert to the sleep phase.
     */
    virtual void pollLocked(ThreadId t);

    /** Complete an acquire (lock handed to t). */
    void finishAcquire(ThreadId t);

    /**
     * Hook for QslLock: called after the releaser's hand-off store to
     * `locked[successor]` completed, identifying the successor.
     */
    virtual void
    onHandoff(ThreadId successor)
    {
        (void)successor;
    }

    struct PerThread {
        DoneFn done;
        int retries = 0;
    };

    PerThread &state(ThreadId t)
    {
        return threadState[static_cast<std::size_t>(t)];
    }

  private:
    void waitForSuccessor(ThreadId t, DoneFn done);

    Addr tailAddr;
    std::vector<Addr> nextAddrs;
    std::vector<Addr> lockedAddrs;
    std::vector<PerThread> threadState;

  protected:
    Addr lockedAddr(ThreadId t)
    {
        return lockedAddrs[static_cast<std::size_t>(t)];
    }
};

} // namespace inpg

#endif // INPG_SYNC_MCS_LOCK_HH
