/**
 * @file
 * Queue spin-lock (QSL): the default synchronization primitive of
 * modern OSes (Linux 4.2, paper Section 2.1 #5).
 *
 * A thread spins on the lock word for a bounded number of retries
 * (Table 1: 128), then context-switches out and parks on the lock's OS
 * request queue; the releasing holder wakes the queue head, which
 * re-enters the spin phase. Model notes (see DESIGN.md): the spin
 * phase issues test-and-swap attempts on the lock word -- sleeping
 * threads must abandon the spin queue, which rules out literal MCS
 * queueing in the spin phase; the retry loop is exactly what OCOR's
 * RTR instrumentation attaches to (spin packets carry RTR priority,
 * wakeup packets the lowest level).
 */

#ifndef INPG_SYNC_QSL_LOCK_HH
#define INPG_SYNC_QSL_LOCK_HH

#include <deque>
#include <vector>

#include "sync/lock_primitive.hh"

namespace inpg {

/** Queue spin-lock: bounded spin, then sleep on an OS queue. */
class QslLock : public LockPrimitive
{
  public:
    QslLock(std::string name, CoherentSystem &system, Simulator &sim,
            const SyncConfig &cfg, int threads, Addr lock_addr);

    void acquire(ThreadId t, DoneFn done,
                 ThreadHooks *hooks = nullptr) override;
    void release(ThreadId t, DoneFn done) override;
    LockKind kind() const override { return LockKind::Qsl; }

    /** Threads currently parked on the OS queue. */
    std::size_t sleepers() const { return sleepQueue.size(); }

  private:
    void readPhase(ThreadId t);
    void swapPhase(ThreadId t, bool force_exclusive = false);
    void considerSleep(ThreadId t);
    void commitOrAbortSleep(ThreadId t);
    void wake(ThreadId t);
    int remainingRetries(ThreadId t) const;

    struct PerThread {
        DoneFn done;
        ThreadHooks *hooks = nullptr;
        int retries = 0;
        /** Cycle the current spin phase began (retry budget is time-
         *  based: 128 retries x spin interval of quick polls; a slow
         *  coherence round trip consumes several retries' worth). */
        Cycle spinStart = 0;
        bool sleeping = false;
        /** Woken from the sleep phase: packets use wakeup priority. */
        bool wokenUp = false;
    };

    /** True when the thread's spin budget is exhausted. */
    bool budgetExhausted(ThreadId t) const;

    Addr addr;
    std::vector<PerThread> threadState;

    /** The lock's OS request queue (FIFO). */
    std::deque<ThreadId> sleepQueue;
};

} // namespace inpg

#endif // INPG_SYNC_QSL_LOCK_HH
