#include "sync/lock_primitive.hh"

#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace inpg {

namespace {

inline LcoTracker *
lcoOf(Simulator &sim)
{
    Telemetry *t = sim.telemetry();
    return t ? t->lco : nullptr;
}

} // namespace

const char *
lockKindName(LockKind kind)
{
    switch (kind) {
      case LockKind::Tas:
        return "TAS";
      case LockKind::Ticket:
        return "TTL";
      case LockKind::Abql:
        return "ABQL";
      case LockKind::Mcs:
        return "MCS";
      case LockKind::Qsl:
        return "QSL";
    }
    return "?";
}

LockPrimitive::LockPrimitive(std::string lock_name, CoherentSystem &system,
                             Simulator &simulator, const SyncConfig &config,
                             int threads)
    : sys(system), sim(simulator), cfg(config), ocorPolicy(config.ocor),
      numThreads(threads), lockName(std::move(lock_name))
{
    INPG_ASSERT(threads > 0, "lock with no threads");
    stats = StatGroup(lockName);
}

void
LockPrimitive::applyOcorPriority(ThreadId t, int remaining_retries)
{
    if (!cfg.ocorEnabled)
        return;
    int prio = remaining_retries < 0
        ? ocorPolicy.wakeupPriority()
        : ocorPolicy.spinPriority(remaining_retries);
    l1(t).setNextRequestPriority(prio);
}

void
LockPrimitive::markAcquireStart(ThreadId t)
{
    if (LcoTracker *lco = lcoOf(sim))
        lco->acquireBegin(t, sim.now());
}

void
LockPrimitive::markSleepBegin(ThreadId t)
{
    if (LcoTracker *lco = lcoOf(sim))
        lco->sleepBegin(t, sim.now());
}

void
LockPrimitive::markSleepEnd(ThreadId t)
{
    if (LcoTracker *lco = lcoOf(sim))
        lco->sleepEnd(t, sim.now());
}

void
LockPrimitive::markAcquired(ThreadId t)
{
    if (LcoTracker *lco = lcoOf(sim))
        lco->acquireEnd(t, sim.now());
    ++numHolders;
    INPG_ASSERT(numHolders == 1,
                "mutual exclusion violated on %s: thread %d acquired "
                "while thread %d holds",
                lockName.c_str(), t, holderThread);
    holderThread = t;
    ++stats.counter("acquisitions");
}

void
LockPrimitive::markReleased(ThreadId t)
{
    INPG_ASSERT(numHolders == 1 && holderThread == t,
                "thread %d released %s without holding it", t,
                lockName.c_str());
    --numHolders;
    holderThread = -1;
    ++stats.counter("releases");
}

} // namespace inpg
