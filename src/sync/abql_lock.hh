/**
 * @file
 * Array-based queuing lock (ABQL) [2, 16]: threads take FIFO positions
 * with fetch-and-add on a tail counter and each spins on its own slot
 * of a flag array.
 *
 * As in the paper's evaluation, the flag array is a plain packed array:
 * with 128 B cache blocks many slots share a line, so a hand-off write
 * falsely invalidates every poller of the same line -- this is what
 * keeps ABQL's lock coherence overhead close to the ticket lock's
 * (paper Fig. 2) even though each thread polls its own slot. Slots are
 * realised as bits of line-sized words (slotsPerLine per line).
 */

#ifndef INPG_SYNC_ABQL_LOCK_HH
#define INPG_SYNC_ABQL_LOCK_HH

#include <vector>

#include "sync/lock_primitive.hh"

namespace inpg {

/** Array-based queuing lock with a packed (falsely-shared) slot array. */
class AbqlLock : public LockPrimitive
{
  public:
    /**
     * @param tail_addr      FIFO tail counter line
     * @param flag_lines     lines backing the packed flag array
     * @param slots_per_line flags packed per line (paper-style array:
     *                       lineSize / 4-byte flag = 32)
     *
     * Slot 0 (bit 0 of the first line) must be initialised to 1.
     */
    AbqlLock(std::string name, CoherentSystem &system, Simulator &sim,
             const SyncConfig &cfg, int threads, Addr tail_addr,
             std::vector<Addr> flag_lines, int slots_per_line);

    void acquire(ThreadId t, DoneFn done,
                 ThreadHooks *hooks = nullptr) override;
    void release(ThreadId t, DoneFn done) override;
    LockKind kind() const override { return LockKind::Abql; }

    int numSlots() const
    {
        return static_cast<int>(flagLines.size()) * slotsPerLine;
    }

  private:
    void pollPhase(ThreadId t);

    Addr lineOfSlot(std::size_t slot) const
    {
        return flagLines[slot / static_cast<std::size_t>(slotsPerLine)];
    }

    std::uint64_t bitOfSlot(std::size_t slot) const
    {
        return 1ULL << (slot % static_cast<std::size_t>(slotsPerLine));
    }

    struct PerThread {
        DoneFn done;
        std::size_t slot = 0;
        int retries = 0;
    };

    Addr tailAddr;
    std::vector<Addr> flagLines;
    int slotsPerLine;
    std::vector<PerThread> threadState;
};

} // namespace inpg

#endif // INPG_SYNC_ABQL_LOCK_HH
