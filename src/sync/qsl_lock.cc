#include "sync/qsl_lock.hh"

#include <algorithm>

#include "common/logging.hh"

namespace inpg {

QslLock::QslLock(std::string lock_name, CoherentSystem &system,
                 Simulator &simulator, const SyncConfig &config,
                 int threads, Addr lock_addr)
    : LockPrimitive(std::move(lock_name), system, simulator, config,
                    threads),
      addr(lock_addr), threadState(static_cast<std::size_t>(threads))
{}

int
QslLock::remainingRetries(ThreadId t) const
{
    const PerThread &st = threadState[static_cast<std::size_t>(t)];
    if (st.wokenUp)
        return -1; // wakeup-phase request: lowest priority
    // Remaining retries of the time-based budget: each retry stands
    // for one spin-interval-long poll of the lock word.
    const Cycle budget = static_cast<Cycle>(cfg.qslRetryLimit) *
                         (cfg.spinInterval + 2);
    const Cycle elapsed = sim.now() - st.spinStart;
    if (elapsed >= budget)
        return 0;
    return static_cast<int>((budget - elapsed) /
                            (cfg.spinInterval + 2));
}

bool
QslLock::budgetExhausted(ThreadId t) const
{
    // Woken threads get a fresh budget and may park again if they keep
    // losing (no unbounded priority-starved spinning).
    const PerThread &st = threadState[static_cast<std::size_t>(t)];
    const Cycle budget = static_cast<Cycle>(cfg.qslRetryLimit) *
                         (cfg.spinInterval + 2);
    return !st.sleeping && sim.now() - st.spinStart >= budget;
}

void
QslLock::acquire(ThreadId t, DoneFn done, ThreadHooks *hooks)
{
    PerThread &st = threadState[static_cast<std::size_t>(t)];
    INPG_ASSERT(!st.done, "thread %d double-acquire on %s", t,
                name().c_str());
    st.done = std::move(done);
    st.hooks = hooks;
    st.retries = 0;
    st.spinStart = sim.now();
    st.sleeping = false;
    st.wokenUp = false;
    markAcquireStart(t);
    readPhase(t);
}

void
QslLock::readPhase(ThreadId t)
{
    applyOcorPriority(t, remainingRetries(t));
    l1(t).issueLoad(addr, true, [this, t](std::uint64_t v) {
        PerThread &st = threadState[static_cast<std::size_t>(t)];
        if (v != 0) {
            ++st.retries;
            ++stats.counter("spin_reads_busy");
            if (budgetExhausted(t)) {
                considerSleep(t);
                return;
            }
            spinDelay([this, t] { readPhase(t); });
            return;
        }
        // First attempt goes for ownership directly; retries under
        // observed contention use the demotable path.
        swapPhase(t, st.retries == 0);
    });
}

void
QslLock::swapPhase(ThreadId t, bool force_exclusive)
{
    applyOcorPriority(t, remainingRetries(t));
    l1(t).issueAtomic(addr, AtomicOp::Swap, 1, 0, true,
                      [this, t](std::uint64_t old, bool demoted) {
        PerThread &st = threadState[static_cast<std::size_t>(t)];
        if (demoted && old == 0) {
            ++stats.counter("demotion_escalations");
            swapPhase(t, true);
            return;
        }
        if (!demoted && old == 0) {
            markAcquired(t);
            stats.sample("retries_per_acquire").add(st.retries);
            if (st.wokenUp)
                ++stats.counter("acquired_after_sleep");
            else
                ++stats.counter("acquired_spinning");
            DoneFn done = std::move(st.done);
            st.done = nullptr;
            done();
            return;
        }
        ++st.retries;
        ++stats.counter("swap_failures");
        if (budgetExhausted(t)) {
            considerSleep(t);
            return;
        }
        spinDelay([this, t] { readPhase(t); });
    },
    /*demotable=*/!force_exclusive);
}

void
QslLock::considerSleep(ThreadId t)
{
    // Park on the OS queue, then re-check the lock word once before
    // committing (the kernel's lost-wakeup guard): a release that found
    // the queue empty must be observed here.
    PerThread &st = threadState[static_cast<std::size_t>(t)];
    INPG_ASSERT(!st.sleeping, "thread %d sleeping twice", t);
    st.wokenUp = false;
    st.sleeping = true;
    sleepQueue.push_back(t);
    commitOrAbortSleep(t);
}

void
QslLock::commitOrAbortSleep(ThreadId t)
{
    applyOcorPriority(t, 0);
    l1(t).issueLoad(addr, true, [this, t](std::uint64_t v) {
        PerThread &st = threadState[static_cast<std::size_t>(t)];
        if (!st.sleeping) {
            // A release raced ahead and already woke us; wake() has
            // rescheduled the spin phase.
            return;
        }
        if (v == 0) {
            // Lock freed while parking: abort the sleep and retry.
            st.sleeping = false;
            sleepQueue.erase(
                std::find(sleepQueue.begin(), sleepQueue.end(), t));
            ++stats.counter("sleep_aborted");
            swapPhase(t);
            return;
        }
        // Commit: pay the context switch; the thread now only runs
        // again via wake().
        ++stats.counter("sleeps");
        markSleepBegin(t);
        if (st.hooks && st.hooks->onSleep)
            st.hooks->onSleep();
    });
}

void
QslLock::wake(ThreadId t)
{
    PerThread &st = threadState[static_cast<std::size_t>(t)];
    INPG_ASSERT(st.sleeping, "waking awake thread %d", t);
    st.sleeping = false;
    st.wokenUp = true;
    st.spinStart = sim.now();
    ++stats.counter("wakeups");
    // Context-switch out (charged on the sleep side) + wakeup cost.
    sim.scheduleIn(cfg.contextSwitchCost + cfg.wakeupCost, [this, t] {
        PerThread &state = threadState[static_cast<std::size_t>(t)];
        markSleepEnd(t);
        if (state.hooks && state.hooks->onWake)
            state.hooks->onWake();
        readPhase(t);
    });
}

void
QslLock::release(ThreadId t, DoneFn done)
{
    l1(t).issueStore(addr, 0, true,
                     [this, t, done = std::move(done)](std::uint64_t) {
                         markReleased(t);
                         if (!sleepQueue.empty()) {
                             ThreadId head = sleepQueue.front();
                             sleepQueue.pop_front();
                             wake(head);
                         }
                         done();
                     });
}

} // namespace inpg
