#include "sync/thread_context.hh"

#include "common/logging.hh"

namespace inpg {

ThreadContext::ThreadContext(Params params, CoherentSystem &system,
                             Simulator &simulator)
    : prm(std::move(params)), sys(system), sim(simulator),
      rng(prm.seed ^ (0x9e3779b97f4a7c15ULL *
                      (static_cast<std::uint64_t>(prm.tid) + 1))),
      phases(prm.tid)
{
    INPG_ASSERT(!prm.locks.empty(), "thread %d has no locks", prm.tid);
    INPG_ASSERT(prm.csData.size() == prm.locks.size(),
                "thread %d: csData/locks size mismatch", prm.tid);
    hooks.onSleep = [this] {
        phases.transition(ThreadPhase::Sleep, sim.now());
    };
    hooks.onWake = [this] {
        phases.transition(ThreadPhase::Coh, sim.now());
    };
}

void
ThreadContext::start()
{
    beginParallel();
}

void
ThreadContext::beginParallel()
{
    phases.transition(ThreadPhase::Parallel, sim.now());
    Cycle len = rng.nextGeometric(
        std::max(1.0, prm.meanParallelCycles));
    parallelStep(len);
}

void
ThreadContext::parallelStep(Cycle remaining)
{
    // Pure compute when no background traffic is configured.
    if (prm.memGapCycles <= 0 || prm.bgAddrs.empty()) {
        sim.scheduleIn(remaining, [this] { beginAcquire(); });
        return;
    }
    // Interleave compute gaps with ordinary shared-data accesses: the
    // cache-miss traffic a real parallel phase pushes through the L2
    // banks and the NoC (and which lock messages queue behind).
    Cycle gap = rng.nextGeometric(std::max(1.0, prm.memGapCycles));
    if (gap >= remaining) {
        sim.scheduleIn(remaining, [this] { beginAcquire(); });
        return;
    }
    Cycle left = remaining - gap;
    sim.scheduleIn(gap, [this, left] {
        Addr a = prm.bgAddrs[rng.nextBounded(prm.bgAddrs.size())];
        if (rng.chance(0.5)) {
            sys.l1(prm.tid).issueStore(
                a, rng.next(), false,
                [this, left](std::uint64_t) { parallelStep(left); });
        } else {
            sys.l1(prm.tid).issueLoad(a, false, [this, left](
                                                    std::uint64_t) {
                parallelStep(left);
            });
        }
    });
}

void
ThreadContext::beginAcquire()
{
    phases.transition(ThreadPhase::Coh, sim.now());
    currentLock = prm.locks.size() == 1
        ? 0
        : static_cast<std::size_t>(rng.nextBounded(prm.locks.size()));
    prm.locks[currentLock]->acquire(prm.tid, [this] { beginCs(); },
                                    &hooks);
}

void
ThreadContext::beginCs()
{
    phases.transition(ThreadPhase::Cse, sim.now());
    // The critical section updates the protected shared variable, then
    // computes for the remainder of its body.
    sys.l1(prm.tid).issueStore(
        prm.csData[currentLock], static_cast<std::uint64_t>(prm.tid) + 1,
        false, [this](std::uint64_t) {
            Cycle len =
                rng.nextGeometric(std::max(1.0, prm.meanCsCycles));
            sim.scheduleIn(len, [this] { beginRelease(); });
        });
}

void
ThreadContext::beginRelease()
{
    prm.locks[currentLock]->release(prm.tid, [this] { endIteration(); });
}

void
ThreadContext::endIteration()
{
    ++completed;
    if (completed >= prm.csTarget) {
        finished = true;
        doneAt = sim.now();
        phases.transition(ThreadPhase::Done, sim.now());
        return;
    }
    beginParallel();
}

} // namespace inpg
