/**
 * @file
 * Base class of the lock primitives.
 *
 * A LockPrimitive instance is one lock: all competing threads call
 * acquire()/release() on the same object. Primitives are asynchronous
 * state machines driving the coherent memory system through L1
 * operations; completion is signalled through callbacks, so a thread
 * context can chain its lifecycle without any host-side blocking.
 */

#ifndef INPG_SYNC_LOCK_PRIMITIVE_HH
#define INPG_SYNC_LOCK_PRIMITIVE_HH

#include <functional>
#include <string>
#include <vector>

#include "coh/coherent_system.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/simulator.hh"
#include "sync/sync_config.hh"

namespace inpg {

/** Callbacks a thread context registers for QSL sleep accounting. */
struct ThreadHooks {
    /** The thread entered the sleep phase (context switched out). */
    std::function<void()> onSleep;
    /** The thread was woken and runs again. */
    std::function<void()> onWake;
};

/** One lock, shared by all competing threads. */
class LockPrimitive
{
  public:
    using DoneFn = std::function<void()>;

    /**
     * @param lock_name stats label
     * @param system    the coherent memory substrate
     * @param sim       kernel
     * @param cfg       synchronization parameters (copied)
     * @param threads   number of competing threads (queue sizing)
     */
    LockPrimitive(std::string lock_name, CoherentSystem &system,
                  Simulator &sim, const SyncConfig &cfg, int threads);

    virtual ~LockPrimitive() = default;

    /**
     * Acquire the lock for thread t (running on core t); `done` fires
     * when the thread holds the lock. At most one acquire per thread
     * may be outstanding, and a thread must not re-acquire while
     * holding.
     */
    virtual void acquire(ThreadId t, DoneFn done,
                         ThreadHooks *hooks = nullptr) = 0;

    /** Release the lock held by thread t; `done` fires when visible. */
    virtual void release(ThreadId t, DoneFn done) = 0;

    /** Primitive kind. */
    virtual LockKind kind() const = 0;

    const std::string &name() const { return lockName; }

    /**
     * Mutual-exclusion guard used by tests and thread contexts:
     * number of threads currently between acquire-done and release.
     */
    int holders() const { return numHolders; }

    StatGroup stats;

  protected:
    L1Controller &l1(ThreadId t) { return sys.l1(t); }

    /** Schedule `fn` after the configured spin interval. */
    void
    spinDelay(DoneFn fn)
    {
        sim.scheduleIn(cfg.spinInterval, std::move(fn));
    }

    /**
     * OCOR: stamp the next request packet of thread t's L1 with the
     * priority for `remaining_retries` (no-op when OCOR is off).
     * Pass remaining_retries < 0 for a wakeup-phase request.
     */
    void applyOcorPriority(ThreadId t, int remaining_retries);

    /**
     * Telemetry bracket: every primitive calls this at the top of its
     * acquire() so the LCO tracker can attribute the whole window up
     * to markAcquired(). No-op when telemetry is off.
     */
    void markAcquireStart(ThreadId t);

    /** Bracket the critical section for the holders() guard. */
    void markAcquired(ThreadId t);
    void markReleased(ThreadId t);

    /** QSL sleep window, reported to the LCO tracker. */
    void markSleepBegin(ThreadId t);
    void markSleepEnd(ThreadId t);

    CoherentSystem &sys;
    Simulator &sim;
    SyncConfig cfg;
    OcorPolicy ocorPolicy;
    int numThreads;

  private:
    std::string lockName;
    int numHolders = 0;
    ThreadId holderThread = -1;
};

} // namespace inpg

#endif // INPG_SYNC_LOCK_PRIMITIVE_HH
