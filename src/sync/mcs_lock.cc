#include "sync/mcs_lock.hh"

#include "common/logging.hh"

namespace inpg {

McsLock::McsLock(std::string lock_name, CoherentSystem &system,
                 Simulator &simulator, const SyncConfig &config,
                 int threads, Addr tail_addr, std::vector<Addr> next_addrs,
                 std::vector<Addr> locked_addrs)
    : LockPrimitive(std::move(lock_name), system, simulator, config,
                    threads),
      tailAddr(tail_addr), nextAddrs(std::move(next_addrs)),
      lockedAddrs(std::move(locked_addrs)),
      threadState(static_cast<std::size_t>(threads))
{
    INPG_ASSERT(static_cast<int>(nextAddrs.size()) >= threads &&
                    static_cast<int>(lockedAddrs.size()) >= threads,
                "MCS needs a qnode per thread");
}

void
McsLock::acquire(ThreadId t, DoneFn done, ThreadHooks *hooks)
{
    (void)hooks; // QslLock overrides the polling to use them
    PerThread &st = state(t);
    INPG_ASSERT(!st.done, "thread %d double-acquire on %s", t,
                name().c_str());
    st.done = std::move(done);
    st.retries = 0;
    markAcquireStart(t);

    // mynode.next = null; mynode.locked = 1; prev = swap(tail, my)
    l1(t).issueStore(nextAddrs[static_cast<std::size_t>(t)], 0, true,
                     [this, t](std::uint64_t) {
        l1(t).issueStore(lockedAddr(t), 1, true, [this, t](std::uint64_t) {
            applyOcorPriority(t, cfg.qslRetryLimit);
            l1(t).issueAtomic(
                tailAddr, AtomicOp::Swap,
                static_cast<std::uint64_t>(t) + 1, 0, true,
                [this, t](std::uint64_t prev, bool) {
                    if (prev == 0) {
                        finishAcquire(t);
                        return;
                    }
                    // Link behind the predecessor, then wait for the
                    // hand-off on our own flag.
                    ThreadId pred = static_cast<ThreadId>(prev - 1);
                    ++stats.counter("queued_acquires");
                    l1(t).issueStore(
                        nextAddrs[static_cast<std::size_t>(pred)],
                        static_cast<std::uint64_t>(t) + 1, true,
                        [this, t](std::uint64_t) { pollLocked(t); });
                });
        });
    });
}

void
McsLock::pollLocked(ThreadId t)
{
    l1(t).issueLoad(lockedAddr(t), true, [this, t](std::uint64_t locked) {
        if (locked == 0) {
            finishAcquire(t);
            return;
        }
        ++state(t).retries;
        ++stats.counter("spin_reads_busy");
        spinDelay([this, t] { pollLocked(t); });
    });
}

void
McsLock::finishAcquire(ThreadId t)
{
    PerThread &st = state(t);
    markAcquired(t);
    stats.sample("retries_per_acquire").add(st.retries);
    DoneFn done = std::move(st.done);
    st.done = nullptr;
    done();
}

void
McsLock::release(ThreadId t, DoneFn done)
{
    l1(t).issueLoad(nextAddrs[static_cast<std::size_t>(t)], true,
                    [this, t, done = std::move(done)](
                        std::uint64_t next) mutable {
        if (next != 0) {
            ThreadId succ = static_cast<ThreadId>(next - 1);
            l1(t).issueStore(
                lockedAddr(succ), 0, true,
                [this, t, succ, done = std::move(done)](std::uint64_t) {
                    markReleased(t);
                    onHandoff(succ);
                    done();
                });
            return;
        }
        // No known successor: try closing the queue.
        l1(t).issueAtomic(
            tailAddr, AtomicOp::Cas, static_cast<std::uint64_t>(t) + 1, 0,
            true,
            [this, t,
             done = std::move(done)](std::uint64_t old, bool) mutable {
                if (old == static_cast<std::uint64_t>(t) + 1) {
                    markReleased(t);
                    done();
                    return;
                }
                // A successor is linking right now; wait for the link.
                ++stats.counter("release_link_races");
                waitForSuccessor(t, std::move(done));
            });
    });
}

void
McsLock::waitForSuccessor(ThreadId t, DoneFn done)
{
    l1(t).issueLoad(nextAddrs[static_cast<std::size_t>(t)], true,
                    [this, t, done = std::move(done)](
                        std::uint64_t next) mutable {
        if (next == 0) {
            spinDelay([this, t, done = std::move(done)]() mutable {
                waitForSuccessor(t, std::move(done));
            });
            return;
        }
        ThreadId succ = static_cast<ThreadId>(next - 1);
        l1(t).issueStore(
            lockedAddr(succ), 0, true,
            [this, t, succ, done = std::move(done)](std::uint64_t) {
                markReleased(t);
                onHandoff(succ);
                done();
            });
    });
}

} // namespace inpg
