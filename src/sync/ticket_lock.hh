/**
 * @file
 * Ticket lock (TTL) [31]: a request counter hands out tickets with
 * fetch-and-add; threads poll the release counter until it equals
 * their ticket. FIFO-fair; a release invalidates every poller's copy
 * of the serving counter at once.
 */

#ifndef INPG_SYNC_TICKET_LOCK_HH
#define INPG_SYNC_TICKET_LOCK_HH

#include <vector>

#include "sync/lock_primitive.hh"

namespace inpg {

/** Ticket lock over two cache lines (request + release counters). */
class TicketLock : public LockPrimitive
{
  public:
    /**
     * @param next_addr    request-counter line (fetch-and-add target)
     * @param serving_addr release-counter line (polled)
     */
    TicketLock(std::string name, CoherentSystem &system, Simulator &sim,
               const SyncConfig &cfg, int threads, Addr next_addr,
               Addr serving_addr);

    void acquire(ThreadId t, DoneFn done,
                 ThreadHooks *hooks = nullptr) override;
    void release(ThreadId t, DoneFn done) override;
    LockKind kind() const override { return LockKind::Ticket; }

  private:
    void pollPhase(ThreadId t);

    struct PerThread {
        DoneFn done;
        std::uint64_t ticket = 0;
        int retries = 0;
    };

    Addr nextAddr;
    Addr servingAddr;
    std::vector<PerThread> threadState;
};

} // namespace inpg

#endif // INPG_SYNC_TICKET_LOCK_HH
