/**
 * @file
 * Test-and-set spin lock (paper Section 2.1, Algorithm 1).
 *
 * Each thread spins reading a shared flag until it observes 0, then
 * attempts an atomic SWAP(1); the winner enters the critical section,
 * losers return to spinning. Generates the heaviest lock coherence
 * traffic of the five primitives: every release triggers a full
 * invalidate/re-read/GetX storm.
 */

#ifndef INPG_SYNC_TAS_LOCK_HH
#define INPG_SYNC_TAS_LOCK_HH

#include <vector>

#include "sync/lock_primitive.hh"

namespace inpg {

/** Test-and-set lock over one shared cache line. */
class TasLock : public LockPrimitive
{
  public:
    /**
     * @param lock_addr line holding the flag (0 free / 1 held)
     */
    TasLock(std::string name, CoherentSystem &system, Simulator &sim,
            const SyncConfig &cfg, int threads, Addr lock_addr);

    void acquire(ThreadId t, DoneFn done,
                 ThreadHooks *hooks = nullptr) override;
    void release(ThreadId t, DoneFn done) override;
    LockKind kind() const override { return LockKind::Tas; }

    Addr lockAddr() const { return addr; }

  private:
    void readPhase(ThreadId t);
    void swapPhase(ThreadId t, bool force_exclusive = false);

    struct PerThread {
        DoneFn done;
        int retries = 0;
    };

    Addr addr;
    std::vector<PerThread> threadState;
};

} // namespace inpg

#endif // INPG_SYNC_TAS_LOCK_HH
