#include "sync/ticket_lock.hh"

#include "common/logging.hh"

namespace inpg {

TicketLock::TicketLock(std::string lock_name, CoherentSystem &system,
                       Simulator &simulator, const SyncConfig &config,
                       int threads, Addr next_addr, Addr serving_addr)
    : LockPrimitive(std::move(lock_name), system, simulator, config,
                    threads),
      nextAddr(next_addr), servingAddr(serving_addr),
      threadState(static_cast<std::size_t>(threads))
{
    INPG_ASSERT(next_addr != serving_addr,
                "ticket counters must not share a line");
}

void
TicketLock::acquire(ThreadId t, DoneFn done, ThreadHooks *hooks)
{
    (void)hooks;
    PerThread &st = threadState[static_cast<std::size_t>(t)];
    INPG_ASSERT(!st.done, "thread %d double-acquire on %s", t,
                name().c_str());
    st.done = std::move(done);
    st.retries = 0;
    markAcquireStart(t);
    l1(t).issueAtomic(nextAddr, AtomicOp::FetchAdd, 1, 0, true,
                      [this, t](std::uint64_t old, bool) {
                          threadState[static_cast<std::size_t>(t)]
                              .ticket = old;
                          pollPhase(t);
                      });
}

void
TicketLock::pollPhase(ThreadId t)
{
    l1(t).issueLoad(servingAddr, true, [this, t](std::uint64_t serving) {
        PerThread &st = threadState[static_cast<std::size_t>(t)];
        if (serving == st.ticket) {
            markAcquired(t);
            stats.sample("retries_per_acquire").add(st.retries);
            DoneFn done = std::move(st.done);
            st.done = nullptr;
            done();
            return;
        }
        INPG_ASSERT(serving < st.ticket,
                    "ticket lock %s passed thread %d (serving %llu, "
                    "ticket %llu)",
                    name().c_str(), t,
                    static_cast<unsigned long long>(serving),
                    static_cast<unsigned long long>(st.ticket));
        ++st.retries;
        ++stats.counter("spin_reads_busy");
        spinDelay([this, t] { pollPhase(t); });
    });
}

void
TicketLock::release(ThreadId t, DoneFn done)
{
    const std::uint64_t next_serving =
        threadState[static_cast<std::size_t>(t)].ticket + 1;
    l1(t).issueStore(servingAddr, next_serving, true,
                     [this, t, done = std::move(done)](std::uint64_t) {
                         markReleased(t);
                         done();
                     });
}

} // namespace inpg
