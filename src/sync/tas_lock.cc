#include "sync/tas_lock.hh"

#include "common/logging.hh"

namespace inpg {

TasLock::TasLock(std::string lock_name, CoherentSystem &system,
                 Simulator &simulator, const SyncConfig &config,
                 int threads, Addr lock_addr)
    : LockPrimitive(std::move(lock_name), system, simulator, config,
                    threads),
      addr(lock_addr),
      threadState(static_cast<std::size_t>(threads))
{}

void
TasLock::acquire(ThreadId t, DoneFn done, ThreadHooks *hooks)
{
    (void)hooks; // TAS never sleeps
    PerThread &st = threadState[static_cast<std::size_t>(t)];
    INPG_ASSERT(!st.done, "thread %d double-acquire on %s", t,
                name().c_str());
    st.done = std::move(done);
    st.retries = 0;
    markAcquireStart(t);
    readPhase(t);
}

void
TasLock::readPhase(ThreadId t)
{
    l1(t).issueLoad(addr, true, [this, t](std::uint64_t v) {
        PerThread &st = threadState[static_cast<std::size_t>(t)];
        if (v != 0) {
            ++st.retries;
            ++stats.counter("spin_reads_busy");
            spinDelay([this, t] { readPhase(t); });
            return;
        }
        // First attempt goes for ownership directly (an uncontended
        // lock should transfer in one trip); once we have failed swaps
        // behind us the acquire is contended and demotion applies.
        swapPhase(t, st.retries == 0);
    });
}

void
TasLock::swapPhase(ThreadId t, bool force_exclusive)
{
    l1(t).issueAtomic(
        addr, AtomicOp::Swap, 1, 0, true,
        [this, t](std::uint64_t old, bool demoted) {
            PerThread &st = threadState[static_cast<std::size_t>(t)];
            if (!demoted && old == 0) {
                markAcquired(t);
                stats.sample("retries_per_acquire").add(st.retries);
                DoneFn done = std::move(st.done);
                st.done = nullptr;
                done();
                return;
            }
            if (demoted && old == 0) {
                // Lock freed while our demoted request was in flight:
                // insist on ownership this time.
                ++stats.counter("demotion_escalations");
                swapPhase(t, true);
                return;
            }
            ++st.retries;
            ++stats.counter("swap_failures");
            spinDelay([this, t] { readPhase(t); });
        },
        /*demotable=*/!force_exclusive);
}

void
TasLock::release(ThreadId t, DoneFn done)
{
    l1(t).issueStore(addr, 0, true,
                     [this, t, done = std::move(done)](std::uint64_t) {
                         markReleased(t);
                         done();
                     });
}

} // namespace inpg
