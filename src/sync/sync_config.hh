/**
 * @file
 * Synchronization-layer configuration: spin behaviour, QSL sleep costs,
 * and the OCOR switch.
 */

#ifndef INPG_SYNC_SYNC_CONFIG_HH
#define INPG_SYNC_SYNC_CONFIG_HH

#include "common/types.hh"
#include "ocor/ocor_policy.hh"

namespace inpg {

/** Lock primitive selector (paper Section 2.1). */
enum class LockKind {
    Tas,    ///< test-and-set spin lock
    Ticket, ///< ticket lock (TTL)
    Abql,   ///< array-based queuing lock
    Mcs,    ///< Mellor-Crummey & Scott list lock
    Qsl,    ///< queue spin-lock: bounded spin, then sleep (Linux 4.2)
};

/** Short name ("TAS", "TTL", ...). */
const char *lockKindName(LockKind kind);

/** Parameters of the lock primitives and the QSL sleep path. */
struct SyncConfig {
    /** Cycles between spin polls ("short spin interval", Sec. 2.1). */
    Cycle spinInterval = 16;

    /** QSL: spin retries before yielding to sleep (Table 1: 128). */
    int qslRetryLimit = 128;

    /** QSL: context-switch cost paid when entering the sleep phase. */
    Cycle contextSwitchCost = 1500;

    /** QSL: cost from wakeup signal to the thread running again. */
    Cycle wakeupCost = 1500;

    /** OCOR: stamp RTR-derived priorities on lock request packets. */
    bool ocorEnabled = false;

    /** OCOR RTR -> priority mapping parameters. */
    OcorConfig ocor;
};

} // namespace inpg

#endif // INPG_SYNC_SYNC_CONFIG_HH
