/**
 * @file
 * LockManager: allocates lock-variable cache lines at chosen home
 * nodes and builds lock primitives over them.
 */

#ifndef INPG_SYNC_LOCK_MANAGER_HH
#define INPG_SYNC_LOCK_MANAGER_HH

#include <map>
#include <memory>
#include <vector>

#include "coh/coherent_system.hh"
#include "sync/lock_primitive.hh"

namespace inpg {

/** Factory and registry of the locks of one simulated system. */
class LockManager
{
  public:
    LockManager(CoherentSystem &system, Simulator &sim,
                const SyncConfig &cfg);

    /**
     * Create a lock of the given kind for `threads` competitors.
     *
     * @param home node whose L2 bank hosts the lock variable(s);
     *             INVALID_NODE picks homes round-robin across the mesh.
     * @return non-owning pointer; the manager keeps ownership.
     */
    LockPrimitive *createLock(LockKind kind, int threads,
                              NodeId home = INVALID_NODE);

    /** Allocate a fresh line homed at `home` (exposed for tests). */
    Addr allocLine(NodeId home);

    /** All locks created so far. */
    const std::vector<std::unique_ptr<LockPrimitive>> &locks() const
    {
        return lockList;
    }

    /**
     * Non-zero initial memory values installed for lock structures
     * (e.g. ABQL's granted slot 0); golden-model verifiers must seed
     * their reference memory with these.
     */
    const std::map<Addr, std::uint64_t> &initialValues() const
    {
        return initValues;
    }

    const SyncConfig &config() const { return cfg; }

  private:
    NodeId pickHome();

    CoherentSystem &sys;
    Simulator &sim;
    SyncConfig cfg;
    std::vector<std::unique_ptr<LockPrimitive>> lockList;
    std::map<Addr, std::uint64_t> initValues;
    std::map<NodeId, Addr> nextLineAtHome;
    NodeId homePointer = 0;
    int lockCounter = 0;
};

} // namespace inpg

#endif // INPG_SYNC_LOCK_MANAGER_HH
