#include "sync/lock_manager.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sync/abql_lock.hh"
#include "sync/mcs_lock.hh"
#include "sync/qsl_lock.hh"
#include "sync/tas_lock.hh"
#include "sync/ticket_lock.hh"

namespace inpg {

LockManager::LockManager(CoherentSystem &system, Simulator &simulator,
                         const SyncConfig &config)
    : sys(system), sim(simulator), cfg(config)
{}

Addr
LockManager::allocLine(NodeId home)
{
    INPG_ASSERT(home >= 0 && home < sys.numCores(), "bad home node %d",
                home);
    Addr index = nextLineAtHome[home]++;
    return sys.cohConfig().lineHomedAt(home, index);
}

NodeId
LockManager::pickHome()
{
    NodeId h = homePointer;
    homePointer = (homePointer + 1) % sys.numCores();
    return h;
}

LockPrimitive *
LockManager::createLock(LockKind kind, int threads, NodeId home)
{
    if (home == INVALID_NODE)
        home = pickHome();
    std::string lock_name =
        format("%s_lock%d", lockKindName(kind), lockCounter++);

    std::unique_ptr<LockPrimitive> lock;
    switch (kind) {
      case LockKind::Tas:
        lock = std::make_unique<TasLock>(lock_name, sys, sim, cfg,
                                         threads, allocLine(home));
        break;
      case LockKind::Qsl:
        lock = std::make_unique<QslLock>(lock_name, sys, sim, cfg,
                                         threads, allocLine(home));
        break;
      case LockKind::Ticket:
        lock = std::make_unique<TicketLock>(lock_name, sys, sim, cfg,
                                            threads, allocLine(home),
                                            allocLine(home));
        break;
      case LockKind::Abql: {
        Addr tail = allocLine(home);
        // Packed flag array: 4-byte flags in 128 B lines (32 per line,
        // capped at the 64 bits of the modeled line word).
        const int slots_per_line = static_cast<int>(
            std::min<Addr>(sys.cohConfig().lineSize / 4, 64));
        const int lines =
            (threads + slots_per_line - 1) / slots_per_line;
        std::vector<Addr> flag_lines;
        for (int i = 0; i < lines; ++i)
            flag_lines.push_back(allocLine(home));
        // Slot 0 starts granted: the lock is initially free.
        sys.directory(home).initValue(flag_lines[0], 1);
        initValues[flag_lines[0]] = 1;
        lock = std::make_unique<AbqlLock>(lock_name, sys, sim, cfg,
                                          threads, tail,
                                          std::move(flag_lines),
                                          slots_per_line);
        break;
      }
      case LockKind::Mcs: {
        Addr tail = allocLine(home);
        std::vector<Addr> nexts;
        std::vector<Addr> lockeds;
        for (int i = 0; i < threads; ++i) {
            // Qnodes live in lines homed near their own thread's tile,
            // as a per-core structure would (only the tail is hot at
            // the lock's home).
            NodeId qhome = static_cast<NodeId>(i % sys.numCores());
            nexts.push_back(allocLine(qhome));
            lockeds.push_back(allocLine(qhome));
        }
        lock = std::make_unique<McsLock>(lock_name, sys, sim, cfg,
                                         threads, tail, std::move(nexts),
                                         std::move(lockeds));
        break;
      }
    }
    lockList.push_back(std::move(lock));
    return lockList.back().get();
}

} // namespace inpg
