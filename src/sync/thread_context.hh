/**
 * @file
 * ThreadContext: the lifecycle of one worker thread (paper Figure 1) --
 * parallel compute, critical-section competition, critical-section
 * execution -- driven as an asynchronous state machine over the
 * simulated memory system.
 */

#ifndef INPG_SYNC_THREAD_CONTEXT_HH
#define INPG_SYNC_THREAD_CONTEXT_HH

#include <vector>

#include "coh/coherent_system.hh"
#include "common/rng.hh"
#include "sim/simulator.hh"
#include "sync/lock_primitive.hh"
#include "workload/phase_recorder.hh"

namespace inpg {

/** One simulated worker thread pinned to its core. */
class ThreadContext
{
  public:
    struct Params {
        ThreadId tid = 0;
        /** Critical sections to execute before finishing. */
        int csTarget = 1;
        /** Mean cycles of parallel compute between CS entries. */
        double meanParallelCycles = 1000;
        /** Mean cycles of work inside a critical section. */
        double meanCsCycles = 100;
        /** Locks this thread competes for (picked uniformly). */
        std::vector<LockPrimitive *> locks;
        /** Shared data line updated inside each CS (one per lock). */
        std::vector<Addr> csData;
        /**
         * Mean cycles between background memory accesses during the
         * parallel phase (0 = pure compute, no traffic).
         */
        double memGapCycles = 0;
        /** Lines the background accesses touch (shared with a peer
         *  thread so ownership ping-pongs and traffic is sustained). */
        std::vector<Addr> bgAddrs;
        std::uint64_t seed = 1;
    };

    ThreadContext(Params params, CoherentSystem &system, Simulator &sim);

    /** Begin the first parallel phase. */
    void start();

    bool done() const { return finished; }

    int csCompleted() const { return completed; }

    /** Cycle the thread finished its last CS (valid once done()). */
    Cycle finishCycle() const { return doneAt; }

    const PhaseRecorder &recorder() const { return phases; }
    PhaseRecorder &recorder() { return phases; }

    ThreadId threadId() const { return prm.tid; }

  private:
    void beginParallel();
    void parallelStep(Cycle remaining);
    void beginAcquire();
    void beginCs();
    void beginRelease();
    void endIteration();

    Params prm;
    CoherentSystem &sys;
    Simulator &sim;
    Rng rng;
    PhaseRecorder phases;
    ThreadHooks hooks;

    int completed = 0;
    std::size_t currentLock = 0;
    bool finished = false;
    Cycle doneAt = 0;
};

} // namespace inpg

#endif // INPG_SYNC_THREAD_CONTEXT_HH
