#include "sync/abql_lock.hh"

#include "common/logging.hh"

namespace inpg {

AbqlLock::AbqlLock(std::string lock_name, CoherentSystem &system,
                   Simulator &simulator, const SyncConfig &config,
                   int threads, Addr tail_addr,
                   std::vector<Addr> flag_lines, int slots_per_line)
    : LockPrimitive(std::move(lock_name), system, simulator, config,
                    threads),
      tailAddr(tail_addr), flagLines(std::move(flag_lines)),
      slotsPerLine(slots_per_line),
      threadState(static_cast<std::size_t>(threads))
{
    INPG_ASSERT(slots_per_line >= 1 && slots_per_line <= 64,
                "flags are bits of a 64-bit word: 1..64 per line");
    INPG_ASSERT(numSlots() >= threads,
                "ABQL needs at least one slot per thread");
}

void
AbqlLock::acquire(ThreadId t, DoneFn done, ThreadHooks *hooks)
{
    (void)hooks;
    PerThread &st = threadState[static_cast<std::size_t>(t)];
    INPG_ASSERT(!st.done, "thread %d double-acquire on %s", t,
                name().c_str());
    st.done = std::move(done);
    st.retries = 0;
    markAcquireStart(t);
    l1(t).issueAtomic(
        tailAddr, AtomicOp::FetchAdd, 1, 0, true,
        [this, t](std::uint64_t old, bool) {
            threadState[static_cast<std::size_t>(t)].slot =
                static_cast<std::size_t>(old) %
                static_cast<std::size_t>(numSlots());
            pollPhase(t);
        });
}

void
AbqlLock::pollPhase(ThreadId t)
{
    PerThread &st = threadState[static_cast<std::size_t>(t)];
    const std::size_t slot = st.slot;
    l1(t).issueLoad(lineOfSlot(slot), true,
                    [this, t, slot](std::uint64_t flags) {
        if ((flags & bitOfSlot(slot)) == 0) {
            ++threadState[static_cast<std::size_t>(t)].retries;
            ++stats.counter("spin_reads_busy");
            spinDelay([this, t] { pollPhase(t); });
            return;
        }
        // Consume the grant so the slot can be reused on wrap-around;
        // this RMW invalidates every poller sharing the line (the
        // packed array's false sharing).
        l1(t).issueAtomic(
            lineOfSlot(slot), AtomicOp::FetchAnd, ~bitOfSlot(slot), 0,
            true, [this, t](std::uint64_t, bool) {
                PerThread &s = threadState[static_cast<std::size_t>(t)];
                markAcquired(t);
                stats.sample("retries_per_acquire").add(s.retries);
                DoneFn done = std::move(s.done);
                s.done = nullptr;
                done();
            });
    });
}

void
AbqlLock::release(ThreadId t, DoneFn done)
{
    const std::size_t next =
        (threadState[static_cast<std::size_t>(t)].slot + 1) %
        static_cast<std::size_t>(numSlots());
    l1(t).issueAtomic(
        lineOfSlot(next), AtomicOp::FetchOr, bitOfSlot(next), 0, true,
        [this, t, done = std::move(done)](std::uint64_t, bool) {
            markReleased(t);
            done();
        });
}

} // namespace inpg
