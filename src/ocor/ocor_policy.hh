/**
 * @file
 * OCOR (Opportunistic Competition Overhead Reduction, ISCA'16 [40]) --
 * the state-of-the-art baseline the paper compares against.
 *
 * OCOR is a software/hardware co-design for the queue spin-lock: the
 * OS exposes a thread's remaining times of retry (RTR) in its spinning
 * phase; lock request packets carry a priority derived from RTR (the
 * closer a thread is to the expensive sleep phase, the higher its
 * priority), and routers arbitrate the switch by priority. Wakeup
 * requests (threads already slept) get the lowest level, and packet age
 * guards against starvation (Table 1: 9 levels, 8 spinning levels of 16
 * retries each, 1 wakeup level).
 *
 * The router-side half lives in the NoC's Priority switch policy; this
 * module provides the RTR -> priority mapping the lock layer stamps
 * onto request packets.
 */

#ifndef INPG_OCOR_OCOR_POLICY_HH
#define INPG_OCOR_OCOR_POLICY_HH

#include "common/types.hh"

namespace inpg {

/** OCOR configuration (paper Table 1 defaults). */
struct OcorConfig {
    /** Spin retries before yielding to sleep (Linux 4.2 default). */
    int retryTimes = 128;

    /** Total priority levels (8 spinning + 1 wakeup). */
    int priorityLevels = 9;

    /** Retries mapped onto each spinning priority level. */
    int retriesPerLevel = 16;

    /** Router aging quantum: cycles waited per +1 effective priority. */
    Cycle agingQuantum = 64;
};

/** RTR -> packet priority mapping. */
class OcorPolicy
{
  public:
    explicit OcorPolicy(const OcorConfig &cfg = OcorConfig{});

    /**
     * Priority of a spinning thread's lock request.
     * @param remaining_retries retries left before the sleep phase
     * @return 1 (cold, many retries left) .. 8 (about to sleep)
     */
    int spinPriority(int remaining_retries) const;

    /** Priority of a wakeup (post-sleep) lock request: the lowest. */
    int wakeupPriority() const { return 0; }

    const OcorConfig &config() const { return cfg; }

  private:
    OcorConfig cfg;
};

} // namespace inpg

#endif // INPG_OCOR_OCOR_POLICY_HH
