#include "ocor/ocor_policy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace inpg {

OcorPolicy::OcorPolicy(const OcorConfig &config) : cfg(config)
{
    INPG_ASSERT(cfg.retryTimes > 0 && cfg.retriesPerLevel > 0 &&
                    cfg.priorityLevels >= 2,
                "bad OCOR configuration");
}

int
OcorPolicy::spinPriority(int remaining_retries) const
{
    const int spin_levels = cfg.priorityLevels - 1;
    if (remaining_retries <= 0)
        return spin_levels; // on the brink of sleeping: highest
    // RTR in (0, retriesPerLevel] -> highest spinning level; each
    // additional retriesPerLevel of slack drops one level, floored at 1.
    int level = spin_levels -
        (remaining_retries - 1) / cfg.retriesPerLevel;
    return std::clamp(level, 1, spin_levels);
}

} // namespace inpg
