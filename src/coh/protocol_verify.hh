/**
 * @file
 * Static protocol verifier: structural checks over the declarative
 * transition tables, shared by `tools/protocol_check` (the build-time
 * gate) and `tests/test_protocol_check.cc` (which feeds deliberately
 * broken tables and asserts the diagnostics).
 *
 * Checks:
 *  1. Coverage: every (state, event) pair carries exactly one entry
 *     (legal or declared-illegal-with-reason); duplicates are
 *     ambiguity errors.
 *  2. Vnet dependency graph: an edge A -> B means "consuming a
 *     message of class A can require injecting class B". Relay emits
 *     must stay on their own vnet (bounded same-class chains); all
 *     other edges must form an acyclic graph over the 4 virtual
 *     networks -- the standard static deadlock-freedom argument for
 *     message-class protocols, covering the iNPG early-Inv /
 *     FwdGetX-conversion / InvAck-relay reroutes.
 *  3. LCO hook tiling: every hook annotation names a real LcoTracker
 *     mark-cursor hook, and the union across the tables covers the
 *     full cursor-advancing set, so the attribution legs of PR 3 can
 *     tile every acquire.
 *  4. Reachability: every state is reachable from the table's initial
 *     state through declared next-state sets (dead states are
 *     findings).
 */

#ifndef INPG_COH_PROTOCOL_VERIFY_HH
#define INPG_COH_PROTOCOL_VERIFY_HH

#include <string>
#include <vector>

#include "coh/transition_table.hh"

namespace inpg {

class Topology;

/** One verifier finding, precise enough to locate the table hole. */
struct ProtoDiagnostic {
    std::string check; ///< "coverage", "vnet-graph", "lco-hooks", ...
    std::string table; ///< table name ("l1", "directory", ...)
    std::string message;

    std::string
    toString() const
    {
        return check + " [" + table + "]: " + message;
    }
};

/**
 * The LcoTracker mark-cursor hooks protocol transitions may drive.
 * Together these advance the cursor through every leg boundary of an
 * acquire (l1Access / reqNetwork / dirService / respNetwork /
 * invAckWait); the lock-primitive-side hooks (acquireBegin/End,
 * sleep, spin) are not protocol transitions and live outside the
 * tables.
 */
const std::vector<const char *> &protocolLcoHooks();

/** Check 1: total coverage, no duplicates. */
std::vector<ProtoDiagnostic> verifyCoverage(const ProtoTableBase &t);

/** Check 2: relay discipline + cross-vnet acyclicity (joint graph). */
std::vector<ProtoDiagnostic>
verifyVnetGraph(const std::vector<const ProtoTableBase *> &tables);

/** Check 3: hook validity + full tiling coverage (joint). */
std::vector<ProtoDiagnostic>
verifyLcoHooks(const std::vector<const ProtoTableBase *> &tables);

/** Check 4: every state reachable from the initial state. */
std::vector<ProtoDiagnostic> verifyReachability(const ProtoTableBase &t);

/**
 * Check 5 (topology-aware): the fabric's channel-dependency graph --
 * one node per (link, VC class) pair the routing function uses, one
 * edge per may-wait-for relation -- must be acyclic, or routing alone
 * can deadlock regardless of what the message-class graph says. The
 * vnet check (check 2) covers protocol-induced cycles; this covers
 * fabric-induced ones (torus wraparound without escape VCs). The
 * diagnostic carries the full cycle as a channel-path witness.
 */
std::vector<ProtoDiagnostic> verifyChannelDeps(const Topology &topo);

/** All checks over a set of tables, concatenated. */
std::vector<ProtoDiagnostic>
verifyProtocol(const std::vector<const ProtoTableBase *> &tables);

/** verifyProtocol over the three production tables. */
std::vector<ProtoDiagnostic> verifyProductionProtocol();

} // namespace inpg

#endif // INPG_COH_PROTOCOL_VERIFY_HH
