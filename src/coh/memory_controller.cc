#include "coh/memory_controller.hh"

#include "common/logging.hh"

namespace inpg {

MemoryController::MemoryController(int mc_id, Simulator &simulator,
                                   Cycle access_latency,
                                   Cycle service_interval)
    : mcId(mc_id), sim(simulator), latency(access_latency),
      serviceInterval(service_interval)
{
    stats = StatGroup(format("mc%d", mc_id));
}

void
MemoryController::fetch(Addr addr, std::function<void()> done)
{
    (void)addr;
    ++stats.counter("fetches");
    // Bandwidth model: requests start at most every serviceInterval
    // cycles; each takes `latency` cycles to complete.
    Cycle start = std::max(sim.now(), nextFreeSlot);
    nextFreeSlot = start + serviceInterval;
    Cycle finish = start + latency;
    stats.sample("queueing").add(static_cast<double>(start - sim.now()));
    sim.events().schedule(finish, std::move(done));
}

} // namespace inpg
