/**
 * @file
 * The production protocol transition tables: L1 MOESI controller,
 * directory (home node), and the iNPG big-router barrier FSM, each
 * expressed as a declarative TransitionTable over its (state, event)
 * space.
 *
 * These tables are the single source of truth for which pairs are
 * legal, what each transition may inject into which virtual network,
 * and which LCO attribution hooks it drives. The controllers dispatch
 * through them (so an undeclared pair is a loud panic, not a silent
 * hang), and tools/protocol_check verifies them statically: total
 * coverage, no ambiguity, acyclic cross-vnet message dependencies,
 * LCO hook tiling, and full state reachability.
 */

#ifndef INPG_COH_PROTOCOL_TABLES_HH
#define INPG_COH_PROTOCOL_TABLES_HH

#include "coh/transition_table.hh"

namespace inpg {

// ---------------------------------------------------------------------
// L1 controller
// ---------------------------------------------------------------------

// L1State lives in l1_controller.hh; the table is keyed by its int
// values (I, S, E, M, O) to keep this header free of controller
// dependencies. l1_controller.cc static_asserts the correspondence.
inline constexpr int L1_NUM_STATES = 5;

/** Events the L1 protocol engine reacts to. */
enum class L1Event {
    CoreLoad,  ///< core issues a load (after the L1 array latency)
    CoreWrite, ///< core issues a store or atomic RMW
    Inv,       ///< invalidation (home or big router)
    FwdGetS,   ///< home forwarded a read to us as owner
    FwdGetX,   ///< home forwarded an exclusive request to us as owner
    Data,      ///< shared data response (plain fill or demoted RMW)
    DataExcl,  ///< exclusive data response
    AckCount,  ///< home announces the ack total (upgrade or chain)
    InvAck,    ///< one invalidation acknowledgement collected
};
inline constexpr int L1_NUM_EVENTS = 9;

/** Controller actions an L1 table entry can select. */
enum class L1Action {
    LoadHit,          ///< load served from a valid local copy
    BeginLoadMiss,    ///< emit GetS, wait for data
    WriteHit,         ///< write/RMW in M or E: silent upgrade to M
    BeginWriteMiss,   ///< emit GetX from I/S
    BeginUpgrade,     ///< emit GetX from O (never demotable)
    InvalidateAndAck, ///< drop the S copy, ack the invalidation
    AckInvalid,       ///< already invalid: ack for accounting only
    AckStaleInv,      ///< stale Inv on an owner state: keep line, ack
    ServeFwdGetS,     ///< supply Data, downgrade to O (or defer)
    ServeFwdGetX,     ///< supply DataExcl, invalidate (or defer)
    ChainForward,     ///< not owner any more: relay along the chain
    FillShared,       ///< install/observe a shared copy, complete op
    FillExclusive,    ///< record exclusive data, maybe complete
    CollectAckInfo,   ///< record the ack total, maybe complete
    CollectInvAck,    ///< count one ack, maybe complete
};

const char *l1TableStateName(int s);
const char *l1EventName(int e);
/** Triggering-message vnet of an L1 event (-1 for core events). */
int l1EventVnet(int e);

/** Map a received coherence message kind onto the L1 event space. */
L1Event l1EventForMsgKind(CohMsgKind kind);

/** The L1 MOESI table (5 states x 9 events, totally covered). */
const ProtoTableBase &l1ProtocolTable();

// ---------------------------------------------------------------------
// Directory (home node)
// ---------------------------------------------------------------------

/**
 * Directory-entry state as seen by one request: ownership is resolved
 * against the requester so the self-upgrade row is its own state.
 */
enum class DirState {
    Uncached,  ///< no owner, no sharers
    Shared,    ///< no owner, at least one sharer
    Owned,     ///< owned by a core other than the requester
    OwnedSelf, ///< owned by the requester itself (upgrade row)
};
inline constexpr int DIR_NUM_STATES = 4;

/** Events the directory serializes. */
enum class DirEvent {
    GetS,           ///< read request
    GetX,           ///< exclusive request (plain)
    GetXDemotable,  ///< failure-idempotent lock acquire (may demote)
    EarlyInvAck,    ///< big-router-relayed InvAck trimming a sharer
};
inline constexpr int DIR_NUM_EVENTS = 4;

/** Controller actions a directory table entry can select. */
enum class DirAction {
    GrantExclusive,     ///< uncached read/write: DataExcl, no acks
    AnswerShared,       ///< read with sharers: Data from home
    ForwardGetS,        ///< owner supplies the data (M/E/O -> O)
    InvalidateAndGrant, ///< home data + Inv storm to other sharers
    ForwardGetX,        ///< FwdGetX to owner + AckCount + Inv storm
    OwnerUpgrade,       ///< requester owns it: AckCount only + Invs
    DemoteViaOwner,     ///< lock held by owner: FwdGetS (shared copy)
    DemoteOrGrant,      ///< home-held lock: Data if held, else grant
    TrimSharer,         ///< early InvAck: drop the acked sharer
};

const char *dirStateName(int s);
const char *dirEventName(int e);
int dirEventVnet(int e);

/** The directory table (4 derived states x 4 events). */
const ProtoTableBase &directoryProtocolTable();

// ---------------------------------------------------------------------
// iNPG big-router barrier FSM
// ---------------------------------------------------------------------

/** Per-lock-address barrier state at one big router. */
enum class BrState {
    NoBarrier,   ///< address not tracked
    BarrierIdle, ///< barrier installed, no early invalidation open
    BarrierArmed ///< barrier installed, >= 1 EI entry outstanding
};
inline constexpr int BR_NUM_STATES = 3;

/** Events of the barrier FSM. */
enum class BrEvent {
    LockGetXArrival,  ///< GetX[lock,atomic] head flit arrives
    LockGetXTransfer, ///< GetX[lock,atomic] wins switch traversal
    EarlyInvAck,      ///< InvAck answering one of our early Invs
    TtlExpire,        ///< barrier TTL elapsed with no open EI
};
inline constexpr int BR_NUM_EVENTS = 4;

/** Actions of the barrier FSM. */
enum class BrAction {
    PassThrough,     ///< no barrier: request continues unmodified
    StopAndInvalidate, ///< open an EI, inject the early Inv
    InstallBarrier,  ///< first transfer plants the barrier
    RefreshBarrier,  ///< transfer under an existing barrier
    RelayAndCloseEi, ///< close the EI, relay the ack to the home
    RelayStale,      ///< no matching EI: relay the ack anyway
    ExpireBarrier,   ///< TTL reclaim of an idle barrier
};

const char *brStateName(int s);
const char *brEventName(int e);
int brEventVnet(int e);

/** The big-router barrier FSM table (3 states x 4 events). */
const ProtoTableBase &bigRouterProtocolTable();

// ---------------------------------------------------------------------

/** All production tables, for the verifier (index 0..2). */
inline constexpr int PROTO_NUM_TABLES = 3;
const ProtoTableBase &protocolTable(int index);

} // namespace inpg

#endif // INPG_COH_PROTOCOL_TABLES_HH
