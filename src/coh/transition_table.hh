/**
 * @file
 * Declarative (state, event) transition tables for the coherence and
 * iNPG protocol state machines.
 *
 * Each protocol FSM (L1 controller, directory, big-router barrier) is
 * described by one table whose entries name, for every (state, event)
 * pair, the controller action to run, the set of possible next states,
 * the coherence-message kinds the transition may emit (each tagged
 * with whether it is a bounded same-class relay), and the LCO
 * attribution hooks the transition drives. The pair space must be
 * covered *totally*: a pair the protocol can never observe still gets
 * an entry, marked illegal with a written reason. Absence of an entry
 * is a verifier error, never a semantic.
 *
 * The controllers dispatch through these tables (`require()` asserts
 * the pair is declared legal before the action runs), and
 * `tools/protocol_check` plus `tests/test_protocol_check.cc` walk the
 * same data structurally: coverage, ambiguity, vnet-dependency
 * acyclicity, LCO hook tiling and state reachability are all checked
 * without running a single simulated cycle.
 */

#ifndef INPG_COH_TRANSITION_TABLE_HH
#define INPG_COH_TRANSITION_TABLE_HH

#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

#include "coh/coherence_msg.hh"
#include "common/logging.hh"

namespace inpg {

/** One message kind a transition may inject into the NoC. */
struct ProtoEmit {
    CohMsgKind kind = CohMsgKind::GetS;
    /**
     * Same-class relay: the emitted message replaces the consumed one
     * on the same virtual network (chain forwarding, big-router InvAck
     * relay). Relays are exempt from the cross-vnet acyclicity check
     * but must stay on the triggering message's vnet and are bounded
     * (ownership chains and relay hops are finite), which the verifier
     * checks structurally.
     */
    bool relay = false;
};

/** Action id marking a declared-impossible (state, event) pair. */
inline constexpr int PROTO_ILLEGAL = -1;

/**
 * One declared (state, event) pair. `action` is a controller-specific
 * enum value (or PROTO_ILLEGAL); `nexts` lists every state the FSM can
 * be in after the action completes (used for reachability analysis and
 * documentation; the dynamic choice stays in the controller).
 */
struct ProtoTransition {
    int state = 0;
    int event = 0;
    int action = PROTO_ILLEGAL;
    std::vector<int> nexts;
    std::vector<ProtoEmit> emits;
    /** LcoTracker hook names this transition drives (may be empty). */
    std::vector<const char *> lcoHooks;
    /** Why the pair is impossible (illegal) or a behavioural note. */
    const char *note = nullptr;

    bool legal() const { return action != PROTO_ILLEGAL; }
};

/**
 * Type-erased transition table: a dense (numStates x numEvents) grid of
 * ProtoTransition entries plus naming callbacks, shared by the typed
 * controller-facing wrapper below and the structural verifier.
 */
class ProtoTableBase
{
  public:
    using NameFn = const char *(*)(int);
    /** Vnet the triggering message of an event travels on; -1 when the
     * event is not message-triggered (core ops, timer ticks). */
    using VnetFn = int (*)(int);

    ProtoTableBase(const char *table_name, int num_states, int num_events,
                   int initial_state, NameFn state_name, NameFn event_name,
                   VnetFn event_vnet,
                   std::initializer_list<ProtoTransition> entries)
        : name_(table_name), numStates_(num_states),
          numEvents_(num_events), initial_(initial_state),
          stateName_(state_name), eventName_(event_name),
          eventVnet_(event_vnet),
          grid_(static_cast<std::size_t>(num_states) *
                static_cast<std::size_t>(num_events))
    {
        for (const ProtoTransition &t : entries)
            insert(t);
    }

    /**
     * Introspection: every declared entry, row-major (state, event)
     * order. The model checker's mutation harness snapshots a
     * production table through this, edits individual rows, and
     * rebuilds a variant with withRows() -- the seeded-bug tables stay
     * structurally identical to the shipped ones.
     */
    std::vector<ProtoTransition>
    rows() const
    {
        std::vector<ProtoTransition> out;
        out.reserve(grid_.size());
        for (const Slot &s : grid_)
            if (s.present)
                out.push_back(s.t);
        return out;
    }

    /**
     * Clone this table with a replacement row set (same name, shape,
     * initial state and naming callbacks). Duplicate/missing rows are
     * preserved as-is so verifier checks still see them.
     */
    ProtoTableBase
    withRows(const std::vector<ProtoTransition> &entries) const
    {
        ProtoTableBase clone(name_, numStates_, numEvents_, initial_,
                             stateName_, eventName_, eventVnet_, {});
        for (const ProtoTransition &t : entries)
            clone.insert(t);
        return clone;
    }

    /** Add one entry; duplicates are recorded, not overwritten. */
    void
    insert(const ProtoTransition &t)
    {
        INPG_ASSERT(t.state >= 0 && t.state < numStates_ &&
                        t.event >= 0 && t.event < numEvents_,
                    "table %s: entry (%d, %d) out of range", name_,
                    t.state, t.event);
        Slot &s = grid_[index(t.state, t.event)];
        if (s.present) {
            duplicates_.emplace_back(t.state, t.event);
            return;
        }
        s.present = true;
        s.t = t;
    }

    /** Entry for a pair, or nullptr when the pair was never declared. */
    const ProtoTransition *
    find(int state, int event) const
    {
        INPG_ASSERT(state >= 0 && state < numStates_ && event >= 0 &&
                        event < numEvents_,
                    "table %s: lookup (%d, %d) out of range", name_,
                    state, event);
        const Slot &s = grid_[index(state, event)];
        return s.present ? &s.t : nullptr;
    }

    /**
     * Dispatch lookup: the pair must be declared *and* legal. An
     * undeclared or illegal pair is a protocol bug; panic with the
     * precise (table, state, event) diagnostic instead of the silent
     * hang an unhandled switch case used to produce.
     */
    const ProtoTransition &
    require(int state, int event) const
    {
        const ProtoTransition *t = find(state, event);
        if (!t)
            panic("protocol table %s: unhandled transition (%s, %s)",
                  name_, stateName_(state), eventName_(event));
        if (!t->legal())
            panic("protocol table %s: illegal transition (%s, %s): %s",
                  name_, stateName_(state), eventName_(event),
                  t->note ? t->note : "declared impossible");
        return *t;
    }

    const char *name() const { return name_; }
    int numStates() const { return numStates_; }
    int numEvents() const { return numEvents_; }
    int initialState() const { return initial_; }
    const char *stateName(int s) const { return stateName_(s); }
    const char *eventName(int e) const { return eventName_(e); }
    int eventVnet(int e) const { return eventVnet_(e); }

    /** (state, event) pairs that were declared more than once. */
    const std::vector<std::pair<int, int>> &
    duplicates() const
    {
        return duplicates_;
    }

  private:
    struct Slot {
        bool present = false;
        ProtoTransition t;
    };

    std::size_t
    index(int state, int event) const
    {
        return static_cast<std::size_t>(state) *
                   static_cast<std::size_t>(numEvents_) +
               static_cast<std::size_t>(event);
    }

    const char *name_;
    int numStates_;
    int numEvents_;
    int initial_;
    NameFn stateName_;
    NameFn eventName_;
    VnetFn eventVnet_;
    std::vector<Slot> grid_;
    std::vector<std::pair<int, int>> duplicates_;
};

/**
 * Typed wrapper binding a table to its State and Event enums; the
 * controllers dispatch through this, the verifier through the base.
 */
template <typename State, typename Event>
class TransitionTable : public ProtoTableBase
{
  public:
    using ProtoTableBase::ProtoTableBase;

    const ProtoTransition *
    find(State s, Event e) const
    {
        return ProtoTableBase::find(static_cast<int>(s),
                                    static_cast<int>(e));
    }

    const ProtoTransition &
    require(State s, Event e) const
    {
        return ProtoTableBase::require(static_cast<int>(s),
                                       static_cast<int>(e));
    }
};

} // namespace inpg

#endif // INPG_COH_TRANSITION_TABLE_HH
