/**
 * @file
 * Private L1 cache controller implementing the core side of the
 * directory-based MOESI protocol (paper Section 3.2).
 *
 * The controller services one outstanding core operation at a time
 * (the modeled cores are single threads blocking on synchronization
 * operations) and reacts to directory forwards and invalidations at any
 * time. No capacity evictions are modeled: lock and synchronization
 * lines are few and stay resident, which is the regime the paper
 * studies.
 *
 * Stable states: I, S, E, M, O. Transients are expressed through the
 * pending-transaction record (IS_D and IM_AD in protocol terms).
 */

#ifndef INPG_COH_L1_CONTROLLER_HH
#define INPG_COH_L1_CONTROLLER_HH

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "coh/coh_config.hh"
#include "coh/coh_stats.hh"
#include "coh/coherence_msg.hh"
#include "common/flat_hash_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "noc/network.hh"
#include "sim/simulator.hh"

namespace inpg {

/** Stable MOESI states of an L1 line. */
enum class L1State {
    I,
    S,
    E,
    M,
    O,
};

/** Name of an L1 state ("I", "S", ...). */
const char *l1StateName(L1State s);

/** Atomic read-modify-write operations supported by the core. */
enum class AtomicOp {
    Swap,     ///< old = line; line = a
    Cas,      ///< old = line; if (old == a) line = b
    FetchAdd, ///< old = line; line = old + a
    FetchOr,  ///< old = line; line = old | a
    FetchAnd, ///< old = line; line = old & a
};

/** Completed-operation record for the golden-model verifier. */
struct OpRecord {
    enum class Kind { Load, Store, Atomic } kind = Kind::Load;
    AtomicOp op = AtomicOp::Swap;
    Addr addr = INVALID_ADDR;
    std::uint64_t operandA = 0;
    std::uint64_t operandB = 0;
    std::uint64_t oldValue = 0;
    std::uint64_t newValue = 0;
    CoreId core = INVALID_CORE;
    Cycle executedAt = 0;
    /** Demoted atomic: observed only, wrote nothing. */
    bool demoted = false;
};

/** Private L1 cache + coherence controller of one core. */
class L1Controller
{
  public:
    /** Callback delivering the result value of a core operation. */
    using Completion = std::function<void(std::uint64_t value)>;

    /**
     * Atomic completion: `demoted` is true when the RMW was answered
     * with a shared copy (lock held elsewhere) and therefore did NOT
     * write; `value` is the observed lock value. A demoted result with
     * value 0 means the lock was freed in flight -- retry with
     * demotable=false to force ownership.
     */
    using AtomicCompletion =
        std::function<void(std::uint64_t value, bool demoted)>;

    /** Optional sink for completed-operation records. */
    using OpLogFn = std::function<void(const OpRecord &)>;

    /**
     * @param core_id  owning core
     * @param node_id  mesh node (equal to core id on the target chip)
     * @param cfg      memory-system parameters
     * @param network  NoC endpoint access
     * @param sim      kernel (latency events)
     * @param stats    optional shared coherence statistics sink
     */
    L1Controller(CoreId core_id, NodeId node_id, const CohConfig &cfg,
                 Network &network, Simulator &sim,
                 CohStats *stats = nullptr);

    /** Issue a load; `done(value)` fires at completion. */
    void issueLoad(Addr addr, bool is_lock, Completion done);

    /** Issue a store; `done(old value)` fires at completion. */
    void issueStore(Addr addr, std::uint64_t value, bool is_lock,
                    Completion done);

    /**
     * Issue an atomic RMW; `done(old value, demoted)` fires at
     * completion. For Cas, a = expected, b = desired; for Swap/FetchAdd
     * only a is used. `demotable` marks failure-idempotent lock
     * acquires eligible for shared-copy demotion.
     */
    void issueAtomic(Addr addr, AtomicOp op, std::uint64_t a,
                     std::uint64_t b, bool is_lock, AtomicCompletion done,
                     bool demotable = false);

    /**
     * OCOR support: priority attached to the next request packet this
     * controller sends (reset to 0 after each issue).
     */
    void setNextRequestPriority(int priority) { nextPriority = priority; }

    /** Deliver a protocol message addressed to this L1. */
    void receiveMessage(const CohMsgPtr &msg, Cycle now);

    /** Stable state of a line (transients report their base state). */
    L1State lineState(Addr addr) const;

    /** Value cached for a line (valid in S/E/M/O). */
    std::uint64_t lineValue(Addr addr) const;

    /** True while a core operation is outstanding. */
    bool busy() const { return pending.has_value(); }

    /** Owner-forwards deferred behind the pending op (MSHR debug). */
    std::size_t
    deferredForwardCount() const
    {
        return deferredForwards.size();
    }

    CoreId coreId() const { return core; }
    NodeId nodeId() const { return node; }

    /** Register the golden-model op log sink. */
    void setOpLog(OpLogFn fn) { opLog = std::move(fn); }

    /** Diagnostic one-line state dump (pending op, deferred forwards). */
    std::string debugState() const;

    StatGroup stats;

  private:
    struct Line {
        L1State state = L1State::I;
        std::uint64_t value = 0;
        /** Node this L1 last surrendered the line to (FwdGetX). */
        NodeId forwardedTo = INVALID_NODE;
    };

    struct Pending {
        OpRecord::Kind kind = OpRecord::Kind::Load;
        AtomicOp op = AtomicOp::Swap;
        Addr addr = INVALID_ADDR;
        std::uint64_t operandA = 0;
        std::uint64_t operandB = 0;
        bool isLock = false;
        bool demotable = false;
        bool demoted = false;
        Completion done;
        AtomicCompletion atomicDone;

        bool exclusive = false; ///< GetX (vs GetS) transaction
        bool hasData = false;
        std::uint64_t data = 0;
        bool hasAckInfo = false;
        int ackCount = 0;
        int acksReceived = 0;
        bool invWhileFilling = false;
        Cycle issuedAt = 0;

        /** Directory serialization point of this GetX, once learned. */
        bool epochKnown = false;
        std::uint64_t myEpoch = 0;
    };

    void startOperation(Pending &&op);
    void issueAfterL1Latency(Pending &&op);
    void beginMiss(Pending &&op);
    void maybeCompleteExclusive(Cycle now);
    void executePendingOp(Cycle now);
    void processDeferredForwards(Cycle now);
    void serveForward(const CohMsgPtr &msg, Cycle now);
    void learnEpoch(std::uint64_t epoch, Cycle now);
    bool deferIncomingForward(const CohMsgPtr &msg) const;
    Addr pendingAddrForAssert() const;

    void handleInv(const CohMsgPtr &msg, Cycle now);
    void handleForward(const CohMsgPtr &msg, Cycle now);
    void handleData(const CohMsgPtr &msg, Cycle now);
    void handleDataExcl(const CohMsgPtr &msg, Cycle now);
    void handleAckCount(const CohMsgPtr &msg, Cycle now);
    void handleInvAck(const CohMsgPtr &msg, Cycle now);

    void send(const CohMsgPtr &msg, NodeId dst, Cycle now,
              int priority = 0);
    Line &line(Addr addr);
    const Line *findLine(Addr addr) const;

    CoreId core;
    NodeId node;
    CohConfig cfg;
    Network &net;
    Simulator &sim;
    CohStats *cohStats;
    OpLogFn opLog;

    /**
     * Cached hot stat handles (string lookup once at construction;
     * StatGroup map nodes are address-stable). opsCompletedCtr doubles
     * as the watchdog's retirement progress signal.
     */
    std::uint64_t *opsCompletedCtr = nullptr;
    std::uint64_t *opsIssuedCtr = nullptr;
    std::uint64_t *msgsSentCtr = nullptr;
    std::uint64_t *lockCohCyclesCtr = nullptr;
    std::uint64_t *loadHitsCtr = nullptr;
    std::uint64_t *loadMissesCtr = nullptr;
    std::uint64_t *writeHitsCtr = nullptr;
    std::uint64_t *writeMissesCtr = nullptr;
    std::uint64_t *writeUpgradesCtr = nullptr;
    std::uint64_t *preEpochFwdServedCtr = nullptr;
    std::uint64_t *preEpochFwdServedEarlyCtr = nullptr;
    std::uint64_t *atomicsDemotedCtr = nullptr;
    std::uint64_t *fwdGetsServedCtr = nullptr;
    std::uint64_t *fwdGetxServedCtr = nullptr;
    std::uint64_t *forwardsChainedCtr = nullptr;
    std::uint64_t *invalidationsCtr = nullptr;
    std::uint64_t *invOnInvalidCtr = nullptr;
    std::uint64_t *staleInvOnOwnerCtr = nullptr;
    std::uint64_t *forwardsDeferredCtr = nullptr;
    std::uint64_t *invAcksCollectedCtr = nullptr;
    SampleStat *loadLatencySample = nullptr;
    SampleStat *writeLatencySample = nullptr;
    SampleStat *lockRmwLatencySample = nullptr;

    /**
     * Line table: `linesFlat` when cfg.flatContainers (the fast path),
     * `linesRef` otherwise (reference for differential testing). Only
     * one is ever populated.
     */
    FlatHashMap<Addr, Line> linesFlat;
    std::unordered_map<Addr, Line> linesRef;
    std::optional<Pending> pending;
    std::deque<CohMsgPtr> deferredForwards;
    int nextPriority = 0;
};

} // namespace inpg

#endif // INPG_COH_L1_CONTROLLER_HH
