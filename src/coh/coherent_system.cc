#include "coh/coherent_system.hh"

#include "common/logging.hh"
#include "inpg/big_router.hh"
#include "telemetry/telemetry.hh"

namespace inpg {

CoherentSystem::CoherentSystem(const NocConfig &noc_cfg,
                               const CohConfig &coh_cfg_in, Simulator &sim,
                               RouterFactory factory)
    : cohCfg(coh_cfg_in)
{
    cohCfg.numNodes = noc_cfg.numNodes();
    stats = std::make_unique<CohStats>(cohCfg.numNodes);
    net = std::make_unique<Network>(noc_cfg, sim, std::move(factory));

    // Eight memory controllers on the target chip; scale the count with
    // the mesh so small test meshes get at least one.
    const int num_mcs = std::max(1, std::min(8, noc_cfg.meshWidth));
    for (int i = 0; i < num_mcs; ++i) {
        mcs.push_back(
            std::make_unique<MemoryController>(i, sim, cohCfg.memLatency));
    }

    // Big routers report Inv-Ack round trips into the shared sink.
    for (NodeId r = 0; r < noc_cfg.numRouters(); ++r) {
        if (auto *br = dynamic_cast<BigRouter *>(&net->router(r)))
            br->generator().setCohStats(stats.get());
    }

    for (NodeId n = 0; n < noc_cfg.numNodes(); ++n) {
        l1s.push_back(std::make_unique<L1Controller>(
            n, n, cohCfg, *net, sim, stats.get()));
        // Column-interleaved MC assignment (the chip attaches MCs to
        // the top/bottom middle columns; the bank-to-MC map is even).
        MemoryController *mc =
            mcs[static_cast<std::size_t>(n % num_mcs)].get();
        dirs.push_back(std::make_unique<Directory>(n, cohCfg, *net, sim,
                                                   mc, stats.get()));
        sim.addTicking(dirs.back().get());

        L1Controller *l1p = l1s.back().get();
        Directory *dirp = dirs.back().get();
        net->niFor(n).setDeliverCallback(
            n, [l1p, dirp](const PacketPtr &pkt, Cycle now) {
                auto msg =
                    std::static_pointer_cast<CoherenceMsg>(pkt->payload);
                INPG_ASSERT(msg != nullptr,
                            "non-coherence packet delivered to a tile");
                if (msg->toDirectory)
                    dirp->receiveMessage(msg, now);
                else
                    l1p->receiveMessage(msg, now);
            });
    }
}

L1Controller &
CoherentSystem::l1(CoreId core)
{
    INPG_ASSERT(core >= 0 && core < numCores(), "bad core id %d", core);
    return *l1s[static_cast<std::size_t>(core)];
}

Directory &
CoherentSystem::directory(NodeId node)
{
    INPG_ASSERT(node >= 0 && node < numCores(), "bad node id %d", node);
    return *dirs[static_cast<std::size_t>(node)];
}

MemoryController &
CoherentSystem::memoryController(int idx)
{
    INPG_ASSERT(idx >= 0 && idx < static_cast<int>(mcs.size()),
                "bad MC index %d", idx);
    return *mcs[static_cast<std::size_t>(idx)];
}

Directory &
CoherentSystem::homeOf(Addr addr)
{
    return directory(cohCfg.homeOf(addr));
}

std::string
CoherentSystem::checkSwmr(Addr addr) const
{
    int writers = 0;
    int owners = 0;
    int sharers = 0;
    for (const auto &l1 : l1s) {
        switch (l1->lineState(addr)) {
          case L1State::M:
          case L1State::E:
            ++writers;
            break;
          case L1State::O:
            ++owners;
            break;
          case L1State::S:
            ++sharers;
            break;
          case L1State::I:
            break;
        }
    }
    if (writers > 1)
        return format("%d cores hold M/E on 0x%llx", writers,
                      static_cast<unsigned long long>(addr));
    if (writers == 1 && (sharers > 0 || owners > 0))
        return format("M/E coexists with %d sharers / %d owners on "
                      "0x%llx",
                      sharers, owners,
                      static_cast<unsigned long long>(addr));
    if (owners > 1)
        return format("%d cores hold O on 0x%llx", owners,
                      static_cast<unsigned long long>(addr));
    return "";
}

void
CoherentSystem::setOpLog(const L1Controller::OpLogFn &fn)
{
    for (auto &l1 : l1s)
        l1->setOpLog(fn);
}

void
CoherentSystem::setTelemetry(Telemetry *t)
{
    net->setTelemetry(t);
    if (t && t->trace) {
        for (const auto &d : dirs) {
            t->trace->nameTrack(
                TrackGroup::Directories,
                static_cast<std::uint32_t>(d->nodeId()),
                format("dir %d", d->nodeId()));
        }
    }
}

} // namespace inpg
