/**
 * @file
 * Memory controller: the DRAM-side latency model behind the L2 banks.
 *
 * The paper's platform has 8 memory controllers on the top/bottom rows.
 * Lock lines live in the shared L2 after first touch, so DRAM appears
 * only on cold misses; we model each controller as a fixed-latency,
 * bandwidth-limited (one request per `serviceInterval` cycles) queue.
 * Directories call into the controller owning their mesh column.
 */

#ifndef INPG_COH_MEMORY_CONTROLLER_HH
#define INPG_COH_MEMORY_CONTROLLER_HH

#include <functional>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/simulator.hh"

namespace inpg {

/** Fixed-latency DRAM access queue. */
class MemoryController
{
  public:
    /**
     * @param mc_id            controller index (0..7 on the 8x8 mesh)
     * @param sim              kernel (event scheduling)
     * @param access_latency   DRAM access latency in cycles
     * @param service_interval min cycles between request starts
     */
    MemoryController(int mc_id, Simulator &sim, Cycle access_latency,
                     Cycle service_interval = 4);

    /**
     * Issue a line fetch; `done` fires when the data would return.
     * Requests are serialized at `serviceInterval` per-controller.
     */
    void fetch(Addr addr, std::function<void()> done);

    int id() const { return mcId; }

    StatGroup stats;

  private:
    int mcId;
    Simulator &sim;
    Cycle latency;
    Cycle serviceInterval;
    Cycle nextFreeSlot = 0;
};

} // namespace inpg

#endif // INPG_COH_MEMORY_CONTROLLER_HH
