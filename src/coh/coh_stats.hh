/**
 * @file
 * System-wide coherence statistics shared by all L1 controllers and
 * directories: the Inv-Ack round-trip measurements behind paper
 * Figure 10, plus protocol event counters.
 */

#ifndef INPG_COH_COH_STATS_HH
#define INPG_COH_COH_STATS_HH

#include <vector>

#include "common/histogram.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace inpg {

/** Shared coherence statistics sink. */
class CohStats
{
  public:
    /**
     * @param num_cores        cores in the system
     * @param rtt_bin_width    histogram bin width in cycles
     * @param rtt_bins         number of histogram bins
     */
    explicit CohStats(int num_cores, std::uint64_t rtt_bin_width = 5,
                      std::size_t rtt_bins = 40)
        : rttPerCore(static_cast<std::size_t>(num_cores)),
          rttHistogram(rtt_bin_width, rtt_bins),
          counters("coh")
    {}

    /**
     * Record one completed invalidation-acknowledgement round trip.
     *
     * @param core      the invalidated core
     * @param rtt       cycles from Inv generation to ack consumption
     * @param early     true when a big router generated the Inv
     */
    void
    recordInvAckRtt(CoreId core, Cycle rtt, bool early)
    {
        if (core >= 0 &&
            core < static_cast<CoreId>(rttPerCore.size()))
            rttPerCore[static_cast<std::size_t>(core)].add(
                static_cast<double>(rtt));
        rttHistogram.add(rtt);
        (early ? rttEarly : rttHome).add(static_cast<double>(rtt));
        ++counters.counter(early ? "early_inv_ack_rtt"
                                 : "home_inv_ack_rtt");
    }

    void
    reset()
    {
        for (auto &s : rttPerCore)
            s.reset();
        rttHistogram.reset();
        rttEarly.reset();
        rttHome.reset();
        counters.reset();
    }

    /** Per-core Inv-Ack round-trip samples (Figure 10a / 10c). */
    std::vector<SampleStat> rttPerCore;

    /** Global round-trip histogram (Figure 10b / 10d). */
    Histogram rttHistogram;

    /** Round trips of big-router (early) invalidations. */
    SampleStat rttEarly;

    /** Round trips of home-node invalidations. */
    SampleStat rttHome;

    /** Aggregate protocol counters. */
    StatGroup counters;
};

} // namespace inpg

#endif // INPG_COH_COH_STATS_HH
