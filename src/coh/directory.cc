#include "coh/directory.hh"

#include "coh/protocol_tables.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "telemetry/telemetry.hh"

namespace inpg {

namespace {

/** Directory-entry state as classified by the protocol table. */
DirState
dirStateFor(const Directory::DirEntry &e, CoreId requester)
{
    if (e.owner == INVALID_NODE)
        return e.sharers.empty() ? DirState::Uncached : DirState::Shared;
    return e.owner == requester ? DirState::OwnedSelf : DirState::Owned;
}

/** Map a serialized message onto the directory event space. */
DirEvent
dirEventFor(const CohMsgPtr &msg)
{
    switch (msg->kind) {
      case CohMsgKind::GetS:
        return DirEvent::GetS;
      case CohMsgKind::GetX:
        return msg->demotable ? DirEvent::GetXDemotable : DirEvent::GetX;
      case CohMsgKind::InvAck:
        return DirEvent::EarlyInvAck;
      default:
        break;
    }
    panic("directory cannot process %s", msg->toString().c_str());
}

} // namespace

Directory::Directory(NodeId node_id, const CohConfig &config,
                     Network &network, Simulator &simulator,
                     MemoryController *memory, CohStats *coh_stats)
    : node(node_id), cfg(config), net(network), sim(simulator),
      mem(memory), cohStats(coh_stats)
{
    stats = StatGroup(format("dir%d", node_id));
    msgsReceivedCtr = &stats.counter("msgs_received");
    msgsSentCtr = &stats.counter("msgs_sent");
    queueDepthSample = &stats.sample("queue_depth_at_dequeue");
}

std::string
Directory::tickName() const
{
    return format("dir%d", node);
}

Directory::DirEntry &
Directory::entryFor(Addr line)
{
    if (cfg.flatContainers)
        return entriesFlat[line];
    return entriesRef[line];
}

const Directory::DirEntry *
Directory::findEntry(Addr line) const
{
    if (cfg.flatContainers)
        return entriesFlat.find(line);
    auto it = entriesRef.find(line);
    return it == entriesRef.end() ? nullptr : &it->second;
}

const Directory::DirEntry *
Directory::entry(Addr addr) const
{
    return findEntry(cfg.lineBase(addr));
}

void
Directory::initValue(Addr addr, std::uint64_t value)
{
    DirEntry &e = entryFor(cfg.lineBase(addr));
    INPG_ASSERT(e.cold, "initValue on an already active line");
    e.value = value;
}

void
Directory::receiveMessage(const CohMsgPtr &msg, Cycle now)
{
    INPG_ASSERT(cfg.homeOf(msg->addr) == node,
                "message homed at %d delivered to directory %d",
                cfg.homeOf(msg->addr), node);
    (void)now;
    queue.push_back(msg);
    ++*msgsReceivedCtr;
    if (msg->kind == CohMsgKind::GetS || msg->kind == CohMsgKind::GetX) {
        Telemetry *t = sim.telemetry();
        if (t && t->lco)
            t->lco->dirArrived(msg->requester, now);
    }
    wakeSelf();
}

void
Directory::tick(Cycle now)
{
    if (blockedOnFetch || queue.empty()) {
        // Ticks stay no-ops until receiveMessage() or the DRAM-fetch
        // completion, and both wake us.
        suspendSelf();
        return;
    }
    if (now < busyUntil)
        return; // stay awake: nothing will wake us at busyUntil

    CohMsgPtr msg = queue.front();
    queue.pop_front();
    queueDepthSample->add(static_cast<double>(queue.size()));

    const Cycle cost = msg->kind == CohMsgKind::InvAck ? cfg.dirAckLatency
                                                       : cfg.l2Latency;
    busyUntil = now + cost;

    if (Telemetry *t = sim.telemetry(); t && t->trace) {
        t->trace->duration(TrackGroup::Directories,
                           static_cast<std::uint32_t>(node),
                           cohMsgKindName(msg->kind), now, cost,
                           static_cast<std::uint64_t>(msg->requester));
    }

    DirEntry &e = entryFor(cfg.lineBase(msg->addr));
    if (e.cold &&
        (msg->kind == CohMsgKind::GetS || msg->kind == CohMsgKind::GetX)) {
        // First touch: block the bank on the DRAM fetch, then service.
        e.cold = false;
        blockedOnFetch = true;
        ++stats.counter("cold_misses");
        mem->fetch(msg->addr, [this, msg] {
            blockedOnFetch = false;
            busyUntil = sim.now();
            wakeSelf();
            process(msg, sim.now());
        });
        return;
    }

    // Responses leave when the L2 access completes.
    sim.events().schedule(busyUntil,
                          [this, msg] { process(msg, sim.now()); });
}

void
Directory::process(const CohMsgPtr &msg, Cycle now)
{
    INPG_TRACE_LINE("dir", now, "DIR %d PROC %s", node,
                    msg->toString().c_str());
    DirEntry &e = entryFor(cfg.lineBase(msg->addr));
    if (msg->kind == CohMsgKind::GetS || msg->kind == CohMsgKind::GetX) {
        // Fires when the bank finishes serving the request, so the
        // closed span covers queue wait + occupancy (+ DRAM).
        Telemetry *t = sim.telemetry();
        if (t && t->lco)
            t->lco->dirServed(msg->requester, now);
    }

    // Table dispatch: classify the entry against the requester and the
    // message onto the declarative directory table; an unhandled or
    // declared-illegal pair (e.g. a GetS from the recorded owner, which
    // the imperative code would have answered with a self-forward)
    // panics with the precise coordinates.
    const DirEvent ev = dirEventFor(msg);
    const DirState st = dirStateFor(e, msg->requester);
    const ProtoTransition &tr = directoryProtocolTable().require(
        static_cast<int>(st), static_cast<int>(ev));

    if (Telemetry *t = sim.telemetry(); t && t->recorder) {
        // Table/state/event names are static strings: stored by
        // pointer, no formatting on the hot path.
        t->recorder->record(FrKind::ProtoDispatch, now, node, msg->addr,
                            static_cast<std::uint64_t>(msg->requester),
                            "dir", dirStateName(static_cast<int>(st)),
                            dirEventName(static_cast<int>(ev)));
    }

    switch (ev) {
      case DirEvent::GetS:
        ++stats.counter("gets");
        break;
      case DirEvent::GetX:
      case DirEvent::GetXDemotable:
        ++stats.counter("getx");
        if (msg->earlyInvalidated) {
            ++stats.counter("getx_early_invalidated");
            // The big router pre-invalidated on this request's behalf:
            // mark the requester's acquire as big-router-served.
            Telemetry *t = sim.telemetry();
            if (t && t->lco)
                t->lco->earlyInvSeen(msg->requester);
        }
        break;
      case DirEvent::EarlyInvAck:
        INPG_ASSERT(msg->fromBigRouter,
                    "directory %d got a non-early InvAck: %s", node,
                    msg->toString().c_str());
        ++stats.counter("early_acks");
        break;
    }

    switch (static_cast<DirAction>(tr.action)) {
      case DirAction::GrantExclusive:
        grantExclusive(msg, e, now);
        break;
      case DirAction::AnswerShared:
        answerShared(msg, e, now);
        break;
      case DirAction::ForwardGetS:
        forwardGetS(msg, e, now);
        break;
      case DirAction::InvalidateAndGrant:
        invalidateAndGrant(msg, e, now);
        break;
      case DirAction::ForwardGetX:
        forwardGetX(msg, e, now);
        break;
      case DirAction::OwnerUpgrade:
        ownerUpgrade(msg, e, now);
        break;
      case DirAction::DemoteViaOwner:
        demoteViaOwner(msg, e, now);
        break;
      case DirAction::DemoteOrGrant:
        // The home holds the line: demote only while the lock reads
        // held; a free lock falls through to the full exclusive grant
        // so the acquire can actually write (paper Fig. 4 Step 4).
        if (e.value != 0)
            demoteAtHome(msg, e, now);
        else
            invalidateAndGrant(msg, e, now);
        break;
      case DirAction::TrimSharer:
        trimSharer(msg, e, now);
        break;
      default:
        panic("directory %d: table action %d has no dispatch for %s",
              node, tr.action, msg->toString().c_str());
    }

    // Arm the trim guard only after the action ran: the marked GetX's
    // own demote registration belongs to the same transaction, not a
    // newer one. A second early-invalidated GetX from a core whose
    // ack is still in flight is ambiguous -- forgo both trims (the
    // trim is an optimization; skipping it only costs one redundant
    // Inv/Ack round trip later).
    if ((ev == DirEvent::GetX || ev == DirEvent::GetXDemotable) &&
        msg->earlyInvalidated) {
        if (!e.eiPending.insert(msg->requester).second) {
            e.eiPending.erase(msg->requester);
            ++stats.counter("ei_guard_ambiguous");
        }
    }
}

void
Directory::grantExclusive(const CohMsgPtr &msg, DirEntry &e, Cycle now)
{
    // Uncached read: grant exclusivity (MOESI E state).
    const CoreId req = msg->requester;
    e.owner = req;
    auto data = std::make_shared<CoherenceMsg>();
    data->kind = CohMsgKind::DataExcl;
    data->addr = msg->addr;
    data->requester = req;
    data->value = e.value;
    data->ackCount = 0;
    data->isLock = msg->isLock;
    send(data, req, now);
    ++stats.counter("excl_grants");
}

void
Directory::answerShared(const CohMsgPtr &msg, DirEntry &e, Cycle now)
{
    const CoreId req = msg->requester;
    e.sharers.insert(req);
    // A fresh registration invalidates any EI ack still in flight.
    e.eiPending.erase(req);
    auto data = std::make_shared<CoherenceMsg>();
    data->kind = CohMsgKind::Data;
    data->addr = msg->addr;
    data->requester = req;
    data->value = e.value;
    data->isLock = msg->isLock;
    send(data, req, now);
}

void
Directory::forwardGetS(const CohMsgPtr &msg, DirEntry &e, Cycle now)
{
    // Owner supplies the data; it transitions M/E/O -> O.
    const CoreId req = msg->requester;
    auto fwd = std::make_shared<CoherenceMsg>();
    fwd->kind = CohMsgKind::FwdGetS;
    fwd->addr = msg->addr;
    fwd->requester = req;
    fwd->isLock = msg->isLock;
    fwd->epoch = epochCounter;
    e.sharers.insert(req);
    // A fresh registration invalidates any EI ack still in flight.
    e.eiPending.erase(req);
    send(fwd, e.owner, now);
    ++stats.counter("fwd_gets");
}

void
Directory::invalidateAndGrant(const CohMsgPtr &msg, DirEntry &e,
                              Cycle now)
{
    // No owner: the home supplies data; invalidate all other sharers.
    const CoreId req = msg->requester;
    const std::uint64_t epoch = ++epochCounter;
    std::set<CoreId> to_inv = e.sharers;
    to_inv.erase(req);
    sendInvalidations(to_inv, msg->addr, req, msg->isLock, epoch, now);

    auto data = std::make_shared<CoherenceMsg>();
    data->kind = CohMsgKind::DataExcl;
    data->addr = msg->addr;
    data->requester = req;
    data->value = e.value;
    data->ackCount = static_cast<int>(to_inv.size());
    data->isLock = msg->isLock;
    data->epoch = epoch;
    send(data, req, now);

    e.owner = req;
    e.sharers.clear();
}

void
Directory::forwardGetX(const CohMsgPtr &msg, DirEntry &e, Cycle now)
{
    const CoreId req = msg->requester;
    const std::uint64_t epoch = ++epochCounter;
    std::set<CoreId> to_inv = e.sharers;
    to_inv.erase(req);
    to_inv.erase(e.owner);

    auto fwd = std::make_shared<CoherenceMsg>();
    fwd->kind = CohMsgKind::FwdGetX;
    fwd->addr = msg->addr;
    fwd->requester = req;
    fwd->isLock = msg->isLock;
    fwd->epoch = epoch;
    send(fwd, e.owner, now);
    ++stats.counter("fwd_getx");

    auto ack = std::make_shared<CoherenceMsg>();
    ack->kind = CohMsgKind::AckCount;
    ack->addr = msg->addr;
    ack->requester = req;
    ack->ackCount = static_cast<int>(to_inv.size());
    ack->isLock = msg->isLock;
    ack->epoch = epoch;
    send(ack, req, now);

    sendInvalidations(to_inv, msg->addr, req, msg->isLock, epoch, now);
    e.owner = req;
    e.sharers.clear();
}

void
Directory::ownerUpgrade(const CohMsgPtr &msg, DirEntry &e, Cycle now)
{
    // Upgrade from O: the requester already holds the data.
    const CoreId req = msg->requester;
    const std::uint64_t epoch = ++epochCounter;
    std::set<CoreId> to_inv = e.sharers;
    to_inv.erase(req);

    auto ack = std::make_shared<CoherenceMsg>();
    ack->kind = CohMsgKind::AckCount;
    ack->addr = msg->addr;
    ack->requester = req;
    ack->ackCount = static_cast<int>(to_inv.size());
    ack->isLock = msg->isLock;
    ack->epoch = epoch;
    ack->ownerUpgrade = true;
    send(ack, req, now);
    ++stats.counter("upgrades");

    sendInvalidations(to_inv, msg->addr, req, msg->isLock, epoch, now);
    e.owner = req;
    e.sharers.clear();
}

void
Directory::demoteViaOwner(const CohMsgPtr &msg, DirEntry &e, Cycle now)
{
    // Demotable lock acquire while another core owns the line: the
    // owner supplies a shared copy; no ownership transfer, no
    // invalidations, no ack storm.
    const CoreId req = msg->requester;
    ++stats.counter("getx_demoted_via_owner");
    e.sharers.insert(req);
    // A fresh registration invalidates any EI ack still in flight.
    e.eiPending.erase(req);
    auto fwd = std::make_shared<CoherenceMsg>();
    fwd->kind = CohMsgKind::FwdGetS;
    fwd->addr = msg->addr;
    fwd->requester = req;
    fwd->isLock = msg->isLock;
    fwd->demoted = true;
    fwd->epoch = epochCounter;
    send(fwd, e.owner, now);
}

void
Directory::demoteAtHome(const CohMsgPtr &msg, DirEntry &e, Cycle now)
{
    // The home holds the (locked) value: answer directly.
    const CoreId req = msg->requester;
    ++stats.counter("getx_demoted_at_home");
    e.sharers.insert(req);
    // A fresh registration invalidates any EI ack still in flight.
    e.eiPending.erase(req);
    auto data = std::make_shared<CoherenceMsg>();
    data->kind = CohMsgKind::Data;
    data->addr = msg->addr;
    data->requester = req;
    data->value = e.value;
    data->isLock = msg->isLock;
    data->demoted = true;
    send(data, req, now);
}

void
Directory::trimSharer(const CohMsgPtr &msg, DirEntry &e, Cycle now)
{
    (void)now;
    // (The early Inv-Ack round trip was recorded at the relaying big
    // router; here only the sharer list is trimmed.)
    // The acking core's shared copy is gone; if it was still recorded
    // as a sharer, the next GetX no longer needs to invalidate it.
    // Guarded: an ack that was overtaken by a newer registration of
    // the same core (its GetS beat the relayed ack home) must be
    // ignored, or the next Inv storm would skip a live copy.
    if (!e.eiPending.erase(msg->requester)) {
        ++stats.counter("early_acks_overtaken");
        return;
    }
    if (e.sharers.erase(msg->requester))
        ++stats.counter("early_acks_applied");
    else
        ++stats.counter("early_acks_stale");
}

void
Directory::sendInvalidations(const std::set<CoreId> &targets, Addr addr,
                             NodeId collector, bool is_lock,
                             std::uint64_t epoch, Cycle now)
{
    for (CoreId c : targets) {
        auto inv = std::make_shared<CoherenceMsg>();
        inv->kind = CohMsgKind::Inv;
        inv->addr = addr;
        inv->requester = c;
        inv->collector = collector;
        inv->isLock = is_lock;
        inv->epoch = epoch;
        inv->invGeneratedAt = now;
        send(inv, c, now);
        ++stats.counter("invalidations_sent");
    }
}

void
Directory::send(const CohMsgPtr &msg, NodeId dst, Cycle now)
{
    ++sendCounter;
    if (cfg.dropDirResponseNth != 0 &&
        sendCounter == cfg.dropDirResponseNth) {
        // Test-only hang seeder (see CohConfig::dropDirResponseNth):
        // swallow this message deterministically so the watchdog path
        // can be exercised end-to-end.
        ++stats.counter("msgs_dropped_testknob");
        if (Telemetry *t = sim.telemetry(); t && t->recorder) {
            t->recorder->record(FrKind::MsgDrop, now, node, msg->addr,
                                static_cast<std::uint64_t>(dst),
                                cohMsgKindName(msg->kind));
        }
        return;
    }
    if (Telemetry *t = sim.telemetry(); t && t->recorder) {
        t->recorder->record(FrKind::MsgSend, now, node, msg->addr,
                            static_cast<std::uint64_t>(dst),
                            cohMsgKindName(msg->kind));
    }
    const int flits = carriesData(msg->kind) ? net.config().dataPacketFlits
                                             : net.config().ctrlPacketFlits;
    PacketPtr pkt =
        net.makePacket(node, dst, vnetForKind(msg->kind), flits, msg);
    net.inject(pkt, now);
    ++*msgsSentCtr;
}

JsonValue
Directory::debugJson(Cycle now) const
{
    JsonValue out = JsonValue::object();
    out["node"] = static_cast<long long>(node);
    out["queue_depth"] = static_cast<std::uint64_t>(queue.size());
    out["busy"] = busyUntil > now;
    if (busyUntil > now)
        out["busy_for"] = static_cast<std::uint64_t>(busyUntil - now);
    out["blocked_on_fetch"] = blockedOnFetch;
    JsonValue queued = JsonValue::array();
    std::size_t shown = 0;
    for (const CohMsgPtr &m : queue) {
        if (++shown > 8)
            break;
        queued.push(m->toString());
    }
    out["queued"] = std::move(queued);
    return out;
}

} // namespace inpg
