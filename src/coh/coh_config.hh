/**
 * @file
 * Cache hierarchy parameters (paper Table 1 defaults) and the
 * address-to-home mapping.
 */

#ifndef INPG_COH_COH_CONFIG_HH
#define INPG_COH_COH_CONFIG_HH

#include "common/types.hh"

namespace inpg {

/** Memory-system configuration shared by L1s and directories. */
struct CohConfig {
    /** Cache block size in bytes (Table 1: 128 B). */
    Addr lineSize = 128;

    /** Private L1 access latency in cycles (Table 1: 2). */
    Cycle l1Latency = 2;

    /** Shared L2 / directory access latency in cycles (Table 1: 6). */
    Cycle l2Latency = 6;

    /** Directory occupancy for pure bookkeeping messages (InvAck). */
    Cycle dirAckLatency = 1;

    /** Extra latency charged on a cold (first-touch) L2 miss to DRAM. */
    Cycle memLatency = 50;

    /** Number of L2 banks == number of nodes (one bank per tile). */
    int numNodes = 64;

    /**
     * Use the open-addressing FlatHashMap for the directory and L1
     * line tables instead of the node-based std:: containers. Both
     * produce bit-identical simulations (protocol code never iterates
     * these maps); the std:: path is kept as the differential-testing
     * and benchmarking reference.
     */
    bool flatContainers = true;

    /**
     * Test-only hang seeder: when non-zero, every directory silently
     * drops the N-th message it sends (counting from 1, counted per
     * directory, deterministically). The lost response wedges the
     * requester's MSHR and, through deferred forwards, the line --
     * exactly the failure mode the progress watchdog exists to
     * diagnose. 0 (the default) disables the knob; it must never be
     * set outside watchdog tests (`drop_dir_response` override).
     */
    std::uint64_t dropDirResponseNth = 0;

    /** Line-aligned base of an address. */
    Addr lineBase(Addr a) const { return a & ~(lineSize - 1); }

    /** Home node (L2 bank / directory) of an address: line interleave. */
    NodeId
    homeOf(Addr a) const
    {
        return static_cast<NodeId>((a / lineSize) %
                                   static_cast<Addr>(numNodes));
    }

    /**
     * Pick the n-th line address homed at a specific node (used by the
     * workload layer to place locks, e.g. Fig. 10 hosts the contended
     * lock at tile (5,6)).
     */
    Addr
    lineHomedAt(NodeId home, Addr n = 0) const
    {
        return (static_cast<Addr>(home) +
                n * static_cast<Addr>(numNodes)) * lineSize;
    }
};

} // namespace inpg

#endif // INPG_COH_COH_CONFIG_HH
