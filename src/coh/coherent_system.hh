/**
 * @file
 * CoherentSystem: wires one L1 controller, one directory (shared L2
 * bank) and the NI demux on every tile of a mesh, plus the memory
 * controllers — the complete cache-coherent many-core substrate the
 * lock primitives run on.
 */

#ifndef INPG_COH_COHERENT_SYSTEM_HH
#define INPG_COH_COHERENT_SYSTEM_HH

#include <memory>
#include <vector>

#include "coh/coh_config.hh"
#include "coh/coh_stats.hh"
#include "coh/directory.hh"
#include "coh/l1_controller.hh"
#include "coh/memory_controller.hh"
#include "noc/network.hh"
#include "sim/simulator.hh"

namespace inpg {

/** A full cache-coherent mesh: NoC + L1s + directories + MCs. */
class CoherentSystem
{
  public:
    /**
     * @param noc_cfg NoC parameters (mesh size, VCs, policy)
     * @param coh_cfg memory-system parameters
     * @param sim     kernel
     * @param factory optional router factory (iNPG big routers)
     */
    CoherentSystem(const NocConfig &noc_cfg, const CohConfig &coh_cfg,
                   Simulator &sim, RouterFactory factory = nullptr);

    Network &network() { return *net; }
    L1Controller &l1(CoreId core);
    Directory &directory(NodeId node);
    MemoryController &memoryController(int idx);
    CohStats &cohStats() { return *stats; }
    const CohConfig &cohConfig() const { return cohCfg; }

    int numCores() const { return static_cast<int>(l1s.size()); }
    int numMemoryControllers() const
    {
        return static_cast<int>(mcs.size());
    }

    /** Directory of the home node for an address. */
    Directory &homeOf(Addr addr);

    /**
     * Check the single-writer/multiple-reader invariant across all L1s.
     * @return empty string if it holds, else a description.
     */
    std::string checkSwmr(Addr addr) const;

    /** Attach one op-log sink to every L1. */
    void setOpLog(const L1Controller::OpLogFn &fn);

    /**
     * Forward the telemetry facade into the NoC (packet tracking) and
     * name the coherence-side trace tracks. The L1s and directories
     * read it lazily through the simulator.
     */
    void setTelemetry(Telemetry *t);

  private:
    CohConfig cohCfg;
    std::unique_ptr<CohStats> stats;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<L1Controller>> l1s;
    std::vector<std::unique_ptr<Directory>> dirs;
    std::vector<std::unique_ptr<MemoryController>> mcs;
};

} // namespace inpg

#endif // INPG_COH_COHERENT_SYSTEM_HH
