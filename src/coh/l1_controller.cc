#include "coh/l1_controller.hh"

#include <algorithm>

#include "coh/protocol_tables.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "telemetry/telemetry.hh"

namespace inpg {

// The declarative table (coh/protocol_tables.cc) is keyed by the int
// values of L1State; pin the correspondence.
static_assert(static_cast<int>(L1State::I) == 0 &&
                  static_cast<int>(L1State::S) == 1 &&
                  static_cast<int>(L1State::E) == 2 &&
                  static_cast<int>(L1State::M) == 3 &&
                  static_cast<int>(L1State::O) == 4 &&
                  L1_NUM_STATES == 5,
              "L1State layout must match the protocol table");

namespace {

/** LCO tracker when telemetry is enabled with lco, else nullptr. */
inline LcoTracker *
lcoOf(Simulator &sim)
{
    Telemetry *t = sim.telemetry();
    return t ? t->lco : nullptr;
}

} // namespace

const char *
l1StateName(L1State s)
{
    switch (s) {
      case L1State::I:
        return "I";
      case L1State::S:
        return "S";
      case L1State::E:
        return "E";
      case L1State::M:
        return "M";
      case L1State::O:
        return "O";
    }
    return "?";
}

L1Controller::L1Controller(CoreId core_id, NodeId node_id,
                           const CohConfig &config, Network &network,
                           Simulator &simulator, CohStats *coh_stats)
    : core(core_id), node(node_id), cfg(config), net(network),
      sim(simulator), cohStats(coh_stats)
{
    stats = StatGroup(format("l1_%d", core_id));
    // Cached: bumped once per retired memory op; also the watchdog's
    // per-core retirement progress signal.
    opsCompletedCtr = &stats.counter("ops_completed");
    opsIssuedCtr = &stats.counter("ops_issued");
    msgsSentCtr = &stats.counter("msgs_sent");
    lockCohCyclesCtr = &stats.counter("lock_coh_cycles");
    loadLatencySample = &stats.sample("load_latency");
    writeLatencySample = &stats.sample("write_latency");
    lockRmwLatencySample = &stats.sample("lock_rmw_latency");
    loadHitsCtr = &stats.counter("load_hits");
    loadMissesCtr = &stats.counter("load_misses");
    writeHitsCtr = &stats.counter("write_hits");
    writeMissesCtr = &stats.counter("write_misses");
    writeUpgradesCtr = &stats.counter("write_upgrades");
    preEpochFwdServedCtr = &stats.counter("pre_epoch_forwards_served");
    preEpochFwdServedEarlyCtr = &stats.counter("pre_epoch_forwards_served_early");
    atomicsDemotedCtr = &stats.counter("atomics_demoted");
    fwdGetsServedCtr = &stats.counter("fwd_gets_served");
    fwdGetxServedCtr = &stats.counter("fwd_getx_served");
    forwardsChainedCtr = &stats.counter("forwards_chained");
    invalidationsCtr = &stats.counter("invalidations");
    invOnInvalidCtr = &stats.counter("inv_on_invalid");
    staleInvOnOwnerCtr = &stats.counter("stale_inv_on_owner");
    forwardsDeferredCtr = &stats.counter("forwards_deferred");
    invAcksCollectedCtr = &stats.counter("inv_acks_collected");
}

L1Controller::Line &
L1Controller::line(Addr addr)
{
    const Addr base = cfg.lineBase(addr);
    if (cfg.flatContainers)
        return linesFlat[base];
    return linesRef[base];
}

const L1Controller::Line *
L1Controller::findLine(Addr addr) const
{
    const Addr base = cfg.lineBase(addr);
    if (cfg.flatContainers)
        return linesFlat.find(base);
    auto it = linesRef.find(base);
    return it == linesRef.end() ? nullptr : &it->second;
}

L1State
L1Controller::lineState(Addr addr) const
{
    const Line *l = findLine(addr);
    return l ? l->state : L1State::I;
}

std::uint64_t
L1Controller::lineValue(Addr addr) const
{
    const Line *l = findLine(addr);
    INPG_ASSERT(l && l->state != L1State::I,
                "reading value of invalid line 0x%llx",
                static_cast<unsigned long long>(addr));
    return l->value;
}

void
L1Controller::issueLoad(Addr addr, bool is_lock, Completion done)
{
    Pending op;
    op.kind = OpRecord::Kind::Load;
    op.addr = cfg.lineBase(addr);
    op.isLock = is_lock;
    op.done = std::move(done);
    startOperation(std::move(op));
}

void
L1Controller::issueStore(Addr addr, std::uint64_t value, bool is_lock,
                         Completion done)
{
    Pending op;
    op.kind = OpRecord::Kind::Store;
    op.addr = cfg.lineBase(addr);
    op.operandA = value;
    op.isLock = is_lock;
    op.done = std::move(done);
    startOperation(std::move(op));
}

void
L1Controller::issueAtomic(Addr addr, AtomicOp atomic_op, std::uint64_t a,
                          std::uint64_t b, bool is_lock,
                          AtomicCompletion done, bool demotable)
{
    Pending op;
    op.kind = OpRecord::Kind::Atomic;
    op.op = atomic_op;
    op.addr = cfg.lineBase(addr);
    op.operandA = a;
    op.operandB = b;
    op.isLock = is_lock;
    // Only failure-idempotent ops may be demoted.
    op.demotable = demotable &&
        (atomic_op == AtomicOp::Swap || atomic_op == AtomicOp::Cas);
    op.atomicDone = std::move(done);
    startOperation(std::move(op));
}

void
L1Controller::startOperation(Pending &&op)
{
    INPG_ASSERT(!pending, "core %d issued an op while one is outstanding",
                core);
    op.issuedAt = sim.now();
    ++*opsIssuedCtr;
    if (LcoTracker *lco = lcoOf(sim))
        lco->opIssued(core, op.issuedAt);
    pending.emplace(std::move(op));
    // The L1 array access takes l1Latency cycles; hit/miss is decided
    // when it completes (the line may change state in between).
    sim.scheduleIn(cfg.l1Latency, [this] {
        INPG_ASSERT(pending, "L1 latency event with no pending op");
        Pending op_now = std::move(*pending);
        pending.reset();
        issueAfterL1Latency(std::move(op_now));
    });
}

void
L1Controller::issueAfterL1Latency(Pending &&op)
{
    Line &l = line(op.addr);
    const Cycle now = sim.now();

    // Table dispatch: the declarative MOESI table names the action for
    // this (line state, core event) pair; an undeclared pair panics
    // with the precise coordinates.
    const L1Event ev = op.kind == OpRecord::Kind::Load
                           ? L1Event::CoreLoad
                           : L1Event::CoreWrite;
    const ProtoTransition &tr = l1ProtocolTable().require(
        static_cast<int>(l.state), static_cast<int>(ev));

    switch (static_cast<L1Action>(tr.action)) {
      case L1Action::LoadHit:
        ++*loadHitsCtr;
        pending.emplace(std::move(op));
        pending->hasData = true;
        pending->data = l.value;
        executePendingOp(now);
        return;
      case L1Action::BeginLoadMiss:
        ++*loadMissesCtr;
        op.exclusive = false;
        beginMiss(std::move(op));
        return;
      case L1Action::WriteHit:
        ++*writeHitsCtr;
        l.state = L1State::M;
        pending.emplace(std::move(op));
        pending->hasData = true;
        pending->data = l.value;
        executePendingOp(now);
        return;
      case L1Action::BeginUpgrade:
        // Upgrade attempt. Whether this serializes as an upgrade (we
        // keep the data) or as a chain GetX (an earlier-serialized
        // FwdGetX takes our copy first) is only known when the home
        // answers; capture no data here. The request must NOT be
        // demotable: a demoted transaction never learns its epoch, so
        // an owner with one pending could hold deferred forwards
        // forever and deadlock the ownership chain.
        ++*writeUpgradesCtr;
        op.exclusive = true;
        op.demotable = false;
        beginMiss(std::move(op));
        return;
      case L1Action::BeginWriteMiss:
        ++*writeMissesCtr;
        op.exclusive = true;
        beginMiss(std::move(op));
        return;
      default:
        panic("L1 %d: core-event action %d has no dispatch", core,
              tr.action);
    }
}

void
L1Controller::beginMiss(Pending &&op)
{
    const Cycle now = sim.now();
    auto msg = std::make_shared<CoherenceMsg>();
    msg->kind = op.exclusive ? CohMsgKind::GetX : CohMsgKind::GetS;
    msg->addr = op.addr;
    msg->requester = core;
    msg->isLock = op.isLock;
    msg->demotable = op.exclusive && op.demotable;
    msg->isAtomicOp = op.kind == OpRecord::Kind::Atomic;
    msg->toDirectory = true;
    const NodeId home = cfg.homeOf(op.addr);
    const int prio = nextPriority;
    nextPriority = 0;
    if (LcoTracker *lco = lcoOf(sim))
        lco->requestSent(core, now);
    pending.emplace(std::move(op));
    send(msg, home, now, prio);
}

void
L1Controller::executePendingOp(Cycle now)
{
    INPG_ASSERT(pending && pending->hasData,
                "executing op without data on core %d", core);
    Pending op = std::move(*pending);
    pending.reset();
    ++*opsCompletedCtr;
    if (LcoTracker *lco = lcoOf(sim))
        lco->opCompleted(core, now);

    Line &l = line(op.addr);

    if (op.exclusive && op.epochKnown && !deferredForwards.empty()) {
        // Forwards serialized before our own GetX must observe the
        // pre-operation value: apply the fill provisionally and serve
        // them first (epoch order). Their targets' invalidations are
        // already counted in our ackCount, so no stale copy survives
        // our write. A pre-epoch FwdGetX cannot be deferred here (the
        // previous tenure must have ended for this GetX to exist), so
        // the line stays ours.
        std::stable_sort(deferredForwards.begin(), deferredForwards.end(),
                         [](const CohMsgPtr &a, const CohMsgPtr &b) {
                             return a->epoch < b->epoch;
                         });
        l.value = op.data;
        l.state = L1State::M;
        while (!deferredForwards.empty() &&
               deferredForwards.front()->epoch < op.myEpoch) {
            CohMsgPtr fwd = deferredForwards.front();
            INPG_ASSERT(fwd->kind == CohMsgKind::FwdGetS,
                        "core %d: pre-epoch %s deferred", core,
                        fwd->toString().c_str());
            deferredForwards.pop_front();
            serveForward(fwd, now);
            ++*preEpochFwdServedCtr;
        }
    }
    OpRecord rec;
    rec.kind = op.kind;
    rec.op = op.op;
    rec.addr = op.addr;
    rec.operandA = op.operandA;
    rec.operandB = op.operandB;
    rec.core = core;
    rec.executedAt = now;
    rec.oldValue = op.data;
    rec.demoted = op.demoted;

    if (op.demoted) {
        // Demoted atomic: the value was observed via a shared copy and
        // nothing was written (handleData installed the S copy).
        rec.newValue = op.data;
        ++*atomicsDemotedCtr;
        if (opLog)
            opLog(rec);
        if (op.atomicDone)
            op.atomicDone(rec.oldValue, true);
        processDeferredForwards(now);
        return;
    }

    switch (op.kind) {
      case OpRecord::Kind::Load:
        rec.newValue = op.data;
        // A load that was invalidated while filling consumes the value
        // without keeping a copy; handleData left the line in I then.
        break;
      case OpRecord::Kind::Store:
        l.value = op.operandA;
        l.state = L1State::M;
        rec.newValue = l.value;
        break;
      case OpRecord::Kind::Atomic:
        switch (op.op) {
          case AtomicOp::Swap:
            l.value = op.operandA;
            break;
          case AtomicOp::Cas:
            if (op.data == op.operandA)
                l.value = op.operandB;
            else
                l.value = op.data;
            break;
          case AtomicOp::FetchAdd:
            l.value = op.data + op.operandA;
            break;
          case AtomicOp::FetchOr:
            l.value = op.data | op.operandA;
            break;
          case AtomicOp::FetchAnd:
            l.value = op.data & op.operandA;
            break;
        }
        l.state = L1State::M;
        rec.newValue = l.value;
        break;
    }

    if (op.kind != OpRecord::Kind::Load) {
        writeLatencySample->add(static_cast<double>(now - op.issuedAt));
        if (op.isLock)
            lockRmwLatencySample->add(
                static_cast<double>(now - op.issuedAt));
    } else {
        loadLatencySample->add(static_cast<double>(now - op.issuedAt));
    }

    // Lock coherence overhead (paper Fig. 2): cycles a lock-variable
    // operation spent in the coherence protocol beyond the plain L1
    // access -- the time invalidations, forwards, data responses and
    // acks kept the thread from progressing.
    if (op.isLock) {
        const Cycle latency = now - op.issuedAt;
        if (latency > cfg.l1Latency)
            *lockCohCyclesCtr += latency - cfg.l1Latency;
    }

    if (opLog)
        opLog(rec);
    if (op.kind == OpRecord::Kind::Atomic) {
        if (op.atomicDone)
            op.atomicDone(rec.oldValue, false);
    } else if (op.done) {
        op.done(rec.oldValue);
    }
    processDeferredForwards(now);
}

void
L1Controller::maybeCompleteExclusive(Cycle now)
{
    if (!pending || !pending->exclusive)
        return;
    if (!pending->hasData || !pending->hasAckInfo)
        return;
    if (pending->acksReceived < pending->ackCount)
        return;
    INPG_ASSERT(pending->acksReceived == pending->ackCount,
                "core %d over-collected acks (%d of %d)", core,
                pending->acksReceived, pending->ackCount);
    executePendingOp(now);
}

void
L1Controller::processDeferredForwards(Cycle now)
{
    while (!deferredForwards.empty()) {
        CohMsgPtr msg = deferredForwards.front();
        deferredForwards.pop_front();
        serveForward(msg, now);
    }
}

void
L1Controller::serveForward(const CohMsgPtr &msg, Cycle now)
{
    Line &l = line(msg->addr);
    if (l.state == L1State::M || l.state == L1State::E ||
        l.state == L1State::O) {
        if (msg->kind == CohMsgKind::FwdGetS) {
            l.state = L1State::O;
            auto data = std::make_shared<CoherenceMsg>();
            data->kind = CohMsgKind::Data;
            data->addr = msg->addr;
            data->requester = msg->requester;
            data->value = l.value;
            data->isLock = msg->isLock;
            data->demoted = msg->demoted;
            data->epoch = msg->epoch;
            send(data, msg->requester, now);
            ++*fwdGetsServedCtr;
        } else {
            auto data = std::make_shared<CoherenceMsg>();
            data->kind = CohMsgKind::DataExcl;
            data->addr = msg->addr;
            data->requester = msg->requester;
            data->value = l.value;
            data->ackCount = -1; // ack info comes from the home
            data->isLock = msg->isLock;
            data->epoch = msg->epoch;
            l.state = L1State::I;
            l.forwardedTo = msg->requester;
            send(data, msg->requester, now);
            ++*fwdGetxServedCtr;
        }
        return;
    }
    // The line moved on before this (reordered) forward arrived or was
    // released from deferral; chase the ownership chain.
    INPG_ASSERT(l.forwardedTo != INVALID_NODE,
                "core %d cannot re-forward %s", core,
                msg->toString().c_str());
    send(msg, l.forwardedTo, now);
    ++*forwardsChainedCtr;
}

void
L1Controller::learnEpoch(std::uint64_t epoch, Cycle now)
{
    if (!pending || !pending->exclusive || pending->epochKnown)
        return;
    pending->epochKnown = true;
    pending->myEpoch = epoch;
    // If we still hold the pre-transaction copy (O-state upgrade that
    // serialized behind other writers), serve the pre-epoch forwards
    // from it now: their requesters precede us in the ownership chain
    // and a deferred pre-epoch FwdGetX would deadlock it. In the chain
    // case (no resident copy) pre-epoch FwdGetS entries wait for the
    // provisional fill at completion, and pre-epoch FwdGetX cannot
    // exist.
    Line &l = line(pendingAddrForAssert());
    if (!(l.state == L1State::M || l.state == L1State::E ||
          l.state == L1State::O))
        return;
    std::stable_sort(deferredForwards.begin(), deferredForwards.end(),
                     [](const CohMsgPtr &a, const CohMsgPtr &b) {
                         return a->epoch < b->epoch;
                     });
    while (!deferredForwards.empty() &&
           deferredForwards.front()->epoch < epoch) {
        CohMsgPtr fwd = deferredForwards.front();
        deferredForwards.pop_front();
        serveForward(fwd, now);
        ++*preEpochFwdServedEarlyCtr;
    }
}

Addr
L1Controller::pendingAddrForAssert() const
{
    INPG_ASSERT(pending, "no pending transaction");
    return pending->addr;
}

void
L1Controller::receiveMessage(const CohMsgPtr &msg, Cycle now)
{
    INPG_TRACE_LINE("l1", now, "L1 %d RECV %s", core,
                    msg->toString().c_str());
    // Table dispatch: classify the message onto the L1 event space
    // (GetS/GetX panic there -- they never target an L1) and require a
    // declared-legal transition for the current stable line state. A
    // pair the table marks illegal panics with the declared reason
    // instead of tripping a downstream assertion or hanging.
    const L1Event ev = l1EventForMsgKind(msg->kind);
    const int st = static_cast<int>(lineState(msg->addr));
    const ProtoTransition &tr =
        l1ProtocolTable().require(st, static_cast<int>(ev));

    if (Telemetry *t = sim.telemetry(); t && t->recorder) {
        // Static table/state/event names; stored by pointer.
        t->recorder->record(FrKind::ProtoDispatch, now, node, msg->addr,
                            static_cast<std::uint64_t>(core), "l1",
                            l1TableStateName(st),
                            l1EventName(static_cast<int>(ev)));
    }

    switch (static_cast<L1Action>(tr.action)) {
      case L1Action::AckInvalid:
      case L1Action::InvalidateAndAck:
      case L1Action::AckStaleInv:
        handleInv(msg, now);
        return;
      case L1Action::ServeFwdGetS:
      case L1Action::ServeFwdGetX:
      case L1Action::ChainForward:
        handleForward(msg, now);
        return;
      case L1Action::FillShared:
        handleData(msg, now);
        return;
      case L1Action::FillExclusive:
        handleDataExcl(msg, now);
        return;
      case L1Action::CollectAckInfo:
        handleAckCount(msg, now);
        return;
      case L1Action::CollectInvAck:
        handleInvAck(msg, now);
        return;
      default:
        panic("L1 %d: message action %d has no dispatch for %s", core,
              tr.action, msg->toString().c_str());
    }
}

void
L1Controller::handleInv(const CohMsgPtr &msg, Cycle now)
{
    Line &l = line(msg->addr);
    switch (l.state) {
      case L1State::S:
        l.state = L1State::I;
        ++*invalidationsCtr;
        break;
      case L1State::I:
        // Already invalid: either an early (big-router) invalidation of
        // a copy we no longer hold, or a home invalidation racing an
        // early one. Acking is idempotent and required for accounting.
        ++*invOnInvalidCtr;
        break;
      case L1State::E:
      case L1State::M:
      case L1State::O:
        // A stale invalidation targeting a shared copy we have since
        // upgraded past: the S copy it aimed at is already gone (our
        // own GetX consumed it). Keep the line, ack for accounting.
        ++*staleInvOnOwnerCtr;
        break;
    }

    // A fill in flight loses its right to keep the incoming shared
    // copy (reads, and demoted atomics racing a late early-Inv).
    if (pending && pending->addr == msg->addr)
        pending->invWhileFilling = true;

    if (msg->fromBigRouter) {
        if (LcoTracker *lco = lcoOf(sim))
            lco->earlyInvSeen(msg->requester);
    }

    auto ack = std::make_shared<CoherenceMsg>();
    ack->kind = CohMsgKind::InvAck;
    ack->addr = msg->addr;
    ack->requester = core;
    ack->collector = msg->collector;
    ack->isLock = msg->isLock;
    ack->fromBigRouter = msg->fromBigRouter;
    ack->invGeneratedAt = msg->invGeneratedAt;
    ack->epoch = msg->epoch;
    // Early acks are consumed by the home after the big-router relay;
    // home-epoch acks go straight to the collecting winner's L1.
    ack->toDirectory = false;
    send(ack, msg->collector, now);
}

void
L1Controller::handleForward(const CohMsgPtr &msg, Cycle now)
{
    // While a transaction on this line is outstanding, forwards are
    // held back and dispatched when ordering is known: pre-epoch ones
    // observe the pre-operation value (served straight away when we
    // still hold that copy in M/E/O), post-epoch ones the result.
    if (deferIncomingForward(msg)) {
        deferredForwards.push_back(msg);
        ++*forwardsDeferredCtr;
        return;
    }
    serveForward(msg, now);
}

bool
L1Controller::deferIncomingForward(const CohMsgPtr &msg) const
{
    if (!pending || pending->addr != msg->addr)
        return false;
    // Pre-epoch forward while the pre-transaction copy is still resident
    // (the O-state upgrade window): serve immediately -- deferring a
    // pre-epoch FwdGetX here would deadlock the ownership chain.
    if (pending->epochKnown && msg->epoch < pending->myEpoch) {
        L1State s = lineState(msg->addr);
        if (s == L1State::M || s == L1State::E || s == L1State::O)
            return false;
    }
    return true;
}

void
L1Controller::handleData(const CohMsgPtr &msg, Cycle now)
{
    INPG_ASSERT(pending && pending->addr == msg->addr &&
                    (!pending->exclusive || msg->demoted),
                "core %d got unexpected %s", core,
                msg->toString().c_str());
    if (LcoTracker *lco = lcoOf(sim))
        lco->responseArrived(core, now);
    Line &l = line(msg->addr);
    pending->hasData = true;
    pending->data = msg->value;
    pending->demoted = msg->demoted;
    if (!pending->invWhileFilling) {
        // Shared fill; a demoted lock acquire keeps the valid copy so
        // the thread can spin locally (paper Fig. 4 Step 4).
        l.value = msg->value;
        l.state = L1State::S;
    }
    executePendingOp(now);
}

void
L1Controller::handleDataExcl(const CohMsgPtr &msg, Cycle now)
{
    INPG_ASSERT(pending && pending->addr == msg->addr,
                "core %d got unexpected %s", core,
                msg->toString().c_str());
    if (LcoTracker *lco = lcoOf(sim))
        lco->responseArrived(core, now);
    if (!pending->exclusive) {
        // GetS answered exclusively: no other copy exists.
        INPG_ASSERT(msg->ackCount == 0, "DataExcl for a read with acks");
        Line &l = line(msg->addr);
        l.value = msg->value;
        l.state = L1State::E;
        pending->hasData = true;
        pending->data = msg->value;
        executePendingOp(now);
        return;
    }
    pending->hasData = true;
    pending->data = msg->value;
    if (msg->ackCount >= 0) {
        // Data supplied by the home; the ack count rides along.
        INPG_ASSERT(!pending->hasAckInfo,
                    "core %d got duplicate ack info", core);
        pending->hasAckInfo = true;
        pending->ackCount = msg->ackCount;
    }
    learnEpoch(msg->epoch, now);
    maybeCompleteExclusive(now);
}

void
L1Controller::handleAckCount(const CohMsgPtr &msg, Cycle now)
{
    INPG_ASSERT(pending && pending->exclusive &&
                    pending->addr == msg->addr,
                "core %d got unexpected %s", core,
                msg->toString().c_str());
    INPG_ASSERT(!pending->hasAckInfo, "core %d got duplicate ack info",
                core);
    if (LcoTracker *lco = lcoOf(sim))
        lco->responseArrived(core, now);
    pending->hasAckInfo = true;
    pending->ackCount = msg->ackCount;
    if (msg->ownerUpgrade) {
        // The home serialized us as an O-state upgrade: no data response
        // follows; our resident copy is the authoritative value. The
        // line must still be in O -- forwards are deferred while we are
        // pending and only same-epoch-or-later ones can exist.
        Line &l = line(msg->addr);
        INPG_ASSERT(l.state == L1State::O,
                    "core %d upgrade-acked in state %s", core,
                    l1StateName(l.state));
        pending->hasData = true;
        pending->data = l.value;
    }
    learnEpoch(msg->epoch, now);
    maybeCompleteExclusive(now);
}

void
L1Controller::handleInvAck(const CohMsgPtr &msg, Cycle now)
{
    INPG_ASSERT(pending && pending->exclusive &&
                    pending->addr == msg->addr,
                "core %d got stray %s", core, msg->toString().c_str());
    ++pending->acksReceived;
    ++*invAcksCollectedCtr;
    if (cohStats)
        cohStats->recordInvAckRtt(msg->requester,
                                  now - msg->invGeneratedAt,
                                  msg->fromBigRouter);
    if (LcoTracker *lco = lcoOf(sim))
        lco->invAckArrived(core, now, msg->fromBigRouter);
    maybeCompleteExclusive(now);
}

std::string
L1Controller::debugState() const
{
    std::string out = format("L1 %d:", core);
    if (pending) {
        out += format(" pending{%s addr=0x%llx excl=%d hasData=%d "
                      "hasAck=%d acks=%d/%d epochKnown=%d epoch=%llu "
                      "demotable=%d}",
                      pending->kind == OpRecord::Kind::Load ? "load"
                      : pending->kind == OpRecord::Kind::Store ? "store"
                                                               : "atomic",
                      (unsigned long long)pending->addr,
                      (int)pending->exclusive, (int)pending->hasData,
                      (int)pending->hasAckInfo, pending->acksReceived,
                      pending->ackCount, (int)pending->epochKnown,
                      (unsigned long long)pending->myEpoch,
                      (int)pending->demotable);
        const Line *l = findLine(pending->addr);
        out += format(" line=%s", l ? l1StateName(l->state) : "I");
    } else {
        out += " no-pending";
    }
    for (const auto &d : deferredForwards)
        out += format(" defer[%s]", d->toString().c_str());
    return out;
}

void
L1Controller::send(const CohMsgPtr &msg, NodeId dst, Cycle now,
                   int priority)
{
    INPG_TRACE_LINE("l1", now, "L1 %d SEND->%d %s", core, dst,
                    msg->toString().c_str());
    const int flits = carriesData(msg->kind) ? net.config().dataPacketFlits
                                             : net.config().ctrlPacketFlits;
    PacketPtr pkt =
        net.makePacket(node, dst, vnetForKind(msg->kind), flits, msg);
    pkt->priority = priority;
    net.inject(pkt, now);
    ++*msgsSentCtr;
}

} // namespace inpg
