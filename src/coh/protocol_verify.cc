#include "coh/protocol_verify.hh"

#include <algorithm>
#include <set>
#include <string>

#include "coh/protocol_tables.hh"
#include "common/logging.hh"
#include "noc/topology.hh"

namespace inpg {

namespace {

ProtoDiagnostic
diag(const char *check, const ProtoTableBase &t, std::string msg)
{
    return ProtoDiagnostic{check, t.name(), std::move(msg)};
}

const char *
vnetName(int v)
{
    switch (v) {
      case VNET_REQUEST:
        return "request(0)";
      case VNET_FORWARD:
        return "forward(1)";
      case VNET_RESPONSE:
        return "response(2)";
      case VNET_UNBLOCK:
        return "unblock(3)";
      default:
        return "none";
    }
}

} // namespace

const std::vector<const char *> &
protocolLcoHooks()
{
    static const std::vector<const char *> hooks = {
        "opIssued",        "requestSent", "dirArrived",
        "dirServed",       "responseArrived", "invAckArrived",
        "earlyInvSeen",    "opCompleted",
    };
    return hooks;
}

std::vector<ProtoDiagnostic>
verifyCoverage(const ProtoTableBase &t)
{
    std::vector<ProtoDiagnostic> out;
    for (int s = 0; s < t.numStates(); ++s) {
        for (int e = 0; e < t.numEvents(); ++e) {
            if (!t.find(s, e))
                out.push_back(diag(
                    "coverage", t,
                    format("unhandled transition (%s, %s): declare an "
                           "action or an explicit illegal entry",
                           t.stateName(s), t.eventName(e))));
        }
    }
    for (const auto &[s, e] : t.duplicates())
        out.push_back(diag("coverage", t,
                           format("ambiguous transition (%s, %s): "
                                  "declared more than once",
                                  t.stateName(s), t.eventName(e))));
    return out;
}

std::vector<ProtoDiagnostic>
verifyVnetGraph(const std::vector<const ProtoTableBase *> &tables)
{
    std::vector<ProtoDiagnostic> out;

    // adj[a][b]: one witness transition for the edge a -> b, or null.
    constexpr int NV = 4;
    struct Witness {
        const ProtoTableBase *table = nullptr;
        int state = 0, event = 0;
        CohMsgKind kind = CohMsgKind::GetS;
    };
    Witness adj[NV][NV] = {};
    bool edge[NV][NV] = {};

    for (const ProtoTableBase *t : tables) {
        for (int s = 0; s < t->numStates(); ++s) {
            for (int e = 0; e < t->numEvents(); ++e) {
                const ProtoTransition *tr = t->find(s, e);
                if (!tr || !tr->legal())
                    continue;
                const int vin = t->eventVnet(e);
                for (const ProtoEmit &em : tr->emits) {
                    const int vout = vnetForKind(em.kind);
                    if (em.relay) {
                        // Relays must stay on their own class; a relay
                        // that hops networks is a mis-annotated real
                        // dependency.
                        if (vin != vout)
                            out.push_back(diag(
                                "vnet-graph", *t,
                                format("(%s, %s): relay emit %s "
                                       "crosses %s -> %s; relays must "
                                       "stay on the consuming vnet",
                                       t->stateName(s), t->eventName(e),
                                       cohMsgKindName(em.kind),
                                       vnetName(vin), vnetName(vout))));
                        continue;
                    }
                    if (vin < 0)
                        continue; // core/timer-triggered: a source node
                    if (!edge[vin][vout]) {
                        edge[vin][vout] = true;
                        adj[vin][vout] = {t, s, e, em.kind};
                    }
                }
            }
        }
    }

    // A non-relay self-edge is already a cycle; report it precisely.
    for (int v = 0; v < NV; ++v) {
        if (edge[v][v]) {
            const Witness &w = adj[v][v];
            out.push_back(diag(
                "vnet-graph", *w.table,
                format("(%s, %s): emitting %s forms a %s -> %s "
                       "self-dependency; mark it a bounded relay or "
                       "move it to a higher message class",
                       w.table->stateName(w.state),
                       w.table->eventName(w.event),
                       cohMsgKindName(w.kind), vnetName(v),
                       vnetName(v))));
        }
    }

    // DFS cycle detection over the 4-node cross-vnet graph.
    int color[NV] = {}; // 0 white, 1 grey, 2 black
    std::vector<int> stack;
    std::vector<int> cycle;
    auto dfs = [&](auto &&self, int v) -> bool {
        color[v] = 1;
        stack.push_back(v);
        for (int w = 0; w < NV; ++w) {
            if (v == w || !edge[v][w])
                continue;
            if (color[w] == 1) {
                auto it = std::find(stack.begin(), stack.end(), w);
                cycle.assign(it, stack.end());
                cycle.push_back(w);
                return true;
            }
            if (color[w] == 0 && self(self, w))
                return true;
        }
        stack.pop_back();
        color[v] = 2;
        return false;
    };
    for (int v = 0; v < NV && cycle.empty(); ++v)
        if (color[v] == 0)
            dfs(dfs, v);

    if (!cycle.empty()) {
        std::string path;
        for (std::size_t i = 0; i < cycle.size(); ++i) {
            if (i)
                path += " -> ";
            path += vnetName(cycle[i]);
        }
        std::string witnesses;
        for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
            const Witness &w = adj[cycle[i]][cycle[i + 1]];
            witnesses += format("; %s(%s, %s) emits %s",
                                w.table ? w.table->name() : "?",
                                w.table ? w.table->stateName(w.state)
                                        : "?",
                                w.table ? w.table->eventName(w.event)
                                        : "?",
                                cohMsgKindName(w.kind));
        }
        out.push_back(ProtoDiagnostic{
            "vnet-graph", "joint",
            format("message-class dependency cycle: %s%s",
                   path.c_str(), witnesses.c_str())});
    }
    return out;
}

std::vector<ProtoDiagnostic>
verifyLcoHooks(const std::vector<const ProtoTableBase *> &tables)
{
    std::vector<ProtoDiagnostic> out;
    const auto &known = protocolLcoHooks();
    std::set<std::string> seen;

    for (const ProtoTableBase *t : tables) {
        for (int s = 0; s < t->numStates(); ++s) {
            for (int e = 0; e < t->numEvents(); ++e) {
                const ProtoTransition *tr = t->find(s, e);
                if (!tr || !tr->legal())
                    continue;
                for (const char *h : tr->lcoHooks) {
                    const bool ok =
                        std::any_of(known.begin(), known.end(),
                                    [h](const char *k) {
                                        return std::string(k) == h;
                                    });
                    if (!ok)
                        out.push_back(diag(
                            "lco-hooks", *t,
                            format("(%s, %s): unknown LCO hook '%s'",
                                   t->stateName(s), t->eventName(e),
                                   h)));
                    else
                        seen.insert(h);
                }
            }
        }
    }

    // Tiling: each cursor-advancing hook must be drivable from at
    // least one transition, or an attribution leg can never close and
    // the legs no longer tile the acquire (invariant 9).
    for (const char *h : known) {
        if (!seen.count(h))
            out.push_back(ProtoDiagnostic{
                "lco-hooks", "joint",
                format("LCO hook '%s' is driven by no transition: leg "
                       "boundaries cannot tile the acquire",
                       h)});
    }
    return out;
}

std::vector<ProtoDiagnostic>
verifyReachability(const ProtoTableBase &t)
{
    std::vector<ProtoDiagnostic> out;
    std::vector<bool> reached(static_cast<std::size_t>(t.numStates()),
                              false);
    std::vector<int> work = {t.initialState()};
    reached[static_cast<std::size_t>(t.initialState())] = true;
    while (!work.empty()) {
        const int s = work.back();
        work.pop_back();
        for (int e = 0; e < t.numEvents(); ++e) {
            const ProtoTransition *tr = t.find(s, e);
            if (!tr || !tr->legal())
                continue;
            for (int n : tr->nexts) {
                if (n >= 0 && n < t.numStates() &&
                    !reached[static_cast<std::size_t>(n)]) {
                    reached[static_cast<std::size_t>(n)] = true;
                    work.push_back(n);
                }
            }
        }
    }
    for (int s = 0; s < t.numStates(); ++s) {
        if (!reached[static_cast<std::size_t>(s)])
            out.push_back(diag(
                "reachability", t,
                format("dead state %s: no transition chain from %s "
                       "produces it",
                       t.stateName(s),
                       t.stateName(t.initialState()))));
    }
    return out;
}

std::vector<ProtoDiagnostic>
verifyChannelDeps(const Topology &topo)
{
    std::vector<ProtoDiagnostic> out;
    const ChannelDepGraph g = topo.channelDependencies();
    const std::vector<std::int32_t> cycle = findChannelDepCycle(g);
    if (cycle.empty())
        return out;
    std::string path;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        if (i)
            path += " -> ";
        path += g.describe(static_cast<std::size_t>(cycle[i]));
    }
    out.push_back(ProtoDiagnostic{
        "channel-deps", topo.name(),
        format("channel dependency cycle (routing can deadlock): %s. "
               "On a torus, enable escape VCs (escape_vcs=1) so the "
               "dateline classes cut the ring",
               path.c_str())});
    return out;
}

std::vector<ProtoDiagnostic>
verifyProtocol(const std::vector<const ProtoTableBase *> &tables)
{
    std::vector<ProtoDiagnostic> out;
    for (const ProtoTableBase *t : tables) {
        auto c = verifyCoverage(*t);
        out.insert(out.end(), c.begin(), c.end());
        auto r = verifyReachability(*t);
        out.insert(out.end(), r.begin(), r.end());
    }
    auto v = verifyVnetGraph(tables);
    out.insert(out.end(), v.begin(), v.end());
    auto l = verifyLcoHooks(tables);
    out.insert(out.end(), l.begin(), l.end());
    return out;
}

std::vector<ProtoDiagnostic>
verifyProductionProtocol()
{
    std::vector<const ProtoTableBase *> tables;
    tables.reserve(PROTO_NUM_TABLES);
    for (int i = 0; i < PROTO_NUM_TABLES; ++i)
        tables.push_back(&protocolTable(i));
    return verifyProtocol(tables);
}

} // namespace inpg
