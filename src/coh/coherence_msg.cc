#include "coh/coherence_msg.hh"

#include "common/logging.hh"

namespace inpg {

const char *
cohMsgKindName(CohMsgKind kind)
{
    switch (kind) {
      case CohMsgKind::GetS:
        return "GetS";
      case CohMsgKind::GetX:
        return "GetX";
      case CohMsgKind::FwdGetS:
        return "FwdGetS";
      case CohMsgKind::FwdGetX:
        return "FwdGetX";
      case CohMsgKind::Inv:
        return "Inv";
      case CohMsgKind::Data:
        return "Data";
      case CohMsgKind::DataExcl:
        return "DataExcl";
      case CohMsgKind::AckCount:
        return "AckCount";
      case CohMsgKind::InvAck:
        return "InvAck";
    }
    return "?";
}

VnetId
vnetForKind(CohMsgKind kind)
{
    switch (kind) {
      case CohMsgKind::GetS:
      case CohMsgKind::GetX:
        return VNET_REQUEST;
      case CohMsgKind::FwdGetS:
      case CohMsgKind::FwdGetX:
      case CohMsgKind::Inv:
        return VNET_FORWARD;
      case CohMsgKind::Data:
      case CohMsgKind::DataExcl:
      case CohMsgKind::AckCount:
      case CohMsgKind::InvAck:
        return VNET_RESPONSE;
    }
    panic("bad message kind");
}

bool
carriesData(CohMsgKind kind)
{
    return kind == CohMsgKind::Data || kind == CohMsgKind::DataExcl;
}

std::string
CoherenceMsg::toString() const
{
    return format("%s addr=0x%llx req=%d coll=%d val=%llu acks=%d%s%s%s",
                  cohMsgKindName(kind),
                  static_cast<unsigned long long>(addr), requester,
                  collector, static_cast<unsigned long long>(value),
                  ackCount, isLock ? " lock" : "",
                  earlyInvalidated ? " early" : "",
                  fromBigRouter ? " viaBR" : "");
}

} // namespace inpg
