#include "coh/golden_memory.hh"

#include "common/logging.hh"

namespace inpg {

void
GoldenMemory::setInitial(Addr addr, std::uint64_t value)
{
    initial[addr] = value;
}

void
GoldenMemory::record(const OpRecord &rec)
{
    log.push_back(rec);
}

std::vector<OpRecord>
GoldenMemory::recordsFor(Addr addr) const
{
    std::vector<OpRecord> out;
    for (const auto &r : log)
        if (r.addr == addr)
            out.push_back(r);
    return out;
}

std::uint64_t
GoldenMemory::finalValue(Addr addr) const
{
    std::uint64_t v = 0;
    auto it = initial.find(addr);
    if (it != initial.end())
        v = it->second;
    for (const auto &r : log) {
        if (r.addr != addr || r.kind == OpRecord::Kind::Load || r.demoted)
            continue;
        v = r.newValue;
    }
    return v;
}

std::string
GoldenMemory::verify() const
{
    // The log is appended in completion order (the simulator is
    // single-threaded), which for a given line equals its coherence
    // serialization order. Verify each line's write chain.
    std::map<Addr, std::uint64_t> value = initial;
    for (std::size_t i = 0; i < log.size(); ++i) {
        const OpRecord &r = log[i];
        auto it = value.find(r.addr);
        std::uint64_t cur = it == value.end() ? 0 : it->second;
        if (r.kind == OpRecord::Kind::Load || r.demoted)
            continue; // loads and demoted atomics wrote nothing and may
                      // legally observe older shared copies
        if (r.oldValue != cur) {
            return format("op %zu (core %d, cycle %llu, addr 0x%llx): "
                          "observed old value %llu but chain value is "
                          "%llu",
                          i, r.core,
                          static_cast<unsigned long long>(r.executedAt),
                          static_cast<unsigned long long>(r.addr),
                          static_cast<unsigned long long>(r.oldValue),
                          static_cast<unsigned long long>(cur));
        }
        // Re-derive the new value to catch op-application bugs.
        std::uint64_t expect_new = 0;
        if (r.kind == OpRecord::Kind::Store) {
            expect_new = r.operandA;
        } else {
            switch (r.op) {
              case AtomicOp::Swap:
                expect_new = r.operandA;
                break;
              case AtomicOp::Cas:
                expect_new =
                    r.oldValue == r.operandA ? r.operandB : r.oldValue;
                break;
              case AtomicOp::FetchAdd:
                expect_new = r.oldValue + r.operandA;
                break;
              case AtomicOp::FetchOr:
                expect_new = r.oldValue | r.operandA;
                break;
              case AtomicOp::FetchAnd:
                expect_new = r.oldValue & r.operandA;
                break;
            }
        }
        if (r.newValue != expect_new) {
            return format("op %zu (core %d, addr 0x%llx): new value %llu "
                          "!= expected %llu",
                          i, r.core,
                          static_cast<unsigned long long>(r.addr),
                          static_cast<unsigned long long>(r.newValue),
                          static_cast<unsigned long long>(expect_new));
        }
        value[r.addr] = r.newValue;
    }
    return "";
}

} // namespace inpg
