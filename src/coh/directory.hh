/**
 * @file
 * Directory controller: one shared-L2 bank with its coherence directory
 * (the "home node" of the paper).
 *
 * The directory is the serialization point of the protocol: it services
 * its input queue one message at a time, occupying the bank for the L2
 * access latency per request. This explicit occupancy is what produces
 * the home-node queueing delay ("long tail" of Figure 10b) that iNPG's
 * distributed early invalidation removes.
 */

#ifndef INPG_COH_DIRECTORY_HH
#define INPG_COH_DIRECTORY_HH

#include <deque>
#include <map>
#include <set>

#include "coh/coh_config.hh"
#include "coh/coh_stats.hh"
#include "coh/coherence_msg.hh"
#include "coh/memory_controller.hh"
#include "common/flat_hash_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "noc/network.hh"
#include "sim/simulator.hh"
#include "sim/ticking.hh"
#include "telemetry/json.hh"

namespace inpg {

/** Home-node directory + L2 bank controller for one tile. */
class Directory : public Ticking
{
  public:
    /** Directory knowledge about one line. */
    struct DirEntry {
        std::uint64_t value = 0;
        /** Exclusive/owned holder; INVALID_NODE when none. */
        NodeId owner = INVALID_NODE;
        /** Cores holding shared copies. */
        std::set<CoreId> sharers;
        /**
         * Early-invalidation trim guard: core c is in the set while
         * exactly one big-router early-InvAck from c is expected and
         * c has not re-registered at the home since its
         * early-invalidated GetX was served. TrimSharer only applies
         * while the guard holds -- an EI ack overtaken by a newer
         * GetS/demote registration of the same core must not erase
         * the fresh sharer entry. The model checker (tools/protocol_mc)
         * found that reordering as an SWMR violation; see
         * docs/PROTOCOL.md.
         */
        std::set<CoreId> eiPending;
        /** Line never fetched from memory yet. */
        bool cold = true;
    };

    Directory(NodeId node_id, const CohConfig &cfg, Network &network,
              Simulator &sim, MemoryController *memory,
              CohStats *coh_stats = nullptr);

    /** Enqueue a protocol message for serialized processing. */
    void receiveMessage(const CohMsgPtr &msg, Cycle now);

    void tick(Cycle now) override;

    std::string tickName() const override;

    NodeId nodeId() const { return node; }

    /** Directory entry for a line; nullptr if never touched. */
    const DirEntry *entry(Addr addr) const;

    /** Pre-set a line's initial memory value (before first access). */
    void initValue(Addr addr, std::uint64_t value);

    /** True when no message is queued or being processed. */
    bool idle() const { return queue.empty() && !blockedOnFetch; }

    /** Messages waiting for the bank (occupancy probe). */
    std::size_t queueDepth() const { return queue.size(); }

    /**
     * Bank/queue state for the hang report: occupancy, fetch block,
     * and the kinds of the first queued messages.
     */
    JsonValue debugJson(Cycle now) const;

    StatGroup stats;

  private:
    void process(const CohMsgPtr &msg, Cycle now);

    // One method per declarative table action (DirAction); `process`
    // classifies the entry onto the directory transition table and
    // dispatches here.
    void grantExclusive(const CohMsgPtr &msg, DirEntry &e, Cycle now);
    void answerShared(const CohMsgPtr &msg, DirEntry &e, Cycle now);
    void forwardGetS(const CohMsgPtr &msg, DirEntry &e, Cycle now);
    void invalidateAndGrant(const CohMsgPtr &msg, DirEntry &e, Cycle now);
    void forwardGetX(const CohMsgPtr &msg, DirEntry &e, Cycle now);
    void ownerUpgrade(const CohMsgPtr &msg, DirEntry &e, Cycle now);
    void demoteViaOwner(const CohMsgPtr &msg, DirEntry &e, Cycle now);
    void demoteAtHome(const CohMsgPtr &msg, DirEntry &e, Cycle now);
    void trimSharer(const CohMsgPtr &msg, DirEntry &e, Cycle now);

    void sendInvalidations(const std::set<CoreId> &targets, Addr addr,
                           NodeId collector, bool is_lock,
                           std::uint64_t epoch, Cycle now);
    void send(const CohMsgPtr &msg, NodeId dst, Cycle now);

    NodeId node;
    CohConfig cfg;
    Network &net;
    Simulator &sim;
    MemoryController *mem;
    CohStats *cohStats;

    /** Find-or-create the entry for a line-aligned address. */
    DirEntry &entryFor(Addr line);
    /** Find the entry for a line-aligned address; nullptr if absent. */
    const DirEntry *findEntry(Addr line) const;

    /**
     * Line table: `entriesFlat` when cfg.flatContainers (the fast
     * path), `entriesRef` otherwise (reference for differential
     * testing). Only one is ever populated.
     */
    FlatHashMap<Addr, DirEntry> entriesFlat;
    std::map<Addr, DirEntry> entriesRef;
    std::deque<CohMsgPtr> queue;

    /** Cached hot stat handles (string lookup once at construction). */
    std::uint64_t *msgsReceivedCtr = nullptr;
    std::uint64_t *msgsSentCtr = nullptr;
    SampleStat *queueDepthSample = nullptr;

    Cycle busyUntil = 0;
    bool blockedOnFetch = false;
    std::uint64_t epochCounter = 0;
    /** Lifetime sends, for the dropDirResponseNth hang seeder. */
    std::uint64_t sendCounter = 0;
};

} // namespace inpg

#endif // INPG_COH_DIRECTORY_HH
