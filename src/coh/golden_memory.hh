/**
 * @file
 * Golden reference model: collects the completed-operation log from all
 * L1 controllers and checks it against a sequential memory model.
 *
 * Invariants verified:
 *  - per address, writes/atomics form a chain: each op's observed old
 *    value equals the previous op's new value (single serialization
 *    order per line, as cache ownership dictates);
 *  - fetch-and-add over an address returns strictly increasing values;
 *  - the final value per address matches replaying the chain.
 */

#ifndef INPG_COH_GOLDEN_MEMORY_HH
#define INPG_COH_GOLDEN_MEMORY_HH

#include <map>
#include <string>
#include <vector>

#include "coh/l1_controller.hh"
#include "common/types.hh"

namespace inpg {

/** Sequential-consistency reference checker for the simulated memory. */
class GoldenMemory
{
  public:
    /** Declare an address's initial value (default 0). */
    void setInitial(Addr addr, std::uint64_t value);

    /** Append one completed operation (L1 op-log sink). */
    void record(const OpRecord &rec);

    /**
     * Check all invariants.
     * @return empty string when consistent; otherwise a description of
     *         the first violation.
     */
    std::string verify() const;

    /** Final value of an address per the recorded write chain. */
    std::uint64_t finalValue(Addr addr) const;

    /** Number of recorded operations. */
    std::size_t size() const { return log.size(); }

    /** All records involving an address, in completion order. */
    std::vector<OpRecord> recordsFor(Addr addr) const;

    const std::vector<OpRecord> &records() const { return log; }

  private:
    std::vector<OpRecord> log;
    std::map<Addr, std::uint64_t> initial;
};

} // namespace inpg

#endif // INPG_COH_GOLDEN_MEMORY_HH
