#include "coh/protocol_tables.hh"

namespace inpg {

// ---------------------------------------------------------------------
// L1 controller
// ---------------------------------------------------------------------

namespace {

// Local aliases so the table body reads like the protocol spec.
constexpr int I = 0, S = 1, E = 2, M = 3, O = 4;

constexpr ProtoEmit emitGetS{CohMsgKind::GetS, false};
constexpr ProtoEmit emitGetX{CohMsgKind::GetX, false};
constexpr ProtoEmit emitInv{CohMsgKind::Inv, false};
constexpr ProtoEmit emitData{CohMsgKind::Data, false};
constexpr ProtoEmit emitDataExcl{CohMsgKind::DataExcl, false};
constexpr ProtoEmit emitAckCount{CohMsgKind::AckCount, false};
constexpr ProtoEmit emitInvAck{CohMsgKind::InvAck, false};
constexpr ProtoEmit emitFwdGetS{CohMsgKind::FwdGetS, false};
constexpr ProtoEmit emitFwdGetX{CohMsgKind::FwdGetX, false};
// Bounded same-class relays (chain forwarding, big-router ack relay).
constexpr ProtoEmit relayFwdGetS{CohMsgKind::FwdGetS, true};
constexpr ProtoEmit relayFwdGetX{CohMsgKind::FwdGetX, true};
constexpr ProtoEmit relayInvAck{CohMsgKind::InvAck, true};

int
asInt(L1Event e)
{
    return static_cast<int>(e);
}

int
asInt(L1Action a)
{
    return static_cast<int>(a);
}

ProtoTransition
l1T(int state, L1Event ev, L1Action action, std::vector<int> nexts,
    std::vector<ProtoEmit> emits, std::vector<const char *> hooks,
    const char *note = nullptr)
{
    ProtoTransition t;
    t.state = state;
    t.event = asInt(ev);
    t.action = asInt(action);
    t.nexts = std::move(nexts);
    t.emits = std::move(emits);
    t.lcoHooks = std::move(hooks);
    t.note = note;
    return t;
}

ProtoTransition
l1Illegal(int state, L1Event ev, const char *reason)
{
    ProtoTransition t;
    t.state = state;
    t.event = asInt(ev);
    t.action = PROTO_ILLEGAL;
    t.note = reason;
    return t;
}

} // namespace

const char *
l1TableStateName(int s)
{
    static const char *const names[L1_NUM_STATES] = {"I", "S", "E", "M",
                                                     "O"};
    return s >= 0 && s < L1_NUM_STATES ? names[s] : "?";
}

const char *
l1EventName(int e)
{
    static const char *const names[L1_NUM_EVENTS] = {
        "CoreLoad", "CoreWrite", "Inv",      "FwdGetS", "FwdGetX",
        "Data",     "DataExcl",  "AckCount", "InvAck"};
    return e >= 0 && e < L1_NUM_EVENTS ? names[e] : "?";
}

int
l1EventVnet(int e)
{
    switch (static_cast<L1Event>(e)) {
      case L1Event::CoreLoad:
      case L1Event::CoreWrite:
        return -1;
      case L1Event::Inv:
      case L1Event::FwdGetS:
      case L1Event::FwdGetX:
        return VNET_FORWARD;
      case L1Event::Data:
      case L1Event::DataExcl:
      case L1Event::AckCount:
      case L1Event::InvAck:
        return VNET_RESPONSE;
    }
    return -1;
}

L1Event
l1EventForMsgKind(CohMsgKind kind)
{
    switch (kind) {
      case CohMsgKind::Inv:
        return L1Event::Inv;
      case CohMsgKind::FwdGetS:
        return L1Event::FwdGetS;
      case CohMsgKind::FwdGetX:
        return L1Event::FwdGetX;
      case CohMsgKind::Data:
        return L1Event::Data;
      case CohMsgKind::DataExcl:
        return L1Event::DataExcl;
      case CohMsgKind::AckCount:
        return L1Event::AckCount;
      case CohMsgKind::InvAck:
        return L1Event::InvAck;
      case CohMsgKind::GetS:
      case CohMsgKind::GetX:
        break;
    }
    panic("message kind %s has no L1 event", cohMsgKindName(kind));
}

/*
 * Emission-attribution model: messages emitted while *serving a
 * deferred forward* are attributed to the forward's arrival row (the
 * deferral only delays processing), never to the Data/DataExcl/
 * AckCount/InvAck row whose completion released it. Forward rows
 * therefore carry both the service emission and the same-class relay;
 * response rows emit nothing.
 */
const ProtoTableBase &
l1ProtocolTable()
{
    using Ev = L1Event;
    using Ac = L1Action;
    static const TransitionTable<int, L1Event> table(
        "l1", L1_NUM_STATES, L1_NUM_EVENTS, /*initial=*/I,
        l1TableStateName, l1EventName, l1EventVnet,
        {
            // -- core load ------------------------------------------------
            l1T(I, Ev::CoreLoad, Ac::BeginLoadMiss, {I}, {emitGetS},
                {"opIssued", "requestSent"}),
            l1T(S, Ev::CoreLoad, Ac::LoadHit, {S}, {},
                {"opIssued", "opCompleted"}),
            l1T(E, Ev::CoreLoad, Ac::LoadHit, {E}, {},
                {"opIssued", "opCompleted"}),
            l1T(M, Ev::CoreLoad, Ac::LoadHit, {M}, {},
                {"opIssued", "opCompleted"}),
            l1T(O, Ev::CoreLoad, Ac::LoadHit, {O}, {},
                {"opIssued", "opCompleted"}),

            // -- core store / atomic -------------------------------------
            l1T(I, Ev::CoreWrite, Ac::BeginWriteMiss, {I}, {emitGetX},
                {"opIssued", "requestSent"}),
            l1T(S, Ev::CoreWrite, Ac::BeginWriteMiss, {S}, {emitGetX},
                {"opIssued", "requestSent"}),
            l1T(E, Ev::CoreWrite, Ac::WriteHit, {M}, {},
                {"opIssued", "opCompleted"}),
            l1T(M, Ev::CoreWrite, Ac::WriteHit, {M}, {},
                {"opIssued", "opCompleted"}),
            l1T(O, Ev::CoreWrite, Ac::BeginUpgrade, {O}, {emitGetX},
                {"opIssued", "requestSent"},
                "never demotable: a demoted upgrade would defer "
                "pre-epoch forwards forever and deadlock the chain"),

            // -- invalidations -------------------------------------------
            l1T(I, Ev::Inv, Ac::AckInvalid, {I}, {emitInvAck},
                {"earlyInvSeen"},
                "early/home Inv racing a copy we already lost; ack is "
                "idempotent and required for accounting"),
            l1T(S, Ev::Inv, Ac::InvalidateAndAck, {I}, {emitInvAck},
                {"earlyInvSeen"}),
            l1T(E, Ev::Inv, Ac::AckStaleInv, {E}, {emitInvAck},
                {"earlyInvSeen"},
                "stale Inv aimed at an S copy our own GetX consumed"),
            l1T(M, Ev::Inv, Ac::AckStaleInv, {M}, {emitInvAck},
                {"earlyInvSeen"},
                "stale Inv aimed at an S copy our own GetX consumed"),
            l1T(O, Ev::Inv, Ac::AckStaleInv, {O}, {emitInvAck},
                {"earlyInvSeen"},
                "stale Inv aimed at an S copy our own GetX consumed"),

            // -- forwarded reads -----------------------------------------
            l1T(I, Ev::FwdGetS, Ac::ChainForward, {I, S, O},
                {emitData, relayFwdGetS}, {},
                "not the owner any more: relay along forwardedTo; a "
                "deferred forward served after our fill supplies Data "
                "(S when an interleaved load re-filled the line before "
                "the deferred chain relay ran)"),
            l1T(S, Ev::FwdGetS, Ac::ChainForward, {I, S, O},
                {emitData, relayFwdGetS}, {},
                "owner tenure ended and line re-filled shared; relay "
                "(I when an Inv raced the pending fill before the "
                "deferred relay ran)"),
            l1T(E, Ev::FwdGetS, Ac::ServeFwdGetS, {O},
                {emitData, relayFwdGetS}, {}),
            l1T(M, Ev::FwdGetS, Ac::ServeFwdGetS, {O},
                {emitData, relayFwdGetS}, {}),
            l1T(O, Ev::FwdGetS, Ac::ServeFwdGetS, {O},
                {emitData, relayFwdGetS}, {}),

            // -- forwarded exclusive requests ----------------------------
            l1T(I, Ev::FwdGetX, Ac::ChainForward, {I, S},
                {emitDataExcl, relayFwdGetX}, {},
                "chain GetX: relay toward the node we surrendered to; "
                "a deferred forward served after our fill supplies "
                "DataExcl (S when an interleaved load re-filled the "
                "line before the deferred chain relay ran)"),
            l1T(S, Ev::FwdGetX, Ac::ChainForward, {S, I},
                {emitDataExcl, relayFwdGetX}, {},
                "owner tenure ended and line re-filled shared; relay"),
            l1T(E, Ev::FwdGetX, Ac::ServeFwdGetX, {I},
                {emitDataExcl, relayFwdGetX}, {}),
            l1T(M, Ev::FwdGetX, Ac::ServeFwdGetX, {I},
                {emitDataExcl, relayFwdGetX}, {}),
            l1T(O, Ev::FwdGetX, Ac::ServeFwdGetX, {I},
                {emitDataExcl, relayFwdGetX}, {}),

            // -- shared data responses -----------------------------------
            l1T(I, Ev::Data, Ac::FillShared, {S, I}, {},
                {"responseArrived", "opCompleted"},
                "stays I when an Inv raced the fill (invWhileFilling)"),
            l1T(S, Ev::Data, Ac::FillShared, {S}, {},
                {"responseArrived", "opCompleted"},
                "demoted lock RMW issued from S keeps the shared copy"),
            l1Illegal(E, Ev::Data,
                      "no transaction can be pending in E: loads and "
                      "writes both hit locally"),
            l1Illegal(M, Ev::Data,
                      "no transaction can be pending in M: loads and "
                      "writes both hit locally"),
            l1Illegal(O, Ev::Data,
                      "RMWs issued from O are forced non-demotable, so "
                      "no shared response can target an O line"),

            // -- exclusive data responses --------------------------------
            l1T(I, Ev::DataExcl, Ac::FillExclusive, {E, M, I}, {},
                {"responseArrived", "opCompleted"},
                "read answered exclusively -> E; write completes to M "
                "once all acks are in"),
            l1T(S, Ev::DataExcl, Ac::FillExclusive, {M, S}, {},
                {"responseArrived", "opCompleted"},
                "write miss from S: our shared copy was never "
                "invalidated by our own GetX"),
            l1Illegal(E, Ev::DataExcl,
                      "no miss can be outstanding while the line is E"),
            l1Illegal(M, Ev::DataExcl,
                      "no miss can be outstanding while the line is M"),
            l1T(O, Ev::DataExcl, Ac::FillExclusive, {M, O}, {},
                {"responseArrived", "opCompleted"},
                "upgrade that serialized behind other writers while a "
                "pre-epoch FwdGetX is still deferred"),

            // -- ack totals ----------------------------------------------
            l1T(I, Ev::AckCount, Ac::CollectAckInfo, {I, M}, {},
                {"responseArrived", "opCompleted"},
                "chain GetX: ack info from home, data from the owner"),
            l1T(S, Ev::AckCount, Ac::CollectAckInfo, {S, M}, {},
                {"responseArrived", "opCompleted"}),
            l1Illegal(E, Ev::AckCount,
                      "no exclusive transaction can be pending in E"),
            l1Illegal(M, Ev::AckCount,
                      "no exclusive transaction can be pending in M"),
            l1T(O, Ev::AckCount, Ac::CollectAckInfo, {O, M}, {},
                {"responseArrived", "opCompleted"},
                "O-state upgrade: ownerUpgrade acks, resident copy is "
                "the data"),

            // -- invalidation acks ---------------------------------------
            l1T(I, Ev::InvAck, Ac::CollectInvAck, {I, M}, {},
                {"invAckArrived", "opCompleted"}),
            l1T(S, Ev::InvAck, Ac::CollectInvAck, {S, M}, {},
                {"invAckArrived", "opCompleted"}),
            l1Illegal(E, Ev::InvAck,
                      "no exclusive transaction can be pending in E"),
            l1Illegal(M, Ev::InvAck,
                      "no exclusive transaction can be pending in M"),
            l1T(O, Ev::InvAck, Ac::CollectInvAck, {O, M}, {},
                {"invAckArrived", "opCompleted"}),
        });
    return table;
}

// ---------------------------------------------------------------------
// Directory
// ---------------------------------------------------------------------

namespace {

int
asInt(DirState s)
{
    return static_cast<int>(s);
}

ProtoTransition
dirT(DirState state, DirEvent ev, DirAction action,
     std::vector<int> nexts, std::vector<ProtoEmit> emits,
     std::vector<const char *> hooks, const char *note = nullptr)
{
    ProtoTransition t;
    t.state = asInt(state);
    t.event = static_cast<int>(ev);
    t.action = static_cast<int>(action);
    t.nexts = std::move(nexts);
    t.emits = std::move(emits);
    t.lcoHooks = std::move(hooks);
    t.note = note;
    return t;
}

ProtoTransition
dirIllegal(DirState state, DirEvent ev, const char *reason)
{
    ProtoTransition t;
    t.state = asInt(state);
    t.event = static_cast<int>(ev);
    t.action = PROTO_ILLEGAL;
    t.note = reason;
    return t;
}

constexpr int D_UNCACHED = 0, D_SHARED = 1, D_OWNED = 2, D_OWNED_SELF = 3;

} // namespace

const char *
dirStateName(int s)
{
    static const char *const names[DIR_NUM_STATES] = {
        "Uncached", "Shared", "Owned", "OwnedSelf"};
    return s >= 0 && s < DIR_NUM_STATES ? names[s] : "?";
}

const char *
dirEventName(int e)
{
    static const char *const names[DIR_NUM_EVENTS] = {
        "GetS", "GetX", "GetXDemotable", "EarlyInvAck"};
    return e >= 0 && e < DIR_NUM_EVENTS ? names[e] : "?";
}

int
dirEventVnet(int e)
{
    switch (static_cast<DirEvent>(e)) {
      case DirEvent::GetS:
      case DirEvent::GetX:
      case DirEvent::GetXDemotable:
        return VNET_REQUEST;
      case DirEvent::EarlyInvAck:
        return VNET_RESPONSE;
    }
    return -1;
}

const ProtoTableBase &
directoryProtocolTable()
{
    using St = DirState;
    using Ev = DirEvent;
    using Ac = DirAction;
    static const TransitionTable<DirState, DirEvent> table(
        "directory", DIR_NUM_STATES, DIR_NUM_EVENTS,
        /*initial=*/D_UNCACHED, dirStateName, dirEventName, dirEventVnet,
        {
            // -- reads ----------------------------------------------------
            dirT(St::Uncached, Ev::GetS, Ac::GrantExclusive,
                 {D_OWNED, D_OWNED_SELF}, {emitDataExcl},
                 {"dirArrived", "dirServed"}),
            dirT(St::Shared, Ev::GetS, Ac::AnswerShared, {D_SHARED},
                 {emitData}, {"dirArrived", "dirServed"}),
            dirT(St::Owned, Ev::GetS, Ac::ForwardGetS,
                 {D_OWNED, D_OWNED_SELF}, {emitFwdGetS},
                 {"dirArrived", "dirServed"}),
            dirIllegal(St::OwnedSelf, Ev::GetS,
                       "the recorded owner's loads hit in M/E/O and it "
                       "can have no read miss outstanding; forwarding "
                       "the line to its own requester would "
                       "self-deadlock"),

            // -- plain exclusive requests --------------------------------
            dirT(St::Uncached, Ev::GetX, Ac::InvalidateAndGrant,
                 {D_OWNED, D_OWNED_SELF}, {emitInv, emitDataExcl},
                 {"dirArrived", "dirServed", "earlyInvSeen"},
                 "sharer set is empty here, so no Inv is actually sent"),
            dirT(St::Shared, Ev::GetX, Ac::InvalidateAndGrant,
                 {D_OWNED, D_OWNED_SELF}, {emitInv, emitDataExcl},
                 {"dirArrived", "dirServed", "earlyInvSeen"}),
            dirT(St::Owned, Ev::GetX, Ac::ForwardGetX,
                 {D_OWNED, D_OWNED_SELF},
                 {emitFwdGetX, emitAckCount, emitInv},
                 {"dirArrived", "dirServed", "earlyInvSeen"}),
            dirT(St::OwnedSelf, Ev::GetX, Ac::OwnerUpgrade,
                 {D_OWNED, D_OWNED_SELF}, {emitAckCount, emitInv},
                 {"dirArrived", "dirServed", "earlyInvSeen"}),

            // -- demotable lock acquires ---------------------------------
            dirT(St::Uncached, Ev::GetXDemotable, Ac::DemoteOrGrant,
                 {D_SHARED, D_OWNED, D_OWNED_SELF},
                 {emitData, emitDataExcl, emitInv},
                 {"dirArrived", "dirServed", "earlyInvSeen"},
                 "held lock valued at home -> shared Data; free lock "
                 "falls through to the full exclusive grant"),
            dirT(St::Shared, Ev::GetXDemotable, Ac::DemoteOrGrant,
                 {D_SHARED, D_OWNED, D_OWNED_SELF},
                 {emitData, emitDataExcl, emitInv},
                 {"dirArrived", "dirServed", "earlyInvSeen"}),
            dirT(St::Owned, Ev::GetXDemotable, Ac::DemoteViaOwner,
                 {D_OWNED, D_OWNED_SELF}, {emitFwdGetS},
                 {"dirArrived", "dirServed", "earlyInvSeen"},
                 "owner supplies the shared (locked) copy; requester "
                 "spins locally on it"),
            dirT(St::OwnedSelf, Ev::GetXDemotable, Ac::OwnerUpgrade,
                 {D_OWNED, D_OWNED_SELF}, {emitAckCount, emitInv},
                 {"dirArrived", "dirServed", "earlyInvSeen"},
                 "we already own the lock line: demotion degenerates "
                 "to the upgrade path"),

            // -- early invalidation acks ---------------------------------
            dirT(St::Uncached, Ev::EarlyInvAck, Ac::TrimSharer,
                 {D_UNCACHED}, {}, {},
                 "stale: the sharer was already dropped"),
            dirT(St::Shared, Ev::EarlyInvAck, Ac::TrimSharer,
                 {D_SHARED, D_UNCACHED}, {}, {}),
            dirT(St::Owned, Ev::EarlyInvAck, Ac::TrimSharer, {D_OWNED},
                 {}, {}),
            dirT(St::OwnedSelf, Ev::EarlyInvAck, Ac::TrimSharer,
                 {D_OWNED_SELF}, {}, {}),
        });
    return table;
}

// ---------------------------------------------------------------------
// iNPG big-router barrier FSM
// ---------------------------------------------------------------------

namespace {

constexpr int B_NONE = 0, B_IDLE = 1, B_ARMED = 2;

ProtoTransition
brT(int state, BrEvent ev, BrAction action, std::vector<int> nexts,
    std::vector<ProtoEmit> emits, const char *note = nullptr)
{
    ProtoTransition t;
    t.state = state;
    t.event = static_cast<int>(ev);
    t.action = static_cast<int>(action);
    t.nexts = std::move(nexts);
    t.emits = std::move(emits);
    t.note = note;
    return t;
}

ProtoTransition
brIllegal(int state, BrEvent ev, const char *reason)
{
    ProtoTransition t;
    t.state = state;
    t.event = static_cast<int>(ev);
    t.action = PROTO_ILLEGAL;
    t.note = reason;
    return t;
}

} // namespace

const char *
brStateName(int s)
{
    static const char *const names[BR_NUM_STATES] = {
        "NoBarrier", "BarrierIdle", "BarrierArmed"};
    return s >= 0 && s < BR_NUM_STATES ? names[s] : "?";
}

const char *
brEventName(int e)
{
    static const char *const names[BR_NUM_EVENTS] = {
        "LockGetXArrival", "LockGetXTransfer", "EarlyInvAck",
        "TtlExpire"};
    return e >= 0 && e < BR_NUM_EVENTS ? names[e] : "?";
}

int
brEventVnet(int e)
{
    switch (static_cast<BrEvent>(e)) {
      case BrEvent::LockGetXArrival:
      case BrEvent::LockGetXTransfer:
        return VNET_REQUEST;
      case BrEvent::EarlyInvAck:
        return VNET_RESPONSE;
      case BrEvent::TtlExpire:
        return -1;
    }
    return -1;
}

const ProtoTableBase &
bigRouterProtocolTable()
{
    using Ev = BrEvent;
    using Ac = BrAction;
    static const TransitionTable<int, BrEvent> table(
        "big_router", BR_NUM_STATES, BR_NUM_EVENTS, /*initial=*/B_NONE,
        brStateName, brEventName, brEventVnet,
        {
            // -- GetX[lock] head-flit arrival (RC stage) -----------------
            brT(B_NONE, Ev::LockGetXArrival, Ac::PassThrough, {B_NONE},
                {}),
            brT(B_IDLE, Ev::LockGetXArrival, Ac::StopAndInvalidate,
                {B_ARMED, B_IDLE}, {emitInv},
                "stays idle when the EI list is full (pass-through)"),
            brT(B_ARMED, Ev::LockGetXArrival, Ac::StopAndInvalidate,
                {B_ARMED}, {emitInv},
                "duplicate-core or full EI list passes through"),

            // -- GetX[lock] switch traversal (ST stage) ------------------
            brT(B_NONE, Ev::LockGetXTransfer, Ac::InstallBarrier,
                {B_IDLE, B_NONE}, {},
                "stays untracked when the barrier table is full"),
            brT(B_IDLE, Ev::LockGetXTransfer, Ac::RefreshBarrier,
                {B_IDLE}, {}),
            brT(B_ARMED, Ev::LockGetXTransfer, Ac::RefreshBarrier,
                {B_ARMED}, {}),

            // -- InvAck answering one of our early Invs ------------------
            brT(B_NONE, Ev::EarlyInvAck, Ac::RelayStale, {B_NONE},
                {relayInvAck},
                "barrier expired under the ack: still relay to the "
                "home so the sharer list is trimmed"),
            brT(B_IDLE, Ev::EarlyInvAck, Ac::RelayStale, {B_IDLE},
                {relayInvAck}),
            brT(B_ARMED, Ev::EarlyInvAck, Ac::RelayAndCloseEi,
                {B_ARMED, B_IDLE}, {relayInvAck}),

            // -- TTL ------------------------------------------------------
            brIllegal(B_NONE, Ev::TtlExpire,
                      "no barrier installed, nothing can expire"),
            brT(B_IDLE, Ev::TtlExpire, Ac::ExpireBarrier, {B_NONE}, {}),
            brIllegal(B_ARMED, Ev::TtlExpire,
                      "the TTL countdown only runs while the EI list "
                      "is empty"),
        });
    return table;
}

// ---------------------------------------------------------------------

const ProtoTableBase &
protocolTable(int index)
{
    switch (index) {
      case 0:
        return l1ProtocolTable();
      case 1:
        return directoryProtocolTable();
      case 2:
        return bigRouterProtocolTable();
      default:
        panic("no protocol table %d", index);
    }
}

} // namespace inpg
