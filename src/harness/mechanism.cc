#include "harness/mechanism.hh"

namespace inpg {

const char *
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::Original:
        return "Original";
      case Mechanism::Ocor:
        return "OCOR";
      case Mechanism::Inpg:
        return "iNPG";
      case Mechanism::InpgOcor:
        return "iNPG+OCOR";
    }
    return "?";
}

bool
usesInpg(Mechanism m)
{
    return m == Mechanism::Inpg || m == Mechanism::InpgOcor;
}

bool
usesOcor(Mechanism m)
{
    return m == Mechanism::Ocor || m == Mechanism::InpgOcor;
}

} // namespace inpg
