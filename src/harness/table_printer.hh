/**
 * @file
 * Aligned text tables for the bench harness output (the rows/series
 * the paper's tables and figures report).
 */

#ifndef INPG_HARNESS_TABLE_PRINTER_HH
#define INPG_HARNESS_TABLE_PRINTER_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace inpg {

/** Simple column-aligned table with a title and header row. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::string table_title = "");

    /** Set the column headers (defines the column count). */
    void header(std::vector<std::string> cells);

    /** Append one row (padded/truncated to the column count). */
    void row(std::vector<std::string> cells);

    /** Convenience: first cell is a label, the rest are numbers. */
    void rowNumeric(const std::string &label,
                    const std::vector<double> &values, int decimals);

    /** Insert a horizontal separator. */
    void separator();

    /** Render with per-column widths fitted to the content. */
    std::string render() const;

    /** Render as CSV (header + data rows; separators skipped). */
    std::string renderCsv() const;

    /** Render to a stream. */
    void print(std::ostream &os) const;

  private:
    std::string title;
    std::vector<std::vector<std::string>> rows;
    std::vector<bool> isSeparator;
    std::size_t columns = 0;
};

} // namespace inpg

#endif // INPG_HARNESS_TABLE_PRINTER_HH
