#include "harness/table_printer.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/strutil.hh"

namespace inpg {

TablePrinter::TablePrinter(std::string table_title)
    : title(std::move(table_title))
{}

void
TablePrinter::header(std::vector<std::string> cells)
{
    columns = std::max(columns, cells.size());
    rows.insert(rows.begin(), std::move(cells));
    isSeparator.insert(isSeparator.begin(), false);
    // Separator under the header. (Note: an `{}` argument would pick
    // the initializer_list overload and insert nothing.)
    rows.insert(rows.begin() + 1, std::vector<std::string>{});
    isSeparator.insert(isSeparator.begin() + 1, true);
}

void
TablePrinter::row(std::vector<std::string> cells)
{
    columns = std::max(columns, cells.size());
    rows.push_back(std::move(cells));
    isSeparator.push_back(false);
}

void
TablePrinter::rowNumeric(const std::string &label,
                         const std::vector<double> &values, int decimals)
{
    std::vector<std::string> cells{label};
    for (double v : values)
        cells.push_back(fixed(v, decimals));
    row(std::move(cells));
}

void
TablePrinter::separator()
{
    rows.push_back({});
    isSeparator.push_back(true);
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(columns, 0);
    for (const auto &r : rows)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    std::ostringstream os;
    if (!title.empty())
        os << "== " << title << " ==\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (isSeparator[i]) {
            for (std::size_t c = 0; c < columns; ++c) {
                os << std::string(widths[c], '-');
                if (c + 1 < columns)
                    os << "-+-";
            }
            os << "\n";
            continue;
        }
        const auto &r = rows[i];
        for (std::size_t c = 0; c < columns; ++c) {
            std::string cell = c < r.size() ? r[c] : "";
            // Left-align the first column (labels), right-align data.
            os << (c == 0 ? padRight(cell, widths[c])
                          : padLeft(cell, widths[c]));
            if (c + 1 < columns)
                os << " | ";
        }
        os << "\n";
    }
    return os.str();
}

std::string
TablePrinter::renderCsv() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (isSeparator[i])
            continue;
        const auto &r = rows[i];
        for (std::size_t c = 0; c < columns; ++c) {
            std::string cell = c < r.size() ? r[c] : "";
            // Quote cells containing separators.
            if (cell.find_first_of(",\"") != std::string::npos) {
                std::string quoted = "\"";
                for (char ch : cell)
                    quoted += ch == '"' ? std::string("\"\"")
                                        : std::string(1, ch);
                quoted += '"';
                cell = quoted;
            }
            os << cell;
            if (c + 1 < columns)
                os << ",";
        }
        os << "\n";
    }
    return os.str();
}

void
TablePrinter::print(std::ostream &os) const
{
    os << render();
}

} // namespace inpg
