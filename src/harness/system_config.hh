/**
 * @file
 * Top-level system configuration: the paper's Table 1 in one struct,
 * plus the mechanism and lock primitive selectors.
 */

#ifndef INPG_HARNESS_SYSTEM_CONFIG_HH
#define INPG_HARNESS_SYSTEM_CONFIG_HH

#include <string>

#include "coh/coh_config.hh"
#include "common/config.hh"
#include "harness/mechanism.hh"
#include "inpg/inpg_config.hh"
#include "noc/noc_config.hh"
#include "sync/sync_config.hh"
#include "telemetry/telemetry.hh"

namespace inpg {

/**
 * Host-side implementation flavor: one switch for every fast/reference
 * data-structure toggle (timing-wheel vs heap event queue, flat-hash
 * vs tree containers, precomputed vs per-flit routes, mask-driven vs
 * full-scan allocation). Both flavors are bit-identical in simulated
 * results; Reference exists for determinism A/B tests and debugging.
 */
enum class ImplMode {
    Fast,
    Reference,
};

/** Everything needed to build one simulated system. */
struct SystemConfig {
    NocConfig noc;   ///< mesh, VCs, router pipeline
    CohConfig coh;   ///< caches, directory, memory latencies
    InpgConfig inpg; ///< big-router deployment and table sizing
    SyncConfig sync; ///< spin/sleep behaviour, OCOR parameters

    Mechanism mechanism = Mechanism::Original;
    LockKind lockKind = LockKind::Qsl;

    /**
     * Implementation flavor; finalize() fans it out to the individual
     * toggles (and System selects the event-queue mode from it). The
     * INPG_IMPL environment variable ("fast"/"reference") overrides.
     * Fast is the default and leaves hand-set toggles untouched, so
     * A/B tests can still drive the per-structure flags directly.
     */
    ImplMode impl = ImplMode::Fast;

    TelemetryConfig telemetry; ///< instrumentation; all off by default

    /**
     * Host worker threads for the simulation kernel. 1 (the default)
     * runs the classic serial loop; >1 attaches the parallel kernel
     * (src/sim/parallel), which shards plain routers across worker
     * threads in conservative-lookahead quanta. Simulated results are
     * bit-identical for every value. finalize() clamps to [1, 64].
     */
    int threads = 1;

    std::uint64_t seed = 1;

    /**
     * Normalize derived fields: the coherence layer's node count, the
     * NoC switch policy + sync OCOR flag from the mechanism, and the
     * big-router count when iNPG is off.
     */
    void finalize();

    /** Apply "key=value" overrides (mesh, mechanism, lock, ...). */
    void applyOverrides(const Config &cfg);

    /** Table 1-style multi-line description. */
    std::string describe() const;

    int numCores() const { return noc.numNodes(); }

    /**
     * @deprecated Set `impl` instead. Shim over the pre-`impl` era of
     * scattered toggles (NocConfig::precomputeRoutes/fastAllocScan,
     * CohConfig::flatContainers); the fields themselves also remain
     * writable for the determinism A/B tests.
     */
    [[deprecated("set SystemConfig::impl instead")]]
    void
    setFastStructures(bool fast)
    {
        impl = fast ? ImplMode::Fast : ImplMode::Reference;
        noc.precomputeRoutes = fast;
        noc.fastAllocScan = fast;
        noc.soaVcState = fast;
        coh.flatContainers = fast;
    }
};

/** Parse an implementation flavor name ("fast" / "reference"). */
ImplMode parseImplMode(const std::string &name);

/** Parse a mechanism name ("original", "ocor", "inpg", "inpg+ocor"). */
Mechanism parseMechanism(const std::string &name);

/** Parse a lock kind ("tas", "ttl", "abql", "mcs", "qsl"). */
LockKind parseLockKind(const std::string &name);

} // namespace inpg

#endif // INPG_HARNESS_SYSTEM_CONFIG_HH
