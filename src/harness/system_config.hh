/**
 * @file
 * Top-level system configuration: the paper's Table 1 in one struct,
 * plus the mechanism and lock primitive selectors.
 */

#ifndef INPG_HARNESS_SYSTEM_CONFIG_HH
#define INPG_HARNESS_SYSTEM_CONFIG_HH

#include <string>

#include "coh/coh_config.hh"
#include "common/config.hh"
#include "harness/mechanism.hh"
#include "inpg/inpg_config.hh"
#include "noc/noc_config.hh"
#include "sync/sync_config.hh"

namespace inpg {

/** Everything needed to build one simulated system. */
struct SystemConfig {
    NocConfig noc;   ///< mesh, VCs, router pipeline
    CohConfig coh;   ///< caches, directory, memory latencies
    InpgConfig inpg; ///< big-router deployment and table sizing
    SyncConfig sync; ///< spin/sleep behaviour, OCOR parameters

    Mechanism mechanism = Mechanism::Original;
    LockKind lockKind = LockKind::Qsl;

    std::uint64_t seed = 1;

    /**
     * Normalize derived fields: the coherence layer's node count, the
     * NoC switch policy + sync OCOR flag from the mechanism, and the
     * big-router count when iNPG is off.
     */
    void finalize();

    /** Apply "key=value" overrides (mesh, mechanism, lock, ...). */
    void applyOverrides(const Config &cfg);

    /** Table 1-style multi-line description. */
    std::string describe() const;

    int numCores() const { return noc.numNodes(); }
};

/** Parse a mechanism name ("original", "ocor", "inpg", "inpg+ocor"). */
Mechanism parseMechanism(const std::string &name);

/** Parse a lock kind ("tas", "ttl", "abql", "mcs", "qsl"). */
LockKind parseLockKind(const std::string &name);

} // namespace inpg

#endif // INPG_HARNESS_SYSTEM_CONFIG_HH
