/**
 * @file
 * ExperimentRunner: runs one benchmark profile on one system
 * configuration and collects every metric the paper's figures report.
 */

#ifndef INPG_HARNESS_EXPERIMENT_HH
#define INPG_HARNESS_EXPERIMENT_HH

#include <vector>

#include "common/histogram.hh"
#include "harness/system.hh"
#include "telemetry/json.hh"
#include "telemetry/lco_attribution.hh"
#include "telemetry/run_record.hh"
#include "workload/benchmark_profile.hh"
#include "workload/workload.hh"

namespace inpg {

/** Everything measured in one benchmark run. */
struct RunResult {
    std::string benchmark;
    Mechanism mechanism = Mechanism::Original;
    LockKind lockKind = LockKind::Qsl;

    /** ROI length: cycle at which the last thread finished. */
    Cycle roiCycles = 0;

    /** CS entries completed (across threads). */
    std::uint64_t csCompleted = 0;

    /** Per-phase totals summed over threads (thread-cycles). */
    Cycle parallelCycles = 0;
    Cycle cohCycles = 0;   ///< competition overhead incl. sleep
    Cycle sleepCycles = 0; ///< QSL sleep part of COH
    Cycle cseCycles = 0;   ///< CS execution

    /**
     * Lock coherence overhead (paper Fig. 2): thread-cycles spent in
     * lock-variable coherence transactions beyond the L1 hit cost.
     */
    Cycle lockCohCycles = 0;

    /** Competition overhead spent on-core (excludes the sleep phase). */
    Cycle lcoCycles() const { return cohCycles - sleepCycles; }

    /** Total CS time (paper Fig. 11's unit): COH + CSE. */
    Cycle csTotalCycles() const { return cohCycles + cseCycles; }

    /** Inv-Ack round-trip statistics (paper Fig. 10). */
    double rttMean = 0;
    std::uint64_t rttMax = 0;
    std::uint64_t rttCount = 0;
    Histogram rttHistogram{5, 40};
    std::vector<double> rttPerCoreMean;

    /** iNPG activity. */
    std::uint64_t earlyInvs = 0;

    /** QSL sleep statistics. */
    std::uint64_t sleeps = 0;
    std::uint64_t wakeups = 0;

    /**
     * Machine-readable stats snapshot (System::statsSnapshot()): every
     * component StatGroup, derived scalars, kernel histograms, and --
     * when LCO attribution is on -- the "lco" section. Always
     * populated; consumers no longer parse the text dump.
     */
    JsonValue stats;

    /**
     * Per-lock-acquire LCO attribution roll-up; all-zero unless
     * `telemetry=lco` (or more) was enabled on the run.
     */
    LcoSummary lco;

    /** Fraction of (thread x ROI) time spent in a phase. */
    double
    phaseFraction(Cycle phase_cycles, int threads) const
    {
        double denom = static_cast<double>(roiCycles) *
                       static_cast<double>(threads);
        return denom > 0 ? static_cast<double>(phase_cycles) / denom : 0;
    }
};

/** Parameters of one experiment run. */
struct RunConfig {
    BenchmarkProfile profile;
    SystemConfig system;
    /** CS-count scaling (see Workload::Params::csScale). */
    double csScale = 0.125;
    /** Optional fixed home for the program's first lock. */
    NodeId lockHome = INVALID_NODE;
    /** Simulation watchdog. */
    Cycle maxCycles = 200000000;
    /**
     * When non-empty, write a Chrome-trace (Perfetto-loadable) JSON of
     * the run here; trace-event + packet telemetry are force-enabled
     * for the run (they never change simulated results).
     */
    std::string traceOutPath;
    /**
     * When non-empty, write the time-series congestion samples here
     * (CSV when the path ends in ".csv", JSON otherwise); the sampler
     * is force-enabled at DEFAULT_TIMESERIES_EPOCH if the config did
     * not already set an epoch. Pure observer -- never changes results.
     */
    std::string timeseriesOutPath;
};

/**
 * Build a system, run the profile to completion, return the metrics.
 * Deterministic for a given RunConfig.
 */
RunResult runBenchmark(const RunConfig &cfg);

/**
 * Describe a finished run as a ledger RunRecord: configuration
 * identity from the (finalized) config, provenance from the build and
 * the INPG_GIT_SHA / INPG_GIT_DIRTY environment (run_benches.sh
 * exports them), metrics and attached sections from the result.
 */
RunRecord makeRunRecord(const RunConfig &cfg, const RunResult &r);

/**
 * Run the same profile under all four mechanisms (paper's comparative
 * setup); results indexed by ALL_MECHANISMS order. When
 * cfg.traceOutPath is set, each mechanism's trace goes to
 * traceOutPathFor(path, mechanism) -- the runs execute concurrently
 * and must not share one file.
 */
std::vector<RunResult> runAllMechanisms(RunConfig cfg);

/** "<stem>.<mechanism><ext>" trace file name ('+' becomes '_'). */
std::string traceOutPathFor(const std::string &base, Mechanism m);

} // namespace inpg

#endif // INPG_HARNESS_EXPERIMENT_HH
