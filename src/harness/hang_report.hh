/**
 * @file
 * Hang-report builder: turns a wedged System into one structured JSON
 * document a human (or CI) can diagnose from -- the in-flight packet
 * waterfall, per-router VC/credit state, directory queue/MSHR state,
 * iNPG barrier tables, the event-queue summary, and the flight
 * recorder's recent-event tail.
 *
 * Called from the progress watchdog's trip handler; the report rides
 * inside the thrown SimHangError so `inpg_sim` can write it to disk
 * and exit with HANG_EXIT_CODE.
 */

#ifndef INPG_HARNESS_HANG_REPORT_HH
#define INPG_HARNESS_HANG_REPORT_HH

#include "common/types.hh"
#include "telemetry/json.hh"

namespace inpg {

class System;

/**
 * Build the structured hang report for `sys` at cycle `now`.
 * @param reason static trip-reason string ("no-progress", "deadlock").
 *
 * Only non-idle components are itemized (a hung 8x8 mesh is mostly
 * idle; the wedged minority is the signal), with summary counts for
 * the rest.
 */
JsonValue buildHangReport(System &sys, Cycle now, const char *reason);

} // namespace inpg

#endif // INPG_HARNESS_HANG_REPORT_HH
