#include "harness/experiment.hh"

#include <iterator>

#include "common/logging.hh"
#include "harness/sweep_runner.hh"

namespace inpg {

RunResult
runBenchmark(const RunConfig &run_cfg)
{
    SystemConfig sys_cfg = run_cfg.system;
    sys_cfg.finalize();
    System system(sys_cfg);

    Workload::Params wp;
    wp.profile = run_cfg.profile;
    wp.threads = sys_cfg.numCores();
    wp.csScale = run_cfg.csScale;
    wp.lockHome = run_cfg.lockHome;
    wp.lockKind = sys_cfg.lockKind;
    wp.seed = sys_cfg.seed;
    Workload workload(wp, system.coherent(), system.locks(),
                      system.sim());

    workload.start();
    system.runUntil([&] { return workload.done(); }, run_cfg.maxCycles);

    RunResult r;
    r.benchmark = run_cfg.profile.name;
    r.mechanism = sys_cfg.mechanism;
    r.lockKind = sys_cfg.lockKind;
    r.roiCycles = workload.roiFinish();
    r.csCompleted = workload.csCompleted();
    r.parallelCycles = workload.totalCycles(ThreadPhase::Parallel);
    r.cohCycles = workload.totalCycles(ThreadPhase::Coh) +
                  workload.totalCycles(ThreadPhase::Sleep);
    r.sleepCycles = workload.totalCycles(ThreadPhase::Sleep);
    r.cseCycles = workload.totalCycles(ThreadPhase::Cse);

    const CohStats &cs = system.coherent().cohStats();
    r.rttMean = cs.rttHistogram.mean();
    r.rttMax = cs.rttHistogram.max();
    r.rttCount = cs.rttHistogram.count();
    r.rttHistogram = cs.rttHistogram;
    r.rttPerCoreMean.reserve(cs.rttPerCore.size());
    for (const auto &s : cs.rttPerCore)
        r.rttPerCoreMean.push_back(s.mean());

    for (int c = 0; c < sys_cfg.numCores(); ++c)
        r.lockCohCycles +=
            system.coherent().l1(c).stats.value("lock_coh_cycles");

    r.earlyInvs = system.totalEarlyInvs();
    for (const auto &lock : system.locks().locks()) {
        r.sleeps += lock->stats.value("sleeps");
        r.wakeups += lock->stats.value("wakeups");
    }
    return r;
}

std::vector<RunResult>
runAllMechanisms(RunConfig cfg)
{
    // The four mechanism runs are independent; fan them across the
    // sweep pool (results come back in ALL_MECHANISMS order).
    std::vector<RunConfig> configs;
    configs.reserve(std::size(ALL_MECHANISMS));
    for (Mechanism m : ALL_MECHANISMS) {
        cfg.system.mechanism = m;
        configs.push_back(cfg);
    }
    return runSweep(configs);
}

} // namespace inpg
