#include "harness/experiment.hh"

#include <cstdlib>
#include <iterator>

#include "common/logging.hh"
#include "harness/sweep_runner.hh"
#include "noc/topology.hh"
#include "telemetry/trace_event.hh"
#include "workload/phase_recorder.hh"

namespace inpg {

namespace {

/**
 * Emit each worker's phase timeline as one Chrome-trace track: a
 * duration slice per Parallel/Coh/Sleep/Cse interval. Done at export
 * time from the PhaseRecorder history, so the hot path records
 * nothing extra.
 */
void
exportThreadTimelines(const Workload &workload, Cycle end,
                      TraceEventSink &sink)
{
    for (const auto &tc : workload.threads()) {
        const auto tid =
            static_cast<std::uint32_t>(tc->threadId());
        sink.nameTrack(TrackGroup::Threads, tid,
                       format("thread %d", tc->threadId()));
        const auto &events = tc->recorder().timeline();
        for (std::size_t i = 0; i < events.size(); ++i) {
            if (events[i].phase == ThreadPhase::Done) {
                sink.instant(TrackGroup::Threads, tid, "done",
                             events[i].at);
                continue;
            }
            const Cycle stop = i + 1 < events.size()
                                   ? events[i + 1].at
                                   : end;
            if (stop > events[i].at) {
                sink.duration(TrackGroup::Threads, tid,
                              threadPhaseName(events[i].phase),
                              events[i].at, stop - events[i].at);
            }
        }
    }
}

} // namespace

std::string
traceOutPathFor(const std::string &base, Mechanism m)
{
    std::string tag = mechanismName(m);
    for (char &c : tag)
        if (c == '+')
            c = '_';
    const auto dot = base.rfind('.');
    const auto slash = base.find_last_of("/\\");
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return base + "." + tag;
    return base.substr(0, dot) + "." + tag + base.substr(dot);
}

RunResult
runBenchmark(const RunConfig &run_cfg)
{
    SystemConfig sys_cfg = run_cfg.system;
    if (!run_cfg.traceOutPath.empty()) {
        sys_cfg.telemetry.traceEvents = true;
        sys_cfg.telemetry.packets = true;
    }
    if (!run_cfg.timeseriesOutPath.empty() &&
        sys_cfg.telemetry.timeseriesEpoch == 0)
        sys_cfg.telemetry.timeseriesEpoch = DEFAULT_TIMESERIES_EPOCH;
    sys_cfg.finalize();
    System system(sys_cfg);

    Workload::Params wp;
    wp.profile = run_cfg.profile;
    wp.threads = sys_cfg.numCores();
    wp.csScale = run_cfg.csScale;
    wp.lockHome = run_cfg.lockHome;
    wp.lockKind = sys_cfg.lockKind;
    wp.seed = sys_cfg.seed;
    Workload workload(wp, system.coherent(), system.locks(),
                      system.sim());

    workload.start();
    system.runUntil([&] { return workload.done(); }, run_cfg.maxCycles);

    RunResult r;
    r.benchmark = run_cfg.profile.name;
    r.mechanism = sys_cfg.mechanism;
    r.lockKind = sys_cfg.lockKind;
    r.roiCycles = workload.roiFinish();
    r.csCompleted = workload.csCompleted();
    r.parallelCycles = workload.totalCycles(ThreadPhase::Parallel);
    r.cohCycles = workload.totalCycles(ThreadPhase::Coh) +
                  workload.totalCycles(ThreadPhase::Sleep);
    r.sleepCycles = workload.totalCycles(ThreadPhase::Sleep);
    r.cseCycles = workload.totalCycles(ThreadPhase::Cse);

    const CohStats &cs = system.coherent().cohStats();
    r.rttMean = cs.rttHistogram.mean();
    r.rttMax = cs.rttHistogram.max();
    r.rttCount = cs.rttHistogram.count();
    r.rttHistogram = cs.rttHistogram;
    r.rttPerCoreMean.reserve(cs.rttPerCore.size());
    for (const auto &s : cs.rttPerCore)
        r.rttPerCoreMean.push_back(s.mean());

    for (int c = 0; c < sys_cfg.numCores(); ++c)
        r.lockCohCycles +=
            system.coherent().l1(c).stats.value("lock_coh_cycles");

    r.earlyInvs = system.totalEarlyInvs();
    for (const auto &lock : system.locks().locks()) {
        r.sleeps += lock->stats.value("sleeps");
        r.wakeups += lock->stats.value("wakeups");
    }

    Telemetry *telem = system.telemetry();
    if (telem && telem->lco)
        r.lco = telem->lco->summary();
    if (telem && telem->trace && !run_cfg.traceOutPath.empty()) {
        exportThreadTimelines(workload, system.sim().now(),
                              *telem->trace);
        telem->trace->writeJsonFile(run_cfg.traceOutPath);
    }
    if (telem && telem->timeseries &&
        !run_cfg.timeseriesOutPath.empty())
        telem->timeseries->writeFile(run_cfg.timeseriesOutPath);
    r.stats = system.statsSnapshot();
    return r;
}

RunRecord
makeRunRecord(const RunConfig &cfg, const RunResult &r)
{
    // Re-finalize a copy so derived fields (core count, big-router
    // count when iNPG is off, INPG_IMPL override, thread clamp) match
    // what runBenchmark() actually simulated.
    SystemConfig sys = cfg.system;
    sys.mechanism = r.mechanism; // runAllMechanisms varies it per run
    sys.lockKind = r.lockKind;
    sys.finalize();

    RunRecord rec;
    if (const char *sha = std::getenv("INPG_GIT_SHA"))
        rec.gitSha = sha;
    if (const char *dirty = std::getenv("INPG_GIT_DIRTY"))
        rec.gitDirty = std::string(dirty) == "1";
    rec.compiler = runRecordCompiler();

    rec.benchmark = r.benchmark;
    rec.mechanism = mechanismName(r.mechanism);
    rec.lock = lockKindName(r.lockKind);
    TopologySpec spec;
    spec.kind = sys.noc.topology;
    spec.width = sys.noc.meshWidth;
    spec.height = sys.noc.meshHeight;
    spec.concentration = sys.noc.concentration;
    rec.topology = spec.canonical();
    rec.impl = sys.impl == ImplMode::Fast ? "fast" : "reference";
    rec.cores = sys.numCores();
    rec.bigRouters = sys.inpg.numBigRouters;
    rec.threads = sys.threads;
    rec.seed = sys.seed;
    rec.csScale = cfg.csScale;

    rec.roiCycles = r.roiCycles;
    rec.csCompleted = r.csCompleted;
    rec.parallelCycles = r.parallelCycles;
    rec.cohCycles = r.cohCycles;
    rec.sleepCycles = r.sleepCycles;
    rec.cseCycles = r.cseCycles;
    rec.lockCohCycles = r.lockCohCycles;
    rec.rttMean = r.rttMean;
    rec.rttMax = r.rttMax;
    rec.rttCount = r.rttCount;
    rec.earlyInvs = r.earlyInvs;
    rec.sleeps = r.sleeps;
    rec.wakeups = r.wakeups;

    if (const JsonValue *lco = r.stats.find("lco"))
        rec.lco = *lco;
    if (const JsonValue *ts = r.stats.find("timeseries"))
        rec.timeseries = *ts;
    rec.stats = r.stats;
    return rec;
}

std::vector<RunResult>
runAllMechanisms(RunConfig cfg)
{
    // The four mechanism runs are independent; fan them across the
    // sweep pool (results come back in ALL_MECHANISMS order). A shared
    // trace path would be written by four workers at once, so each run
    // gets "<stem>.<mechanism><ext>" instead.
    std::vector<RunConfig> configs;
    configs.reserve(std::size(ALL_MECHANISMS));
    for (Mechanism m : ALL_MECHANISMS) {
        cfg.system.mechanism = m;
        configs.push_back(cfg);
        if (!cfg.traceOutPath.empty())
            configs.back().traceOutPath =
                traceOutPathFor(cfg.traceOutPath, m);
        if (!cfg.timeseriesOutPath.empty())
            configs.back().timeseriesOutPath =
                traceOutPathFor(cfg.timeseriesOutPath, m);
    }
    return runSweep(configs);
}

} // namespace inpg
