#include "harness/hang_report.hh"

#include "coh/coherent_system.hh"
#include "harness/system.hh"
#include "inpg/big_router.hh"
#include "noc/network.hh"
#include "telemetry/run_record.hh"

namespace inpg {

JsonValue
buildHangReport(System &sys, Cycle now, const char *reason)
{
    Simulator &sim = sys.sim();
    CoherentSystem &mem = sys.coherent();
    Network &net = mem.network();
    Telemetry *telem = sys.telemetry();

    JsonValue doc = JsonValue::object();
    doc["report"] = "inpg-hang-report";
    doc["schema_version"] = HANG_REPORT_SCHEMA_VERSION;
    doc["reason"] = reason;
    doc["cycle"] = static_cast<std::uint64_t>(now);
    doc["mechanism"] = mechanismName(sys.config().mechanism);
    doc["lock"] = lockKindName(sys.config().lockKind);

    if (telem && telem->watchdog) {
        JsonValue wd = JsonValue::object();
        wd["window"] =
            static_cast<std::uint64_t>(telem->watchdog->window());
        wd["last_progress_at"] = static_cast<std::uint64_t>(
            telem->watchdog->lastProgressAt());
        wd["polls"] = telem->watchdog->polls();
        doc["watchdog"] = std::move(wd);
    }

    JsonValue kernel = JsonValue::object();
    kernel["active_components"] =
        static_cast<std::uint64_t>(sim.activeComponents());
    kernel["components"] =
        static_cast<std::uint64_t>(sim.numComponents());
    kernel["ff_jumps"] = sim.fastForwardJumps();
    kernel["ff_cycles"] = sim.cyclesFastForwarded();
    doc["kernel"] = std::move(kernel);
    doc["event_queue"] = sim.events().debugJson();

    // In-flight transaction waterfall (needs the packet tracker; the
    // watchdog can run without it, so record its absence explicitly).
    if (telem && telem->packets) {
        doc["packets_in_flight"] = telem->packets->inFlightJson(now);
    } else {
        doc["packets_in_flight"] =
            "unavailable (enable telemetry=packets)";
    }

    // Only wedged components are itemized: on a hung 8x8 mesh the
    // idle majority is noise. Summary counts cover the rest.
    JsonValue routers = JsonValue::array();
    JsonValue nis = JsonValue::array();
    JsonValue dirs = JsonValue::array();
    JsonValue barriers = JsonValue::array();
    std::uint64_t idle_routers = 0, idle_nis = 0, idle_dirs = 0;
    // Routers/NIs/barrier tables live on the router grid; directories
    // are per node. With concentration=1 the nested walk reproduces
    // the historical flat loop, so hang reports stay byte-identical.
    const int conc = net.topology().concentration();
    for (NodeId rt = 0; rt < net.numRouters(); ++rt) {
        Router &r = net.router(rt);
        if (r.bufferedFlits() > 0)
            routers.push(r.debugJson(now));
        else
            ++idle_routers;
        NetworkInterface &ni = net.ni(rt);
        if (!ni.idle())
            nis.push(ni.debugJson());
        else
            ++idle_nis;
        for (int k = 0; k < conc; ++k) {
            Directory &dir = mem.directory(rt * conc + k);
            if (!dir.idle())
                dirs.push(dir.debugJson(now));
            else
                ++idle_dirs;
        }
        if (auto *br = dynamic_cast<BigRouter *>(&r)) {
            if (br->generator().barrierTable().numBarriers() > 0) {
                JsonValue bj = JsonValue::object();
                bj["node"] = static_cast<long long>(
                    net.topology().firstNodeOf(rt));
                bj["table"] =
                    br->generator().barrierTable().debugJson(now);
                barriers.push(std::move(bj));
            }
        }
    }
    doc["routers"] = std::move(routers);
    doc["idle_routers"] = idle_routers;
    doc["nis"] = std::move(nis);
    doc["idle_nis"] = idle_nis;
    doc["directories"] = std::move(dirs);
    doc["idle_directories"] = idle_dirs;
    doc["barrier_tables"] = std::move(barriers);

    JsonValue l1s = JsonValue::array();
    std::uint64_t idle_l1s = 0;
    for (NodeId n = 0; n < net.numNodes(); ++n) {
        L1Controller &l1 = mem.l1(n);
        if (l1.busy() || l1.deferredForwardCount() > 0) {
            JsonValue lj = JsonValue::object();
            lj["core"] = static_cast<long long>(n);
            lj["state"] = l1.debugState();
            l1s.push(std::move(lj));
        } else {
            ++idle_l1s;
        }
    }
    doc["l1s"] = std::move(l1s);
    doc["idle_l1s"] = idle_l1s;

    if (telem && telem->recorder) {
        JsonValue fr = JsonValue::object();
        fr["recorded_total"] = telem->recorder->recordedTotal();
        fr["lost_to_wrap"] = telem->recorder->wrapped();
        fr["events"] = telem->recorder->toJson();
        doc["flight_recorder"] = std::move(fr);
    }
    return doc;
}

} // namespace inpg
