/**
 * @file
 * The four comparative mechanisms of the paper's evaluation (Sec. 5.1).
 */

#ifndef INPG_HARNESS_MECHANISM_HH
#define INPG_HARNESS_MECHANISM_HH

#include <string>

namespace inpg {

/** Evaluation case selector. */
enum class Mechanism {
    Original, ///< Case 1: the baseline architecture (Table 1)
    Ocor,     ///< Case 2: OCOR priority arbitration [40]
    Inpg,     ///< Case 3: big routers with in-network packet generation
    InpgOcor, ///< Case 4: iNPG + OCOR combined
};

/** All four mechanisms in paper order. */
inline constexpr Mechanism ALL_MECHANISMS[] = {
    Mechanism::Original,
    Mechanism::Ocor,
    Mechanism::Inpg,
    Mechanism::InpgOcor,
};

/** Display name ("Original", "OCOR", "iNPG", "iNPG+OCOR"). */
const char *mechanismName(Mechanism m);

/** True when the mechanism deploys big routers. */
bool usesInpg(Mechanism m);

/** True when the mechanism uses OCOR priorities. */
bool usesOcor(Mechanism m);

} // namespace inpg

#endif // INPG_HARNESS_MECHANISM_HH
