/**
 * @file
 * Named machine-scale presets for the `topology=` configuration knob.
 *
 * A preset is a short memorable name ("32x32", "1024c") that expands
 * to a full topology spec before parsing, so scripts can say
 * `topology=32x32` instead of spelling the fabric out. Unknown names
 * simply fall through to TopologySpec::parse, which accepts the
 * explicit `kind:WxH[xC]` forms (and fatals on anything else).
 */

#ifndef INPG_HARNESS_PRESETS_HH
#define INPG_HARNESS_PRESETS_HH

#include <string>
#include <vector>

namespace inpg {

/** One named topology preset. */
struct TopologyPreset {
    const char *name; ///< what the user types ("32x32")
    const char *spec; ///< the topology spec it expands to
    const char *note; ///< one-line description for help text
};

/** All presets, in display order. */
const std::vector<TopologyPreset> &topologyPresets();

/**
 * Expand a preset name to its spec string, or nullptr when the name is
 * not a preset (the caller then parses it as an explicit spec).
 */
const char *lookupTopologyPreset(const std::string &name);

} // namespace inpg

#endif // INPG_HARNESS_PRESETS_HH
