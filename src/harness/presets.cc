#include "harness/presets.hh"

namespace inpg {

const std::vector<TopologyPreset> &
topologyPresets()
{
    // The 8x8 mesh is the paper's evaluated machine and stays the
    // default (no preset needed). The scale-out presets are the
    // configurations the big-router placement question actually
    // changes at: 256 cores, then 1024 cores as one router per core
    // (32x32), as a wraparound fabric of the same radix, and as a
    // concentrated mesh that keeps the router grid at 16x16.
    static const std::vector<TopologyPreset> presets = {
        {"16x16", "mesh:16x16", "256-core mesh"},
        {"32x32", "mesh:32x32", "1024-core mesh scale-out"},
        {"32x32-torus", "torus:32x32",
         "1024-core torus (escape-VC dateline routing)"},
        {"1024c", "cmesh:16x16x4",
         "1024 cores, 4 per router on a 16x16 concentrated mesh"},
    };
    return presets;
}

const char *
lookupTopologyPreset(const std::string &name)
{
    for (const TopologyPreset &p : topologyPresets())
        if (name == p.name)
            return p.spec;
    return nullptr;
}

} // namespace inpg
