#include "harness/system_config.hh"

#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "harness/presets.hh"
#include "noc/topology.hh"

namespace inpg {

ImplMode
parseImplMode(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "fast" || n == "optimized")
        return ImplMode::Fast;
    if (n == "reference" || n == "ref")
        return ImplMode::Reference;
    fatal("unknown implementation mode '%s' (fast|reference)",
          name.c_str());
}

Mechanism
parseMechanism(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "original" || n == "base" || n == "baseline")
        return Mechanism::Original;
    if (n == "ocor")
        return Mechanism::Ocor;
    if (n == "inpg")
        return Mechanism::Inpg;
    if (n == "inpg+ocor" || n == "inpg_ocor" || n == "both")
        return Mechanism::InpgOcor;
    fatal("unknown mechanism '%s'", name.c_str());
}

LockKind
parseLockKind(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "tas")
        return LockKind::Tas;
    if (n == "ttl" || n == "ticket")
        return LockKind::Ticket;
    if (n == "abql")
        return LockKind::Abql;
    if (n == "mcs")
        return LockKind::Mcs;
    if (n == "qsl")
        return LockKind::Qsl;
    fatal("unknown lock kind '%s'", name.c_str());
}

void
SystemConfig::finalize()
{
    coh.numNodes = noc.numNodes();
    noc.switchPolicy = usesOcor(mechanism) ? SwitchPolicy::Priority
                                           : SwitchPolicy::RoundRobin;
    noc.agingQuantum = sync.ocor.agingQuantum;
    sync.ocorEnabled = usesOcor(mechanism);
    if (noc.topology != TopologyKind::CMesh && noc.concentration != 1)
        fatal("concentration %d requires topology=cmesh",
              noc.concentration);
    if (noc.topology == TopologyKind::Torus && noc.escapeVcs &&
        (noc.vcsPerVnet < 2 || noc.vcsPerVnet % 2 != 0)) {
        fatal("torus escape VCs need an even vcs_per_vnet >= 2 (got %d) "
              "to split each vnet into two dateline classes",
              noc.vcsPerVnet);
    }
    // NB: inpg.numBigRouters is NOT zeroed for non-iNPG mechanisms --
    // the same config is reused across mechanism sweeps; System gates
    // deployment on usesInpg(mechanism) instead. Big routers are
    // router-grid sites, so the clamp is against numRouters.
    if (inpg.numBigRouters > noc.numRouters())
        inpg.numBigRouters = noc.numRouters();

    // One switch for every host-side data-structure flavor. The
    // environment wins over programmatic configuration; an explicit
    // env value forces all per-structure toggles so a whole sweep can
    // be flipped without touching code. Without the env, Fast (the
    // default) leaves hand-set toggles alone -- the determinism A/B
    // tests drive the individual flags directly -- while Reference
    // forces every structure onto the reference path.
    if (const char *env = std::getenv("INPG_IMPL")) {
        impl = parseImplMode(env);
        const bool fast = impl == ImplMode::Fast;
        noc.precomputeRoutes = fast;
        noc.fastAllocScan = fast;
        noc.soaVcState = fast;
        coh.flatContainers = fast;
    } else if (impl == ImplMode::Reference) {
        noc.precomputeRoutes = false;
        noc.fastAllocScan = false;
        noc.soaVcState = false;
        coh.flatContainers = false;
    }
    if (const char *env = std::getenv("INPG_TELEMETRY"))
        telemetry.applySpec(env);
    if (threads < 1)
        threads = 1;
    if (threads > 64)
        threads = 64;
}

void
SystemConfig::applyOverrides(const Config &cfg)
{
    // "topology=kind:WxH[xC]" is the one fabric knob: mesh:16x16,
    // torus:8x8, cmesh:8x8x4, a bare WxH (mesh), or a named preset
    // ("32x32", "1024c"). Strict parse -- unknown kinds and malformed
    // geometry are fatal.
    if (cfg.has("topology")) {
        std::string t = toLower(cfg.getString("topology"));
        if (const char *spec = lookupTopologyPreset(t))
            t = spec;
        TopologySpec::parse(t).applyTo(noc);
    }
    // "mesh=WxH" is the deprecated spelling of topology=mesh:WxH; keep
    // it working (a lot of scripts use it) but nudge toward the new
    // key. Explicit mesh_width/mesh_height still win.
    if (cfg.has("mesh")) {
        std::string m = toLower(cfg.getString("mesh"));
        std::size_t x = m.find('x');
        int w = 0, h = 0;
        if (x != std::string::npos) {
            w = std::atoi(m.substr(0, x).c_str());
            h = std::atoi(m.substr(x + 1).c_str());
        }
        if (w < 1 || h < 1)
            fatal("bad mesh '%s' (want WxH, e.g. 16x16)", m.c_str());
        warn("mesh=%s is deprecated; use topology=mesh:%dx%d", m.c_str(),
             w, h);
        noc.topology = TopologyKind::Mesh;
        noc.concentration = 1;
        noc.meshWidth = w;
        noc.meshHeight = h;
    }
    noc.meshWidth = static_cast<int>(
        cfg.getInt("mesh_width", noc.meshWidth));
    noc.meshHeight = static_cast<int>(
        cfg.getInt("mesh_height", noc.meshHeight));
    noc.escapeVcs = cfg.getBool("escape_vcs", noc.escapeVcs);
    threads = static_cast<int>(cfg.getInt("threads", threads));
    noc.vcsPerVnet = static_cast<int>(
        cfg.getInt("vcs_per_vnet", noc.vcsPerVnet));
    noc.vcDepth = static_cast<int>(cfg.getInt("vc_depth", noc.vcDepth));
    coh.l1Latency = static_cast<Cycle>(
        cfg.getInt("l1_latency", static_cast<long long>(coh.l1Latency)));
    coh.l2Latency = static_cast<Cycle>(
        cfg.getInt("l2_latency", static_cast<long long>(coh.l2Latency)));
    coh.memLatency = static_cast<Cycle>(
        cfg.getInt("mem_latency",
                   static_cast<long long>(coh.memLatency)));
    inpg.numBigRouters = static_cast<int>(
        cfg.getInt("big_routers", inpg.numBigRouters));
    inpg.barrierEntries = static_cast<std::size_t>(
        cfg.getInt("barrier_entries",
                   static_cast<long long>(inpg.barrierEntries)));
    inpg.eiEntries = static_cast<std::size_t>(cfg.getInt(
        "ei_entries", static_cast<long long>(inpg.eiEntries)));
    inpg.barrierTtl = static_cast<Cycle>(cfg.getInt(
        "barrier_ttl", static_cast<long long>(inpg.barrierTtl)));
    sync.spinInterval = static_cast<Cycle>(cfg.getInt(
        "spin_interval", static_cast<long long>(sync.spinInterval)));
    sync.qslRetryLimit = static_cast<int>(
        cfg.getInt("qsl_retry_limit", sync.qslRetryLimit));
    sync.contextSwitchCost = static_cast<Cycle>(
        cfg.getInt("context_switch_cost",
                   static_cast<long long>(sync.contextSwitchCost)));
    sync.wakeupCost = static_cast<Cycle>(cfg.getInt(
        "wakeup_cost", static_cast<long long>(sync.wakeupCost)));
    seed = static_cast<std::uint64_t>(cfg.getInt(
        "seed", static_cast<long long>(seed)));
    if (cfg.has("routing")) {
        std::string r = toLower(cfg.getString("routing"));
        if (r == "xy")
            noc.routing = RoutingKind::XY;
        else if (r == "yx")
            noc.routing = RoutingKind::YX;
        else
            fatal("unknown routing '%s' (xy|yx)", r.c_str());
    }
    if (cfg.has("mechanism"))
        mechanism = parseMechanism(cfg.getString("mechanism"));
    if (cfg.has("lock"))
        lockKind = parseLockKind(cfg.getString("lock"));
    if (cfg.has("impl")) {
        impl = parseImplMode(cfg.getString("impl"));
        const bool fast = impl == ImplMode::Fast;
        noc.precomputeRoutes = fast;
        noc.fastAllocScan = fast;
        noc.soaVcState = fast;
        coh.flatContainers = fast;
    }
    if (cfg.has("telemetry"))
        telemetry.applySpec(cfg.getString("telemetry"));
    // Diagnosis-layer knobs. A non-zero window/epoch enables the
    // watchdog/sampler directly (no separate telemetry token needed).
    telemetry.watchdogWindow = static_cast<Cycle>(
        cfg.getInt("watchdog_window",
                   static_cast<long long>(telemetry.watchdogWindow)));
    telemetry.timeseriesEpoch = static_cast<Cycle>(
        cfg.getInt("timeseries_epoch",
                   static_cast<long long>(telemetry.timeseriesEpoch)));
    telemetry.recorderCapacity = static_cast<std::size_t>(
        cfg.getInt("recorder_capacity",
                   static_cast<long long>(telemetry.recorderCapacity)));
    coh.dropDirResponseNth = static_cast<std::uint64_t>(
        cfg.getInt("drop_dir_response",
                   static_cast<long long>(coh.dropDirResponseNth)));
    finalize();
}

std::string
SystemConfig::describe() const
{
    TopologySpec spec;
    spec.kind = noc.topology;
    spec.width = noc.meshWidth;
    spec.height = noc.meshHeight;
    spec.concentration = noc.concentration;
    std::ostringstream os;
    os << "Cores      : " << numCores() << " (" << spec.canonical()
       << ", " << (noc.routing == RoutingKind::YX ? "YX" : "XY")
       << " routing, 2-stage router, " << noc.vcsPerVnet
       << " VCs/vnet x " << noc.numVnets << " vnets, " << noc.vcDepth
       << "-flit VCs)\n";
    os << "L1 cache   : private, " << coh.l1Latency
       << "-cycle latency, " << coh.lineSize << " B blocks\n";
    os << "L2 cache   : shared, 1 bank/tile, " << coh.l2Latency
       << "-cycle latency, directory MOESI\n";
    os << "Memory     : " << coh.memLatency
       << "-cycle DRAM, 8 controllers\n";
    os << "Mechanism  : " << mechanismName(mechanism) << "\n";
    os << "Lock       : " << lockKindName(lockKind) << " (spin interval "
       << sync.spinInterval << ", QSL retry limit "
       << sync.qslRetryLimit << ", ctx-switch "
       << sync.contextSwitchCost << " + wakeup " << sync.wakeupCost
       << " cycles)\n";
    if (usesInpg(mechanism)) {
        os << "iNPG       : " << inpg.numBigRouters << " big routers, "
           << inpg.barrierEntries << "-entry barrier table, "
           << inpg.eiEntries << " EI entries, TTL " << inpg.barrierTtl
           << "\n";
    }
    if (usesOcor(mechanism)) {
        os << "OCOR       : " << sync.ocor.priorityLevels << " levels, "
           << sync.ocor.retriesPerLevel
           << " retries/level, aging quantum " << sync.ocor.agingQuantum
           << "\n";
    }
    return os.str();
}

} // namespace inpg
