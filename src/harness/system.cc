#include "harness/system.hh"

#include "coh/protocol_verify.hh"
#include "common/logging.hh"
#include "harness/hang_report.hh"
#include "inpg/big_router.hh"
#include "noc/topology.hh"
#include "sim/parallel/parallel_kernel.hh"

namespace inpg {

System::System(SystemConfig config) : cfg(std::move(config))
{
    cfg.finalize();
    // Wraparound fabrics are only admitted with a proof: the routing
    // function's channel-dependency graph must be acyclic, or the
    // fabric can deadlock no matter what the protocol tables say. A
    // torus without escape VCs fails here with the ring cycle as the
    // witness. Meshes (incl. cmesh) are minimal dimension-order
    // fabrics -- acyclic by construction -- so the check is skipped.
    if (cfg.noc.topology == TopologyKind::Torus) {
        const auto diags = verifyChannelDeps(*makeTopology(cfg.noc));
        if (!diags.empty())
            fatal("topology rejected: %s",
                  diags.front().toString().c_str());
    }
    // The queue mode must flip before any component can schedule.
    if (cfg.impl == ImplMode::Reference)
        kernel.events().setReferenceMode(true);
    if (cfg.telemetry.any()) {
        telem = std::make_unique<Telemetry>(cfg.telemetry,
                                            cfg.numCores());
        kernel.setTelemetry(telem.get());
    }
    RouterFactory factory = nullptr;
    if (usesInpg(cfg.mechanism) && cfg.inpg.numBigRouters > 0)
        factory = makeInpgRouterFactory(cfg.inpg, cfg.coh);
    memSys = std::make_unique<CoherentSystem>(cfg.noc, cfg.coh, kernel,
                                              std::move(factory));
    if (telem)
        memSys->setTelemetry(telem.get());
    lockMgr = std::make_unique<LockManager>(*memSys, kernel, cfg.sync);
    if (telem && (telem->timeseries || telem->watchdog))
        wireDiagnosis();
    // Last: every Ticking must already be registered (the kernel
    // steals router slots; Simulator::addTicking refuses afterwards).
    if (cfg.threads > 1)
        parKernel = std::make_unique<ParallelKernel>(
            kernel, memSys->network(), cfg.threads);
}

System::~System() = default;

void
System::wireDiagnosis()
{
    Network &net = memSys->network();
    if (TimeseriesSampler *ts = telem->timeseries) {
        const Simulator *k = &kernel;
        ts->addGauge("events.pending", [k] {
            return static_cast<std::uint64_t>(k->events().size());
        });
        ts->addGauge("events.executed_total",
                     [k] { return k->events().executedTotal(); });
        // Routers and NIs are router-grid resources; directories are
        // per-node. The nested walk keeps the concentration=1
        // registration order identical to the historical flat loop.
        const int conc = net.topology().concentration();
        for (NodeId rt = 0; rt < net.numRouters(); ++rt) {
            const Router *r = &net.router(rt);
            ts->addGauge(format("router.%d.occ", rt), [r] {
                return static_cast<std::uint64_t>(r->bufferedFlits());
            });
            ts->addCounter(format("router.%d.flits_sent", rt),
                           &net.router(rt).stats.counter("flits_sent"));
            for (int k = 0; k < conc; ++k) {
                const NodeId n = rt * conc + k;
                const Directory *d = &memSys->directory(n);
                ts->addGauge(format("dir.%d.qdepth", n), [d] {
                    return static_cast<std::uint64_t>(d->queueDepth());
                });
            }
            ts->addCounter(
                format("ni.%d.delivered", rt),
                &net.ni(rt).stats.counter("packets_delivered"));
        }
    }
    if (ProgressWatchdog *wd = telem->watchdog) {
        // Progress = packet deliveries + retired memory ops. Event
        // executions deliberately do NOT count: spinning cores fire
        // events throughout a genuine protocol deadlock.
        const int conc = net.topology().concentration();
        for (NodeId rt = 0; rt < net.numRouters(); ++rt) {
            wd->watchCounter(
                &net.ni(rt).stats.counter("packets_delivered"));
            for (int k = 0; k < conc; ++k)
                wd->watchCounter(&memSys->l1(rt * conc + k)
                                      .stats.counter("ops_completed"));
        }
        wd->setOnTrip([this](Cycle at, const char *reason) {
            JsonValue report = buildHangReport(*this, at, reason);
            throw SimHangError(
                format("watchdog tripped (%s) at cycle %llu: no "
                       "simulation progress for %llu executed cycles",
                       reason, static_cast<unsigned long long>(at),
                       static_cast<unsigned long long>(
                           telem->watchdog->window())),
                report.dump(2));
        });
    }
}

void
System::runUntil(const std::function<bool()> &done, Cycle max_cycles)
{
    // Harness predicates are pure state functions (workload/protocol
    // completion), so idle spans may be skipped in one jump.
    if (!kernel.runUntil(done, max_cycles,
                         Simulator::PredicateMode::StateChange)) {
        fatal("simulation did not converge within %llu cycles "
              "(mechanism %s, lock %s)",
              static_cast<unsigned long long>(max_cycles),
              mechanismName(cfg.mechanism),
              lockKindName(cfg.lockKind));
    }
}

int
System::deployedBigRouters() const
{
    int n = 0;
    for (NodeId id = 0; id < memSys->network().numRouters(); ++id)
        n += memSys->network().router(id).isBigRouter() ? 1 : 0;
    return n;
}

std::uint64_t
System::totalEarlyInvs() const
{
    std::uint64_t total = 0;
    for (NodeId id = 0; id < memSys->network().numRouters(); ++id) {
        auto *br = dynamic_cast<BigRouter *>(&memSys->network().router(id));
        if (br)
            total += br->generator().stats.value("early_invs_generated");
    }
    return total;
}

StatsRegistry
System::buildStatsRegistry() const
{
    StatsRegistry reg;
    for (const auto &lock : lockMgr->locks())
        reg.addGroup(format("lock.%s", lock->name().c_str()),
                     &lock->stats);
    Network &net = memSys->network();
    // Per-node (l1/dir) and per-router (router/ni/inpg) groups, nested
    // so the concentration=1 group order matches the historical flat
    // loop byte-for-byte in stats snapshots.
    const int conc = net.topology().concentration();
    for (NodeId rt = 0; rt < net.numRouters(); ++rt) {
        for (int k = 0; k < conc; ++k) {
            const NodeId n = rt * conc + k;
            reg.addGroup(format("l1.%d", n), &memSys->l1(n).stats);
            reg.addGroup(format("dir.%d", n),
                         &memSys->directory(n).stats);
        }
        reg.addGroup(format("router.%d", rt), &net.router(rt).stats);
        reg.addGroup(format("ni.%d", rt), &net.ni(rt).stats);
        if (auto *br = dynamic_cast<BigRouter *>(&net.router(rt))) {
            reg.addGroup(format("inpg.gen.%d", rt),
                         &br->generator().stats);
            reg.addGroup(format("inpg.table.%d", rt),
                         &br->generator().barrierTable().stats);
        }
    }
    for (int i = 0; i < memSys->numMemoryControllers(); ++i)
        reg.addGroup(format("mc.%d", i),
                     &memSys->memoryController(i).stats);
    if (telem && telem->packets)
        reg.addGroup("noc.packets", &telem->packets->statGroup());
    if (telem && telem->kernel) {
        reg.addHistogram("kernel.events_per_cycle",
                         &telem->kernel->eventsPerCycleHist());
        reg.addHistogram("kernel.wheel_occupancy",
                         &telem->kernel->wheelOccupancyHist());
        reg.addHistogram("kernel.ff_skip",
                         &telem->kernel->ffSkipHist());
    }
    const Simulator *k = &kernel;
    reg.addScalar("sim.cycles",
                  [k] { return static_cast<double>(k->now()); });
    reg.addScalar("sim.events_executed", [k] {
        return static_cast<double>(k->events().executedTotal());
    });
    return reg;
}

JsonValue
System::statsSnapshot(bool include_parallel_profile) const
{
    JsonValue doc = buildStatsRegistry().snapshot();
    if (telem && telem->lco)
        doc["lco"] = telem->lco->summary().toJson();
    if (telem && telem->trace) {
        JsonValue tr = JsonValue::object();
        tr["events"] =
            static_cast<std::uint64_t>(telem->trace->eventCount());
        tr["dropped"] =
            static_cast<std::uint64_t>(telem->trace->droppedCount());
        doc["trace"] = tr;
    }
    if (telem && telem->timeseries) {
        JsonValue ts = JsonValue::object();
        ts["epoch"] = static_cast<std::uint64_t>(
            telem->timeseries->epochLength());
        ts["rows"] =
            static_cast<std::uint64_t>(telem->timeseries->rows());
        ts["dropped_rows"] = telem->timeseries->droppedRows();
        doc["timeseries"] = ts;
    }
    if (telem && telem->recorder) {
        JsonValue fr = JsonValue::object();
        fr["recorded_total"] = telem->recorder->recordedTotal();
        fr["lost_to_wrap"] = telem->recorder->wrapped();
        doc["recorder"] = fr;
    }
    // Absent at threads == 1, so serial snapshots are byte-identical
    // to pre-profiler ones; the flag lets the parallel-equivalence
    // tests compare thread counts on the simulated sections alone.
    if (include_parallel_profile && parKernel)
        doc["parallel_profile"] = parKernel->profile().toJson();
    return doc;
}

} // namespace inpg
