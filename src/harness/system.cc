#include "harness/system.hh"

#include "common/logging.hh"
#include "inpg/big_router.hh"

namespace inpg {

System::System(SystemConfig config) : cfg(std::move(config))
{
    cfg.finalize();
    RouterFactory factory = nullptr;
    if (usesInpg(cfg.mechanism) && cfg.inpg.numBigRouters > 0)
        factory = makeInpgRouterFactory(cfg.inpg, cfg.coh);
    memSys = std::make_unique<CoherentSystem>(cfg.noc, cfg.coh, kernel,
                                              std::move(factory));
    lockMgr = std::make_unique<LockManager>(*memSys, kernel, cfg.sync);
}

void
System::runUntil(const std::function<bool()> &done, Cycle max_cycles)
{
    // Harness predicates are pure state functions (workload/protocol
    // completion), so idle spans may be skipped in one jump.
    if (!kernel.runUntil(done, max_cycles,
                         Simulator::PredicateMode::StateChange)) {
        fatal("simulation did not converge within %llu cycles "
              "(mechanism %s, lock %s)",
              static_cast<unsigned long long>(max_cycles),
              mechanismName(cfg.mechanism),
              lockKindName(cfg.lockKind));
    }
}

int
System::deployedBigRouters() const
{
    int n = 0;
    for (NodeId id = 0; id < memSys->network().numNodes(); ++id)
        n += memSys->network().router(id).isBigRouter() ? 1 : 0;
    return n;
}

std::uint64_t
System::totalEarlyInvs() const
{
    std::uint64_t total = 0;
    for (NodeId id = 0; id < memSys->network().numNodes(); ++id) {
        auto *br = dynamic_cast<BigRouter *>(&memSys->network().router(id));
        if (br)
            total += br->generator().stats.value("early_invs_generated");
    }
    return total;
}

} // namespace inpg
