/**
 * @file
 * Parallel sweep runner: fan independent RunConfigs across a host
 * thread pool.
 *
 * Benchmark runs are embarrassingly parallel -- each builds its own
 * System (kernel, NoC, coherence, locks) and its own Rng stream seeded
 * from the configuration, and a System never leaves the worker thread
 * that built it (FlitPool free lists are thread-local; see
 * flit_pool.hh). Results are therefore bit-identical to a serial sweep
 * regardless of thread count or scheduling, just indexed back into
 * submission order.
 */

#ifndef INPG_HARNESS_SWEEP_RUNNER_HH
#define INPG_HARNESS_SWEEP_RUNNER_HH

#include <vector>

#include "harness/experiment.hh"

namespace inpg {

/** Host-side knobs for a sweep (simulated behavior is unaffected). */
struct SweepOptions {
    /**
     * Worker threads; 0 = auto (INPG_SWEEP_THREADS env var if set, else
     * hardware concurrency, capped at the job count).
     */
    int threads = 0;

    /**
     * When set, every finished run is appended as a RunRecord after
     * the sweep completes, in submission order -- so the ledger's
     * contents are deterministic regardless of worker scheduling.
     */
    ExperimentLedger *ledger = nullptr;
};

/**
 * Resolve the worker count for `jobs` jobs: an explicit request wins,
 * then the INPG_SWEEP_THREADS environment variable, then the hardware
 * thread count; always within [1, jobs].
 */
int sweepThreadCount(std::size_t jobs, int requested);

/**
 * Arbitrate the host thread budget between sweep-level and intra-run
 * parallelism: with `sweep_workers` concurrent runs on `hw` hardware
 * threads, each run's SystemConfig::threads request is clamped to its
 * fair share max(1, hw / sweep_workers) so a sweep of parallel-kernel
 * runs cannot oversubscribe the host. Never raises a request; a
 * serial run (request <= 1) stays serial. Simulated results are
 * unaffected (the parallel kernel is bit-identical at any width).
 */
int perRunThreadBudget(int sweep_workers, int requested_run_threads,
                       unsigned hw);

/**
 * Run every configuration and return results in submission order.
 * Runs inline (no threads) when only one worker is warranted.
 */
std::vector<RunResult> runSweep(const std::vector<RunConfig> &configs,
                                const SweepOptions &opts = {});

/**
 * Big-router-placement sweep grid: one RunConfig per (fabric,
 * big-router count) pair, row-major in the given order. Each fabric is
 * a topology spec or preset name ("torus:8x8", "32x32"); each count
 * sets inpg.numBigRouters on a copy of `base` (counts above the
 * fabric's router total clamp at finalize, as everywhere else). The
 * base's mechanism/lock/benchmark are preserved, so callers sweep
 * placement under exactly the configuration they care about.
 */
std::vector<RunConfig>
buildPlacementSweep(const RunConfig &base,
                    const std::vector<std::string> &fabrics,
                    const std::vector<int> &big_router_counts);

} // namespace inpg

#endif // INPG_HARNESS_SWEEP_RUNNER_HH
