#include "harness/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/trace.hh"
#include "harness/presets.hh"
#include "noc/topology.hh"

namespace inpg {

int
sweepThreadCount(std::size_t jobs, int requested)
{
    if (jobs <= 1)
        return 1;
    int n = requested;
    if (n <= 0) {
        if (const char *env = std::getenv("INPG_SWEEP_THREADS"))
            n = std::atoi(env);
    }
    if (n <= 0)
        n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0)
        n = 1;
    if (static_cast<std::size_t>(n) > jobs)
        n = static_cast<int>(jobs);
    return n;
}

int
perRunThreadBudget(int sweep_workers, int requested_run_threads,
                   unsigned hw)
{
    if (requested_run_threads <= 1)
        return 1;
    if (sweep_workers <= 1)
        return requested_run_threads;
    int share = static_cast<int>(hw) /
                (sweep_workers > 0 ? sweep_workers : 1);
    if (share < 1)
        share = 1;
    return requested_run_threads < share ? requested_run_threads
                                         : share;
}

std::vector<RunResult>
runSweep(const std::vector<RunConfig> &configs, const SweepOptions &opts)
{
    std::vector<RunResult> results(configs.size());
    if (configs.empty())
        return results;

    // Kernel threads each run actually got (after the budget clamp
    // below), recorded into its ledger entry.
    std::vector<int> runThreads(configs.size(), 1);
    auto appendLedger = [&] {
        if (!opts.ledger)
            return;
        for (std::size_t i = 0; i < configs.size(); ++i) {
            RunRecord rec = makeRunRecord(configs[i], results[i]);
            rec.threads = runThreads[i];
            opts.ledger->append(rec);
        }
    };

    const int nthreads = sweepThreadCount(configs.size(), opts.threads);
    if (nthreads == 1) {
        for (std::size_t i = 0; i < configs.size(); ++i) {
            results[i] = runBenchmark(configs[i]);
            runThreads[i] = std::max(configs[i].system.threads, 1);
        }
        appendLedger();
        return results;
    }

    // The trace registry initializes lazily from the environment on
    // first use; force that once before workers can race on it.
    Trace::initFromEnvironment();

    std::atomic<std::size_t> next{0};
    const unsigned hw = std::thread::hardware_concurrency();
    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= configs.size())
                return;
            // Sweep-level parallelism outranks intra-run parallelism:
            // clamp each run's kernel threads to its share of the
            // host so N workers x M kernel threads cannot
            // oversubscribe. Bit-identical either way.
            if (configs[i].system.threads > 1) {
                RunConfig rc = configs[i];
                rc.system.threads = perRunThreadBudget(
                    nthreads, rc.system.threads, hw);
                runThreads[i] = rc.system.threads;
                results[i] = runBenchmark(rc);
            } else {
                results[i] = runBenchmark(configs[i]);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(nthreads));
    for (int t = 0; t < nthreads; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    appendLedger();
    return results;
}

std::vector<RunConfig>
buildPlacementSweep(const RunConfig &base,
                    const std::vector<std::string> &fabrics,
                    const std::vector<int> &big_router_counts)
{
    std::vector<RunConfig> out;
    out.reserve(fabrics.size() * big_router_counts.size());
    for (const std::string &fabric : fabrics) {
        std::string text = toLower(trim(fabric));
        if (const char *spec = lookupTopologyPreset(text))
            text = spec;
        const TopologySpec spec = TopologySpec::parse(text);
        for (int count : big_router_counts) {
            RunConfig rc = base;
            spec.applyTo(rc.system.noc);
            rc.system.inpg.numBigRouters = count;
            out.push_back(std::move(rc));
        }
    }
    return out;
}

} // namespace inpg
