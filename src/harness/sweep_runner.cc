#include "harness/sweep_runner.hh"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "common/trace.hh"

namespace inpg {

int
sweepThreadCount(std::size_t jobs, int requested)
{
    if (jobs <= 1)
        return 1;
    int n = requested;
    if (n <= 0) {
        if (const char *env = std::getenv("INPG_SWEEP_THREADS"))
            n = std::atoi(env);
    }
    if (n <= 0)
        n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0)
        n = 1;
    if (static_cast<std::size_t>(n) > jobs)
        n = static_cast<int>(jobs);
    return n;
}

std::vector<RunResult>
runSweep(const std::vector<RunConfig> &configs, const SweepOptions &opts)
{
    std::vector<RunResult> results(configs.size());
    if (configs.empty())
        return results;

    const int nthreads = sweepThreadCount(configs.size(), opts.threads);
    if (nthreads == 1) {
        for (std::size_t i = 0; i < configs.size(); ++i)
            results[i] = runBenchmark(configs[i]);
        return results;
    }

    // The trace registry initializes lazily from the environment on
    // first use; force that once before workers can race on it.
    Trace::initFromEnvironment();

    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= configs.size())
                return;
            results[i] = runBenchmark(configs[i]);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(nthreads));
    for (int t = 0; t < nthreads; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    return results;
}

} // namespace inpg
