/**
 * @file
 * RunRecord: the versioned, machine-readable record of one benchmark
 * run -- full provenance (commit, compiler, topology, mechanism, lock,
 * threads, seed, implementation flavor) plus the scalar metrics every
 * figure is computed from, the LCO leg breakdown, the timeseries
 * summary, and the complete stats snapshot.
 *
 * Records are appended to an **experiment ledger**: a JSONL file, one
 * record per line, append-only. `inpg_sim --ledger-out=...`, the sweep
 * runner, and `run_benches.sh --ledger-out=...` all write the same
 * schema, and `tools/inpg_report` consumes it (diff / aggregate /
 * regress). The schema is versioned so readers can refuse records they
 * do not understand instead of mis-parsing them.
 *
 * Serialization is canonical: toJson() emits a fixed key order, so
 * serialize -> parse -> re-serialize is byte-identical (asserted in
 * tests/test_run_record.cc) and ledger lines diff cleanly.
 */

#ifndef INPG_TELEMETRY_RUN_RECORD_HH
#define INPG_TELEMETRY_RUN_RECORD_HH

#include <cstdint>
#include <cstdio>
#include <mutex> // lint:allow(threading-outside-parallel)
#include <string>
#include <vector>

#include "telemetry/json.hh"

namespace inpg {

/** Ledger / RunRecord schema version (bump on incompatible change). */
inline constexpr int RUN_RECORD_SCHEMA_VERSION = 1;

/** Version stamped into `--stats-json` documents. */
inline constexpr int STATS_JSON_SCHEMA_VERSION = 1;

/** Version stamped into structured hang reports. */
inline constexpr int HANG_REPORT_SCHEMA_VERSION = 1;

/** The `record` tag every ledger line carries. */
inline constexpr const char *RUN_RECORD_TAG = "inpg-run-record";

/**
 * Check a parsed document's `schema_version` against what this reader
 * understands. Returns false (with a diagnostic in *why, when given)
 * for a missing or different version -- readers must refuse such
 * documents rather than mis-parse them.
 */
bool schemaVersionCompatible(const JsonValue &doc, int expected,
                             std::string *why = nullptr);

/** One run, fully described. See the file comment for the contract. */
struct RunRecord {
    // -- provenance ----------------------------------------------------
    std::string gitSha = "unknown"; ///< INPG_GIT_SHA (run_benches.sh)
    bool gitDirty = false;          ///< INPG_GIT_DIRTY == "1"
    std::string compiler;           ///< __VERSION__ of the build

    // -- configuration -------------------------------------------------
    std::string benchmark;
    std::string mechanism; ///< mechanismName() spelling
    std::string lock;      ///< lockKindName() spelling
    std::string topology;  ///< TopologySpec::canonical() ("mesh:8x8")
    std::string impl;      ///< "fast" / "reference"
    int cores = 0;
    int bigRouters = 0;
    int threads = 1; ///< host kernel threads (bit-identical results)
    std::uint64_t seed = 1;
    double csScale = 0;

    // -- metrics (all deterministic for a given configuration) ---------
    std::uint64_t roiCycles = 0;
    std::uint64_t csCompleted = 0;
    std::uint64_t parallelCycles = 0;
    std::uint64_t cohCycles = 0;
    std::uint64_t sleepCycles = 0;
    std::uint64_t cseCycles = 0;
    std::uint64_t lockCohCycles = 0;
    double rttMean = 0;
    std::uint64_t rttMax = 0;
    std::uint64_t rttCount = 0;
    std::uint64_t earlyInvs = 0;
    std::uint64_t sleeps = 0;
    std::uint64_t wakeups = 0;

    // -- attached sections (Null when the observer was off) ------------
    JsonValue lco;        ///< LcoSummary::toJson()
    JsonValue timeseries; ///< stats snapshot "timeseries" summary
    JsonValue stats;      ///< full System::statsSnapshot()

    /**
     * Simulated-configuration identity used to pair records across
     * ledgers: benchmark, mechanism, lock, topology, big routers, seed
     * and cs_scale. `threads` and `impl` are deliberately excluded --
     * both are documented bit-identical in simulated results, so a
     * threads=4 run diffs cleanly against its threads=1 twin.
     */
    std::string configKey() const;

    /** Fixed-key-order serialization; see the canonical contract. */
    JsonValue toJson() const;

    /**
     * Rebuild a record from a parsed ledger line. Refuses documents
     * whose tag or schema_version does not match (returns a default
     * record and sets *err when given).
     */
    static RunRecord fromJson(const JsonValue &doc,
                              std::string *err = nullptr);
};

/** Compiler identification used for RunRecord provenance. */
std::string runRecordCompiler();

/**
 * Append-only JSONL ledger writer. One fwrite per record under a
 * mutex, flushed immediately, so concurrent appends from sweep worker
 * threads never tear lines (mirrors the thread-safe Trace sink
 * discipline; asserted in tests/test_run_record.cc).
 */
class ExperimentLedger
{
  public:
    /** Open `path` for appending; ok() reports failure. */
    explicit ExperimentLedger(std::string path);

    ~ExperimentLedger();

    ExperimentLedger(const ExperimentLedger &) = delete;
    ExperimentLedger &operator=(const ExperimentLedger &) = delete;

    bool ok() const { return file != nullptr; }

    const std::string &path() const { return filePath; }

    /** Records appended by this writer. */
    std::uint64_t appended() const { return count; }

    /** Serialize and append one record (thread-safe). */
    void append(const RunRecord &rec);

    /**
     * Parse every line of a ledger file. Returns the records in file
     * order; on any unreadable or incompatible line, returns what was
     * parsed so far and sets *err with the line number.
     */
    static std::vector<RunRecord> load(const std::string &path,
                                       std::string *err = nullptr);

  private:
    std::string filePath;
    std::FILE *file = nullptr;
    std::uint64_t count = 0;
    std::mutex mu; // lint:allow(threading-outside-parallel)
};

} // namespace inpg

#endif // INPG_TELEMETRY_RUN_RECORD_HH
