/**
 * @file
 * Cross-run differential reports over experiment ledgers: the library
 * core behind `tools/inpg_report`.
 *
 *  - diffLedgers():   pair runs by simulated-configuration key and
 *                     report per-metric deltas. Thresholds are
 *                     noise-aware: simulated counters are exact by
 *                     default (the kernel is deterministic), doubles
 *                     absorb only float-formatting epsilon, and
 *                     host-time measurements (the parallel profiler's
 *                     ns counters, anything under stats host sections)
 *                     are never compared at all.
 *  - aggregateReport(): ledger -> markdown paper-figure tables: the
 *                     Fig-2 LCO share table (lock_coh_cycles /
 *                     (roi_cycles x cores), seed-averaged -- the exact
 *                     formula bench_fig02_lco prints), the LCO
 *                     home/big-router InvAck split, and speedup vs
 *                     core count per mechanism.
 *  - regressLedger(): fresh ledger vs committed baseline -> pass/fail
 *                     gate (used by run_benches.sh --quick and ci.sh):
 *                     fails on any metric delta and on any baseline
 *                     configuration missing from the fresh ledger.
 *
 * Everything here is deterministic in its inputs: the same two ledgers
 * produce byte-identical reports (asserted in tests).
 */

#ifndef INPG_TELEMETRY_REPORT_HH
#define INPG_TELEMETRY_REPORT_HH

#include <string>
#include <vector>

#include "telemetry/run_record.hh"

namespace inpg {

/** Report knobs. */
struct ReportOptions {
    /**
     * Relative tolerance applied to every compared metric; 0 (the
     * default) means exact for integer counters. Use a small value
     * when comparing across compilers or seed-averaged ledgers.
     */
    double tolerance = 0;

    /** Also list paired configs with no differing metric. */
    bool verbose = false;
};

/** One metric that differs between paired runs. */
struct MetricDelta {
    std::string configKey;
    std::string metric;
    double before = 0;
    double after = 0;
};

/** Outcome of a ledger diff. */
struct DiffResult {
    std::vector<MetricDelta> deltas;
    std::vector<std::string> onlyInA; ///< config keys unpaired in B
    std::vector<std::string> onlyInB; ///< config keys unpaired in A
    std::size_t pairedConfigs = 0;

    bool identical() const { return deltas.empty(); }

    /** Human-readable report (stable across invocations). */
    std::string render(const ReportOptions &opts = {}) const;
};

/**
 * Pair the runs of `a` and `b` by RunRecord::configKey() (first
 * occurrence wins on duplicates) and compare every deterministic
 * metric. See the file comment for the threshold discipline.
 */
DiffResult diffLedgers(const std::vector<RunRecord> &a,
                       const std::vector<RunRecord> &b,
                       const ReportOptions &opts = {});

/** Ledger -> markdown tables; see the file comment. */
std::string aggregateReport(const std::vector<RunRecord> &records);

/** Outcome of a regression gate. */
struct RegressResult {
    DiffResult diff;
    bool pass = false;

    /** Human-readable verdict ending in PASS or FAIL. */
    std::string render(const ReportOptions &opts = {}) const;
};

/**
 * Gate `fresh` against `baseline`: every baseline configuration must
 * be present in the fresh ledger with every compared metric within
 * tolerance. Extra fresh-only configurations are reported but legal
 * (ledgers grow append-only).
 */
RegressResult regressLedger(const std::vector<RunRecord> &fresh,
                            const std::vector<RunRecord> &baseline,
                            const ReportOptions &opts = {});

} // namespace inpg

#endif // INPG_TELEMETRY_REPORT_HH
