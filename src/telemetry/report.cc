#include "telemetry/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace inpg {

namespace {

/**
 * The compared metric set. Every entry is a *simulated* quantity --
 * deterministic for a given configuration -- so the default threshold
 * is exact. `isDouble` marks values that pass through floating-point
 * formatting and get an epsilon to absorb it. Host-time measurements
 * (the parallel profiler's busy/wait/drain ns, events/sec) are
 * deliberately not in this table: they vary run to run on the same
 * commit and would make every diff noisy.
 */
struct MetricDef {
    const char *name;
    double (*get)(const RunRecord &);
    bool isDouble;
};

constexpr MetricDef METRICS[] = {
    {"roi_cycles",
     [](const RunRecord &r) { return static_cast<double>(r.roiCycles); },
     false},
    {"cs_completed",
     [](const RunRecord &r) {
         return static_cast<double>(r.csCompleted);
     },
     false},
    {"parallel_cycles",
     [](const RunRecord &r) {
         return static_cast<double>(r.parallelCycles);
     },
     false},
    {"coh_cycles",
     [](const RunRecord &r) { return static_cast<double>(r.cohCycles); },
     false},
    {"sleep_cycles",
     [](const RunRecord &r) {
         return static_cast<double>(r.sleepCycles);
     },
     false},
    {"cse_cycles",
     [](const RunRecord &r) { return static_cast<double>(r.cseCycles); },
     false},
    {"lock_coh_cycles",
     [](const RunRecord &r) {
         return static_cast<double>(r.lockCohCycles);
     },
     false},
    {"rtt_mean", [](const RunRecord &r) { return r.rttMean; }, true},
    {"rtt_max",
     [](const RunRecord &r) { return static_cast<double>(r.rttMax); },
     false},
    {"rtt_count",
     [](const RunRecord &r) { return static_cast<double>(r.rttCount); },
     false},
    {"early_invs",
     [](const RunRecord &r) { return static_cast<double>(r.earlyInvs); },
     false},
    {"sleeps",
     [](const RunRecord &r) { return static_cast<double>(r.sleeps); },
     false},
    {"wakeups",
     [](const RunRecord &r) { return static_cast<double>(r.wakeups); },
     false},
};

/** Float-formatting epsilon for double-valued metrics. */
constexpr double DOUBLE_EPS = 1e-9;

bool
withinThreshold(double a, double b, bool is_double, double tolerance)
{
    const double diff = std::fabs(a - b);
    if (diff == 0)
        return true;
    const double scale = std::max(std::fabs(a), std::fabs(b));
    double tol = tolerance;
    if (is_double)
        tol = std::max(tol, DOUBLE_EPS);
    return diff <= tol * scale;
}

/** First-occurrence index of each config key. */
std::vector<std::pair<std::string, const RunRecord *>>
keyedRecords(const std::vector<RunRecord> &records)
{
    std::vector<std::pair<std::string, const RunRecord *>> out;
    out.reserve(records.size());
    for (const RunRecord &r : records) {
        const std::string key = r.configKey();
        bool seen = false;
        for (const auto &kv : out)
            if (kv.first == key) {
                seen = true;
                break;
            }
        if (!seen)
            out.emplace_back(key, &r);
    }
    return out;
}

const RunRecord *
findKey(const std::vector<std::pair<std::string, const RunRecord *>> &s,
        const std::string &key)
{
    for (const auto &kv : s)
        if (kv.first == key)
            return kv.second;
    return nullptr;
}

std::string
formatMetric(double v)
{
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

// ---------------------------------------------------------------------
// aggregate
// ---------------------------------------------------------------------

/** Canonical Fig-2 lock column order. */
constexpr const char *LOCK_ORDER[] = {"TAS", "TTL", "ABQL", "MCS",
                                      "QSL"};

/** Paper-order mechanism columns for the speedup table. */
constexpr const char *MECH_ORDER[] = {"Original", "OCOR", "iNPG",
                                      "iNPG+OCOR"};

/** Seed-averaged accumulator. */
struct Avg {
    double sum = 0;
    std::uint64_t n = 0;

    void
    add(double v)
    {
        sum += v;
        ++n;
    }

    double value() const { return n ? sum / static_cast<double>(n) : 0; }
};

template <typename T>
void
addUnique(std::vector<T> &v, const T &x)
{
    if (std::find(v.begin(), v.end(), x) == v.end())
        v.push_back(x);
}

std::string
markdownRow(const std::vector<std::string> &cells)
{
    std::string out = "|";
    for (const auto &c : cells) {
        out += ' ';
        out += c;
        out += " |";
    }
    out += '\n';
    return out;
}

std::string
markdownRule(std::size_t cols)
{
    std::string out = "|";
    for (std::size_t i = 0; i < cols; ++i)
        out += "---|";
    out += '\n';
    return out;
}

} // namespace

DiffResult
diffLedgers(const std::vector<RunRecord> &a,
            const std::vector<RunRecord> &b, const ReportOptions &opts)
{
    DiffResult out;
    const auto ka = keyedRecords(a);
    const auto kb = keyedRecords(b);

    for (const auto &kv : ka) {
        const RunRecord *other = findKey(kb, kv.first);
        if (!other) {
            out.onlyInA.push_back(kv.first);
            continue;
        }
        ++out.pairedConfigs;
        for (const MetricDef &m : METRICS) {
            const double va = m.get(*kv.second);
            const double vb = m.get(*other);
            if (!withinThreshold(va, vb, m.isDouble, opts.tolerance))
                out.deltas.push_back(
                    MetricDelta{kv.first, m.name, va, vb});
        }
    }
    for (const auto &kv : kb)
        if (!findKey(ka, kv.first))
            out.onlyInB.push_back(kv.first);
    return out;
}

std::string
DiffResult::render(const ReportOptions &opts) const
{
    std::string out;
    std::string lastKey;
    for (const MetricDelta &d : deltas) {
        if (d.configKey != lastKey) {
            out += "config " + d.configKey + ":\n";
            lastKey = d.configKey;
        }
        const double base = std::max(std::fabs(d.before), 1e-12);
        out += format("  %-18s %s -> %s (%+.3f%%)\n", d.metric.c_str(),
                      formatMetric(d.before).c_str(),
                      formatMetric(d.after).c_str(),
                      100.0 * (d.after - d.before) / base);
    }
    for (const std::string &k : onlyInA)
        out += "only in A: " + k + "\n";
    for (const std::string &k : onlyInB)
        out += "only in B: " + k + "\n";
    if (opts.verbose || deltas.empty())
        out += format("%zu paired config(s) compared\n", pairedConfigs);
    out += format("inpg_report diff: %zu differing metric(s)\n",
                  deltas.size());
    return out;
}

std::string
aggregateReport(const std::vector<RunRecord> &records)
{
    std::string out = "# Experiment ledger aggregate\n\n";
    out += format("%zu record(s)", records.size());
    std::vector<std::string> shas;
    for (const RunRecord &r : records)
        addUnique(shas, r.gitSha +
                            (r.gitDirty ? std::string("+dirty")
                                        : std::string()));
    if (!shas.empty()) {
        out += ", commit ";
        for (std::size_t i = 0; i < shas.size(); ++i)
            out += (i ? ", " : "") + shas[i];
    }
    out += "\n";

    // -- Fig-2 LCO share table ----------------------------------------
    // Exactly bench_fig02_lco's formula and rounding: lco% =
    // lock_coh_cycles / (roi_cycles x cores), seed-averaged, one
    // decimal. Rows are (benchmark, mechanism) in first-appearance
    // order; columns the canonical lock order, filtered to locks
    // actually present.
    std::vector<std::string> locks;
    for (const char *l : LOCK_ORDER)
        for (const RunRecord &r : records)
            if (r.lock == l) {
                addUnique(locks, std::string(l));
                break;
            }
    std::vector<std::pair<std::string, std::string>> lcoRows;
    for (const RunRecord &r : records)
        addUnique(lcoRows, std::make_pair(r.benchmark, r.mechanism));
    if (!locks.empty() && !lcoRows.empty()) {
        out += "\n## LCO share of running time (Fig. 2)\n\n";
        out += "lco% = lock_coh_cycles / (roi_cycles x cores), "
               "seed-averaged.\n\n";
        std::vector<std::string> header{"benchmark", "mechanism"};
        header.insert(header.end(), locks.begin(), locks.end());
        out += markdownRow(header);
        out += markdownRule(header.size());
        for (const auto &row : lcoRows) {
            std::vector<std::string> cells{row.first, row.second};
            bool any = false;
            for (const std::string &lk : locks) {
                Avg avg;
                for (const RunRecord &r : records) {
                    if (r.benchmark != row.first ||
                        r.mechanism != row.second || r.lock != lk ||
                        r.roiCycles == 0 || r.cores == 0)
                        continue;
                    avg.add(static_cast<double>(r.lockCohCycles) /
                            (static_cast<double>(r.roiCycles) *
                             static_cast<double>(r.cores)));
                }
                cells.push_back(
                    avg.n ? fixed(100.0 * avg.value(), 1) + "%" : "-");
                any = any || avg.n;
            }
            if (any)
                out += markdownRow(cells);
        }
    }

    // -- LCO home / big-router invalidation split ---------------------
    // Only runs recorded with telemetry=lco carry the attribution
    // section; the split is the paper's mechanism made visible: iNPG
    // moves InvAck service from the home node to big routers.
    bool anyLco = false;
    for (const RunRecord &r : records)
        if (!r.lco.isNull() && r.lco.at("acquires").asUint() > 0)
            anyLco = true;
    if (anyLco) {
        out += "\n## LCO invalidation service split "
               "(home node vs big router)\n\n";
        std::vector<std::string> header{
            "benchmark", "mechanism",     "lock",
            "acquires",  "mean latency",  "home InvAcks",
            "big-router InvAcks", "early share"};
        out += markdownRow(header);
        out += markdownRule(header.size());
        for (const RunRecord &r : records) {
            if (r.lco.isNull() || r.lco.at("acquires").asUint() == 0)
                continue;
            const double home = static_cast<double>(
                r.lco.at("home_inv_acks").asUint());
            const double early = static_cast<double>(
                r.lco.at("early_inv_acks").asUint());
            const double total = home + early;
            out += markdownRow(
                {r.benchmark, r.mechanism, r.lock,
                 format("%llu", static_cast<unsigned long long>(
                                    r.lco.at("acquires").asUint())),
                 fixed(r.lco.at("mean_latency").asDouble(), 1),
                 formatMetric(home), formatMetric(early),
                 total > 0 ? fixed(100.0 * early / total, 1) + "%"
                           : "-"});
        }
    }

    // -- Speedup vs core count ----------------------------------------
    // Per (benchmark, lock, topology) group with an Original record:
    // speedup = roi(Original) / roi(mechanism), seed-averaged ROIs.
    struct ScaleRow {
        std::string benchmark, lock, topology;
        int cores = 0;
    };
    std::vector<ScaleRow> scaleRows;
    for (const RunRecord &r : records) {
        bool seen = false;
        for (const ScaleRow &s : scaleRows)
            if (s.benchmark == r.benchmark && s.lock == r.lock &&
                s.topology == r.topology) {
                seen = true;
                break;
            }
        if (!seen)
            scaleRows.push_back(
                ScaleRow{r.benchmark, r.lock, r.topology, r.cores});
    }
    std::stable_sort(scaleRows.begin(), scaleRows.end(),
                     [](const ScaleRow &a, const ScaleRow &b) {
                         return a.cores < b.cores;
                     });
    std::vector<std::string> mechs;
    for (const char *m : MECH_ORDER)
        for (const RunRecord &r : records)
            if (r.mechanism == m) {
                addUnique(mechs, std::string(m));
                break;
            }
    const bool haveOriginal =
        std::find(mechs.begin(), mechs.end(), "Original") !=
        mechs.end();
    if (haveOriginal && mechs.size() > 1) {
        out += "\n## ROI speedup vs cores "
               "(roi(Original) / roi(mechanism))\n\n";
        std::vector<std::string> header{"benchmark", "lock",
                                        "topology", "cores",
                                        "Original ROI"};
        for (const std::string &m : mechs)
            if (m != "Original")
                header.push_back(m);
        out += markdownRow(header);
        out += markdownRule(header.size());
        for (const ScaleRow &s : scaleRows) {
            auto avgRoi = [&](const std::string &mech) {
                Avg avg;
                for (const RunRecord &r : records)
                    if (r.benchmark == s.benchmark &&
                        r.lock == s.lock && r.topology == s.topology &&
                        r.mechanism == mech)
                        avg.add(static_cast<double>(r.roiCycles));
                return avg;
            };
            const Avg orig = avgRoi("Original");
            if (!orig.n)
                continue;
            std::vector<std::string> cells{
                s.benchmark, s.lock, s.topology,
                format("%d", s.cores),
                formatMetric(std::floor(orig.value()))};
            bool any = false;
            for (const std::string &m : mechs) {
                if (m == "Original")
                    continue;
                const Avg v = avgRoi(m);
                cells.push_back(
                    v.n && v.value() > 0
                        ? fixed(orig.value() / v.value(), 2) + "x"
                        : "-");
                any = any || v.n;
            }
            if (any)
                out += markdownRow(cells);
        }
    }
    return out;
}

RegressResult
regressLedger(const std::vector<RunRecord> &fresh,
              const std::vector<RunRecord> &baseline,
              const ReportOptions &opts)
{
    RegressResult out;
    // Baseline on the A side so a config missing from the fresh ledger
    // shows up as onlyInA -- the failure mode (coverage loss).
    out.diff = diffLedgers(baseline, fresh, opts);
    out.pass = out.diff.deltas.empty() && out.diff.onlyInA.empty();
    return out;
}

std::string
RegressResult::render(const ReportOptions &opts) const
{
    std::string out = diff.render(opts);
    if (!diff.onlyInA.empty())
        out += format("%zu baseline config(s) missing from the fresh "
                      "ledger\n",
                      diff.onlyInA.size());
    out += format("inpg_report regress: %s\n", pass ? "PASS" : "FAIL");
    return out;
}

} // namespace inpg
