/**
 * @file
 * Per-lock-acquire latency attribution: decomposes lock coherence
 * overhead (LCO) into the legs the paper's Fig. 2 reports -- request
 * network traversal, directory occupancy, response leg, Inv/InvAck
 * round trips -- and distinguishes home-node-served from
 * big-router-served invalidations so iNPG's mechanism (moving the
 * early-Inv leg off the home node) is directly observable.
 *
 * Accounting model: a mark cursor per core. acquireBegin() plants the
 * cursor; every subsequent protocol hook closes the half-open
 * interval [mark, now) into exactly one named leg and advances the
 * cursor; acquireEnd() closes the residual. Because the legs tile
 * the acquire window with no gaps or overlaps, their sum equals the
 * end-to-end acquire latency *exactly*, cycle for cycle, no matter
 * which hooks fire (hits, misses, early-Inv shortcuts, retries,
 * sleeps). Tests assert that invariant.
 */

#ifndef INPG_TELEMETRY_LCO_ATTRIBUTION_HH
#define INPG_TELEMETRY_LCO_ATTRIBUTION_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace inpg {

class JsonValue;

/** Cycle totals per attribution leg; together they tile an acquire. */
struct LcoLegs {
    Cycle l1Access = 0;   ///< L1 lookup/RMW latency (incl. spin loads)
    Cycle reqNetwork = 0; ///< GetS/GetX travel, NI inject -> directory
    Cycle dirService = 0; ///< directory queue wait + occupancy + DRAM
    Cycle respNetwork = 0; ///< Data/AckCount travel back to requester
    Cycle invAckWait = 0; ///< waiting on InvAcks after the response
    Cycle spinWait = 0;   ///< spin backoff between lock attempts
    Cycle sleepWait = 0;  ///< QSL sleep (context switch + wakeup)
    Cycle other = 0;      ///< residual (callback scheduling slack)

    Cycle
    sum() const
    {
        return l1Access + reqNetwork + dirService + respNetwork +
               invAckWait + spinWait + sleepWait + other;
    }

    void add(const LcoLegs &o);
};

/** One completed lock acquire, fully attributed. */
struct LcoAcquireRecord {
    ThreadId thread = 0;
    Cycle start = 0;
    Cycle end = 0;
    LcoLegs legs;
    std::uint32_t ops = 0;    ///< lock-line L1 operations issued
    std::uint32_t misses = 0; ///< of which missed to the directory
    std::uint32_t homeInvAcks = 0;  ///< InvAcks from home-node Invs
    std::uint32_t earlyInvAcks = 0; ///< InvAcks from big-router Invs
    bool sawEarlyInv = false; ///< any big-router Inv touched this acquire

    Cycle latency() const { return end - start; }
};

/** Aggregate over all completed acquires. */
struct LcoSummary {
    std::uint64_t acquires = 0;
    Cycle totalLatency = 0;
    Cycle maxLatency = 0;
    LcoLegs legs;
    std::uint64_t ops = 0;
    std::uint64_t misses = 0;
    std::uint64_t homeInvAcks = 0;
    std::uint64_t earlyInvAcks = 0;
    std::uint64_t acquiresWithEarlyInv = 0;

    double
    meanLatency() const
    {
        return acquires
                   ? static_cast<double>(totalLatency) /
                         static_cast<double>(acquires)
                   : 0;
    }

    JsonValue toJson() const;
};

/**
 * Hook receiver wired into the locks, L1 controllers and directories.
 * All hooks are keyed by core id (== thread id in this simulator) and
 * ignore cores with no acquire in flight, so release-path traffic and
 * non-lock workload ops never pollute the attribution.
 */
class LcoTracker
{
  public:
    explicit LcoTracker(int num_cores);

    // -- lock primitive hooks ------------------------------------------
    void acquireBegin(ThreadId t, Cycle now);
    void acquireEnd(ThreadId t, Cycle now);

    // -- L1 / directory hooks ------------------------------------------
    void opIssued(CoreId c, Cycle now);
    void requestSent(CoreId c, Cycle now);
    void dirArrived(CoreId c, Cycle now);
    void dirServed(CoreId c, Cycle now);
    void responseArrived(CoreId c, Cycle now);
    void invAckArrived(CoreId c, Cycle now, bool early);
    void earlyInvSeen(CoreId requester);
    void opCompleted(CoreId c, Cycle now);

    // -- QSL sleep hooks -----------------------------------------------
    void sleepBegin(ThreadId t, Cycle now);
    void sleepEnd(ThreadId t, Cycle now);

    const LcoSummary &summary() const { return total; }

    /** Retained individual records (capped; aggregation never caps). */
    const std::vector<LcoAcquireRecord> &records() const { return kept; }

    /** Per-record retention cap; 0 keeps aggregates only. */
    void setRecordCap(std::size_t cap) { recordCap = cap; }

  private:
    struct CoreState {
        bool active = false;
        bool opMissed = false; ///< current L1 op went to the directory
        Cycle start = 0;
        Cycle mark = 0;
        LcoAcquireRecord rec;
    };

    /** Close [mark, now) into `leg` and advance the cursor. */
    void
    close(CoreState &st, Cycle now, Cycle LcoLegs::*leg)
    {
        st.rec.legs.*leg += now - st.mark;
        st.mark = now;
    }

    std::vector<CoreState> cores;
    LcoSummary total;
    std::vector<LcoAcquireRecord> kept;
    std::size_t recordCap = 65536;
};

} // namespace inpg

#endif // INPG_TELEMETRY_LCO_ATTRIBUTION_HH
