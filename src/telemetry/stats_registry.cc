#include "telemetry/stats_registry.hh"

#include "common/histogram.hh"
#include "common/stats.hh"

namespace inpg {

void
StatsRegistry::addGroup(std::string name, const StatGroup *group)
{
    groups.emplace_back(std::move(name), group);
}

void
StatsRegistry::addScalar(std::string name, std::function<double()> fn)
{
    scalars.emplace_back(std::move(name), std::move(fn));
}

void
StatsRegistry::addHistogram(std::string name, const Histogram *h)
{
    histograms.emplace_back(std::move(name), h);
}

JsonValue
StatsRegistry::groupToJson(const StatGroup &g)
{
    JsonValue j = JsonValue::object();
    JsonValue &counters = j["counters"];
    counters = JsonValue::object();
    for (const auto &[key, val] : g.allCounters())
        counters[key] = JsonValue(val);
    JsonValue &samples = j["samples"];
    samples = JsonValue::object();
    for (const auto &[key, s] : g.allSamples()) {
        JsonValue &sj = samples[key];
        sj["count"] = JsonValue(s.count());
        sj["sum"] = JsonValue(s.sum());
        sj["mean"] = JsonValue(s.mean());
        sj["min"] = JsonValue(s.min());
        sj["max"] = JsonValue(s.max());
    }
    return j;
}

JsonValue
StatsRegistry::histogramToJson(const Histogram &h)
{
    JsonValue j = JsonValue::object();
    j["count"] = JsonValue(h.count());
    j["sum"] = JsonValue(h.sum());
    j["mean"] = JsonValue(h.mean());
    j["min"] = JsonValue(h.min());
    j["max"] = JsonValue(h.max());
    j["p50"] = JsonValue(h.percentile(0.50));
    j["p99"] = JsonValue(h.percentile(0.99));
    JsonValue &bins = j["bins"];
    bins = JsonValue::array();
    for (std::size_t i = 0; i < h.numBins(); ++i) {
        if (!h.binCount(i))
            continue;
        JsonValue b = JsonValue::object();
        b["lo"] = JsonValue(h.binLo(i));
        b["hi"] = JsonValue(h.binHi(i));
        b["count"] = JsonValue(h.binCount(i));
        bins.push(std::move(b));
    }
    j["overflow"] = JsonValue(h.overflowCount());
    return j;
}

JsonValue
StatsRegistry::snapshot() const
{
    JsonValue doc = JsonValue::object();
    JsonValue &gj = doc["groups"];
    gj = JsonValue::object();
    for (const auto &[name, group] : groups)
        gj[name] = groupToJson(*group);
    JsonValue &sj = doc["scalars"];
    sj = JsonValue::object();
    for (const auto &[name, fn] : scalars)
        sj[name] = JsonValue(fn());
    JsonValue &hj = doc["histograms"];
    hj = JsonValue::object();
    for (const auto &[name, h] : histograms)
        hj[name] = histogramToJson(*h);
    return doc;
}

} // namespace inpg
