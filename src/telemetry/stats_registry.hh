/**
 * @file
 * StatsRegistry: a named catalogue of the simulator's StatGroups and
 * derived scalars, snapshottable as a JSON document. Replaces the
 * text-only stats dump as the machine-readable results surface.
 *
 * Registration stores pointers/closures, not copies: snapshot() reads
 * live values at call time, so one registry built at wiring time can
 * be snapshotted before and after the ROI.
 */

#ifndef INPG_TELEMETRY_STATS_REGISTRY_HH
#define INPG_TELEMETRY_STATS_REGISTRY_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hh"

namespace inpg {

class StatGroup;
class Histogram;

/** Live catalogue of stat sources; snapshot() -> JSON. */
class StatsRegistry
{
  public:
    /** Register a component's StatGroup under a unique name. */
    void addGroup(std::string name, const StatGroup *group);

    /** Register a computed scalar (evaluated at snapshot time). */
    void addScalar(std::string name, std::function<double()> fn);

    /** Register a histogram (binned counts + moments at snapshot). */
    void addHistogram(std::string name, const Histogram *h);

    std::size_t groupCount() const { return groups.size(); }

    /**
     * Read every registered source and return the document:
     * `{"groups": {...}, "scalars": {...}, "histograms": {...}}`.
     */
    JsonValue snapshot() const;

    /** Convert one StatGroup (counters + samples) to JSON. */
    static JsonValue groupToJson(const StatGroup &g);

    /** Convert one Histogram (moments + non-empty bins) to JSON. */
    static JsonValue histogramToJson(const Histogram &h);

  private:
    std::vector<std::pair<std::string, const StatGroup *>> groups;
    std::vector<std::pair<std::string, std::function<double()>>> scalars;
    std::vector<std::pair<std::string, const Histogram *>> histograms;
};

} // namespace inpg

#endif // INPG_TELEMETRY_STATS_REGISTRY_HH
