/**
 * @file
 * Epoch-driven time-series sampler: a compact columnar store of how
 * congestion evolves over a run (per-router buffer occupancy,
 * per-directory queue depth, counter deltas per epoch), exported as
 * JSON or CSV for heatmap plotting.
 *
 * Columns come in two kinds:
 *  - counter columns: a pointer to a live StatGroup counter; each row
 *    records the delta since the previous row (rate per epoch);
 *  - gauge columns: a callable sampled at the epoch boundary; each row
 *    records the instantaneous level (occupancy, queue depth).
 *
 * Sampling happens on executed cycles only: the kernel fast-forwards
 * idle spans, and no column can change while every component sleeps,
 * so skipped epochs carry no information. The explicit `cycle` column
 * makes each row self-describing regardless of gaps.
 *
 * The store is bounded (`maxRows`); once full, further rows are
 * counted in `droppedRows()` and discarded, never allocated -- the
 * same bounded-recording discipline the lint enforces for the flight
 * recorder (DESIGN.md invariant 14).
 */

#ifndef INPG_TELEMETRY_TIMESERIES_HH
#define INPG_TELEMETRY_TIMESERIES_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "telemetry/json.hh"

namespace inpg {

/** Columnar epoch sampler for congestion time series. */
class TimeseriesSampler
{
  public:
    /**
     * @param epoch_len cycles between samples (must be > 0)
     * @param max_rows  row cap; rows past it are counted, not stored
     */
    explicit TimeseriesSampler(Cycle epoch_len,
                               std::size_t max_rows = 1u << 20);

    TimeseriesSampler(const TimeseriesSampler &) = delete;
    TimeseriesSampler &operator=(const TimeseriesSampler &) = delete;

    /**
     * Register a counter column (delta per epoch). The pointer must
     * stay valid for the sampler's lifetime; StatGroup counter
     * references are stable, so `&group.counter("key")` qualifies.
     */
    void addCounter(std::string name, const std::uint64_t *counter);

    /** Register a gauge column (level at each epoch boundary). */
    void addGauge(std::string name, std::function<std::uint64_t()> fn);

    /**
     * Hot-path hook, called once per *executed* cycle. One branch when
     * no epoch boundary has been crossed.
     */
    void
    onCycle(Cycle now)
    {
        if (now >= nextEpochAt)
            sampleRow(now);
    }

    /**
     * Fast-forward notification: the kernel jumped an idle span, so
     * epoch boundaries inside it are unobservable (and contentless).
     * Realign so the first executed cycle at/after `target` samples.
     */
    void
    onFastForward(Cycle target)
    {
        if (target > nextEpochAt)
            nextEpochAt = target;
    }

    Cycle epochLength() const { return epochLen; }
    std::size_t numColumns() const { return columns.size(); }
    std::size_t rows() const { return stamps.size(); }
    std::uint64_t droppedRows() const { return dropped; }
    std::size_t maxRows() const { return maxRows_; }

    /**
     * Whole series as a JSON document:
     * { epoch, rows, dropped, cycle: [...], columns: {name: [...]} }.
     */
    JsonValue toJson() const;

    /** Whole series as CSV: header `cycle,<col>,...`, one row each. */
    std::string toCsv() const;

    /**
     * Write the series to `path`; format chosen by extension (`.csv`
     * -> CSV, anything else -> JSON). Returns false on I/O failure.
     */
    bool writeFile(const std::string &path) const;

  private:
    void sampleRow(Cycle now);

    struct Column {
        std::string name;
        const std::uint64_t *counter = nullptr; ///< null for gauges
        std::uint64_t last = 0;                 ///< counter baseline
        std::function<std::uint64_t()> gauge;
        std::vector<std::uint64_t> values;
    };

    Cycle epochLen;
    Cycle nextEpochAt = 0;
    std::size_t maxRows_;
    std::uint64_t dropped = 0;
    std::vector<Cycle> stamps;
    std::vector<Column> columns;
};

} // namespace inpg

#endif // INPG_TELEMETRY_TIMESERIES_HH
