#include "telemetry/timeseries.hh"

#include <cstdio>

#include "common/logging.hh"

namespace inpg {

TimeseriesSampler::TimeseriesSampler(Cycle epoch_len, std::size_t max_rows)
    : epochLen(epoch_len), maxRows_(max_rows)
{
    if (epochLen == 0)
        fatal("timeseries epoch length must be > 0");
}

void
TimeseriesSampler::addCounter(std::string name, const std::uint64_t *counter)
{
    INPG_ASSERT(counter, "counter column '%s' needs a pointer",
                name.c_str());
    INPG_ASSERT(stamps.empty(),
                "columns must be registered before the first sample");
    Column c;
    c.name = std::move(name);
    c.counter = counter;
    c.last = *counter;
    columns.push_back(std::move(c));
}

void
TimeseriesSampler::addGauge(std::string name,
                            std::function<std::uint64_t()> fn)
{
    INPG_ASSERT(fn, "gauge column '%s' needs a callable", name.c_str());
    INPG_ASSERT(stamps.empty(),
                "columns must be registered before the first sample");
    Column c;
    c.name = std::move(name);
    c.gauge = std::move(fn);
    columns.push_back(std::move(c));
}

void
TimeseriesSampler::sampleRow(Cycle now)
{
    // Next boundary strictly after `now`, aligned to the epoch grid so
    // row timestamps stay comparable across runs with different idle
    // spans.
    nextEpochAt = (now / epochLen + 1) * epochLen;

    if (stamps.size() >= maxRows_) { // bounded store: count, don't grow
        ++dropped;
        return;
    }
    stamps.push_back(now);
    for (Column &c : columns) {
        std::uint64_t v;
        if (c.counter) {
            const std::uint64_t cur = *c.counter;
            v = cur - c.last;
            c.last = cur;
        } else {
            v = c.gauge();
        }
        c.values.push_back(v); // guarded by the maxRows_ check above
    }
}

JsonValue
TimeseriesSampler::toJson() const
{
    JsonValue out = JsonValue::object();
    out["epoch"] = static_cast<std::uint64_t>(epochLen);
    out["rows"] = static_cast<std::uint64_t>(stamps.size());
    out["dropped_rows"] = dropped;

    JsonValue cycle_col = JsonValue::array();
    for (Cycle c : stamps)
        cycle_col.push(static_cast<std::uint64_t>(c));
    out["cycle"] = std::move(cycle_col);

    JsonValue cols = JsonValue::object();
    for (const Column &c : columns) {
        JsonValue vals = JsonValue::array();
        for (std::uint64_t v : c.values)
            vals.push(v);
        cols[c.name] = std::move(vals);
    }
    out["columns"] = std::move(cols);
    return out;
}

std::string
TimeseriesSampler::toCsv() const
{
    std::string out = "cycle";
    for (const Column &c : columns) {
        out += ',';
        out += c.name;
    }
    out += '\n';
    for (std::size_t row = 0; row < stamps.size(); ++row) {
        out += format("%llu",
                      static_cast<unsigned long long>(stamps[row]));
        for (const Column &c : columns) {
            out += format(",%llu",
                          static_cast<unsigned long long>(c.values[row]));
        }
        out += '\n';
    }
    return out;
}

bool
TimeseriesSampler::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open timeseries output '%s'", path.c_str());
        return false;
    }
    const bool csv = path.size() >= 4 &&
                     path.compare(path.size() - 4, 4, ".csv") == 0;
    std::string body = csv ? toCsv() : toJson().dump(2) + "\n";
    std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return n == body.size();
}

} // namespace inpg
