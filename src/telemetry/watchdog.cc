#include "telemetry/watchdog.hh"

namespace inpg {

ProgressWatchdog::ProgressWatchdog(Cycle no_progress_window)
    : windowLen(no_progress_window)
{
    if (windowLen == 0)
        fatal("watchdog no-progress window must be > 0");
    checkPeriod = windowLen / 8;
    if (checkPeriod == 0)
        checkPeriod = 1;
}

void
ProgressWatchdog::watchCounter(const std::uint64_t *counter)
{
    INPG_ASSERT(counter, "watchdog progress counter must not be null");
    counters.push_back(counter);
    lastSum += *counter;
}

void
ProgressWatchdog::setOnTrip(std::function<void(Cycle, const char *)> handler)
{
    onTrip = std::move(handler);
}

void
ProgressWatchdog::poll(Cycle now)
{
    ++pollCount;
    observedSinceProgress += observedSinceCheck;
    observedSinceCheck = 0;

    std::uint64_t sum = 0;
    for (const std::uint64_t *c : counters)
        sum += *c;
    if (sum != lastSum) {
        lastSum = sum;
        observedSinceProgress = 0;
        lastProgressCycle = now;
        return;
    }
    if (observedSinceProgress >= windowLen)
        trip(now, "no-progress");
}

void
ProgressWatchdog::tripDeadlock(Cycle now)
{
    trip(now, "deadlock");
}

void
ProgressWatchdog::trip(Cycle now, const char *reason)
{
    ++tripCount;
    if (onTrip)
        onTrip(now, reason); // expected to throw SimHangError
    fatal("watchdog tripped (%s) at cycle %llu: no progress for %llu "
          "executed cycles and no trip handler installed",
          reason, static_cast<unsigned long long>(now),
          static_cast<unsigned long long>(observedSinceProgress));
}

} // namespace inpg
