#include "telemetry/lco_attribution.hh"

#include <cassert>

#include "telemetry/json.hh"

namespace inpg {

void
LcoLegs::add(const LcoLegs &o)
{
    l1Access += o.l1Access;
    reqNetwork += o.reqNetwork;
    dirService += o.dirService;
    respNetwork += o.respNetwork;
    invAckWait += o.invAckWait;
    spinWait += o.spinWait;
    sleepWait += o.sleepWait;
    other += o.other;
}

JsonValue
LcoSummary::toJson() const
{
    JsonValue j = JsonValue::object();
    j["acquires"] = JsonValue(acquires);
    j["total_latency"] = JsonValue(totalLatency);
    j["mean_latency"] = JsonValue(meanLatency());
    j["max_latency"] = JsonValue(maxLatency);

    JsonValue &l = j["legs"];
    l["l1_access"] = JsonValue(legs.l1Access);
    l["req_network"] = JsonValue(legs.reqNetwork);
    l["dir_service"] = JsonValue(legs.dirService);
    l["resp_network"] = JsonValue(legs.respNetwork);
    l["inv_ack_wait"] = JsonValue(legs.invAckWait);
    l["spin_wait"] = JsonValue(legs.spinWait);
    l["sleep_wait"] = JsonValue(legs.sleepWait);
    l["other"] = JsonValue(legs.other);

    j["ops"] = JsonValue(ops);
    j["misses"] = JsonValue(misses);
    j["home_inv_acks"] = JsonValue(homeInvAcks);
    j["early_inv_acks"] = JsonValue(earlyInvAcks);
    j["acquires_with_early_inv"] = JsonValue(acquiresWithEarlyInv);
    return j;
}

LcoTracker::LcoTracker(int num_cores)
    : cores(static_cast<std::size_t>(num_cores))
{}

void
LcoTracker::acquireBegin(ThreadId t, Cycle now)
{
    CoreState &st = cores.at(static_cast<std::size_t>(t));
    assert(!st.active && "nested acquire on one thread");
    st.active = true;
    st.opMissed = false;
    st.start = now;
    st.mark = now;
    st.rec = LcoAcquireRecord{};
    st.rec.thread = t;
    st.rec.start = now;
}

void
LcoTracker::acquireEnd(ThreadId t, Cycle now)
{
    CoreState &st = cores.at(static_cast<std::size_t>(t));
    if (!st.active)
        return;
    close(st, now, &LcoLegs::other);
    st.active = false;
    st.rec.end = now;

    total.acquires += 1;
    total.totalLatency += st.rec.latency();
    if (st.rec.latency() > total.maxLatency)
        total.maxLatency = st.rec.latency();
    total.legs.add(st.rec.legs);
    total.ops += st.rec.ops;
    total.misses += st.rec.misses;
    total.homeInvAcks += st.rec.homeInvAcks;
    total.earlyInvAcks += st.rec.earlyInvAcks;
    if (st.rec.sawEarlyInv)
        total.acquiresWithEarlyInv += 1;

    if (kept.size() < recordCap)
        kept.push_back(st.rec);
}

void
LcoTracker::opIssued(CoreId c, Cycle now)
{
    CoreState &st = cores.at(static_cast<std::size_t>(c));
    if (!st.active)
        return;
    // Time since the previous op completed (or since acquireBegin) is
    // spin backoff / algorithmic delay between attempts.
    close(st, now, &LcoLegs::spinWait);
    st.opMissed = false;
    st.rec.ops += 1;
}

void
LcoTracker::requestSent(CoreId c, Cycle now)
{
    CoreState &st = cores.at(static_cast<std::size_t>(c));
    if (!st.active)
        return;
    // The op looked up the L1 and missed; the lookup itself is L1 time.
    close(st, now, &LcoLegs::l1Access);
    st.opMissed = true;
    st.rec.misses += 1;
}

void
LcoTracker::dirArrived(CoreId c, Cycle now)
{
    CoreState &st = cores.at(static_cast<std::size_t>(c));
    if (!st.active)
        return;
    close(st, now, &LcoLegs::reqNetwork);
}

void
LcoTracker::dirServed(CoreId c, Cycle now)
{
    CoreState &st = cores.at(static_cast<std::size_t>(c));
    if (!st.active)
        return;
    // Runs when the directory finishes the request: the closed span
    // covers queue wait, occupancy, and any cold-miss DRAM fetch.
    close(st, now, &LcoLegs::dirService);
}

void
LcoTracker::responseArrived(CoreId c, Cycle now)
{
    CoreState &st = cores.at(static_cast<std::size_t>(c));
    if (!st.active)
        return;
    close(st, now, &LcoLegs::respNetwork);
}

void
LcoTracker::invAckArrived(CoreId c, Cycle now, bool early)
{
    CoreState &st = cores.at(static_cast<std::size_t>(c));
    if (!st.active)
        return;
    close(st, now, &LcoLegs::invAckWait);
    if (early) {
        st.rec.earlyInvAcks += 1;
        st.rec.sawEarlyInv = true;
    } else {
        st.rec.homeInvAcks += 1;
    }
}

void
LcoTracker::earlyInvSeen(CoreId requester)
{
    if (requester < 0 ||
        static_cast<std::size_t>(requester) >= cores.size())
        return;
    CoreState &st = cores[static_cast<std::size_t>(requester)];
    if (!st.active)
        return;
    st.rec.sawEarlyInv = true;
}

void
LcoTracker::opCompleted(CoreId c, Cycle now)
{
    CoreState &st = cores.at(static_cast<std::size_t>(c));
    if (!st.active)
        return;
    // Pure L1 hit: the whole op was cache access. After a miss, the
    // protocol hooks already claimed the interesting spans; whatever
    // remains is completion-callback slack.
    close(st, now, st.opMissed ? &LcoLegs::other : &LcoLegs::l1Access);
    st.opMissed = false;
}

void
LcoTracker::sleepBegin(ThreadId t, Cycle now)
{
    CoreState &st = cores.at(static_cast<std::size_t>(t));
    if (!st.active)
        return;
    // The decision-to-sleep gap counts as spin; the sleep itself
    // starts now and is closed by sleepEnd.
    close(st, now, &LcoLegs::spinWait);
}

void
LcoTracker::sleepEnd(ThreadId t, Cycle now)
{
    CoreState &st = cores.at(static_cast<std::size_t>(t));
    if (!st.active)
        return;
    close(st, now, &LcoLegs::sleepWait);
}

} // namespace inpg
