/**
 * @file
 * Minimal JSON document builder for telemetry exports (stats snapshots,
 * Chrome-trace files). Build-only -- no parser: the simulator emits
 * machine-readable results; it never consumes them.
 *
 * Object keys keep insertion order so snapshots diff cleanly across
 * runs; numbers are emitted with enough precision to round-trip.
 */

#ifndef INPG_TELEMETRY_JSON_HH
#define INPG_TELEMETRY_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace inpg {

/** One JSON value (null / bool / number / string / array / object). */
class JsonValue
{
  public:
    enum class Kind {
        Null,
        Bool,
        Int,
        Uint,
        Double,
        String,
        Array,
        Object,
    };

    JsonValue() : kind(Kind::Null) {}
    JsonValue(bool v) : kind(Kind::Bool), boolVal(v) {}
    JsonValue(int v) : kind(Kind::Int), intVal(v) {}
    JsonValue(long long v) : kind(Kind::Int), intVal(v) {}
    JsonValue(std::uint64_t v) : kind(Kind::Uint), uintVal(v) {}
    JsonValue(double v) : kind(Kind::Double), doubleVal(v) {}
    JsonValue(const char *v) : kind(Kind::String), strVal(v) {}
    JsonValue(std::string v) : kind(Kind::String), strVal(std::move(v)) {}

    /** Empty array value. */
    static JsonValue array();

    /** Empty object value. */
    static JsonValue object();

    Kind type() const { return kind; }

    /**
     * Member access on an object (created on first use); converts a
     * Null value into an object, so `doc["a"]["b"] = 1` just works.
     */
    JsonValue &operator[](const std::string &key);

    /** Append to an array (converts a Null value into an array). */
    void push(JsonValue v);

    std::size_t size() const;

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /** JSON string escaping (exposed for streaming writers). */
    static std::string escape(const std::string &s);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind;
    bool boolVal = false;
    long long intVal = 0;
    std::uint64_t uintVal = 0;
    double doubleVal = 0;
    std::string strVal;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;
};

} // namespace inpg

#endif // INPG_TELEMETRY_JSON_HH
