/**
 * @file
 * Minimal JSON document model for telemetry exports and the experiment
 * ledger (stats snapshots, Chrome-trace files, RunRecords). The writer
 * came first; the reader was added for `inpg_report`, which consumes
 * the ledgers the simulator emits.
 *
 * Object keys keep insertion order so snapshots diff cleanly across
 * runs; numbers are emitted with enough precision to round-trip, and
 * parse() preserves the emitted forms (non-negative integers stay
 * unsigned, doubles re-print identically under %.17g) so that
 * parse(dump(x)).dump() == dump(x) for any document this writer
 * produced.
 */

#ifndef INPG_TELEMETRY_JSON_HH
#define INPG_TELEMETRY_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace inpg {

/** One JSON value (null / bool / number / string / array / object). */
class JsonValue
{
  public:
    enum class Kind {
        Null,
        Bool,
        Int,
        Uint,
        Double,
        String,
        Array,
        Object,
    };

    JsonValue() : kind(Kind::Null) {}
    JsonValue(bool v) : kind(Kind::Bool), boolVal(v) {}
    JsonValue(int v) : kind(Kind::Int), intVal(v) {}
    JsonValue(long long v) : kind(Kind::Int), intVal(v) {}
    JsonValue(std::uint64_t v) : kind(Kind::Uint), uintVal(v) {}
    JsonValue(double v) : kind(Kind::Double), doubleVal(v) {}
    JsonValue(const char *v) : kind(Kind::String), strVal(v) {}
    JsonValue(std::string v) : kind(Kind::String), strVal(std::move(v)) {}

    /** Empty array value. */
    static JsonValue array();

    /** Empty object value. */
    static JsonValue object();

    /**
     * Parse one JSON document. On failure returns a Null value and,
     * when @p err is non-null, stores a one-line diagnostic with the
     * byte offset of the problem. Trailing whitespace is permitted;
     * trailing garbage is an error.
     */
    static JsonValue parse(const std::string &text,
                           std::string *err = nullptr);

    Kind type() const { return kind; }

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** True for Int / Uint / Double. */
    bool isNumber() const
    {
        return kind == Kind::Int || kind == Kind::Uint ||
               kind == Kind::Double;
    }

    /**
     * Member access on an object (created on first use); converts a
     * Null value into an object, so `doc["a"]["b"] = 1` just works.
     */
    JsonValue &operator[](const std::string &key);

    /** Append to an array (converts a Null value into an array). */
    void push(JsonValue v);

    std::size_t size() const;

    /** Object lookup without insertion; nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** True when an object has the key. */
    bool contains(const std::string &key) const
    {
        return find(key) != nullptr;
    }

    /**
     * Read-only member access; returns a shared Null value when the
     * key is absent or this is not an object, so lookups chain:
     * `doc.at("a").at("b").asUint()`.
     */
    const JsonValue &at(const std::string &key) const;

    /** Read-only array element; shared Null when out of range. */
    const JsonValue &item(std::size_t i) const;

    bool asBool(bool dflt = false) const
    {
        return kind == Kind::Bool ? boolVal : dflt;
    }

    long long asInt(long long dflt = 0) const;

    std::uint64_t asUint(std::uint64_t dflt = 0) const;

    double asDouble(double dflt = 0.0) const;

    const std::string &asString() const { return strVal; }

    /** Object members in insertion order (empty unless an object). */
    const std::vector<std::pair<std::string, JsonValue>> &members() const
    {
        return obj;
    }

    /** Array elements (empty unless an array). */
    const std::vector<JsonValue> &items() const { return arr; }

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /** JSON string escaping (exposed for streaming writers). */
    static std::string escape(const std::string &s);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind;
    bool boolVal = false;
    long long intVal = 0;
    std::uint64_t uintVal = 0;
    double doubleVal = 0;
    std::string strVal;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;
};

} // namespace inpg

#endif // INPG_TELEMETRY_JSON_HH
