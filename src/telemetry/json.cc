#include "telemetry/json.hh"

#include <cmath>
#include <cstdio>

namespace inpg {

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind = Kind::Object;
    return v;
}

JsonValue &
JsonValue::operator[](const std::string &key)
{
    if (kind == Kind::Null)
        kind = Kind::Object;
    for (auto &kv : obj) {
        if (kv.first == key)
            return kv.second;
    }
    obj.emplace_back(key, JsonValue());
    return obj.back().second;
}

void
JsonValue::push(JsonValue v)
{
    if (kind == Kind::Null)
        kind = Kind::Array;
    arr.push_back(std::move(v));
}

std::size_t
JsonValue::size() const
{
    switch (kind) {
      case Kind::Array:
        return arr.size();
      case Kind::Object:
        return obj.size();
      default:
        return 0;
    }
}

std::string
JsonValue::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void
newline(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    char buf[64];
    switch (kind) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolVal ? "true" : "false";
        break;
      case Kind::Int:
        std::snprintf(buf, sizeof(buf), "%lld", intVal);
        out += buf;
        break;
      case Kind::Uint:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(uintVal));
        out += buf;
        break;
      case Kind::Double:
        if (std::isfinite(doubleVal)) {
            std::snprintf(buf, sizeof(buf), "%.17g", doubleVal);
            out += buf;
        } else {
            // JSON has no inf/nan; null keeps the document loadable.
            out += "null";
        }
        break;
      case Kind::String:
        out += '"';
        out += escape(strVal);
        out += '"';
        break;
      case Kind::Array:
        out += '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i)
                out += ',';
            newline(out, indent, depth + 1);
            arr[i].dumpTo(out, indent, depth + 1);
        }
        if (!arr.empty())
            newline(out, indent, depth);
        out += ']';
        break;
      case Kind::Object:
        out += '{';
        for (std::size_t i = 0; i < obj.size(); ++i) {
            if (i)
                out += ',';
            newline(out, indent, depth + 1);
            out += '"';
            out += escape(obj[i].first);
            out += "\":";
            if (indent > 0)
                out += ' ';
            obj[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!obj.empty())
            newline(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

} // namespace inpg
