#include "telemetry/json.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace inpg {

namespace {

const JsonValue kNullValue;

} // namespace

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind = Kind::Object;
    return v;
}

JsonValue &
JsonValue::operator[](const std::string &key)
{
    if (kind == Kind::Null)
        kind = Kind::Object;
    for (auto &kv : obj) {
        if (kv.first == key)
            return kv.second;
    }
    obj.emplace_back(key, JsonValue());
    return obj.back().second;
}

void
JsonValue::push(JsonValue v)
{
    if (kind == Kind::Null)
        kind = Kind::Array;
    arr.push_back(std::move(v));
}

std::size_t
JsonValue::size() const
{
    switch (kind) {
      case Kind::Array:
        return arr.size();
      case Kind::Object:
        return obj.size();
      default:
        return 0;
    }
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &kv : obj) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    return v ? *v : kNullValue;
}

const JsonValue &
JsonValue::item(std::size_t i) const
{
    if (kind != Kind::Array || i >= arr.size())
        return kNullValue;
    return arr[i];
}

long long
JsonValue::asInt(long long dflt) const
{
    switch (kind) {
      case Kind::Int:
        return intVal;
      case Kind::Uint:
        return static_cast<long long>(uintVal);
      case Kind::Double:
        return static_cast<long long>(doubleVal);
      default:
        return dflt;
    }
}

std::uint64_t
JsonValue::asUint(std::uint64_t dflt) const
{
    switch (kind) {
      case Kind::Uint:
        return uintVal;
      case Kind::Int:
        return intVal < 0 ? dflt : static_cast<std::uint64_t>(intVal);
      case Kind::Double:
        return doubleVal < 0 ? dflt
                             : static_cast<std::uint64_t>(doubleVal);
      default:
        return dflt;
    }
}

double
JsonValue::asDouble(double dflt) const
{
    switch (kind) {
      case Kind::Int:
        return static_cast<double>(intVal);
      case Kind::Uint:
        return static_cast<double>(uintVal);
      case Kind::Double:
        return doubleVal;
      default:
        return dflt;
    }
}

std::string
JsonValue::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void
newline(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    char buf[64];
    switch (kind) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolVal ? "true" : "false";
        break;
      case Kind::Int:
        std::snprintf(buf, sizeof(buf), "%lld", intVal);
        out += buf;
        break;
      case Kind::Uint:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(uintVal));
        out += buf;
        break;
      case Kind::Double:
        if (std::isfinite(doubleVal)) {
            std::snprintf(buf, sizeof(buf), "%.17g", doubleVal);
            out += buf;
        } else {
            // JSON has no inf/nan; null keeps the document loadable.
            out += "null";
        }
        break;
      case Kind::String:
        out += '"';
        out += escape(strVal);
        out += '"';
        break;
      case Kind::Array:
        out += '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i)
                out += ',';
            newline(out, indent, depth + 1);
            arr[i].dumpTo(out, indent, depth + 1);
        }
        if (!arr.empty())
            newline(out, indent, depth);
        out += ']';
        break;
      case Kind::Object:
        out += '{';
        for (std::size_t i = 0; i < obj.size(); ++i) {
            if (i)
                out += ',';
            newline(out, indent, depth + 1);
            out += '"';
            out += escape(obj[i].first);
            out += "\":";
            if (indent > 0)
                out += ' ';
            obj[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!obj.empty())
            newline(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/**
 * Recursive-descent reader over the byte range [pos, end). Kept
 * deliberately strict: the only producers are this file's writer and
 * python's json module, neither of which emits extensions.
 */
class JsonReader
{
  public:
    JsonReader(const std::string &text) : text(text) {}

    bool parseDocument(JsonValue &out, std::string &err)
    {
        if (!parseValue(out, err))
            return false;
        skipSpace();
        if (pos != text.size()) {
            fail(err, "trailing characters after document");
            return false;
        }
        return true;
    }

  private:
    void skipSpace()
    {
        while (pos < text.size()) {
            char c = text[pos];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos;
        }
    }

    void fail(std::string &err, const char *what)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " at offset %zu", pos);
        err = std::string(what) + buf;
    }

    bool consume(char c, std::string &err, const char *what)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != c) {
            fail(err, what);
            return false;
        }
        ++pos;
        return true;
    }

    bool parseValue(JsonValue &out, std::string &err)
    {
        skipSpace();
        if (pos >= text.size()) {
            fail(err, "unexpected end of input");
            return false;
        }
        char c = text[pos];
        switch (c) {
          case '{':
            return parseObject(out, err);
          case '[':
            return parseArray(out, err);
          case '"': {
            std::string s;
            if (!parseString(s, err))
                return false;
            out = JsonValue(std::move(s));
            return true;
          }
          case 't':
            return parseLiteral("true", JsonValue(true), out, err);
          case 'f':
            return parseLiteral("false", JsonValue(false), out, err);
          case 'n':
            return parseLiteral("null", JsonValue(), out, err);
          default:
            return parseNumber(out, err);
        }
    }

    bool parseLiteral(const char *word, JsonValue v, JsonValue &out,
                      std::string &err)
    {
        std::size_t n = std::string(word).size();
        if (text.compare(pos, n, word) != 0) {
            fail(err, "invalid literal");
            return false;
        }
        pos += n;
        out = std::move(v);
        return true;
    }

    bool parseObject(JsonValue &out, std::string &err)
    {
        ++pos; // '{'
        out = JsonValue::object();
        skipSpace();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (!parseString(key, err))
                return false;
            if (!consume(':', err, "expected ':' in object"))
                return false;
            JsonValue member;
            if (!parseValue(member, err))
                return false;
            out[key] = std::move(member);
            skipSpace();
            if (pos >= text.size()) {
                fail(err, "unterminated object");
                return false;
            }
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == '}') {
                ++pos;
                return true;
            }
            fail(err, "expected ',' or '}' in object");
            return false;
        }
    }

    bool parseArray(JsonValue &out, std::string &err)
    {
        ++pos; // '['
        out = JsonValue::array();
        skipSpace();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            JsonValue elem;
            if (!parseValue(elem, err))
                return false;
            out.push(std::move(elem));
            skipSpace();
            if (pos >= text.size()) {
                fail(err, "unterminated array");
                return false;
            }
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == ']') {
                ++pos;
                return true;
            }
            fail(err, "expected ',' or ']' in array");
            return false;
        }
    }

    bool parseString(std::string &out, std::string &err)
    {
        if (pos >= text.size() || text[pos] != '"') {
            fail(err, "expected string");
            return false;
        }
        ++pos;
        out.clear();
        while (pos < text.size()) {
            char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c != '\\') {
                out += c;
                ++pos;
                continue;
            }
            if (pos + 1 >= text.size()) {
                fail(err, "unterminated escape");
                return false;
            }
            char e = text[pos + 1];
            pos += 2;
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 > text.size()) {
                    fail(err, "truncated \\u escape");
                    return false;
                }
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos + i];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail(err, "bad hex digit in \\u escape");
                        return false;
                    }
                }
                pos += 4;
                // The writer only emits \u00XX for control bytes;
                // encode the general case as UTF-8 anyway.
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                fail(err, "unknown escape");
                return false;
            }
        }
        fail(err, "unterminated string");
        return false;
    }

    bool parseNumber(JsonValue &out, std::string &err)
    {
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        bool isDouble = false;
        while (pos < text.size()) {
            char c = text[pos];
            if (c >= '0' && c <= '9') {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                isDouble = true;
                ++pos;
            } else {
                break;
            }
        }
        if (pos == start || (text[start] == '-' && pos == start + 1)) {
            pos = start;
            fail(err, "invalid number");
            return false;
        }
        // Strict JSON: no leading zeros ("01"). The writer never
        // emits them, and a lenient read would mask a corrupt ledger
        // line instead of refusing it.
        const std::size_t d0 = text[start] == '-' ? start + 1 : start;
        if (text[d0] == '0' && d0 + 1 < pos && text[d0 + 1] >= '0' &&
            text[d0 + 1] <= '9') {
            pos = start;
            fail(err, "invalid number");
            return false;
        }
        std::string tok = text.substr(start, pos - start);
        if (isDouble) {
            out = JsonValue(std::strtod(tok.c_str(), nullptr));
            return true;
        }
        // Integers keep the writer's signedness split so a document
        // round-trips byte-identically: non-negative -> Uint,
        // negative -> Int. Out-of-range magnitudes fall back to
        // double (the writer never produces them).
        errno = 0;
        if (tok[0] == '-') {
            char *end = nullptr;
            long long v = std::strtoll(tok.c_str(), &end, 10);
            if (errno == ERANGE)
                out = JsonValue(std::strtod(tok.c_str(), nullptr));
            else
                out = JsonValue(v);
        } else {
            char *end = nullptr;
            unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
            if (errno == ERANGE)
                out = JsonValue(std::strtod(tok.c_str(), nullptr));
            else
                out = JsonValue(static_cast<std::uint64_t>(v));
        }
        return true;
    }

    const std::string &text;
    std::size_t pos = 0;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text, std::string *err)
{
    JsonValue out;
    std::string diag;
    JsonReader reader(text);
    if (!reader.parseDocument(out, diag)) {
        if (err)
            *err = diag;
        return JsonValue();
    }
    if (err)
        err->clear();
    return out;
}

} // namespace inpg
