#include "telemetry/trace_event.hh"

#include <cstdio>

#include "telemetry/json.hh"

namespace inpg {

namespace {

const char *
groupTitle(TrackGroup g)
{
    switch (g) {
      case TrackGroup::Routers:
        return "routers";
      case TrackGroup::NetworkInterfaces:
        return "network interfaces";
      case TrackGroup::Directories:
        return "directories";
      case TrackGroup::L1Caches:
        return "L1 caches";
      case TrackGroup::Threads:
        return "threads";
      case TrackGroup::Generators:
        return "packet generators";
      case TrackGroup::Kernel:
        return "kernel";
    }
    return "unknown";
}

void
appendCommonFields(std::string &out, TrackGroup group, std::uint32_t track,
                   Cycle ts)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"pid\":%u,\"tid\":%u,\"ts\":%llu", // lint:allow(ad-hoc-json)
                  static_cast<unsigned>(group), track,
                  static_cast<unsigned long long>(ts));
    out += buf;
}

} // namespace

TraceEventSink::TraceEventSink(std::size_t max_events)
    : maxEvents(max_events)
{
    events.reserve(max_events < 4096 ? max_events : 4096);
}

void
TraceEventSink::nameTrack(TrackGroup group, std::uint32_t track,
                          std::string title)
{
    for (const TrackName &tn : trackNames) {
        if (tn.group == group && tn.track == track)
            return;
    }
    // One entry per distinct track (deduplicated just above).
    trackNames.push_back( // lint:allow(unbounded-recording)
        TrackName{group, track, std::move(title)});
}

std::string
TraceEventSink::writeJson() const
{
    // Streamed by hand rather than via JsonValue: a trace can hold
    // millions of events and building a tree first would double the
    // peak memory for no benefit. The target is Chrome's externally
    // specified trace format, not our own schema, hence the per-line
    // ad-hoc-json opt-outs.
    std::string out;
    out.reserve(events.size() * 96 + 4096);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["; // lint:allow(ad-hoc-json)

    bool first = true;
    auto comma = [&] {
        if (!first)
            out += ',';
        first = false;
    };

    // Metadata first: process names for each track group, then thread
    // names for every registered track.
    for (unsigned g = 1; g <= static_cast<unsigned>(TrackGroup::Kernel);
         ++g) {
        comma();
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%u," // lint:allow(ad-hoc-json)
                      "\"args\":{\"name\":\"%s\"}}", // lint:allow(ad-hoc-json)
                      g, groupTitle(static_cast<TrackGroup>(g)));
        out += buf;
    }
    for (const TrackName &tn : trackNames) {
        comma();
        out += "{\"ph\":\"M\",\"name\":\"thread_name\","; // lint:allow(ad-hoc-json)
        appendCommonFields(out, tn.group, tn.track, 0);
        out += ",\"args\":{\"name\":\""; // lint:allow(ad-hoc-json)
        out += JsonValue::escape(tn.title);
        out += "\"}}";
    }

    char buf[64];
    for (const Event &ev : events) {
        comma();
        out += "{\"ph\":\""; // lint:allow(ad-hoc-json)
        out += ev.shape == Shape::Duration ? 'X' : 'i';
        out += "\",\"name\":\""; // lint:allow(ad-hoc-json)
        out += JsonValue::escape(ev.name);
        out += "\",";
        appendCommonFields(out, ev.group, ev.track, ev.ts);
        if (ev.shape == Shape::Duration) {
            std::snprintf(buf, sizeof(buf), ",\"dur\":%llu", // lint:allow(ad-hoc-json)
                          static_cast<unsigned long long>(ev.dur));
            out += buf;
        } else {
            out += ",\"s\":\"t\""; // lint:allow(ad-hoc-json)
        }
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"v\":%llu}}", // lint:allow(ad-hoc-json)
                      static_cast<unsigned long long>(ev.arg));
        out += buf;
    }

    out += "]}";
    return out;
}

bool
TraceEventSink::writeJsonFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string doc = writeJson();
    std::size_t wrote = std::fwrite(doc.data(), 1, doc.size(), f);
    bool ok = wrote == doc.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace inpg
