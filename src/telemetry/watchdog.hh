/**
 * @file
 * Progress watchdog: detects protocol/NoC hangs and turns them into a
 * structured hang report plus a distinct exit code, instead of letting
 * ctest (or a sweep) spin until an external timeout.
 *
 * Progress is defined by registered counters -- packet deliveries and
 * retired memory operations -- NOT by event executions: spinning cores
 * fire events continuously during a genuine protocol deadlock, so an
 * event-based watchdog would never trip.
 *
 * The no-progress window is measured in *executed* cycles. Idle spans
 * the kernel fast-forwards over do not age the watchdog: a jump is a
 * planned wait (the kernel proved the next stimulus cycle), so a long
 * sleep cannot fake a hang, while a spinning livelock accrues executed
 * cycles and trips. The one hang that executes nothing -- every
 * component asleep with an empty event horizon -- is detected
 * structurally by the kernel (`tripDeadlock`), since nothing can ever
 * run again.
 *
 * When the watchdog trips it invokes the installed trip handler, which
 * the harness uses to build the hang report and throw SimHangError;
 * `inpg_sim` catches it, writes the report, and exits with
 * HANG_EXIT_CODE.
 */

#ifndef INPG_TELEMETRY_WATCHDOG_HH
#define INPG_TELEMETRY_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace inpg {

/**
 * Process exit code for a watchdog-detected hang, distinct from 0
 * (success) and 1 (fatal error) so harnesses can tell "the run hung
 * and was diagnosed" from "the run crashed".
 */
inline constexpr int HANG_EXIT_CODE = 86;

/**
 * Thrown when the watchdog trips. Carries a one-line summary (what())
 * and the full structured hang report as a JSON string.
 */
class SimHangError : public FatalError
{
  public:
    SimHangError(std::string summary, std::string report_json)
        : FatalError(std::move(summary)), report(std::move(report_json))
    {}

    /** The structured hang report, serialized as JSON. */
    const std::string &reportJson() const { return report; }

  private:
    std::string report;
};

/** No-progress watchdog over registered progress counters. */
class ProgressWatchdog
{
  public:
    /** @param no_progress_window executed cycles without progress
     *         before tripping (must be > 0). Checks are amortized to
     *         every window/8 executed cycles. */
    explicit ProgressWatchdog(Cycle no_progress_window);

    ProgressWatchdog(const ProgressWatchdog &) = delete;
    ProgressWatchdog &operator=(const ProgressWatchdog &) = delete;

    /**
     * Register a progress counter. The pointer must stay valid for the
     * watchdog's lifetime; StatGroup counter references are stable.
     */
    void watchCounter(const std::uint64_t *counter);

    /**
     * Install the trip handler: called with the current cycle and a
     * static reason string ("no-progress" or "deadlock"). The handler
     * is expected to throw (SimHangError); if it returns, the watchdog
     * falls back to fatal().
     */
    void setOnTrip(std::function<void(Cycle, const char *)> handler);

    /**
     * Hot-path hook, called once per *executed* cycle. One increment
     * and one branch between amortized checks.
     */
    void
    onCycle(Cycle now)
    {
        if (++observedSinceCheck >= checkPeriod)
            poll(now);
    }

    /**
     * Structural-deadlock trip: the kernel observed that every
     * component is asleep and the event horizon is empty, so no state
     * can ever change again. Trips immediately.
     */
    void tripDeadlock(Cycle now);

    Cycle window() const { return windowLen; }
    Cycle lastProgressAt() const { return lastProgressCycle; }
    std::uint64_t polls() const { return pollCount; }
    std::uint64_t trips() const { return tripCount; }
    std::size_t numCounters() const { return counters.size(); }

  private:
    void poll(Cycle now);
    void trip(Cycle now, const char *reason);

    Cycle windowLen;
    Cycle checkPeriod;
    Cycle observedSinceCheck = 0;
    Cycle observedSinceProgress = 0;
    Cycle lastProgressCycle = 0;
    std::uint64_t lastSum = 0;
    std::uint64_t pollCount = 0;
    std::uint64_t tripCount = 0;
    std::vector<const std::uint64_t *> counters;
    std::function<void(Cycle, const char *)> onTrip;
};

} // namespace inpg

#endif // INPG_TELEMETRY_WATCHDOG_HH
