#include "telemetry/flight_recorder.hh"

#include <algorithm>
#include <mutex> // lint:allow(threading-outside-parallel)

#include "common/logging.hh"

namespace inpg {

namespace {

/**
 * Live-recorder registry for the panic hook. panic() can fire on any
 * thread (the sweep runner runs systems concurrently), so the registry
 * is mutex-guarded; recorders register at construction and leave at
 * destruction.
 */
std::mutex & // lint:allow(threading-outside-parallel)
registryMutex()
{
    static std::mutex m; // lint:allow(threading-outside-parallel)
    return m;
}

std::vector<FlightRecorder *> &
registry()
{
    static std::vector<FlightRecorder *> r;
    return r;
}

void
panicDumpAll()
{
    std::lock_guard<std::mutex> g(registryMutex()); // lint:allow(threading-outside-parallel)
    for (FlightRecorder *fr : registry()) {
        std::fprintf(stderr,
                     "--- flight recorder (%zu retained, %llu lost to "
                     "wrap) ---\n",
                     fr->retained(),
                     static_cast<unsigned long long>(fr->wrapped()));
        fr->dumpText(stderr);
    }
}

} // namespace

const char *
frKindName(FrKind k)
{
    switch (k) {
      case FrKind::ProtoDispatch:
        return "proto";
      case FrKind::MsgSend:
        return "send";
      case FrKind::MsgDrop:
        return "drop";
      case FrKind::NiInject:
        return "inject";
      case FrKind::NiEject:
        return "eject";
      case FrKind::BarrierStop:
        return "barrier-stop";
      case FrKind::AckRelay:
        return "ack-relay";
    }
    return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
{
    std::size_t cap = 1;
    while (cap < capacity)
        cap <<= 1;
    ring.resize(cap);
    mask = cap - 1;

    std::lock_guard<std::mutex> g(registryMutex()); // lint:allow(threading-outside-parallel)
    registry().push_back(this);
    setPanicHook(&panicDumpAll);
}

FlightRecorder::~FlightRecorder()
{
    std::lock_guard<std::mutex> g(registryMutex()); // lint:allow(threading-outside-parallel)
    auto &r = registry();
    r.erase(std::remove(r.begin(), r.end(), this), r.end());
}

JsonValue
FlightRecorder::toJson() const
{
    JsonValue out = JsonValue::array();
    const std::uint64_t n = retained();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Event &e = ring[(head - n + i) & mask];
        JsonValue ev = JsonValue::object();
        ev["cycle"] = static_cast<std::uint64_t>(e.cycle);
        ev["kind"] = frKindName(e.kind);
        ev["node"] = static_cast<long long>(e.node);
        ev["addr"] = static_cast<std::uint64_t>(e.addr);
        ev["arg"] = e.arg;
        if (e.tag0)
            ev["tag"] = e.tag0;
        if (e.tag1)
            ev["state"] = e.tag1;
        if (e.tag2)
            ev["event"] = e.tag2;
        out.push(std::move(ev));
    }
    return out;
}

void
FlightRecorder::dumpText(std::FILE *out, std::size_t max_events) const
{
    const std::uint64_t n =
        std::min<std::uint64_t>(retained(), max_events);
    for (std::uint64_t i = 0; i < n; ++i) {
        const Event &e = ring[(head - n + i) & mask];
        std::fprintf(out,
                     "  @%llu %-12s node=%-3d addr=0x%llx arg=%llu",
                     static_cast<unsigned long long>(e.cycle),
                     frKindName(e.kind), e.node,
                     static_cast<unsigned long long>(e.addr),
                     static_cast<unsigned long long>(e.arg));
        if (e.tag0)
            std::fprintf(out, " %s", e.tag0);
        if (e.tag1)
            std::fprintf(out, " %s", e.tag1);
        if (e.tag2)
            std::fprintf(out, " %s", e.tag2);
        std::fputc('\n', out);
    }
}

} // namespace inpg
