/**
 * @file
 * Flight recorder: a bounded, pooled ring buffer of the most recent
 * protocol / NoC events, kept cheap enough to leave on during long
 * runs and dumped when something goes wrong (watchdog hang report, sim
 * panic).
 *
 * Recording discipline: the ring is preallocated at construction and
 * one record is one POD store -- no allocation, no formatting, no
 * string copies (all text fields are static-lifetime table/tag
 * strings, reusing the declarative transition-table names from the
 * protocol layer). When the ring is full the oldest entry is
 * overwritten; `wrapped()` counts how many were lost. Same
 * zero-cost-when-off contract as every telemetry observer: components
 * hold a `FlightRecorder *` that is null when the recorder is off.
 *
 * Panic integration: live recorders register themselves in a global
 * (mutex-guarded) registry and install a panic hook, so `panic()`
 * dumps the most recent events to stderr before aborting.
 */

#ifndef INPG_TELEMETRY_FLIGHT_RECORDER_HH
#define INPG_TELEMETRY_FLIGHT_RECORDER_HH

#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/types.hh"
#include "telemetry/json.hh"

namespace inpg {

/** Event class of one flight-recorder entry. */
enum class FrKind : std::uint8_t {
    ProtoDispatch, ///< a transition table dispatched (tag0/1/2 = table/state/event)
    MsgSend,       ///< a coherence controller sent a message (tag0 = kind)
    MsgDrop,       ///< a message was dropped (seeded-hang knob; tag0 = kind)
    NiInject,      ///< a packet entered the fabric at its source NI
    NiEject,       ///< a packet was reassembled and delivered at its dest NI
    BarrierStop,   ///< a big router stopped a GetX under a barrier (EI open)
    AckRelay,      ///< a big router relayed an InvAck toward the home node
};

/** Name of a FrKind ("proto", "send", ...). */
const char *frKindName(FrKind k);

/** Bounded ring recorder of recent protocol/NoC events. */
class FlightRecorder
{
  public:
    /** @param capacity ring size; rounded up to a power of two. */
    explicit FlightRecorder(std::size_t capacity = 4096);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Record one event. All strings must have static lifetime (table
     * names, enum-name functions, literals); they are stored by
     * pointer. Hot path: one ring store, no allocation.
     */
    void
    record(FrKind kind, Cycle now, NodeId node, Addr addr,
           std::uint64_t arg = 0, const char *tag0 = nullptr,
           const char *tag1 = nullptr, const char *tag2 = nullptr)
    {
        Event &e = ring[head & mask];
        e.cycle = now;
        e.addr = addr;
        e.arg = arg;
        e.tag0 = tag0;
        e.tag1 = tag1;
        e.tag2 = tag2;
        e.node = node;
        e.kind = kind;
        ++head;
        ++total;
    }

    /** Events recorded over the recorder's lifetime. */
    std::uint64_t recordedTotal() const { return total; }

    /** Events lost to ring wrap-around (recorded - retained). */
    std::uint64_t
    wrapped() const
    {
        return total > ring.size() ? total - ring.size() : 0;
    }

    /** Events currently retained in the ring. */
    std::size_t
    retained() const
    {
        return total < ring.size() ? static_cast<std::size_t>(total)
                                   : ring.size();
    }

    std::size_t capacity() const { return ring.size(); }

    /** Retained events, oldest first, as a JSON array. */
    JsonValue toJson() const;

    /**
     * Plain-text dump of the newest `max_events` retained events to a
     * stream (the panic path: no allocation-heavy JSON machinery).
     */
    void dumpText(std::FILE *out, std::size_t max_events = 64) const;

  private:
    struct Event {
        Cycle cycle = 0;
        Addr addr = 0;
        std::uint64_t arg = 0;
        const char *tag0 = nullptr;
        const char *tag1 = nullptr;
        const char *tag2 = nullptr;
        NodeId node = INVALID_NODE;
        FrKind kind = FrKind::ProtoDispatch;
    };

    std::vector<Event> ring;
    std::uint64_t mask;
    std::uint64_t head = 0;
    std::uint64_t total = 0;
};

} // namespace inpg

#endif // INPG_TELEMETRY_FLIGHT_RECORDER_HH
