#include "telemetry/packet_lifetime.hh"

#include "coh/coherence_msg.hh"
#include "telemetry/trace_event.hh"

namespace inpg {

namespace {

/** Slice label for a packet: coherence kind if the payload is one. */
const char *
packetLabel(const Packet &pkt)
{
    if (const auto *msg =
            dynamic_cast<const CoherenceMsg *>(pkt.payload.get()))
        return cohMsgKindName(msg->kind);
    return "pkt";
}

} // namespace

PacketLifetimeTracker::PacketLifetimeTracker(TraceEventSink *trace_sink)
    : sink(trace_sink)
{}

PacketLifetimeTracker::Record *
PacketLifetimeTracker::find(PacketId id)
{
    auto it = live.find(id);
    return it == live.end() ? nullptr : &it->second;
}

void
PacketLifetimeTracker::onPacketQueued(const Packet &pkt, Cycle now)
{
    ++stats.counter("packets_tracked");
    Record rec;
    rec.src = pkt.src;
    rec.dst = pkt.dst;
    rec.vnet = pkt.vnet;
    rec.queued = now;
    rec.entered = now;
    live[pkt.id] = std::move(rec);
}

void
PacketLifetimeTracker::onNetworkEntry(PacketId id, Cycle now)
{
    if (Record *rec = find(id))
        rec->entered = now;
}

void
PacketLifetimeTracker::onRouterArrive(NodeId router, PacketId id,
                                      Cycle now)
{
    Record *rec = find(id);
    if (!rec)
        return;
    rec->hops.push_back(Hop{router, now, now, now});
}

void
PacketLifetimeTracker::onVaGrant(NodeId router, PacketId id, Cycle now)
{
    Record *rec = find(id);
    if (!rec || rec->hops.empty())
        return;
    // Hops are pushed in traversal order; the grant belongs to the
    // newest hop through this router.
    for (auto it = rec->hops.rbegin(); it != rec->hops.rend(); ++it) {
        if (it->router == router) {
            it->vaGrant = now;
            return;
        }
    }
}

void
PacketLifetimeTracker::onRouterDepart(NodeId router, PacketId id,
                                      Cycle now)
{
    Record *rec = find(id);
    if (!rec)
        return;
    for (auto it = rec->hops.rbegin(); it != rec->hops.rend(); ++it) {
        if (it->router == router) {
            it->depart = now;
            return;
        }
    }
}

void
PacketLifetimeTracker::onPacketEjected(const Packet &pkt, Cycle now)
{
    auto it = live.find(pkt.id);
    if (it == live.end())
        return;
    Record &rec = it->second;

    ++stats.counter("packets_completed");
    stats.sample("queue_wait")
        .add(static_cast<double>(rec.entered - rec.queued));
    stats.sample("net_latency")
        .add(static_cast<double>(now - rec.entered));
    stats.sample("total_latency")
        .add(static_cast<double>(now - rec.queued));
    stats.sample("hops").add(static_cast<double>(rec.hops.size()));

    SampleStat &bufWait = stats.sample("hop_buffer_wait");
    SampleStat &stWait = stats.sample("hop_switch_wait");
    const char *label = sink ? packetLabel(pkt) : nullptr;
    for (const Hop &h : rec.hops) {
        bufWait.add(static_cast<double>(h.vaGrant - h.arrive));
        stWait.add(static_cast<double>(h.depart - h.vaGrant));
        if (sink && h.depart > h.arrive) {
            sink->duration(TrackGroup::Routers,
                           static_cast<std::uint32_t>(h.router), label,
                           h.arrive, h.depart - h.arrive, pkt.id);
        }
    }
    if (sink) {
        if (rec.entered > rec.queued) {
            sink->duration(TrackGroup::NetworkInterfaces,
                           static_cast<std::uint32_t>(rec.src), label,
                           rec.queued, rec.entered - rec.queued, pkt.id);
        }
        sink->instant(TrackGroup::NetworkInterfaces,
                      static_cast<std::uint32_t>(rec.dst), label, now,
                      pkt.id);
    }

    live.erase(it);
}

} // namespace inpg
