#include "telemetry/packet_lifetime.hh"

#include <algorithm>

#include "coh/coherence_msg.hh"
#include "telemetry/trace_event.hh"

namespace inpg {

namespace {

/** Slice label for a packet: coherence kind if the payload is one. */
const char *
packetLabel(const Packet &pkt)
{
    if (const auto *msg =
            dynamic_cast<const CoherenceMsg *>(pkt.payload.get()))
        return cohMsgKindName(msg->kind);
    return "pkt";
}

} // namespace

PacketLifetimeTracker::PacketLifetimeTracker(TraceEventSink *trace_sink)
    : sink(trace_sink)
{}

PacketLifetimeTracker::Record *
PacketLifetimeTracker::find(PacketId id)
{
    auto it = live.find(id);
    return it == live.end() ? nullptr : &it->second;
}

void
PacketLifetimeTracker::onPacketQueued(const Packet &pkt, Cycle now)
{
    ++stats.counter("packets_tracked");
    Record rec;
    rec.src = pkt.src;
    rec.dst = pkt.dst;
    rec.vnet = pkt.vnet;
    rec.queued = now;
    rec.entered = now;
    live[pkt.id] = std::move(rec);
}

void
PacketLifetimeTracker::onNetworkEntry(PacketId id, Cycle now)
{
    if (Record *rec = find(id))
        rec->entered = now;
}

void
PacketLifetimeTracker::onRouterArrive(NodeId router, PacketId id,
                                      Cycle now)
{
    Record *rec = find(id);
    if (!rec)
        return;
    // Hops per packet are bounded by the mesh diameter; the record
    // retires at ejection.
    rec->hops.push_back( // lint:allow(unbounded-recording)
        Hop{router, now, now, now});
}

void
PacketLifetimeTracker::onVaGrant(NodeId router, PacketId id, Cycle now)
{
    Record *rec = find(id);
    if (!rec || rec->hops.empty())
        return;
    // Hops are pushed in traversal order; the grant belongs to the
    // newest hop through this router.
    for (auto it = rec->hops.rbegin(); it != rec->hops.rend(); ++it) {
        if (it->router == router) {
            it->vaGrant = now;
            return;
        }
    }
}

void
PacketLifetimeTracker::onRouterDepart(NodeId router, PacketId id,
                                      Cycle now)
{
    Record *rec = find(id);
    if (!rec)
        return;
    for (auto it = rec->hops.rbegin(); it != rec->hops.rend(); ++it) {
        if (it->router == router) {
            it->depart = now;
            return;
        }
    }
}

void
PacketLifetimeTracker::apply(const PacketTelOp &op)
{
    switch (op.kind) {
      case PacketTelOp::Kind::RouterArrive:
        onRouterArrive(op.router, op.pkt, op.at);
        break;
      case PacketTelOp::Kind::VaGrant:
        onVaGrant(op.router, op.pkt, op.at);
        break;
      case PacketTelOp::Kind::RouterDepart:
        onRouterDepart(op.router, op.pkt, op.at);
        break;
    }
}

void
PacketLifetimeTracker::onPacketEjected(const Packet &pkt, Cycle now)
{
    auto it = live.find(pkt.id);
    if (it == live.end())
        return;
    Record &rec = it->second;

    ++stats.counter("packets_completed");
    stats.sample("queue_wait")
        .add(static_cast<double>(rec.entered - rec.queued));
    stats.sample("net_latency")
        .add(static_cast<double>(now - rec.entered));
    stats.sample("total_latency")
        .add(static_cast<double>(now - rec.queued));
    stats.sample("hops").add(static_cast<double>(rec.hops.size()));

    SampleStat &bufWait = stats.sample("hop_buffer_wait");
    SampleStat &stWait = stats.sample("hop_switch_wait");
    const char *label = sink ? packetLabel(pkt) : nullptr;
    for (const Hop &h : rec.hops) {
        bufWait.add(static_cast<double>(h.vaGrant - h.arrive));
        stWait.add(static_cast<double>(h.depart - h.vaGrant));
        if (sink && h.depart > h.arrive) {
            sink->duration(TrackGroup::Routers,
                           static_cast<std::uint32_t>(h.router), label,
                           h.arrive, h.depart - h.arrive, pkt.id);
        }
    }
    if (sink) {
        if (rec.entered > rec.queued) {
            sink->duration(TrackGroup::NetworkInterfaces,
                           static_cast<std::uint32_t>(rec.src), label,
                           rec.queued, rec.entered - rec.queued, pkt.id);
        }
        sink->instant(TrackGroup::NetworkInterfaces,
                      static_cast<std::uint32_t>(rec.dst), label, now,
                      pkt.id);
    }

    live.erase(it);
}

JsonValue
PacketLifetimeTracker::inFlightJson(Cycle now) const
{
    std::vector<const std::pair<const PacketId, Record> *> sorted;
    sorted.reserve(live.size());
    for (const auto &kv : live)
        sorted.push_back(&kv);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto *a, const auto *b) {
                  return a->first < b->first;
              });

    JsonValue out = JsonValue::array();
    for (const auto *kv : sorted) {
        const Record &rec = kv->second;
        JsonValue p = JsonValue::object();
        p["id"] = static_cast<std::uint64_t>(kv->first);
        p["src"] = static_cast<long long>(rec.src);
        p["dst"] = static_cast<long long>(rec.dst);
        p["vnet"] = static_cast<long long>(rec.vnet);
        p["queued"] = static_cast<std::uint64_t>(rec.queued);
        p["entered"] = static_cast<std::uint64_t>(rec.entered);
        p["age"] = static_cast<std::uint64_t>(now - rec.queued);
        JsonValue hops = JsonValue::array();
        for (const Hop &h : rec.hops) {
            JsonValue hj = JsonValue::object();
            hj["router"] = static_cast<long long>(h.router);
            hj["arrive"] = static_cast<std::uint64_t>(h.arrive);
            hj["va_grant"] = static_cast<std::uint64_t>(h.vaGrant);
            hj["depart"] = static_cast<std::uint64_t>(h.depart);
            hops.push(std::move(hj));
        }
        p["hops"] = std::move(hops);
        out.push(std::move(p));
    }
    return out;
}

} // namespace inpg
