#include "telemetry/run_record.hh"

#include <cstdio>

#include "common/logging.hh"

namespace inpg {

bool
schemaVersionCompatible(const JsonValue &doc, int expected,
                        std::string *why)
{
    const JsonValue *v = doc.find("schema_version");
    if (!v) {
        if (why)
            *why = "document has no schema_version field";
        return false;
    }
    const long long got = v->asInt(-1);
    if (got != expected) {
        if (why)
            *why = format("schema_version %lld not supported (this "
                          "reader understands %d)",
                          static_cast<long long>(got), expected);
        return false;
    }
    return true;
}

std::string
runRecordCompiler()
{
    return __VERSION__;
}

std::string
RunRecord::configKey() const
{
    return format("%s|%s|%s|%s|br%d|seed%llu|cs%.17g",
                  benchmark.c_str(), mechanism.c_str(), lock.c_str(),
                  topology.c_str(), bigRouters,
                  static_cast<unsigned long long>(seed), csScale);
}

JsonValue
RunRecord::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc["record"] = RUN_RECORD_TAG;
    doc["schema_version"] = RUN_RECORD_SCHEMA_VERSION;

    JsonValue prov = JsonValue::object();
    prov["git_sha"] = gitSha;
    prov["git_dirty"] = gitDirty;
    prov["compiler"] = compiler;
    doc["provenance"] = std::move(prov);

    JsonValue cfg = JsonValue::object();
    cfg["benchmark"] = benchmark;
    cfg["mechanism"] = mechanism;
    cfg["lock"] = lock;
    cfg["topology"] = topology;
    cfg["impl"] = impl;
    cfg["cores"] = cores;
    cfg["big_routers"] = bigRouters;
    cfg["threads"] = threads;
    cfg["seed"] = seed;
    cfg["cs_scale"] = csScale;
    doc["config"] = std::move(cfg);

    JsonValue met = JsonValue::object();
    met["roi_cycles"] = roiCycles;
    met["cs_completed"] = csCompleted;
    met["parallel_cycles"] = parallelCycles;
    met["coh_cycles"] = cohCycles;
    met["sleep_cycles"] = sleepCycles;
    met["cse_cycles"] = cseCycles;
    met["lock_coh_cycles"] = lockCohCycles;
    met["rtt_mean"] = rttMean;
    met["rtt_max"] = rttMax;
    met["rtt_count"] = rttCount;
    met["early_invs"] = earlyInvs;
    met["sleeps"] = sleeps;
    met["wakeups"] = wakeups;
    doc["metrics"] = std::move(met);

    if (!lco.isNull())
        doc["lco"] = lco;
    if (!timeseries.isNull())
        doc["timeseries"] = timeseries;
    if (!stats.isNull())
        doc["stats"] = stats;
    return doc;
}

RunRecord
RunRecord::fromJson(const JsonValue &doc, std::string *err)
{
    RunRecord rec;
    if (doc.at("record").asString() != RUN_RECORD_TAG) {
        if (err)
            *err = "not an " + std::string(RUN_RECORD_TAG) +
                   " document";
        return rec;
    }
    std::string why;
    if (!schemaVersionCompatible(doc, RUN_RECORD_SCHEMA_VERSION,
                                 &why)) {
        if (err)
            *err = why;
        return rec;
    }

    const JsonValue &prov = doc.at("provenance");
    rec.gitSha = prov.at("git_sha").asString();
    rec.gitDirty = prov.at("git_dirty").asBool();
    rec.compiler = prov.at("compiler").asString();

    const JsonValue &cfg = doc.at("config");
    rec.benchmark = cfg.at("benchmark").asString();
    rec.mechanism = cfg.at("mechanism").asString();
    rec.lock = cfg.at("lock").asString();
    rec.topology = cfg.at("topology").asString();
    rec.impl = cfg.at("impl").asString();
    rec.cores = static_cast<int>(cfg.at("cores").asInt());
    rec.bigRouters = static_cast<int>(cfg.at("big_routers").asInt());
    rec.threads = static_cast<int>(cfg.at("threads").asInt(1));
    rec.seed = cfg.at("seed").asUint(1);
    rec.csScale = cfg.at("cs_scale").asDouble();

    const JsonValue &met = doc.at("metrics");
    rec.roiCycles = met.at("roi_cycles").asUint();
    rec.csCompleted = met.at("cs_completed").asUint();
    rec.parallelCycles = met.at("parallel_cycles").asUint();
    rec.cohCycles = met.at("coh_cycles").asUint();
    rec.sleepCycles = met.at("sleep_cycles").asUint();
    rec.cseCycles = met.at("cse_cycles").asUint();
    rec.lockCohCycles = met.at("lock_coh_cycles").asUint();
    rec.rttMean = met.at("rtt_mean").asDouble();
    rec.rttMax = met.at("rtt_max").asUint();
    rec.rttCount = met.at("rtt_count").asUint();
    rec.earlyInvs = met.at("early_invs").asUint();
    rec.sleeps = met.at("sleeps").asUint();
    rec.wakeups = met.at("wakeups").asUint();

    rec.lco = doc.at("lco");
    rec.timeseries = doc.at("timeseries");
    rec.stats = doc.at("stats");
    if (err)
        err->clear();
    return rec;
}

ExperimentLedger::ExperimentLedger(std::string path)
    : filePath(std::move(path))
{
    file = std::fopen(filePath.c_str(), "a");
}

ExperimentLedger::~ExperimentLedger()
{
    if (file)
        std::fclose(file);
}

void
ExperimentLedger::append(const RunRecord &rec)
{
    if (!file)
        return;
    std::string line = rec.toJson().dump(0);
    line += '\n';
    // One write call for the whole line, serialized by the mutex and
    // flushed before release: a reader (or a crash) never observes a
    // torn record.
    std::lock_guard<std::mutex> guard(mu); // lint:allow(threading-outside-parallel)
    std::fwrite(line.data(), 1, line.size(), file);
    std::fflush(file);
    ++count;
}

std::vector<RunRecord>
ExperimentLedger::load(const std::string &path, std::string *err)
{
    std::vector<RunRecord> out;
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f) {
        if (err)
            *err = "cannot open ledger '" + path + "'";
        return out;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    std::size_t lineno = 0;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        ++lineno;
        const std::string line = text.substr(start, end - start);
        start = end + 1;
        if (line.empty())
            continue;
        std::string diag;
        JsonValue doc = JsonValue::parse(line, &diag);
        if (!diag.empty()) {
            if (err)
                *err = format("%s:%zu: %s", path.c_str(), lineno,
                              diag.c_str());
            return out;
        }
        RunRecord rec = RunRecord::fromJson(doc, &diag);
        if (!diag.empty()) {
            if (err)
                *err = format("%s:%zu: %s", path.c_str(), lineno,
                              diag.c_str());
            return out;
        }
        out.push_back(std::move(rec));
    }
    if (err)
        err->clear();
    return out;
}

} // namespace inpg
