/**
 * @file
 * Packet-lifetime tracker: stamps every in-flight packet at hop
 * granularity -- NI inject, per-router head arrival / VC allocation /
 * switch traversal, NI eject -- and rolls the stamps into latency
 * statistics and (optionally) Chrome-trace slices, one track per
 * router and network interface.
 *
 * Records live only while their packet is in flight: the eject hook
 * folds the record into running statistics, emits its trace slices,
 * and erases it, so memory stays bounded by the number of packets
 * simultaneously in the network.
 */

#ifndef INPG_TELEMETRY_PACKET_LIFETIME_HH
#define INPG_TELEMETRY_PACKET_LIFETIME_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "noc/packet.hh"
#include "telemetry/json.hh"

namespace inpg {

class TraceEventSink;

/**
 * One deferred router-side tracker call. Routers running inside a
 * parallel fabric domain cannot call the tracker directly (its map
 * and stats live on the coordinator thread), so they append ops to a
 * per-domain log that the coordinator replays at the quantum barrier
 * via PacketLifetimeTracker::apply(). Replay order across domains is
 * immaterial: a packet occupies one router per cycle, so its ops land
 * in one log in program order, and different packets touch disjoint
 * live-map records; map insert/erase and the statistics roll-up only
 * ever happen on the coordinator (NI / generator hooks).
 */
struct PacketTelOp {
    enum class Kind : std::uint8_t {
        RouterArrive,
        VaGrant,
        RouterDepart,
    };

    Kind kind = Kind::RouterArrive;
    NodeId router = 0;
    PacketId pkt = 0;
    Cycle at = 0;
};

/** Hop-granular lifecycle observer for NoC packets. */
class PacketLifetimeTracker
{
  public:
    /** @param sink Optional Chrome-trace sink for per-hop slices. */
    explicit PacketLifetimeTracker(TraceEventSink *sink = nullptr);

    /** Packet accepted by a source NI (or synthesized by a big router). */
    void onPacketQueued(const Packet &pkt, Cycle now);

    /** Head flit left the source queue onto the fabric. */
    void onNetworkEntry(PacketId id, Cycle now);

    /** Head flit buffered at a router's input unit. */
    void onRouterArrive(NodeId router, PacketId id, Cycle now);

    /** Router granted the packet an output virtual channel. */
    void onVaGrant(NodeId router, PacketId id, Cycle now);

    /** Head flit traversed the router's crossbar (ST stage). */
    void onRouterDepart(NodeId router, PacketId id, Cycle now);

    /** Tail flit reassembled at the destination NI. */
    void onPacketEjected(const Packet &pkt, Cycle now);

    /** Replay one deferred router-side op (see PacketTelOp). */
    void apply(const PacketTelOp &op);

    /** Aggregated latency statistics over completed packets. */
    const StatGroup &statGroup() const { return stats; }

    /** Packets currently tracked in flight. */
    std::size_t inFlight() const { return live.size(); }

    /**
     * In-flight transaction waterfall for the hang report: every live
     * packet with its per-router hop stamps, sorted by packet id so
     * the output is deterministic regardless of hash-map order.
     */
    JsonValue inFlightJson(Cycle now) const;

  private:
    struct Hop {
        NodeId router;
        Cycle arrive;
        Cycle vaGrant;
        Cycle depart;
    };

    struct Record {
        NodeId src;
        NodeId dst;
        VnetId vnet;
        Cycle queued;
        Cycle entered;
        std::vector<Hop> hops;
    };

    Record *find(PacketId id);

    TraceEventSink *sink;
    std::unordered_map<PacketId, Record> live;
    StatGroup stats{"packets"};
};

} // namespace inpg

#endif // INPG_TELEMETRY_PACKET_LIFETIME_HH
