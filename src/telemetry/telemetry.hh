/**
 * @file
 * Telemetry facade: configuration plus ownership of the optional
 * instrumentation trackers (packet lifetimes, LCO attribution,
 * Chrome-trace sink, kernel profile).
 *
 * Zero-cost-when-off contract: instrumented components hold a
 * `Telemetry *` that is null when telemetry is disabled, and each
 * feature pointer (`lco`, `packets`, `trace`, `kernel`) is null when
 * that feature is off -- so the entire subsystem costs one
 * predictable branch per hook site on the hot path and nothing else.
 * The determinism tests pin down that enabling it never changes
 * simulated results.
 */

#ifndef INPG_TELEMETRY_TELEMETRY_HH
#define INPG_TELEMETRY_TELEMETRY_HH

#include <memory>
#include <string>

#include "common/histogram.hh"
#include "common/types.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/lco_attribution.hh"
#include "telemetry/packet_lifetime.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeseries.hh"
#include "telemetry/trace_event.hh"
#include "telemetry/watchdog.hh"

namespace inpg {

/** Epoch length used when `timeseries` is enabled without one. */
inline constexpr Cycle DEFAULT_TIMESERIES_EPOCH = 4096;

/** No-progress window used when `watchdog` is enabled without one. */
inline constexpr Cycle DEFAULT_WATCHDOG_WINDOW = 1'000'000;

/** Which trackers to build; all default off. */
struct TelemetryConfig {
    bool lco = false;         ///< per-acquire LCO attribution
    bool packets = false;     ///< hop-granular packet lifetimes
    bool traceEvents = false; ///< Chrome-trace event sink
    bool kernel = false;      ///< kernel profile (events/cycle, FF skips)
    bool recorder = false;    ///< flight recorder of recent events

    /** Flight-recorder ring capacity (rounded up to a power of two). */
    std::size_t recorderCapacity = 4096;

    /** Timeseries epoch length in cycles; 0 = sampler off. */
    Cycle timeseriesEpoch = 0;

    /** Timeseries row cap (bounded-recording discipline). */
    std::size_t timeseriesMaxRows = 1u << 20;

    /** Watchdog no-progress window in executed cycles; 0 = off. */
    Cycle watchdogWindow = 0;

    bool
    any() const
    {
        return lco || packets || traceEvents || kernel || recorder ||
               timeseriesEpoch > 0 || watchdogWindow > 0;
    }

    /**
     * Apply a comma-separated spec: `lco`, `packets`, `trace`,
     * `kernel`, `recorder`, `timeseries`, `watchdog`, `all`, `off`.
     * `timeseries`/`watchdog` use default epoch/window when none was
     * configured. `all` enables every pure observer but NOT the
     * watchdog: tripping terminates the run, so it stays opt-in.
     * Unknown tokens are ignored so config strings stay forward
     * compatible. Also the INPG_TELEMETRY env-var format.
     */
    void applySpec(const std::string &spec);
};

/** Kernel-level profile: scheduler load and fast-forward behavior. */
class KernelProfile
{
  public:
    /** Record one executed cycle's event count and queue depth. */
    void
    onCycle(std::uint64_t events_run, std::size_t queue_depth)
    {
        eventsPerCycle.add(events_run);
        wheelOccupancy.add(queue_depth);
    }

    /** Record one idle fast-forward jump of `gap` cycles. */
    void onFastForward(Cycle gap) { ffSkip.add(gap); }

    const Histogram &eventsPerCycleHist() const { return eventsPerCycle; }
    const Histogram &wheelOccupancyHist() const { return wheelOccupancy; }
    const Histogram &ffSkipHist() const { return ffSkip; }

  private:
    Histogram eventsPerCycle{1, 64};
    Histogram wheelOccupancy{4, 64};
    Histogram ffSkip{16, 64};
};

/**
 * Owner of the enabled trackers. Feature pointers are plain observer
 * pointers so hook sites pay a single null test.
 */
class Telemetry
{
  public:
    Telemetry(const TelemetryConfig &config, int num_cores);

    const TelemetryConfig &config() const { return cfg; }

    LcoTracker *lco = nullptr;
    PacketLifetimeTracker *packets = nullptr;
    TraceEventSink *trace = nullptr;
    KernelProfile *kernel = nullptr;
    FlightRecorder *recorder = nullptr;
    TimeseriesSampler *timeseries = nullptr;
    ProgressWatchdog *watchdog = nullptr;

  private:
    TelemetryConfig cfg;
    std::unique_ptr<TraceEventSink> traceOwned;
    std::unique_ptr<LcoTracker> lcoOwned;
    std::unique_ptr<PacketLifetimeTracker> packetsOwned;
    std::unique_ptr<KernelProfile> kernelOwned;
    std::unique_ptr<FlightRecorder> recorderOwned;
    std::unique_ptr<TimeseriesSampler> timeseriesOwned;
    std::unique_ptr<ProgressWatchdog> watchdogOwned;
};

} // namespace inpg

#endif // INPG_TELEMETRY_TELEMETRY_HH
