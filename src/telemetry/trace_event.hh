/**
 * @file
 * Structured event sink emitting the Chrome Trace Event Format, the
 * JSON dialect consumed by Perfetto and chrome://tracing.
 *
 * Recording is designed for the simulator hot path: an event is one
 * POD append to a preallocated vector (names are string literals, no
 * ownership, no formatting). All JSON work happens once, in
 * writeJson() after the run. One simulated cycle maps to one
 * microsecond of trace time, so cycle numbers read directly off the
 * Perfetto ruler.
 *
 * Track layout: each component class is a trace "process" (routers,
 * NIs, directories, L1s, threads, packet generators) and each
 * component instance is a "thread" within it, named via metadata
 * events so the UI shows e.g. "router 5" instead of a bare tid.
 */

#ifndef INPG_TELEMETRY_TRACE_EVENT_HH
#define INPG_TELEMETRY_TRACE_EVENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace inpg {

/** Trace "process" ids: one per component class. */
enum class TrackGroup : std::uint32_t {
    Routers = 1,
    NetworkInterfaces = 2,
    Directories = 3,
    L1Caches = 4,
    Threads = 5,
    Generators = 6,
    Kernel = 7,
};

/** Bounded in-memory recorder for Chrome-trace events. */
class TraceEventSink
{
  public:
    /** @param max_events Hard cap; events past it count as dropped. */
    explicit TraceEventSink(std::size_t max_events = 2'000'000);

    /**
     * Complete duration slice [ts, ts+dur] on a track.
     * @param name Static string (not copied; must outlive the sink).
     */
    void
    duration(TrackGroup group, std::uint32_t track, const char *name,
             Cycle ts, Cycle dur, std::uint64_t arg = 0)
    {
        append(Event{name, group, track, ts, dur, arg, Shape::Duration});
    }

    /** Zero-width instant marker on a track. */
    void
    instant(TrackGroup group, std::uint32_t track, const char *name,
            Cycle ts, std::uint64_t arg = 0)
    {
        append(Event{name, group, track, ts, 0, arg, Shape::Instant});
    }

    /**
     * Human-readable track title ("router 5"); emitted as Chrome
     * metadata. Idempotent per (group, track).
     */
    void nameTrack(TrackGroup group, std::uint32_t track,
                   std::string title);

    std::size_t eventCount() const { return events.size(); }
    std::uint64_t droppedCount() const { return dropped; }

    /** Serialize everything as a {"traceEvents":[...]} document. */
    std::string writeJson() const;

    /** Write the JSON document to a file. @return false on I/O error. */
    bool writeJsonFile(const std::string &path) const;

  private:
    enum class Shape : std::uint8_t { Duration, Instant };

    struct Event {
        const char *name;
        TrackGroup group;
        std::uint32_t track;
        Cycle ts;
        Cycle dur;
        std::uint64_t arg;
        Shape shape;
    };

    struct TrackName {
        TrackGroup group;
        std::uint32_t track;
        std::string title;
    };

    void
    append(const Event &ev)
    {
        if (events.size() >= maxEvents) {
            ++dropped;
            return;
        }
        events.push_back(ev);
    }

    std::size_t maxEvents;
    std::uint64_t dropped = 0;
    std::vector<Event> events;
    std::vector<TrackName> trackNames;
};

} // namespace inpg

#endif // INPG_TELEMETRY_TRACE_EVENT_HH
