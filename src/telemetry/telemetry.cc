#include "telemetry/telemetry.hh"

namespace inpg {

void
TelemetryConfig::applySpec(const std::string &spec)
{
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;

        if (tok == "off" || tok == "none") {
            lco = packets = traceEvents = kernel = recorder = false;
            timeseriesEpoch = 0;
            watchdogWindow = 0;
        } else if (tok == "all") {
            // Every pure observer; the watchdog stays opt-in because
            // tripping terminates the run.
            lco = packets = traceEvents = kernel = recorder = true;
            if (timeseriesEpoch == 0)
                timeseriesEpoch = DEFAULT_TIMESERIES_EPOCH;
        } else if (tok == "recorder") {
            recorder = true;
        } else if (tok == "timeseries") {
            if (timeseriesEpoch == 0)
                timeseriesEpoch = DEFAULT_TIMESERIES_EPOCH;
        } else if (tok == "watchdog") {
            if (watchdogWindow == 0)
                watchdogWindow = DEFAULT_WATCHDOG_WINDOW;
        } else if (tok == "lco") {
            lco = true;
        } else if (tok == "packets") {
            packets = true;
        } else if (tok == "trace") {
            traceEvents = true;
        } else if (tok == "kernel") {
            kernel = true;
        }
        // Unknown tokens (and empty segments) are ignored.
    }
}

Telemetry::Telemetry(const TelemetryConfig &config, int num_cores)
    : cfg(config)
{
    if (cfg.traceEvents) {
        traceOwned = std::make_unique<TraceEventSink>();
        trace = traceOwned.get();
    }
    if (cfg.lco) {
        lcoOwned = std::make_unique<LcoTracker>(num_cores);
        lco = lcoOwned.get();
    }
    if (cfg.packets) {
        packetsOwned = std::make_unique<PacketLifetimeTracker>(trace);
        packets = packetsOwned.get();
    }
    if (cfg.kernel) {
        kernelOwned = std::make_unique<KernelProfile>();
        kernel = kernelOwned.get();
    }
    if (cfg.recorder) {
        recorderOwned =
            std::make_unique<FlightRecorder>(cfg.recorderCapacity);
        recorder = recorderOwned.get();
    }
    if (cfg.timeseriesEpoch > 0) {
        timeseriesOwned = std::make_unique<TimeseriesSampler>(
            cfg.timeseriesEpoch, cfg.timeseriesMaxRows);
        timeseries = timeseriesOwned.get();
    }
    if (cfg.watchdogWindow > 0) {
        watchdogOwned =
            std::make_unique<ProgressWatchdog>(cfg.watchdogWindow);
        watchdog = watchdogOwned.get();
    }
}

} // namespace inpg
