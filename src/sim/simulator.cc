#include "sim/simulator.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <string>

#include "common/logging.hh"
#include "sim/parallel/parallel_kernel.hh"
#include "telemetry/telemetry.hh"

namespace inpg {

namespace {

// Host-side profiling only: these wall-clock reads never feed back
// into simulated state, so the determinism lint is opted out per line.
double
secondsSince(std::chrono::steady_clock::time_point t0) // lint:allow(nondeterminism)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0) // lint:allow(nondeterminism)
        .count();
}

} // namespace

void
Simulator::addTicking(Ticking *component)
{
    INPG_ASSERT(component != nullptr, "registering null component");
    INPG_ASSERT(parKernel == nullptr,
                "cannot register components while a parallel kernel "
                "is attached (it has already partitioned the slots)");
    INPG_ASSERT(!component->token.bound(),
                "component %s registered twice",
                component->tickName().c_str());
    component->token.count = &activeCount;
    const std::string name = component->tickName();
    PhaseClass phase = PhaseClass::Other;
    if (name.rfind("router", 0) == 0)
        phase = PhaseClass::Router;
    else if (name.rfind("ni", 0) == 0)
        phase = PhaseClass::Ni;
    else if (name.rfind("dir", 0) == 0)
        phase = PhaseClass::Dir;
    const std::size_t idx = slots.size();
    slots.push_back(Slot{component, phase});
    if ((idx >> 6) >= activeBits.size())
        activeBits.push_back(0);
    activeBits[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    ++activeCount;
    // Growing the bitmap may have moved its words; re-bind all tokens
    // so their word pointers track the new storage. Registration is
    // setup-time only, so the quadratic re-bind is irrelevant next to
    // the per-wake virtual call this layout replaces.
    for (std::size_t i = 0; i < slots.size(); ++i) {
        SleepToken &t = slots[i].component->token;
        t.word = &activeBits[i >> 6];
        t.bit = std::uint64_t{1} << (i & 63);
    }
}

void
Simulator::setTelemetry(Telemetry *t)
{
    tel = t;
    kernelProf = t ? t->kernel : nullptr;
    sampler = t ? t->timeseries : nullptr;
    wdog = t ? t->watchdog : nullptr;
}

void
Simulator::attachParallel(ParallelKernel *k)
{
    INPG_ASSERT(k == nullptr || parKernel == nullptr,
                "a parallel kernel is already attached");
    INPG_ASSERT(k == nullptr || profile == nullptr,
                "host phase profiling requires the serial kernel");
    parKernel = k;
}

std::size_t
Simulator::totalActive() const
{
    return activeCount + (parKernel ? parKernel->fabricActive() : 0);
}

void
Simulator::runEventPhase()
{
    if (kernelProf) {
        const std::uint64_t before = eventQueue.executedTotal();
        eventQueue.runDue(currentCycle);
        kernelProf->onCycle(eventQueue.executedTotal() - before,
                            eventQueue.size());
    } else {
        eventQueue.runDue(currentCycle);
    }
}

void
Simulator::sweepActive()
{
    // Sweep the active bitmap in ascending slot order, re-reading the
    // live word before every pick so a tick that wakes a HIGHER slot
    // makes it run this same cycle -- exactly the reference flag loop's
    // semantics (each index is examined once, with its state as of the
    // moment the scan reaches it). The cursor mask retires the chosen
    // bit and everything below it, so backward wakes wait for the next
    // cycle just as the flag loop's already-passed indices did.
    // Components only ever suspend themselves, so a bit the cursor has
    // not reached can vanish only with its tick already unnecessary.
    for (std::size_t w = 0; w < activeBits.size(); ++w) {
        std::uint64_t eligible = ~std::uint64_t{0};
        std::uint64_t m;
        while ((m = activeBits[w] & eligible) != 0) {
            const std::size_t b =
                static_cast<std::size_t>(std::countr_zero(m));
            eligible &= ~std::uint64_t{0} << 1 << b;
            slots[(w << 6) + b].component->tick(currentCycle);
        }
    }
}

void
Simulator::step()
{
    if (profile) {
        stepProfiled();
        return;
    }
    if (parKernel) {
        parKernel->step(1);
        return;
    }
    runEventPhase();
    sweepActive();
    // Diagnosis observers see executed cycles only; null when off, so
    // the disabled cost is two predictable branches.
    if (sampler)
        sampler->onCycle(currentCycle);
    if (wdog)
        wdog->onCycle(currentCycle);
    ++currentCycle;
}

void
Simulator::stepProfiled()
{
    // Identical cycle semantics to step(), with wall-clock accounting
    // around the event phase and each component tick. The two extra
    // clock reads per tick distort absolute times slightly; the
    // events-vs-subsystem *split* is what the hotpath bench reports.
    auto t0 = std::chrono::steady_clock::now(); // lint:allow(nondeterminism)
    eventQueue.runDue(currentCycle);
    profile->eventsSec += secondsSince(t0);
    for (std::size_t w = 0; w < activeBits.size(); ++w) {
        std::uint64_t eligible = ~std::uint64_t{0};
        std::uint64_t m;
        while ((m = activeBits[w] & eligible) != 0) {
            const std::size_t b =
                static_cast<std::size_t>(std::countr_zero(m));
            eligible &= ~std::uint64_t{0} << 1 << b;
            const std::size_t i = (w << 6) + b;
            auto t1 = std::chrono::steady_clock::now(); // lint:allow(nondeterminism)
            slots[i].component->tick(currentCycle);
            const double dt = secondsSince(t1);
            switch (slots[i].phase) {
              case PhaseClass::Router:
                profile->routersSec += dt;
                break;
              case PhaseClass::Ni:
                profile->nisSec += dt;
                break;
              case PhaseClass::Dir:
                profile->dirsSec += dt;
                break;
              case PhaseClass::Other:
                profile->otherSec += dt;
                break;
            }
        }
    }
    if (sampler)
        sampler->onCycle(currentCycle);
    if (wdog)
        wdog->onCycle(currentCycle);
    ++profile->profiledCycles;
    ++currentCycle;
}

void
Simulator::run(Cycle n)
{
    const Cycle limit = currentCycle + n;
    while (currentCycle < limit) {
        if (ffEnabled && totalActive() == 0) {
            const Cycle target = std::min(limit, idleHorizon());
            if (target > currentCycle) {
                if (kernelProf)
                    kernelProf->onFastForward(target - currentCycle);
                if (sampler)
                    sampler->onFastForward(target);
                ffCycles += target - currentCycle;
                ++ffJumps;
                currentCycle = target;
                continue;
            }
        }
        if (parKernel && !profile) {
            // Fixed-horizon stepping has no per-cycle predicate, so
            // the parallel kernel may batch up to its conservative
            // lookahead per barrier round-trip (it clamps internally).
            parKernel->step(limit - currentCycle);
        } else {
            step();
        }
    }
}

bool
Simulator::runUntil(const std::function<bool()> &done, Cycle max_cycles,
                    PredicateMode mode)
{
    const Cycle limit = currentCycle + max_cycles;
    while (currentCycle < limit) {
        if (done())
            return true;
        if (ffEnabled && totalActive() == 0) {
            if (wdog && mode == PredicateMode::StateChange &&
                eventQueue.empty()) {
                // Every component is asleep and the event horizon is
                // empty, so no simulated state can ever change again;
                // a StateChange predicate that has not fired never
                // will. This is a structural deadlock, not a long
                // sleep -- trip immediately rather than fast-forward
                // to the timeout.
                wdog->tripDeadlock(currentCycle);
            }
            const Cycle target = std::min(limit, idleHorizon());
            if (target > currentCycle) {
                if (kernelProf)
                    kernelProf->onFastForward(target - currentCycle);
                if (sampler)
                    sampler->onFastForward(target);
                if (mode == PredicateMode::StateChange) {
                    // Nothing can flip the predicate before `target`.
                    ffCycles += target - currentCycle;
                    ++ffJumps;
                    currentCycle = target;
                } else {
                    // Execute the empty cycles (predicate may read the
                    // clock), but skip the component loop. The outer
                    // loop re-checks the predicate at `target`, so each
                    // cycle is checked exactly once, as in plain
                    // stepping.
                    while (currentCycle < target) {
                        ++currentCycle;
                        ++ffCycles;
                        if (currentCycle == target)
                            break;
                        if (done())
                            return true;
                    }
                    ++ffJumps;
                }
                continue;
            }
        }
        step();
    }
    return done();
}

} // namespace inpg
