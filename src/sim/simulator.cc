#include "sim/simulator.hh"

#include "common/logging.hh"

namespace inpg {

void
Simulator::addTicking(Ticking *component)
{
    INPG_ASSERT(component != nullptr, "registering null component");
    components.push_back(component);
}

void
Simulator::step()
{
    eventQueue.runDue(currentCycle);
    for (Ticking *c : components)
        c->tick(currentCycle);
    ++currentCycle;
}

void
Simulator::run(Cycle n)
{
    for (Cycle i = 0; i < n; ++i)
        step();
}

bool
Simulator::runUntil(const std::function<bool()> &done, Cycle max_cycles)
{
    const Cycle limit = currentCycle + max_cycles;
    while (currentCycle < limit) {
        if (done())
            return true;
        step();
    }
    return done();
}

} // namespace inpg
