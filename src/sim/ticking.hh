/**
 * @file
 * Interface for components clocked by the Simulator, plus the
 * activity contract that lets idle components leave the tick loop.
 */

#ifndef INPG_SIM_TICKING_HH
#define INPG_SIM_TICKING_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace inpg {

/**
 * Handle a registered component uses to enter and leave the simulator's
 * active set. Unbound tokens (component never registered, e.g. unit
 * tests ticking by hand) make both operations no-ops.
 *
 * The token points straight at the component's bit in the scheduler's
 * packed active bitmap (plus the active-set counter), so wake/suspend
 * are a load, a mask and a store on the hot path (Channel pushes wake
 * consumers millions of times per run). The Simulator re-binds every
 * token's word pointer whenever its slot table grows, so the pointers
 * never dangle.
 */
class SleepToken
{
  public:
    SleepToken() = default;

    /** Re-enter the active set (idempotent). */
    void
    wake()
    {
        if (word && !(*word & bit)) {
            *word |= bit;
            ++*count;
        }
    }

    /** Leave the active set (idempotent). */
    void
    suspend()
    {
        if (word && (*word & bit)) {
            *word &= ~bit;
            --*count;
        }
    }

    bool bound() const { return word != nullptr; }

  private:
    friend class Simulator;
    /** Re-binds tokens into per-domain bitmaps (sim/parallel). */
    friend class ParallelKernel;

    std::uint64_t *word = nullptr;
    std::uint64_t bit = 0;
    std::size_t *count = nullptr;
};

/**
 * A component evaluated once per simulated cycle while active.
 *
 * The simulator guarantees a fixed, registration-order evaluation
 * sequence within a cycle. Components must only exchange state through
 * latched queues or Links (which impose at least one cycle of delay), so
 * that intra-cycle ordering is never observable.
 *
 * Activity contract: every component starts active. A component may
 * call suspendSelf() from its tick() once it can prove that all its
 * future ticks would be no-ops until new input arrives -- i.e. its
 * input channels are completely empty (not merely not-ready), its
 * internal queues are drained, and it has no time-driven work pending.
 * Whoever injects new input (a Channel push, a message enqueue) must
 * wake the consumer via its SleepToken. Waking an idle component early
 * is always safe: a suspendable tick is a behavioral no-op.
 */
class Ticking
{
  public:
    virtual ~Ticking() = default;

    /** Evaluate one cycle. @param now the cycle being evaluated. */
    virtual void tick(Cycle now) = 0;

    /** Diagnostic name. */
    virtual std::string tickName() const { return "component"; }

    /** Activity handle (bound by Simulator::addTicking). */
    SleepToken &sleepToken() { return token; }

  protected:
    /** Leave the tick loop until the next wake (see class comment). */
    void suspendSelf() { token.suspend(); }

    /** Re-enter the tick loop (safe from any context). */
    void wakeSelf() { token.wake(); }

  private:
    friend class Simulator;

    SleepToken token;
};

} // namespace inpg

#endif // INPG_SIM_TICKING_HH
