/**
 * @file
 * Interface for components clocked by the Simulator, plus the
 * activity contract that lets idle components leave the tick loop.
 */

#ifndef INPG_SIM_TICKING_HH
#define INPG_SIM_TICKING_HH

#include <cstddef>
#include <string>

#include "common/types.hh"

namespace inpg {

/**
 * Scheduler side of the activity contract (implemented by Simulator).
 *
 * Components never talk to it directly; they hold a SleepToken bound at
 * registration time and call suspend()/wake() on that.
 */
class ActivityScheduler
{
  public:
    /** Put the slot back into the per-cycle tick loop. */
    virtual void wakeComponent(std::size_t slot) = 0;

    /** Remove the slot from the per-cycle tick loop. */
    virtual void suspendComponent(std::size_t slot) = 0;

  protected:
    ~ActivityScheduler() = default;
};

/**
 * Handle a registered component uses to enter and leave the simulator's
 * active set. Unbound tokens (component never registered, e.g. unit
 * tests ticking by hand) make both operations no-ops.
 */
class SleepToken
{
  public:
    SleepToken() = default;

    /** Re-enter the active set (idempotent). */
    void
    wake()
    {
        if (sched)
            sched->wakeComponent(slot);
    }

    /** Leave the active set (idempotent). */
    void
    suspend()
    {
        if (sched)
            sched->suspendComponent(slot);
    }

    bool bound() const { return sched != nullptr; }

  private:
    friend class Simulator;

    ActivityScheduler *sched = nullptr;
    std::size_t slot = 0;
};

/**
 * A component evaluated once per simulated cycle while active.
 *
 * The simulator guarantees a fixed, registration-order evaluation
 * sequence within a cycle. Components must only exchange state through
 * latched queues or Links (which impose at least one cycle of delay), so
 * that intra-cycle ordering is never observable.
 *
 * Activity contract: every component starts active. A component may
 * call suspendSelf() from its tick() once it can prove that all its
 * future ticks would be no-ops until new input arrives -- i.e. its
 * input channels are completely empty (not merely not-ready), its
 * internal queues are drained, and it has no time-driven work pending.
 * Whoever injects new input (a Channel push, a message enqueue) must
 * wake the consumer via its SleepToken. Waking an idle component early
 * is always safe: a suspendable tick is a behavioral no-op.
 */
class Ticking
{
  public:
    virtual ~Ticking() = default;

    /** Evaluate one cycle. @param now the cycle being evaluated. */
    virtual void tick(Cycle now) = 0;

    /** Diagnostic name. */
    virtual std::string tickName() const { return "component"; }

    /** Activity handle (bound by Simulator::addTicking). */
    SleepToken &sleepToken() { return token; }

  protected:
    /** Leave the tick loop until the next wake (see class comment). */
    void suspendSelf() { token.suspend(); }

    /** Re-enter the tick loop (safe from any context). */
    void wakeSelf() { token.wake(); }

  private:
    friend class Simulator;

    SleepToken token;
};

} // namespace inpg

#endif // INPG_SIM_TICKING_HH
