/**
 * @file
 * Interface for components clocked by the Simulator.
 */

#ifndef INPG_SIM_TICKING_HH
#define INPG_SIM_TICKING_HH

#include <string>

#include "common/types.hh"

namespace inpg {

/**
 * A component evaluated once per simulated cycle.
 *
 * The simulator guarantees a fixed, registration-order evaluation
 * sequence within a cycle. Components must only exchange state through
 * latched queues or Links (which impose at least one cycle of delay), so
 * that intra-cycle ordering is never observable.
 */
class Ticking
{
  public:
    virtual ~Ticking() = default;

    /** Evaluate one cycle. @param now the cycle being evaluated. */
    virtual void tick(Cycle now) = 0;

    /** Diagnostic name. */
    virtual std::string tickName() const { return "component"; }
};

} // namespace inpg

#endif // INPG_SIM_TICKING_HH
