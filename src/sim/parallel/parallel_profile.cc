#include "sim/parallel/parallel_profile.hh"

#include <algorithm>
#include <chrono> // lint:allow(nondeterminism) host-time profiling only

#include "telemetry/stats_registry.hh"

namespace inpg {

namespace {

/** Barrier-wait histogram: 256 ns bins out to ~16 us + overflow. */
constexpr std::uint64_t BARRIER_BIN_NS = 256;
constexpr std::size_t BARRIER_BINS = 64;

} // namespace

ParallelProfile::ParallelProfile(int threads, Cycle lookahead)
    : nThreads(threads), lookaheadCycles(lookahead),
      // Quantum lengths live in [1, lookahead]; width-1 bins resolve
      // every length exactly (the clamp to >= 8 costs nothing).
      quantumHist(1, std::max<std::size_t>(
                         static_cast<std::size_t>(lookahead) + 1, 8)),
      slots(static_cast<std::size_t>(threads > 1 ? threads - 1 : 0)),
      barrierWaitHist(BARRIER_BIN_NS, BARRIER_BINS)
{
}

std::uint64_t
ParallelProfile::nowNs()
{
    // Host wall-clock, never fed back into simulated state.
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>( // lint:allow(nondeterminism)
            std::chrono::steady_clock::now().time_since_epoch()) // lint:allow(nondeterminism)
            .count());
}

void
ParallelProfile::workerQuantum(std::size_t w, std::uint64_t wait_ns,
                               std::uint64_t busy_ns,
                               std::uint64_t ticks)
{
    WorkerSlot &s = slots[w];
    ++s.quanta;
    s.ticks += ticks;
    s.busyNs += busy_ns;
    s.waitNs += wait_ns;
}

void
ParallelProfile::onQuantum(Cycle len, bool barrier)
{
    ++quanta;
    cyclesStepped += len;
    quantumHist.add(len);
    if (barrier)
        ++barriers;
    else
        ++barriersElided;
}

void
ParallelProfile::coordinatorQuantum(std::uint64_t sweep_ns,
                                    std::uint64_t barrier_wait_ns,
                                    std::uint64_t merge_ns)
{
    coordSweepNs += sweep_ns;
    coordBarrierWaitNs += barrier_wait_ns;
    coordMergeNs += merge_ns;
    barrierWaitHist.add(barrier_wait_ns);
}

void
ParallelProfile::drained(std::uint64_t flits, std::uint64_t credits)
{
    drainedFlits += flits;
    drainedCredits += credits;
}

double
ParallelProfile::loadImbalance() const
{
    std::uint64_t maxBusy = 0;
    std::uint64_t sumBusy = 0;
    for (const WorkerSlot &s : slots) {
        maxBusy = std::max(maxBusy, s.busyNs);
        sumBusy += s.busyNs;
    }
    if (sumBusy == 0)
        return 0;
    const double mean =
        static_cast<double>(sumBusy) / static_cast<double>(slots.size());
    return static_cast<double>(maxBusy) / mean;
}

JsonValue
ParallelProfile::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc["threads"] = JsonValue(nThreads);
    doc["lookahead"] =
        JsonValue(static_cast<std::uint64_t>(lookaheadCycles));
    doc["quanta"] = JsonValue(quanta);
    doc["barriers"] = JsonValue(barriers);
    doc["barriers_elided"] = JsonValue(barriersElided);
    doc["cycles_stepped"] = JsonValue(cyclesStepped);
    doc["drained_flits"] = JsonValue(drainedFlits);
    doc["drained_credits"] = JsonValue(drainedCredits);
    doc["quantum_cycles"] = StatsRegistry::histogramToJson(quantumHist);
    JsonValue &ticks = doc["worker_ticks"];
    ticks = JsonValue::array();
    for (const WorkerSlot &s : slots)
        ticks.push(JsonValue(s.ticks));

    // Host wall-clock section: run-to-run noise, never diffed.
    JsonValue &host = doc["host"];
    host = JsonValue::object();
    host["coordinator_sweep_ns"] = JsonValue(coordSweepNs);
    host["coordinator_barrier_wait_ns"] = JsonValue(coordBarrierWaitNs);
    host["coordinator_merge_ns"] = JsonValue(coordMergeNs);
    JsonValue &ws = host["workers"];
    ws = JsonValue::array();
    for (const WorkerSlot &s : slots) {
        JsonValue w = JsonValue::object();
        w["quanta"] = JsonValue(s.quanta);
        w["busy_ns"] = JsonValue(s.busyNs);
        w["wait_ns"] = JsonValue(s.waitNs);
        ws.push(std::move(w));
    }
    host["load_imbalance"] = JsonValue(loadImbalance());
    host["barrier_wait_ns"] =
        StatsRegistry::histogramToJson(barrierWaitHist);
    return doc;
}

} // namespace inpg
