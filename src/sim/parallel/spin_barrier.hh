/**
 * @file
 * Coordinator/worker quantum gate for the parallel kernel.
 *
 * The parallel kernel advances the fabric domains in lockstep quanta:
 * the coordinator publishes a quantum (release), every worker sweeps
 * its domain and arrives (also release, on its own gate), and the
 * coordinator waits for all arrivals before merging boundary traffic.
 * A gate is a monotonically increasing epoch counter; release stores
 * the new epoch, await blocks until the published epoch reaches the
 * requested one. All cross-thread data (quantum bounds, domain bitmaps,
 * outboxes, telemetry logs) is plain memory ordered exclusively by the
 * release/acquire pairs on these epochs -- there is no other lock in
 * the simulator.
 *
 * Waiters spin briefly, then park on the futex behind
 * std::atomic::wait. Quanta are typically one simulated cycle
 * (microseconds of work), so the spin catches the common case on a
 * multi-core host, while the park keeps an oversubscribed host -- CI
 * containers with fewer cores than worker threads -- from melting into
 * a spin storm.
 */

#ifndef INPG_SIM_PARALLEL_SPIN_BARRIER_HH
#define INPG_SIM_PARALLEL_SPIN_BARRIER_HH

#include <atomic>
#include <cstdint>

namespace inpg {

/** One-directional epoch gate (see file comment). */
class alignas(64) QuantumGate
{
  public:
    /** Publish epoch `e`; wakes every parked waiter. */
    void
    release(std::uint64_t e)
    {
        epoch.store(e, std::memory_order_release);
        epoch.notify_all();
    }

    /** Block until the published epoch reaches `e`. */
    void
    await(std::uint64_t e) const
    {
        for (int i = 0; i < SPIN_ROUNDS; ++i) {
            if (epoch.load(std::memory_order_acquire) >= e)
                return;
        }
        std::uint64_t cur = epoch.load(std::memory_order_acquire);
        while (cur < e) {
            epoch.wait(cur, std::memory_order_acquire);
            cur = epoch.load(std::memory_order_acquire);
        }
    }

    std::uint64_t
    current() const
    {
        return epoch.load(std::memory_order_acquire);
    }

  private:
    static constexpr int SPIN_ROUNDS = 256;

    std::atomic<std::uint64_t> epoch{0};
};

} // namespace inpg

#endif // INPG_SIM_PARALLEL_SPIN_BARRIER_HH
