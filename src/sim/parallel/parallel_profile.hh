/**
 * @file
 * ParallelProfile: self-profiler for the tile-sharded kernel.
 *
 * Answers the questions the equivalence suites cannot: where does the
 * wall-clock of a parallel run actually go? The counters split into
 * two classes, kept apart in the JSON output:
 *
 *  - Deterministic counters -- quanta stepped, barriers issued vs
 *    elided, quantum-length histogram (simulated cycles), per-worker
 *    component ticks, flits/credits merged from boundary outboxes.
 *    These depend only on simulated state and are bit-identical across
 *    repeat runs at the same thread count.
 *
 *  - Host-time measurements (monotonic-clock ns) -- per-worker busy /
 *    wait time, coordinator sweep / barrier-wait / merge time, and a
 *    barrier-wait histogram. These vary run to run and are emitted
 *    under a "host" subobject so report tooling can skip them; the
 *    ledger diff in src/telemetry/report.cc never compares stats.
 *
 * Threading: per-worker slots are written only by their own worker
 * thread, strictly before the domain's arrival-gate release; the
 * coordinator reads them only between quanta (after awaiting every
 * gate) or after shutdown's join, so every read is ordered by the gate
 * acquire and no atomics are needed.
 *
 * The profiler observes, never steers: no simulated state is read back
 * from it, so simulation results are bit-identical with or without it.
 */

#ifndef INPG_SIM_PARALLEL_PARALLEL_PROFILE_HH
#define INPG_SIM_PARALLEL_PARALLEL_PROFILE_HH

#include <cstdint>
#include <vector>

#include "common/histogram.hh"
#include "common/types.hh"
#include "telemetry/json.hh"

namespace inpg {

/** Per-run execution profile of the parallel kernel; see file comment. */
class ParallelProfile
{
  public:
    /**
     * @param threads   total threads including the coordinator (>= 2)
     * @param lookahead kernel lookahead; sizes the quantum histogram
     */
    ParallelProfile(int threads, Cycle lookahead);

    /** Monotonic host clock in nanoseconds (profiling only). */
    static std::uint64_t nowNs();

    /**
     * Worker `w` (0-based, coordinator excluded) finished one quantum:
     * `wait_ns` parked at the release gate, `busy_ns` sweeping,
     * `ticks` component ticks executed. Called by the worker thread
     * itself, before its arrival-gate release.
     */
    void workerQuantum(std::size_t w, std::uint64_t wait_ns,
                       std::uint64_t busy_ns, std::uint64_t ticks);

    /**
     * Coordinator is about to step a quantum of `len` cycles;
     * `barrier` is false when the release/await round-trip was elided
     * because every fabric domain was asleep.
     */
    void onQuantum(Cycle len, bool barrier);

    /**
     * Coordinator-side timings for the quantum just stepped: own sweep
     * (events + domain-0 components), wait for worker arrival gates
     * (0 when the barrier was elided), and outbox-drain + telemetry
     * replay.
     */
    void coordinatorQuantum(std::uint64_t sweep_ns,
                            std::uint64_t barrier_wait_ns,
                            std::uint64_t merge_ns);

    /** Boundary traffic merged by one drainOutboxes() pass. */
    void drained(std::uint64_t flits, std::uint64_t credits);

    /**
     * Max / mean of per-worker busy ns -- 1.0 is a perfectly balanced
     * fabric partition, 0 when no worker ever ran.
     */
    double loadImbalance() const;

    std::uint64_t quantaCount() const { return quanta; }
    std::uint64_t barrierCount() const { return barriers; }
    std::uint64_t barriersElidedCount() const { return barriersElided; }

    /**
     * Full profile document: deterministic counters at the top level,
     * host-time measurements under "host" (see file comment).
     */
    JsonValue toJson() const;

  private:
    /** One worker thread's tally; written only by that thread. */
    struct WorkerSlot {
        std::uint64_t quanta = 0;
        std::uint64_t ticks = 0;
        std::uint64_t busyNs = 0;
        std::uint64_t waitNs = 0;
    };

    int nThreads;
    Cycle lookaheadCycles;

    // Deterministic (simulated-state-driven) counters.
    std::uint64_t quanta = 0;
    std::uint64_t barriers = 0;
    std::uint64_t barriersElided = 0;
    std::uint64_t cyclesStepped = 0;
    std::uint64_t drainedFlits = 0;
    std::uint64_t drainedCredits = 0;
    Histogram quantumHist;

    // Host-time measurements (ns).
    std::vector<WorkerSlot> slots;
    std::uint64_t coordSweepNs = 0;
    std::uint64_t coordBarrierWaitNs = 0;
    std::uint64_t coordMergeNs = 0;
    Histogram barrierWaitHist;
};

} // namespace inpg

#endif // INPG_SIM_PARALLEL_PARALLEL_PROFILE_HH
