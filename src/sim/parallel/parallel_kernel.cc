#include "sim/parallel/parallel_kernel.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "noc/network.hh"
#include "noc/router.hh"
#include "sim/simulator.hh"
#include "telemetry/telemetry.hh"

namespace inpg {

namespace {

/**
 * Coordinator router share from the measured hotpath phase split
 * (BENCH_hotpath.json, 8x8 optimized: routers ~77% of cycle time,
 * events+NIs+dirs ~23%). The coordinator always carries the non-router
 * load, so it keeps the router fraction x that equalizes
 * coordinator (O + R*x) and worker (R * (1 - x) / W) per-quantum work.
 * Pure arithmetic on constants: the partition is deterministic.
 */
std::size_t
coordinatorShare(std::size_t eligible, int threads)
{
    constexpr double R = 0.77; // router fraction of a hot cycle
    constexpr double O = 0.23; // everything the coordinator must own
    const int w = threads - 1;
    double x = (R - O * static_cast<double>(w)) /
               (R * static_cast<double>(threads));
    x = std::clamp(x, 0.0, 1.0);
    return static_cast<std::size_t>(
        std::lround(x * static_cast<double>(eligible)));
}

} // namespace

ParallelKernel::ParallelKernel(Simulator &sim_, Network &net_,
                               int threads)
    : sim(sim_), net(net_), nThreads(threads)
{
    INPG_ASSERT(threads >= 2,
                "ParallelKernel needs >= 2 threads; threads=1 is the "
                "serial kernel");
    const NocConfig &cfg = net.config();
    lookaheadCycles =
        std::min<Cycle>(cfg.linkLatency + 1, cfg.creditLatency);
    INPG_ASSERT(lookaheadCycles >= 1, "degenerate lookahead");

    // Fabric-eligible components: plain routers only. BigRouters pin
    // to the coordinator (they mutate packets, allocate from the
    // network's id space, and feed the flight recorder / LCO sinks);
    // so does everything that isn't a router.
    std::vector<NodeId> eligible;
    for (NodeId id = 0; id < net.numRouters(); ++id)
        if (!net.router(id).isBigRouter())
            eligible.push_back(id);

    const int nWorkers = nThreads - 1;
    domains.resize(static_cast<std::size_t>(nWorkers));

    // Contiguous router-id stripes (row bands of the router grid)
    // minimize boundary channels; the coordinator keeps the first
    // coordinatorShare() routers, workers split the rest evenly. On a
    // torus the wraparound links are just more boundary channels --
    // the outbox/merge path handles them like any other cross-domain
    // edge, so no special casing is needed.
    std::vector<int> domainByNode(
        static_cast<std::size_t>(net.numRouters()), 0);
    const std::size_t keep = coordinatorShare(eligible.size(), nThreads);
    const std::size_t rem = eligible.size() - keep;
    std::size_t cursor = keep;
    for (int w = 0; w < nWorkers; ++w) {
        std::size_t len = rem / static_cast<std::size_t>(nWorkers) +
                          (static_cast<std::size_t>(w) <
                                   rem % static_cast<std::size_t>(nWorkers)
                               ? 1
                               : 0);
        for (std::size_t i = 0; i < len; ++i, ++cursor)
            domainByNode[static_cast<std::size_t>(eligible[cursor])] =
                w + 1;
    }
    INPG_ASSERT(cursor == eligible.size(), "partition missed routers");

    // Steal fabric routers out of the serial active set. Ascending
    // node id preserves the serial relative tick order inside each
    // domain (routers register in node order).
    for (NodeId id : eligible) {
        const int dom = domainByNode[static_cast<std::size_t>(id)];
        if (dom == 0)
            continue;
        Router &r = net.router(id);
        adopt(&r, dom);
        r.setPacketTelLog(&domains[static_cast<std::size_t>(dom - 1)]
                               .telLog);
    }
    for (Domain &d : domains)
        rebindDomainTokens(d);

    classifyBoundaries(net, domainByNode);

    sim.attachParallel(this);

    // Built before the workers spawn so every quantum is profiled.
    prof = std::make_unique<ParallelProfile>(nThreads, lookaheadCycles);

    workers.reserve(static_cast<std::size_t>(nWorkers));
    for (int w = 0; w < nWorkers; ++w)
        workers.emplace_back(
            [this, w] { workerLoop(static_cast<std::size_t>(w)); });
}

ParallelKernel::~ParallelKernel() { shutdown(); }

void
ParallelKernel::adopt(Router *comp, int domain)
{
    SleepToken &tok = comp->sleepToken();
    INPG_ASSERT(tok.bound(),
                "stealing a component that never registered");
    std::size_t slot = sim.slots.size();
    for (std::size_t i = 0; i < sim.slots.size(); ++i) {
        if (sim.slots[i].component == comp) {
            slot = i;
            break;
        }
    }
    INPG_ASSERT(slot < sim.slots.size(),
                "stolen component not registered with this simulator");
    const bool wasActive = (*tok.word & tok.bit) != 0;
    tok.suspend(); // drop out of the serial sweep
    Domain &d = domains[static_cast<std::size_t>(domain - 1)];
    const std::size_t idx = d.comps.size();
    d.comps.push_back(comp);
    if ((idx >> 6) >= d.bits.size())
        d.bits.push_back(0);
    if (wasActive) {
        d.bits[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        ++d.activeCount;
    }
    stolen.push_back(StolenSlot{comp, slot, domain});
}

void
ParallelKernel::rebindDomainTokens(Domain &d)
{
    // Deferred until the domain stops growing: d.bits reallocation
    // would dangle any pointer bound mid-adoption.
    for (std::size_t i = 0; i < d.comps.size(); ++i) {
        SleepToken &tok = d.comps[i]->sleepToken();
        tok.word = &d.bits[i >> 6];
        tok.bit = std::uint64_t{1} << (i & 63);
        tok.count = &d.activeCount;
    }
}

void
ParallelKernel::classifyBoundaries(Network &network,
                                   const std::vector<int> &domainByNode)
{
    // Map channel sinks to domains: routers by node id, every other
    // component (NIs feed the coordinator) is domain 0.
    std::vector<std::pair<const Ticking *, int>> routerDomain;
    routerDomain.reserve(
        static_cast<std::size_t>(network.numRouters()));
    for (NodeId id = 0; id < network.numRouters(); ++id)
        routerDomain.emplace_back(
            &network.router(id),
            domainByNode[static_cast<std::size_t>(id)]);
    std::sort(routerDomain.begin(), routerDomain.end());
    auto domainOf = [&](const Ticking *t) {
        if (!t)
            return 0;
        auto it = std::lower_bound(
            routerDomain.begin(), routerDomain.end(),
            std::make_pair(t, 0),
            [](const auto &a, const auto &b) { return a.first < b.first; });
        return (it != routerDomain.end() && it->first == t) ? it->second
                                                            : 0;
    };

    const auto &channels = network.allChannels();
    std::size_t n = 0;
    for (const auto &ch : channels)
        if (domainOf(ch->flitSinkComponent()) !=
            domainOf(ch->creditSinkComponent()))
            ++n;
    boundaries.reserve(n); // outbox addresses must stay stable
    for (const auto &ch : channels) {
        if (domainOf(ch->flitSinkComponent()) ==
            domainOf(ch->creditSinkComponent()))
            continue;
        boundaries.push_back(Boundary{ch.get(), ChannelOutbox{}});
        ch->setOutbox(&boundaries.back().box);
    }
}

std::size_t
ParallelKernel::fabricActive() const
{
    // Plain reads: only valid between quanta, when every worker is
    // parked (ordered by the per-domain arrival gates).
    std::size_t n = 0;
    for (const Domain &d : domains)
        n += d.activeCount;
    return n;
}

void
ParallelKernel::workerLoop(std::size_t d)
{
    Domain &dom = domains[d];
    std::uint64_t epoch = 0;
    for (;;) {
        ++epoch;
        const std::uint64_t t0 = ParallelProfile::nowNs();
        go.await(epoch);
        if (stopFlag.load(std::memory_order_acquire)) {
            dom.done.release(epoch);
            return;
        }
        const std::uint64_t t1 = ParallelProfile::nowNs();
        const std::uint64_t ticks =
            sweepDomain(dom, quantumBase, quantumLen);
        // Recorded before the gate release: the coordinator's await
        // acquires these writes, so it may read them between quanta.
        prof->workerQuantum(d, t1 - t0, ParallelProfile::nowNs() - t1,
                            ticks);
        dom.done.release(epoch);
    }
}

std::uint64_t
ParallelKernel::sweepDomain(Domain &d, Cycle base, Cycle quantum)
{
    // Same cursor-mask sweep as the serial kernel: live word re-read
    // so a forward wake inside the domain runs this same cycle,
    // retired bits wait for the next cycle.
    std::uint64_t ticks = 0;
    for (Cycle c = 0; c < quantum; ++c) {
        const Cycle now = base + c;
        for (std::size_t w = 0; w < d.bits.size(); ++w) {
            std::uint64_t eligible = ~std::uint64_t{0};
            std::uint64_t m;
            while ((m = d.bits[w] & eligible) != 0) {
                const std::size_t b =
                    static_cast<std::size_t>(std::countr_zero(m));
                eligible &= ~std::uint64_t{0} << 1 << b;
                d.comps[(w << 6) + b]->tick(now);
                ++ticks;
            }
        }
    }
    return ticks;
}

void
ParallelKernel::step(Cycle quantum)
{
    INPG_ASSERT(sim.profile == nullptr,
                "host phase profiling requires the serial kernel "
                "(--threads=1)");
    Cycle q = quantum;
    // Diagnosis observers sample per executed cycle; their view must
    // match the serial kernel's, so their presence pins the quantum.
    if (sim.sampler || sim.wdog)
        q = 1;
    q = std::clamp<Cycle>(q, 1, lookaheadCycles);

    // Elide the barrier round-trip while every fabric domain sleeps;
    // the coordinator's own merge below can wake them back up.
    const bool fabricBusy = fabricActive() != 0;
    prof->onQuantum(q, fabricBusy);
    if (fabricBusy) {
        ++seq;
        quantumBase = sim.currentCycle;
        quantumLen = q;
        go.release(seq);
    }
    const std::uint64_t tSweep = ParallelProfile::nowNs();
    for (Cycle i = 0;;) {
        sim.runEventPhase();
        sim.sweepActive();
        if (++i >= q)
            break;
        ++sim.currentCycle;
    }
    const std::uint64_t tBarrier = ParallelProfile::nowNs();
    if (fabricBusy) {
        for (Domain &d : domains)
            d.done.await(seq);
    }
    const std::uint64_t tMerge = ParallelProfile::nowNs();
    drainOutboxes();
    replayTelLogs();
    prof->coordinatorQuantum(tBarrier - tSweep,
                             fabricBusy ? tMerge - tBarrier : 0,
                             ParallelProfile::nowNs() - tMerge);
    if (sim.sampler)
        sim.sampler->onCycle(sim.currentCycle);
    if (sim.wdog)
        sim.wdog->onCycle(sim.currentCycle);
    ++sim.currentCycle;
}

void
ParallelKernel::drainOutboxes()
{
    // Deterministic merge: fixed channel order, FIFO within each
    // channel (single producer per direction), and every re-push
    // carries its original cycle so DelayLine delivery cycles -- and
    // the sink wakes -- are exactly the serial ones.
    std::uint64_t flits = 0;
    std::uint64_t credits = 0;
    for (Boundary &b : boundaries) {
        if (b.box.empty())
            continue;
        Channel *ch = b.channel;
        ch->setOutbox(nullptr);
        flits += b.box.flits.size();
        credits += b.box.credits.size();
        for (auto &e : b.box.flits)
            ch->pushFlit(std::move(e.second), e.first);
        for (auto &e : b.box.credits)
            ch->pushCredit(e.second, e.first);
        b.box.flits.clear();
        b.box.credits.clear();
        ch->setOutbox(&b.box);
    }
    if (flits || credits)
        prof->drained(flits, credits);
}

void
ParallelKernel::replayTelLogs()
{
    // Fabric routers defer packet-lifetime hooks into per-domain logs
    // (the tracker's map lives on the coordinator). Replay order
    // across domains is immaterial: one packet occupies one router per
    // cycle, so its ops land in a single domain log in program order,
    // and ops of different packets touch disjoint records.
    for (Domain &d : domains) {
        if (d.telLog.empty())
            continue;
        for (const PacketTelOp &op : d.telLog) {
            PacketLifetimeTracker *t =
                net.router(op.router).packetTracker();
            INPG_ASSERT(t != nullptr, "deferred op without tracker");
            t->apply(op);
        }
        d.telLog.clear();
    }
}

void
ParallelKernel::shutdown()
{
    if (joined)
        return;
    stopFlag.store(true, std::memory_order_release);
    ++seq;
    go.release(seq);
    for (std::thread &t : workers)
        if (t.joinable())
            t.join();
    workers.clear();
    joined = true;

    // Flush any unmerged traffic (normally none: shutdown happens
    // between quanta, after the merge), then undo the diversion.
    drainOutboxes();
    replayTelLogs();
    for (Boundary &b : boundaries)
        b.channel->setOutbox(nullptr);

    // Hand every stolen component back to the serial kernel with its
    // activity preserved; subsequent serial stepping is bit-identical
    // to a kernel that was never sharded.
    for (const StolenSlot &s : stolen) {
        SleepToken &tok = s.comp->sleepToken();
        const bool active = (*tok.word & tok.bit) != 0;
        if (active)
            tok.suspend();
        tok.word = &sim.activeBits[s.mainSlot >> 6];
        tok.bit = std::uint64_t{1} << (s.mainSlot & 63);
        tok.count = &sim.activeCount;
        if (active)
            tok.wake();
        s.comp->setPacketTelLog(nullptr);
    }
    stolen.clear();
    sim.attachParallel(nullptr);
}

} // namespace inpg
