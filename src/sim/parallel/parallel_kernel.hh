/**
 * @file
 * ParallelKernel: tile-sharded execution mode for the simulation
 * kernel.
 *
 * The mesh is partitioned into per-thread tiles ("fabric domains") of
 * plain routers; every protocol component -- NIs, L1s, directories,
 * memory controllers, locks, thread contexts, the workload, and every
 * BigRouter -- stays on the coordinator (domain 0, the calling
 * thread), which also owns the event queue. Plain routers are pure
 * dataflow machines: they never schedule events, never allocate
 * packets, and only talk to their channels, so a fabric domain needs
 * no event-queue shard and no allocator -- the per-edge outbox
 * mailboxes carry the only cross-tile traffic (flits and credits).
 *
 * Each quantum the coordinator releases the workers, sweeps its own
 * active set (events + domain-0 components) for the same cycles,
 * waits for all workers to arrive, then merges: boundary-channel
 * outboxes are drained in deterministic channel order (each re-push
 * carries the original push cycle, so delivery cycles are exactly the
 * serial ones), and deferred packet-telemetry ops are replayed into
 * the tracker. The quantum length is bounded by the conservative
 * lookahead min(linkLatency + 1, creditLatency): no cross-domain item
 * pushed inside a quantum can become deliverable before the quantum
 * ends, so the merge is never late. Diagnosis observers (timeseries
 * sampler, progress watchdog) and runUntil predicates must see every
 * executed cycle, so their presence clamps the quantum to one cycle.
 *
 * Determinism: at every quantum boundary the simulated state --
 * channel contents, active sets, telemetry -- is identical to the
 * serial kernel's state at that cycle. The only elided difference is
 * that a component woken mid-cycle by a cross-domain push wakes at the
 * merge instead; the skipped ticks are provably behavioral no-ops
 * (router and NI ticks early-out without mutating arbiter state when
 * nothing is buffered), and the post-merge active set matches the
 * serial one bit for bit. tests/test_parallel_kernel.cc holds the
 * fingerprint, stats-JSON, and hang-report equivalence suites.
 */

#ifndef INPG_SIM_PARALLEL_PARALLEL_KERNEL_HH
#define INPG_SIM_PARALLEL_PARALLEL_KERNEL_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/types.hh"
#include "noc/link.hh"
#include "sim/parallel/parallel_profile.hh"
#include "sim/parallel/spin_barrier.hh"
#include "telemetry/packet_lifetime.hh"

namespace inpg {

class Network;
class Router;
class Simulator;
class Ticking;

/** Tile-sharded parallel stepper; see file comment. */
class ParallelKernel
{
  public:
    /**
     * Shard `net`'s plain routers across `threads - 1` worker domains
     * (the coordinator keeps a load-balancing share), divert every
     * boundary channel through an outbox, and attach to `sim` so
     * step()/run()/runUntil() delegate to quantum stepping. threads
     * must be >= 2; the serial kernel IS the threads == 1 path.
     *
     * All components must already be registered with `sim`; the
     * simulator rejects addTicking() while a parallel kernel is
     * attached.
     */
    ParallelKernel(Simulator &sim, Network &net, int threads);

    ~ParallelKernel();

    ParallelKernel(const ParallelKernel &) = delete;
    ParallelKernel &operator=(const ParallelKernel &) = delete;

    /**
     * Join the workers and hand every stolen component back to the
     * serial kernel (bits, counts and sleep tokens restored), leaving
     * the simulator in a state bit-identical to a serial kernel that
     * executed the same cycles. Idempotent; runs automatically at
     * destruction.
     */
    void shutdown();

    /** Advance up to `quantum` cycles (clamped to the lookahead). */
    void step(Cycle quantum);

    /** Total threads, including the coordinator. */
    int threads() const { return nThreads; }

    /**
     * Conservative lookahead in cycles: the minimum latency of any
     * cross-domain pipe, i.e. min(linkLatency + 1, creditLatency).
     * A quantum never exceeds it.
     */
    Cycle lookahead() const { return lookaheadCycles; }

    /** Stolen components currently awake across all fabric domains. */
    std::size_t fabricActive() const;

    /** Channels whose endpoints live in different domains. */
    std::size_t boundaryChannels() const { return boundaries.size(); }

    /** Components stolen into fabric domains. */
    std::size_t stolenComponents() const { return stolen.size(); }

    /**
     * Execution self-profile (always collected; the overhead is a few
     * clock reads per quantum). Stable to read between quanta and
     * after shutdown.
     */
    const ParallelProfile &profile() const { return *prof; }

  private:
    /** One worker thread's tile: components, active set, arrival gate. */
    struct Domain {
        std::vector<Ticking *> comps;
        std::vector<std::uint64_t> bits;
        std::size_t activeCount = 0;
        /** Deferred packet-telemetry ops, replayed at the merge. */
        std::vector<PacketTelOp> telLog;
        QuantumGate done;
    };

    /** A cross-domain channel and its diversion mailbox. */
    struct Boundary {
        Channel *channel = nullptr;
        ChannelOutbox box;
    };

    /** Steal record so shutdown() can restore the serial binding. */
    struct StolenSlot {
        Router *comp = nullptr;
        std::size_t mainSlot = 0;
        int domain = 0;
    };

    void adopt(Router *comp, int domain);
    void rebindDomainTokens(Domain &d);
    void classifyBoundaries(Network &net,
                            const std::vector<int> &domainByNode);
    void workerLoop(std::size_t d);
    std::uint64_t sweepDomain(Domain &d, Cycle base, Cycle quantum);
    void drainOutboxes();
    void replayTelLogs();

    Simulator &sim;
    Network &net;
    int nThreads;
    Cycle lookaheadCycles = 1;

    // deque, not vector: Domain holds a QuantumGate (atomics) and is
    // therefore immovable; deque grows without relocating elements.
    std::deque<Domain> domains;
    std::vector<Boundary> boundaries;
    std::vector<StolenSlot> stolen;
    std::vector<std::thread> workers;

    /** Quantum bounds, published to workers by the `go` release. */
    Cycle quantumBase = 0;
    Cycle quantumLen = 1;

    QuantumGate go;
    std::uint64_t seq = 0;
    std::atomic<bool> stopFlag{false};
    bool joined = false;

    std::unique_ptr<ParallelProfile> prof;
};

} // namespace inpg

#endif // INPG_SIM_PARALLEL_PARALLEL_KERNEL_HH
