#include "sim/event_queue.hh"

#include <utility>

#include "common/logging.hh"

namespace inpg {

void
EventQueue::schedule(Cycle when, Callback fn)
{
    INPG_ASSERT(fn != nullptr, "scheduling a null callback");
    heap.push(Entry{when, nextSeq++, std::move(fn)});
}

Cycle
EventQueue::nextEventCycle() const
{
    return heap.empty() ? CYCLE_NEVER : heap.top().when;
}

void
EventQueue::runDue(Cycle now)
{
    while (!heap.empty() && heap.top().when <= now) {
        // Move the callback out before popping so that callbacks may
        // schedule new events (which mutates the heap).
        Callback fn = std::move(const_cast<Entry &>(heap.top()).fn);
        heap.pop();
        fn();
    }
}

void
EventQueue::clear()
{
    while (!heap.empty())
        heap.pop();
}

} // namespace inpg
