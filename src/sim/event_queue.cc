#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/logging.hh"

namespace inpg {

void
EventQueue::schedule(Cycle when, Callback fn)
{
    INPG_ASSERT(fn != nullptr, "scheduling a null callback");
    ++statScheduled;
    if (!fn.isInline())
        ++statHeapAllocs;

    if (refMode) {
        ++statHeapAllocs; // the reference design boxes every callback
        refHeap.push_back(
            RefEntry{when, nextSeq++,
                     std::make_unique<Callback>(std::move(fn))});
        std::push_heap(refHeap.begin(), refHeap.end(), RefLater{});
        ++count;
        return;
    }

    // Components may legally schedule "at now" from the tick phase,
    // after runDue(now) already advanced wheelBase to now + 1.
    INPG_ASSERT(when + 1 >= wheelBase, "scheduling into the past");

    Entry e{when, nextSeq++, std::move(fn)};
    if (when + 1 == wheelBase) {
        stale.push_back(std::move(e));
    } else if (when - wheelBase < WHEEL_SIZE) {
        pushWheel(std::move(e));
    } else {
        ++statOverflow;
        overflow.push_back(std::move(e));
        std::push_heap(overflow.begin(), overflow.end(), Later{});
    }
    ++count;
}

void
EventQueue::pushWheel(Entry &&e)
{
    const Cycle when = e.when;
    const std::size_t idx = static_cast<std::size_t>(when & WHEEL_MASK);
    buckets[idx].push_back(std::move(e));
    occupied[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    ++wheelCount;
    if (wheelNextCacheValid && when < wheelNextCache)
        wheelNextCache = when;
}

Cycle
EventQueue::wheelNextCycle() const
{
    if (wheelCount == 0)
        return CYCLE_NEVER;
    if (wheelNextCacheValid)
        return wheelNextCache;
    // Scan the occupancy bitmap from the base index; buckets hold
    // exactly one cycle's entries, so the first set bit at or after
    // the base is the earliest wheel event, and bits before the base
    // belong to the window's next lap.
    const std::size_t base = static_cast<std::size_t>(wheelBase & WHEEL_MASK);
    const std::size_t baseWord = base >> 6;
    for (std::size_t w = 0; w <= OCC_WORDS; ++w) {
        const std::size_t word = (baseWord + w) & (OCC_WORDS - 1);
        std::uint64_t bits = occupied[word];
        if (w == 0)
            bits &= ~std::uint64_t{0} << (base & 63);
        else if (w == OCC_WORDS)
            bits &= (std::uint64_t{1} << (base & 63)) - 1;
        if (!bits)
            continue;
        const std::size_t idx =
            (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
        // Map the bucket index back to an absolute cycle in
        // [wheelBase, wheelBase + WHEEL_SIZE). Absolute cycles stay
        // correct across advanceBaseTo, so the cache survives window
        // slides.
        const Cycle offset = (static_cast<Cycle>(idx) - wheelBase) &
                             WHEEL_MASK;
        wheelNextCache = wheelBase + offset;
        wheelNextCacheValid = true;
        return wheelNextCache;
    }
    return CYCLE_NEVER;
}

Cycle
EventQueue::nextEventCycle() const
{
    if (count == 0)
        return CYCLE_NEVER;
    if (refMode)
        return refHeap.front().when;
    if (!stale.empty())
        return stale.front().when;
    const Cycle wheelNext = wheelNextCycle();
    const Cycle overflowNext =
        overflow.empty() ? CYCLE_NEVER : overflow.front().when;
    return std::min(wheelNext, overflowNext);
}

void
EventQueue::promoteOverflow()
{
    // Pop in (when, seq) order so promoted entries land in their bucket
    // in exactly the order the reference heap would drain them. Any
    // direct schedule() into that bucket can only happen after the
    // cycle entered the window -- i.e. after this promotion -- so it
    // carries a higher seq and correctly sorts behind.
    while (!overflow.empty() &&
           overflow.front().when - wheelBase < WHEEL_SIZE) {
        std::pop_heap(overflow.begin(), overflow.end(), Later{});
        pushWheel(std::move(overflow.back()));
        overflow.pop_back();
    }
}

void
EventQueue::advanceBaseTo(Cycle base)
{
    if (base <= wheelBase)
        return;
    INPG_ASSERT(wheelCount == 0 || wheelNextCycle() >= base,
                "advancing wheel base past pending events");
    wheelBase = base;
    promoteOverflow();
}

void
EventQueue::drainStale()
{
    // Stale entries were scheduled at wheelBase - 1, strictly before
    // every wheel/overflow event, and their seq order is insertion
    // order -- running them front-to-back preserves global FIFO.
    for (std::size_t i = 0; i < stale.size(); ++i) {
        Callback fn = std::move(stale[i].fn);
        --count;
        ++statExecuted;
        fn(); // may re-enter schedule(), possibly appending to stale
    }
    stale.clear();
}

void
EventQueue::runDue(Cycle now)
{
    if (refMode) {
        runDueReference(now);
        return;
    }

    drainStale();

    while (count > 0) {
        const Cycle wheelNext = wheelNextCycle();
        const Cycle overflowNext =
            overflow.empty() ? CYCLE_NEVER : overflow.front().when;
        const Cycle next = std::min(wheelNext, overflowNext);
        if (next > now)
            break;

        // Advance the window to `next` first so overflow entries for
        // this cycle are promoted into the live bucket before we sweep
        // it, and callbacks scheduling "at next" append to the same
        // bucket the index loop below is walking.
        advanceBaseTo(next);

        const std::size_t idx =
            static_cast<std::size_t>(next & WHEEL_MASK);
        auto &bucket = buckets[idx];
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            Callback fn = std::move(bucket[i].fn);
            --count;
            --wheelCount;
            ++statExecuted;
            fn(); // may push_back into `bucket`
        }
        bucket.clear();
        occupied[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
        wheelNextCacheValid = false;

        // Step past the drained cycle before promoting again so an
        // overflow entry at next + WHEEL_SIZE cannot share the bucket.
        advanceBaseTo(next + 1);
    }

    advanceBaseTo(now + 1);
}

void
EventQueue::runDueReference(Cycle now)
{
    while (!refHeap.empty() && refHeap.front().when <= now) {
        std::pop_heap(refHeap.begin(), refHeap.end(), RefLater{});
        std::unique_ptr<Callback> fn = std::move(refHeap.back().fn);
        refHeap.pop_back();
        --count;
        ++statExecuted;
        (*fn)();
    }
}

void
EventQueue::clear()
{
    for (std::size_t w = 0; w < OCC_WORDS; ++w) {
        std::uint64_t bits = occupied[w];
        occupied[w] = 0;
        while (bits) {
            const std::size_t idx =
                (w << 6) +
                static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            buckets[idx].clear();
        }
    }
    overflow.clear();
    stale.clear();
    refHeap.clear();
    wheelCount = 0;
    count = 0;
    wheelNextCacheValid = false;
}

void
EventQueue::setReferenceMode(bool enabled)
{
    INPG_ASSERT(count == 0, "switching scheduler mode on a live queue");
    refMode = enabled;
}

JsonValue
EventQueue::debugJson() const
{
    JsonValue out = JsonValue::object();
    out["pending"] = static_cast<std::uint64_t>(count);
    const Cycle next = nextEventCycle();
    if (next == CYCLE_NEVER)
        out["next_event"] = "never";
    else
        out["next_event"] = static_cast<std::uint64_t>(next);
    out["scheduled_total"] = statScheduled;
    out["executed_total"] = statExecuted;
    out["overflow_scheduled"] = statOverflow;
    out["schedule_heap_allocs"] = statHeapAllocs;
    out["mode"] = refMode ? "reference-heap" : "timing-wheel";
    return out;
}

} // namespace inpg
