/**
 * @file
 * Deterministic discrete-event queue complementing the cycle loop.
 *
 * Timed callbacks model fixed-latency activities that need no per-cycle
 * evaluation: cache array access completion, thread sleep/wakeup, CS body
 * execution. Events scheduled for the same cycle fire in scheduling
 * order (FIFO), which keeps runs reproducible.
 */

#ifndef INPG_SIM_EVENT_QUEUE_HH
#define INPG_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace inpg {

/** Min-heap of (cycle, insertion-sequence) ordered callbacks. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule a callback at an absolute cycle (>= current). */
    void schedule(Cycle when, Callback fn);

    /** Earliest pending event cycle, or CYCLE_NEVER when empty. */
    Cycle nextEventCycle() const;

    /** Number of pending events. */
    std::size_t size() const { return heap.size(); }

    bool empty() const { return heap.empty(); }

    /**
     * Run every event scheduled at or before `now`, including events that
     * those callbacks schedule for `now` itself.
     */
    void runDue(Cycle now);

    /** Drop all pending events. */
    void clear();

  private:
    struct Entry {
        Cycle when;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    std::uint64_t nextSeq = 0;
};

} // namespace inpg

#endif // INPG_SIM_EVENT_QUEUE_HH
