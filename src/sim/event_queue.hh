/**
 * @file
 * Deterministic discrete-event queue complementing the cycle loop.
 *
 * Timed callbacks model fixed-latency activities that need no per-cycle
 * evaluation: cache array access completion, thread sleep/wakeup, CS body
 * execution. Events scheduled for the same cycle fire in scheduling
 * order (FIFO), which keeps runs reproducible.
 *
 * Implementation: a single-level timing wheel of WHEEL_SIZE power-of-two
 * buckets covering the cycles [wheelBase, wheelBase + WHEEL_SIZE), with
 * a min-heap overflow for events beyond the window. Short-latency events
 * (the steady-state protocol traffic: L1/L2 access completion, link
 * hops) resolve to one array index with no comparisons; long sleeps park
 * in the overflow heap and are promoted exactly once when the window
 * reaches them. Callbacks are SmallCallback (small-buffer optimized), so
 * the schedule path performs no heap allocation.
 *
 * Execution order is bit-identical to a (cycle, insertion-sequence)
 * min-heap: buckets are drained in cycle order; within a bucket, entries
 * promoted from the overflow heap (popped in (cycle, seq) order) always
 * precede directly-scheduled entries (which, by the window invariant,
 * were scheduled later and thus carry higher sequence numbers).
 *
 * setReferenceMode(true) switches an (empty) queue to the pre-wheel
 * design -- a binary heap of heap-allocated callbacks -- kept as the
 * differential-testing and benchmarking baseline.
 *
 * Threading: the queue is single-threaded and stays whole under the
 * parallel kernel (src/sim/parallel). Every event scheduler -- NIs,
 * L1s, directories, locks, workload, BigRouters -- lives on the
 * coordinator thread; plain fabric routers never schedule events, so
 * a per-tile queue shard would always be empty and cross-tile
 * schedule() routing never arises (DESIGN.md Section 11).
 */

#ifndef INPG_SIM_EVENT_QUEUE_HH
#define INPG_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/small_function.hh"
#include "common/types.hh"
#include "telemetry/json.hh"

namespace inpg {

/** Timing-wheel event queue; FIFO within a cycle (see file comment). */
class EventQueue
{
  public:
    using Callback = SmallCallback;

    /**
     * Schedule a callback at an absolute cycle. `when` must be no
     * earlier than the cycle of the most recent runDue() call (events
     * scheduled *at* that cycle from outside runDue fire on its next
     * invocation, exactly as with the reference heap).
     */
    void schedule(Cycle when, Callback fn);

    /** Earliest pending event cycle, or CYCLE_NEVER when empty. */
    Cycle nextEventCycle() const;

    /** Number of pending events. */
    std::size_t size() const { return count; }

    bool empty() const { return count == 0; }

    /**
     * Run every event scheduled at or before `now`, including events
     * that those callbacks schedule for cycles <= `now`. Successive
     * calls must use non-decreasing `now`.
     */
    void runDue(Cycle now);

    /** Drop all pending events (O(occupied buckets), not O(n log n)). */
    void clear();

    /**
     * Switch to/from the reference binary-heap scheduler (pre-wheel
     * behavior, one heap allocation per schedule). Only legal while the
     * queue is empty. For A/B benchmarking and differential tests.
     */
    void setReferenceMode(bool enabled);

    bool referenceMode() const { return refMode; }

    // ---- schedule-path instrumentation (host-side, free counters) ----

    /** Events scheduled over the queue's lifetime. */
    std::uint64_t scheduledTotal() const { return statScheduled; }

    /** Events executed over the queue's lifetime. */
    std::uint64_t executedTotal() const { return statExecuted; }

    /**
     * Heap allocations performed on the schedule path: callbacks too
     * large for the SmallCallback inline buffer, plus (in reference
     * mode) the per-entry callback box. Zero in steady-state wheel
     * operation.
     */
    std::uint64_t scheduleHeapAllocs() const { return statHeapAllocs; }

    /** Events that took the far-future overflow heap path. */
    std::uint64_t overflowScheduled() const { return statOverflow; }

    /**
     * Queue summary for the hang report: pending/next-event state plus
     * lifetime schedule-path statistics.
     */
    JsonValue debugJson() const;

  private:
    static constexpr std::size_t WHEEL_BITS = 8;
    static constexpr std::size_t WHEEL_SIZE = std::size_t{1} << WHEEL_BITS;
    static constexpr Cycle WHEEL_MASK = WHEEL_SIZE - 1;
    static constexpr std::size_t OCC_WORDS = WHEEL_SIZE / 64;

    struct Entry {
        Cycle when;
        std::uint64_t seq;
        Callback fn;
    };

    /** Min-first on (when, seq) for std::push_heap/pop_heap. */
    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    struct RefEntry {
        Cycle when;
        std::uint64_t seq;
        std::unique_ptr<Callback> fn;
    };

    struct RefLater {
        bool
        operator()(const RefEntry &a, const RefEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void pushWheel(Entry &&e);
    void advanceBaseTo(Cycle base);
    void promoteOverflow();
    Cycle wheelNextCycle() const;
    void drainStale();
    void runDueReference(Cycle now);

    std::array<std::vector<Entry>, WHEEL_SIZE> buckets;
    std::array<std::uint64_t, OCC_WORDS> occupied{};
    std::vector<Entry> overflow; ///< binary min-heap on (when, seq)
    /**
     * Events scheduled at wheelBase - 1 (a component scheduling "at
     * now" during the tick phase, after runDue(now) already advanced
     * the window); they run first on the next runDue, in seq order.
     */
    std::vector<Entry> stale;
    Cycle wheelBase = 0;
    std::size_t wheelCount = 0;

    /**
     * Cached result of wheelNextCycle()'s bitmap scan. Kept as a min on
     * every wheel insert, invalidated when a bucket is drained; the
     * steady-state "anything due this cycle?" probe then costs one
     * compare instead of a sweep over the occupancy words.
     */
    mutable Cycle wheelNextCache = CYCLE_NEVER;
    mutable bool wheelNextCacheValid = false;
    std::size_t count = 0;
    std::uint64_t nextSeq = 0;

    bool refMode = false;
    std::vector<RefEntry> refHeap;

    std::uint64_t statScheduled = 0;
    std::uint64_t statExecuted = 0;
    std::uint64_t statHeapAllocs = 0;
    std::uint64_t statOverflow = 0;
};

} // namespace inpg

#endif // INPG_SIM_EVENT_QUEUE_HH
