/**
 * @file
 * The cycle-driven simulation kernel.
 *
 * One Simulator instance owns the global clock, the event queue, and the
 * list of clocked components. Each cycle it (1) fires due events and
 * (2) ticks every registered component in registration order. Components
 * communicate only through latched structures, so the tick order within
 * a cycle is not observable; runs are fully deterministic.
 */

#ifndef INPG_SIM_SIMULATOR_HH
#define INPG_SIM_SIMULATOR_HH

#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"
#include "sim/ticking.hh"

namespace inpg {

/** Cycle-driven kernel with an auxiliary event queue. */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Register a component; it will be ticked every cycle. */
    void addTicking(Ticking *component);

    /** Current cycle (the cycle about to be or being evaluated). */
    Cycle now() const { return currentCycle; }

    /** Event queue for timed callbacks. */
    EventQueue &events() { return eventQueue; }

    /** Schedule a callback `delay` cycles from now (delay >= 0). */
    void
    scheduleIn(Cycle delay, EventQueue::Callback fn)
    {
        eventQueue.schedule(currentCycle + delay, std::move(fn));
    }

    /** Advance exactly one cycle. */
    void step();

    /** Advance n cycles. */
    void run(Cycle n);

    /**
     * Advance until the predicate returns true (checked once per cycle,
     * before the cycle executes) or max_cycles elapse.
     *
     * @return true if the predicate fired, false on timeout.
     */
    bool runUntil(const std::function<bool()> &done, Cycle max_cycles);

  private:
    Cycle currentCycle = 0;
    EventQueue eventQueue;
    std::vector<Ticking *> components;
};

} // namespace inpg

#endif // INPG_SIM_SIMULATOR_HH
