/**
 * @file
 * The cycle-driven simulation kernel.
 *
 * One Simulator instance owns the global clock, the event queue, and the
 * list of clocked components. Each cycle it (1) fires due events and
 * (2) ticks every *active* registered component in registration order.
 * Components communicate only through latched structures, so the tick
 * order within a cycle is not observable; runs are fully deterministic.
 *
 * Activity-driven operation: components may suspend themselves via their
 * SleepToken once provably idle (see Ticking). When the active set is
 * empty, nothing can change simulated state until the next event-queue
 * firing, so run()/runUntil() fast-forward the clock across the gap
 * instead of spinning through empty cycles. Fast-forward is
 * cycle-accurate: the visited state trajectory is bit-identical to
 * naive per-cycle ticking (only the no-op cycles are elided).
 */

#ifndef INPG_SIM_SIMULATOR_HH
#define INPG_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"
#include "sim/ticking.hh"

namespace inpg {

class Telemetry;
class KernelProfile;
class ParallelKernel;
class TimeseriesSampler;
class ProgressWatchdog;

/** Cycle-driven kernel with an auxiliary event queue. */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Register a component; it will be ticked every cycle while active. */
    void addTicking(Ticking *component);

    /** Current cycle (the cycle about to be or being evaluated). */
    Cycle now() const { return currentCycle; }

    /** Event queue for timed callbacks. */
    EventQueue &events() { return eventQueue; }
    const EventQueue &events() const { return eventQueue; }

    /** Schedule a callback `delay` cycles from now (delay >= 0). */
    void
    scheduleIn(Cycle delay, EventQueue::Callback fn)
    {
        eventQueue.schedule(currentCycle + delay, std::move(fn));
    }

    /** Advance exactly one cycle (never fast-forwards). */
    void step();

    /** Advance n cycles (fast-forwarding across fully idle spans). */
    void run(Cycle n);

    /**
     * How runUntil() may treat the predicate across idle spans.
     *
     * EveryCycle (default, the seed semantics): the predicate is
     * evaluated once per cycle, before the cycle executes, even while
     * every component sleeps -- correct for predicates that read the
     * clock (`sim.now() >= x`).
     *
     * StateChange: the predicate is a pure function of simulated state,
     * which cannot change while the active set is empty and no event
     * fires; idle spans are skipped in one jump without re-evaluating
     * it. All protocol/workload predicates ("done", "held == n") are
     * of this kind.
     */
    enum class PredicateMode {
        EveryCycle,
        StateChange,
    };

    /**
     * Advance until the predicate returns true (checked once per cycle,
     * before the cycle executes) or max_cycles elapse.
     *
     * @return true if the predicate fired, false on timeout.
     */
    bool runUntil(const std::function<bool()> &done, Cycle max_cycles,
                  PredicateMode mode = PredicateMode::EveryCycle);

    /**
     * Disable/enable idle fast-forwarding (for A/B determinism checks;
     * enabled by default). Off, run()/runUntil() execute every cycle
     * exactly like the pre-activity-kernel loop.
     */
    void setFastForward(bool enabled) { ffEnabled = enabled; }

    bool fastForwardEnabled() const { return ffEnabled; }

    /** Cycles skipped (not individually executed) by fast-forwarding. */
    std::uint64_t cyclesFastForwarded() const { return ffCycles; }

    /** Number of distinct fast-forward jumps taken. */
    std::uint64_t fastForwardJumps() const { return ffJumps; }

    /**
     * Host-side wall-clock breakdown of where simulation time goes,
     * classified by tick-name prefix. Accumulated only while a profile
     * is attached (setHostProfile); the unprofiled step() path is
     * untouched.
     */
    struct HostPhaseProfile {
        double eventsSec = 0;  ///< EventQueue::runDue
        double routersSec = 0; ///< router%d ticks (incl. big routers)
        double nisSec = 0;     ///< ni%d ticks
        double dirsSec = 0;    ///< dir%d ticks
        double otherSec = 0;   ///< cores / workload / everything else
        std::uint64_t profiledCycles = 0;
    };

    /** Attach (or detach with nullptr) a phase-profile accumulator. */
    void setHostProfile(HostPhaseProfile *p) { profile = p; }

    /**
     * Attach (or detach with nullptr) the telemetry facade.
     * Components read it lazily through telemetry(), so installation
     * order relative to component construction does not matter. The
     * kernel itself feeds the profile (events-per-cycle, wheel
     * occupancy, fast-forward skip histogram) when one is enabled.
     */
    void setTelemetry(Telemetry *t);

    /** Installed telemetry facade, or nullptr when disabled. */
    Telemetry *telemetry() const { return tel; }

    /**
     * Attach (or detach with nullptr) a parallel kernel. While one is
     * attached, step()/run()/runUntil() delegate cycle execution to
     * its quantum stepper and component registration is rejected.
     * Installed by ParallelKernel itself; see sim/parallel.
     */
    void attachParallel(ParallelKernel *k);

    /** Attached parallel kernel, or nullptr in serial mode. */
    ParallelKernel *parallel() const { return parKernel; }

    /**
     * Components currently in the active set, across the serial set
     * and every fabric domain of an attached parallel kernel.
     */
    std::size_t activeComponents() const { return totalActive(); }

    /** Registered components (active or not). */
    std::size_t numComponents() const { return slots.size(); }

  private:
    /** Quantum stepper: shares the sweep internals (sim/parallel). */
    friend class ParallelKernel;
    /** Tick-name-derived bucket of HostPhaseProfile. */
    enum class PhaseClass : std::uint8_t {
        Router,
        Ni,
        Dir,
        Other,
    };

    struct Slot {
        Ticking *component = nullptr;
        PhaseClass phase = PhaseClass::Other;
    };

    void stepProfiled();

    /** Fire due events (feeding the kernel profile when attached). */
    void runEventPhase();

    /** Sweep the serial active bitmap once at the current cycle. */
    void sweepActive();

    /** Active components including fabric domains (fast-forward gate). */
    std::size_t totalActive() const;

    /**
     * Cycle at which the next stimulus can occur once the active set is
     * empty; CYCLE_NEVER when the event queue is also empty.
     */
    Cycle idleHorizon() const { return eventQueue.nextEventCycle(); }

    Cycle currentCycle = 0;
    EventQueue eventQueue;
    std::vector<Slot> slots;

    /**
     * Packed active set, bit i = slot i. The per-cycle loop sweeps set
     * bits (ascending index keeps registration-order ticking) instead
     * of testing a flag per registered component; SleepTokens point at
     * their word so wake/suspend are single bit operations.
     */
    std::vector<std::uint64_t> activeBits;
    std::size_t activeCount = 0;

    bool ffEnabled = true;
    std::uint64_t ffCycles = 0;
    std::uint64_t ffJumps = 0;

    HostPhaseProfile *profile = nullptr;
    ParallelKernel *parKernel = nullptr;
    Telemetry *tel = nullptr;
    KernelProfile *kernelProf = nullptr;
    TimeseriesSampler *sampler = nullptr;
    ProgressWatchdog *wdog = nullptr;
};

} // namespace inpg

#endif // INPG_SIM_SIMULATOR_HH
