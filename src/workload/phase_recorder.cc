#include "workload/phase_recorder.hh"

#include <algorithm>

#include "common/logging.hh"

namespace inpg {

const char *
threadPhaseName(ThreadPhase p)
{
    switch (p) {
      case ThreadPhase::Parallel:
        return "parallel";
      case ThreadPhase::Coh:
        return "coh";
      case ThreadPhase::Sleep:
        return "sleep";
      case ThreadPhase::Cse:
        return "cse";
      case ThreadPhase::Done:
        return "done";
    }
    return "?";
}

PhaseRecorder::PhaseRecorder(ThreadId thread_id) : tid(thread_id)
{
    events.push_back(Event{0, ThreadPhase::Parallel});
}

void
PhaseRecorder::transition(ThreadPhase next, Cycle now)
{
    INPG_ASSERT(now >= phaseStart, "time went backwards");
    accum[static_cast<std::size_t>(phase)] += now - phaseStart;
    phase = next;
    phaseStart = now;
    events.push_back(Event{now, next});
}

Cycle
PhaseRecorder::cyclesIn(ThreadPhase p) const
{
    return accum[static_cast<std::size_t>(p)];
}

ThreadPhase
PhaseRecorder::phaseAt(Cycle cycle) const
{
    // Last event at or before `cycle`.
    auto it = std::upper_bound(events.begin(), events.end(), cycle,
                               [](Cycle c, const Event &e) {
                                   return c < e.at;
                               });
    INPG_ASSERT(it != events.begin(), "no phase recorded at cycle %llu",
                static_cast<unsigned long long>(cycle));
    return std::prev(it)->phase;
}

} // namespace inpg
