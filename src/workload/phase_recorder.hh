/**
 * @file
 * Per-thread execution-phase accounting (paper Figure 9's timing
 * profile and the COH/CSE breakdowns of Figures 8b, 11, 12).
 *
 * Phases: Parallel (concurrent compute), Coh (competing to enter a
 * critical section), Sleep (QSL sleep phase; a sub-interval of the
 * competition overhead), Cse (executing the critical section), Done.
 */

#ifndef INPG_WORKLOAD_PHASE_RECORDER_HH
#define INPG_WORKLOAD_PHASE_RECORDER_HH

#include <array>
#include <vector>

#include "common/types.hh"

namespace inpg {

/** Thread lifecycle phase. */
enum class ThreadPhase {
    Parallel = 0,
    Coh = 1,
    Sleep = 2,
    Cse = 3,
    Done = 4,
};

/** Number of distinct phases. */
inline constexpr int NUM_THREAD_PHASES = 5;

/** Short phase name. */
const char *threadPhaseName(ThreadPhase p);

/** Accumulates per-phase cycles and the transition timeline. */
class PhaseRecorder
{
  public:
    explicit PhaseRecorder(ThreadId thread_id);

    /** Switch phases at `now`; closes the current interval. */
    void transition(ThreadPhase next, Cycle now);

    /** Cycles accumulated in a phase (open interval excluded). */
    Cycle cyclesIn(ThreadPhase p) const;

    /** Competition overhead: Coh + Sleep. */
    Cycle cohCycles() const
    {
        return cyclesIn(ThreadPhase::Coh) + cyclesIn(ThreadPhase::Sleep);
    }

    /** Lock coherence overhead proxy: competition minus sleep. */
    Cycle lcoCycles() const { return cyclesIn(ThreadPhase::Coh); }

    ThreadPhase current() const { return phase; }

    /** One timeline entry per transition. */
    struct Event {
        Cycle at;
        ThreadPhase phase;
    };

    const std::vector<Event> &timeline() const { return events; }

    /** Phase active at a given cycle (binary search over events). */
    ThreadPhase phaseAt(Cycle cycle) const;

    ThreadId threadId() const { return tid; }

  private:
    ThreadId tid;
    ThreadPhase phase = ThreadPhase::Parallel;
    Cycle phaseStart = 0;
    std::array<Cycle, NUM_THREAD_PHASES> accum{};
    std::vector<Event> events;
};

} // namespace inpg

#endif // INPG_WORKLOAD_PHASE_RECORDER_HH
