#include "workload/benchmark_profile.hh"

#include "common/logging.hh"

namespace inpg {

namespace {

std::vector<BenchmarkProfile>
buildBenchmarks()
{
    // {short, full, suite, group, totalCs, avgCs, avgParallel, locks, memGap}
    // Group 1: low total CS time -- few, light critical sections with
    // long parallel phases. Group 3: CS-dominated programs (the paper's
    // high-contention set: nab and bt331 are its headline maxima).
    auto P = Suite::Parsec;
    auto O = Suite::Omp2012;
    return {
        // ---- Group 1 ----
        {"body", "bodytrack", P, 1, 1600, 55, 8000, 4, 140},
        {"ray", "raytrace", P, 1, 1200, 45, 10000, 2, 180},
        {"vips", "vips", P, 1, 2000, 60, 7000, 4, 150},
        {"alg", "botsalgn", O, 1, 1400, 80, 9000, 2, 200},
        {"md", "md", O, 1, 1000, 90, 12000, 2, 160},
        {"applu", "applu331", O, 1, 1800, 50, 8000, 2, 120},
        // ---- Group 2 ----
        {"can", "canneal", P, 2, 4000, 70, 2500, 6, 90},
        {"dedup", "dedup", P, 2, 5000, 90, 2200, 6, 110},
        {"ferret", "ferret", P, 2, 4500, 80, 3000, 8, 130},
        {"stream", "streamcluster", P, 2, 3500, 110, 3500, 6, 80},
        {"freq", "freqmine", P, 2, 6000, 100, 1800, 8, 120},
        {"bwaves", "bwaves", O, 2, 3000, 140, 4000, 6, 70},
        {"fma3d", "fma3d", O, 2, 3600, 120, 3000, 6, 100},
        {"ilbdc", "ilbdc", O, 2, 4200, 95, 2600, 6, 90},
        {"imag", "imagick", O, 2, 4000, 179, 2800, 4, 140},
        {"mgrid", "mgrid331", O, 2, 3200, 130, 3400, 6, 80},
        {"smith", "smithwa", O, 2, 4800, 85, 2000, 8, 120},
        {"swim", "swim", O, 2, 3000, 150, 3800, 6, 70},
        // ---- Group 3 ----
        {"face", "facesim", P, 3, 9000, 160, 1800, 4, 100},
        {"fluid", "fluidanimate", P, 3, 10240, 81, 1500, 6, 110},
        {"kdtree", "kdtree", O, 3, 11000, 100, 1400, 4, 120},
        {"nab", "nab", O, 3, 12000, 120, 1200, 4, 130},
        {"bt331", "bt331", O, 3, 10000, 140, 1400, 4, 100},
        {"spar", "botsspar", O, 3, 8000, 180, 2000, 4, 110},
    };
}

} // namespace

const std::vector<BenchmarkProfile> &
allBenchmarks()
{
    static const std::vector<BenchmarkProfile> table = buildBenchmarks();
    return table;
}

const BenchmarkProfile &
benchmarkByName(const std::string &name)
{
    for (const auto &b : allBenchmarks())
        if (b.name == name || b.fullName == name)
            return b;
    fatal("unknown benchmark '%s'", name.c_str());
}

std::vector<BenchmarkProfile>
benchmarksInGroup(int group)
{
    std::vector<BenchmarkProfile> out;
    for (const auto &b : allBenchmarks())
        if (b.group == group)
            out.push_back(b);
    return out;
}

} // namespace inpg
