/**
 * @file
 * Synthetic benchmark profiles standing in for PARSEC and SPEC OMP2012
 * (substitution documented in DESIGN.md Section 2).
 *
 * Each of the paper's 24 evaluated programs (10 PARSEC, 14 OMP2012)
 * becomes a profile: total critical-section count, mean CS body
 * length, mean parallel-phase length and lock count, calibrated to the
 * per-program characteristics the paper reports (Fig. 8a: e.g. fluid
 * has 10,240 short CSs of ~81 cycles; imag has 4,000 heavier CSs of
 * ~179 cycles) and to the Fig. 8b grouping by total CS time. All
 * lock/coherence traffic is produced by the real simulated protocol;
 * only the compute between synchronization points is abstracted.
 */

#ifndef INPG_WORKLOAD_BENCHMARK_PROFILE_HH
#define INPG_WORKLOAD_BENCHMARK_PROFILE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace inpg {

/** Origin suite of a profile. */
enum class Suite {
    Parsec,
    Omp2012,
};

/** Workload profile of one benchmark program. */
struct BenchmarkProfile {
    std::string name;      ///< short name (paper footnote 5 style)
    std::string fullName;  ///< full program name
    Suite suite = Suite::Parsec;

    /** Figure 8b group (1 = low total CS time ... 3 = high). */
    int group = 1;

    /** Total CS entries across all 64 threads (Fig. 8a scale). */
    std::uint64_t totalCs = 4000;

    /** Mean CPU cycles of one CS body (Fig. 8a). */
    double avgCsCycles = 100;

    /** Mean parallel-compute cycles between CS entries. */
    double avgParallelCycles = 2000;

    /** Number of distinct locks the program contends on. */
    int numLocks = 1;

    /**
     * Mean cycles between background memory accesses (shared-data
     * misses) a thread issues during its parallel phase; models the
     * ordinary cache-miss traffic the L2 banks and NoC carry in a
     * full-system run. 0 disables background traffic.
     */
    double memGapCycles = 150;

    /** CS entries per thread for a given thread count and scale. */
    int
    csPerThread(int threads, double scale) const
    {
        double per = static_cast<double>(totalCs) /
                     static_cast<double>(threads) * scale;
        return per < 2.0 ? 2 : static_cast<int>(per);
    }
};

/** All 24 evaluated programs, grouped and ordered as in Figure 8b. */
const std::vector<BenchmarkProfile> &allBenchmarks();

/** Look up one profile by short name; fatal() if unknown. */
const BenchmarkProfile &benchmarkByName(const std::string &name);

/** The programs of one group (1..3). */
std::vector<BenchmarkProfile> benchmarksInGroup(int group);

} // namespace inpg

#endif // INPG_WORKLOAD_BENCHMARK_PROFILE_HH
