#include "workload/workload.hh"

#include "common/logging.hh"

namespace inpg {

Workload::Workload(Params params, CoherentSystem &system,
                   LockManager &locks, Simulator &sim)
    : prm(std::move(params)), sys(system),
      csTarget(prm.profile.csPerThread(prm.threads, prm.csScale))
{
    INPG_ASSERT(prm.threads >= 1 && prm.threads <= sys.numCores(),
                "%d threads on %d cores", prm.threads, sys.numCores());

    // Locks (and the shared data they protect) homed per profile.
    std::vector<Addr> cs_data;
    for (int i = 0; i < prm.profile.numLocks; ++i) {
        NodeId home;
        if (prm.lockHome != INVALID_NODE) {
            home = (prm.lockHome + i) % sys.numCores();
        } else {
            // Deterministic spread derived from the profile identity.
            std::uint64_t h = 0x9e3779b97f4a7c15ULL * (i + 1);
            for (char c : prm.profile.name)
                h = h * 131 + static_cast<unsigned char>(c);
            home = static_cast<NodeId>(h %
                static_cast<std::uint64_t>(sys.numCores()));
        }
        lockPtrs.push_back(
            locks.createLock(prm.lockKind, prm.threads, home));
        cs_data.push_back(locks.allocLine(home));
    }

    for (ThreadId t = 0; t < prm.threads; ++t) {
        ThreadContext::Params tp;
        tp.tid = t;
        tp.csTarget = csTarget;
        tp.meanParallelCycles = prm.profile.avgParallelCycles;
        tp.meanCsCycles = prm.profile.avgCsCycles;
        tp.locks = lockPtrs;
        tp.csData = cs_data;
        tp.memGapCycles = prm.profile.memGapCycles;
        // Background working set: four lines shared with a peer thread
        // (t XOR 1) homed across the mesh, so ownership keeps moving
        // and the traffic is sustained with a bounded footprint.
        const ThreadId pair = t & ~1;
        for (int i = 0; i < 4; ++i) {
            std::uint64_t h =
                (static_cast<std::uint64_t>(pair) * 2654435761u) ^
                (static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL);
            NodeId home = static_cast<NodeId>(
                h % static_cast<std::uint64_t>(sys.numCores()));
            tp.bgAddrs.push_back(sys.cohConfig().lineHomedAt(
                home, 1000 + static_cast<Addr>(pair) * 8 +
                          static_cast<Addr>(i)));
        }
        tp.seed = prm.seed;
        workers.push_back(
            std::make_unique<ThreadContext>(tp, sys, sim));
    }
}

void
Workload::start()
{
    for (auto &w : workers)
        w->start();
}

bool
Workload::done() const
{
    for (const auto &w : workers)
        if (!w->done())
            return false;
    return true;
}

Cycle
Workload::roiFinish() const
{
    Cycle finish = 0;
    for (const auto &w : workers) {
        INPG_ASSERT(w->done(), "roiFinish() before completion");
        finish = std::max(finish, w->finishCycle());
    }
    return finish;
}

std::uint64_t
Workload::csCompleted() const
{
    std::uint64_t total = 0;
    for (const auto &w : workers)
        total += static_cast<std::uint64_t>(w->csCompleted());
    return total;
}

Cycle
Workload::totalCycles(ThreadPhase p) const
{
    Cycle total = 0;
    for (const auto &w : workers)
        total += w->recorder().cyclesIn(p);
    return total;
}

} // namespace inpg
