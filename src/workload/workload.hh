/**
 * @file
 * Workload: instantiates one benchmark profile on a coherent system --
 * creates the locks and the per-core threads, runs them to completion,
 * and aggregates the phase accounting the paper's figures report.
 */

#ifndef INPG_WORKLOAD_WORKLOAD_HH
#define INPG_WORKLOAD_WORKLOAD_HH

#include <memory>
#include <vector>

#include "coh/coherent_system.hh"
#include "sync/lock_manager.hh"
#include "sync/thread_context.hh"
#include "workload/benchmark_profile.hh"

namespace inpg {

/** One benchmark run: threads + locks over a CoherentSystem. */
class Workload
{
  public:
    struct Params {
        BenchmarkProfile profile;
        /** Worker threads (one per core). */
        int threads = 64;
        /**
         * Fraction of the profile's per-thread CS count actually
         * simulated (simulation-time scaling; documented in
         * EXPERIMENTS.md). 1.0 = the paper's full count.
         */
        double csScale = 0.125;
        /**
         * Home node of the program's first lock; INVALID_NODE spreads
         * lock homes across the mesh. Figure 10 pins the lock at tile
         * (5,6).
         */
        NodeId lockHome = INVALID_NODE;
        LockKind lockKind = LockKind::Qsl;
        std::uint64_t seed = 1;
    };

    Workload(Params params, CoherentSystem &system, LockManager &locks,
             Simulator &sim);

    /** Launch all threads. */
    void start();

    /** True when every thread finished its CS target. */
    bool done() const;

    /** Region-of-interest length: the last thread's finish cycle. */
    Cycle roiFinish() const;

    /** Total CS entries completed so far across threads. */
    std::uint64_t csCompleted() const;

    /** Sum of a phase's cycles over all threads. */
    Cycle totalCycles(ThreadPhase p) const;

    const std::vector<std::unique_ptr<ThreadContext>> &threads() const
    {
        return workers;
    }

    const std::vector<LockPrimitive *> &locks() const { return lockPtrs; }

    int csTargetPerThread() const { return csTarget; }

  private:
    Params prm;
    CoherentSystem &sys;
    std::vector<LockPrimitive *> lockPtrs;
    std::vector<std::unique_ptr<ThreadContext>> workers;
    int csTarget;
};

} // namespace inpg

#endif // INPG_WORKLOAD_WORKLOAD_HH
