/**
 * @file
 * Murphi-style explicit-state model checker for the composed
 * MOESI x iNPG protocol (DESIGN.md section 13).
 *
 * The checker interprets the declarative transition tables in
 * `src/coh/protocol_tables.cc` directly -- the tables ARE the model;
 * there is no hand-translated Promela/Murphi twin that could drift.
 * It explores an abstract system of N in {2, 3} L1 controllers, one
 * directory and one big router exchanging messages through an
 * unordered multiset (a superset of every delivery order any real
 * fabric can produce), and checks safety invariants plus deadlock
 * absence over the full reachable state space. On violation it
 * reconstructs a minimal (BFS-shortest) counterexample and prints it
 * as a flight-recorder-style event trace, so a witness reads like the
 * panic dumps PR 5 introduced.
 *
 * What is table-authoritative in the interpreter:
 *  - dispatch goes through `ProtoTableBase::find()`; an undeclared or
 *    illegal (state, event) pair that is actually reached is itself a
 *    violation (`table-hole` / `table-illegal`);
 *  - a message may only be injected if its kind appears in the firing
 *    row's declared emits -- otherwise it is silently dropped (and the
 *    drop is recorded in the trace), so a mutation that deletes an
 *    emit shows up as lost-token conservation failures or deadlock,
 *    exactly like the real bug would;
 *  - when a row declares a single next state the interpreter *forces*
 *    the L1 into it, so a swapped next-state mutation changes
 *    behaviour instead of merely tripping a conformance check; rows
 *    with several declared nexts are resolved by the controller
 *    semantics and membership-checked (`undeclared-next`);
 *  - the LCO hooks fired along a transaction are accumulated per core
 *    and checked for tiling at every operation completion.
 */

#ifndef INPG_VERIFY_MODEL_CHECK_HH
#define INPG_VERIFY_MODEL_CHECK_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "coh/protocol_tables.hh"
#include "coh/transition_table.hh"

namespace inpg {

/**
 * Closed-form workloads the abstract cores run. All of them touch a
 * single lock line (one address suffices: the protocol has no
 * cross-address coupling, and the big-router barrier is per-address).
 */
enum class McScenario {
    /** Every core: demotable test-and-set, retry non-demotable on
     * failure, release on success, then one trailing load. This is the
     * paper's lock-handoff workload and exercises demotion, upgrade,
     * ownership chains and the early-Inv barrier. */
    Tas,
    /** Tas with the demotable first attempt disabled (plain GetX),
     * exercising InvalidateAndGrant / ForwardGetX paths. */
    TasNd,
    /** Tas against a lock initialised *held* (word = 1, no owner), so
     * the demote-at-home answer path (DemoteOrGrant with a set word)
     * becomes reachable. */
    TasHeld,
    /** Every core: one non-lock fetch-add then a load -- pure MOESI
     * data-value checking with no barrier interaction. */
    Counter,
    /** Core 0 runs Tas; every other core runs two loads (reader mix:
     * GetS against a line that is being locked). */
    Rw,
};

const char *mcScenarioName(McScenario s);

/** Parse a scenario name ("tas", "tas-nd", ...); nullopt on garbage. */
std::optional<McScenario> mcScenarioFromName(const std::string &name);

/** All scenarios, for drivers that sweep them. */
const std::vector<McScenario> &mcAllScenarios();

/**
 * Tables the checker interprets. Defaults to the shipped production
 * tables; the mutation harness swaps in clones rebuilt through
 * `ProtoTableBase::withRows()` with one seeded bug.
 */
struct McTables {
    const ProtoTableBase *l1 = nullptr;  // default: protocolTable(0)
    const ProtoTableBase *dir = nullptr; // default: protocolTable(1)
    const ProtoTableBase *br = nullptr;  // default: protocolTable(2)
};

struct McConfig {
    int numCores = 2; // 2..MC_MAX_CORES
    bool bigRouter = true;
    McScenario scenario = McScenario::Tas;
    /** Stop exploring after this many canonical states (0 = no cap).
     * Exceeding the cap clears `McResult::complete`. */
    std::uint64_t maxStates = 0;
    /** Do not expand states deeper than this (0 = no cap). */
    int maxDepth = 0;
    /** Symmetry reduction over interchangeable core ids. Leave on for
     * exploration; turn off when a deterministic, rename-free witness
     * is wanted (golden traces). */
    bool symmetry = true;
    /** Seeded-bug knob for the self-test: added to every directory
     * ack-count before it is sent (clamped at zero), modelling the
     * classic off-by-one in the sharer count. */
    int ackCountBias = 0;
    /** Big-router early-invalidation capacity (entries). */
    int eiCapacity = 8;
    /** Check the final lock-word value in quiesced states. */
    bool checkFinalValue = true;
};

/** One safety violation plus its counterexample. */
struct McViolation {
    /** Invariant id, e.g. "swmr", "deadlock", "ack-conservation". */
    std::string invariant;
    /** Human-readable one-liner of what went wrong. */
    std::string detail;
    /** Flight-recorder-style witness: one line per event, ending with
     * the violation banner. BFS order makes it minimal in steps. */
    std::vector<std::string> trace;

    std::string traceText() const;
};

struct McResult {
    std::uint64_t statesVisited = 0; //!< canonical states reached
    std::uint64_t transitions = 0;   //!< successor edges explored
    std::uint64_t finalStates = 0;   //!< quiesced end states
    std::uint64_t emitsDropped = 0;  //!< undeclared emits suppressed
    int maxDepth = 0;                //!< deepest state expanded
    /** False when maxStates/maxDepth truncated the exploration. */
    bool complete = true;
    std::optional<McViolation> violation;

    bool ok() const { return !violation.has_value(); }
};

/**
 * Explore the reachable state space of one (config, tables) pair.
 * Null table pointers in `tables` default to the production tables.
 * Returns on the first violation found (BFS order => a shortest
 * witness) or after exhausting the space / budget.
 */
McResult runModelCheck(const McConfig &cfg, const McTables &tables = {});

/**
 * One seeded table bug for the `--self-test` mutation harness: a
 * named, documented edit of a production table (or an interpreter
 * knob) together with the configuration that exposes it and the
 * invariant expected to catch it.
 */
struct McMutation {
    const char *name;
    /** What the seeded bug models, for the self-test report. */
    const char *what;
    /** Invariant id the checker must report (prefix match). */
    const char *expect;
    /** Which table the edit applies to: PROTO_TABLE_{L1,DIR,BR}, or
     * -1 for knob-only mutations (e.g. ackCountBias). */
    int table;
    McConfig config;
    /** Row edit, applied to ProtoTableBase::rows() of the target
     * table before rebuilding it with withRows(). Null for knob-only
     * mutations. */
    void (*edit)(std::vector<ProtoTransition> &rows);
};

/** Table index constants mirroring protocolTable()'s order. */
inline constexpr int PROTO_TABLE_L1 = 0;
inline constexpr int PROTO_TABLE_DIR = 1;
inline constexpr int PROTO_TABLE_BR = 2;

/** The seeded-bug catalog (>= 8 entries; see mc_mutations.cc). */
const std::vector<McMutation> &mcMutationCatalog();

/** Find a catalog entry by name (nullptr when absent). */
const McMutation *mcFindMutation(const std::string &name);

/**
 * Run the checker against one catalog entry's mutated tables.
 * Violation expected: the caller checks `result.violation` against
 * `m.expect`.
 */
McResult runMutatedModelCheck(const McMutation &m);

/** Outcome of the full self-test sweep. */
struct McSelfTestOutcome {
    int mutationsRun = 0;
    int caught = 0;
    std::vector<std::string> failures; //!< human-readable, empty = ok
    bool ok() const { return failures.empty(); }
};

/**
 * The --self-test harness: every catalog mutation must (a) be caught
 * by its expected invariant with a non-empty witness trace and (b)
 * leave the *unmutated* tables clean under the same configuration.
 */
McSelfTestOutcome runMcSelfTest(bool verbose, std::vector<std::string> *log);

} // namespace inpg

#endif // INPG_VERIFY_MODEL_CHECK_HH
