/**
 * @file
 * Seeded-bug catalog for the model checker's --self-test harness.
 *
 * Each entry clones one production table through
 * ProtoTableBase::rows() / withRows(), applies a single realistic
 * edit (dropped emit, swapped next-state, dropped LCO hook, action
 * swap, off-by-one ack count) and names the invariant the checker
 * must trip. The harness also re-runs every configuration against
 * the *unmutated* tables and requires a clean pass, so a mutation
 * that "succeeds" by breaking the interpreter instead of the
 * protocol is caught too.
 *
 * Expected-invariant strings may list '|'-separated alternatives:
 * several of the seeded bugs are legitimately caught by more than
 * one invariant depending on which BFS layer the violating
 * interleaving lands in, and pinning one exact id would make the
 * self-test brittle against harmless exploration-order changes.
 */

#include <cstdio>

#include "verify/model_check.hh"

namespace inpg {

namespace {

// Table-local int values (static_asserted against the enums below so
// a renumbering cannot silently retarget an edit).
constexpr int L1_S = 1;
constexpr int L1_M = 3;

ProtoTransition *
findRow(std::vector<ProtoTransition> &rows, int state, int event)
{
    for (ProtoTransition &t : rows)
        if (t.state == state && t.event == event)
            return &t;
    return nullptr;
}

void
editOwnedSelfGetXSelfForward(std::vector<ProtoTransition> &rows)
{
    // The historical (OwnedSelf, GetS) self-forward hang, re-seeded on
    // the reachable GetX row: the home "demotes via owner" when the
    // requester IS the owner, so the FwdGetS chases the requester's
    // own pending upgrade and is deferred forever.
    ProtoTransition *t =
        findRow(rows, static_cast<int>(DirState::OwnedSelf),
                static_cast<int>(DirEvent::GetX));
    t->action = static_cast<int>(DirAction::DemoteViaOwner);
    t->emits = {{CohMsgKind::FwdGetS, false}};
    t->nexts = {static_cast<int>(DirState::Owned),
                static_cast<int>(DirState::OwnedSelf)};
}

void
editL1SInvDropAck(std::vector<ProtoTransition> &rows)
{
    // Sharer invalidates its copy but forgets the InvAck.
    ProtoTransition *t = findRow(rows, L1_S,
                                 static_cast<int>(L1Event::Inv));
    t->emits.clear();
}

void
editL1MInvDropsDirtyOwner(std::vector<ProtoTransition> &rows)
{
    // Stale big-router Inv must NOT invalidate an owner that holds
    // the lock word dirty; force the next state to I.
    ProtoTransition *t = findRow(rows, L1_M,
                                 static_cast<int>(L1Event::Inv));
    t->nexts = {0 /* I */};
}

void
editDirUncachedGetXDropData(std::vector<ProtoTransition> &rows)
{
    // InvalidateAndGrant that never sends the DataExcl grant.
    ProtoTransition *t =
        findRow(rows, static_cast<int>(DirState::Uncached),
                static_cast<int>(DirEvent::GetX));
    std::vector<ProtoEmit> kept;
    for (const ProtoEmit &e : t->emits)
        if (e.kind != CohMsgKind::DataExcl)
            kept.push_back(e);
    t->emits = kept;
}

void
editL1WriteMissDropHook(std::vector<ProtoTransition> &rows)
{
    // BeginWriteMiss loses its requestSent attribution hook, so the
    // LCO tiling of every write-miss transaction has a gap.
    ProtoTransition *t = findRow(rows, 0 /* I */,
                                 static_cast<int>(L1Event::CoreWrite));
    t->lcoHooks = {"opIssued"};
}

void
editBrArmedAckKeepsEi(std::vector<ProtoTransition> &rows)
{
    // The big router relays the InvAck but never closes its EI entry.
    ProtoTransition *t =
        findRow(rows, static_cast<int>(BrState::BarrierArmed),
                static_cast<int>(BrEvent::EarlyInvAck));
    t->action = static_cast<int>(BrAction::RelayStale);
}

void
editBrIdleArrivalDropInv(std::vector<ProtoTransition> &rows)
{
    // StopAndInvalidate opens the EI entry but the early Inv itself
    // is no longer a declared emit (dropped in-network packet).
    ProtoTransition *t =
        findRow(rows, static_cast<int>(BrState::BarrierIdle),
                static_cast<int>(BrEvent::LockGetXArrival));
    t->emits.clear();
}

void
editDirOwnedEarlyAckIllegal(std::vector<ProtoTransition> &rows)
{
    // Declares a reachable pair impossible: an early InvAck relayed
    // to the home while some other core owns the line.
    ProtoTransition *t =
        findRow(rows, static_cast<int>(DirState::Owned),
                static_cast<int>(DirEvent::EarlyInvAck));
    t->action = PROTO_ILLEGAL;
    t->emits.clear();
    t->nexts.clear();
    t->note = "seeded: early ack under other-owner declared impossible";
}

void
editL1SInvKeepCopy(std::vector<ProtoTransition> &rows)
{
    // Invalidation acked but the shared copy is kept (next-state
    // swap back to S) -- the classic stale-sharer SWMR bug.
    ProtoTransition *t = findRow(rows, L1_S,
                                 static_cast<int>(L1Event::Inv));
    t->nexts = {L1_S};
}

McConfig
mcCfg(McScenario sc, bool bigRouter, bool symmetry = true)
{
    McConfig c;
    c.numCores = 2;
    c.scenario = sc;
    c.bigRouter = bigRouter;
    c.symmetry = symmetry;
    // Guard rail: a mutation that fails to trigger must terminate
    // with complete=false instead of exploring forever.
    c.maxStates = 500000;
    return c;
}

std::vector<McMutation>
buildCatalog()
{
    std::vector<McMutation> cat;
    cat.push_back({"ownedself-getx-selfforward",
                   "home self-forwards the owner's own upgrade "
                   "(the historical (OwnedSelf, GetS) hang class)",
                   "deadlock", PROTO_TABLE_DIR,
                   mcCfg(McScenario::Tas, false, /*symmetry=*/false),
                   &editOwnedSelfGetXSelfForward});
    cat.push_back({"l1-s-inv-drop-ack",
                   "sharer drops its copy but never sends the InvAck",
                   "ack-conservation|deadlock", PROTO_TABLE_L1,
                   mcCfg(McScenario::Tas, false), &editL1SInvDropAck});
    cat.push_back({"l1-m-inv-drops-dirty-owner",
                   "stale early-Inv invalidates an owner holding the "
                   "lock word dirty",
                   "early-inv-dirty-owner", PROTO_TABLE_L1,
                   mcCfg(McScenario::Tas, true),
                   &editL1MInvDropsDirtyOwner});
    {
        McMutation m{"dir-ackcount-off-by-one",
                     "home undercounts the Inv storm by one "
                     "(classic sharer-count off-by-one)",
                     "ack-conservation|over-collected|stray-invack|swmr",
                     -1, mcCfg(McScenario::Tas, false), nullptr};
        m.config.ackCountBias = -1;
        cat.push_back(m);
    }
    cat.push_back({"dir-uncached-getx-drop-dataexcl",
                   "exclusive grant whose DataExcl is never emitted",
                   "deadlock", PROTO_TABLE_DIR,
                   mcCfg(McScenario::TasNd, false),
                   &editDirUncachedGetXDropData});
    cat.push_back({"l1-i-corewrite-drop-requestsent",
                   "write-miss transition loses its requestSent LCO "
                   "hook (silent attribution gap)",
                   "lco-tiling", PROTO_TABLE_L1,
                   mcCfg(McScenario::Tas, false),
                   &editL1WriteMissDropHook});
    cat.push_back({"br-armed-ack-keeps-ei",
                   "big router relays the InvAck without closing the "
                   "early-invalidation entry",
                   "ei-conservation", PROTO_TABLE_BR,
                   mcCfg(McScenario::Tas, true),
                   &editBrArmedAckKeepsEi});
    cat.push_back({"br-idle-arrival-drop-inv",
                   "early-invalidation entry opened but the early Inv "
                   "packet is dropped",
                   "ei-conservation", PROTO_TABLE_BR,
                   mcCfg(McScenario::Tas, true),
                   &editBrIdleArrivalDropInv});
    cat.push_back({"dir-owned-earlyack-illegal",
                   "reachable (Owned, EarlyInvAck) pair declared "
                   "impossible",
                   "table-illegal", PROTO_TABLE_DIR,
                   mcCfg(McScenario::Tas, true),
                   &editDirOwnedEarlyAckIllegal});
    cat.push_back({"l1-s-inv-keep-copy",
                   "invalidation acked but the stale shared copy is "
                   "kept (SWMR break)",
                   "swmr|valid-copy", PROTO_TABLE_L1,
                   mcCfg(McScenario::Tas, false), &editL1SInvKeepCopy});
    return cat;
}

bool
expectMatches(const char *expect, const std::string &invariant)
{
    // '|'-separated alternatives, each matched as a prefix.
    const char *p = expect;
    while (*p) {
        const char *bar = p;
        while (*bar && *bar != '|')
            ++bar;
        const std::size_t len = static_cast<std::size_t>(bar - p);
        if (invariant.compare(0, len, p, len) == 0)
            return true;
        p = *bar ? bar + 1 : bar;
    }
    return false;
}

} // namespace

const std::vector<McMutation> &
mcMutationCatalog()
{
    static const std::vector<McMutation> catalog = buildCatalog();
    return catalog;
}

const McMutation *
mcFindMutation(const std::string &name)
{
    for (const McMutation &m : mcMutationCatalog())
        if (name == m.name)
            return &m;
    return nullptr;
}

McResult
runMutatedModelCheck(const McMutation &m)
{
    if (m.table < 0)
        return runModelCheck(m.config);
    const ProtoTableBase &prod = protocolTable(m.table);
    std::vector<ProtoTransition> rows = prod.rows();
    if (m.edit)
        m.edit(rows);
    // Deliberate rebuild: the mutation harness is the one place
    // that ships an intentionally broken table, so the checker
    // can prove it would catch the bug.
    const ProtoTableBase mutated =
        prod.withRows(rows); // lint:allow(table-row-outside-tables)
    McTables t;
    if (m.table == PROTO_TABLE_L1)
        t.l1 = &mutated;
    else if (m.table == PROTO_TABLE_DIR)
        t.dir = &mutated;
    else
        t.br = &mutated;
    return runModelCheck(m.config, t);
}

McSelfTestOutcome
runMcSelfTest(bool verbose, std::vector<std::string> *log)
{
    McSelfTestOutcome out;
    char line[256];
    auto emit = [&](const std::string &s) {
        if (log)
            log->push_back(s);
    };
    for (const McMutation &m : mcMutationCatalog()) {
        ++out.mutationsRun;

        // The same configuration against the *production* tables
        // must be clean (mutation 4 seeds through a config knob, so
        // neutralize it for the baseline run).
        McConfig clean = m.config;
        clean.ackCountBias = 0;
        McResult base = runModelCheck(clean);
        if (!base.ok()) {
            std::snprintf(line, sizeof line,
                          "FAIL %-34s baseline violated %s", m.name,
                          base.violation->invariant.c_str());
            emit(line);
            out.failures.push_back(line);
            continue;
        }
        if (!base.complete) {
            std::snprintf(line, sizeof line,
                          "FAIL %-34s baseline hit the state cap",
                          m.name);
            emit(line);
            out.failures.push_back(line);
            continue;
        }

        McResult res = runMutatedModelCheck(m);
        if (!res.violation.has_value()) {
            std::snprintf(line, sizeof line,
                          "FAIL %-34s not caught (%llu states, %s)",
                          m.name,
                          static_cast<unsigned long long>(
                              res.statesVisited),
                          res.complete ? "complete" : "truncated");
            emit(line);
            out.failures.push_back(line);
            continue;
        }
        const McViolation &v = *res.violation;
        if (!expectMatches(m.expect, v.invariant)) {
            std::snprintf(line, sizeof line,
                          "FAIL %-34s caught by '%s', expected '%s'",
                          m.name, v.invariant.c_str(), m.expect);
            emit(line);
            out.failures.push_back(line);
            continue;
        }
        if (v.trace.empty()) {
            std::snprintf(line, sizeof line,
                          "FAIL %-34s violation has no witness trace",
                          m.name);
            emit(line);
            out.failures.push_back(line);
            continue;
        }
        ++out.caught;
        std::snprintf(line, sizeof line,
                      "ok   %-34s caught by %-22s (%llu states, "
                      "%zu-line witness)",
                      m.name, v.invariant.c_str(),
                      static_cast<unsigned long long>(res.statesVisited),
                      v.trace.size());
        emit(line);
        if (verbose)
            for (const std::string &t : v.trace)
                emit("    " + t);
    }
    return out;
}

} // namespace inpg
