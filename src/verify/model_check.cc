/**
 * @file
 * Explicit-state model checker over the production protocol tables.
 * See model_check.hh for the model and DESIGN.md section 13 for the
 * state encoding, canonicalization and invariant catalog.
 *
 * Structure:
 *   1. abstract-state PODs (McMsg / McCore / McState) + encoding
 *   2. scenario programs (what each abstract core runs)
 *   3. the table interpreter (Interp): one BFS step = one atomic
 *      handler cascade, mirroring l1_controller.cc / directory.cc /
 *      packet_generator.cc with panics replaced by violations
 *   4. global invariants checked after every step
 *   5. canonicalization (core-id symmetry) + BFS + witness replay
 */

#include "verify/model_check.hh"

#include <algorithm>
#include <array>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <deque>
#include <unordered_set>

#include "common/logging.hh"

namespace inpg {

namespace {

// ---------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------

/** printf-style std::string formatting (strutil has no such helper). */
std::string
mcFmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return std::string(buf);
}

int
popcount8(unsigned v)
{
    int n = 0;
    for (; v; v &= v - 1)
        ++n;
    return n;
}

// ---------------------------------------------------------------------
// Abstract state
// ---------------------------------------------------------------------

constexpr int MC_MAX_CORES = 3;
constexpr int MC_MAX_MSGS = 24;
constexpr int MC_MAX_DEFER = 4;

/** Non-core destinations of a message. */
constexpr int MC_DIR = -2;
constexpr int MC_BR = -3;

/** L1 line states (static-asserted against the table's convention). */
constexpr int LS_I = 0, LS_S = 1, LS_E = 2, LS_M = 3, LS_O = 4;

/** Directory derived states. */
constexpr int DS_UNCACHED = 0, DS_SHARED = 1, DS_OWNED = 2,
              DS_OWNED_SELF = 3;

/** Big-router derived states. */
constexpr int BS_NONE = 0, BS_IDLE = 1, BS_ARMED = 2;

/** Message flag bits (packed CoherenceMsg booleans). */
enum : unsigned {
    MF_LOCK = 1u << 0,
    MF_DEMOTABLE = 1u << 1,
    MF_DEMOTED = 1u << 2,
    MF_ATOMIC = 1u << 3,
    MF_EARLY_INV = 1u << 4,
    MF_FROM_BR = 1u << 5,
    MF_OWNER_UPGRADE = 1u << 6,
};

/** One in-flight coherence message over the single lock line. */
struct McMsg {
    std::uint8_t kind = 0;      // CohMsgKind
    std::int8_t dst = 0;        // core id, MC_DIR or MC_BR
    std::int8_t requester = -1; // core id
    std::int8_t collector = -1; // core id or MC_BR (ack target)
    std::uint8_t value = 0;
    std::int8_t ackCount = 0; // -1 = owner-supplied DataExcl
    std::uint8_t epoch = 0;
    std::uint8_t flags = 0;
};

std::uint64_t
encodeMsg(const McMsg &m)
{
    return (static_cast<std::uint64_t>(m.kind) << 56) |
           (static_cast<std::uint64_t>(static_cast<std::uint8_t>(m.dst))
            << 48) |
           (static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(m.requester))
            << 40) |
           (static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(m.collector))
            << 32) |
           (static_cast<std::uint64_t>(m.value) << 24) |
           (static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(m.ackCount))
            << 16) |
           (static_cast<std::uint64_t>(m.epoch) << 8) |
           static_cast<std::uint64_t>(m.flags);
}

/** Abstract core operations (a subset of OpRecord's space). */
enum McOpKind : std::uint8_t {
    OP_LOAD = 0,
    OP_STORE = 1,
    OP_SWAP = 2,
    OP_FETCH_ADD = 3,
};

const char *
mcOpName(int k)
{
    static const char *const names[] = {"load", "store", "swap",
                                        "fetch-add"};
    return k >= 0 && k < 4 ? names[k] : "?";
}

/** Pending-transaction bookkeeping, mirroring L1Controller::Pending. */
struct McPending {
    std::uint8_t kind = OP_LOAD;
    std::uint8_t operandA = 0;
    bool isLock = false;
    bool exclusive = false;
    bool demotable = false;
    bool demoted = false;
    bool wasMiss = false;
    bool hasData = false;
    bool hasAckInfo = false;
    bool invWhileFilling = false;
    bool epochKnown = false;
    std::uint8_t data = 0;
    std::int8_t ackCount = 0;
    std::int8_t acksReceived = 0;
    std::uint8_t myEpoch = 0;
};

/** One deferred forward plus its arrival line state (attribution). */
struct McDefer {
    McMsg msg;
    std::uint8_t arrivalState = 0;
};

struct McCore {
    std::uint8_t state = LS_I; // line state
    std::uint8_t value = 0;    // line value
    std::int8_t forwardedTo = -1;
    bool hasPending = false;
    McPending pending;
    std::uint8_t pc = 0;    // program counter
    std::uint8_t hooks = 0; // LCO hook bits fired this transaction
    std::uint8_t nDefer = 0;
    std::array<McDefer, MC_MAX_DEFER> defer{};
};

struct McDir {
    std::int8_t owner = -1;
    std::uint8_t sharers = 0; // core-id bitmask
    std::uint8_t value = 0;
    std::uint8_t epoch = 0; // epochCounter
    /**
     * Early-invalidation trim guard (core-id bitmask): bit c is set
     * while exactly one big-router early-InvAck from core c is
     * expected and core c has not re-registered at the home since the
     * early-invalidated GetX was processed. TrimSharer only applies
     * when the bit is set -- an EI ack that was overtaken by a newer
     * GetS/demote registration of the same core must NOT erase the
     * fresh sharer entry (the model checker found that race as an
     * SWMR violation; see docs/PROTOCOL.md).
     */
    std::uint8_t eiPending = 0;
};

struct McBr {
    bool barrier = false;
    std::uint8_t eis = 0; // open-EI core-id bitmask
};

struct McState {
    std::array<McCore, MC_MAX_CORES> cores{};
    McDir dir;
    McBr br;
    std::uint8_t golden = 0; // golden-memory value of the lock word
    std::uint8_t nMsgs = 0;
    std::array<McMsg, MC_MAX_MSGS> msgs{};
};

void
sortMsgs(McState &st)
{
    std::sort(st.msgs.begin(), st.msgs.begin() + st.nMsgs,
              [](const McMsg &a, const McMsg &b) {
                  return encodeMsg(a) < encodeMsg(b);
              });
}

/** Byte-serialize a state (already-sorted message multiset). */
std::string
encodeState(const McState &st, int num_cores)
{
    std::string out;
    out.reserve(96);
    auto b = [&out](int v) {
        out.push_back(static_cast<char>(static_cast<std::uint8_t>(v)));
    };
    for (int c = 0; c < num_cores; ++c) {
        const McCore &k = st.cores[c];
        b(k.state);
        b(k.value);
        b(k.forwardedTo);
        b(k.pc);
        b(k.hooks);
        b(k.hasPending);
        if (k.hasPending) {
            const McPending &p = k.pending;
            b(p.kind);
            b(p.operandA);
            b((p.isLock << 0) | (p.exclusive << 1) | (p.demotable << 2) |
              (p.demoted << 3) | (p.wasMiss << 4) | (p.hasData << 5) |
              (p.hasAckInfo << 6) | (p.invWhileFilling << 7));
            b(p.epochKnown);
            b(p.data);
            b(p.ackCount);
            b(p.acksReceived);
            b(p.myEpoch);
        }
        b(k.nDefer);
        for (int d = 0; d < k.nDefer; ++d) {
            const std::uint64_t e = encodeMsg(k.defer[d].msg);
            for (int s = 56; s >= 0; s -= 8)
                b(static_cast<int>(e >> s));
            b(k.defer[d].arrivalState);
        }
    }
    b(st.dir.owner);
    b(st.dir.sharers);
    b(st.dir.value);
    b(st.dir.epoch);
    b(st.dir.eiPending);
    b(st.br.barrier);
    b(st.br.eis);
    b(st.golden);
    b(st.nMsgs);
    for (int i = 0; i < st.nMsgs; ++i) {
        const std::uint64_t e = encodeMsg(st.msgs[i]);
        for (int s = 56; s >= 0; s -= 8)
            b(static_cast<int>(e >> s));
    }
    return out;
}

// ---------------------------------------------------------------------
// Scenario programs
// ---------------------------------------------------------------------

/** One abstract instruction. */
struct McOp {
    std::uint8_t kind = OP_LOAD;
    std::uint8_t operandA = 0;
    bool isLock = false;
    bool demotable = false;
};

bool
coreRunsTas(McScenario s, int core)
{
    switch (s) {
      case McScenario::Tas:
      case McScenario::TasNd:
      case McScenario::TasHeld:
        return true;
      case McScenario::Counter:
        return false;
      case McScenario::Rw:
        return core == 0;
    }
    return false;
}

int
programLength(McScenario s, int core)
{
    if (coreRunsTas(s, core))
        return 4; // swap, retry-swap, release, trailing load
    return 2;     // fetch-add + load (Counter) or two loads (Rw)
}

bool
programDone(McScenario s, int core, int pc)
{
    return pc >= programLength(s, core);
}

/** The instruction at (scenario, core, pc); pc must not be done. */
McOp
programOp(McScenario s, int core, int pc)
{
    McOp op;
    if (coreRunsTas(s, core)) {
        switch (pc) {
          case 0:
            op = {OP_SWAP, 1, true,
                  s == McScenario::Tas || s == McScenario::TasHeld ||
                      s == McScenario::Rw};
            return op;
          case 1:
            op = {OP_SWAP, 1, true, false};
            return op;
          case 2:
            op = {OP_STORE, 0, true, false};
            return op;
          default:
            op = {OP_LOAD, 0, false, false};
            return op;
        }
    }
    if (s == McScenario::Counter && pc == 0) {
        op = {OP_FETCH_ADD, 1, false, false};
        return op;
    }
    op = {OP_LOAD, 0, false, false}; // Counter pc1 / Rw reader loads
    return op;
}

/** Advance a core's pc after an op completes. */
int
programNext(McScenario s, int core, int pc, std::uint8_t observed,
            bool demoted)
{
    if (coreRunsTas(s, core)) {
        const bool acquired = observed == 0 && !demoted;
        switch (pc) {
          case 0:
            return acquired ? 2 : 1;
          case 1:
            return acquired ? 2 : 3; // give up after the second miss
          default:
            return pc + 1;
        }
    }
    return pc + 1;
}

/** Value the lock word must hold once every program quiesced. */
std::uint8_t
expectedFinalValue(const McConfig &cfg)
{
    switch (cfg.scenario) {
      case McScenario::Counter:
        return static_cast<std::uint8_t>(cfg.numCores);
      case McScenario::TasHeld:
        return 1; // held at init, never released
      default:
        return 0; // every successful acquire is released
    }
}

std::uint8_t
initialValue(const McConfig &cfg)
{
    return cfg.scenario == McScenario::TasHeld ? 1 : 0;
}

// ---------------------------------------------------------------------
// LCO hooks
// ---------------------------------------------------------------------

enum : unsigned {
    HK_OP_ISSUED = 1u << 0,
    HK_REQUEST_SENT = 1u << 1,
    HK_DIR_ARRIVED = 1u << 2,
    HK_DIR_SERVED = 1u << 3,
    HK_RESPONSE_ARRIVED = 1u << 4,
    HK_INV_ACK_ARRIVED = 1u << 5,
    HK_EARLY_INV_SEEN = 1u << 6,
    HK_OP_COMPLETED = 1u << 7,
};

unsigned
hookBit(const char *name)
{
    if (std::strcmp(name, "opIssued") == 0)
        return HK_OP_ISSUED;
    if (std::strcmp(name, "requestSent") == 0)
        return HK_REQUEST_SENT;
    if (std::strcmp(name, "dirArrived") == 0)
        return HK_DIR_ARRIVED;
    if (std::strcmp(name, "dirServed") == 0)
        return HK_DIR_SERVED;
    if (std::strcmp(name, "responseArrived") == 0)
        return HK_RESPONSE_ARRIVED;
    if (std::strcmp(name, "invAckArrived") == 0)
        return HK_INV_ACK_ARRIVED;
    if (std::strcmp(name, "earlyInvSeen") == 0)
        return HK_EARLY_INV_SEEN;
    if (std::strcmp(name, "opCompleted") == 0)
        return HK_OP_COMPLETED;
    return 0;
}

unsigned
rowHookMask(const ProtoTransition &t)
{
    unsigned m = 0;
    for (const char *h : t.lcoHooks)
        m |= hookBit(h);
    return m;
}

unsigned
rowEmitMask(const ProtoTransition &t)
{
    unsigned m = 0;
    for (const ProtoEmit &e : t.emits)
        m |= 1u << static_cast<int>(e.kind);
    return m;
}

// ---------------------------------------------------------------------
// Steps
// ---------------------------------------------------------------------

enum McStepKind : std::uint8_t {
    STEP_ISSUE = 0,
    STEP_DELIVER = 1,
    STEP_TTL = 2,
};

struct McStep {
    std::uint8_t kind = STEP_ISSUE;
    std::int8_t core = 0;   // STEP_ISSUE only
    std::uint64_t msg = 0;  // STEP_DELIVER only (encoded message)
};

const char *
dstName(int dst)
{
    switch (dst) {
      case MC_DIR:
        return "dir";
      case MC_BR:
        return "big-router";
      default:
        return nullptr;
    }
}

std::string
describeDst(int dst)
{
    if (const char *n = dstName(dst))
        return n;
    return mcFmt("core %d", dst);
}

std::string describeMsg(const McMsg &m);

// ---------------------------------------------------------------------
// Table interpreter
// ---------------------------------------------------------------------

struct IViol {
    std::string invariant;
    std::string detail;
};

/**
 * Applies one BFS step to a state, mirroring the controller semantics
 * (l1_controller.cc, directory.cc, packet_generator.cc) with every
 * panic/assert turned into a violation. All table dispatch is checked:
 * reaching an undeclared or illegal pair, emitting an undeclared
 * message kind (dropped + counted), or leaving a state outside the
 * row's declared nexts is reported. Rows with a single declared next
 * *force* the L1 line into it so next-state mutations change behavior.
 */
class Interp
{
  public:
    Interp(const McConfig &config, const ProtoTableBase &l1_table,
           const ProtoTableBase &dir_table, const ProtoTableBase &br_table,
           McState &state, std::vector<std::string> *trace_out,
           std::uint64_t *drops)
        : cfg(config), l1(l1_table), dir(dir_table), br(br_table),
          st(state), trace(trace_out), emitsDropped(drops)
    {
    }

    std::optional<IViol> viol;

    /** Apply one step; false when a violation fired. */
    bool
    apply(const McStep &step)
    {
        switch (step.kind) {
          case STEP_ISSUE:
            note("step: core %d issues %s", step.core,
                 describeOp(step.core).c_str());
            issue(step.core);
            break;
          case STEP_DELIVER: {
            int idx = -1;
            for (int i = 0; i < st.nMsgs; ++i)
                if (encodeMsg(st.msgs[i]) == step.msg) {
                    idx = i;
                    break;
                }
            INPG_ASSERT(idx >= 0, "model checker: stale deliver step");
            McMsg m = st.msgs[idx];
            st.msgs[idx] = st.msgs[st.nMsgs - 1];
            --st.nMsgs;
            note("step: deliver %s -> %s", describeMsg(m).c_str(),
                 describeDst(m.dst).c_str());
            deliver(m);
            break;
          }
          case STEP_TTL:
            note("step: big-router TTL expires");
            ttlExpire();
            break;
        }
        sortMsgs(st);
        return !viol.has_value();
    }

  private:
    const McConfig &cfg;
    const ProtoTableBase &l1;
    const ProtoTableBase &dir;
    const ProtoTableBase &br;
    McState &st;
    std::vector<std::string> *trace;
    std::uint64_t *emitsDropped;

    // -- plumbing ------------------------------------------------------

    void
    note(const char *fmt, ...)
    {
        if (!trace)
            return;
        va_list ap;
        va_start(ap, fmt);
        char buf[512];
        std::vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        trace->push_back(buf);
    }

    void
    fail(const char *invariant, std::string detail)
    {
        if (!viol)
            viol = IViol{invariant, std::move(detail)};
    }

    std::string
    describeOp(int core) const
    {
        const McOp op = programOp(cfg.scenario, core, st.cores[core].pc);
        std::string s = mcFmt("%s(operand=%d", mcOpName(op.kind),
                              op.operandA);
        if (op.isLock)
            s += ", lock";
        if (op.demotable)
            s += ", demotable";
        s += ")";
        return s;
    }

    /** Table lookup with hole/illegal violations; nullptr on failure. */
    const ProtoTransition *
    row(const ProtoTableBase &t, int state, int event)
    {
        const ProtoTransition *tr = t.find(state, event);
        if (!tr) {
            fail("table-hole",
                 mcFmt("table %s reached undeclared pair (%s, %s)",
                       t.name(), t.stateName(state), t.eventName(event)));
            return nullptr;
        }
        if (!tr->legal()) {
            fail("table-illegal",
                 mcFmt("table %s reached illegal pair (%s, %s): %s",
                       t.name(), t.stateName(state), t.eventName(event),
                       tr->note ? tr->note : "declared impossible"));
            return nullptr;
        }
        note("  dispatch %s: (%s, %s) -> action %d", t.name(),
             t.stateName(state), t.eventName(event), tr->action);
        return tr;
    }

    /**
     * Inject a message if its kind is declared in the firing row's
     * emits; otherwise drop it (trace + counter), which is exactly what
     * a dropped-emit table bug does to the real system.
     */
    void
    sendChecked(const ProtoTransition *attributed, McMsg m)
    {
        if (attributed &&
            !(rowEmitMask(*attributed) &
              (1u << static_cast<int>(m.kind)))) {
            ++*emitsDropped;
            note("  drop %s (kind not declared in row emits)",
                 describeMsg(m).c_str());
            return;
        }
        if (st.nMsgs >= MC_MAX_MSGS) {
            fail("state-overflow",
                 mcFmt("more than %d in-flight messages", MC_MAX_MSGS));
            return;
        }
        note("  send %s -> %s", describeMsg(m).c_str(),
             describeDst(m.dst).c_str());
        st.msgs[st.nMsgs++] = m;
    }

    /** Check golden-memory freshness of every created data response. */
    void
    checkSuppliedValue(const McMsg &m, const char *who)
    {
        if (m.value != st.golden)
            fail("supplied-stale-data",
                 mcFmt("%s supplied %s but golden memory holds %d", who,
                       describeMsg(m).c_str(), st.golden));
    }

    /**
     * Post-action next-state conformance for an L1 row: singleton
     * declared nexts are forced (the table drives the machine), richer
     * next sets are membership-checked against the controller's choice.
     */
    void
    conformL1(const ProtoTransition *tr, int core, bool force)
    {
        if (!tr || viol)
            return;
        McCore &k = st.cores[core];
        if (force && tr->nexts.size() == 1) {
            k.state = static_cast<std::uint8_t>(tr->nexts[0]);
            return;
        }
        for (int n : tr->nexts)
            if (n == k.state)
                return;
        fail("undeclared-next",
             mcFmt("core %d ended in %s after l1 row (%s, %s)", core,
                   l1.stateName(k.state), l1.stateName(tr->state),
                   l1.eventName(tr->event)));
    }

    void
    fireHooks(int core, const ProtoTransition *tr)
    {
        if (tr)
            st.cores[core].hooks |=
                static_cast<std::uint8_t>(rowHookMask(*tr));
    }

    // -- core issue ------------------------------------------------------

    void
    issue(int core)
    {
        McCore &k = st.cores[core];
        const McOp op = programOp(cfg.scenario, core, k.pc);
        const int ev = op.kind == OP_LOAD
                           ? static_cast<int>(L1Event::CoreLoad)
                           : static_cast<int>(L1Event::CoreWrite);
        const ProtoTransition *tr = row(l1, k.state, ev);
        if (!tr)
            return;
        k.hooks = 0; // new transaction: fresh hook accounting
        fireHooks(core, tr);

        McPending p;
        p.kind = op.kind;
        p.operandA = op.operandA;
        p.isLock = op.isLock;
        p.demotable = op.demotable;

        switch (static_cast<L1Action>(tr->action)) {
          case L1Action::LoadHit:
          case L1Action::WriteHit:
            p.hasData = true;
            p.data = k.value;
            k.hasPending = true;
            k.pending = p;
            conformL1(tr, core, /*force=*/true); // WriteHit: E -> M
            executePendingOp(core, tr);
            return;
          case L1Action::BeginLoadMiss:
            p.exclusive = false;
            p.wasMiss = true;
            break;
          case L1Action::BeginWriteMiss:
            p.exclusive = true;
            p.wasMiss = true;
            break;
          case L1Action::BeginUpgrade:
            p.exclusive = true;
            p.demotable = false; // never demotable from O
            p.wasMiss = true;
            break;
          default:
            fail("bad-action", mcFmt("core-event action %d", tr->action));
            return;
        }
        conformL1(tr, core, /*force=*/true);
        k.hasPending = true;
        k.pending = p;

        McMsg m;
        m.kind = static_cast<std::uint8_t>(
            p.exclusive ? CohMsgKind::GetX : CohMsgKind::GetS);
        m.requester = static_cast<std::int8_t>(core);
        if (p.isLock)
            m.flags |= MF_LOCK;
        if (p.exclusive && p.demotable)
            m.flags |= MF_DEMOTABLE;
        if (p.kind == OP_SWAP || p.kind == OP_FETCH_ADD)
            m.flags |= MF_ATOMIC;
        // Lock-atomic GetX traverses the big router (iNPG); everything
        // else goes straight to the home.
        const bool viaBr = cfg.bigRouter &&
                           m.kind ==
                               static_cast<int>(CohMsgKind::GetX) &&
                           (m.flags & MF_LOCK) && (m.flags & MF_ATOMIC);
        m.dst = static_cast<std::int8_t>(viaBr ? MC_BR : MC_DIR);
        sendChecked(tr, m);
    }

    // -- message delivery ------------------------------------------------

    void
    deliver(const McMsg &m)
    {
        if (m.dst == MC_BR)
            deliverBigRouter(m);
        else if (m.dst == MC_DIR)
            deliverDirectory(m);
        else
            deliverL1(m.dst, m);
    }

    // -- big router --------------------------------------------------------

    int
    brState() const
    {
        if (!st.br.barrier)
            return BS_NONE;
        return st.br.eis == 0 ? BS_IDLE : BS_ARMED;
    }

    void
    deliverBigRouter(McMsg m)
    {
        if (m.kind == static_cast<int>(CohMsgKind::GetX)) {
            // Arrival (RC stage): maybe stop-and-invalidate.
            if ((m.flags & MF_LOCK) && (m.flags & MF_ATOMIC) &&
                !(m.flags & MF_EARLY_INV)) {
                const ProtoTransition *tr =
                    row(br, brState(),
                        static_cast<int>(BrEvent::LockGetXArrival));
                if (!tr)
                    return;
                if (static_cast<BrAction>(tr->action) ==
                    BrAction::StopAndInvalidate) {
                    const unsigned bit = 1u << m.requester;
                    if ((st.br.eis & bit) ||
                        popcount8(st.br.eis) >= cfg.eiCapacity) {
                        note("  ei-list full/duplicate: pass through");
                    } else {
                        st.br.eis |= static_cast<std::uint8_t>(bit);
                        m.flags |= MF_EARLY_INV | MF_FROM_BR;
                        note("  ei-open core %d", m.requester);
                        McMsg inv;
                        inv.kind =
                            static_cast<std::uint8_t>(CohMsgKind::Inv);
                        inv.dst = m.requester;
                        inv.requester = m.requester;
                        inv.collector = MC_BR;
                        inv.flags = MF_LOCK | MF_FROM_BR;
                        sendChecked(tr, inv);
                    }
                }
            }
            if (viol)
                return;
            // Transfer (ST stage): install/refresh the barrier.
            if ((m.flags & MF_LOCK) && (m.flags & MF_ATOMIC)) {
                const ProtoTransition *tr =
                    row(br, brState(),
                        static_cast<int>(BrEvent::LockGetXTransfer));
                if (!tr)
                    return;
                switch (static_cast<BrAction>(tr->action)) {
                  case BrAction::InstallBarrier:
                  case BrAction::RefreshBarrier:
                    st.br.barrier = true; // abstract table never fills
                    break;
                  default:
                    fail("bad-action",
                         mcFmt("br transfer action %d", tr->action));
                    return;
                }
            }
            // Continue to the home node.
            m.dst = MC_DIR;
            if (st.nMsgs >= MC_MAX_MSGS) {
                fail("state-overflow", "message multiset full");
                return;
            }
            note("  forward %s -> dir", describeMsg(m).c_str());
            st.msgs[st.nMsgs++] = m;
            return;
        }

        if (m.kind == static_cast<int>(CohMsgKind::InvAck) &&
            (m.flags & MF_FROM_BR)) {
            const ProtoTransition *tr = row(
                br, brState(), static_cast<int>(BrEvent::EarlyInvAck));
            if (!tr)
                return;
            switch (static_cast<BrAction>(tr->action)) {
              case BrAction::RelayAndCloseEi: {
                const unsigned bit = 1u << m.requester;
                if (st.br.eis & bit) {
                    st.br.eis &= static_cast<std::uint8_t>(~bit);
                    note("  ei-close core %d", m.requester);
                } else {
                    note("  stale early ack (no open EI)");
                }
                break;
              }
              case BrAction::RelayStale:
                note("  stale early ack (barrier idle/gone)");
                break;
              default:
                fail("bad-action",
                     mcFmt("br ack action %d", tr->action));
                return;
            }
            McMsg relay = m;
            relay.dst = MC_DIR;
            sendChecked(tr, relay);
            return;
        }
        fail("misrouted", mcFmt("big router cannot process %s",
                                describeMsg(m).c_str()));
    }

    void
    ttlExpire()
    {
        const ProtoTransition *tr =
            row(br, brState(), static_cast<int>(BrEvent::TtlExpire));
        if (!tr)
            return;
        if (static_cast<BrAction>(tr->action) == BrAction::ExpireBarrier)
            st.br.barrier = false;
        else
            fail("bad-action", mcFmt("br ttl action %d", tr->action));
    }

    // -- directory ---------------------------------------------------------

    int
    dirStateFor(int requester) const
    {
        if (st.dir.owner < 0)
            return st.dir.sharers ? DS_SHARED : DS_UNCACHED;
        return st.dir.owner == requester ? DS_OWNED_SELF : DS_OWNED;
    }

    std::int8_t
    biasedAcks(int n)
    {
        n += cfg.ackCountBias;
        return static_cast<std::int8_t>(n < 0 ? 0 : n);
    }

    void
    deliverDirectory(const McMsg &m)
    {
        int ev;
        switch (static_cast<CohMsgKind>(m.kind)) {
          case CohMsgKind::GetS:
            ev = static_cast<int>(DirEvent::GetS);
            break;
          case CohMsgKind::GetX:
            ev = static_cast<int>((m.flags & MF_DEMOTABLE)
                                      ? DirEvent::GetXDemotable
                                      : DirEvent::GetX);
            break;
          case CohMsgKind::InvAck:
            if (!(m.flags & MF_FROM_BR)) {
                fail("misrouted",
                     mcFmt("directory got a non-early %s",
                           describeMsg(m).c_str()));
                return;
            }
            ev = static_cast<int>(DirEvent::EarlyInvAck);
            break;
          default:
            fail("misrouted", mcFmt("directory cannot process %s",
                                    describeMsg(m).c_str()));
            return;
        }
        const int preState = dirStateFor(m.requester);
        const ProtoTransition *tr = row(dir, preState, ev);
        if (!tr)
            return;
        fireHooks(m.requester, tr);

        switch (static_cast<DirAction>(tr->action)) {
          case DirAction::GrantExclusive:
            grantExclusive(m, tr);
            break;
          case DirAction::AnswerShared:
            answerShared(m, tr);
            break;
          case DirAction::ForwardGetS:
            forwardGetS(m, tr, /*demoted=*/false);
            break;
          case DirAction::InvalidateAndGrant:
            invalidateAndGrant(m, tr);
            break;
          case DirAction::ForwardGetX:
            forwardGetX(m, tr);
            break;
          case DirAction::OwnerUpgrade:
            ownerUpgrade(m, tr);
            break;
          case DirAction::DemoteViaOwner:
            forwardGetS(m, tr, /*demoted=*/true);
            break;
          case DirAction::DemoteOrGrant:
            if (st.dir.value != 0)
                demoteAtHome(m, tr);
            else
                invalidateAndGrant(m, tr);
            break;
          case DirAction::TrimSharer:
            // Guarded trim: only erase the sharer when the matching
            // early-invalidated GetX was seen and no newer
            // registration of this core has overtaken the ack.
            if (st.dir.eiPending & (1u << m.requester)) {
                st.dir.eiPending &= static_cast<std::uint8_t>(
                    ~(1u << m.requester));
                st.dir.sharers &=
                    static_cast<std::uint8_t>(~(1u << m.requester));
                note("home trims sharer %d", m.requester);
            } else {
                note("home ignores stale early ack from core %d",
                     m.requester);
            }
            break;
          default:
            fail("bad-action", mcFmt("dir action %d", tr->action));
            return;
        }
        if (viol)
            return;
        // Arm the trim guard once the early-invalidated GetX itself
        // has been served (its own demote registration is part of the
        // same transaction, not a newer one). A second marked GetX
        // while an ack is still due is ambiguous -- forgo both trims.
        if ((m.flags & MF_EARLY_INV) &&
            static_cast<CohMsgKind>(m.kind) == CohMsgKind::GetX) {
            st.dir.eiPending ^=
                static_cast<std::uint8_t>(1u << m.requester);
            note("home %s trim guard for core %d",
                 (st.dir.eiPending & (1u << m.requester)) ? "arms"
                                                          : "disarms",
                 m.requester);
        }
        // Derived-state conformance against the same requester.
        const int postState = dirStateFor(m.requester);
        bool listed = false;
        for (int n : tr->nexts)
            listed = listed || n == postState;
        if (!listed)
            fail("undeclared-next",
                 mcFmt("directory ended in %s after row (%s, %s)",
                       dir.stateName(postState), dir.stateName(preState),
                       dir.eventName(ev)));
    }

    void
    grantExclusive(const McMsg &m, const ProtoTransition *tr)
    {
        st.dir.owner = m.requester;
        McMsg d;
        d.kind = static_cast<std::uint8_t>(CohMsgKind::DataExcl);
        d.dst = m.requester;
        d.requester = m.requester;
        d.value = st.dir.value;
        d.ackCount = biasedAcks(0);
        d.flags = static_cast<std::uint8_t>(m.flags & MF_LOCK);
        checkSuppliedValue(d, "home (grant-exclusive)");
        sendChecked(tr, d);
    }

    void
    answerShared(const McMsg &m, const ProtoTransition *tr)
    {
        st.dir.sharers |= static_cast<std::uint8_t>(1u << m.requester);
        // A fresh registration invalidates any EI ack still in flight.
        st.dir.eiPending &=
            static_cast<std::uint8_t>(~(1u << m.requester));
        McMsg d;
        d.kind = static_cast<std::uint8_t>(CohMsgKind::Data);
        d.dst = m.requester;
        d.requester = m.requester;
        d.value = st.dir.value;
        d.flags = static_cast<std::uint8_t>(m.flags & MF_LOCK);
        checkSuppliedValue(d, "home (answer-shared)");
        sendChecked(tr, d);
    }

    void
    forwardGetS(const McMsg &m, const ProtoTransition *tr, bool demoted)
    {
        st.dir.sharers |= static_cast<std::uint8_t>(1u << m.requester);
        // A fresh registration invalidates any EI ack still in flight.
        st.dir.eiPending &=
            static_cast<std::uint8_t>(~(1u << m.requester));
        McMsg f;
        f.kind = static_cast<std::uint8_t>(CohMsgKind::FwdGetS);
        f.dst = st.dir.owner;
        f.requester = m.requester;
        f.epoch = st.dir.epoch; // current epoch, NOT incremented
        f.flags = static_cast<std::uint8_t>(m.flags & MF_LOCK);
        if (demoted)
            f.flags |= MF_DEMOTED;
        sendChecked(tr, f);
    }

    void
    sendInvalidations(unsigned targets, int collector,
                      const ProtoTransition *tr, unsigned lock_flag)
    {
        for (int c = 0; c < cfg.numCores; ++c) {
            if (!(targets & (1u << c)))
                continue;
            McMsg inv;
            inv.kind = static_cast<std::uint8_t>(CohMsgKind::Inv);
            inv.dst = static_cast<std::int8_t>(c);
            inv.requester = static_cast<std::int8_t>(c);
            inv.collector = static_cast<std::int8_t>(collector);
            inv.flags = static_cast<std::uint8_t>(lock_flag);
            sendChecked(tr, inv);
        }
    }

    void
    invalidateAndGrant(const McMsg &m, const ProtoTransition *tr)
    {
        const std::uint8_t epoch = ++st.dir.epoch;
        const unsigned toInv = st.dir.sharers & ~(1u << m.requester);
        sendInvalidations(toInv, m.requester, tr, m.flags & MF_LOCK);
        McMsg d;
        d.kind = static_cast<std::uint8_t>(CohMsgKind::DataExcl);
        d.dst = m.requester;
        d.requester = m.requester;
        d.value = st.dir.value;
        d.ackCount = biasedAcks(popcount8(toInv));
        d.epoch = epoch;
        d.flags = static_cast<std::uint8_t>(m.flags & MF_LOCK);
        checkSuppliedValue(d, "home (invalidate-and-grant)");
        sendChecked(tr, d);
        st.dir.owner = m.requester;
        st.dir.sharers = 0;
    }

    void
    forwardGetX(const McMsg &m, const ProtoTransition *tr)
    {
        const std::uint8_t epoch = ++st.dir.epoch;
        const unsigned toInv = st.dir.sharers & ~(1u << m.requester) &
                               ~(1u << st.dir.owner);
        McMsg f;
        f.kind = static_cast<std::uint8_t>(CohMsgKind::FwdGetX);
        f.dst = st.dir.owner;
        f.requester = m.requester;
        f.epoch = epoch;
        f.flags = static_cast<std::uint8_t>(m.flags & MF_LOCK);
        sendChecked(tr, f);
        McMsg a;
        a.kind = static_cast<std::uint8_t>(CohMsgKind::AckCount);
        a.dst = m.requester;
        a.requester = m.requester;
        a.ackCount = biasedAcks(popcount8(toInv));
        a.epoch = epoch;
        a.flags = static_cast<std::uint8_t>(m.flags & MF_LOCK);
        sendChecked(tr, a);
        sendInvalidations(toInv, m.requester, tr, m.flags & MF_LOCK);
        st.dir.owner = m.requester;
        st.dir.sharers = 0;
    }

    void
    ownerUpgrade(const McMsg &m, const ProtoTransition *tr)
    {
        const std::uint8_t epoch = ++st.dir.epoch;
        const unsigned toInv = st.dir.sharers & ~(1u << m.requester);
        McMsg a;
        a.kind = static_cast<std::uint8_t>(CohMsgKind::AckCount);
        a.dst = m.requester;
        a.requester = m.requester;
        a.ackCount = biasedAcks(popcount8(toInv));
        a.epoch = epoch;
        a.flags = static_cast<std::uint8_t>((m.flags & MF_LOCK) |
                                            MF_OWNER_UPGRADE);
        sendChecked(tr, a);
        sendInvalidations(toInv, m.requester, tr, m.flags & MF_LOCK);
        st.dir.owner = m.requester;
        st.dir.sharers = 0;
    }

    void
    demoteAtHome(const McMsg &m, const ProtoTransition *tr)
    {
        st.dir.sharers |= static_cast<std::uint8_t>(1u << m.requester);
        // A fresh registration invalidates any EI ack still in flight.
        st.dir.eiPending &=
            static_cast<std::uint8_t>(~(1u << m.requester));
        McMsg d;
        d.kind = static_cast<std::uint8_t>(CohMsgKind::Data);
        d.dst = m.requester;
        d.requester = m.requester;
        d.value = st.dir.value;
        d.flags = static_cast<std::uint8_t>((m.flags & MF_LOCK) |
                                            MF_DEMOTED);
        checkSuppliedValue(d, "home (demote-at-home)");
        sendChecked(tr, d);
    }

    // -- L1 -----------------------------------------------------------------

    void
    deliverL1(int core, const McMsg &m)
    {
        McCore &k = st.cores[core];
        const L1Event ev =
            l1EventForMsgKind(static_cast<CohMsgKind>(m.kind));
        switch (ev) {
          case L1Event::Inv:
            handleInv(core, m);
            return;
          case L1Event::FwdGetS:
          case L1Event::FwdGetX:
            handleForward(core, m);
            return;
          case L1Event::Data:
            handleData(core, m);
            return;
          case L1Event::DataExcl:
            handleDataExcl(core, m);
            return;
          case L1Event::AckCount:
            handleAckCount(core, m);
            return;
          case L1Event::InvAck:
            handleInvAck(core, m);
            return;
          default:
            fail("misrouted", mcFmt("core %d cannot process %s", core,
                                    describeMsg(m).c_str()));
            (void)k;
            return;
        }
    }

    void
    handleInv(int core, const McMsg &m)
    {
        McCore &k = st.cores[core];
        const int pre = k.state;
        const std::uint8_t preValue = k.value;
        const ProtoTransition *tr =
            row(l1, k.state, static_cast<int>(L1Event::Inv));
        if (!tr)
            return;
        fireHooks(core, tr);
        // Every Inv row declares exactly one next state: force it, so a
        // swapped-next mutation actually invalidates (or keeps) copies.
        conformL1(tr, core, /*force=*/true);

        // Paper safety property: an early (big-router) invalidation
        // must never take the line away from an owner whose dirty copy
        // IS the lock word -- the shipped table acks stale Invs on
        // M/E/O without touching the line.
        if ((m.flags & MF_FROM_BR) && (pre == LS_M || pre == LS_O) &&
            preValue != 0 && k.state == LS_I) {
            fail("early-inv-dirty-owner",
                 mcFmt("early Inv invalidated core %d holding the "
                       "dirty lock word (%s -> I, value=%d)",
                       core, l1.stateName(pre), preValue));
            return;
        }

        if (k.hasPending)
            k.pending.invWhileFilling = true;

        McMsg ack;
        ack.kind = static_cast<std::uint8_t>(CohMsgKind::InvAck);
        ack.dst = m.collector;
        ack.requester = static_cast<std::int8_t>(core);
        ack.collector = m.collector;
        ack.flags = static_cast<std::uint8_t>(
            m.flags & (MF_LOCK | MF_FROM_BR));
        sendChecked(tr, ack);
    }

    void
    handleForward(int core, const McMsg &m)
    {
        McCore &k = st.cores[core];
        const ProtoTransition *tr = row(
            l1, k.state,
            static_cast<int>(l1EventForMsgKind(
                static_cast<CohMsgKind>(m.kind))));
        if (!tr)
            return;
        if (deferIncomingForward(core, m)) {
            if (k.nDefer >= MC_MAX_DEFER) {
                fail("defer-overflow",
                     mcFmt("core %d deferred more than %d forwards",
                           core, MC_MAX_DEFER));
                return;
            }
            note("  defer %s (transaction pending, arrival state %s)",
                 describeMsg(m).c_str(), l1.stateName(k.state));
            k.defer[k.nDefer].msg = m;
            k.defer[k.nDefer].arrivalState = k.state;
            ++k.nDefer;
            return;
        }
        serveForward(core, m, tr, /*force=*/true);
    }

    bool
    deferIncomingForward(int core, const McMsg &m) const
    {
        const McCore &k = st.cores[core];
        if (!k.hasPending)
            return false;
        // Pre-epoch forward while the pre-transaction copy is still
        // resident (O-state upgrade window): serve immediately.
        if (k.pending.epochKnown && m.epoch < k.pending.myEpoch &&
            (k.state == LS_M || k.state == LS_E || k.state == LS_O))
            return false;
        return true;
    }

    /**
     * Serve (or chain-relay) a forward. `attributed` is the row the
     * emission is charged to: the live row for straight-through
     * forwards, the arrival row for deferred ones. `force` applies
     * singleton-next forcing only on the non-deferred path (a deferred
     * forward's end state belongs to the service-time dynamics).
     */
    void
    serveForward(int core, const McMsg &m, const ProtoTransition *attributed,
                 bool force)
    {
        McCore &k = st.cores[core];
        if (k.state == LS_M || k.state == LS_E || k.state == LS_O) {
            if (m.kind == static_cast<int>(CohMsgKind::FwdGetS)) {
                k.state = LS_O;
                McMsg d;
                d.kind = static_cast<std::uint8_t>(CohMsgKind::Data);
                d.dst = m.requester;
                d.requester = m.requester;
                d.value = k.value;
                d.epoch = 0; // untracked on Data (ignored by fills)
                d.flags = static_cast<std::uint8_t>(
                    m.flags & (MF_LOCK | MF_DEMOTED));
                checkSuppliedValue(d, mcFmt("core %d (owner serve "
                                            "FwdGetS)", core)
                                          .c_str());
                sendChecked(attributed, d);
            } else {
                McMsg d;
                d.kind = static_cast<std::uint8_t>(CohMsgKind::DataExcl);
                d.dst = m.requester;
                d.requester = m.requester;
                d.value = k.value;
                d.ackCount = -1; // ack info comes from the home
                d.epoch = m.epoch;
                d.flags = static_cast<std::uint8_t>(m.flags & MF_LOCK);
                checkSuppliedValue(d, mcFmt("core %d (owner serve "
                                            "FwdGetX)", core)
                                          .c_str());
                k.state = LS_I;
                k.forwardedTo = m.requester;
                sendChecked(attributed, d);
            }
            if (force)
                conformL1(attributed, core, /*force=*/false);
            else
                conformDeferred(core, attributed);
            return;
        }
        // Not the owner any more: chase the ownership chain.
        if (k.forwardedTo < 0) {
            fail("chain-broken",
                 mcFmt("core %d cannot re-forward %s (state %s, no "
                       "forwardedTo)",
                       core, describeMsg(m).c_str(),
                       l1.stateName(k.state)));
            return;
        }
        McMsg relay = m;
        relay.dst = k.forwardedTo;
        sendChecked(attributed, relay);
        if (force)
            conformL1(attributed, core, /*force=*/false);
        else
            conformDeferred(core, attributed);
    }

    /** Membership-only conformance for deferred-service end states. */
    void
    conformDeferred(int core, const ProtoTransition *tr)
    {
        if (!tr || viol)
            return;
        for (int n : tr->nexts)
            if (n == st.cores[core].state)
                return;
        fail("undeclared-next",
             mcFmt("core %d ended in %s serving a forward deferred at "
                   "l1 row (%s, %s)",
                   core, l1.stateName(st.cores[core].state),
                   l1.stateName(tr->state), l1.eventName(tr->event)));
    }

    void
    handleData(int core, const McMsg &m)
    {
        McCore &k = st.cores[core];
        const ProtoTransition *tr =
            row(l1, k.state, static_cast<int>(L1Event::Data));
        if (!tr)
            return;
        fireHooks(core, tr);
        if (!k.hasPending ||
            (k.pending.exclusive && !(m.flags & MF_DEMOTED))) {
            fail("unexpected-data", mcFmt("core %d got unexpected %s",
                                          core, describeMsg(m).c_str()));
            return;
        }
        k.pending.hasData = true;
        k.pending.data = m.value;
        k.pending.demoted = (m.flags & MF_DEMOTED) != 0;
        if (!k.pending.invWhileFilling) {
            k.value = m.value;
            k.state = LS_S;
        }
        conformL1(tr, core, /*force=*/false);
        if (viol)
            return;
        executePendingOp(core, tr);
    }

    void
    handleDataExcl(int core, const McMsg &m)
    {
        McCore &k = st.cores[core];
        const ProtoTransition *tr =
            row(l1, k.state, static_cast<int>(L1Event::DataExcl));
        if (!tr)
            return;
        fireHooks(core, tr);
        if (!k.hasPending) {
            fail("unexpected-data", mcFmt("core %d got unexpected %s",
                                          core, describeMsg(m).c_str()));
            return;
        }
        if (!k.pending.exclusive) {
            // GetS answered exclusively: no other copy exists.
            if (m.ackCount != 0) {
                fail("read-with-acks",
                     mcFmt("core %d: DataExcl for a read carries %d "
                           "acks",
                           core, m.ackCount));
                return;
            }
            k.value = m.value;
            k.state = LS_E;
            k.pending.hasData = true;
            k.pending.data = m.value;
            conformL1(tr, core, /*force=*/false);
            if (viol)
                return;
            executePendingOp(core, tr);
            return;
        }
        k.pending.hasData = true;
        k.pending.data = m.value;
        if (m.ackCount >= 0) {
            if (k.pending.hasAckInfo) {
                fail("duplicate-ack-info",
                     mcFmt("core %d got duplicate ack info", core));
                return;
            }
            k.pending.hasAckInfo = true;
            k.pending.ackCount = m.ackCount;
        }
        learnEpoch(core, m.epoch);
        if (viol)
            return;
        maybeCompleteExclusive(core, tr);
    }

    void
    handleAckCount(int core, const McMsg &m)
    {
        McCore &k = st.cores[core];
        const ProtoTransition *tr =
            row(l1, k.state, static_cast<int>(L1Event::AckCount));
        if (!tr)
            return;
        fireHooks(core, tr);
        if (!k.hasPending || !k.pending.exclusive) {
            fail("stray-ackcount", mcFmt("core %d got stray %s", core,
                                         describeMsg(m).c_str()));
            return;
        }
        if (k.pending.hasAckInfo) {
            fail("duplicate-ack-info",
                 mcFmt("core %d got duplicate ack info", core));
            return;
        }
        k.pending.hasAckInfo = true;
        k.pending.ackCount = m.ackCount;
        if (m.flags & MF_OWNER_UPGRADE) {
            if (k.state != LS_O) {
                fail("upgrade-not-owner",
                     mcFmt("core %d upgrade-acked in state %s", core,
                           l1.stateName(k.state)));
                return;
            }
            k.pending.hasData = true;
            k.pending.data = k.value;
        }
        learnEpoch(core, m.epoch);
        if (viol)
            return;
        maybeCompleteExclusive(core, tr);
    }

    void
    handleInvAck(int core, const McMsg &m)
    {
        McCore &k = st.cores[core];
        const ProtoTransition *tr =
            row(l1, k.state, static_cast<int>(L1Event::InvAck));
        if (!tr)
            return;
        fireHooks(core, tr);
        if (!k.hasPending || !k.pending.exclusive) {
            fail("stray-invack", mcFmt("core %d got stray %s", core,
                                       describeMsg(m).c_str()));
            return;
        }
        ++k.pending.acksReceived;
        if (k.pending.hasAckInfo &&
            k.pending.acksReceived > k.pending.ackCount) {
            fail("over-collected",
                 mcFmt("core %d over-collected acks (%d of %d)", core,
                       k.pending.acksReceived, k.pending.ackCount));
            return;
        }
        maybeCompleteExclusive(core, tr);
    }

    void
    learnEpoch(int core, std::uint8_t epoch)
    {
        McCore &k = st.cores[core];
        if (!k.hasPending || !k.pending.exclusive ||
            k.pending.epochKnown)
            return;
        k.pending.epochKnown = true;
        k.pending.myEpoch = epoch;
        // O-state upgrade window: still holding the pre-transaction
        // copy, serve pre-epoch forwards from it straight away.
        if (!(k.state == LS_M || k.state == LS_E || k.state == LS_O))
            return;
        servePreEpochDeferred(core, epoch);
    }

    void
    sortDeferred(McCore &k)
    {
        std::stable_sort(k.defer.begin(), k.defer.begin() + k.nDefer,
                         [](const McDefer &a, const McDefer &b) {
                             return a.msg.epoch < b.msg.epoch;
                         });
    }

    void
    servePreEpochDeferred(int core, std::uint8_t epoch)
    {
        McCore &k = st.cores[core];
        sortDeferred(k);
        while (!viol && k.nDefer > 0 && k.defer[0].msg.epoch < epoch) {
            McDefer d = k.defer[0];
            popDeferFront(k);
            serveDeferredOne(core, d);
        }
    }

    void
    popDeferFront(McCore &k)
    {
        for (int i = 1; i < k.nDefer; ++i)
            k.defer[i - 1] = k.defer[i];
        --k.nDefer;
    }

    void
    serveDeferredOne(int core, const McDefer &d)
    {
        // Attribution: emits and end-state conformance charge to the
        // forward's arrival row (deferral only delays processing).
        const ProtoTransition *arrival =
            l1.find(d.arrivalState,
                    static_cast<int>(l1EventForMsgKind(
                        static_cast<CohMsgKind>(d.msg.kind))));
        note("  serve deferred %s (arrival state %s)",
             describeMsg(d.msg).c_str(), l1.stateName(d.arrivalState));
        serveForward(core, d.msg, arrival, /*force=*/false);
    }

    void
    maybeCompleteExclusive(int core, const ProtoTransition *tr)
    {
        McCore &k = st.cores[core];
        if (!k.hasPending || !k.pending.exclusive)
            return;
        if (!k.pending.hasData || !k.pending.hasAckInfo)
            return;
        if (k.pending.acksReceived < k.pending.ackCount)
            return;
        executePendingOp(core, tr);
    }

    /**
     * Complete the pending operation: LCO-tiling check, golden-memory
     * check + update, pre-epoch deferred service, program advance, and
     * the post-completion deferred-forward drain -- mirroring
     * L1Controller::executePendingOp. `tr` is the row whose handling
     * triggered completion (conformance of the M end state).
     */
    void
    executePendingOp(int core, const ProtoTransition *tr)
    {
        McCore &k = st.cores[core];
        INPG_ASSERT(k.hasPending && k.pending.hasData,
                    "model checker: executing op without data");
        McPending op = k.pending;
        k.hasPending = false;
        k.pending = McPending{};

        // LCO tiling: the attribution hooks a completed transaction
        // must have fired (DESIGN.md section 13 invariant list).
        unsigned required = HK_OP_ISSUED | HK_OP_COMPLETED;
        if (op.wasMiss)
            required |= HK_REQUEST_SENT | HK_DIR_ARRIVED |
                        HK_DIR_SERVED | HK_RESPONSE_ARRIVED;
        if (op.acksReceived > 0)
            required |= HK_INV_ACK_ARRIVED;
        if ((k.hooks & required) != required) {
            fail("lco-tiling",
                 mcFmt("core %d completed %s with hook mask 0x%02x "
                       "(required 0x%02x)",
                       core, mcOpName(op.kind), k.hooks, required));
            return;
        }

        const bool isWrite = op.kind != OP_LOAD && !op.demoted;
        if (isWrite && op.exclusive && op.data != st.golden) {
            fail("golden-mismatch",
                 mcFmt("core %d completes exclusive %s observing %d "
                       "but golden memory holds %d",
                       core, mcOpName(op.kind), op.data, st.golden));
            return;
        }

        if (op.exclusive && op.epochKnown && k.nDefer > 0 &&
            !op.demoted) {
            // Pre-epoch forwards observe the pre-operation value:
            // provisional fill, then serve them in epoch order.
            sortDeferred(k);
            if (k.defer[0].msg.epoch < op.myEpoch) {
                k.value = op.data;
                k.state = LS_M;
                while (!viol && k.nDefer > 0 &&
                       k.defer[0].msg.epoch < op.myEpoch) {
                    McDefer d = k.defer[0];
                    if (d.msg.kind !=
                        static_cast<int>(CohMsgKind::FwdGetS)) {
                        fail("pre-epoch-fwdgetx",
                             mcFmt("core %d: pre-epoch %s deferred",
                                   core, describeMsg(d.msg).c_str()));
                        return;
                    }
                    popDeferFront(k);
                    serveDeferredOne(core, d);
                }
                if (viol)
                    return;
            }
        }

        std::uint8_t newValue = op.data;
        if (op.demoted) {
            // Demoted atomic: observed via a shared copy, no write.
            note("  core %d completes %s demoted (observed=%d)", core,
                 mcOpName(op.kind), op.data);
        } else {
            switch (op.kind) {
              case OP_LOAD:
                break;
              case OP_STORE:
                newValue = op.operandA;
                break;
              case OP_SWAP:
                newValue = op.operandA;
                break;
              case OP_FETCH_ADD:
                newValue =
                    static_cast<std::uint8_t>(op.data + op.operandA);
                break;
            }
            if (op.kind != OP_LOAD) {
                k.value = newValue;
                k.state = LS_M;
                st.golden = newValue; // the write serializes here
                conformL1(tr, core, /*force=*/false);
                if (viol)
                    return;
            }
            note("  core %d completes %s (observed=%d, line=%d, "
                 "golden=%d)",
                 core, mcOpName(op.kind), op.data, k.value, st.golden);
        }

        k.pc = static_cast<std::uint8_t>(programNext(
            cfg.scenario, core, k.pc, op.data, op.demoted));
        note("  core %d program advances to pc %d", core, k.pc);

        // Drain the remaining (post-epoch) deferred forwards.
        while (!viol && k.nDefer > 0) {
            McDefer d = k.defer[0];
            popDeferFront(k);
            serveDeferredOne(core, d);
        }
    }
};

std::string
describeMsg(const McMsg &m)
{
    std::string s = cohMsgKindName(static_cast<CohMsgKind>(m.kind));
    s += mcFmt("[req=%d", m.requester);
    if (m.kind == static_cast<int>(CohMsgKind::Inv) ||
        m.kind == static_cast<int>(CohMsgKind::InvAck))
        s += mcFmt(" coll=%s", describeDst(m.collector).c_str());
    if (m.kind == static_cast<int>(CohMsgKind::Data) ||
        m.kind == static_cast<int>(CohMsgKind::DataExcl))
        s += mcFmt(" val=%d", m.value);
    if (m.kind == static_cast<int>(CohMsgKind::DataExcl) ||
        m.kind == static_cast<int>(CohMsgKind::AckCount))
        s += mcFmt(" acks=%d", m.ackCount);
    if (m.epoch)
        s += mcFmt(" epoch=%d", m.epoch);
    if (m.flags & MF_LOCK)
        s += " lock";
    if (m.flags & MF_DEMOTABLE)
        s += " demotable";
    if (m.flags & MF_DEMOTED)
        s += " demoted";
    if (m.flags & MF_ATOMIC)
        s += " atomic";
    if (m.flags & MF_EARLY_INV)
        s += " early-inv";
    if (m.flags & MF_FROM_BR)
        s += " from-br";
    if (m.flags & MF_OWNER_UPGRADE)
        s += " owner-upgrade";
    s += "]";
    return s;
}

// ---------------------------------------------------------------------
// Global state invariants (checked after every step)
// ---------------------------------------------------------------------

std::optional<IViol>
checkStateInvariants(const McConfig &cfg, const McState &st)
{
    // SWMR: at most one core in an owner state; a core in E or M means
    // every other core is I.
    int owners = 0, exclusiveOwner = -1;
    for (int c = 0; c < cfg.numCores; ++c) {
        const int s = st.cores[c].state;
        if (s == LS_E || s == LS_M || s == LS_O)
            ++owners;
        if (s == LS_E || s == LS_M)
            exclusiveOwner = c;
    }
    if (owners > 1)
        return IViol{"swmr", mcFmt("%d cores hold owner states", owners)};
    if (exclusiveOwner >= 0) {
        for (int c = 0; c < cfg.numCores; ++c)
            if (c != exclusiveOwner && st.cores[c].state != LS_I)
                return IViol{
                    "swmr",
                    mcFmt("core %d holds %s while core %d is exclusive",
                          c, l1TableStateName(st.cores[c].state),
                          exclusiveOwner)};
    }

    // Valid copies match golden memory.
    for (int c = 0; c < cfg.numCores; ++c)
        if (st.cores[c].state != LS_I && st.cores[c].value != st.golden)
            return IViol{"valid-copy",
                         mcFmt("core %d holds %s value %d but golden "
                               "memory holds %d",
                               c, l1TableStateName(st.cores[c].state),
                               st.cores[c].value, st.golden)};

    // Barrier-count conservation, home side: for every ack-collecting
    // transaction, outstanding acks == in-flight home Invs it collects
    // plus in-flight home InvAcks addressed to it.
    for (int c = 0; c < cfg.numCores; ++c) {
        const McCore &k = st.cores[c];
        if (!k.hasPending || !k.pending.exclusive ||
            !k.pending.hasAckInfo)
            continue;
        int inFlight = 0;
        for (int i = 0; i < st.nMsgs; ++i) {
            const McMsg &m = st.msgs[i];
            if (m.flags & MF_FROM_BR)
                continue;
            if (m.kind == static_cast<int>(CohMsgKind::Inv) &&
                m.collector == c)
                ++inFlight;
            if (m.kind == static_cast<int>(CohMsgKind::InvAck) &&
                m.dst == c)
                ++inFlight;
        }
        const int outstanding =
            k.pending.ackCount - k.pending.acksReceived;
        if (outstanding != inFlight)
            return IViol{
                "ack-conservation",
                mcFmt("core %d expects %d more acks but %d home "
                      "Inv/InvAck messages are in flight",
                      c, outstanding, inFlight)};
    }

    // Barrier-count conservation, big-router side: every open EI entry
    // is matched by exactly one in-flight early Inv or returning ack.
    if (cfg.bigRouter) {
        int inFlight = 0;
        for (int i = 0; i < st.nMsgs; ++i) {
            const McMsg &m = st.msgs[i];
            if (!(m.flags & MF_FROM_BR))
                continue;
            if (m.kind == static_cast<int>(CohMsgKind::Inv))
                ++inFlight;
            if (m.kind == static_cast<int>(CohMsgKind::InvAck) &&
                m.dst == MC_BR)
                ++inFlight;
        }
        if (popcount8(st.br.eis) != inFlight)
            return IViol{
                "ei-conservation",
                mcFmt("%d open EI entries but %d early Inv/InvAck "
                      "messages in flight",
                      popcount8(st.br.eis), inFlight)};
    }
    return std::nullopt;
}

bool
isQuiesced(const McConfig &cfg, const McState &st)
{
    if (st.nMsgs != 0 || st.br.barrier || st.br.eis)
        return false;
    for (int c = 0; c < cfg.numCores; ++c) {
        const McCore &k = st.cores[c];
        if (k.hasPending || k.nDefer ||
            !programDone(cfg.scenario, c, k.pc))
            return false;
    }
    return true;
}

std::optional<IViol>
checkQuiescedInvariants(const McConfig &cfg, const McState &st)
{
    if (cfg.checkFinalValue &&
        st.golden != expectedFinalValue(cfg))
        return IViol{"final-value",
                     mcFmt("programs quiesced with lock word %d "
                           "(expected %d)",
                           st.golden, expectedFinalValue(cfg))};
    if (st.dir.owner >= 0) {
        const int s = st.cores[st.dir.owner].state;
        if (!(s == LS_E || s == LS_M || s == LS_O))
            return IViol{"owner-lost-line",
                         mcFmt("directory records core %d as owner but "
                               "its line is %s",
                               st.dir.owner, l1TableStateName(s))};
    }
    return std::nullopt;
}

// ---------------------------------------------------------------------
// Successor enumeration
// ---------------------------------------------------------------------

std::vector<McStep>
enumerateSteps(const McConfig &cfg, const McState &st)
{
    std::vector<McStep> steps;
    if (cfg.bigRouter && st.br.barrier && st.br.eis == 0) {
        McStep s;
        s.kind = STEP_TTL;
        steps.push_back(s);
    }
    for (int c = 0; c < cfg.numCores; ++c) {
        const McCore &k = st.cores[c];
        if (!k.hasPending && !programDone(cfg.scenario, c, k.pc)) {
            McStep s;
            s.kind = STEP_ISSUE;
            s.core = static_cast<std::int8_t>(c);
            steps.push_back(s);
        }
    }
    std::uint64_t last = 0;
    for (int i = 0; i < st.nMsgs; ++i) {
        const std::uint64_t e = encodeMsg(st.msgs[i]);
        if (i > 0 && e == last)
            continue; // multiset: identical messages are one step
        last = e;
        McStep s;
        s.kind = STEP_DELIVER;
        s.msg = e;
        steps.push_back(s);
    }
    return steps;
}

// ---------------------------------------------------------------------
// Canonicalization (symmetry reduction over interchangeable core ids)
// ---------------------------------------------------------------------

std::int8_t
renameId(std::int8_t id, const std::array<std::int8_t, MC_MAX_CORES> &perm)
{
    return id >= 0 ? perm[id] : id;
}

std::uint8_t
renameMask(std::uint8_t mask,
           const std::array<std::int8_t, MC_MAX_CORES> &perm,
           int num_cores)
{
    std::uint8_t out = 0;
    for (int c = 0; c < num_cores; ++c)
        if (mask & (1u << c))
            out |= static_cast<std::uint8_t>(1u << perm[c]);
    return out;
}

void
renameMsg(McMsg &m, const std::array<std::int8_t, MC_MAX_CORES> &perm)
{
    if (m.dst >= 0)
        m.dst = perm[m.dst];
    m.requester = renameId(m.requester, perm);
    if (m.collector >= 0)
        m.collector = perm[m.collector];
}

McState
renameState(const McState &st, const McConfig &cfg,
            const std::array<std::int8_t, MC_MAX_CORES> &perm)
{
    McState out = st;
    for (int c = 0; c < cfg.numCores; ++c) {
        McCore k = st.cores[c];
        k.forwardedTo = renameId(k.forwardedTo, perm);
        for (int d = 0; d < k.nDefer; ++d)
            renameMsg(k.defer[d].msg, perm);
        out.cores[perm[c]] = k;
    }
    out.dir.owner = renameId(st.dir.owner, perm);
    out.dir.sharers = renameMask(st.dir.sharers, perm, cfg.numCores);
    out.dir.eiPending = renameMask(st.dir.eiPending, perm, cfg.numCores);
    out.br.eis = renameMask(st.br.eis, perm, cfg.numCores);
    for (int i = 0; i < out.nMsgs; ++i)
        renameMsg(out.msgs[i], perm);
    sortMsgs(out);
    return out;
}

/**
 * Canonical hash key: minimum encoding over all program-preserving
 * core permutations. Rw pins core 0 (it runs a different program);
 * every other scenario's cores are fully interchangeable.
 */
std::string
canonicalKey(const McState &st, const McConfig &cfg)
{
    if (!cfg.symmetry)
        return encodeState(st, cfg.numCores);
    std::array<std::int8_t, MC_MAX_CORES> ids{};
    const int lo = cfg.scenario == McScenario::Rw ? 1 : 0;
    for (int c = 0; c < cfg.numCores; ++c)
        ids[c] = static_cast<std::int8_t>(c);
    std::string best;
    do {
        std::array<std::int8_t, MC_MAX_CORES> perm{};
        for (int c = 0; c < cfg.numCores; ++c)
            perm[c] = ids[c];
        std::string key =
            encodeState(renameState(st, cfg, perm), cfg.numCores);
        if (best.empty() || key < best)
            best = std::move(key);
    } while (std::next_permutation(ids.begin() + lo,
                                   ids.begin() + cfg.numCores));
    return best;
}

// ---------------------------------------------------------------------
// BFS with witness reconstruction
// ---------------------------------------------------------------------

McState
initialState(const McConfig &cfg)
{
    McState st;
    st.golden = initialValue(cfg);
    st.dir.value = initialValue(cfg);
    return st;
}

struct Rec {
    McState st;
    std::uint32_t parent = 0;
    McStep step;
    int depth = 0;
};

std::string
summarizeState(const McConfig &cfg, const McState &st)
{
    std::string out;
    for (int c = 0; c < cfg.numCores; ++c) {
        const McCore &k = st.cores[c];
        out += mcFmt("  core %d: state=%s value=%d pc=%d", c,
                     l1TableStateName(k.state), k.value, k.pc);
        if (k.hasPending)
            out += mcFmt(
                " pending{%s excl=%d hasData=%d hasAck=%d acks=%d/%d}",
                mcOpName(k.pending.kind), k.pending.exclusive,
                k.pending.hasData, k.pending.hasAckInfo,
                k.pending.acksReceived, k.pending.ackCount);
        if (k.nDefer)
            out += mcFmt(" deferred=%d", k.nDefer);
        out += "\n";
    }
    out += mcFmt("  dir: owner=%d sharers=0x%02x value=%d epoch=%d "
                 "ei-pending=0x%02x\n",
                 st.dir.owner, st.dir.sharers, st.dir.value,
                 st.dir.epoch, st.dir.eiPending);
    if (cfg.bigRouter)
        out += mcFmt("  big-router: barrier=%d eis=0x%02x\n",
                     st.br.barrier, st.br.eis);
    out += mcFmt("  golden=%d in-flight=%d", st.golden, st.nMsgs);
    for (int i = 0; i < st.nMsgs; ++i)
        out += mcFmt("\n    %s -> %s", describeMsg(st.msgs[i]).c_str(),
                     describeDst(st.msgs[i].dst).c_str());
    return out;
}

/**
 * Rebuild the flight-recorder-style witness: replay the BFS path with
 * the trace recorder on, then append the violation banner and the end
 * state.
 */
McViolation
buildWitness(const McConfig &cfg, const ProtoTableBase &l1,
             const ProtoTableBase &dirTable, const ProtoTableBase &br,
             const std::vector<Rec> &recs, std::uint32_t tail,
             const McStep *extraStep, const IViol &v)
{
    std::vector<McStep> steps;
    for (std::uint32_t i = tail; i != 0; i = recs[i].parent)
        steps.push_back(recs[i].step);
    std::reverse(steps.begin(), steps.end());
    if (extraStep)
        steps.push_back(*extraStep);

    McViolation out;
    out.invariant = v.invariant;
    out.detail = v.detail;

    McState st = initialState(cfg);
    std::uint64_t drops = 0;
    int n = 0;
    for (const McStep &s : steps) {
        std::vector<std::string> lines;
        Interp it(cfg, l1, dirTable, br, st, &lines, &drops);
        it.apply(s);
        for (std::string &line : lines) {
            // Stamp the step number onto the step header lines.
            if (line.rfind("step:", 0) == 0)
                line = mcFmt("step %d:%s", n, line.c_str() + 5);
            out.trace.push_back(std::move(line));
        }
        ++n;
    }
    out.trace.push_back(
        mcFmt("VIOLATION %s: %s", v.invariant.c_str(), v.detail.c_str()));
    out.trace.push_back("end state:");
    out.trace.push_back(summarizeState(cfg, st));
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

std::string
McViolation::traceText() const
{
    std::string out;
    for (const std::string &line : trace) {
        out += line;
        out += "\n";
    }
    return out;
}

const char *
mcScenarioName(McScenario s)
{
    switch (s) {
      case McScenario::Tas:
        return "tas";
      case McScenario::TasNd:
        return "tas-nd";
      case McScenario::TasHeld:
        return "tas-held";
      case McScenario::Counter:
        return "counter";
      case McScenario::Rw:
        return "rw";
    }
    return "?";
}

std::optional<McScenario>
mcScenarioFromName(const std::string &name)
{
    for (McScenario s : mcAllScenarios())
        if (name == mcScenarioName(s))
            return s;
    return std::nullopt;
}

const std::vector<McScenario> &
mcAllScenarios()
{
    static const std::vector<McScenario> all = {
        McScenario::Tas, McScenario::TasNd, McScenario::TasHeld,
        McScenario::Counter, McScenario::Rw};
    return all;
}

McResult
runModelCheck(const McConfig &cfg, const McTables &tables)
{
    INPG_ASSERT(cfg.numCores >= 2 && cfg.numCores <= MC_MAX_CORES,
                "model checker supports 2..%d cores", MC_MAX_CORES);
    const ProtoTableBase &l1 =
        tables.l1 ? *tables.l1 : protocolTable(PROTO_TABLE_L1);
    const ProtoTableBase &dirTable =
        tables.dir ? *tables.dir : protocolTable(PROTO_TABLE_DIR);
    const ProtoTableBase &br =
        tables.br ? *tables.br : protocolTable(PROTO_TABLE_BR);

    McResult res;
    std::vector<Rec> recs;
    std::deque<std::uint32_t> frontier;
    std::unordered_set<std::string> visited;

    {
        Rec r;
        r.st = initialState(cfg);
        recs.push_back(r);
    }
    visited.insert(canonicalKey(recs[0].st, cfg));
    frontier.push_back(0);
    res.statesVisited = 1;

    while (!frontier.empty()) {
        const std::uint32_t idx = frontier.front();
        frontier.pop_front();
        // recs grows while we expand: copy the state out first.
        const McState cur = recs[idx].st;
        const int depth = recs[idx].depth;
        if (depth > res.maxDepth)
            res.maxDepth = depth;

        const std::vector<McStep> steps = enumerateSteps(cfg, cur);
        if (steps.empty()) {
            if (isQuiesced(cfg, cur)) {
                ++res.finalStates;
                if (auto v = checkQuiescedInvariants(cfg, cur)) {
                    res.violation = buildWitness(cfg, l1, dirTable, br,
                                                 recs, idx, nullptr, *v);
                    return res;
                }
            } else {
                IViol v{"deadlock",
                        "reachable non-final state has no enabled "
                        "transition"};
                res.violation = buildWitness(cfg, l1, dirTable, br, recs,
                                             idx, nullptr, v);
                return res;
            }
            continue;
        }
        if (cfg.maxDepth > 0 && depth >= cfg.maxDepth) {
            res.complete = false;
            continue;
        }

        for (const McStep &s : steps) {
            McState next = cur;
            Interp it(cfg, l1, dirTable, br, next, nullptr,
                      &res.emitsDropped);
            ++res.transitions;
            if (!it.apply(s)) {
                res.violation = buildWitness(cfg, l1, dirTable, br, recs,
                                             idx, &s, *it.viol);
                return res;
            }
            if (auto v = checkStateInvariants(cfg, next)) {
                res.violation = buildWitness(cfg, l1, dirTable, br, recs,
                                             idx, &s, *v);
                return res;
            }
            std::string key = canonicalKey(next, cfg);
            if (!visited.insert(std::move(key)).second)
                continue;
            ++res.statesVisited;
            if (cfg.maxStates > 0 &&
                res.statesVisited > cfg.maxStates) {
                res.complete = false;
                return res;
            }
            Rec r;
            r.st = next;
            r.parent = idx;
            r.step = s;
            r.depth = depth + 1;
            recs.push_back(r);
            frontier.push_back(
                static_cast<std::uint32_t>(recs.size() - 1));
        }
    }
    return res;
}

} // namespace inpg
