/**
 * @file
 * Arbiters used in VC and switch allocation.
 *
 * RoundRobinArbiter is the baseline policy. The OCOR mechanism supplies
 * priorities; PriorityArbiter picks the highest-priority requester and
 * breaks ties round-robin, with an aging escape hatch against
 * starvation (paper Section 5.1, Case 2).
 */

#ifndef INPG_NOC_ARBITER_HH
#define INPG_NOC_ARBITER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace inpg {

/** Work-conserving round-robin arbiter over `size` requesters. */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(std::size_t size);

    /**
     * Grant one of the requesting inputs.
     *
     * @param requests one bool per input; at least one must be true for
     *                 a grant to happen.
     * @return granted index, or -1 if nothing requested.
     */
    int grant(const std::vector<bool> &requests);

    /**
     * Same policy and pointer evolution as grant(), with the request
     * set as a bitmask (bit i == requests[i]). The two entry points
     * are interchangeable call to call: identical requests yield the
     * identical grant and leave the arbiter in the identical state.
     */
    int grantMask(std::uint32_t requests);

    std::size_t size() const { return numInputs; }

  private:
    std::size_t numInputs;
    std::size_t pointer = 0;
};

/**
 * Priority arbiter: maximum priority wins; ties resolved round-robin.
 * Each requester may carry an age (cycles waited); `age / agingQuantum`
 * is added to its priority so old requests cannot starve.
 */
class PriorityArbiter
{
  public:
    /**
     * @param size          number of requesters
     * @param aging_quantum cycles of waiting per +1 effective priority;
     *                      0 disables aging.
     */
    PriorityArbiter(std::size_t size, Cycle aging_quantum);

    struct Request {
        bool valid = false;
        int priority = 0;
        Cycle age = 0;
    };

    /** Grant the best request; -1 if none valid. */
    int grant(const std::vector<Request> &requests);

    /**
     * Mask-based equivalent of grant(): `valid` holds the requesting
     * indices; `requests` supplies priority/age for set bits and may
     * be nullptr when every requester has default priority (all-equal
     * priorities reduce to the round-robin tie break). State evolution
     * matches grant() on the same request set.
     */
    int grantMasked(std::uint32_t valid, const Request *requests);

    /** Effective priority including the aging boost. */
    std::int64_t effectivePriority(const Request &req) const;

  private:
    RoundRobinArbiter tieBreak;
    Cycle agingQuantum;
    /** Scratch mask reused across grant() calls (no allocation). */
    std::vector<bool> scratchMask;
};

} // namespace inpg

#endif // INPG_NOC_ARBITER_HH
