/**
 * @file
 * Fixed-latency point-to-point links for flits and credits.
 *
 * Links are the only channel between clocked NoC components; they latch
 * items with a delivery cycle in the future, making intra-cycle tick
 * order unobservable and hop timing explicit.
 */

#ifndef INPG_NOC_LINK_HH
#define INPG_NOC_LINK_HH

#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "noc/credit.hh"
#include "noc/flit.hh"
#include "noc/ring_buffer.hh"
#include "sim/ticking.hh"

namespace inpg {

/**
 * FIFO pipe delivering items `latency` cycles after push.
 *
 * Items pushed at cycle t become poppable at cycle t + latency. Pushes
 * within one cycle stay ordered.
 *
 * Storage is a pow2 RingBuffer: this queue sits on every link hop, so
 * ready()/pop() must be a flat-array index, and a deque's lazy chunk
 * allocation on growth is exactly the steady-state heap traffic the
 * flit path forbids. The initial capacity covers the typical in-flight
 * window (latency + a burst of same-cycle pushes); deeper transients
 * grow the ring once and never allocate again.
 */
template <typename T>
class DelayLine
{
  public:
    explicit DelayLine(Cycle link_latency) : latency(link_latency)
    {
        INPG_ASSERT(link_latency >= 1, "link latency must be >= 1");
    }

    /** Enqueue an item at cycle `now`. */
    void
    push(T item, Cycle now)
    {
        queue.push_back({now + latency, std::move(item)});
    }

    /** True if an item is deliverable at cycle `now`. */
    bool
    ready(Cycle now) const
    {
        return !queue.empty() && queue.front().first <= now;
    }

    /** Pop the next deliverable item; ready(now) must be true. */
    T
    pop(Cycle now)
    {
        INPG_ASSERT(ready(now), "pop on non-ready link");
        T item = std::move(queue.front().second);
        queue.pop_front();
        return item;
    }

    /** Items in flight (delivered or not). */
    std::size_t size() const { return queue.size(); }

    bool empty() const { return queue.empty(); }

    Cycle linkLatency() const { return latency; }

  private:
    Cycle latency;
    RingBuffer<std::pair<Cycle, T>, 8> queue;
};

/**
 * Diversion mailbox for a cross-domain channel (parallel kernel
 * only). While installed on a Channel, pushes are appended here --
 * stamped with their push cycle, FIFO per direction -- instead of
 * entering the DelayLines, so a producer on one thread never touches
 * the consumer's state mid-quantum. The coordinator drains the box at
 * the quantum barrier by re-pushing with the original cycles, which
 * reproduces the serial delivery schedule exactly. The two vectors
 * have disjoint single writers (the flit sender and the credit
 * sender live in the two different domains that make the channel a
 * boundary), so the box needs no lock.
 */
struct ChannelOutbox {
    std::vector<std::pair<Cycle, FlitPtr>> flits;
    std::vector<std::pair<Cycle, Credit>> credits;

    bool empty() const { return flits.empty() && credits.empty(); }
};

/**
 * One direction of a router-to-router (or NI-to-router) channel:
 * a flit pipe downstream and a credit pipe upstream.
 *
 * The flit delay is linkLatency + 1 to account for the sender's switch
 * traversal stage (ST), completing the paper's 2-stage router + 1-cycle
 * link hop timing; credits return in creditLatency cycles (1 by
 * default -- together these lower-bound the parallel kernel's
 * conservative lookahead).
 */
class Channel
{
  public:
    explicit Channel(Cycle link_latency = 1, Cycle credit_latency = 1)
        : flits(link_latency + 1), credits(credit_latency)
    {}

    /**
     * Register the component that drains each pipe. Senders must inject
     * through pushFlit()/pushCredit() so a sleeping consumer is pulled
     * back into the simulator's active set when traffic arrives.
     */
    void setFlitSink(Ticking *sink) { flitSink = sink; }
    void setCreditSink(Ticking *sink) { creditSink = sink; }

    /** Registered consumers (parallel-kernel domain classification). */
    Ticking *flitSinkComponent() const { return flitSink; }
    Ticking *creditSinkComponent() const { return creditSink; }

    /**
     * Install (or remove with nullptr) a cross-domain diversion box;
     * see ChannelOutbox. Serial runs never install one, so the only
     * overhead off the parallel path is one predictable branch.
     */
    void setOutbox(ChannelOutbox *box) { outbox = box; }

    /** Inject a flit and wake the downstream consumer. */
    void
    pushFlit(FlitPtr flit, Cycle now)
    {
        if (outbox) {
            outbox->flits.emplace_back(now, std::move(flit));
            return;
        }
        flits.push(std::move(flit), now);
        if (flitSink)
            flitSink->sleepToken().wake();
    }

    /** Inject a credit and wake the upstream consumer. */
    void
    pushCredit(Credit credit, Cycle now)
    {
        if (outbox) {
            outbox->credits.emplace_back(now, credit);
            return;
        }
        credits.push(credit, now);
        if (creditSink)
            creditSink->sleepToken().wake();
    }

    DelayLine<FlitPtr> flits;
    DelayLine<Credit> credits;

  private:
    Ticking *flitSink = nullptr;
    Ticking *creditSink = nullptr;
    ChannelOutbox *outbox = nullptr;
};

} // namespace inpg

#endif // INPG_NOC_LINK_HH
