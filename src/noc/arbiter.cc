#include "noc/arbiter.hh"

#include <bit>

#include "common/logging.hh"

namespace inpg {

RoundRobinArbiter::RoundRobinArbiter(std::size_t size) : numInputs(size)
{
    INPG_ASSERT(size > 0, "arbiter needs at least one input");
}

int
RoundRobinArbiter::grant(const std::vector<bool> &requests)
{
    INPG_ASSERT(requests.size() == numInputs,
                "request vector size %zu != arbiter size %zu",
                requests.size(), numInputs);
    for (std::size_t i = 0; i < numInputs; ++i) {
        std::size_t idx = (pointer + i) % numInputs;
        if (requests[idx]) {
            // Granted input becomes lowest priority next time.
            pointer = (idx + 1) % numInputs;
            return static_cast<int>(idx);
        }
    }
    return -1;
}

int
RoundRobinArbiter::grantMask(std::uint32_t requests)
{
    INPG_ASSERT(numInputs >= 32 || (requests >> numInputs) == 0,
                "request mask %#x exceeds arbiter size %zu", requests,
                numInputs);
    if (!requests)
        return -1;
    // First set bit at or after the pointer, wrapping around -- the
    // same input grant() would pick by scanning from the pointer.
    const std::uint32_t at_or_after = requests & (~0u << pointer);
    const std::size_t idx = static_cast<std::size_t>(
        std::countr_zero(at_or_after ? at_or_after : requests));
    pointer = idx + 1 == numInputs ? 0 : idx + 1;
    return static_cast<int>(idx);
}

PriorityArbiter::PriorityArbiter(std::size_t size, Cycle aging_quantum)
    : tieBreak(size), agingQuantum(aging_quantum), scratchMask(size, false)
{}

std::int64_t
PriorityArbiter::effectivePriority(const Request &req) const
{
    std::int64_t boost = agingQuantum
        ? static_cast<std::int64_t>(req.age / agingQuantum)
        : 0;
    return static_cast<std::int64_t>(req.priority) + boost;
}

int
PriorityArbiter::grant(const std::vector<Request> &requests)
{
    INPG_ASSERT(requests.size() == tieBreak.size(),
                "request vector size %zu != arbiter size %zu",
                requests.size(), tieBreak.size());
    // Find the maximum effective priority among valid requests.
    bool any = false;
    std::int64_t best = 0;
    for (const auto &r : requests) {
        if (!r.valid)
            continue;
        std::int64_t p = effectivePriority(r);
        if (!any || p > best) {
            best = p;
            any = true;
        }
    }
    if (!any)
        return -1;
    // Round-robin only among the winners of the priority comparison.
    for (std::size_t i = 0; i < requests.size(); ++i)
        scratchMask[i] =
            requests[i].valid && effectivePriority(requests[i]) == best;
    return tieBreak.grant(scratchMask);
}

int
PriorityArbiter::grantMasked(std::uint32_t valid, const Request *requests)
{
    if (!valid)
        return -1;
    std::uint32_t winners = valid;
    if (requests) {
        bool any = false;
        std::int64_t best = 0;
        for (std::uint32_t m = valid; m; m &= m - 1) {
            const auto i = static_cast<std::size_t>(std::countr_zero(m));
            std::int64_t p = effectivePriority(requests[i]);
            if (!any || p > best) {
                best = p;
                any = true;
            }
        }
        winners = 0;
        for (std::uint32_t m = valid; m; m &= m - 1) {
            const auto i = static_cast<std::size_t>(std::countr_zero(m));
            if (effectivePriority(requests[i]) == best)
                winners |= 1u << i;
        }
    }
    return tieBreak.grantMask(winners);
}

} // namespace inpg
