/**
 * @file
 * Network packet: the unit of end-to-end transfer across the NoC.
 *
 * A packet is serialized into flits at the source network interface and
 * reassembled at the destination. The payload is an opaque PacketData
 * subclass (the coherence layer derives CoherenceMsg from it); routers
 * that implement in-network services (iNPG big routers, OCOR arbitration)
 * inspect and may rewrite the on-wire header fields mirrored here.
 */

#ifndef INPG_NOC_PACKET_HH
#define INPG_NOC_PACKET_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"

namespace inpg {

/** Base class for packet payloads carried across the network. */
struct PacketData {
    virtual ~PacketData() = default;
};

/** Unique packet identifier (per network). */
using PacketId = std::uint64_t;

/**
 * End-to-end network packet.
 *
 * `dst` may be rewritten in flight by big routers (a stopped GetX is
 * retargeted as a FwdGetX); `priority` is read by OCOR switch
 * allocation policies.
 */
class Packet
{
  public:
    Packet(PacketId packet_id, NodeId source, NodeId destination,
           VnetId vnet_id, int num_flits,
           std::shared_ptr<PacketData> payload_data = nullptr)
        : id(packet_id), src(source), dst(destination), vnet(vnet_id),
          numFlits(num_flits), payload(std::move(payload_data))
    {}

    PacketId id;
    NodeId src;
    NodeId dst;
    VnetId vnet;
    int numFlits;

    /** Opaque payload; coherence messages derive from PacketData. */
    std::shared_ptr<PacketData> payload;

    /**
     * OCOR priority carried in the head flit. Higher wins switch
     * allocation under the OCOR policy; 0 is the neutral default.
     */
    int priority = 0;

    /** Cycle the packet entered the source NI (for latency stats). */
    Cycle injectCycle = 0;

    /** Cycle the head flit first left the source NI. */
    Cycle networkEntryCycle = 0;

    /** Human-readable summary for debug traces. */
    std::string toString() const;
};

using PacketPtr = std::shared_ptr<Packet>;

} // namespace inpg

#endif // INPG_NOC_PACKET_HH
