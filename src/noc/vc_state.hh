/**
 * @file
 * Structure-of-arrays VC state for the router's Fast-mode hot path.
 *
 * The reference layout is one InputUnit object per port, each holding a
 * vector of VirtualChannel structs whose flit buffer, FSM state and
 * routing fields live together. That shape is easy to read but hostile
 * to the per-cycle pipeline sweeps: VA/SA touch one or two fields of
 * many VCs, so every probe drags a whole VirtualChannel (plus its
 * buffer header) through the cache, and per-port candidate masks still
 * require a pointer chase per port.
 *
 * VcStateArray flattens the entire router -- all ports, all VCs -- into
 * parallel arrays indexed by slot = port * numVcs + vc:
 *
 *   state[]   1 byte per slot (Idle / WaitVc / Active)
 *   outPort[] routed output port (valid in WaitVc+)
 *   outVc[]   allocated downstream VC (valid in Active)
 *   headAt[]  cycle the resident head flit was buffered
 *
 * Flit storage is one pooled ring-buffer arena: capPerVc (vcDepth
 * rounded up to a power of two) FlitPtr slots per VC, with per-slot
 * head/count counters. Buffering a flit is an index store; popping is
 * an index move -- no deque nodes, no per-VC allocation, ever.
 *
 * Candidate tracking is three whole-router packed bitmasks (bit ==
 * slot): pendingMask (Idle VCs holding a head flit), waitMask (WaitVc)
 * and activeMask (Active VCs holding a flit). A pipeline stage tests
 * one 64-bit word to know whether the entire router has work, and
 * extracts a per-port slice with a shift when it does. The mask
 * lifecycle mirrors InputUnit::refreshMask exactly, so Fast and
 * Reference modes make bit-identical allocation decisions.
 *
 * Capacity: numPorts * numVcs must fit the 64-bit masks. The standard
 * configuration (5 mesh ports + 1 generator port, 8 VCs) uses 48 bits;
 * Router falls back to the reference layout when a configuration
 * exceeds 64 slots.
 */

#ifndef INPG_NOC_VC_STATE_HH
#define INPG_NOC_VC_STATE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "noc/flit.hh"
#include "noc/routing.hh"

namespace inpg {

/** Per-router SoA store of every input VC's state, buffer and masks. */
class VcStateArray
{
  public:
    /** VC FSM states; values match VirtualChannel::State semantics. */
    enum : std::uint8_t {
        Idle = 0,   ///< no packet resident
        WaitVc = 1, ///< head buffered & routed; waiting for an output VC
        Active = 2, ///< output VC allocated; flits may traverse
    };

    VcStateArray(int num_ports, int num_vcs, int vc_depth);

    /** True when the configuration fits the 64-bit whole-router masks. */
    static bool
    fits(int num_ports, int num_vcs)
    {
        return num_ports * num_vcs <= 64;
    }

    int numPorts() const { return ports; }
    int numVcs() const { return vcsPerPort; }
    int vcDepth() const { return depth; }

    std::size_t
    slot(int port, VcId vc) const
    {
        INPG_ASSERT(port >= 0 && port < ports && vc >= 0 &&
                        vc < vcsPerPort,
                    "bad (port %d, vc %d)", port, vc);
        return static_cast<std::size_t>(port) *
                   static_cast<std::size_t>(vcsPerPort) +
               static_cast<std::size_t>(vc);
    }

    // ----- flit ring buffer, pooled across all slots -----

    bool hasFlit(std::size_t s) const { return count[s] != 0; }
    std::size_t vcOccupancy(std::size_t s) const { return count[s]; }

    const FlitPtr &
    front(std::size_t s) const
    {
        INPG_ASSERT(count[s] > 0, "front() on empty VC slot %zu", s);
        return store[s * capPerVc + head[s]];
    }

    /** Buffer an arriving flit into its VC (flit->vc selects the VC). */
    void
    receiveFlit(int port, FlitPtr flit, Cycle now)
    {
        INPG_ASSERT(flit->vc >= 0 && flit->vc < vcsPerPort,
                    "flit arrived on bad VC %d", flit->vc);
        const std::size_t s = slot(port, flit->vc);
        INPG_ASSERT(count[s] < static_cast<std::uint32_t>(depth),
                    "VC %d overflow (credit protocol violated)", flit->vc);
        // Back-to-back packets may share a VC buffer; a flit landing in
        // an idle, empty VC must start a packet (same as InputUnit).
        if (state[s] == Idle && count[s] == 0) {
            INPG_ASSERT(isHeadFlit(flit->type),
                        "body flit into idle empty VC %d", flit->vc);
        }
        flit->bufferedAt = now;
        const std::size_t idx =
            s * capPerVc + ((head[s] + count[s]) & (capPerVc - 1));
        store[idx] = std::move(flit);
        ++count[s];
        ++occupancy;
        refreshMask(s);
    }

    /** Pop the head flit of a slot (switch traversal). */
    FlitPtr
    popFlit(std::size_t s)
    {
        INPG_ASSERT(count[s] > 0, "pop from empty VC slot %zu", s);
        FlitPtr flit = std::move(store[s * capPerVc + head[s]]);
        head[s] =
            (head[s] + 1) & static_cast<std::uint32_t>(capPerVc - 1);
        --count[s];
        INPG_ASSERT(occupancy > 0, "router occupancy underflow");
        --occupancy;
        refreshMask(s);
        return flit;
    }

    // ----- per-slot FSM state (public: the router drives the stages) --

    std::vector<std::uint8_t> state;
    std::vector<Direction> outPort;
    std::vector<std::uint8_t> outClass; ///< dateline class (WaitVc+)
    std::vector<VcId> outVc;
    std::vector<Cycle> headAt;

    // ----- whole-router candidate masks (bit == slot) -----

    /** Idle VCs holding a (head) flit: need route computation. */
    std::uint64_t pendingMask = 0;

    /** VCs in WaitVc: routed, waiting for an output VC. */
    std::uint64_t waitMask = 0;

    /** Active VCs holding a flit: switch-allocation candidates. */
    std::uint64_t activeMask = 0;

    /** VA candidates (route-compute or output-VC wait), whole router. */
    std::uint64_t vaMask() const { return pendingMask | waitMask; }

    /** Per-port VA candidate slice (bit == VC index within the port). */
    std::uint32_t
    vaCandidates(int port) const
    {
        return portSlice(vaMask(), port);
    }

    /** Per-port SA-I candidate slice (bit == VC index). */
    std::uint32_t
    saCandidates(int port) const
    {
        return portSlice(activeMask, port);
    }

    /** Flits buffered across the whole router. */
    std::size_t totalOccupancy() const { return occupancy; }

    /** Flits buffered on one port (debug / hang reports). */
    std::size_t portOccupancy(int port) const;

    /**
     * Re-derive a slot's candidate-mask bits from its state and buffer
     * occupancy. Must run after every state transition or buffer
     * push/pop; receiveFlit/popFlit do so themselves, the router calls
     * it after writing state[] directly -- the same discipline as
     * InputUnit::refreshMask.
     */
    void
    refreshMask(std::size_t s)
    {
        const std::uint64_t bit = 1ull << s;
        pendingMask &= ~bit;
        waitMask &= ~bit;
        activeMask &= ~bit;
        switch (state[s]) {
          case Idle:
            if (count[s] != 0)
                pendingMask |= bit;
            break;
          case WaitVc:
            waitMask |= bit;
            break;
          case Active:
            if (count[s] != 0)
                activeMask |= bit;
            break;
          default:
            INPG_ASSERT(false, "corrupt VC state %u at slot %zu",
                        state[s], s);
        }
    }

  private:
    std::uint32_t
    portSlice(std::uint64_t mask, int port) const
    {
        return static_cast<std::uint32_t>(
            (mask >> (static_cast<std::size_t>(port) *
                      static_cast<std::size_t>(vcsPerPort))) &
            portAll);
    }

    int ports;
    int vcsPerPort;
    int depth;

    /** Ring capacity per VC: vcDepth rounded up to a power of two. */
    std::size_t capPerVc;

    /** All-ones mask over one port's VC indices. */
    std::uint32_t portAll;

    /** Pooled flit arena: slot s owns store[s*capPerVc .. +capPerVc). */
    std::vector<FlitPtr> store;
    std::vector<std::uint32_t> head;
    std::vector<std::uint32_t> count;

    std::size_t occupancy = 0;
};

} // namespace inpg

#endif // INPG_NOC_VC_STATE_HH
