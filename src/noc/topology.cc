#include "noc/topology.hh"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace inpg {

const char *
topologyKindName(TopologyKind k)
{
    switch (k) {
      case TopologyKind::Mesh:
        return "mesh";
      case TopologyKind::Torus:
        return "torus";
      case TopologyKind::CMesh:
        return "cmesh";
    }
    return "?";
}

TopologyKind
parseTopologyKind(const std::string &name)
{
    if (name == "mesh")
        return TopologyKind::Mesh;
    if (name == "torus")
        return TopologyKind::Torus;
    if (name == "cmesh")
        return TopologyKind::CMesh;
    fatal("unknown topology kind '%s' (want mesh, torus or cmesh)",
          name.c_str());
}

namespace {

/** Parse a strictly positive integer; -1 on malformed input. */
int
parseDim(const std::string &text)
{
    if (text.empty())
        return -1;
    int value = 0;
    for (char ch : text) {
        if (ch < '0' || ch > '9')
            return -1;
        value = value * 10 + (ch - '0');
        if (value > 1 << 20)
            return -1;
    }
    return value > 0 ? value : -1;
}

[[noreturn]] void
badSpec(const std::string &text)
{
    fatal("bad topology '%s' (want mesh:WxH, torus:WxH or cmesh:WxHxC, "
          "e.g. topology=torus:8x8 or topology=cmesh:8x8x4)",
          text.c_str());
}

} // namespace

TopologySpec
TopologySpec::parse(const std::string &text)
{
    TopologySpec spec;
    std::string geometry = text;
    const std::size_t colon = text.find(':');
    if (colon != std::string::npos) {
        spec.kind = parseTopologyKind(text.substr(0, colon));
        geometry = text.substr(colon + 1);
    }
    const std::vector<std::string> dims = split(geometry, 'x');
    const bool wants_conc = spec.kind == TopologyKind::CMesh;
    if (dims.size() != (wants_conc ? 3u : 2u))
        badSpec(text);
    spec.width = parseDim(dims[0]);
    spec.height = parseDim(dims[1]);
    spec.concentration = wants_conc ? parseDim(dims[2]) : 1;
    if (spec.width < 0 || spec.height < 0 || spec.concentration < 0)
        badSpec(text);
    return spec;
}

std::string
TopologySpec::canonical() const
{
    if (kind == TopologyKind::CMesh)
        return format("cmesh:%dx%dx%d", width, height, concentration);
    return format("%s:%dx%d", topologyKindName(kind), width, height);
}

void
TopologySpec::applyTo(NocConfig &cfg) const
{
    cfg.topology = kind;
    cfg.meshWidth = width;
    cfg.meshHeight = height;
    cfg.concentration = concentration;
}

std::string
ChannelDepGraph::describe(std::size_t node_index) const
{
    const Node &n = nodes[node_index];
    std::string label = format("%d->%d %s", n.from, n.to,
                               directionName(n.dir).c_str());
    if (n.vcClass != VC_CLASS_ANY)
        label += format(" class %d", static_cast<int>(n.vcClass));
    return label;
}

std::vector<std::int32_t>
findChannelDepCycle(const ChannelDepGraph &g)
{
    // Iterative DFS with tri-color marking; on a back edge the explicit
    // stack holds the cycle, which we return closed (first == last).
    enum : std::uint8_t { White, Grey, Black };
    std::vector<std::uint8_t> color(g.nodes.size(), White);
    std::vector<std::int32_t> path;
    struct Frame {
        std::int32_t node;
        std::size_t next_edge;
    };
    std::vector<Frame> stack;
    for (std::size_t root = 0; root < g.nodes.size(); ++root) {
        if (color[root] != White)
            continue;
        stack.push_back({static_cast<std::int32_t>(root), 0});
        color[root] = Grey;
        path.push_back(static_cast<std::int32_t>(root));
        while (!stack.empty()) {
            Frame &top = stack.back();
            const auto &out = g.edges[static_cast<std::size_t>(top.node)];
            if (top.next_edge < out.size()) {
                const std::int32_t next = out[top.next_edge++];
                if (color[static_cast<std::size_t>(next)] == Grey) {
                    // Back edge: trim the path to the cycle and close it.
                    auto start = std::find(path.begin(), path.end(), next);
                    std::vector<std::int32_t> cycle(start, path.end());
                    cycle.push_back(next);
                    return cycle;
                }
                if (color[static_cast<std::size_t>(next)] == White) {
                    color[static_cast<std::size_t>(next)] = Grey;
                    stack.push_back({next, 0});
                    path.push_back(next);
                }
            } else {
                color[static_cast<std::size_t>(top.node)] = Black;
                stack.pop_back();
                path.pop_back();
            }
        }
    }
    return {};
}

bool
evenPlacementSite(NodeId router, int grid_w, int grid_h, int count)
{
    const int n = grid_w * grid_h;
    if (count <= 0)
        return false;
    if (count >= n)
        return true;
    // Checkerboard interleave for the half-populated case (paper
    // Figure 3); otherwise evenly strided marks.
    if (count * 2 == n) {
        int x = router % grid_w;
        int y = router / grid_w;
        return (x + y) % 2 == 1;
    }
    // router k is big iff floor((k+1)*count/n) > floor(k*count/n)
    long long prev = static_cast<long long>(router) * count / n;
    long long cur = (static_cast<long long>(router) + 1) * count / n;
    return cur > prev;
}

Topology::Topology(const NocConfig &noc_cfg)
    : cfg(noc_cfg), grid(noc_cfg.meshWidth, noc_cfg.meshHeight)
{
    if (cfg.concentration < 1)
        fatal("concentration must be >= 1 (got %d)", cfg.concentration);
}

int
Topology::hopDistance(NodeId router_a, NodeId router_b) const
{
    return grid.hopDistance(router_a, router_b);
}

std::vector<TopoLink>
Topology::links() const
{
    // Canonical order: ascending router id, East before South --
    // exactly the order the pre-Topology mesh builder wired channels,
    // so mesh channel enumeration (allChannels()) is unchanged. Every
    // undirected link is the East (resp. South) link of exactly one
    // router, wrap links included.
    std::vector<TopoLink> out;
    for (NodeId r = 0; r < numRouters(); ++r) {
        for (Direction d : {Direction::East, Direction::South}) {
            const NodeId nb = neighbor(r, d);
            if (nb == INVALID_NODE)
                continue;
            const Coord from_c = grid.coordOf(r);
            const Coord to_c = grid.coordOf(nb);
            const bool wrap = d == Direction::East ? to_c.x < from_c.x
                                                   : to_c.y < from_c.y;
            out.push_back({r, d, nb, wrap});
        }
    }
    return out;
}

ChannelDepGraph
Topology::channelDependencies() const
{
    ChannelDepGraph g;
    // Channel key: (from router, to router, vc class). The direction
    // is implied by the endpoints but kept on the node for labels.
    std::unordered_map<std::uint64_t, std::int32_t> index;
    auto key = [](NodeId from, NodeId to, std::uint8_t cls) {
        return (static_cast<std::uint64_t>(from) << 34) |
               (static_cast<std::uint64_t>(to) << 4) | cls % 16;
    };
    auto channel = [&](NodeId from, Direction dir,
                       std::uint8_t cls) -> std::int32_t {
        const NodeId to = neighbor(from, dir);
        INPG_ASSERT(to != INVALID_NODE, "route into missing link");
        auto it = index.find(key(from, to, cls));
        if (it != index.end())
            return it->second;
        const auto idx = static_cast<std::int32_t>(g.nodes.size());
        index.emplace(key(from, to, cls), idx);
        g.nodes.push_back({from, to, dir, cls});
        g.edges.emplace_back();
        return idx;
    };

    const std::unique_ptr<RoutingAlgorithm> routing = makeRouting();
    for (NodeId dst = 0; dst < numNodes(); ++dst) {
        for (NodeId r = 0; r < numRouters(); ++r) {
            const RouteEntry hop = routing->routeEntry(r, dst);
            if (hop.dir == Direction::Local)
                continue;
            const std::int32_t a = channel(r, hop.dir, hop.vcClass);
            const NodeId nb = g.nodes[static_cast<std::size_t>(a)].to;
            const RouteEntry next = routing->routeEntry(nb, dst);
            if (next.dir == Direction::Local)
                continue;
            const std::int32_t b = channel(nb, next.dir, next.vcClass);
            auto &out = g.edges[static_cast<std::size_t>(a)];
            if (std::find(out.begin(), out.end(), b) == out.end())
                out.push_back(b);
        }
    }
    return g;
}

namespace {

/** Rectangular mesh: the paper's baseline fabric. */
class MeshTopology : public Topology
{
  public:
    using Topology::Topology;

    std::string
    name() const override
    {
        return format("mesh:%dx%d", grid.width(), grid.height());
    }

    NodeId
    neighbor(NodeId router, Direction d) const override
    {
        return grid.neighbor(router, d);
    }

    std::unique_ptr<RoutingAlgorithm>
    makeRouting() const override
    {
        if (cfg.routing == RoutingKind::YX)
            return std::make_unique<YXRouting>(grid, cfg.concentration);
        return std::make_unique<XYRouting>(grid, cfg.concentration);
    }
};

/** Torus: mesh + wraparound links, dateline escape VCs. */
class TorusTopology : public Topology
{
  public:
    using Topology::Topology;

    std::string
    name() const override
    {
        return format("torus:%dx%d", grid.width(), grid.height());
    }

    NodeId
    neighbor(NodeId router, Direction d) const override
    {
        Coord c = grid.coordOf(router);
        const int w = grid.width();
        const int h = grid.height();
        switch (d) {
          case Direction::North:
            c.y = (c.y + h - 1) % h;
            break;
          case Direction::South:
            c.y = (c.y + 1) % h;
            break;
          case Direction::East:
            c.x = (c.x + 1) % w;
            break;
          case Direction::West:
            c.x = (c.x + w - 1) % w;
            break;
          case Direction::Local:
            return router;
        }
        return grid.idOf(c);
    }

    int
    hopDistance(NodeId router_a, NodeId router_b) const override
    {
        const Coord ca = grid.coordOf(router_a);
        const Coord cb = grid.coordOf(router_b);
        const int dx = std::abs(ca.x - cb.x);
        const int dy = std::abs(ca.y - cb.y);
        return std::min(dx, grid.width() - dx) +
               std::min(dy, grid.height() - dy);
    }

    std::unique_ptr<RoutingAlgorithm>
    makeRouting() const override
    {
        return std::make_unique<TorusRouting>(grid, cfg.routing,
                                              cfg.escapeVcs,
                                              cfg.concentration);
    }
};

/** Concentrated mesh: `concentration` cores share each router. */
class CMeshTopology : public Topology
{
  public:
    using Topology::Topology;

    std::string
    name() const override
    {
        return format("cmesh:%dx%dx%d", grid.width(), grid.height(),
                      cfg.concentration);
    }

    NodeId
    neighbor(NodeId router, Direction d) const override
    {
        return grid.neighbor(router, d);
    }

    std::unique_ptr<RoutingAlgorithm>
    makeRouting() const override
    {
        if (cfg.routing == RoutingKind::YX)
            return std::make_unique<YXRouting>(grid, cfg.concentration);
        return std::make_unique<XYRouting>(grid, cfg.concentration);
    }
};

} // namespace

std::unique_ptr<Topology>
makeTopology(const NocConfig &cfg)
{
    switch (cfg.topology) {
      case TopologyKind::Mesh:
        if (cfg.concentration != 1)
            fatal("mesh topology requires concentration 1 (got %d); "
                  "use cmesh:WxHxC",
                  cfg.concentration);
        return std::make_unique<MeshTopology>(cfg);
      case TopologyKind::Torus:
        if (cfg.concentration != 1)
            fatal("torus topology requires concentration 1 (got %d)",
                  cfg.concentration);
        return std::make_unique<TorusTopology>(cfg);
      case TopologyKind::CMesh:
        return std::make_unique<CMeshTopology>(cfg);
    }
    panic("bad topology kind");
}

} // namespace inpg
