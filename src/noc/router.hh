/**
 * @file
 * Two-stage pipelined speculative VC router (paper Section 4.1 baseline,
 * after Peh & Dally [29]).
 *
 * Stage 1 performs route computation, VC allocation and switch
 * allocation in parallel (speculatively); stage 2 is switch traversal.
 * In this model a flit buffered at cycle t becomes eligible for stage 1
 * at t+1; a switch-allocation winner at cycle g is delivered to the next
 * hop's buffers at g + 1 (ST) + linkLatency, giving the paper's
 * 2-cycle router + 1-cycle link hop time.
 *
 * The class exposes protected hooks and an optional internal "generator"
 * input port so that BigRouter (src/inpg) can implement in-network
 * packet generation without duplicating the pipeline.
 */

#ifndef INPG_NOC_ROUTER_HH
#define INPG_NOC_ROUTER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "noc/arbiter.hh"
#include "noc/input_unit.hh"
#include "noc/link.hh"
#include "noc/noc_config.hh"
#include "noc/output_unit.hh"
#include "noc/ring_buffer.hh"
#include "noc/routing.hh"
#include "noc/vc_state.hh"
#include "sim/ticking.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/packet_lifetime.hh"

namespace inpg {

class PacketLifetimeTracker;

/** Baseline ("normal") NoC router. */
class Router : public Ticking
{
  public:
    /**
     * @param node_id   mesh node this router serves
     * @param cfg       shared NoC configuration (copied)
     * @param routing   routing algorithm (not owned; outlives the router)
     */
    Router(NodeId node_id, const NocConfig &cfg,
           const RoutingAlgorithm *routing);

    ~Router() override = default;

    /**
     * Attach the channel whose flit line feeds this router on port `d`
     * (credits for those flits are returned on the same channel).
     */
    void connectInput(Direction d, Channel *channel);

    /** Attach the channel this router drives on port `d`. */
    void connectOutput(Direction d, Channel *channel);

    void tick(Cycle now) override;

    std::string tickName() const override;

    NodeId nodeId() const { return id; }

    /** True for BigRouter instances (iNPG deployment queries). */
    virtual bool isBigRouter() const { return false; }

    /** Router-local statistics. */
    StatGroup stats;

    /** Sum of flits buffered across all input units (invariant checks). */
    std::size_t bufferedFlits() const;

    /** Attach (or detach with nullptr) the packet-lifetime tracker. */
    void setPacketTracker(PacketLifetimeTracker *t) { pktTel = t; }

    /** Attached packet-lifetime tracker (parallel-kernel replay). */
    PacketLifetimeTracker *packetTracker() const { return pktTel; }

    /**
     * Divert packet-lifetime hooks into a per-domain deferred log
     * instead of calling the tracker directly (set by the parallel
     * kernel for routers running off the coordinator thread; the
     * coordinator replays the log at each quantum barrier). nullptr
     * restores direct calls.
     */
    void setPacketTelLog(std::vector<PacketTelOp> *log) { telLog = log; }

    /** Attach (or detach with nullptr) the flight recorder. */
    void setFlightRecorder(FlightRecorder *r) { frec = r; }

    /**
     * Structured dump of the router's pipeline state for the hang
     * report: every occupied/claimed input VC (state, occupancy,
     * routed output, head age) and per-output credit levels.
     */
    virtual JsonValue debugJson(Cycle now) const;

  protected:
    /**
     * Called when a head flit is buffered, before route computation.
     * The hook may rewrite the packet's destination (iNPG retargets
     * in-flight messages); routing uses the post-hook destination.
     */
    virtual void
    onHeadFlitArrived(const FlitPtr &flit, int inport, Cycle now)
    {
        (void)flit;
        (void)inport;
        (void)now;
    }

    /**
     * Called when a head flit wins switch allocation (entering ST).
     * iNPG uses this to observe first-GetX traversals and set barriers.
     */
    virtual void
    onHeadFlitGranted(const FlitPtr &flit, int inport, Direction outport,
                      Cycle now)
    {
        (void)flit;
        (void)inport;
        (void)outport;
        (void)now;
    }

    /** Per-cycle hook before allocation phases (BigRouter injection). */
    virtual void
    generatorPhase(Cycle now)
    {
        (void)now;
    }

    /**
     * True when generatorPhase() has no time-driven work pending, so the
     * router may leave the active set (BigRouter overrides: barrier TTL
     * expiry must observe every cycle while barriers exist).
     */
    virtual bool generatorIdle() const { return true; }

    /**
     * Enable the internal generator input port (BigRouter constructor).
     * Returns its inport index.
     */
    int addGeneratorPort();

    /**
     * Queue a locally generated packet for injection through the
     * generator port; it then competes in VA/SA like any other traffic.
     */
    void injectGenerated(const PacketPtr &pkt, Cycle now);

    const NocConfig &config() const { return cfg; }

    /** Number of input ports including the generator port if present. */
    int numInPorts() const { return nInPorts; }

    /** Flight recorder, or null when off (BigRouter hook sites). */
    FlightRecorder *flightRecorder() const { return frec; }

  private:
    void drainCredits(Cycle now);
    void drainFlits(Cycle now);
    bool canSleep() const;
    void routeCompute(const FlitPtr &flit, VirtualChannel &ch);
    void allocateVcs(Cycle now);
    void allocateSwitch(Cycle now);
    // Bitmask-driven variants of the allocation stages, selected by
    // cfg.fastAllocScan. Same decisions and arbiter-state evolution as
    // the scan loops; they only skip slots the masks prove empty.
    void allocateVcsFast(Cycle now);
    void allocateSwitchFast(Cycle now);
    /** One VA attempt for a routed VC; shared by both VA variants. */
    void tryAllocateVc(InputUnit &iu, VcId v, Cycle now);

    // Structure-of-arrays variants, selected by cfg.soaVcState (see
    // VcStateArray). Same decisions and arbiter-state evolution as the
    // object-layout stages; only the storage the sweeps walk differs.
    void allocateVcsSoA(Cycle now);
    void allocateSwitchSoA(Cycle now);
    void tryAllocateVcSoA(int port, VcId v, Cycle now);
    void switchTraverseSoA(int inport, VcId v, int outport, Cycle now);

    /**
     * Layout-independent view of one input VC, shared by debugJson and
     * any external occupancy probe so both layouts report byte-identical
     * diagnosis output. `state` uses the VcStateArray encoding.
     */
    struct VcSnapshot {
        std::uint8_t state;
        std::size_t occupancy;
        Direction outPort;
        std::uint8_t outClass;
        VcId outVc;
        Cycle headAt;
    };
    VcSnapshot vcSnapshot(int port, VcId v) const;

    /** Output-VC search range for a routed VC's vnet + dateline class. */
    std::pair<VcId, VcId>
    outVcRange(VnetId vnet, std::uint8_t out_class) const
    {
        if (out_class == VC_CLASS_ANY)
            return {cfg.vnetVcLo(vnet), cfg.vnetVcHi(vnet)};
        return {cfg.classVcLo(vnet, out_class),
                cfg.classVcHi(vnet, out_class)};
    }

    /** Bitmask of the VC ids belonging to a virtual network. */
    std::uint32_t
    vnetVcMask(VnetId vn) const
    {
        return ((1u << static_cast<std::uint32_t>(cfg.vcsPerVnet)) - 1)
               << (static_cast<std::uint32_t>(vn) *
                   static_cast<std::uint32_t>(cfg.vcsPerVnet));
    }
    /** Switch traversal of SA winner (inport, vc) -> outport. */
    void switchTraverse(int inport, VcId v, int outport, Cycle now);
    void drainGeneratorQueue(Cycle now);

    NodeId id;
    NocConfig cfg;
    const RoutingAlgorithm *router;

    /**
     * Destination-indexed route table (output port + dateline VC
     * class; filled by the topology's routing algorithm at
     * construction when cfg.precomputeRoutes, empty otherwise --
     * falling back to the virtual routeEntry() call). iNPG destination
     * rewrites happen in onHeadFlitArrived, before route computation,
     * so a static table stays correct.
     */
    std::vector<RouteEntry> routeTable;

    /**
     * Object-per-VC input units (reference layout). Empty when the SoA
     * layout is active -- exactly one of `inputs` / `soa` holds the VC
     * state.
     */
    std::vector<std::unique_ptr<InputUnit>> inputs;

    /**
     * Structure-of-arrays VC state (cfg.soaVcState and the port x VC
     * product fits the 64-bit masks); null in the reference layout.
     */
    std::unique_ptr<VcStateArray> soa;

    std::array<std::unique_ptr<OutputUnit>, NUM_PORTS> outputs;

    /** Channels feeding each input port (credits go back on these). */
    std::vector<Channel *> inChannels;

    /**
     * Compact connected-port lists for the per-cycle drain loops
     * (border routers leave 1-2 ports unconnected; the generator port
     * has no channel at all). Ascending port order preserves the full
     * scan's iteration order. Rebuilt by rebuildConnectedLists().
     */
    struct ConnectedIn {
        Channel *channel;
        int port;
    };
    struct ConnectedOut {
        Channel *channel;
        OutputUnit *unit;
    };
    std::vector<ConnectedIn> flitSources;
    std::vector<ConnectedOut> creditSources;

    void rebuildConnectedLists();

    /** Input ports in use, including the generator port if present. */
    int nInPorts = 0;

    /** Generator port index, or -1 when absent. */
    int genPort = -1;

    /** Generated packets waiting for a free generator-port VC. */
    RingBuffer<PacketPtr, 8> genQueue;

    /** VA scan pointer (rotates across input ports for fairness). */
    std::size_t vaPointer = 0;

    /** SA stage arbitration state. */
    std::vector<std::unique_ptr<PriorityArbiter>> saInportArb;
    std::array<std::unique_ptr<PriorityArbiter>, NUM_PORTS> saOutportArb;

    /** Reused per-cycle scratch (avoids per-tick allocation). */
    std::vector<PriorityArbiter::Request> saVcReqScratch;
    std::vector<PriorityArbiter::Request> saPortReqScratch;
    std::vector<VcId> inportWinnerScratch;

    /** Per-inport / per-outport vnet rotation for hierarchical SA:
     *  round-robin across virtual networks, priority within one (so
     *  OCOR reorders competing requests without starving responses). */
    std::vector<std::size_t> saInportVnetPtr;
    std::array<std::size_t, NUM_PORTS> saOutportVnetPtr{};

    /** Packet-lifetime telemetry; null when telemetry is off. */
    PacketLifetimeTracker *pktTel = nullptr;

    /** Deferred-op log for pktTel; null on the coordinator thread. */
    std::vector<PacketTelOp> *telLog = nullptr;

    /** Flight recorder; null when off. */
    FlightRecorder *frec = nullptr;

    /** Route a pktTel hook directly or into the deferred log. */
    void
    telRouterOp(PacketTelOp::Kind kind, PacketId pkt, Cycle now)
    {
        if (telLog) {
            telLog->push_back(PacketTelOp{kind, id, pkt, now});
            return;
        }
        switch (kind) {
          case PacketTelOp::Kind::RouterArrive:
            pktTel->onRouterArrive(id, pkt, now);
            break;
          case PacketTelOp::Kind::VaGrant:
            pktTel->onVaGrant(id, pkt, now);
            break;
          case PacketTelOp::Kind::RouterDepart:
            pktTel->onRouterDepart(id, pkt, now);
            break;
        }
    }

    /** Cached hot counters (string lookup once at construction). */
    std::uint64_t *flitsReceivedCtr = nullptr;
    std::uint64_t *flitsSentCtr = nullptr;
    std::uint64_t *packetsRoutedCtr = nullptr;
    std::uint64_t *vaGrantsCtr = nullptr;
};

} // namespace inpg

#endif // INPG_NOC_ROUTER_HH
