#include "noc/input_unit.hh"

#include "common/logging.hh"

namespace inpg {

InputUnit::InputUnit(int num_vcs, int vc_depth) : depth(vc_depth)
{
    INPG_ASSERT(num_vcs > 0 && vc_depth > 0,
                "bad input unit shape: %d VCs x %d flits", num_vcs,
                vc_depth);
    INPG_ASSERT(num_vcs <= 32, "candidate masks hold at most 32 VCs, got %d",
                num_vcs);
    vcs.resize(static_cast<std::size_t>(num_vcs));
}

void
InputUnit::receiveFlit(const FlitPtr &flit, Cycle now)
{
    INPG_ASSERT(flit->vc >= 0 && flit->vc < numVcs(),
                "flit arrived on bad VC %d", flit->vc);
    VirtualChannel &ch = vcs[static_cast<std::size_t>(flit->vc)];
    INPG_ASSERT(ch.buffer.size() < static_cast<std::size_t>(depth),
                "VC %d overflow (credit protocol violated)", flit->vc);
    // Back-to-back packets may share a VC buffer (the upstream output VC
    // is released when the tail is sent); only the front packet drives
    // the VC state machine. A flit landing in an idle, empty VC must
    // start a packet.
    if (ch.state == VirtualChannel::State::Idle && ch.buffer.empty()) {
        INPG_ASSERT(isHeadFlit(flit->type),
                    "body flit into idle empty VC %d", flit->vc);
    }
    flit->bufferedAt = now;
    ch.buffer.push_back(flit);
    ++occupancy;
    refreshMask(flit->vc);
}

FlitPtr
InputUnit::popFlit(VcId vc_id)
{
    VirtualChannel &ch = vc(vc_id);
    INPG_ASSERT(ch.hasFlit(), "pop from empty VC %d", vc_id);
    FlitPtr flit = ch.buffer.pop_front();
    INPG_ASSERT(occupancy > 0, "occupancy underflow");
    --occupancy;
    refreshMask(vc_id);
    return flit;
}

} // namespace inpg
