/**
 * @file
 * NoC parameters (paper Table 1 defaults).
 *
 * The paper lists "6 VCs per port, 4 flits per VC, 4 virtual networks";
 * VCs must partition evenly across virtual networks in a Garnet-style
 * design, so we expose vcsPerVnet (default 2, i.e. 8 VCs/port) as the
 * closest even partition and make it configurable.
 */

#ifndef INPG_NOC_NOC_CONFIG_HH
#define INPG_NOC_NOC_CONFIG_HH

#include "common/types.hh"

namespace inpg {

/** Routing algorithm selector. */
enum class RoutingKind {
    XY, ///< X-then-Y dimension order (paper default)
    YX, ///< Y-then-X dimension order
};

/** Fabric selector; see noc/topology.hh for the full contract. */
enum class TopologyKind {
    Mesh,  ///< rectangular mesh (paper baseline)
    Torus, ///< mesh + wraparound links, dateline escape VCs
    CMesh, ///< concentrated mesh: `concentration` cores per router
};

/** Switch-allocation policy selector. */
enum class SwitchPolicy {
    RoundRobin, ///< baseline Garnet-style fair arbitration
    Priority,   ///< OCOR: packet priority + aging
};

/** Static NoC configuration shared by routers, NIs and the builder. */
struct NocConfig {
    /**
     * Router-grid dimensions. With concentration == 1 (mesh/torus)
     * routers and cores coincide; a cmesh hangs `concentration` cores
     * off each router, so numNodes() = meshWidth * meshHeight *
     * concentration.
     */
    int meshWidth = 8;
    int meshHeight = 8;

    /** Fabric kind; geometry interpretation lives in noc/topology.cc. */
    TopologyKind topology = TopologyKind::Mesh;

    /** Cores per router (1 for mesh/torus, typically 4 for cmesh). */
    int concentration = 1;

    /**
     * Torus dateline escape VCs: split each vnet's VC range into two
     * classes and restrict wrap-crossing traffic to class 0 (see
     * noc/topology.hh for the acyclicity argument). Turning this off
     * on a torus is a deliberate negative-testing knob -- the protocol
     * verifier rejects that configuration with a cycle witness.
     */
    bool escapeVcs = true;

    /** Message classes; see coh/coherence_msg.hh for the assignment. */
    int numVnets = 4;

    /** VCs per port per virtual network. */
    int vcsPerVnet = 2;

    /** Buffer depth per VC in flits. */
    int vcDepth = 4;

    /** Wire latency of one hop in cycles (router adds its 2 stages). */
    Cycle linkLatency = 1;

    /**
     * Credit return latency in cycles. Together with linkLatency it
     * lower-bounds the parallel kernel's conservative lookahead:
     * quantum <= min(linkLatency + 1, creditLatency).
     */
    Cycle creditLatency = 1;

    /** Flits in a cache-block-carrying packet (128B / 128-bit = 8). */
    int dataPacketFlits = 8;

    /** Flits in a coherence control packet. */
    int ctrlPacketFlits = 1;

    /** Routing algorithm. */
    RoutingKind routing = RoutingKind::XY;

    /** Switch allocation policy (Priority enables OCOR arbitration). */
    SwitchPolicy switchPolicy = SwitchPolicy::RoundRobin;

    /** Cycles of waiting per +1 effective priority under Priority. */
    Cycle agingQuantum = 64;

    /**
     * Build a per-router destination -> output-port table at
     * construction so the RC stage is one array index instead of a
     * virtual routing-algorithm call per flit. Identical decisions
     * either way (the table is filled by the same algorithm); kept
     * switchable for A/B benchmarking.
     */
    bool precomputeRoutes = true;

    /**
     * Drive the allocation stages (VA, SA-I/SA-II, NI injection) off
     * per-port candidate bitmasks instead of scanning every VC slot
     * each cycle, and use cached stat handles on the per-flit paths.
     * The masks are maintained on every state transition regardless of
     * this flag; it only selects the scan strategy, so both settings
     * make identical allocation decisions. Kept switchable so A/B
     * benchmark runs can reproduce the straightforward scan loops.
     */
    bool fastAllocScan = true;

    /**
     * Store router input-VC state as one structure-of-arrays block per
     * router (flat state/outPort/outVc/headAt arrays plus whole-router
     * candidate bitmasks and pooled ring-buffer flit storage) instead
     * of object-per-VC InputUnits. Same decisions and arbiter-state
     * evolution as the reference layout -- only the memory layout and
     * scan mechanics change. Routers whose port x VC product exceeds
     * the 64-bit mask budget silently fall back to the object layout.
     */
    bool soaVcState = true;

    int totalVcs() const { return numVnets * vcsPerVnet; }

    /** First VC index belonging to a vnet. */
    VcId vnetVcLo(VnetId v) const { return v * vcsPerVnet; }

    /** Last VC index belonging to a vnet. */
    VcId vnetVcHi(VnetId v) const { return (v + 1) * vcsPerVnet - 1; }

    /** Vnet that owns a VC index. */
    VnetId vnetOfVc(VcId vc) const { return vc / vcsPerVnet; }

    /**
     * First VC of a vnet's dateline class (0 or 1): the vnet's VC
     * range split in half. Requires an even vcsPerVnet >= 2 when a
     * torus runs with escape VCs (validated in SystemConfig).
     */
    VcId
    classVcLo(VnetId v, int cls) const
    {
        return vnetVcLo(v) + cls * (vcsPerVnet / 2);
    }

    /** Last VC of a vnet's dateline class. */
    VcId
    classVcHi(VnetId v, int cls) const
    {
        return classVcLo(v, cls) + vcsPerVnet / 2 - 1;
    }

    /** Routers in the fabric (the router grid; the config owns it). */
    int numRouters() const { return meshWidth * meshHeight; } // lint:allow(coordinate-arithmetic)

    /** Cores / network endpoints (routers x concentration). */
    int numNodes() const { return numRouters() * concentration; }
};

} // namespace inpg

#endif // INPG_NOC_NOC_CONFIG_HH
