#include "noc/network_interface.hh"

#include "common/logging.hh"
#include "telemetry/packet_lifetime.hh"

namespace inpg {

NetworkInterface::NetworkInterface(NodeId node_id, const NocConfig &config)
    : id(node_id), cfg(config), baseNode(node_id * cfg.concentration),
      deliver(static_cast<std::size_t>(cfg.concentration)),
      routerPort(cfg.totalVcs(), cfg.vcDepth)
{
    stats = StatGroup(format("ni%d", node_id));
    packetsQueuedCtr = &stats.counter("packets_queued");
    packetsDeliveredCtr = &stats.counter("packets_delivered");
    packetsSentCtr = &stats.counter("packets_sent");
    flitsSentCtr = &stats.counter("flits_sent");
    packetLatencySample = &stats.sample("packet_latency");
    injectQueues.resize(static_cast<std::size_t>(cfg.numVnets));
    reassembly.resize(static_cast<std::size_t>(cfg.totalVcs()));
}

void
NetworkInterface::connect(Channel *to_router, Channel *from_router)
{
    INPG_ASSERT(to_router && from_router, "NI %d: null channel", id);
    txChannel = to_router;
    rxChannel = from_router;
    routerPort.connect(to_router);
    to_router->setCreditSink(this);
    from_router->setFlitSink(this);
}

void
NetworkInterface::sendPacket(const PacketPtr &pkt, Cycle now)
{
    INPG_ASSERT(pkt->vnet >= 0 && pkt->vnet < cfg.numVnets,
                "packet on invalid vnet %d", pkt->vnet);
    INPG_ASSERT(servesNode(pkt->src), "packet src %d injected at NI %d",
                pkt->src, id);
    INPG_ASSERT(pkt->dst >= 0 && pkt->dst < cfg.numNodes(),
                "packet dst %d out of range", pkt->dst);
    pkt->injectCycle = now;
    injectQueues[static_cast<std::size_t>(pkt->vnet)].push_back(pkt);
    ++queuedPkts;
    ++*packetsQueuedCtr;
    if (pktTel)
        pktTel->onPacketQueued(*pkt, now);
    if (frec) {
        // No address at this layer: addr carries the packet id, arg
        // the destination node.
        frec->record(FrKind::NiInject, now, id, pkt->id,
                     static_cast<std::uint64_t>(pkt->dst));
    }
    wakeSelf();
}

std::string
NetworkInterface::tickName() const
{
    return format("ni%d", id);
}

bool
NetworkInterface::idle() const
{
    return queuedPkts == 0 && inflight.empty() && reassemblingFlits == 0;
}

void
NetworkInterface::tick(Cycle now)
{
    drainCredits(now);
    ejectFlits(now);
    allocateInjectVcs(now);
    injectOneFlit(now);
    // Empty queues AND empty channels (items latched for future cycles
    // would not re-wake us): every tick is a no-op until the next
    // sendPacket() or Channel push.
    if (idle() && (!txChannel || txChannel->credits.empty()) &&
        (!rxChannel || rxChannel->flits.empty()))
        suspendSelf();
}

void
NetworkInterface::drainCredits(Cycle now)
{
    if (!txChannel)
        return;
    while (txChannel->credits.ready(now))
        routerPort.receiveCredit(txChannel->credits.pop(now));
}

void
NetworkInterface::ejectFlits(Cycle now)
{
    if (!rxChannel)
        return;
    while (rxChannel->flits.ready(now)) {
        FlitPtr flit = rxChannel->flits.pop(now);
        INPG_ASSERT(servesNode(flit->packet->dst),
                    "NI %d ejected packet destined to %d", id,
                    flit->packet->dst);
        const VcId vc = flit->vc;
        const bool tail = isTailFlit(flit->type);
        PacketPtr pkt = tail ? flit->packet : nullptr;
        auto &buf = reassembly[static_cast<std::size_t>(vc)];
        buf.push_back(std::move(flit));
        ++reassemblingFlits;
        // The NI drains its buffers instantly; credit back every flit.
        rxChannel->pushCredit(Credit{vc, tail}, now);
        if (tail) {
            INPG_ASSERT(static_cast<int>(buf.size()) == pkt->numFlits,
                        "packet %llu reassembled with %zu of %d flits",
                        static_cast<unsigned long long>(pkt->id),
                        buf.size(), pkt->numFlits);
            reassemblingFlits -= buf.size();
            buf.clear();
            ++*packetsDeliveredCtr;
            packetLatencySample->add(
                static_cast<double>(now - pkt->injectCycle));
            if (pktTel)
                pktTel->onPacketEjected(*pkt, now);
            if (frec) {
                frec->record(FrKind::NiEject, now, id, pkt->id,
                             static_cast<std::uint64_t>(pkt->src));
            }
            const auto sink =
                static_cast<std::size_t>(pkt->dst - baseNode);
            if (deliver[sink])
                deliver[sink](pkt, now);
        }
    }
}

void
NetworkInterface::allocateInjectVcs(Cycle now)
{
    if (queuedPkts == 0)
        return;
    const std::size_t nvnets = injectQueues.size();
    // Fairness rotation derived from the clock instead of a per-tick
    // counter: equal to the old vnetPointer (incremented once per cycle
    // since cycle 0) at every cycle, but unaffected by skipped idle
    // ticks -- bit-identical with sleep/fast-forward on or off.
    const std::size_t base = static_cast<std::size_t>(now) % nvnets;
    for (std::size_t k = 0; k < nvnets; ++k) {
        // Conditional subtract, not %: nvnets is a runtime value, so
        // the compiler cannot strength-reduce the division away.
        std::size_t v = base + k;
        if (v >= nvnets)
            v -= nvnets;
        auto &q = injectQueues[v];
        // One allocation per vnet per cycle; honour the 1-cycle NI
        // injection latency by skipping packets queued this cycle.
        if (q.empty() || q.front()->injectCycle >= now)
            continue;
        VnetId vnet = static_cast<VnetId>(v);
        VcId vc = routerPort.findFreeVcInRange(cfg.vnetVcLo(vnet),
                                               cfg.vnetVcHi(vnet));
        if (vc == INVALID_VC)
            continue;
        routerPort.allocateVc(vc);
        InFlight fl;
        fl.pkt = q.pop_front();
        fl.vc = vc;
        --queuedPkts;
        inflight.push_back(fl);
    }
}

void
NetworkInterface::injectOneFlit(Cycle now)
{
    if (inflight.empty() || !txChannel)
        return;
    const std::size_t n = inflight.size();
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t i = inflightPointer + k;
        if (i >= n)
            i -= n;
        InFlight &fl = inflight[i];
        if (routerPort.credits(fl.vc) <= 0)
            continue;

        PacketPtr pkt = fl.pkt;
        FlitType type;
        if (pkt->numFlits == 1)
            type = FlitType::HeadTail;
        else if (fl.nextSeq == 0)
            type = FlitType::Head;
        else if (fl.nextSeq == pkt->numFlits - 1)
            type = FlitType::Tail;
        else
            type = FlitType::Body;

        FlitPtr flit = makeFlit(pkt, type, fl.nextSeq);
        flit->vc = fl.vc;
        if (fl.nextSeq == 0) {
            pkt->networkEntryCycle = now;
            if (pktTel)
                pktTel->onNetworkEntry(pkt->id, now);
        }
        routerPort.decrementCredit(fl.vc);
        txChannel->pushFlit(std::move(flit), now);
        ++*flitsSentCtr;

        ++fl.nextSeq;
        if (fl.nextSeq == pkt->numFlits) {
            routerPort.freeVc(fl.vc);
            ++*packetsSentCtr;
            inflight.erase(inflight.begin() +
                           static_cast<std::ptrdiff_t>(i));
            inflightPointer = n > 1 ? i % (n - 1) : 0;
        } else {
            inflightPointer = (i + 1) % n;
        }
        return; // one flit per cycle
    }
}

JsonValue
NetworkInterface::debugJson() const
{
    JsonValue out = JsonValue::object();
    out["node"] = static_cast<long long>(id);
    JsonValue queues = JsonValue::array();
    for (const auto &q : injectQueues)
        queues.push(static_cast<std::uint64_t>(q.size()));
    out["inject_queues"] = std::move(queues);

    JsonValue serializing = JsonValue::array();
    for (const InFlight &fl : inflight) {
        JsonValue fj = JsonValue::object();
        fj["packet"] = static_cast<std::uint64_t>(fl.pkt->id);
        fj["dst"] = static_cast<long long>(fl.pkt->dst);
        fj["next_flit"] = static_cast<long long>(fl.nextSeq);
        fj["of"] = static_cast<long long>(fl.pkt->numFlits);
        fj["vc"] = static_cast<long long>(fl.vc);
        serializing.push(std::move(fj));
    }
    out["serializing"] = std::move(serializing);

    std::uint64_t reassembling = 0;
    for (const auto &r : reassembly)
        reassembling += r.size();
    out["reassembly_flits"] = reassembling;
    return out;
}

} // namespace inpg
