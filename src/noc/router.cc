#include "noc/router.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "telemetry/packet_lifetime.hh"

namespace inpg {

Router::Router(NodeId node_id, const NocConfig &config_in,
               const RoutingAlgorithm *routing)
    : id(node_id), cfg(config_in), router(routing)
{
    INPG_ASSERT(routing != nullptr, "router %d needs a routing algorithm",
                node_id);
    if (cfg.precomputeRoutes)
        routeTable = routing->buildTable(node_id, cfg.numNodes());
    stats = StatGroup(format("router%d", node_id));
    // SoA layout: one flat VC-state block sized for every port the
    // router can ever have (the generator port arrives after
    // construction). Oversized configurations fall back to the
    // object-per-VC layout so the 64-bit masks always suffice.
    if (cfg.soaVcState &&
        VcStateArray::fits(NUM_PORTS + 1, cfg.totalVcs())) {
        soa = std::make_unique<VcStateArray>(NUM_PORTS + 1,
                                             cfg.totalVcs(), cfg.vcDepth);
    }
    inputs.reserve(NUM_PORTS + 1);
    inChannels.reserve(NUM_PORTS + 1);
    for (int p = 0; p < NUM_PORTS; ++p) {
        if (!soa) {
            inputs.push_back(
                std::make_unique<InputUnit>(cfg.totalVcs(), cfg.vcDepth));
        }
        inChannels.push_back(nullptr);
        outputs[static_cast<std::size_t>(p)] =
            std::make_unique<OutputUnit>(cfg.totalVcs(), cfg.vcDepth);
        saOutportArb[static_cast<std::size_t>(p)] =
            std::make_unique<PriorityArbiter>(NUM_PORTS + 1,
                                              cfg.agingQuantum);
    }
    nInPorts = NUM_PORTS;
    for (int p = 0; p < NUM_PORTS + 1; ++p) {
        saInportArb.push_back(std::make_unique<PriorityArbiter>(
            static_cast<std::size_t>(cfg.totalVcs()), cfg.agingQuantum));
    }
    saVcReqScratch.resize(static_cast<std::size_t>(cfg.totalVcs()));
    saPortReqScratch.resize(NUM_PORTS + 1);
    inportWinnerScratch.resize(NUM_PORTS + 1, INVALID_VC);
    saInportVnetPtr.resize(NUM_PORTS + 1, 0);
    flitsReceivedCtr = &stats.counter("flits_received");
    flitsSentCtr = &stats.counter("flits_sent");
    packetsRoutedCtr = &stats.counter("packets_routed");
    vaGrantsCtr = &stats.counter("va_grants");
}

void
Router::connectInput(Direction d, Channel *channel)
{
    INPG_ASSERT(channel != nullptr, "null input channel");
    inChannels[static_cast<std::size_t>(d)] = channel;
    channel->setFlitSink(this);
    rebuildConnectedLists();
}

void
Router::connectOutput(Direction d, Channel *channel)
{
    INPG_ASSERT(channel != nullptr, "null output channel");
    outputs[static_cast<std::size_t>(d)]->connect(channel);
    channel->setCreditSink(this);
    rebuildConnectedLists();
}

void
Router::rebuildConnectedLists()
{
    // Rebuilt on every connect call (construction-time only). Ascending
    // port order keeps drain iteration identical to a full port scan.
    flitSources.clear();
    for (int p = 0; p < numInPorts(); ++p) {
        if (Channel *ch = inChannels[static_cast<std::size_t>(p)])
            flitSources.push_back({ch, p});
    }
    creditSources.clear();
    for (int p = 0; p < NUM_PORTS; ++p) {
        OutputUnit &ou = *outputs[static_cast<std::size_t>(p)];
        if (ou.outChannel())
            creditSources.push_back({ou.outChannel(), &ou});
    }
}

int
Router::addGeneratorPort()
{
    INPG_ASSERT(genPort < 0, "generator port already present");
    if (!soa) {
        inputs.push_back(
            std::make_unique<InputUnit>(cfg.totalVcs(), cfg.vcDepth));
    }
    // The SoA block is already sized for this port (NUM_PORTS + 1).
    inChannels.push_back(nullptr);
    genPort = nInPorts;
    ++nInPorts;
    return genPort;
}

void
Router::injectGenerated(const PacketPtr &pkt, Cycle now)
{
    INPG_ASSERT(genPort >= 0, "no generator port on router %d", id);
    INPG_ASSERT(pkt->numFlits == 1,
                "generated packets must be single-flit control messages");
    (void)now;
    genQueue.push_back(pkt);
    ++stats.counter("gen_packets_queued");
    wakeSelf();
}

std::string
Router::tickName() const
{
    return format("router%d", id);
}

std::size_t
Router::bufferedFlits() const
{
    if (soa)
        return soa->totalOccupancy();
    std::size_t n = 0;
    for (const auto &iu : inputs)
        n += iu->totalOccupancy();
    return n;
}

Router::VcSnapshot
Router::vcSnapshot(int port, VcId v) const
{
    if (soa) {
        const std::size_t s = soa->slot(port, v);
        return {soa->state[s], soa->vcOccupancy(s), soa->outPort[s],
                soa->outClass[s], soa->outVc[s], soa->headAt[s]};
    }
    const VirtualChannel &ch = inputs[static_cast<std::size_t>(port)]->vc(v);
    std::uint8_t st = VcStateArray::Idle;
    if (ch.state == VirtualChannel::State::WaitVc)
        st = VcStateArray::WaitVc;
    else if (ch.state == VirtualChannel::State::Active)
        st = VcStateArray::Active;
    return {st, ch.buffer.size(), ch.outPort, ch.outClass, ch.outVc,
            ch.headEnqueuedAt};
}

JsonValue
Router::debugJson(Cycle now) const
{
    JsonValue out = JsonValue::object();
    out["node"] = static_cast<long long>(id);
    out["buffered_flits"] = static_cast<std::uint64_t>(bufferedFlits());
    out["gen_queue"] = static_cast<std::uint64_t>(genQueue.size());

    // Reads go through vcSnapshot() so both VC-state layouts emit
    // byte-identical reports.
    JsonValue vcs = JsonValue::array();
    for (int p = 0; p < numInPorts(); ++p) {
        for (VcId v = 0; v < cfg.totalVcs(); ++v) {
            const VcSnapshot ch = vcSnapshot(p, v);
            if (ch.state == VcStateArray::Idle && ch.occupancy == 0)
                continue;
            JsonValue vj = JsonValue::object();
            vj["inport"] =
                p == genPort ? std::string("gen")
                             : directionName(static_cast<Direction>(p));
            vj["vc"] = static_cast<long long>(v);
            vj["state"] = ch.state == VcStateArray::Idle
                              ? "idle"
                              : (ch.state == VcStateArray::WaitVc
                                     ? "wait-vc"
                                     : "active");
            vj["occupancy"] = static_cast<std::uint64_t>(ch.occupancy);
            if (ch.state != VcStateArray::Idle) {
                vj["out_port"] = directionName(ch.outPort);
                // Emitted only when a dateline class restricts the
                // route, so mesh hang reports keep their exact bytes.
                if (ch.outClass != VC_CLASS_ANY)
                    vj["vc_class"] =
                        static_cast<long long>(ch.outClass);
                if (ch.outVc != INVALID_VC)
                    vj["out_vc"] = static_cast<long long>(ch.outVc);
                vj["head_age"] =
                    static_cast<std::uint64_t>(now - ch.headAt);
            }
            vcs.push(std::move(vj));
        }
    }
    out["vcs"] = std::move(vcs);

    JsonValue creds = JsonValue::object();
    for (int p = 0; p < NUM_PORTS; ++p) {
        const OutputUnit *ou = outputs[static_cast<std::size_t>(p)].get();
        if (!ou || !ou->outChannel())
            continue;
        JsonValue per_vc = JsonValue::array();
        for (VcId v = 0; v < ou->numVcs(); ++v) {
            JsonValue cv = JsonValue::object();
            cv["credits"] = static_cast<long long>(ou->credits(v));
            cv["busy"] = !ou->isVcFree(v);
            per_vc.push(std::move(cv));
        }
        creds[directionName(static_cast<Direction>(p))] =
            std::move(per_vc);
    }
    out["credits"] = std::move(creds);
    return out;
}

void
Router::tick(Cycle now)
{
    drainCredits(now);
    drainFlits(now);
    // Generator machinery exists only on routers with a generator port
    // (BigRouter); skip the virtual hook on plain routers.
    if (genPort >= 0) {
        generatorPhase(now);
        drainGeneratorQueue(now);
    }
    // Idle fast path: with no buffered flit anywhere, the allocation
    // stages have no work. SoA keeps a whole-router occupancy counter,
    // so the check is one load.
    bool any = false;
    if (soa) {
        any = soa->totalOccupancy() != 0;
    } else {
        for (const auto &iu : inputs) {
            if (iu->totalOccupancy() != 0) {
                any = true;
                break;
            }
        }
    }
    if (!any) {
        // No buffered flit means VA/SA (and their rotation/aging state)
        // would not change this cycle; if nothing is in flight toward us
        // either, every tick until the next Channel push is a no-op.
        if (canSleep())
            suspendSelf();
        return;
    }
    allocateVcs(now);
    allocateSwitch(now);
}

bool
Router::canSleep() const
{
    if (genPort >= 0 && (!genQueue.empty() || !generatorIdle()))
        return false;
    // Channels must be completely empty, not merely not-ready: an item
    // already latched for a future cycle will not trigger a wake.
    for (const ConnectedIn &cp : flitSources) {
        if (!cp.channel->flits.empty())
            return false;
    }
    for (const ConnectedOut &cp : creditSources) {
        if (!cp.channel->credits.empty())
            return false;
    }
    return true;
}

void
Router::drainCredits(Cycle now)
{
    // Compact list: connected outputs only, in ascending port order.
    for (const ConnectedOut &cp : creditSources) {
        while (cp.channel->credits.ready(now)) {
            Credit credit = cp.channel->credits.pop(now);
            cp.unit->receiveCredit(credit);
        }
    }
}

void
Router::drainFlits(Cycle now)
{
    // Compact list: connected inputs only, in ascending port order (the
    // same order the full port scan used, so telemetry record order and
    // buffer contents are unchanged).
    for (const ConnectedIn &cp : flitSources) {
        const int p = cp.port;
        Channel *ch = cp.channel;
        while (ch->flits.ready(now)) {
            FlitPtr flit = ch->flits.pop(now);
            if (isHeadFlit(flit->type)) {
                onHeadFlitArrived(flit, p, now);
                if (pktTel)
                    telRouterOp(PacketTelOp::Kind::RouterArrive,
                                flit->packet->id, now);
            }
            if (soa)
                soa->receiveFlit(p, std::move(flit), now);
            else
                inputs[static_cast<std::size_t>(p)]->receiveFlit(flit,
                                                                 now);
            ++*flitsReceivedCtr;
        }
    }
}

void
Router::routeCompute(const FlitPtr &flit, VirtualChannel &ch)
{
    const NodeId dst = flit->packet->dst;
    const RouteEntry entry =
        routeTable.empty() ? router->routeEntry(id, dst)
                           : routeTable[static_cast<std::size_t>(dst)];
    ch.outPort = entry.dir;
    ch.outClass = entry.vcClass;
    ch.outVc = INVALID_VC;
    ch.state = VirtualChannel::State::WaitVc;
    ch.headEnqueuedAt = flit->bufferedAt;
}

void
Router::drainGeneratorQueue(Cycle now)
{
    if (genPort < 0 || genQueue.empty())
        return;
    // One injection per cycle: find an idle, empty VC in the packet's
    // vnet range and materialize the packet as a single HeadTail flit.
    const PacketPtr &pkt = genQueue.front();
    for (VcId vc = cfg.vnetVcLo(pkt->vnet); vc <= cfg.vnetVcHi(pkt->vnet);
         ++vc) {
        const VcSnapshot ch = vcSnapshot(genPort, vc);
        if (ch.state == VcStateArray::Idle && ch.occupancy == 0) {
            FlitPtr flit = makeFlit(pkt, FlitType::HeadTail, 0);
            flit->vc = vc;
            pkt->networkEntryCycle = now;
            if (pktTel) {
                // Generator packets bypass the source NI; open their
                // lifetime record here so hop stamps have a home.
                pktTel->onPacketQueued(*pkt, now);
                pktTel->onRouterArrive(id, pkt->id, now);
            }
            if (soa) {
                soa->receiveFlit(genPort, std::move(flit), now);
            } else {
                inputs[static_cast<std::size_t>(genPort)]->receiveFlit(
                    flit, now);
            }
            ++stats.counter("gen_packets_injected");
            genQueue.pop_front();
            return;
        }
    }
}

void
Router::tryAllocateVc(InputUnit &iu, VcId v, Cycle now)
{
    VirtualChannel &ch = iu.vc(v);
    // A VC whose front flit is the head of a new packet (re)enters
    // route computation; this covers back-to-back packets sharing
    // a VC buffer.
    if (ch.state == VirtualChannel::State::Idle && ch.hasFlit()) {
        const FlitPtr &front = ch.buffer.front();
        INPG_ASSERT(isHeadFlit(front->type),
                    "non-head flit at front of idle VC %d", v);
        routeCompute(front, ch);
        iu.refreshMask(v);
    }
    if (ch.state != VirtualChannel::State::WaitVc)
        return;
    if (now <= ch.headEnqueuedAt)
        return; // stage-1 charge: eligible the cycle after buffering
    OutputUnit &ou = *outputs[static_cast<std::size_t>(ch.outPort)];
    const auto [vc_lo, vc_hi] = outVcRange(cfg.vnetOfVc(v), ch.outClass);
    VcId out_vc = ou.findFreeVcInRange(vc_lo, vc_hi);
    if (out_vc == INVALID_VC)
        return;
    ou.allocateVc(out_vc);
    ch.outVc = out_vc;
    ch.state = VirtualChannel::State::Active;
    iu.refreshMask(v);
    ++*vaGrantsCtr;
    if (pktTel)
        telRouterOp(PacketTelOp::Kind::VaGrant,
                    ch.buffer.front()->packet->id, now);
}

void
Router::allocateVcs(Cycle now)
{
    if (soa) {
        allocateVcsSoA(now);
        return;
    }
    if (cfg.fastAllocScan) {
        allocateVcsFast(now);
        return;
    }
    const std::size_t nports = static_cast<std::size_t>(numInPorts());
    for (std::size_t k = 0; k < nports; ++k) {
        std::size_t p = (vaPointer + k) % nports;
        InputUnit &iu = *inputs[p];
        for (VcId v = 0; v < iu.numVcs(); ++v)
            tryAllocateVc(iu, v, now);
    }
    vaPointer = (vaPointer + 1) % nports;
}

void
Router::allocateVcsFast(Cycle now)
{
    const std::size_t nports = static_cast<std::size_t>(numInPorts());
    std::size_t p = vaPointer;
    for (std::size_t k = 0; k < nports; ++k) {
        InputUnit &iu = *inputs[p];
        // Snapshot is safe: handling one VC never adds another VC of
        // this port to the candidate set (VA transitions only move the
        // handled VC itself between Idle/WaitVc/Active).
        for (std::uint32_t m = iu.vaCandidates(); m; m &= m - 1)
            tryAllocateVc(iu, static_cast<VcId>(std::countr_zero(m)),
                          now);
        p = p + 1 == nports ? 0 : p + 1;
    }
    vaPointer = vaPointer + 1 == nports ? 0 : vaPointer + 1;
}

void
Router::tryAllocateVcSoA(int port, VcId v, Cycle now)
{
    VcStateArray &a = *soa;
    const std::size_t s = a.slot(port, v);
    // A VC whose front flit is the head of a new packet (re)enters
    // route computation; this covers back-to-back packets sharing
    // a VC buffer.
    if (a.state[s] == VcStateArray::Idle && a.hasFlit(s)) {
        const FlitPtr &front = a.front(s);
        INPG_ASSERT(isHeadFlit(front->type),
                    "non-head flit at front of idle VC %d", v);
        const NodeId dst = front->packet->dst;
        const RouteEntry entry =
            routeTable.empty() ? router->routeEntry(id, dst)
                               : routeTable[static_cast<std::size_t>(dst)];
        a.outPort[s] = entry.dir;
        a.outClass[s] = entry.vcClass;
        a.outVc[s] = INVALID_VC;
        a.state[s] = VcStateArray::WaitVc;
        a.headAt[s] = front->bufferedAt;
        a.refreshMask(s);
    }
    if (a.state[s] != VcStateArray::WaitVc)
        return;
    if (now <= a.headAt[s])
        return; // stage-1 charge: eligible the cycle after buffering
    OutputUnit &ou = *outputs[static_cast<std::size_t>(a.outPort[s])];
    const auto [vc_lo, vc_hi] =
        outVcRange(cfg.vnetOfVc(v), a.outClass[s]);
    VcId out_vc = ou.findFreeVcInRange(vc_lo, vc_hi);
    if (out_vc == INVALID_VC)
        return;
    ou.allocateVc(out_vc);
    a.outVc[s] = out_vc;
    a.state[s] = VcStateArray::Active;
    a.refreshMask(s);
    ++*vaGrantsCtr;
    if (pktTel)
        telRouterOp(PacketTelOp::Kind::VaGrant,
                    a.front(s)->packet->id, now);
}

void
Router::allocateVcsSoA(Cycle now)
{
    const std::size_t nports = static_cast<std::size_t>(numInPorts());
    VcStateArray &a = *soa;
    // One 64-bit test covers the whole router. The port loop still
    // rotates from vaPointer, and the pointer advances exactly once per
    // call whether or not candidates exist -- identical evolution to
    // the scan and AoS-mask variants.
    if (a.vaMask() != 0) {
        std::size_t p = vaPointer;
        for (std::size_t k = 0; k < nports; ++k) {
            // Snapshot is safe: handling one VC never adds another VC
            // of this port to the candidate set.
            for (std::uint32_t m = a.vaCandidates(static_cast<int>(p)); m;
                 m &= m - 1) {
                tryAllocateVcSoA(static_cast<int>(p),
                                 static_cast<VcId>(std::countr_zero(m)),
                                 now);
            }
            p = p + 1 == nports ? 0 : p + 1;
        }
    }
    vaPointer = vaPointer + 1 == nports ? 0 : vaPointer + 1;
}

void
Router::switchTraverse(int inport, VcId v, int outport, Cycle now)
{
    const std::size_t p = static_cast<std::size_t>(inport);
    InputUnit &iu = *inputs[p];
    VirtualChannel &ch = iu.vc(v);
    OutputUnit &ou = *outputs[static_cast<std::size_t>(outport)];
    INPG_ASSERT(ou.outChannel() != nullptr,
                "router %d: traversal into unconnected port %d", id,
                outport);

    FlitPtr flit = iu.popFlit(v);
    const bool tail = isTailFlit(flit->type);

    if (isHeadFlit(flit->type)) {
        onHeadFlitGranted(flit, inport, static_cast<Direction>(outport),
                          now);
        ++*packetsRoutedCtr;
        if (pktTel)
            telRouterOp(PacketTelOp::Kind::RouterDepart,
                        flit->packet->id, now);
    }

    // Return a buffer credit upstream (none for the generator port).
    if (Channel *up = inChannels[p])
        up->pushCredit(Credit{v, tail}, now);

    VcId out_vc = ch.outVc;
    flit->vc = out_vc;
    ou.decrementCredit(out_vc);
    if (tail) {
        ou.freeVc(out_vc);
        ch.state = VirtualChannel::State::Idle;
        ch.outVc = INVALID_VC;
        iu.refreshMask(v);
    }
    ou.outChannel()->pushFlit(std::move(flit), now);
    ++*flitsSentCtr;
}

void
Router::allocateSwitch(Cycle now)
{
    if (soa) {
        allocateSwitchSoA(now);
        return;
    }
    if (cfg.fastAllocScan) {
        allocateSwitchFast(now);
        return;
    }
    const int nports = numInPorts();

    // SA-I: pick at most one ready VC per input port. Hierarchical
    // arbitration: rotate across virtual networks, apply (OCOR)
    // priority only among VCs of the chosen vnet -- request priorities
    // must never starve forwards/responses of other message classes.
    std::vector<VcId> &inportWinner = inportWinnerScratch;
    std::fill(inportWinner.begin(), inportWinner.end(), INVALID_VC);
    for (int p = 0; p < nports; ++p) {
        InputUnit &iu = *inputs[static_cast<std::size_t>(p)];
        std::vector<PriorityArbiter::Request> &reqs = saVcReqScratch;
        std::fill(reqs.begin(), reqs.end(), PriorityArbiter::Request{});
        bool anyCandidate = false;
        for (VcId v = 0; v < iu.numVcs(); ++v) {
            VirtualChannel &ch = iu.vc(v);
            if (ch.state != VirtualChannel::State::Active || !ch.hasFlit())
                continue;
            const FlitPtr &front = ch.buffer.front();
            if (now <= front->bufferedAt)
                continue;
            OutputUnit &ou =
                *outputs[static_cast<std::size_t>(ch.outPort)];
            if (ou.credits(ch.outVc) <= 0)
                continue;
            auto &r = reqs[static_cast<std::size_t>(v)];
            r.valid = true;
            anyCandidate = true;
            if (cfg.switchPolicy == SwitchPolicy::Priority) {
                r.priority = front->packet->priority;
                r.age = now - ch.headEnqueuedAt;
            }
        }
        if (anyCandidate && cfg.switchPolicy == SwitchPolicy::Priority) {
            // Pick the vnet round-robin among those with candidates,
            // then mask out every other vnet's VCs.
            std::size_t &ptr = saInportVnetPtr[static_cast<std::size_t>(p)];
            const std::size_t nv = static_cast<std::size_t>(cfg.numVnets);
            for (std::size_t k = 0; k < nv; ++k) {
                std::size_t vn = (ptr + k) % nv;
                bool has = false;
                for (VcId v = cfg.vnetVcLo(static_cast<VnetId>(vn));
                     v <= cfg.vnetVcHi(static_cast<VnetId>(vn)); ++v)
                    has |= reqs[static_cast<std::size_t>(v)].valid;
                if (has) {
                    for (VcId v = 0; v < cfg.totalVcs(); ++v)
                        if (cfg.vnetOfVc(v) != static_cast<VnetId>(vn))
                            reqs[static_cast<std::size_t>(v)].valid =
                                false;
                    ptr = (vn + 1) % nv;
                    break;
                }
            }
        }
        inportWinner[static_cast<std::size_t>(p)] =
            saInportArb[static_cast<std::size_t>(p)]->grant(reqs);
    }

    // SA-II: pick at most one input port per output port (same
    // hierarchy: vnet rotation, then priority within the vnet).
    for (int op = 0; op < NUM_PORTS; ++op) {
        std::vector<PriorityArbiter::Request> &reqs = saPortReqScratch;
        std::fill(reqs.begin(), reqs.end(), PriorityArbiter::Request{});
        bool anyCandidate = false;
        for (int p = 0; p < nports; ++p) {
            VcId v = inportWinner[static_cast<std::size_t>(p)];
            if (v == INVALID_VC)
                continue;
            VirtualChannel &ch =
                inputs[static_cast<std::size_t>(p)]->vc(v);
            if (static_cast<int>(ch.outPort) != op)
                continue;
            auto &r = reqs[static_cast<std::size_t>(p)];
            r.valid = true;
            anyCandidate = true;
            if (cfg.switchPolicy == SwitchPolicy::Priority) {
                r.priority = ch.buffer.front()->packet->priority;
                r.age = now - ch.headEnqueuedAt;
            }
        }
        if (anyCandidate && cfg.switchPolicy == SwitchPolicy::Priority) {
            std::size_t &ptr = saOutportVnetPtr[static_cast<std::size_t>(op)];
            const std::size_t nv = static_cast<std::size_t>(cfg.numVnets);
            for (std::size_t k = 0; k < nv; ++k) {
                std::size_t vn = (ptr + k) % nv;
                bool has = false;
                for (int p = 0; p < nports; ++p) {
                    VcId v = inportWinner[static_cast<std::size_t>(p)];
                    if (v == INVALID_VC ||
                        !reqs[static_cast<std::size_t>(p)].valid)
                        continue;
                    has |= cfg.vnetOfVc(v) == static_cast<VnetId>(vn);
                }
                if (has) {
                    for (int p = 0; p < nports; ++p) {
                        VcId v = inportWinner[static_cast<std::size_t>(p)];
                        if (v != INVALID_VC &&
                            cfg.vnetOfVc(v) != static_cast<VnetId>(vn))
                            reqs[static_cast<std::size_t>(p)].valid =
                                false;
                    }
                    ptr = (vn + 1) % nv;
                    break;
                }
            }
        }
        int winner = saOutportArb[static_cast<std::size_t>(op)]->grant(reqs);
        if (winner < 0)
            continue;
        switchTraverse(winner, inportWinner[static_cast<std::size_t>(winner)],
                       op, now);
    }
}

void
Router::allocateSwitchFast(Cycle now)
{
    const int nports = numInPorts();
    const bool prio = cfg.switchPolicy == SwitchPolicy::Priority;
    std::vector<VcId> &inportWinner = inportWinnerScratch;

    // SA-I over the Active-with-flit masks. Request priorities/ages are
    // written into the scratch slots only for candidate bits; the mask
    // handed to the arbiter governs which slots are read, so the
    // remaining stale entries are never consulted.
    std::array<std::uint32_t, NUM_PORTS> outportCand{};
    bool anyWinner = false;
    for (int p = 0; p < nports; ++p) {
        inportWinner[static_cast<std::size_t>(p)] = INVALID_VC;
        InputUnit &iu = *inputs[static_cast<std::size_t>(p)];
        std::uint32_t valid = 0;
        for (std::uint32_t m = iu.saCandidates(); m; m &= m - 1) {
            const VcId v = static_cast<VcId>(std::countr_zero(m));
            VirtualChannel &ch = iu.vc(v);
            const FlitPtr &front = ch.buffer.front();
            if (now <= front->bufferedAt)
                continue;
            OutputUnit &ou =
                *outputs[static_cast<std::size_t>(ch.outPort)];
            if (ou.credits(ch.outVc) <= 0)
                continue;
            valid |= 1u << static_cast<std::uint32_t>(v);
            if (prio) {
                auto &r = saVcReqScratch[static_cast<std::size_t>(v)];
                r.priority = front->packet->priority;
                r.age = now - ch.headEnqueuedAt;
            }
        }
        if (!valid)
            continue;
        if (prio) {
            // Vnet rotation: keep only the first vnet (from the
            // pointer) that has a candidate.
            std::size_t &ptr = saInportVnetPtr[static_cast<std::size_t>(p)];
            const std::size_t nv = static_cast<std::size_t>(cfg.numVnets);
            for (std::size_t k = 0; k < nv; ++k) {
                std::size_t vn = ptr + k >= nv ? ptr + k - nv : ptr + k;
                const std::uint32_t vm =
                    vnetVcMask(static_cast<VnetId>(vn));
                if (valid & vm) {
                    valid &= vm;
                    ptr = vn + 1 == nv ? 0 : vn + 1;
                    break;
                }
            }
        }
        const int w = saInportArb[static_cast<std::size_t>(p)]->grantMasked(
            valid, prio ? saVcReqScratch.data() : nullptr);
        INPG_ASSERT(w != INVALID_VC, "no grant from nonzero request mask");
        inportWinner[static_cast<std::size_t>(p)] = w;
        anyWinner = true;
        const auto op = static_cast<std::size_t>(iu.vc(w).outPort);
        outportCand[op] |= 1u << static_cast<std::uint32_t>(p);
    }
    // An all-invalid grant() touches no arbiter state, so outports
    // without candidates need no SA-II visit.
    if (!anyWinner)
        return;

    // SA-II over the per-outport winner masks (bit = input port).
    for (int op = 0; op < NUM_PORTS; ++op) {
        std::uint32_t valid = outportCand[static_cast<std::size_t>(op)];
        if (!valid)
            continue;
        if (prio) {
            for (std::uint32_t m = valid; m; m &= m - 1) {
                const auto p =
                    static_cast<std::size_t>(std::countr_zero(m));
                const VirtualChannel &ch = inputs[p]->vc(inportWinner[p]);
                auto &r = saPortReqScratch[p];
                r.priority = ch.buffer.front()->packet->priority;
                r.age = now - ch.headEnqueuedAt;
            }
            std::size_t &ptr = saOutportVnetPtr[static_cast<std::size_t>(op)];
            const std::size_t nv = static_cast<std::size_t>(cfg.numVnets);
            for (std::size_t k = 0; k < nv; ++k) {
                std::size_t vn = ptr + k >= nv ? ptr + k - nv : ptr + k;
                std::uint32_t in_vnet = 0;
                for (std::uint32_t m = valid; m; m &= m - 1) {
                    const auto p =
                        static_cast<std::size_t>(std::countr_zero(m));
                    if (cfg.vnetOfVc(inportWinner[p]) ==
                        static_cast<VnetId>(vn))
                        in_vnet |= 1u << p;
                }
                if (in_vnet) {
                    valid = in_vnet;
                    ptr = vn + 1 == nv ? 0 : vn + 1;
                    break;
                }
            }
        }
        const int winner =
            saOutportArb[static_cast<std::size_t>(op)]->grantMasked(
                valid, prio ? saPortReqScratch.data() : nullptr);
        INPG_ASSERT(winner >= 0, "no grant from nonzero request mask");
        switchTraverse(winner,
                       inportWinner[static_cast<std::size_t>(winner)], op,
                       now);
    }
}

void
Router::switchTraverseSoA(int inport, VcId v, int outport, Cycle now)
{
    VcStateArray &a = *soa;
    const std::size_t s = a.slot(inport, v);
    OutputUnit &ou = *outputs[static_cast<std::size_t>(outport)];
    INPG_ASSERT(ou.outChannel() != nullptr,
                "router %d: traversal into unconnected port %d", id,
                outport);

    FlitPtr flit = a.popFlit(s);
    const bool tail = isTailFlit(flit->type);

    if (isHeadFlit(flit->type)) {
        onHeadFlitGranted(flit, inport, static_cast<Direction>(outport),
                          now);
        ++*packetsRoutedCtr;
        if (pktTel)
            telRouterOp(PacketTelOp::Kind::RouterDepart,
                        flit->packet->id, now);
    }

    // Return a buffer credit upstream (none for the generator port).
    if (Channel *up = inChannels[static_cast<std::size_t>(inport)])
        up->pushCredit(Credit{v, tail}, now);

    VcId out_vc = a.outVc[s];
    flit->vc = out_vc;
    ou.decrementCredit(out_vc);
    if (tail) {
        ou.freeVc(out_vc);
        a.state[s] = VcStateArray::Idle;
        a.outVc[s] = INVALID_VC;
        a.refreshMask(s);
    }
    ou.outChannel()->pushFlit(std::move(flit), now);
    ++*flitsSentCtr;
}

void
Router::allocateSwitchSoA(Cycle now)
{
    VcStateArray &a = *soa;
    // No Active VC holds a flit anywhere in the router: SA is a no-op,
    // and since all-invalid arbiter calls are skipped in every variant,
    // returning here leaves identical arbiter state.
    if (a.activeMask == 0)
        return;
    const int nports = numInPorts();
    const bool prio = cfg.switchPolicy == SwitchPolicy::Priority;
    std::vector<VcId> &inportWinner = inportWinnerScratch;

    // SA-I over per-port slices of the whole-router Active mask. Same
    // candidate filters, vnet rotation and arbiter calls as the AoS
    // mask variant; only the state loads differ (flat arrays instead of
    // VirtualChannel objects).
    std::array<std::uint32_t, NUM_PORTS> outportCand{};
    bool anyWinner = false;
    for (int p = 0; p < nports; ++p) {
        inportWinner[static_cast<std::size_t>(p)] = INVALID_VC;
        const std::size_t base = a.slot(p, 0);
        std::uint32_t valid = 0;
        for (std::uint32_t m = a.saCandidates(p); m; m &= m - 1) {
            const VcId v = static_cast<VcId>(std::countr_zero(m));
            const std::size_t s = base + static_cast<std::size_t>(v);
            const FlitPtr &front = a.front(s);
            if (now <= front->bufferedAt)
                continue;
            OutputUnit &ou =
                *outputs[static_cast<std::size_t>(a.outPort[s])];
            if (ou.credits(a.outVc[s]) <= 0)
                continue;
            valid |= 1u << static_cast<std::uint32_t>(v);
            if (prio) {
                auto &r = saVcReqScratch[static_cast<std::size_t>(v)];
                r.priority = front->packet->priority;
                r.age = now - a.headAt[s];
            }
        }
        if (!valid)
            continue;
        if (prio) {
            // Vnet rotation: keep only the first vnet (from the
            // pointer) that has a candidate.
            std::size_t &ptr = saInportVnetPtr[static_cast<std::size_t>(p)];
            const std::size_t nv = static_cast<std::size_t>(cfg.numVnets);
            for (std::size_t k = 0; k < nv; ++k) {
                std::size_t vn = ptr + k >= nv ? ptr + k - nv : ptr + k;
                const std::uint32_t vm =
                    vnetVcMask(static_cast<VnetId>(vn));
                if (valid & vm) {
                    valid &= vm;
                    ptr = vn + 1 == nv ? 0 : vn + 1;
                    break;
                }
            }
        }
        const int w = saInportArb[static_cast<std::size_t>(p)]->grantMasked(
            valid, prio ? saVcReqScratch.data() : nullptr);
        INPG_ASSERT(w != INVALID_VC, "no grant from nonzero request mask");
        inportWinner[static_cast<std::size_t>(p)] = w;
        anyWinner = true;
        const auto op = static_cast<std::size_t>(
            a.outPort[base + static_cast<std::size_t>(w)]);
        outportCand[op] |= 1u << static_cast<std::uint32_t>(p);
    }
    // An all-invalid grant() touches no arbiter state, so outports
    // without candidates need no SA-II visit.
    if (!anyWinner)
        return;

    // SA-II over the per-outport winner masks (bit = input port).
    for (int op = 0; op < NUM_PORTS; ++op) {
        std::uint32_t valid = outportCand[static_cast<std::size_t>(op)];
        if (!valid)
            continue;
        if (prio) {
            for (std::uint32_t m = valid; m; m &= m - 1) {
                const auto p =
                    static_cast<std::size_t>(std::countr_zero(m));
                const std::size_t s =
                    a.slot(static_cast<int>(p), inportWinner[p]);
                auto &r = saPortReqScratch[p];
                r.priority = a.front(s)->packet->priority;
                r.age = now - a.headAt[s];
            }
            std::size_t &ptr = saOutportVnetPtr[static_cast<std::size_t>(op)];
            const std::size_t nv = static_cast<std::size_t>(cfg.numVnets);
            for (std::size_t k = 0; k < nv; ++k) {
                std::size_t vn = ptr + k >= nv ? ptr + k - nv : ptr + k;
                std::uint32_t in_vnet = 0;
                for (std::uint32_t m = valid; m; m &= m - 1) {
                    const auto p =
                        static_cast<std::size_t>(std::countr_zero(m));
                    if (cfg.vnetOfVc(inportWinner[p]) ==
                        static_cast<VnetId>(vn))
                        in_vnet |= 1u << p;
                }
                if (in_vnet) {
                    valid = in_vnet;
                    ptr = vn + 1 == nv ? 0 : vn + 1;
                    break;
                }
            }
        }
        const int winner =
            saOutportArb[static_cast<std::size_t>(op)]->grantMasked(
                valid, prio ? saPortReqScratch.data() : nullptr);
        INPG_ASSERT(winner >= 0, "no grant from nonzero request mask");
        switchTraverseSoA(winner,
                          inportWinner[static_cast<std::size_t>(winner)],
                          op, now);
    }
}


} // namespace inpg
