/**
 * @file
 * FlitPool: a per-thread free list recycling Flit objects.
 *
 * The NoC allocates one Flit per packet flit and hands it across 10+
 * hops; with shared_ptr this cost one heap allocation plus atomic
 * count traffic per flit. The pool keeps dead flits on a free list and
 * re-initializes them in place, so steady-state simulation performs no
 * flit heap allocation at all.
 *
 * Ownership rules (see also DESIGN.md):
 *  - every Flit belongs to exactly one FlitPool, the per-thread pool of
 *    the thread that created it; it returns there when the last FlitPtr
 *    drops (the payload PacketPtr is released at that moment, not
 *    retained by the free list);
 *  - a simulated System must be constructed, run and destroyed on a
 *    single host thread: flits are born and die on that thread (the
 *    parallel sweep runner confines each configuration to one
 *    worker). The parallel kernel (src/sim/parallel) keeps this
 *    true: only the coordinator thread creates or releases flits (NI
 *    inject/eject, BigRouter generation); fabric workers move
 *    already-live FlitPtrs between buffers, with ownership handed
 *    across the quantum barrier's release/acquire edges;
 *  - pool-less Flits (pool == nullptr, e.g. unit tests constructing
 *    Flit on the heap manually) are deleted instead of recycled.
 */

#ifndef INPG_NOC_FLIT_POOL_HH
#define INPG_NOC_FLIT_POOL_HH

#include <cstdint>
#include <vector>

#include "noc/flit.hh"

namespace inpg {

/** Free-list allocator for Flit objects (one per host thread). */
class FlitPool
{
  public:
    FlitPool() = default;
    ~FlitPool();

    FlitPool(const FlitPool &) = delete;
    FlitPool &operator=(const FlitPool &) = delete;

    /** The calling thread's pool. */
    static FlitPool &local();

    /** Allocate (or recycle) a flit. */
    FlitPtr make(PacketPtr pkt, FlitType type, int seq);

    /** Fresh heap allocations performed. */
    std::uint64_t allocated() const { return freshAllocs; }

    /** Allocations served from the free list. */
    std::uint64_t reused() const { return freeListHits; }

    /** Fraction of allocations served without touching the heap. */
    double
    hitRate() const
    {
        const std::uint64_t total = freshAllocs + freeListHits;
        return total ? static_cast<double>(freeListHits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** Flits currently parked on the free list. */
    std::size_t freeListSize() const { return freeList.size(); }

    /** Release the free list back to the heap (stats are kept). */
    void trim();

    /** Zero the allocation counters (perf harness epochs). */
    void
    resetStats()
    {
        freshAllocs = 0;
        freeListHits = 0;
    }

  private:
    friend void detail::releaseFlit(Flit *flit);

    /** Park a dead flit (refs == 0) for reuse. */
    void recycle(Flit *flit);

    std::vector<Flit *> freeList;
    std::uint64_t freshAllocs = 0;
    std::uint64_t freeListHits = 0;
};

} // namespace inpg

#endif // INPG_NOC_FLIT_POOL_HH
