#include "noc/flit.hh"

#include "common/logging.hh"

namespace inpg {

std::string
Flit::toString() const
{
    const char *names[] = {"H", "B", "T", "HT"};
    return format("flit[%s seq%d vc%d of %s]",
                  names[static_cast<int>(type)], seq, vc,
                  packet ? packet->toString().c_str() : "null");
}

} // namespace inpg
