#include "noc/flit.hh"

#include "common/logging.hh"

namespace inpg {

bool
isHeadFlit(FlitType t)
{
    return t == FlitType::Head || t == FlitType::HeadTail;
}

bool
isTailFlit(FlitType t)
{
    return t == FlitType::Tail || t == FlitType::HeadTail;
}

std::string
Flit::toString() const
{
    const char *names[] = {"H", "B", "T", "HT"};
    return format("flit[%s seq%d vc%d of %s]",
                  names[static_cast<int>(type)], seq, vc,
                  packet ? packet->toString().c_str() : "null");
}

} // namespace inpg
