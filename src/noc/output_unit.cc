#include "noc/output_unit.hh"

#include "common/logging.hh"

namespace inpg {

OutputUnit::OutputUnit(int num_vcs, int vc_depth) : depth(vc_depth)
{
    INPG_ASSERT(num_vcs > 0 && vc_depth > 0,
                "bad output unit shape: %d VCs x %d credits", num_vcs,
                vc_depth);
    states.resize(static_cast<std::size_t>(num_vcs));
    for (auto &s : states)
        s.credits = vc_depth;
}

void
OutputUnit::allocateVc(VcId vc)
{
    OutVcState &s = state(vc);
    INPG_ASSERT(!s.busy, "double allocation of output VC %d", vc);
    s.busy = true;
}

void
OutputUnit::freeVc(VcId vc)
{
    OutVcState &s = state(vc);
    INPG_ASSERT(s.busy, "freeing a free output VC %d", vc);
    s.busy = false;
}

void
OutputUnit::decrementCredit(VcId vc)
{
    OutVcState &s = state(vc);
    INPG_ASSERT(s.credits > 0, "credit underflow on VC %d", vc);
    --s.credits;
}

void
OutputUnit::receiveCredit(const Credit &credit)
{
    OutVcState &s = state(credit.vc);
    ++s.credits;
    INPG_ASSERT(s.credits <= depth, "credit overflow on VC %d", credit.vc);
}

VcId
OutputUnit::findFreeVcInRange(VcId lo, VcId hi)
{
    INPG_ASSERT(lo >= 0 && hi < numVcs() && lo <= hi,
                "bad VC range [%d, %d]", lo, hi);
    const VcId span = hi - lo + 1;
    for (VcId i = 0; i < span; ++i) {
        VcId vc = lo + (scanPointer + i) % span;
        if (isVcFree(vc)) {
            scanPointer = (vc - lo + 1) % span;
            return vc;
        }
    }
    return INVALID_VC;
}

} // namespace inpg
