#include "noc/output_unit.hh"

#include "common/logging.hh"

namespace inpg {

OutputUnit::OutputUnit(int num_vcs, int vc_depth) : depth(vc_depth)
{
    INPG_ASSERT(num_vcs > 0 && vc_depth > 0,
                "bad output unit shape: %d VCs x %d credits", num_vcs,
                vc_depth);
    INPG_ASSERT(num_vcs <= 32, "busy mask holds at most 32 VCs, got %d",
                num_vcs);
    creditArr.resize(static_cast<std::size_t>(num_vcs), vc_depth);
}

void
OutputUnit::allocateVc(VcId vc)
{
    checkVc(vc);
    INPG_ASSERT(!(busyMask & bit(vc)), "double allocation of output VC %d",
                vc);
    busyMask |= bit(vc);
}

void
OutputUnit::freeVc(VcId vc)
{
    checkVc(vc);
    INPG_ASSERT(busyMask & bit(vc), "freeing a free output VC %d", vc);
    busyMask &= ~bit(vc);
}

void
OutputUnit::decrementCredit(VcId vc)
{
    checkVc(vc);
    int &c = creditArr[static_cast<std::size_t>(vc)];
    INPG_ASSERT(c > 0, "credit underflow on VC %d", vc);
    --c;
}

void
OutputUnit::receiveCredit(const Credit &credit)
{
    checkVc(credit.vc);
    int &c = creditArr[static_cast<std::size_t>(credit.vc)];
    ++c;
    INPG_ASSERT(c <= depth, "credit overflow on VC %d", credit.vc);
}

VcId
OutputUnit::findFreeVcInRange(VcId lo, VcId hi)
{
    INPG_ASSERT(lo >= 0 && hi < numVcs() && lo <= hi,
                "bad VC range [%d, %d]", lo, hi);
    const VcId span = hi - lo + 1;
    // Whole-range fast reject: every VC in [lo, hi] busy.
    const std::uint32_t range_mask =
        ((span >= 32 ? 0u : (1u << span)) - 1u)
        << static_cast<std::uint32_t>(lo);
    if ((busyMask & range_mask) == range_mask)
        return INVALID_VC;
    // Round-robin scan from the pointer; same pointer evolution as the
    // original per-VC loop (pointer moves only on a grant).
    for (VcId i = 0; i < span; ++i) {
        VcId vc = lo + (scanPointer + i) % span;
        if (isVcFree(vc)) {
            scanPointer = (vc - lo + 1) % span;
            return vc;
        }
    }
    return INVALID_VC;
}

} // namespace inpg
