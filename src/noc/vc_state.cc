#include "noc/vc_state.hh"

#include <bit>
#include <utility>

namespace inpg {

VcStateArray::VcStateArray(int num_ports, int num_vcs, int vc_depth)
    : ports(num_ports), vcsPerPort(num_vcs), depth(vc_depth)
{
    INPG_ASSERT(num_ports > 0 && num_vcs > 0 && vc_depth > 0,
                "bad VC array shape: %d ports x %d VCs x depth %d",
                num_ports, num_vcs, vc_depth);
    INPG_ASSERT(fits(num_ports, num_vcs),
                "%d ports x %d VCs exceeds the 64-slot mask budget",
                num_ports, num_vcs);
    const std::size_t slots = static_cast<std::size_t>(num_ports) *
                              static_cast<std::size_t>(num_vcs);
    capPerVc = std::bit_ceil(static_cast<std::size_t>(vc_depth));
    portAll = num_vcs >= 32 ? ~0u : (1u << num_vcs) - 1u;

    state.assign(slots, Idle);
    outPort.assign(slots, Direction::Local);
    outClass.assign(slots, VC_CLASS_ANY);
    outVc.assign(slots, INVALID_VC);
    headAt.assign(slots, 0);

    store.assign(slots * capPerVc, FlitPtr{});
    head.assign(slots, 0);
    count.assign(slots, 0);
}

std::size_t
VcStateArray::portOccupancy(int port) const
{
    std::size_t total = 0;
    for (VcId vc = 0; vc < vcsPerPort; ++vc)
        total += count[slot(port, vc)];
    return total;
}

} // namespace inpg
