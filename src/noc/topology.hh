/**
 * @file
 * Topology: first-class fabric abstraction behind the NoC builder.
 *
 * A Topology owns the machine's shape: how many routers exist, how
 * cores (nodes) map onto routers, which router neighbors which, the
 * canonical link enumeration the Network wires channels from, the
 * routing-algorithm factory that fills the precomputed route tables,
 * and the channel-dependency graph the protocol verifier walks for
 * its topology-aware deadlock-freedom check.
 *
 * Three fabrics:
 *  - mesh:WxH    -- the paper's baseline. XY/YX dimension-order
 *                   routing, no wraparound, every route entry carries
 *                   VC_CLASS_ANY (so the port onto this interface is
 *                   bit-identical to the pre-Topology mesh).
 *  - torus:WxH   -- mesh plus wraparound links. Wrap links close the
 *                   ring dependency cycle, so dimension-order routing
 *                   alone deadlocks; the dateline rule below splits
 *                   each vnet's VCs into two classes to cut the cycle.
 *  - cmesh:WxHxC -- concentrated mesh, C cores per router. Node ids
 *                   are router-major (node = router*C + k); one shared
 *                   NetworkInterface per router arbitrates the C
 *                   cores' traffic into the local port (fan-in through
 *                   the per-vnet inject queues).
 *
 * Dateline rule (torus escape VCs): the VC class of a hop is a pure
 * function of (here, dst) -- "is the wrap edge still ahead on this
 * dimension?". Going East, class = (x > dx) ? 0 : 1: a packet that
 * still must cross the x = W-1 -> 0 wrap edge travels in class 0, and
 * every hop after the wrap (x < dx) is class 1. West/South/North are
 * symmetric. Class-0 edges increase monotonically toward the wrap
 * edge, the wrap edge itself is only ever used in class 0, and its
 * successor hop is always class 1, so each class's dependency
 * subgraph is acyclic and classes only chain 0 -> 1 -- the standard
 * dateline argument, checked structurally by channelDependencies() +
 * findChannelDepCycle().
 */

#ifndef INPG_NOC_TOPOLOGY_HH
#define INPG_NOC_TOPOLOGY_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "noc/noc_config.hh"
#include "noc/routing.hh"

namespace inpg {

/**
 * Parsed "topology=" specification: `mesh:16x16`, `torus:8x8`,
 * `cmesh:8x8x4` (WxHxC). A bare "WxH" is accepted as a mesh.
 */
struct TopologySpec {
    TopologyKind kind = TopologyKind::Mesh;
    int width = 8;
    int height = 8;
    int concentration = 1;

    /** Parse a spec string; fatal() on malformed or unknown forms. */
    static TopologySpec parse(const std::string &text);

    /** Canonical "kind:WxH[xC]" rendering. */
    std::string canonical() const;

    /** Write the spec into a NocConfig's topology fields. */
    void applyTo(NocConfig &cfg) const;
};

/** One inter-router link of the canonical enumeration. */
struct TopoLink {
    NodeId from = INVALID_NODE;
    Direction dir = Direction::Local; ///< output port at `from`
    NodeId to = INVALID_NODE;
    bool wrap = false; ///< torus wraparound edge (the dateline)
};

/**
 * Channel-dependency graph: one node per (directed link, VC class)
 * pair actually used by some route, one edge per "holding channel A
 * may wait for channel B" relation induced by the routing function.
 * Acyclicity of this graph is the static deadlock-freedom argument
 * for the fabric (the verifier's topology-aware check).
 */
struct ChannelDepGraph {
    struct Node {
        NodeId from = INVALID_NODE;
        NodeId to = INVALID_NODE;
        Direction dir = Direction::Local;
        std::uint8_t vcClass = VC_CLASS_ANY;
    };
    std::vector<Node> nodes;
    std::vector<std::vector<std::int32_t>> edges; ///< adjacency lists

    /** "3->7 E class 0" style label for diagnostics. */
    std::string describe(std::size_t node_index) const;
};

/**
 * Find one dependency cycle; the returned node-index path starts and
 * ends on the same channel (the witness). Empty when acyclic.
 */
std::vector<std::int32_t> findChannelDepCycle(const ChannelDepGraph &g);

/**
 * Even distribution of `count` big-router sites over a w x h router
 * grid: checkerboard at half population (paper Figure 3), Bresenham
 * stride otherwise. Grid math lives here so deployment code needs no
 * coordinate arithmetic of its own.
 */
bool evenPlacementSite(NodeId router, int grid_w, int grid_h, int count);

/** Fabric abstraction: shape, links, routing factory, dependencies. */
class Topology
{
  public:
    explicit Topology(const NocConfig &cfg);
    virtual ~Topology() = default;

    const NocConfig &config() const { return cfg; }

    /** Canonical spec name ("torus:8x8", "cmesh:8x8x4"). */
    virtual std::string name() const = 0;

    int numRouters() const { return grid.numNodes(); }
    int concentration() const { return cfg.concentration; }
    int numNodes() const { return numRouters() * concentration(); }

    /** Router grid geometry (row-major router ids). */
    const MeshShape &routerGrid() const { return grid; }

    /** Router serving a node (identity when concentration == 1). */
    NodeId
    routerOf(NodeId node) const
    {
        return node / cfg.concentration;
    }

    /** First node attached to a router. */
    NodeId
    firstNodeOf(NodeId router) const
    {
        return router * cfg.concentration;
    }

    /** Neighbor router out of port `d`; INVALID_NODE when absent. */
    virtual NodeId neighbor(NodeId router, Direction d) const = 0;

    /** Router-grid hop distance between two routers. */
    virtual int hopDistance(NodeId router_a, NodeId router_b) const;

    /** Routing algorithm honoring cfg.routing (XY/YX order). */
    virtual std::unique_ptr<RoutingAlgorithm> makeRouting() const = 0;

    /**
     * Every inter-router link, in the canonical order the Network
     * wires channels: ascending router id, East before South (the
     * exact order the pre-Topology mesh builder used, so mesh wiring
     * -- and therefore allChannels() -- is unchanged).
     */
    std::vector<TopoLink> links() const;

    /**
     * The channel-dependency graph induced by makeRouting() over
     * links(), for the verifier's acyclicity check.
     */
    ChannelDepGraph channelDependencies() const;

    /** True when the router hosts one of `count` evenly placed big
     *  routers (iNPG deployment). */
    bool
    bigRouterSite(NodeId router, int count) const
    {
        return evenPlacementSite(router, grid.width(), grid.height(),
                                 count);
    }

  protected:
    NocConfig cfg;
    MeshShape grid;
};

/** Build the Topology described by cfg (fatal on bad parameters). */
std::unique_ptr<Topology> makeTopology(const NocConfig &cfg);

/** Parse "mesh" / "torus" / "cmesh"; fatal otherwise. */
TopologyKind parseTopologyKind(const std::string &name);

/** "mesh" / "torus" / "cmesh". */
const char *topologyKindName(TopologyKind k);

} // namespace inpg

#endif // INPG_NOC_TOPOLOGY_HH
