/**
 * @file
 * Credit token for VC flow control.
 *
 * A credit is returned upstream whenever a flit leaves an input buffer,
 * granting the upstream router/NI the right to send one more flit on
 * that VC. `freeVc` additionally signals that the tail flit left, so
 * the upstream output VC binding can be released.
 */

#ifndef INPG_NOC_CREDIT_HH
#define INPG_NOC_CREDIT_HH

#include "common/types.hh"

namespace inpg {

/** One buffer slot returned for a specific VC. */
struct Credit {
    VcId vc = INVALID_VC;
    /** True when the tail flit vacated the VC (VC becomes reallocatable). */
    bool freeVc = false;
};

} // namespace inpg

#endif // INPG_NOC_CREDIT_HH
