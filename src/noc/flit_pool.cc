#include "noc/flit_pool.hh"

#include "common/logging.hh"

namespace inpg {

FlitPool &
FlitPool::local()
{
    static thread_local FlitPool pool;
    return pool;
}

FlitPtr
FlitPool::make(PacketPtr pkt, FlitType type, int seq)
{
    Flit *flit;
    if (!freeList.empty()) {
        flit = freeList.back();
        freeList.pop_back();
        ++freeListHits;
        flit->packet = std::move(pkt);
        flit->type = type;
        flit->seq = seq;
        flit->vc = INVALID_VC;
        flit->bufferedAt = 0;
    } else {
        flit = new Flit(std::move(pkt), type, seq);
        ++freshAllocs;
    }
    flit->pool = this;
    flit->refs = 1;
    return FlitPtr(flit, FlitPtr::Adopt{});
}

void
FlitPool::recycle(Flit *flit)
{
    INPG_ASSERT(flit->refs == 0, "recycling a live flit");
    // Drop the payload now; parking it would pin the Packet (and the
    // coherence message inside it) for the pool's whole lifetime.
    flit->packet.reset();
    freeList.push_back(flit);
}

void
FlitPool::trim()
{
    for (Flit *flit : freeList)
        delete flit;
    freeList.clear();
}

FlitPool::~FlitPool()
{
    trim();
}

namespace detail {

void
releaseFlit(Flit *flit)
{
    if (flit->pool)
        flit->pool->recycle(flit);
    else
        delete flit;
}

} // namespace detail

FlitPtr
makeFlit(PacketPtr pkt, FlitType type, int seq)
{
    return FlitPool::local().make(std::move(pkt), type, seq);
}

} // namespace inpg
