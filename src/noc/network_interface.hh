/**
 * @file
 * Network interface (NI): the tile-side endpoint of the NoC.
 *
 * The NI serializes outbound packets into flits (performing VC selection
 * for the router's local input port), injects at most one flit per cycle
 * (128-bit link), reassembles inbound flits into packets and delivers
 * them to the attached controller via a callback.
 *
 * Concentration (cmesh): one NI serves the `concentration` cores of its
 * router -- nodes [id * concentration, (id + 1) * concentration). The
 * cores' traffic fans into the shared local port through the per-vnet
 * inject queues (the clock-derived vnet rotation plus the inflight
 * round-robin are the fan-in arbitration), and inbound packets demux to
 * a per-node deliver callback. With concentration == 1 this degenerates
 * to the classic one-NI-per-core tile, bit-identically.
 */

#ifndef INPG_NOC_NETWORK_INTERFACE_HH
#define INPG_NOC_NETWORK_INTERFACE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "noc/link.hh"
#include "noc/noc_config.hh"
#include "noc/output_unit.hh"
#include "noc/ring_buffer.hh"
#include "sim/ticking.hh"
#include "telemetry/flight_recorder.hh"

namespace inpg {

class PacketLifetimeTracker;

/** Endpoint adapter between tile controllers and the router fabric. */
class NetworkInterface : public Ticking
{
  public:
    using DeliverFn = std::function<void(const PacketPtr &, Cycle)>;

    NetworkInterface(NodeId node_id, const NocConfig &cfg);

    /**
     * @param to_router   channel whose flit line the NI drives
     *                    (credits return to the NI on it)
     * @param from_router channel whose flit line feeds the NI
     *                    (the NI returns credits on it)
     */
    void connect(Channel *to_router, Channel *from_router);

    /** Register the packet sink for one served node (tile demux). */
    void
    setDeliverCallback(NodeId node, DeliverFn fn)
    {
        INPG_ASSERT(servesNode(node), "NI %d does not serve node %d", id,
                    node);
        deliver[static_cast<std::size_t>(node - baseNode)] =
            std::move(fn);
    }

    /**
     * Queue a packet for injection. Takes effect the cycle after the
     * call (the NI charges one cycle of injection latency).
     */
    void sendPacket(const PacketPtr &pkt, Cycle now);

    void tick(Cycle now) override;

    std::string tickName() const override;

    NodeId nodeId() const { return id; }

    /** First node this NI serves (== nodeId() when concentration 1). */
    NodeId baseNodeId() const { return baseNode; }

    /** True when `node` attaches to this NI's router. */
    bool
    servesNode(NodeId node) const
    {
        return node >= baseNode &&
               node < baseNode + static_cast<NodeId>(deliver.size());
    }

    /** True when no packet is queued, serializing, or reassembling. */
    bool idle() const;

    /** Attach (or detach with nullptr) the packet-lifetime tracker. */
    void setPacketTracker(PacketLifetimeTracker *t) { pktTel = t; }

    /** Attach (or detach with nullptr) the flight recorder. */
    void setFlightRecorder(FlightRecorder *r) { frec = r; }

    /**
     * Endpoint state for the hang report: per-vnet inject-queue
     * depths, packets mid-serialization, reassembly occupancy.
     */
    JsonValue debugJson() const;

    StatGroup stats;

  private:
    void drainCredits(Cycle now);
    void ejectFlits(Cycle now);
    void allocateInjectVcs(Cycle now);
    void injectOneFlit(Cycle now);

    NodeId id;
    NocConfig cfg;

    /** First served node (id * concentration). */
    NodeId baseNode;

    /** Per-served-node packet sinks, indexed by node - baseNode. */
    std::vector<DeliverFn> deliver;

    Channel *txChannel = nullptr;
    Channel *rxChannel = nullptr;

    /** Mirror of the router's local input port VC/credit state. */
    OutputUnit routerPort;

    /** Per-vnet queues of packets awaiting a VC. */
    std::vector<RingBuffer<PacketPtr, 8>> injectQueues;

    /** Packets currently being serialized, keyed by allocated VC. */
    struct InFlight {
        PacketPtr pkt;
        int nextSeq = 0;
        VcId vc = INVALID_VC;
    };
    std::vector<InFlight> inflight;

    /** Per-VC reassembly buffers for inbound flits. */
    std::vector<std::vector<FlitPtr>> reassembly;

    std::size_t inflightPointer = 0;

    /**
     * Cached aggregate occupancy (packets across injectQueues, flits
     * across reassembly) so the per-cycle idle/early-out checks are one
     * compare instead of a walk over every queue.
     */
    std::size_t queuedPkts = 0;
    std::size_t reassemblingFlits = 0;

    /** Packet-lifetime telemetry; null when telemetry is off. */
    PacketLifetimeTracker *pktTel = nullptr;

    /** Flight recorder; null when off. */
    FlightRecorder *frec = nullptr;

    /** Cached hot stat handles (string lookup once at construction). */
    std::uint64_t *packetsQueuedCtr = nullptr;
    std::uint64_t *packetsDeliveredCtr = nullptr;
    std::uint64_t *packetsSentCtr = nullptr;
    std::uint64_t *flitsSentCtr = nullptr;
    SampleStat *packetLatencySample = nullptr;
};

} // namespace inpg

#endif // INPG_NOC_NETWORK_INTERFACE_HH
