/**
 * @file
 * Power-of-two ring buffers for the NoC hot path.
 *
 * Every FIFO the flit path touches per hop -- link delay lines, VC
 * buffers, the NI inject queues, the generator queue -- used to be a
 * std::deque. A deque allocates its map and chunk nodes lazily, chases
 * a double indirection on front()/back(), and its elements straddle
 * cache lines; on the hot path that cost shows up on every hop of
 * every flit. RingBuffer stores elements in one flat pow2 array with
 * head/size counters, so push/pop are an index mask and a move, and a
 * warm buffer performs zero heap allocation in steady state.
 *
 * Growth doubles the capacity (preserving FIFO order), so a cold
 * buffer warms up once and then never allocates again. Determinism:
 * growth depends only on occupancy, never on host state.
 */

#ifndef INPG_NOC_RING_BUFFER_HH
#define INPG_NOC_RING_BUFFER_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace inpg {

/**
 * Growable FIFO over a flat pow2 array.
 *
 * @tparam T          element type (move-constructible)
 * @tparam InitialCap initial capacity; must be a power of two so the
 *                    wrap is an AND instead of a modulo.
 */
template <typename T, std::size_t InitialCap = 8>
class RingBuffer
{
    static_assert(InitialCap > 0 && (InitialCap & (InitialCap - 1)) == 0,
                  "ring-buffer capacity must be a power of two");

  public:
    RingBuffer() : slots(InitialCap) {}

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return slots.size(); }

    T &
    front()
    {
        INPG_ASSERT(count > 0, "front() on empty ring buffer");
        return slots[head];
    }

    const T &
    front() const
    {
        INPG_ASSERT(count > 0, "front() on empty ring buffer");
        return slots[head];
    }

    void
    push_back(T value)
    {
        if (count == slots.size())
            grow();
        slots[(head + count) & (slots.size() - 1)] = std::move(value);
        ++count;
    }

    /** Pop and return the oldest element. */
    T
    pop_front()
    {
        INPG_ASSERT(count > 0, "pop_front() on empty ring buffer");
        T out = std::move(slots[head]);
        head = (head + 1) & (slots.size() - 1);
        --count;
        return out;
    }

    void
    clear()
    {
        while (count > 0) {
            slots[head] = T();
            head = (head + 1) & (slots.size() - 1);
            --count;
        }
        head = 0;
    }

  private:
    void
    grow()
    {
        std::vector<T> bigger(slots.size() * 2);
        for (std::size_t i = 0; i < count; ++i)
            bigger[i] = std::move(slots[(head + i) & (slots.size() - 1)]);
        slots = std::move(bigger);
        head = 0;
    }

    std::vector<T> slots;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace inpg

#endif // INPG_NOC_RING_BUFFER_HH
