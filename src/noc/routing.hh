/**
 * @file
 * Routing: port naming for the mesh and the XY dimension-order
 * algorithm used by the paper's target architecture (deadlock-free on a
 * mesh with no turnaround).
 */

#ifndef INPG_NOC_ROUTING_HH
#define INPG_NOC_ROUTING_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace inpg {

/** Router port directions. Local attaches the tile's NI. */
enum class Direction : int {
    Local = 0,
    North = 1,
    East = 2,
    South = 3,
    West = 4,
};

/** Number of ports on a mesh router. */
inline constexpr int NUM_PORTS = 5;

/** Short name ("L","N","E","S","W"). */
std::string directionName(Direction d);

/** Opposite direction; Local maps to Local. */
Direction opposite(Direction d);

/** (x, y) coordinates of a node on a width x height mesh. */
struct Coord {
    int x = 0;
    int y = 0;

    bool operator==(const Coord &o) const { return x == o.x && y == o.y; }
};

/**
 * Geometry of a rectangular mesh: node-id <-> coordinate mapping.
 * Node ids are row-major: id = y * width + x.
 */
class MeshShape
{
  public:
    MeshShape(int mesh_width, int mesh_height);

    int width() const { return meshWidth; }
    int height() const { return meshHeight; }
    int numNodes() const { return meshWidth * meshHeight; }

    Coord coordOf(NodeId id) const;
    NodeId idOf(Coord c) const;
    bool contains(Coord c) const;

    /** Neighbor node in the given direction; INVALID_NODE at the edge. */
    NodeId neighbor(NodeId id, Direction d) const;

    /** Manhattan hop distance between two nodes. */
    int hopDistance(NodeId a, NodeId b) const;

  private:
    int meshWidth;
    int meshHeight;
};

/** Strategy interface: pick the output port toward a destination. */
class RoutingAlgorithm
{
  public:
    virtual ~RoutingAlgorithm() = default;

    /**
     * @param here router evaluating the route
     * @param dst  final destination node
     * @return output port to take from `here` (Local when here == dst).
     */
    virtual Direction route(NodeId here, NodeId dst) const = 0;

    /**
     * Materialize this router's routing decisions as a dense
     * destination-indexed table (one byte per destination) so the RC
     * pipeline stage can replace the virtual call with an array index.
     */
    std::vector<Direction>
    buildTable(NodeId here, int num_nodes) const
    {
        std::vector<Direction> table(static_cast<std::size_t>(num_nodes));
        for (NodeId dst = 0; dst < num_nodes; ++dst)
            table[static_cast<std::size_t>(dst)] = route(here, dst);
        return table;
    }
};

/** X-first-then-Y dimension-order routing. */
class XYRouting : public RoutingAlgorithm
{
  public:
    explicit XYRouting(MeshShape mesh_shape) : shape(mesh_shape) {}

    Direction route(NodeId here, NodeId dst) const override;

  private:
    MeshShape shape;
};

/**
 * Y-first-then-X dimension-order routing: the transposed deadlock-free
 * alternative. Useful for routing-sensitivity studies (hotspot traffic
 * toward the top/bottom memory-controller rows behaves differently).
 */
class YXRouting : public RoutingAlgorithm
{
  public:
    explicit YXRouting(MeshShape mesh_shape) : shape(mesh_shape) {}

    Direction route(NodeId here, NodeId dst) const override;

  private:
    MeshShape shape;
};

} // namespace inpg

#endif // INPG_NOC_ROUTING_HH
