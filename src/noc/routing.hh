/**
 * @file
 * Routing: port naming, the XY/YX dimension-order algorithms used by
 * the paper's target architecture (deadlock-free on a mesh with no
 * turnaround), and the torus variant whose route entries carry the
 * dateline VC class that keeps wraparound links deadlock-free.
 *
 * A route decision is a RouteEntry: the output port plus the VC class
 * the packet must allocate on the downstream input. Mesh and cmesh
 * entries always carry VC_CLASS_ANY (any VC of the message's vnet),
 * which keeps the VA stage byte-for-byte identical to the
 * pre-Topology code on those fabrics.
 */

#ifndef INPG_NOC_ROUTING_HH
#define INPG_NOC_ROUTING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "noc/noc_config.hh"

namespace inpg {

/** Router port directions. Local attaches the tile's NI. */
enum class Direction : int {
    Local = 0,
    North = 1,
    East = 2,
    South = 3,
    West = 4,
};

/** Number of ports on a mesh router. */
inline constexpr int NUM_PORTS = 5;

/**
 * "Any VC of the vnet": the route imposes no dateline class. All mesh
 * and cmesh entries use this, as do torus hops that have already
 * crossed (or never cross) the wrap edge of their dimension.
 */
inline constexpr std::uint8_t VC_CLASS_ANY = 0xff;

/**
 * One routing decision: the output port and the downstream VC class
 * restriction (VC_CLASS_ANY, 0, or 1).
 */
struct RouteEntry {
    Direction dir = Direction::Local;
    std::uint8_t vcClass = VC_CLASS_ANY;

    bool
    operator==(const RouteEntry &o) const
    {
        return dir == o.dir && vcClass == o.vcClass;
    }
};

/** Short name ("L","N","E","S","W"). */
std::string directionName(Direction d);

/** Opposite direction; Local maps to Local. */
Direction opposite(Direction d);

/** (x, y) coordinates of a node on a width x height mesh. */
struct Coord {
    int x = 0;
    int y = 0;

    bool operator==(const Coord &o) const { return x == o.x && y == o.y; }
};

/**
 * Geometry of a rectangular mesh: node-id <-> coordinate mapping.
 * Node ids are row-major: id = y * width + x.
 */
class MeshShape
{
  public:
    MeshShape(int mesh_width, int mesh_height);

    int width() const { return meshWidth; }
    int height() const { return meshHeight; }
    int numNodes() const { return meshWidth * meshHeight; }

    Coord coordOf(NodeId id) const;
    NodeId idOf(Coord c) const;
    bool contains(Coord c) const;

    /** Neighbor node in the given direction; INVALID_NODE at the edge. */
    NodeId neighbor(NodeId id, Direction d) const;

    /** Manhattan hop distance between two nodes. */
    int hopDistance(NodeId a, NodeId b) const;

  private:
    int meshWidth;
    int meshHeight;
};

/**
 * Strategy interface: pick the output port (and downstream VC class)
 * toward a destination node. `here` is always a router id; `dst` is a
 * node (core) id -- under concentration several nodes share a router,
 * so the algorithm maps dst to its router before comparing
 * coordinates.
 */
class RoutingAlgorithm
{
  public:
    explicit RoutingAlgorithm(int concentration = 1)
        : conc(concentration)
    {}
    virtual ~RoutingAlgorithm() = default;

    /**
     * @param here router evaluating the route
     * @param dst  final destination node
     * @return port to take from `here` (Local when dst attaches here)
     *         plus the VC class restriction for the next hop.
     */
    virtual RouteEntry routeEntry(NodeId here, NodeId dst) const = 0;

    /** Port-only view of routeEntry() for callers and legacy tests. */
    Direction
    route(NodeId here, NodeId dst) const
    {
        return routeEntry(here, dst).dir;
    }

    /**
     * Materialize this router's routing decisions as a dense
     * destination-indexed table (two bytes per destination) so the RC
     * pipeline stage can replace the virtual call with an array index.
     */
    std::vector<RouteEntry>
    buildTable(NodeId here, int num_nodes) const
    {
        std::vector<RouteEntry> table(static_cast<std::size_t>(num_nodes));
        for (NodeId dst = 0; dst < num_nodes; ++dst)
            table[static_cast<std::size_t>(dst)] = routeEntry(here, dst);
        return table;
    }

  protected:
    /** Router serving a destination node. */
    NodeId dstRouter(NodeId dst) const { return dst / conc; }

    int conc;
};

/** X-first-then-Y dimension-order routing. */
class XYRouting : public RoutingAlgorithm
{
  public:
    explicit XYRouting(MeshShape mesh_shape, int concentration = 1)
        : RoutingAlgorithm(concentration), shape(mesh_shape)
    {}

    RouteEntry routeEntry(NodeId here, NodeId dst) const override;

  private:
    MeshShape shape;
};

/**
 * Y-first-then-X dimension-order routing: the transposed deadlock-free
 * alternative. Useful for routing-sensitivity studies (hotspot traffic
 * toward the top/bottom memory-controller rows behaves differently).
 */
class YXRouting : public RoutingAlgorithm
{
  public:
    explicit YXRouting(MeshShape mesh_shape, int concentration = 1)
        : RoutingAlgorithm(concentration), shape(mesh_shape)
    {}

    RouteEntry routeEntry(NodeId here, NodeId dst) const override;

  private:
    MeshShape shape;
};

/**
 * Torus dimension-order routing: minimal-path per dimension (wrapping
 * when the wrap direction is shorter; ties break toward East/South),
 * X before Y under RoutingKind::XY and Y before X under YX. With
 * escape VCs enabled each hop carries a dateline class -- class 0
 * while the dimension's wrap edge is still ahead, class 1 after it --
 * which is what makes the wraparound rings acyclic (see
 * noc/topology.hh). With escape VCs disabled every entry is
 * VC_CLASS_ANY: deliberately deadlock-prone, for negative verifier
 * tests.
 */
class TorusRouting : public RoutingAlgorithm
{
  public:
    TorusRouting(MeshShape mesh_shape, RoutingKind order,
                 bool escape_vcs, int concentration = 1);

    RouteEntry routeEntry(NodeId here, NodeId dst) const override;

  private:
    /** Decision for one dimension; Local when already aligned. */
    RouteEntry routeDim(int here_c, int dst_c, int extent,
                        Direction inc_dir, Direction dec_dir) const;

    MeshShape shape;
    bool xFirst;
    bool escapeVcs;
};

} // namespace inpg

#endif // INPG_NOC_ROUTING_HH
