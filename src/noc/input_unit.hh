/**
 * @file
 * Input unit of a router port: one buffered virtual channel set.
 */

#ifndef INPG_NOC_INPUT_UNIT_HH
#define INPG_NOC_INPUT_UNIT_HH

#include <deque>
#include <vector>

#include "common/types.hh"
#include "noc/flit.hh"
#include "noc/routing.hh"

namespace inpg {

/** Per-VC state machine of an input port. */
struct VirtualChannel {
    enum class State {
        Idle,   ///< no packet resident
        WaitVc, ///< head buffered & routed; waiting for an output VC
        Active, ///< output VC allocated; flits may traverse the switch
    };

    State state = State::Idle;
    std::deque<FlitPtr> buffer;

    /** Output port computed by route computation (valid in WaitVc+). */
    Direction outPort = Direction::Local;

    /** Downstream VC granted by VC allocation (valid in Active). */
    VcId outVc = INVALID_VC;

    /** Cycle the resident head flit was buffered (aging / eligibility). */
    Cycle headEnqueuedAt = 0;

    bool hasFlit() const { return !buffer.empty(); }
};

/**
 * The input side of one router port: `numVcs` buffered VCs.
 *
 * The router drives all pipeline stages; InputUnit owns buffer space and
 * per-VC state, and checks buffer-occupancy invariants.
 */
class InputUnit
{
  public:
    InputUnit(int num_vcs, int vc_depth);

    /** Buffer an arriving flit into its VC. */
    void receiveFlit(const FlitPtr &flit, Cycle now);

    /** Pop the head flit of a VC (switch traversal). */
    FlitPtr popFlit(VcId vc);

    VirtualChannel &vc(VcId id);
    const VirtualChannel &vc(VcId id) const;

    int numVcs() const { return static_cast<int>(vcs.size()); }
    int vcDepth() const { return depth; }

    /** Total buffered flits across VCs (for stats/invariants). */
    std::size_t totalOccupancy() const { return occupancy; }

  private:
    std::vector<VirtualChannel> vcs;
    int depth;
    std::size_t occupancy = 0;
};

} // namespace inpg

#endif // INPG_NOC_INPUT_UNIT_HH
