/**
 * @file
 * Input unit of a router port: one buffered virtual channel set.
 */

#ifndef INPG_NOC_INPUT_UNIT_HH
#define INPG_NOC_INPUT_UNIT_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "noc/flit.hh"
#include "noc/ring_buffer.hh"
#include "noc/routing.hh"

namespace inpg {

/** Per-VC state machine of an input port. */
struct VirtualChannel {
    enum class State {
        Idle,   ///< no packet resident
        WaitVc, ///< head buffered & routed; waiting for an output VC
        Active, ///< output VC allocated; flits may traverse the switch
    };

    State state = State::Idle;
    RingBuffer<FlitPtr, 4> buffer;

    /** Output port computed by route computation (valid in WaitVc+). */
    Direction outPort = Direction::Local;

    /** Dateline VC class from route computation (valid in WaitVc+). */
    std::uint8_t outClass = VC_CLASS_ANY;

    /** Downstream VC granted by VC allocation (valid in Active). */
    VcId outVc = INVALID_VC;

    /** Cycle the resident head flit was buffered (aging / eligibility). */
    Cycle headEnqueuedAt = 0;

    bool hasFlit() const { return !buffer.empty(); }
};

/**
 * The input side of one router port: `numVcs` buffered VCs.
 *
 * The router drives all pipeline stages; InputUnit owns buffer space and
 * per-VC state, and checks buffer-occupancy invariants.
 */
class InputUnit
{
  public:
    InputUnit(int num_vcs, int vc_depth);

    /** Buffer an arriving flit into its VC. */
    void receiveFlit(const FlitPtr &flit, Cycle now);

    /** Pop the head flit of a VC (switch traversal). */
    FlitPtr popFlit(VcId vc);

    // Hot accessors: called per VC per allocation stage per cycle;
    // inline so the router loops compile to direct indexing.
    VirtualChannel &
    vc(VcId id)
    {
        INPG_ASSERT(id >= 0 && id < numVcs(), "VC id %d out of range", id);
        return vcs[static_cast<std::size_t>(id)];
    }

    const VirtualChannel &
    vc(VcId id) const
    {
        INPG_ASSERT(id >= 0 && id < numVcs(), "VC id %d out of range", id);
        return vcs[static_cast<std::size_t>(id)];
    }

    int numVcs() const { return static_cast<int>(vcs.size()); }
    int vcDepth() const { return depth; }

    /** Total buffered flits across VCs (for stats/invariants). */
    std::size_t totalOccupancy() const { return occupancy; }

    /** VCs needing route computation or an output VC (VA stage). */
    std::uint32_t vaCandidates() const { return pendingMask | waitMask; }

    /** Active VCs with a buffered flit (SA-I stage). */
    std::uint32_t saCandidates() const { return activeMask; }

    /**
     * Re-derive this VC's candidate-mask bits from its state and
     * buffer. Must be called after every state transition or buffer
     * push/pop; receiveFlit/popFlit do so themselves, the router does
     * it after writing VirtualChannel::state directly. The masks are
     * pure derived state -- always maintained, so runs that toggle
     * NocConfig::fastAllocScan mid-stream still agree.
     */
    void
    refreshMask(VcId id)
    {
        const std::uint32_t bit = 1u << static_cast<std::uint32_t>(id);
        const VirtualChannel &ch = vcs[static_cast<std::size_t>(id)];
        pendingMask &= ~bit;
        waitMask &= ~bit;
        activeMask &= ~bit;
        switch (ch.state) {
          case VirtualChannel::State::Idle:
            if (!ch.buffer.empty())
                pendingMask |= bit;
            break;
          case VirtualChannel::State::WaitVc:
            waitMask |= bit;
            break;
          case VirtualChannel::State::Active:
            if (!ch.buffer.empty())
                activeMask |= bit;
            break;
        }
    }

  private:
    std::vector<VirtualChannel> vcs;
    int depth;
    std::size_t occupancy = 0;
    std::uint32_t pendingMask = 0; ///< Idle VCs holding a (head) flit
    std::uint32_t waitMask = 0;    ///< VCs in WaitVc
    std::uint32_t activeMask = 0;  ///< Active VCs holding a flit
};

} // namespace inpg

#endif // INPG_NOC_INPUT_UNIT_HH
