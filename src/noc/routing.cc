#include "noc/routing.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace inpg {

std::string
directionName(Direction d)
{
    switch (d) {
      case Direction::Local:
        return "L";
      case Direction::North:
        return "N";
      case Direction::East:
        return "E";
      case Direction::South:
        return "S";
      case Direction::West:
        return "W";
    }
    return "?";
}

Direction
opposite(Direction d)
{
    switch (d) {
      case Direction::Local:
        return Direction::Local;
      case Direction::North:
        return Direction::South;
      case Direction::East:
        return Direction::West;
      case Direction::South:
        return Direction::North;
      case Direction::West:
        return Direction::East;
    }
    panic("bad direction");
}

MeshShape::MeshShape(int mesh_width, int mesh_height)
    : meshWidth(mesh_width), meshHeight(mesh_height)
{
    if (mesh_width < 1 || mesh_height < 1)
        fatal("mesh dimensions must be positive (%dx%d)", mesh_width,
              mesh_height);
}

Coord
MeshShape::coordOf(NodeId id) const
{
    INPG_ASSERT(id >= 0 && id < numNodes(), "node id %d out of range", id);
    return Coord{id % meshWidth, id / meshWidth};
}

NodeId
MeshShape::idOf(Coord c) const
{
    INPG_ASSERT(contains(c), "coord (%d,%d) outside mesh", c.x, c.y);
    return c.y * meshWidth + c.x;
}

bool
MeshShape::contains(Coord c) const
{
    return c.x >= 0 && c.x < meshWidth && c.y >= 0 && c.y < meshHeight;
}

NodeId
MeshShape::neighbor(NodeId id, Direction d) const
{
    Coord c = coordOf(id);
    switch (d) {
      case Direction::North:
        --c.y;
        break;
      case Direction::South:
        ++c.y;
        break;
      case Direction::East:
        ++c.x;
        break;
      case Direction::West:
        --c.x;
        break;
      case Direction::Local:
        return id;
    }
    return contains(c) ? idOf(c) : INVALID_NODE;
}

int
MeshShape::hopDistance(NodeId a, NodeId b) const
{
    Coord ca = coordOf(a);
    Coord cb = coordOf(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

Direction
YXRouting::route(NodeId here, NodeId dst) const
{
    Coord ch = shape.coordOf(here);
    Coord cd = shape.coordOf(dst);
    if (ch.y < cd.y)
        return Direction::South;
    if (ch.y > cd.y)
        return Direction::North;
    if (ch.x < cd.x)
        return Direction::East;
    if (ch.x > cd.x)
        return Direction::West;
    return Direction::Local;
}

Direction
XYRouting::route(NodeId here, NodeId dst) const
{
    Coord ch = shape.coordOf(here);
    Coord cd = shape.coordOf(dst);
    if (ch.x < cd.x)
        return Direction::East;
    if (ch.x > cd.x)
        return Direction::West;
    if (ch.y < cd.y)
        return Direction::South;
    if (ch.y > cd.y)
        return Direction::North;
    return Direction::Local;
}

} // namespace inpg
