#include "noc/routing.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace inpg {

std::string
directionName(Direction d)
{
    switch (d) {
      case Direction::Local:
        return "L";
      case Direction::North:
        return "N";
      case Direction::East:
        return "E";
      case Direction::South:
        return "S";
      case Direction::West:
        return "W";
    }
    return "?";
}

Direction
opposite(Direction d)
{
    switch (d) {
      case Direction::Local:
        return Direction::Local;
      case Direction::North:
        return Direction::South;
      case Direction::East:
        return Direction::West;
      case Direction::South:
        return Direction::North;
      case Direction::West:
        return Direction::East;
    }
    panic("bad direction");
}

MeshShape::MeshShape(int mesh_width, int mesh_height)
    : meshWidth(mesh_width), meshHeight(mesh_height)
{
    if (mesh_width < 1 || mesh_height < 1)
        fatal("mesh dimensions must be positive (%dx%d)", mesh_width,
              mesh_height);
}

Coord
MeshShape::coordOf(NodeId id) const
{
    INPG_ASSERT(id >= 0 && id < numNodes(), "node id %d out of range", id);
    return Coord{id % meshWidth, id / meshWidth};
}

NodeId
MeshShape::idOf(Coord c) const
{
    INPG_ASSERT(contains(c), "coord (%d,%d) outside mesh", c.x, c.y);
    return c.y * meshWidth + c.x;
}

bool
MeshShape::contains(Coord c) const
{
    return c.x >= 0 && c.x < meshWidth && c.y >= 0 && c.y < meshHeight;
}

NodeId
MeshShape::neighbor(NodeId id, Direction d) const
{
    Coord c = coordOf(id);
    switch (d) {
      case Direction::North:
        --c.y;
        break;
      case Direction::South:
        ++c.y;
        break;
      case Direction::East:
        ++c.x;
        break;
      case Direction::West:
        --c.x;
        break;
      case Direction::Local:
        return id;
    }
    return contains(c) ? idOf(c) : INVALID_NODE;
}

int
MeshShape::hopDistance(NodeId a, NodeId b) const
{
    Coord ca = coordOf(a);
    Coord cb = coordOf(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

RouteEntry
YXRouting::routeEntry(NodeId here, NodeId dst) const
{
    Coord ch = shape.coordOf(here);
    Coord cd = shape.coordOf(dstRouter(dst));
    if (ch.y < cd.y)
        return {Direction::South, VC_CLASS_ANY};
    if (ch.y > cd.y)
        return {Direction::North, VC_CLASS_ANY};
    if (ch.x < cd.x)
        return {Direction::East, VC_CLASS_ANY};
    if (ch.x > cd.x)
        return {Direction::West, VC_CLASS_ANY};
    return {Direction::Local, VC_CLASS_ANY};
}

RouteEntry
XYRouting::routeEntry(NodeId here, NodeId dst) const
{
    Coord ch = shape.coordOf(here);
    Coord cd = shape.coordOf(dstRouter(dst));
    if (ch.x < cd.x)
        return {Direction::East, VC_CLASS_ANY};
    if (ch.x > cd.x)
        return {Direction::West, VC_CLASS_ANY};
    if (ch.y < cd.y)
        return {Direction::South, VC_CLASS_ANY};
    if (ch.y > cd.y)
        return {Direction::North, VC_CLASS_ANY};
    return {Direction::Local, VC_CLASS_ANY};
}

TorusRouting::TorusRouting(MeshShape mesh_shape, RoutingKind order,
                           bool escape_vcs, int concentration)
    : RoutingAlgorithm(concentration),
      shape(mesh_shape),
      xFirst(order == RoutingKind::XY),
      escapeVcs(escape_vcs)
{
    if (shape.width() < 3 || shape.height() < 3)
        fatal("torus needs at least a 3x3 router grid (%dx%d): smaller "
              "rings make the wrap link coincide with the mesh link",
              shape.width(), shape.height());
}

RouteEntry
TorusRouting::routeDim(int here_c, int dst_c, int extent,
                       Direction inc_dir, Direction dec_dir) const
{
    if (here_c == dst_c)
        return {Direction::Local, VC_CLASS_ANY};
    // Minimal path around the ring; ties break toward the increasing
    // direction so the decision is a pure function of the coordinates.
    const int delta_inc = (dst_c - here_c + extent) % extent;
    const bool go_inc = 2 * delta_inc <= extent;
    std::uint8_t cls = VC_CLASS_ANY;
    if (escapeVcs) {
        // Dateline rule: class 0 while the wrap edge of this ring is
        // still ahead, class 1 once past it (or when the path never
        // wraps). Increasing direction wraps iff here > dst; the
        // decreasing one iff here < dst.
        if (go_inc)
            cls = here_c > dst_c ? 0 : 1;
        else
            cls = here_c < dst_c ? 0 : 1;
    }
    return {go_inc ? inc_dir : dec_dir, cls};
}

RouteEntry
TorusRouting::routeEntry(NodeId here, NodeId dst) const
{
    Coord ch = shape.coordOf(here);
    Coord cd = shape.coordOf(dstRouter(dst));
    const RouteEntry x_hop = routeDim(ch.x, cd.x, shape.width(),
                                      Direction::East, Direction::West);
    const RouteEntry y_hop = routeDim(ch.y, cd.y, shape.height(),
                                      Direction::South, Direction::North);
    if (xFirst)
        return x_hop.dir != Direction::Local ? x_hop : y_hop;
    return y_hop.dir != Direction::Local ? y_hop : x_hop;
}

} // namespace inpg
