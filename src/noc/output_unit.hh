/**
 * @file
 * Output unit of a router port: downstream VC bookkeeping (credit counts
 * and VC allocation state) plus the outgoing channel reference.
 */

#ifndef INPG_NOC_OUTPUT_UNIT_HH
#define INPG_NOC_OUTPUT_UNIT_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "noc/credit.hh"
#include "noc/link.hh"

namespace inpg {

/**
 * Tracks, for each VC of the downstream input port, whether it is bound
 * to an in-flight packet and how many buffer slots remain.
 *
 * Storage is structure-of-arrays: a packed busy bitmask plus a flat
 * credit array, probed per candidate VC in the VA and SA stages every
 * cycle. The mask makes isVcFree() a single bit test and lets the
 * free-VC scan skip an entirely-busy vnet range in one compare.
 */
class OutputUnit
{
  public:
    /**
     * @param num_vcs  VCs on the downstream input port
     * @param vc_depth downstream buffer depth (initial credits per VC)
     */
    OutputUnit(int num_vcs, int vc_depth);

    /** Attach the physical channel this port drives (not owned). */
    void connect(Channel *out_channel) { channel = out_channel; }

    Channel *outChannel() const { return channel; }

    /**
     * True if the VC is unbound and can be granted to a new packet.
     * Inline: probed per candidate VC in the VA stage every cycle.
     */
    bool
    isVcFree(VcId vc) const
    {
        checkVc(vc);
        return !(busyMask & bit(vc));
    }

    /** Bind a VC to a packet (VC allocation). */
    void allocateVc(VcId vc);

    /** Release a VC binding (tail flit traversed the switch). */
    void freeVc(VcId vc);

    /** Credits remaining on a VC. Inline: probed per SA candidate. */
    int
    credits(VcId vc) const
    {
        checkVc(vc);
        return creditArr[static_cast<std::size_t>(vc)];
    }

    /** Consume one credit (a flit was sent on this VC). */
    void decrementCredit(VcId vc);

    /** Process a returning credit from downstream. */
    void receiveCredit(const Credit &credit);

    /**
     * Find a free VC within [lo, hi] starting the scan after the last
     * grant (round-robin); INVALID_VC if none.
     */
    VcId findFreeVcInRange(VcId lo, VcId hi);

    int numVcs() const { return static_cast<int>(creditArr.size()); }

  private:
    /** Busy VCs as a packed mask (bit == VC index). */
    std::uint32_t busyMask = 0;

    /** Credits remaining per VC (flat, cache-resident). */
    std::vector<int> creditArr;

    Channel *channel = nullptr;
    int depth;
    VcId scanPointer = 0;

    static std::uint32_t
    bit(VcId vc)
    {
        return 1u << static_cast<std::uint32_t>(vc);
    }

    void
    checkVc(VcId vc) const
    {
        INPG_ASSERT(vc >= 0 && vc < numVcs(), "VC id %d out of range", vc);
    }
};

} // namespace inpg

#endif // INPG_NOC_OUTPUT_UNIT_HH
