/**
 * @file
 * Network: owns and wires the full NoC (routers, NIs, channels) from a
 * Topology (mesh, torus or concentrated mesh) and provides the endpoint
 * API used by the coherence controllers.
 */

#ifndef INPG_NOC_NETWORK_HH
#define INPG_NOC_NETWORK_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "noc/link.hh"
#include "noc/network_interface.hh"
#include "noc/noc_config.hh"
#include "noc/router.hh"
#include "noc/routing.hh"
#include "noc/topology.hh"
#include "sim/simulator.hh"

namespace inpg {

/**
 * Creates the router for a node; the harness substitutes BigRouter
 * instances at iNPG deployment sites through this hook.
 */
using RouterFactory = std::function<std::unique_ptr<Router>(
    NodeId, const NocConfig &, const RoutingAlgorithm *)>;

/** The complete on-chip network of one simulated system. */
class Network
{
  public:
    /**
     * Build the fabric described by cfg.topology, register all
     * components with the simulator, and wire every channel.
     *
     * @param cfg     NoC parameters
     * @param sim     kernel the components register with
     * @param factory optional per-router router factory
     */
    Network(const NocConfig &cfg, Simulator &sim,
            RouterFactory factory = nullptr);

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    const NocConfig &config() const { return cfg; }
    const Topology &topology() const { return *topo; }
    const MeshShape &shape() const { return topo->routerGrid(); }
    const RoutingAlgorithm &routing() const { return *routingAlgo; }

    /** Router by router id (0 .. numRouters() - 1). */
    Router &router(NodeId id);

    /** NI by router id; one NI serves a router's attached cores. */
    NetworkInterface &ni(NodeId id);

    /** NI serving a node (core) id. */
    NetworkInterface &
    niFor(NodeId node)
    {
        return ni(topo->routerOf(node));
    }

    int numNodes() const { return cfg.numNodes(); }
    int numRouters() const { return cfg.numRouters(); }

    /** Allocate a packet with a fresh network-unique id. */
    PacketPtr makePacket(NodeId src, NodeId dst, VnetId vnet, int num_flits,
                         std::shared_ptr<PacketData> payload = nullptr);

    /** Inject a packet at its source NI. */
    void inject(const PacketPtr &pkt, Cycle now);

    /** True when no flit or packet is anywhere in the fabric. */
    bool quiescent() const;

    /** Sum a counter across all routers. */
    std::uint64_t routerCounterTotal(const std::string &key) const;

    /** Sum a counter across all NIs. */
    std::uint64_t niCounterTotal(const std::string &key) const;

    /** Mean end-to-end packet latency observed at the NIs. */
    double meanPacketLatency() const;

    /**
     * Attach (or detach with nullptr) the telemetry facade: forwards
     * the packet-lifetime tracker to every router and NI and names
     * their trace tracks.
     */
    void setTelemetry(Telemetry *t);

    /**
     * Every channel in construction order (stable across runs); the
     * parallel kernel walks this to classify cross-domain boundaries.
     */
    const std::vector<std::unique_ptr<Channel>> &
    allChannels() const
    {
        return channels;
    }

  private:
    NocConfig cfg;
    std::unique_ptr<Topology> topo;
    std::unique_ptr<RoutingAlgorithm> routingAlgo;
    std::vector<std::unique_ptr<Router>> routers;
    std::vector<std::unique_ptr<NetworkInterface>> nis;
    std::vector<std::unique_ptr<Channel>> channels;
    PacketId nextPacketId = 0;

    Channel *newChannel();
};

} // namespace inpg

#endif // INPG_NOC_NETWORK_HH
