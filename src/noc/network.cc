#include "noc/network.hh"

#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace inpg {

Network::Network(const NocConfig &config, Simulator &sim,
                 RouterFactory factory)
    : cfg(config), topo(makeTopology(config))
{
    routingAlgo = topo->makeRouting();
    const int n = topo->numRouters();
    routers.reserve(static_cast<std::size_t>(n));
    nis.reserve(static_cast<std::size_t>(n));

    for (NodeId id = 0; id < n; ++id) {
        if (factory)
            routers.push_back(factory(id, cfg, routingAlgo.get()));
        else
            routers.push_back(
                std::make_unique<Router>(id, cfg, routingAlgo.get()));
        nis.push_back(std::make_unique<NetworkInterface>(id, cfg));
    }

    // Local port wiring: NI <-> router.
    for (NodeId id = 0; id < n; ++id) {
        Channel *to_router = newChannel();
        Channel *from_router = newChannel();
        routers[static_cast<std::size_t>(id)]->connectInput(
            Direction::Local, to_router);
        routers[static_cast<std::size_t>(id)]->connectOutput(
            Direction::Local, from_router);
        nis[static_cast<std::size_t>(id)]->connect(to_router, from_router);
    }

    // Inter-router wiring from the topology's canonical link list (the
    // mesh subset enumerates in the same order the old builder did, so
    // allChannels() is unchanged on meshes).
    for (const TopoLink &link : topo->links()) {
        Channel *fwd = newChannel();
        Channel *rev = newChannel();
        routers[static_cast<std::size_t>(link.from)]->connectOutput(
            link.dir, fwd);
        routers[static_cast<std::size_t>(link.to)]->connectInput(
            opposite(link.dir), fwd);
        routers[static_cast<std::size_t>(link.to)]->connectOutput(
            opposite(link.dir), rev);
        routers[static_cast<std::size_t>(link.from)]->connectInput(
            link.dir, rev);
    }

    // Deterministic tick order: all routers, then all NIs.
    for (auto &r : routers)
        sim.addTicking(r.get());
    for (auto &ni_ptr : nis)
        sim.addTicking(ni_ptr.get());
}

Channel *
Network::newChannel()
{
    channels.push_back(
        std::make_unique<Channel>(cfg.linkLatency, cfg.creditLatency));
    return channels.back().get();
}

Router &
Network::router(NodeId id)
{
    INPG_ASSERT(id >= 0 && id < numRouters(), "router id %d out of range",
                id);
    return *routers[static_cast<std::size_t>(id)];
}

NetworkInterface &
Network::ni(NodeId id)
{
    INPG_ASSERT(id >= 0 && id < numRouters(), "NI id %d out of range", id);
    return *nis[static_cast<std::size_t>(id)];
}

PacketPtr
Network::makePacket(NodeId src, NodeId dst, VnetId vnet, int num_flits,
                    std::shared_ptr<PacketData> payload)
{
    INPG_ASSERT(num_flits >= 1, "packet needs at least one flit");
    return std::make_shared<Packet>(nextPacketId++, src, dst, vnet,
                                    num_flits, std::move(payload));
}

void
Network::inject(const PacketPtr &pkt, Cycle now)
{
    niFor(pkt->src).sendPacket(pkt, now);
}

bool
Network::quiescent() const
{
    for (const auto &r : routers)
        if (r->bufferedFlits() != 0)
            return false;
    for (const auto &ni_ptr : nis)
        if (!ni_ptr->idle())
            return false;
    for (const auto &ch : channels)
        if (!ch->flits.empty())
            return false;
    return true;
}

std::uint64_t
Network::routerCounterTotal(const std::string &key) const
{
    std::uint64_t total = 0;
    for (const auto &r : routers)
        total += r->stats.value(key);
    return total;
}

std::uint64_t
Network::niCounterTotal(const std::string &key) const
{
    std::uint64_t total = 0;
    for (const auto &ni_ptr : nis)
        total += ni_ptr->stats.value(key);
    return total;
}

void
Network::setTelemetry(Telemetry *t)
{
    PacketLifetimeTracker *tracker = t ? t->packets : nullptr;
    FlightRecorder *rec = t ? t->recorder : nullptr;
    for (auto &r : routers) {
        r->setPacketTracker(tracker);
        r->setFlightRecorder(rec);
    }
    for (auto &ni_ptr : nis) {
        ni_ptr->setPacketTracker(tracker);
        ni_ptr->setFlightRecorder(rec);
    }
    if (t && t->trace) {
        for (const auto &r : routers) {
            t->trace->nameTrack(
                TrackGroup::Routers,
                static_cast<std::uint32_t>(r->nodeId()),
                format("%srouter %d", r->isBigRouter() ? "big " : "",
                       r->nodeId()));
        }
        for (const auto &ni_ptr : nis) {
            t->trace->nameTrack(
                TrackGroup::NetworkInterfaces,
                static_cast<std::uint32_t>(ni_ptr->nodeId()),
                format("ni %d", ni_ptr->nodeId()));
        }
    }
}

double
Network::meanPacketLatency() const
{
    double sum = 0;
    std::uint64_t n = 0;
    for (const auto &ni_ptr : nis) {
        const SampleStat &s = ni_ptr->stats.sampleValue("packet_latency");
        sum += s.sum();
        n += s.count();
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

} // namespace inpg
