#include "noc/packet.hh"

#include "common/logging.hh"

namespace inpg {

std::string
Packet::toString() const
{
    return format("pkt#%llu %d->%d vnet%d flits%d prio%d",
                  static_cast<unsigned long long>(id), src, dst, vnet,
                  numFlits, priority);
}

} // namespace inpg
