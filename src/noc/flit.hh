/**
 * @file
 * Flit: the unit of link transfer and buffer allocation.
 */

#ifndef INPG_NOC_FLIT_HH
#define INPG_NOC_FLIT_HH

#include <memory>
#include <string>

#include "common/types.hh"
#include "noc/packet.hh"

namespace inpg {

/** Position of a flit inside its packet. */
enum class FlitType {
    Head,
    Body,
    Tail,
    HeadTail, ///< single-flit packet
};

/** True for Head and HeadTail flits. */
bool isHeadFlit(FlitType t);

/** True for Tail and HeadTail flits. */
bool isTailFlit(FlitType t);

/** One flit of a packet in flight. */
struct Flit {
    Flit(PacketPtr pkt, FlitType flit_type, int sequence)
        : packet(std::move(pkt)), type(flit_type), seq(sequence)
    {}

    PacketPtr packet;
    FlitType type;
    /** 0-based position within the packet. */
    int seq;

    /** VC the flit occupies at the current hop (set per hop). */
    VcId vc = INVALID_VC;

    /** Cycle the flit was written into the current input buffer. */
    Cycle bufferedAt = 0;

    std::string toString() const;
};

using FlitPtr = std::shared_ptr<Flit>;

} // namespace inpg

#endif // INPG_NOC_FLIT_HH
