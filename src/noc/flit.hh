/**
 * @file
 * Flit: the unit of link transfer and buffer allocation.
 *
 * Flits are allocated from a per-thread FlitPool free list and handled
 * through the intrusive, non-atomic FlitPtr smart pointer: per-hop
 * hand-offs are a plain pointer copy plus counter bump instead of a
 * shared_ptr control-block round trip. See flit_pool.hh for ownership
 * rules.
 */

#ifndef INPG_NOC_FLIT_HH
#define INPG_NOC_FLIT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/types.hh"
#include "noc/packet.hh"

namespace inpg {

class FlitPool;
class FlitPtr;
struct Flit;

namespace detail {
/** Return a dead flit to its pool (or the heap). Defined in flit_pool.cc. */
void releaseFlit(Flit *flit);
} // namespace detail

/** Position of a flit inside its packet. */
enum class FlitType {
    Head,
    Body,
    Tail,
    HeadTail, ///< single-flit packet
};

/** True for Head and HeadTail flits. */
inline bool
isHeadFlit(FlitType t)
{
    return t == FlitType::Head || t == FlitType::HeadTail;
}

/** True for Tail and HeadTail flits. */
inline bool
isTailFlit(FlitType t)
{
    return t == FlitType::Tail || t == FlitType::HeadTail;
}

/** One flit of a packet in flight. */
struct Flit {
    Flit(PacketPtr pkt, FlitType flit_type, int sequence)
        : packet(std::move(pkt)), type(flit_type), seq(sequence)
    {}

    PacketPtr packet;
    FlitType type;
    /** 0-based position within the packet. */
    int seq;

    /** VC the flit occupies at the current hop (set per hop). */
    VcId vc = INVALID_VC;

    /** Cycle the flit was written into the current input buffer. */
    Cycle bufferedAt = 0;

    std::string toString() const;

  private:
    friend class FlitPool;
    friend class FlitPtr;
    friend void detail::releaseFlit(Flit *flit);

    /**
     * Intrusive reference count. Non-atomic: a flit lives inside one
     * simulated System, and a System is confined to a single host
     * thread (the sweep runner runs whole configurations per thread).
     */
    std::uint32_t refs = 0;

    /** Owning pool the flit returns to on release (null: heap flit). */
    FlitPool *pool = nullptr;
};

/**
 * Intrusive smart pointer to a pooled Flit.
 *
 * Drop-in for the former std::shared_ptr<Flit> on the NoC hot paths:
 * copyable (bumps the intrusive count), movable (pointer steal, no
 * count traffic -- prefer std::move on hand-off).
 */
class FlitPtr
{
  public:
    FlitPtr() noexcept = default;
    FlitPtr(std::nullptr_t) noexcept {}

    FlitPtr(const FlitPtr &other) noexcept : ptr(other.ptr)
    {
        if (ptr)
            ++ptr->refs;
    }

    FlitPtr(FlitPtr &&other) noexcept : ptr(other.ptr)
    {
        other.ptr = nullptr;
    }

    FlitPtr &
    operator=(const FlitPtr &other) noexcept
    {
        if (other.ptr)
            ++other.ptr->refs;
        Flit *old = ptr;
        ptr = other.ptr;
        releaseRaw(old);
        return *this;
    }

    FlitPtr &
    operator=(FlitPtr &&other) noexcept
    {
        if (this != &other) {
            Flit *old = ptr;
            ptr = other.ptr;
            other.ptr = nullptr;
            releaseRaw(old);
        }
        return *this;
    }

    ~FlitPtr() { releaseRaw(ptr); }

    void
    reset() noexcept
    {
        Flit *old = ptr;
        ptr = nullptr;
        releaseRaw(old);
    }

    Flit *get() const noexcept { return ptr; }
    Flit &operator*() const noexcept { return *ptr; }
    Flit *operator->() const noexcept { return ptr; }
    explicit operator bool() const noexcept { return ptr != nullptr; }

    friend bool
    operator==(const FlitPtr &a, const FlitPtr &b) noexcept
    {
        return a.ptr == b.ptr;
    }

    friend bool
    operator!=(const FlitPtr &a, const FlitPtr &b) noexcept
    {
        return a.ptr != b.ptr;
    }

    friend bool
    operator==(const FlitPtr &a, std::nullptr_t) noexcept
    {
        return a.ptr == nullptr;
    }

    friend bool
    operator!=(const FlitPtr &a, std::nullptr_t) noexcept
    {
        return a.ptr != nullptr;
    }

  private:
    friend class FlitPool;

    /** Adopt a raw flit whose count was pre-incremented by the pool. */
    struct Adopt {};
    FlitPtr(Flit *raw, Adopt) noexcept : ptr(raw) {}

    static void
    releaseRaw(Flit *raw) noexcept
    {
        if (raw && --raw->refs == 0)
            detail::releaseFlit(raw);
    }

    Flit *ptr = nullptr;
};

/** Allocate a flit from the calling thread's FlitPool. */
FlitPtr makeFlit(PacketPtr pkt, FlitType type, int seq);

} // namespace inpg

#endif // INPG_NOC_FLIT_HH
