/**
 * @file
 * Big router: a baseline router extended with the iNPG packet
 * generator (paper Section 4).
 *
 * In the paper's micro-architecture the packet generator works in the
 * ST pipeline stage: it installs lock barriers when GetX[lock] requests
 * traverse, stops later GetX[lock] requests under a barrier (converting
 * them to early-invalidated requests and emitting an early Inv through
 * a dedicated VC -- here an internal generator input port), and relays
 * returning InvAcks to the home node.
 */

#ifndef INPG_INPG_BIG_ROUTER_HH
#define INPG_INPG_BIG_ROUTER_HH

#include "coh/coh_config.hh"
#include "inpg/inpg_config.hh"
#include "inpg/packet_generator.hh"
#include "noc/network.hh"
#include "noc/router.hh"

namespace inpg {

/** Active router with in-network packet generation. */
class BigRouter : public Router
{
  public:
    BigRouter(NodeId node_id, const NocConfig &noc_cfg,
              const RoutingAlgorithm *routing, const InpgConfig &inpg_cfg,
              const CohConfig &coh_cfg);

    bool isBigRouter() const override { return true; }

    PacketGenerator &generator() { return gen; }
    const PacketGenerator &generator() const { return gen; }

    /** Router pipeline dump plus the barrier-table contents. */
    JsonValue debugJson(Cycle now) const override;

  protected:
    void onHeadFlitArrived(const FlitPtr &flit, int inport,
                           Cycle now) override;
    void onHeadFlitGranted(const FlitPtr &flit, int inport,
                           Direction outport, Cycle now) override;
    void generatorPhase(Cycle now) override;

    /**
     * Live barriers age by TTL each cycle; the expiry statistics are
     * per-cycle observable, so stay in the active set until the table
     * drains.
     */
    bool
    generatorIdle() const override
    {
        return gen.barrierTable().numBarriers() == 0;
    }

  private:
    /**
     * The router's network address for generated traffic. A
     * concentrated router serves several nodes; packets it emits carry
     * the first local node's id so returning InvAcks (dst = collector)
     * route back to this router. Equals nodeId() when concentration=1.
     */
    NodeId brNode;
    PacketGenerator gen;
    CohConfig cohCfg;
    PacketId nextGenPacketId;
};

/**
 * Router factory deploying big routers evenly per `cfg.numBigRouters`
 * (checkerboard at half population, paper Figure 3). Pass to Network /
 * CoherentSystem construction.
 */
RouterFactory makeInpgRouterFactory(const InpgConfig &inpg_cfg,
                                    const CohConfig &coh_cfg);

} // namespace inpg

#endif // INPG_INPG_BIG_ROUTER_HH
