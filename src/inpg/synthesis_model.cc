#include "inpg/synthesis_model.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace inpg {

SynthesisModel::SynthesisModel(SynthesisSeeds seed_values)
    : seed(seed_values)
{}

ModuleSynthesis
SynthesisModel::normalRouter() const
{
    ModuleSynthesis m;
    m.name = "router";
    m.gatesK = seed.routerGatesK;
    m.standardCellsK = seed.routerCellsK;
    m.netsK = seed.routerNetsK;
    m.cellAreaMm2 = seed.routerAreaMm2;
    m.cellDensity = seed.routerDensity;
    m.wireLengthM = seed.routerWireM;
    m.chipAreaMm2 = seed.tileChipAreaMm2;
    m.dynamicPowerMw = seed.routerPowerMw;
    return m;
}

ModuleSynthesis
SynthesisModel::packetGenerator(std::size_t table_entries) const
{
    // The locking barrier table dominates the generator (CAM-style
    // storage); cost scales linearly in the entry count around the
    // paper's 16-entry seed point, with a fixed control-logic floor.
    const double entry_fraction =
        static_cast<double>(table_entries) /
        static_cast<double>(seed.pktgenSeedEntries);
    const double storage_share = 0.8; // table share of the seed cost

    ModuleSynthesis m;
    m.name = format("pktgen%zu", table_entries);
    m.gatesK = seed.pktgenGatesK *
        ((1.0 - storage_share) + storage_share * entry_fraction);
    m.dynamicPowerMw = seed.pktgenPowerMw *
        ((1.0 - storage_share) + storage_share * entry_fraction);
    // Scale cells/nets/area/wire with gates using the router's ratios.
    const double per_gate_cells = seed.routerCellsK / seed.routerGatesK;
    const double per_gate_nets = seed.routerNetsK / seed.routerGatesK;
    const double per_gate_area = seed.routerAreaMm2 / seed.routerGatesK;
    const double per_gate_wire = seed.routerWireM / seed.routerGatesK;
    m.standardCellsK = m.gatesK * per_gate_cells;
    m.netsK = m.gatesK * per_gate_nets;
    m.cellAreaMm2 = m.gatesK * per_gate_area;
    m.wireLengthM = m.gatesK * per_gate_wire;
    return m;
}

ModuleSynthesis
SynthesisModel::bigRouter(std::size_t table_entries) const
{
    ModuleSynthesis r = normalRouter();
    ModuleSynthesis g = packetGenerator(table_entries);
    ModuleSynthesis m;
    m.name = "big_router";
    m.gatesK = r.gatesK + g.gatesK;
    m.standardCellsK = r.standardCellsK + g.standardCellsK;
    m.netsK = r.netsK + g.netsK;
    m.cellAreaMm2 = r.cellAreaMm2 + g.cellAreaMm2;
    // Same tile dimension as a normal router (the paper accommodates
    // the generator by raising standard-cell density, Fig. 7a).
    m.chipAreaMm2 = seed.tileChipAreaMm2;
    m.cellDensity = r.cellDensity * (m.cellAreaMm2 / r.cellAreaMm2);
    m.wireLengthM = r.wireLengthM + g.wireLengthM;
    m.dynamicPowerMw = r.dynamicPowerMw + g.dynamicPowerMw;
    return m;
}

ModuleSynthesis
SynthesisModel::core() const
{
    ModuleSynthesis m;
    m.name = "core";
    m.gatesK = seed.coreGatesK;
    m.standardCellsK = seed.coreCellsK;
    m.netsK = seed.coreNetsK;
    m.cellAreaMm2 = seed.coreAreaMm2;
    m.cellDensity = seed.coreDensity;
    m.wireLengthM = seed.coreWireM;
    m.chipAreaMm2 = seed.coreChipAreaMm2;
    m.dynamicPowerMw = seed.corePowerMw;
    return m;
}

double
SynthesisModel::tilePowerMw(bool big, std::size_t table_entries) const
{
    const double router_power = big
        ? bigRouter(table_entries).dynamicPowerMw
        : normalRouter().dynamicPowerMw;
    return seed.corePowerMw + router_power;
}

double
SynthesisModel::chipPowerMw(int num_nodes, int num_big_routers,
                            std::size_t table_entries) const
{
    if (num_big_routers < 0 || num_big_routers > num_nodes)
        fatal("bad deployment: %d big routers of %d nodes",
              num_big_routers, num_nodes);
    return static_cast<double>(num_nodes - num_big_routers) *
               tilePowerMw(false, table_entries) +
           static_cast<double>(num_big_routers) *
               tilePowerMw(true, table_entries);
}

std::string
SynthesisModel::renderTable(std::size_t table_entries) const
{
    const ModuleSynthesis cols[] = {core(), bigRouter(table_entries),
                                    normalRouter()};
    std::ostringstream os;
    auto row = [&](const std::string &label, auto get, int decimals) {
        os << padRight(label, 18);
        for (const auto &c : cols)
            os << padLeft(fixed(get(c), decimals), 12);
        os << "\n";
    };
    os << padRight("", 18) << padLeft("Core", 12) << padLeft("BigRouter", 12)
       << padLeft("Router", 12) << "\n";
    row("Gate count (K)", [](const ModuleSynthesis &m) { return m.gatesK; },
        1);
    row("SC count (K)",
        [](const ModuleSynthesis &m) { return m.standardCellsK; }, 1);
    row("Net count (K)", [](const ModuleSynthesis &m) { return m.netsK; },
        1);
    row("SC area (mm2)",
        [](const ModuleSynthesis &m) { return m.cellAreaMm2; }, 2);
    row("Cell density (%)",
        [](const ModuleSynthesis &m) { return m.cellDensity * 100.0; }, 2);
    row("Wire length (m)",
        [](const ModuleSynthesis &m) { return m.wireLengthM; }, 2);
    row("Chip area (mm2)",
        [](const ModuleSynthesis &m) { return m.chipAreaMm2; }, 2);
    row("Dyn. power (mW)",
        [](const ModuleSynthesis &m) { return m.dynamicPowerMw; }, 1);
    os << "Floorplan layers: " << seed.floorplanLayers
       << " (metal " << seed.metalLayers << ", top 2 power mesh)\n";
    return os.str();
}

} // namespace inpg
