/**
 * @file
 * iNPG deployment and big-router configuration (paper Table 1 / Sec. 4).
 */

#ifndef INPG_INPG_INPG_CONFIG_HH
#define INPG_INPG_INPG_CONFIG_HH

#include <cstddef>

#include "common/types.hh"

namespace inpg {

/** Parameters of the iNPG mechanism. */
struct InpgConfig {
    /** Lock barrier entries per big router (paper default 16). */
    std::size_t barrierEntries = 16;

    /** EI entries per lock barrier (paper default 16). */
    std::size_t eiEntries = 16;

    /** Barrier time-to-live in cycles (paper default 128). */
    Cycle barrierTtl = 128;

    /**
     * Number of big routers deployed, distributed evenly over the mesh
     * (paper default: 32 of 64, interleaved checkerboard).
     */
    int numBigRouters = 32;
};

/**
 * Even distribution of `count` big routers over a w x h mesh.
 * count == n/2 yields the checkerboard of paper Figure 3; count == n
 * upgrades every router.
 *
 * @return true when the node hosts a big router.
 */
bool isBigRouterNode(NodeId node, int mesh_w, int mesh_h, int count);

} // namespace inpg

#endif // INPG_INPG_INPG_CONFIG_HH
