/**
 * @file
 * Analytical synthesis/floorplan model reproducing paper Figure 7a.
 *
 * Substitution note (see DESIGN.md): the paper synthesizes RTL with
 * Synopsys DC + Cadence SoC Encounter on TSMC 40nm LP. Without EDA
 * tools we provide a parametric model seeded with the paper's reported
 * constants; the packet-generator cost scales with the locking barrier
 * table size so the Fig. 15 design-space sweep can also report hardware
 * cost.
 */

#ifndef INPG_INPG_SYNTHESIS_MODEL_HH
#define INPG_INPG_SYNTHESIS_MODEL_HH

#include <cstddef>
#include <string>

namespace inpg {

/** Synthesis figures for one module (gate counts in kilo-gates). */
struct ModuleSynthesis {
    std::string name;
    double gatesK = 0;        ///< equivalent NAND gates, thousands
    double standardCellsK = 0;///< standard cells, thousands
    double netsK = 0;         ///< nets, thousands
    double cellAreaMm2 = 0;   ///< total SC area
    double cellDensity = 0;   ///< pre-filler density, 0..1
    double wireLengthM = 0;   ///< total wire length, meters
    double chipAreaMm2 = 0;   ///< floorplanned area
    double dynamicPowerMw = 0;///< at 1.1 V, 2.0 GHz
};

/** Technology/seed constants (paper-reported values, TSMC 40nm LP). */
struct SynthesisSeeds {
    // Normal 2-stage speculative router.
    double routerGatesK = 19.9;
    double routerCellsK = 3.6;
    double routerNetsK = 10.0;
    double routerAreaMm2 = 0.13;
    double routerDensity = 0.6190;
    double routerWireM = 1.28;
    double routerPowerMw = 84.2;

    // Packet generator at the default 16-barrier/16-EI table.
    double pktgenGatesK = 2.5;
    double pktgenPowerMw = 8.4;
    std::size_t pktgenSeedEntries = 16;

    // OpenRISC 1200 core (adjusted per Table 1).
    double coreGatesK = 152.5;
    double coreCellsK = 23.2;
    double coreNetsK = 60.9;
    double coreAreaMm2 = 0.97;
    double coreDensity = 0.4826;
    double coreWireM = 8.81;
    double corePowerMw = 623.5;
    double coreChipAreaMm2 = 2.03;

    // Shared tile geometry.
    double tileChipAreaMm2 = 0.21; ///< router floorplan tile (460x460 um)
    int floorplanLayers = 28;
    int metalLayers = 10;
};

/** Analytical synthesis model of routers, big routers and tiles. */
class SynthesisModel
{
  public:
    explicit SynthesisModel(SynthesisSeeds seed_values = SynthesisSeeds{});

    /** The baseline router (paper "Router" column). */
    ModuleSynthesis normalRouter() const;

    /**
     * The packet generator alone, for a given locking-barrier-table
     * size (barriers == EI entries, the paper's coupled knob).
     */
    ModuleSynthesis packetGenerator(std::size_t table_entries) const;

    /** The big router = normal router + packet generator. */
    ModuleSynthesis bigRouter(std::size_t table_entries) const;

    /** The core (paper "Core" column). */
    ModuleSynthesis core() const;

    /** Dynamic power of one tile: core + (big or normal) router. */
    double tilePowerMw(bool big, std::size_t table_entries) const;

    /**
     * Full-chip dynamic power for a deployment of big routers.
     * @param num_nodes       tiles on the chip
     * @param num_big_routers tiles upgraded to big routers
     */
    double chipPowerMw(int num_nodes, int num_big_routers,
                       std::size_t table_entries) const;

    /** Fig. 7a-style text table. */
    std::string renderTable(std::size_t table_entries = 16) const;

    const SynthesisSeeds &seeds() const { return seed; }

  private:
    SynthesisSeeds seed;
};

} // namespace inpg

#endif // INPG_INPG_SYNTHESIS_MODEL_HH
