#include "inpg/big_router.hh"

#include "common/logging.hh"
#include "common/trace.hh"

namespace inpg {

BigRouter::BigRouter(NodeId node_id, const NocConfig &noc_cfg,
                     const RoutingAlgorithm *routing,
                     const InpgConfig &inpg_cfg, const CohConfig &coh_cfg)
    : Router(node_id, noc_cfg, routing),
      brNode(node_id * noc_cfg.concentration),
      gen(brNode, inpg_cfg, coh_cfg), cohCfg(coh_cfg),
      // Generated packets need ids that cannot collide with the
      // Network's allocator; tag them with the node in the top bits.
      nextGenPacketId((static_cast<PacketId>(node_id) << 40) |
                      (1ULL << 63))
{
    addGeneratorPort();
}

void
BigRouter::onHeadFlitArrived(const FlitPtr &flit, int inport, Cycle now)
{
    (void)inport;
    auto msg = std::dynamic_pointer_cast<CoherenceMsg>(
        flit->packet->payload);
    if (!msg)
        return;

    // Relay InvAcks answering our early invalidations toward the home
    // node (header rewrite before route computation).
    if (flit->packet->dst == brNode &&
        msg->kind == CohMsgKind::InvAck && msg->fromBigRouter) {
        NodeId home = gen.onInvAckArrival(msg, now);
        INPG_TRACE_LINE("br", now, "BR %d ACK-RELAY %s", nodeId(),
                        msg->toString().c_str());
        if (home != INVALID_NODE) {
            flit->packet->dst = home;
            msg->toDirectory = true;
            ++stats.counter("inv_acks_relayed");
            if (FlightRecorder *fr = flightRecorder()) {
                fr->record(FrKind::AckRelay, now, nodeId(), msg->addr,
                           static_cast<std::uint64_t>(home));
            }
        }
        return;
    }

    // Stop later GetX[lock] arrivals under an existing barrier.
    CohMsgPtr inv = gen.onGetXArrival(msg, now);
    if (inv) {
        INPG_TRACE_LINE("br", now, "BR %d STOP %s", nodeId(),
                        msg->toString().c_str());
        auto pkt = std::make_shared<Packet>(nextGenPacketId++, brNode,
                                            static_cast<NodeId>(
                                                inv->requester),
                                            vnetForKind(inv->kind),
                                            /*num_flits=*/1, inv);
        injectGenerated(pkt, now);
        ++stats.counter("early_invs_injected");
        if (FlightRecorder *fr = flightRecorder()) {
            fr->record(FrKind::BarrierStop, now, nodeId(), msg->addr,
                       static_cast<std::uint64_t>(msg->requester));
        }
    }
}

void
BigRouter::onHeadFlitGranted(const FlitPtr &flit, int inport,
                             Direction outport, Cycle now)
{
    (void)inport;
    (void)outport;
    auto msg = std::dynamic_pointer_cast<CoherenceMsg>(
        flit->packet->payload);
    if (!msg)
        return;
    gen.onGetXTransfer(msg, now);
}

void
BigRouter::generatorPhase(Cycle now)
{
    gen.maintain(now);
}

JsonValue
BigRouter::debugJson(Cycle now) const
{
    JsonValue out = Router::debugJson(now);
    out["barriers"] = gen.barrierTable().debugJson(now);
    return out;
}

RouterFactory
makeInpgRouterFactory(const InpgConfig &inpg_cfg, const CohConfig &coh_cfg)
{
    return [inpg_cfg, coh_cfg](NodeId id, const NocConfig &noc_cfg,
                               const RoutingAlgorithm *routing)
               -> std::unique_ptr<Router> {
        CohConfig coh = coh_cfg;
        coh.numNodes = noc_cfg.numNodes();
        if (isBigRouterNode(id, noc_cfg.meshWidth, noc_cfg.meshHeight,
                            inpg_cfg.numBigRouters)) {
            return std::make_unique<BigRouter>(id, noc_cfg, routing,
                                               inpg_cfg, coh);
        }
        return std::make_unique<Router>(id, noc_cfg, routing);
    };
}

} // namespace inpg
