#include "inpg/packet_generator.hh"

#include "coh/protocol_tables.hh"
#include "common/logging.hh"
#include "noc/topology.hh"

namespace inpg {

/**
 * Even big-router placement, delegated to the topology layer's
 * evenPlacementSite (count = n/2 yields the interleaved checkerboard
 * of paper Figure 3; other counts spread marks evenly with a
 * Bresenham-style accumulator). `node` is a router-grid site.
 */
bool
isBigRouterNode(NodeId node, int mesh_w, int mesh_h, int count)
{
    return evenPlacementSite(node, mesh_w, mesh_h, count);
}

PacketGenerator::PacketGenerator(NodeId node_id, const InpgConfig &config,
                                 const CohConfig &coh_config)
    : node(node_id), cfg(config), cohCfg(coh_config),
      table(config.barrierEntries, config.eiEntries, config.barrierTtl)
{
    stats = StatGroup(format("pktgen%d", node_id));
}

BrState
PacketGenerator::barrierState(Addr addr) const
{
    if (!table.contains(addr))
        return BrState::NoBarrier;
    return table.numEis(addr) == 0 ? BrState::BarrierIdle
                                   : BrState::BarrierArmed;
}

CohMsgPtr
PacketGenerator::onGetXArrival(const CohMsgPtr &msg, Cycle now)
{
    if (msg->kind != CohMsgKind::GetX || !msg->isLock ||
        !msg->isAtomicOp || msg->earlyInvalidated)
        return nullptr;

    // Expire first, so the classification never reports a barrier
    // whose TTL already lapsed.
    table.expire(now);
    const ProtoTransition &tr = bigRouterProtocolTable().require(
        static_cast<int>(barrierState(msg->addr)),
        static_cast<int>(BrEvent::LockGetXArrival));

    switch (static_cast<BrAction>(tr.action)) {
      case BrAction::PassThrough:
        return nullptr;
      case BrAction::StopAndInvalidate:
        break;
      default:
        panic("big router %d: table action %d has no dispatch for %s",
              node, tr.action, msg->toString().c_str());
    }

    if (!table.addEi(msg->addr, msg->requester, now))
        return nullptr; // EI list full or duplicate: pass through

    // Stop the request: it continues to the home node as an
    // early-invalidated request (the paper's GetX -> FwdGetX
    // conversion) while we invalidate the failing core right here.
    msg->earlyInvalidated = true;
    msg->fromBigRouter = true;
    ++stats.counter("getx_stopped");

    auto inv = std::make_shared<CoherenceMsg>();
    inv->kind = CohMsgKind::Inv;
    inv->addr = msg->addr;
    inv->requester = msg->requester;
    inv->collector = node;
    inv->isLock = true;
    inv->fromBigRouter = true;
    inv->invGeneratedAt = now;
    ++stats.counter("early_invs_generated");
    return inv;
}

void
PacketGenerator::onGetXTransfer(const CohMsgPtr &msg, Cycle now)
{
    if (msg->kind != CohMsgKind::GetX || !msg->isLock ||
        !msg->isAtomicOp)
        return;

    table.expire(now);
    const ProtoTransition &tr = bigRouterProtocolTable().require(
        static_cast<int>(barrierState(msg->addr)),
        static_cast<int>(BrEvent::LockGetXTransfer));

    switch (static_cast<BrAction>(tr.action)) {
      case BrAction::InstallBarrier:
      case BrAction::RefreshBarrier:
        // createBarrier refreshes in place when the barrier already
        // exists; it only fails when the table is full (requests then
        // pass through unshielded).
        if (table.createBarrier(msg->addr, now))
            ++stats.counter("barrier_refreshed");
        return;
      default:
        panic("big router %d: table action %d has no dispatch for %s",
              node, tr.action, msg->toString().c_str());
    }
}

NodeId
PacketGenerator::onInvAckArrival(const CohMsgPtr &msg, Cycle now)
{
    if (msg->kind != CohMsgKind::InvAck || !msg->fromBigRouter)
        return INVALID_NODE;

    // No expiry here: a barrier whose TTL lapsed this very cycle must
    // still absorb the returning ack exactly as before table dispatch.
    const ProtoTransition &tr = bigRouterProtocolTable().require(
        static_cast<int>(barrierState(msg->addr)),
        static_cast<int>(BrEvent::EarlyInvAck));

    switch (static_cast<BrAction>(tr.action)) {
      case BrAction::RelayAndCloseEi:
        // The barrier is armed, but the ack may still be stale when
        // the EI entry belongs to a different core.
        if (table.completeEi(msg->addr, msg->requester, now))
            ++stats.counter("acks_relayed");
        else
            ++stats.counter("acks_relayed_stale");
        break;
      case BrAction::RelayStale:
        // Barrier gone (or never armed for this core): relay onward so
        // the home still trims its sharer list, but close nothing.
        ++stats.counter("acks_relayed_stale");
        break;
      default:
        panic("big router %d: table action %d has no dispatch for %s",
              node, tr.action, msg->toString().c_str());
    }

    // The early Inv-Ack round trip closes here, at the generating
    // router; the onward relay to the home only trims the sharer list.
    if (cohStats)
        cohStats->recordInvAckRtt(msg->requester,
                                  now - msg->invGeneratedAt, true);
    return cohCfg.homeOf(msg->addr);
}

} // namespace inpg
