#include "inpg/packet_generator.hh"

#include "common/logging.hh"

namespace inpg {

/**
 * Even big-router placement: count = n/2 yields the interleaved
 * checkerboard of paper Figure 3; other counts spread marks evenly with
 * a Bresenham-style accumulator.
 */
bool
isBigRouterNode(NodeId node, int mesh_w, int mesh_h, int count)
{
    const int n = mesh_w * mesh_h;
    if (count <= 0)
        return false;
    if (count >= n)
        return true;
    // Checkerboard interleave for the half-populated case; otherwise
    // evenly strided marks.
    if (count * 2 == n) {
        int x = node % mesh_w;
        int y = node / mesh_w;
        return (x + y) % 2 == 1;
    }
    // node k is big iff floor((k+1)*count/n) > floor(k*count/n)
    long long prev = static_cast<long long>(node) * count / n;
    long long cur = (static_cast<long long>(node) + 1) * count / n;
    return cur > prev;
}

PacketGenerator::PacketGenerator(NodeId node_id, const InpgConfig &config,
                                 const CohConfig &coh_config)
    : node(node_id), cfg(config), cohCfg(coh_config),
      table(config.barrierEntries, config.eiEntries, config.barrierTtl)
{
    stats = StatGroup(format("pktgen%d", node_id));
}

CohMsgPtr
PacketGenerator::onGetXArrival(const CohMsgPtr &msg, Cycle now)
{
    if (msg->kind != CohMsgKind::GetX || !msg->isLock ||
        !msg->isAtomicOp || msg->earlyInvalidated)
        return nullptr;
    if (!table.hasBarrier(msg->addr, now))
        return nullptr;
    if (!table.addEi(msg->addr, msg->requester, now))
        return nullptr; // EI list full or duplicate: pass through

    // Stop the request: it continues to the home node as an
    // early-invalidated request (the paper's GetX -> FwdGetX
    // conversion) while we invalidate the failing core right here.
    msg->earlyInvalidated = true;
    msg->fromBigRouter = true;
    ++stats.counter("getx_stopped");

    auto inv = std::make_shared<CoherenceMsg>();
    inv->kind = CohMsgKind::Inv;
    inv->addr = msg->addr;
    inv->requester = msg->requester;
    inv->collector = node;
    inv->isLock = true;
    inv->fromBigRouter = true;
    inv->invGeneratedAt = now;
    ++stats.counter("early_invs_generated");
    return inv;
}

void
PacketGenerator::onGetXTransfer(const CohMsgPtr &msg, Cycle now)
{
    if (msg->kind != CohMsgKind::GetX || !msg->isLock ||
        !msg->isAtomicOp)
        return;
    if (table.createBarrier(msg->addr, now))
        ++stats.counter("barrier_refreshed");
}

NodeId
PacketGenerator::onInvAckArrival(const CohMsgPtr &msg, Cycle now)
{
    if (msg->kind != CohMsgKind::InvAck || !msg->fromBigRouter)
        return INVALID_NODE;
    if (table.completeEi(msg->addr, msg->requester, now))
        ++stats.counter("acks_relayed");
    else
        ++stats.counter("acks_relayed_stale");
    // The early Inv-Ack round trip closes here, at the generating
    // router; the onward relay to the home only trims the sharer list.
    if (cohStats)
        cohStats->recordInvAckRtt(msg->requester,
                                  now - msg->invGeneratedAt, true);
    return cohCfg.homeOf(msg->addr);
}

} // namespace inpg
