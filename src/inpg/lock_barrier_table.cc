#include "inpg/lock_barrier_table.hh"

#include <algorithm>

#include "coh/protocol_tables.hh"
#include "common/logging.hh"

namespace inpg {

LockBarrierTable::LockBarrierTable(std::size_t max_barriers,
                                   std::size_t max_eis, Cycle ttl_cycles)
    : barrierCapacity(max_barriers), eiCapacity(max_eis), ttl(ttl_cycles)
{
    INPG_ASSERT(max_barriers >= 1 && max_eis >= 1,
                "locking barrier table needs capacity");
    stats = StatGroup("barrier_table");
}

LockBarrierTable::Barrier *
LockBarrierTable::find(Addr addr)
{
    const std::size_t *slot = slotIndex.find(addr);
    return slot ? &barriers[*slot] : nullptr;
}

void
LockBarrierTable::eraseSlot(std::size_t slot)
{
    slotIndex.erase(barriers[slot].addr);
    if (slot + 1 != barriers.size()) {
        barriers[slot] = std::move(barriers.back());
        slotIndex[barriers[slot].addr] = slot;
    }
    barriers.pop_back();
}

void
LockBarrierTable::recomputeNextExpiry()
{
    nextExpiry = CYCLE_NEVER;
    for (const auto &b : barriers)
        if (b.eis.empty())
            nextExpiry = std::min(nextExpiry, b.idleSince + ttl);
}

bool
LockBarrierTable::hasBarrier(Addr addr, Cycle now)
{
    expire(now);
    return find(addr) != nullptr;
}

bool
LockBarrierTable::createBarrier(Addr addr, Cycle now)
{
    expire(now);
    if (find(addr))
        return true;
    if (barriers.size() >= barrierCapacity) {
        ++stats.counter("barrier_table_full");
        return false;
    }
    Barrier b;
    b.addr = addr;
    b.idleSince = now;
    slotIndex[addr] = barriers.size();
    barriers.push_back(std::move(b));
    nextExpiry = std::min(nextExpiry, now + ttl);
    ++stats.counter("barriers_created");
    return true;
}

bool
LockBarrierTable::addEi(Addr addr, CoreId core, Cycle now)
{
    Barrier *b = find(addr);
    if (!b)
        return false;
    if (b->eis.size() >= eiCapacity) {
        ++stats.counter("ei_list_full");
        return false;
    }
    // One live EI per core per barrier: a core has at most one GetX in
    // flight, so a duplicate means a stale entry -- refuse.
    for (const auto &e : b->eis)
        if (e.core == core)
            return false;
    EiEntry e;
    e.core = core;
    e.phase = EiPhase::GetXFwd; // Inv generated + GetX forwarded at ST
    e.openedAt = now;
    b->eis.push_back(e);
    ++stats.counter("eis_opened");
    return true;
}

bool
LockBarrierTable::completeEi(Addr addr, CoreId core, Cycle now)
{
    Barrier *b = find(addr);
    if (!b)
        return false;
    auto it = std::find_if(b->eis.begin(), b->eis.end(),
                           [core](const EiEntry &e) {
                               return e.core == core;
                           });
    if (it == b->eis.end())
        return false;
    stats.sample("ei_lifetime").add(static_cast<double>(now - it->openedAt));
    b->eis.erase(it);
    ++stats.counter("eis_completed");
    if (b->eis.empty()) {
        b->idleSince = now; // TTL countdown restarts from full value
        nextExpiry = std::min(nextExpiry, now + ttl);
    }
    return true;
}

void
LockBarrierTable::expire(Cycle now)
{
    if (now < nextExpiry)
        return; // no idle barrier can have timed out yet
    for (std::size_t i = 0; i < barriers.size();) {
        if (barriers[i].eis.empty() &&
            now >= barriers[i].idleSince + ttl) {
            // The declarative FSM only permits TTL expiry from the
            // idle state (the countdown pauses while EIs are open);
            // require() panics if the table ever disagrees.
            const ProtoTransition &tr =
                bigRouterProtocolTable().require(
                    static_cast<int>(BrState::BarrierIdle),
                    static_cast<int>(BrEvent::TtlExpire));
            INPG_ASSERT(static_cast<BrAction>(tr.action) ==
                            BrAction::ExpireBarrier,
                        "barrier FSM: (BarrierIdle, TtlExpire) must "
                        "map to ExpireBarrier");
            ++stats.counter("barriers_expired");
            eraseSlot(i); // swap-erase: re-examine the moved-in slot
        } else {
            ++i;
        }
    }
    recomputeNextExpiry();
}

std::size_t
LockBarrierTable::numEis(Addr addr) const
{
    const std::size_t *slot = slotIndex.find(addr);
    return slot ? barriers[*slot].eis.size() : 0;
}

const char *
eiPhaseName(EiPhase p)
{
    switch (p) {
      case EiPhase::InvGenerated:
        return "inv-generated";
      case EiPhase::GetXFwd:
        return "getx-fwd";
      case EiPhase::InvAckRecv:
        return "invack-recv";
      case EiPhase::AckFwd:
        return "ack-fwd";
    }
    return "?";
}

JsonValue
LockBarrierTable::debugJson(Cycle now) const
{
    JsonValue out = JsonValue::array();
    for (const Barrier &b : barriers) {
        JsonValue bj = JsonValue::object();
        bj["addr"] = static_cast<std::uint64_t>(b.addr);
        if (b.eis.empty()) {
            bj["idle_for"] =
                static_cast<std::uint64_t>(now - b.idleSince);
        }
        JsonValue eis = JsonValue::array();
        for (const EiEntry &ei : b.eis) {
            JsonValue ej = JsonValue::object();
            ej["core"] = static_cast<long long>(ei.core);
            ej["phase"] = eiPhaseName(ei.phase);
            ej["age"] = static_cast<std::uint64_t>(now - ei.openedAt);
            eis.push(std::move(ej));
        }
        bj["eis"] = std::move(eis);
        out.push(std::move(bj));
    }
    return out;
}

} // namespace inpg
