/**
 * @file
 * The packet generator of a big router: protocol-side decisions of
 * iNPG, separated from the router pipeline for unit testing.
 */

#ifndef INPG_INPG_PACKET_GENERATOR_HH
#define INPG_INPG_PACKET_GENERATOR_HH

#include "coh/coh_config.hh"
#include "coh/coh_stats.hh"
#include "coh/coherence_msg.hh"
#include "coh/protocol_tables.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "inpg/inpg_config.hh"
#include "inpg/lock_barrier_table.hh"

namespace inpg {

/**
 * Implements the barrier/EI protocol of paper Section 4.1:
 * - the first transferred GetX[lock] installs a barrier;
 * - later GetX[lock] arrivals under a barrier are stopped: converted to
 *   early-invalidated requests while the generator emits an early Inv
 *   to the failing core;
 * - returning InvAcks are relayed to the home node and close their EI
 *   entry.
 */
class PacketGenerator
{
  public:
    PacketGenerator(NodeId node_id, const InpgConfig &cfg,
                    const CohConfig &coh_cfg);

    /**
     * Evaluate an arriving GetX[lock] head flit. When the request is
     * stopped, `msg` is mutated in place (earlyInvalidated) and the
     * early Inv message to inject is returned; nullptr otherwise.
     */
    CohMsgPtr onGetXArrival(const CohMsgPtr &msg, Cycle now);

    /** Observe a GetX[lock] transfer (ST): installs the barrier. */
    void onGetXTransfer(const CohMsgPtr &msg, Cycle now);

    /**
     * Evaluate an InvAck addressed to this router. Closes the EI entry
     * and redirects the ack to the home node.
     * @return the home node to forward to, or INVALID_NODE to ignore.
     */
    NodeId onInvAckArrival(const CohMsgPtr &msg, Cycle now);

    /** Per-cycle maintenance (TTL expiry). */
    void maintain(Cycle now) { table.expire(now); }

    /** Attach the shared coherence statistics sink (RTT samples). */
    void setCohStats(CohStats *stats_sink) { cohStats = stats_sink; }

    const LockBarrierTable &barrierTable() const { return table; }

    StatGroup stats;

  private:
    /** Classify the barrier FSM state for a lock address (no expiry). */
    BrState barrierState(Addr addr) const;

    NodeId node;
    InpgConfig cfg;
    CohConfig cohCfg;
    CohStats *cohStats = nullptr;
    LockBarrierTable table;
};

} // namespace inpg

#endif // INPG_INPG_PACKET_GENERATOR_HH
