/**
 * @file
 * Locking barrier table of a big router (paper Section 4.1, Figure 6).
 *
 * Each barrier tracks one lock address. Under a barrier, one early
 * invalidation (EI) entry exists per stopped GetX and walks four
 * phases: Inv generated, GetX forwarded, InvAck received, InvAck
 * forwarded. A barrier's TTL (default 128 cycles) counts down only
 * while the barrier has no EI entries and resets whenever one is
 * created; at zero the barrier is reclaimed.
 */

#ifndef INPG_INPG_LOCK_BARRIER_TABLE_HH
#define INPG_INPG_LOCK_BARRIER_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/flat_hash_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "telemetry/json.hh"

namespace inpg {

/** Lifecycle phase of an early-invalidation entry. */
enum class EiPhase {
    InvGenerated, ///< early Inv sent to the failing core
    GetXFwd,      ///< the stopped GetX was forwarded to the home node
    InvAckRecv,   ///< InvAck for the early Inv returned to this router
    AckFwd,       ///< InvAck relayed to the home node (entry frees)
};

/** Name of an EiPhase ("inv-generated", ...). */
const char *eiPhaseName(EiPhase p);

/** The locking barrier table of one big router. */
class LockBarrierTable
{
  public:
    /**
     * @param max_barriers lock barrier entries (paper default 16)
     * @param max_eis      EI entries per barrier (paper default 16)
     * @param ttl          barrier time-to-live in cycles (default 128)
     */
    LockBarrierTable(std::size_t max_barriers, std::size_t max_eis,
                     Cycle ttl);

    /** True if a (live) barrier exists for the lock address. */
    bool hasBarrier(Addr addr, Cycle now);

    /**
     * Install a barrier when the first GetX for the lock traverses.
     * @return false when the table is full (requests pass through).
     */
    bool createBarrier(Addr addr, Cycle now);

    /**
     * Open an EI entry for a stopped GetX (phases InvGenerated+GetXFwd
     * happen in the same ST cycle in this design).
     * @return false when the barrier is missing or its EI list is full.
     */
    bool addEi(Addr addr, CoreId core, Cycle now);

    /**
     * Advance the EI entry of (addr, core) to InvAckRecv + AckFwd and
     * free it; restarts the barrier's TTL countdown when it was the
     * last live entry.
     * @return false when no such EI entry exists (stale ack).
     */
    bool completeEi(Addr addr, CoreId core, Cycle now);

    /** Reclaim barriers whose TTL elapsed. Call once per cycle. */
    void expire(Cycle now);

    std::size_t numBarriers() const { return barriers.size(); }

    /**
     * True if a barrier entry exists for the lock address, without
     * running TTL expiry (const view; `hasBarrier` expires first).
     */
    bool contains(Addr addr) const { return slotIndex.find(addr) != nullptr; }

    /** Live EI entries under a barrier (0 when absent). */
    std::size_t numEis(Addr addr) const;

    std::size_t maxBarriers() const { return barrierCapacity; }
    std::size_t maxEis() const { return eiCapacity; }

    /**
     * Table contents for the hang report: every barrier with its EI
     * entries (core, phase, age), in slot order (deterministic).
     */
    JsonValue debugJson(Cycle now) const;

    StatGroup stats;

  private:
    struct EiEntry {
        CoreId core = INVALID_CORE;
        EiPhase phase = EiPhase::InvGenerated;
        Cycle openedAt = 0;
    };

    struct Barrier {
        Addr addr = INVALID_ADDR;
        std::vector<EiEntry> eis;
        /** Cycle the TTL countdown (re)started; live while eis busy. */
        Cycle idleSince = 0;
    };

    Barrier *find(Addr addr);
    void eraseSlot(std::size_t slot);
    void recomputeNextExpiry();

    std::size_t barrierCapacity;
    std::size_t eiCapacity;
    Cycle ttl;
    std::vector<Barrier> barriers;

    /** Lock address -> slot in `barriers` (maintained on swap-erase). */
    FlatHashMap<Addr, std::size_t> slotIndex;

    /**
     * Lower bound on the earliest cycle any idle barrier can expire;
     * expire() returns immediately before it. May be stale-low (a
     * barrier that regained EI entries keeps its old candidate), in
     * which case the full scan removes nothing and recomputes it.
     */
    Cycle nextExpiry = CYCLE_NEVER;
};

} // namespace inpg

#endif // INPG_INPG_LOCK_BARRIER_TABLE_HH
