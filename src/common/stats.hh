/**
 * @file
 * Lightweight statistics primitives: named scalar counters and sample
 * averages, grouped per component, dumpable as text.
 *
 * A much-reduced analogue of gem5's Stats package: enough to account for
 * every event the paper's evaluation section reports.
 */

#ifndef INPG_COMMON_STATS_HH
#define INPG_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>

namespace inpg {

/** Running mean/min/max over double samples. */
class SampleStat
{
  public:
    void
    add(double v)
    {
        ++n;
        total += v;
        if (n == 1 || v < lo)
            lo = v;
        if (n == 1 || v > hi)
            hi = v;
    }

    void
    reset()
    {
        n = 0;
        total = 0;
        lo = 0;
        hi = 0;
    }

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? total / static_cast<double>(n) : 0; }
    double min() const { return lo; }
    double max() const { return hi; }

  private:
    std::uint64_t n = 0;
    double total = 0;
    double lo = 0;
    double hi = 0;
};

/**
 * A named group of counters and sample statistics.
 *
 * Components own a StatGroup and bump counters by name; the harness
 * aggregates groups into report tables. Name lookup is map-based --
 * hot paths should cache references via counter()/sample().
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name = "")
        : name(std::move(group_name))
    {}

    /** Reference to (and lazy creation of) a named counter. */
    std::uint64_t &counter(const std::string &key) { return counters[key]; }

    /** Counter value; 0 if never touched. */
    std::uint64_t value(const std::string &key) const;

    /** Reference to (and lazy creation of) a named sample stat. */
    SampleStat &sample(const std::string &key) { return samples[key]; }

    /** Const access; returns empty stat if never touched. */
    const SampleStat &sampleValue(const std::string &key) const;

    /** Zero every counter and sample. */
    void reset();

    /** Group name used as a dump prefix. */
    const std::string &groupName() const { return name; }

    /** Multi-line "group.key = value" dump. */
    std::string dump() const;

    const std::map<std::string, std::uint64_t> &allCounters() const
    {
        return counters;
    }

    const std::map<std::string, SampleStat> &allSamples() const
    {
        return samples;
    }

  private:
    std::string name;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, SampleStat> samples;
};

} // namespace inpg

#endif // INPG_COMMON_STATS_HH
