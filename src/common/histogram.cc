#include "common/histogram.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace inpg {

Histogram::Histogram(std::uint64_t bin_width, std::size_t num_bins)
    : width(bin_width), bins(num_bins, 0)
{
    INPG_ASSERT(bin_width >= 1, "histogram bin width must be >= 1");
    INPG_ASSERT(num_bins >= 1, "histogram needs at least one bin");
}

void
Histogram::add(std::uint64_t sample)
{
    std::size_t idx = static_cast<std::size_t>(sample / width);
    if (idx < bins.size())
        ++bins[idx];
    else
        ++overflow;
    ++total;
    sampleSum += sample;
    maxSample = std::max(maxSample, sample);
    minSample = total == 1 ? sample : std::min(minSample, sample);
}

void
Histogram::reset()
{
    std::fill(bins.begin(), bins.end(), 0);
    overflow = 0;
    total = 0;
    sampleSum = 0;
    maxSample = 0;
    minSample = 0;
}

double
Histogram::mean() const
{
    return total ? static_cast<double>(sampleSum) /
                       static_cast<double>(total)
                 : 0.0;
}

std::uint64_t
Histogram::binCount(std::size_t i) const
{
    INPG_ASSERT(i < bins.size(), "bin index %zu out of range", i);
    return bins[i];
}

std::uint64_t
Histogram::percentile(double fraction) const
{
    if (total == 0)
        return 0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    const std::uint64_t needed = static_cast<std::uint64_t>(
        fraction * static_cast<double>(total));
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        running += bins[i];
        if (running >= needed && bins[i] > 0)
            return binHi(i);
        if (running >= needed && running == total)
            return binHi(i);
        if (running >= needed)
            return binHi(i);
    }
    return maxSample;
}

std::string
Histogram::render(int bar_width) const
{
    std::ostringstream os;
    std::uint64_t peak = overflow;
    for (auto c : bins)
        peak = std::max(peak, c);
    if (peak == 0)
        peak = 1;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        if (bins[i] == 0)
            continue;
        int len = static_cast<int>(
            (bins[i] * static_cast<std::uint64_t>(bar_width)) / peak);
        os << "[" << binLo(i) << "-" << binHi(i) << "] "
           << std::string(static_cast<std::size_t>(std::max(len, 1)), '#')
           << " " << bins[i] << "\n";
    }
    if (overflow) {
        int len = static_cast<int>(
            (overflow * static_cast<std::uint64_t>(bar_width)) / peak);
        os << "[>" << binHi(bins.size() - 1) << "] "
           << std::string(static_cast<std::size_t>(std::max(len, 1)), '#')
           << " " << overflow << "\n";
    }
    return os.str();
}

} // namespace inpg
