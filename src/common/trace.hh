/**
 * @file
 * Lightweight per-channel execution tracing (gem5's DPRINTF in spirit).
 *
 * Channels are named ("l1", "dir", "br", "noc", ...). Tracing is off
 * unless enabled programmatically (Trace::enable) or via the
 * INPG_TRACE environment variable, which holds a comma-separated
 * channel list or "all":
 *
 *     INPG_TRACE=dir,br ./build/examples/quickstart
 *
 * Emission goes to stderr by default; tests can capture it by
 * installing a sink. The INPG_TRACE_LINE macro stays cheap when the
 * channel is disabled (single branch, no formatting).
 *
 * Thread safety: emission and all mutation are serialized process-wide
 * (the parallel sweep runner traces from several workers at once), so
 * lines never tear or interleave mid-line. Sinks are invoked under the
 * internal lock and must not call back into Trace.
 */

#ifndef INPG_COMMON_TRACE_HH
#define INPG_COMMON_TRACE_HH

#include <functional>
#include <string>

#include "common/types.hh"

namespace inpg {

/** Global trace facility (process-wide, like the log level). */
class Trace
{
  public:
    /** Sink receiving complete trace lines (without newline). */
    using Sink = std::function<void(const std::string &line)>;

    /** Enable a channel ("all" enables everything). */
    static void enable(const std::string &channel);

    /** Disable a channel ("all" clears everything). */
    static void disable(const std::string &channel);

    /** True when the channel (or "all") is enabled. */
    static bool enabled(const std::string &channel);

    /**
     * Install a sink; nullptr restores the default (stderr).
     * Returns the previous sink.
     */
    static Sink setSink(Sink sink);

    /** Emit one line: "[cycle] channel: message". */
    static void emit(const std::string &channel, Cycle now,
                     const std::string &message);

    /**
     * Read INPG_TRACE from the environment (called lazily on first
     * use; exposed for tests).
     */
    static void initFromEnvironment();
};

} // namespace inpg

/** Trace a printf-formatted line if `channel` is enabled. */
#define INPG_TRACE_LINE(channel, now, ...)                                  \
    do {                                                                    \
        if (::inpg::Trace::enabled(channel))                                \
            ::inpg::Trace::emit(channel, now,                               \
                                ::inpg::format(__VA_ARGS__));               \
    } while (0)

#endif // INPG_COMMON_TRACE_HH
