/**
 * @file
 * Fundamental scalar types shared by every module of the iNPG simulator.
 */

#ifndef INPG_COMMON_TYPES_HH
#define INPG_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace inpg {

/** Simulation time expressed in core clock cycles. */
using Cycle = std::uint64_t;

/** A byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Identifier of a mesh node (router / NI / tile). Row-major order. */
using NodeId = int;

/** Identifier of a core (one core per tile in the target architecture). */
using CoreId = int;

/** Identifier of a thread (one thread per core in the paper's setup). */
using ThreadId = int;

/** Virtual-network index (message class). */
using VnetId = int;

/** Virtual-channel index within an input/output port. */
using VcId = int;

/** Sentinel for "no node". */
inline constexpr NodeId INVALID_NODE = -1;

/** Sentinel for "no core". */
inline constexpr CoreId INVALID_CORE = -1;

/** Sentinel for "no VC". */
inline constexpr VcId INVALID_VC = -1;

/** Sentinel address (never allocated by the simulator). */
inline constexpr Addr INVALID_ADDR = std::numeric_limits<Addr>::max();

/** Largest representable cycle; used as "never". */
inline constexpr Cycle CYCLE_NEVER = std::numeric_limits<Cycle>::max();

} // namespace inpg

#endif // INPG_COMMON_TYPES_HH
