/**
 * @file
 * Small string helpers used by configuration parsing and table printing.
 */

#ifndef INPG_COMMON_STRUTIL_HH
#define INPG_COMMON_STRUTIL_HH

#include <string>
#include <vector>

namespace inpg {

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string> split(const std::string &s, char delim);

/** Lower-case ASCII copy. */
std::string toLower(const std::string &s);

/** True if s begins with the given prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Fixed-width left-aligned cell padding (truncates if too long). */
std::string padRight(const std::string &s, std::size_t width);

/** Fixed-width right-aligned cell padding (truncates if too long). */
std::string padLeft(const std::string &s, std::size_t width);

/** Format a double with the given number of decimals. */
std::string fixed(double v, int decimals);

/** Parse a boolean from "true/false/1/0/yes/no"; throws FatalError. */
bool parseBool(const std::string &s);

/** Parse a signed 64-bit integer; throws FatalError on garbage. */
long long parseInt(const std::string &s);

/** Parse a double; throws FatalError on garbage. */
double parseDouble(const std::string &s);

} // namespace inpg

#endif // INPG_COMMON_STRUTIL_HH
