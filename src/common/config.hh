/**
 * @file
 * Flat key=value configuration store.
 *
 * Examples and benches accept "key=value" command line overrides and
 * optional config files with one "key = value" pair per line ('#' starts
 * a comment). The harness maps keys onto SystemConfig fields.
 */

#ifndef INPG_COMMON_CONFIG_HH
#define INPG_COMMON_CONFIG_HH

#include <map>
#include <string>
#include <vector>

namespace inpg {

/** String-keyed configuration with typed, defaulted getters. */
class Config
{
  public:
    Config() = default;

    /** Parse "key = value" lines from a string; later keys win. */
    void loadString(const std::string &text);

    /** Parse a config file; throws FatalError if unreadable. */
    void loadFile(const std::string &path);

    /**
     * Apply argv-style overrides. Three spellings are accepted and
     * behave identically:
     *
     *   key=value      classic assignment
     *   --key=value    GNU '=' form
     *   --key value    GNU space form (the next token is the value
     *                  unless it is itself a flag or an assignment)
     *
     * A dashed flag with no value ("--csv") sets "1", so boolean
     * switches read naturally. Dashes inside key names map to
     * underscores ("--trace-out" == "trace_out"). Tokens matching no
     * form are ignored; use the `known` overload to reject them.
     */
    void loadArgs(int argc, const char *const *argv);

    /**
     * Strict variant: every parsed key must appear in `known` and
     * every token must match one of the accepted forms; anything else
     * is fatal. Drivers pass their full key list so typos fail loudly
     * instead of silently running the default configuration.
     */
    void loadArgs(int argc, const char *const *argv,
                  const std::vector<std::string> &known);

    /** Set a single key. */
    void set(const std::string &key, const std::string &value);

    /** True if the key is present. */
    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    long long getInt(const std::string &key, long long fallback = 0) const;
    double getDouble(const std::string &key, double fallback = 0.0) const;
    bool getBool(const std::string &key, bool fallback = false) const;

    /** All keys in sorted order (for dumps). */
    std::vector<std::string> keys() const;

  private:
    void parseArgs(int argc, const char *const *argv,
                   const std::vector<std::string> *known);

    std::map<std::string, std::string> values;
};

} // namespace inpg

#endif // INPG_COMMON_CONFIG_HH
