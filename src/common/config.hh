/**
 * @file
 * Flat key=value configuration store.
 *
 * Examples and benches accept "key=value" command line overrides and
 * optional config files with one "key = value" pair per line ('#' starts
 * a comment). The harness maps keys onto SystemConfig fields.
 */

#ifndef INPG_COMMON_CONFIG_HH
#define INPG_COMMON_CONFIG_HH

#include <map>
#include <string>
#include <vector>

namespace inpg {

/** String-keyed configuration with typed, defaulted getters. */
class Config
{
  public:
    Config() = default;

    /** Parse "key = value" lines from a string; later keys win. */
    void loadString(const std::string &text);

    /** Parse a config file; throws FatalError if unreadable. */
    void loadFile(const std::string &path);

    /** Apply argv-style "key=value" overrides; ignores other tokens. */
    void loadArgs(int argc, const char *const *argv);

    /** Set a single key. */
    void set(const std::string &key, const std::string &value);

    /** True if the key is present. */
    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    long long getInt(const std::string &key, long long fallback = 0) const;
    double getDouble(const std::string &key, double fallback = 0.0) const;
    bool getBool(const std::string &key, bool fallback = false) const;

    /** All keys in sorted order (for dumps). */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> values;
};

} // namespace inpg

#endif // INPG_COMMON_CONFIG_HH
