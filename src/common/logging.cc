#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace inpg {

namespace {

LogLevel globalLevel = LogLevel::Warn;

void (*panicHook)() = nullptr;

void
emit(const char *tag, const char *fmt, std::va_list ap)
{
    std::string body = vformat(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, body.c_str());
}

} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string body = vformat(fmt, ap);
    va_end(ap);
    if (globalLevel >= LogLevel::Fatal)
        std::fprintf(stderr, "fatal: %s\n", body.c_str());
    throw FatalError(body);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string body = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", body.c_str());
    if (panicHook)
        panicHook();
    std::abort();
}

void
setPanicHook(void (*hook)())
{
    panicHook = hook;
}

void
warn(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Inform)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Debug)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    emit("debug", fmt, ap);
    va_end(ap);
}

} // namespace inpg
