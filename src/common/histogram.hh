/**
 * @file
 * Fixed-bin histogram used for coherence round-trip delay distributions
 * (paper Figure 10b/10d) and other latency statistics.
 */

#ifndef INPG_COMMON_HISTOGRAM_HH
#define INPG_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace inpg {

/**
 * Histogram over non-negative integer samples with uniform bin width.
 * Samples beyond the last bin are accumulated in an overflow bucket.
 */
class Histogram
{
  public:
    /**
     * @param bin_width width of each bin (>= 1)
     * @param num_bins  number of regular bins (>= 1)
     */
    Histogram(std::uint64_t bin_width, std::size_t num_bins);

    /** Record one sample. */
    void add(std::uint64_t sample);

    /** Remove all samples. */
    void reset();

    /** Total number of samples recorded. */
    std::uint64_t count() const { return total; }

    /** Sum of all samples. */
    std::uint64_t sum() const { return sampleSum; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Largest sample seen (0 when empty). */
    std::uint64_t max() const { return maxSample; }

    /** Smallest sample seen (0 when empty). */
    std::uint64_t min() const { return total ? minSample : 0; }

    /** Number of regular bins. */
    std::size_t numBins() const { return bins.size(); }

    /** Count in regular bin i. */
    std::uint64_t binCount(std::size_t i) const;

    /** Inclusive lower edge of bin i. */
    std::uint64_t binLo(std::size_t i) const { return i * width; }

    /** Inclusive upper edge of bin i. */
    std::uint64_t binHi(std::size_t i) const { return (i + 1) * width - 1; }

    /** Count of samples beyond the last regular bin. */
    std::uint64_t overflowCount() const { return overflow; }

    /**
     * Smallest sample value v such that at least the given fraction of
     * samples are <= v, resolved at bin granularity (upper bin edge).
     * Returns 0 when empty.
     */
    std::uint64_t percentile(double fraction) const;

    /** Render as a small ASCII table, one line per non-empty bin. */
    std::string render(int bar_width = 40) const;

  private:
    std::uint64_t width;
    std::vector<std::uint64_t> bins;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
    std::uint64_t sampleSum = 0;
    std::uint64_t maxSample = 0;
    std::uint64_t minSample = 0;
};

} // namespace inpg

#endif // INPG_COMMON_HISTOGRAM_HH
