/**
 * @file
 * FlatHashMap: an open-addressing, robin-hood hash map over one
 * contiguous slot array, for the simulator's per-line lookup tables
 * (directory entries, L1 lines, barrier-table indices).
 *
 * The node-based std::map/std::unordered_map these tables used cost one
 * heap allocation per entry and a pointer chase per probe; every
 * directory access walked a red-black tree. Here a lookup is a mixed
 * hash, one index, and a short linear scan through cache-resident
 * slots.
 *
 * Properties relied on by callers:
 *  - find()/operator[] never invalidate references to *other* entries
 *    unless an insertion grows or displaces the table; callers must not
 *    hold references across inserts (the coherence controllers only
 *    hold a reference to the entry they are operating on, and only
 *    re-enter the map for that same key).
 *  - iteration order is unspecified; no simulator-visible behavior may
 *    depend on it (protocol code never iterates these maps).
 *  - erase() uses backward-shift deletion: no tombstones, lookup cost
 *    stays bounded by insertion probe lengths.
 */

#ifndef INPG_COMMON_FLAT_HASH_MAP_HH
#define INPG_COMMON_FLAT_HASH_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace inpg {

/** Default hash: a full-width 64-bit mixer (splitmix64 finalizer). */
template <typename K>
struct FlatHash {
    std::size_t
    operator()(const K &key) const
    {
        std::uint64_t x = static_cast<std::uint64_t>(key);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
    }
};

/** Open-addressing robin-hood hash map (see file comment). */
template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatHashMap
{
  public:
    FlatHashMap() = default;

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Slots allocated (0 before the first insertion). */
    std::size_t capacity() const { return slots.size(); }

    /** Times the table grew (diagnostics / tests). */
    std::uint64_t rehashes() const { return growCount; }

    V *
    find(const K &key)
    {
        return const_cast<V *>(
            static_cast<const FlatHashMap *>(this)->find(key));
    }

    const V *
    find(const K &key) const
    {
        if (count == 0)
            return nullptr;
        std::size_t i = homeIndex(key);
        std::uint8_t d = 1;
        for (;;) {
            const std::uint8_t md = meta[i];
            if (md < d)
                return nullptr; // empty, or a richer resident: absent
            if (md == d && slots[i].key == key)
                return &slots[i].value;
            i = (i + 1) & mask;
            ++d;
        }
    }

    bool contains(const K &key) const { return find(key) != nullptr; }

    /** Find-or-default-insert, as std::map::operator[]. */
    V &
    operator[](const K &key)
    {
        if (V *existing = find(key))
            return *existing;
        if (slots.empty() || (count + 1) * 4 > capacity() * 3)
            grow();
        for (;;) {
            V *slot = insertNoGrow(key);
            if (slot)
                return *slot;
            grow(); // probe chain exceeded the distance budget
        }
    }

    /** Remove a key. @return true when it was present. */
    bool
    erase(const K &key)
    {
        if (count == 0)
            return false;
        std::size_t i = homeIndex(key);
        std::uint8_t d = 1;
        for (;;) {
            const std::uint8_t md = meta[i];
            if (md < d)
                return false;
            if (md == d && slots[i].key == key)
                break;
            i = (i + 1) & mask;
            ++d;
        }
        // Backward-shift deletion: pull every displaced successor one
        // slot closer to its home; the chain ends at an empty slot or a
        // slot already at home (distance 1).
        std::size_t j = (i + 1) & mask;
        while (meta[j] > 1) {
            slots[i] = std::move(slots[j]);
            meta[i] = static_cast<std::uint8_t>(meta[j] - 1);
            i = j;
            j = (j + 1) & mask;
        }
        slots[i] = Slot{};
        meta[i] = 0;
        --count;
        return true;
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (meta[i]) {
                slots[i] = Slot{};
                meta[i] = 0;
            }
        }
        count = 0;
    }

    /** Pre-size for at least n entries without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t want = MIN_CAPACITY;
        while (n * 4 > want * 3)
            want <<= 1;
        if (want > capacity())
            rebuild(want);
    }

    /** Visit every (key, value); order is unspecified. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < slots.size(); ++i)
            if (meta[i])
                fn(slots[i].key, slots[i].value);
    }

  private:
    struct Slot {
        K key{};
        V value{};
    };

    static constexpr std::size_t MIN_CAPACITY = 16;
    /** meta is uint8 (distance+1): cap probes, grow when exceeded. */
    static constexpr std::uint8_t MAX_DISTANCE = 250;

    std::size_t
    homeIndex(const K &key) const
    {
        return Hash{}(key)&mask;
    }

    /**
     * Robin-hood insertion without growing.
     * @return address of the value for `key` (existing or default-new),
     *         or nullptr when a probe chain would exceed MAX_DISTANCE.
     */
    V *
    insertNoGrow(const K &key)
    {
        std::size_t i = homeIndex(key);
        std::uint8_t d = 1;
        // Phase 1: find the key, or claim/displace a slot for it.
        for (;;) {
            const std::uint8_t md = meta[i];
            if (md == 0) {
                slots[i].key = key;
                slots[i].value = V{};
                meta[i] = d;
                ++count;
                return &slots[i].value;
            }
            if (md == d && slots[i].key == key)
                return &slots[i].value;
            if (md < d)
                break; // richer resident: displace it
            if (d >= MAX_DISTANCE)
                return nullptr;
            i = (i + 1) & mask;
            ++d;
        }
        // Phase 2: place the new key here and carry the displaced
        // resident (and any it displaces in turn) down the chain.
        Slot carry = std::move(slots[i]);
        std::uint8_t carryDist = meta[i];
        slots[i].key = key;
        slots[i].value = V{};
        meta[i] = d;
        V *result = &slots[i].value;
        ++count;
        i = (i + 1) & mask;
        ++carryDist;
        for (;;) {
            const std::uint8_t md = meta[i];
            if (md == 0) {
                slots[i] = std::move(carry);
                meta[i] = carryDist;
                return result;
            }
            if (md < carryDist) {
                std::swap(carry, slots[i]);
                std::swap(carryDist, meta[i]);
            }
            if (carryDist >= MAX_DISTANCE) {
                // Probe budget exhausted mid-displacement (unreachable
                // in practice at 75% load with a mixed hash): rebuild
                // at double capacity with the carried slot folded back
                // in, then re-find the just-inserted key -- `result`
                // dangles across the rebuild.
                parkOverflow(std::move(carry));
                return find(key);
            }
            i = (i + 1) & mask;
            ++carryDist;
        }
    }

    /**
     * Pathological-probe escape hatch: rebuild at double capacity with
     * the carried slot included. Keeps insertNoGrow total.
     */
    void
    parkOverflow(Slot &&carry)
    {
        std::vector<Slot> oldSlots = std::move(slots);
        std::vector<std::uint8_t> oldMeta = std::move(meta);
        initTables(oldSlots.size() * 2);
        for (std::size_t i = 0; i < oldSlots.size(); ++i)
            if (oldMeta[i])
                reinsert(std::move(oldSlots[i]));
        reinsert(std::move(carry));
        ++growCount;
    }

    void
    grow()
    {
        rebuild(slots.empty() ? MIN_CAPACITY : capacity() * 2);
    }

    void
    rebuild(std::size_t new_capacity)
    {
        std::vector<Slot> oldSlots = std::move(slots);
        std::vector<std::uint8_t> oldMeta = std::move(meta);
        initTables(new_capacity);
        for (std::size_t i = 0; i < oldSlots.size(); ++i)
            if (oldMeta[i])
                reinsert(std::move(oldSlots[i]));
        ++growCount;
    }

    void
    initTables(std::size_t new_capacity)
    {
        slots.assign(new_capacity, Slot{});
        meta.assign(new_capacity, 0);
        mask = new_capacity - 1;
        count = 0;
    }

    /** Insert a full slot during a rebuild (key known absent). */
    void
    reinsert(Slot &&s)
    {
        std::size_t i = homeIndex(s.key);
        std::uint8_t d = 1;
        Slot carry = std::move(s);
        std::uint8_t carryDist = d;
        for (;;) {
            const std::uint8_t md = meta[i];
            if (md == 0) {
                slots[i] = std::move(carry);
                meta[i] = carryDist;
                ++count;
                return;
            }
            if (md < carryDist) {
                std::swap(carry, slots[i]);
                std::swap(carryDist, meta[i]);
            }
            INPG_ASSERT(carryDist < MAX_DISTANCE,
                        "flat hash rebuild exceeded probe budget");
            i = (i + 1) & mask;
            ++carryDist;
        }
    }

    std::vector<Slot> slots;
    std::vector<std::uint8_t> meta; ///< 0 = empty, else probe dist + 1
    std::size_t mask = 0;
    std::size_t count = 0;
    std::uint64_t growCount = 0;
};

} // namespace inpg

#endif // INPG_COMMON_FLAT_HASH_MAP_HH
