#include "common/config.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace inpg {

void
Config::loadString(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config line without '=': '%s'", line.c_str());
        set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
    }
}

void
Config::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '%s'", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    loadString(buffer.str());
}

namespace {

/** "--trace-out" -> "trace_out". */
std::string
normalizeKey(std::string key)
{
    key.erase(0, key.find_first_not_of('-'));
    for (char &c : key)
        if (c == '-')
            c = '_';
    return key;
}

/**
 * True when a token cannot be the value of a preceding space-form
 * flag: another dashed flag or an assignment. A lone "-5" is a value
 * (negative numbers stay usable).
 */
bool
flagLike(const std::string &token)
{
    return startsWith(token, "--") ||
           token.find('=') != std::string::npos;
}

void
checkKnown(const std::string &key, const std::string &token,
           const std::vector<std::string> *known)
{
    if (!known)
        return;
    for (const auto &k : *known)
        if (k == key)
            return;
    fatal("unknown flag '%s' (key '%s')", token.c_str(), key.c_str());
}

} // namespace

void
Config::loadArgs(int argc, const char *const *argv)
{
    parseArgs(argc, argv, nullptr);
}

void
Config::loadArgs(int argc, const char *const *argv,
                 const std::vector<std::string> &known)
{
    parseArgs(argc, argv, &known);
}

void
Config::parseArgs(int argc, const char *const *argv,
                  const std::vector<std::string> *known)
{
    for (int i = 1; i < argc; ++i) {
        const std::string token = trim(argv[i]);
        const auto eq = token.find('=');
        if (eq != std::string::npos) {
            // "key=value" or "--key=value".
            const std::string key = normalizeKey(trim(token.substr(0, eq)));
            checkKnown(key, token, known);
            set(key, trim(token.substr(eq + 1)));
            continue;
        }
        if (startsWith(token, "--")) {
            const std::string key = normalizeKey(token);
            checkKnown(key, token, known);
            // Space form pairs with the next token; a trailing or
            // flag-followed switch is boolean.
            if (i + 1 < argc && !flagLike(trim(argv[i + 1]))) {
                set(key, trim(argv[++i]));
            } else {
                set(key, "1");
            }
            continue;
        }
        // Positional tokens are tolerated in lenient mode only.
        if (known)
            fatal("unknown argument '%s'", token.c_str());
    }
}

void
Config::set(const std::string &key, const std::string &value)
{
    if (key.empty())
        fatal("empty config key");
    values[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return values.count(key) > 0;
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
}

long long
Config::getInt(const std::string &key, long long fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : parseInt(it->second);
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : parseDouble(it->second);
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : parseBool(it->second);
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values.size());
    for (const auto &kv : values)
        out.push_back(kv.first);
    return out;
}

} // namespace inpg
