#include "common/config.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace inpg {

void
Config::loadString(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config line without '=': '%s'", line.c_str());
        set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
    }
}

void
Config::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '%s'", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    loadString(buffer.str());
}

void
Config::loadArgs(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string token = argv[i];
        auto eq = token.find('=');
        if (eq == std::string::npos)
            continue;
        // Accept GNU-style spellings: "--trace-out=f" == "trace_out=f".
        std::string key = trim(token.substr(0, eq));
        key.erase(0, key.find_first_not_of('-'));
        for (char &c : key)
            if (c == '-')
                c = '_';
        set(key, trim(token.substr(eq + 1)));
    }
}

void
Config::set(const std::string &key, const std::string &value)
{
    if (key.empty())
        fatal("empty config key");
    values[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return values.count(key) > 0;
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
}

long long
Config::getInt(const std::string &key, long long fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : parseInt(it->second);
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : parseDouble(it->second);
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : parseBool(it->second);
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values.size());
    for (const auto &kv : values)
        out.push_back(kv.first);
    return out;
}

} // namespace inpg
