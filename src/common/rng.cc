#include "common/rng.hh"

#include <cmath>

namespace inpg {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t s)
{
    seed(s);
}

void
Rng::seed(std::uint64_t s)
{
    // splitmix64 expansion guarantees a non-zero state even for seed 0.
    for (auto &word : state)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    INPG_ASSERT(bound > 0, "nextBounded(0)");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    // 53 high-quality bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::nextGeometric(double mean)
{
    INPG_ASSERT(mean >= 1.0, "geometric mean %f < 1", mean);
    if (mean == 1.0)
        return 1;
    // Inverse-CDF sampling of an exponential, shifted so the minimum is 1
    // and the mean is preserved.
    double u = nextDouble();
    // Guard against log(0).
    if (u >= 1.0)
        u = std::nextafter(1.0, 0.0);
    double draw = 1.0 - (mean - 1.0) * std::log(1.0 - u);
    return static_cast<std::uint64_t>(draw);
}

} // namespace inpg
