#include "common/strutil.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace inpg {

std::string
trim(const std::string &s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s.substr(0, width);
    return s + std::string(width - s.size(), ' ');
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s.substr(0, width);
    return std::string(width - s.size(), ' ') + s;
}

std::string
fixed(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

bool
parseBool(const std::string &s)
{
    std::string t = toLower(trim(s));
    if (t == "true" || t == "1" || t == "yes" || t == "on")
        return true;
    if (t == "false" || t == "0" || t == "no" || t == "off")
        return false;
    fatal("cannot parse '%s' as bool", s.c_str());
}

long long
parseInt(const std::string &s)
{
    std::string t = trim(s);
    char *end = nullptr;
    long long v = std::strtoll(t.c_str(), &end, 0);
    if (t.empty() || end != t.c_str() + t.size())
        fatal("cannot parse '%s' as integer", s.c_str());
    return v;
}

double
parseDouble(const std::string &s)
{
    std::string t = trim(s);
    char *end = nullptr;
    double v = std::strtod(t.c_str(), &end);
    if (t.empty() || end != t.c_str() + t.size())
        fatal("cannot parse '%s' as double", s.c_str());
    return v;
}

} // namespace inpg
