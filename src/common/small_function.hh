/**
 * @file
 * SmallCallback: a move-only `void()` callable with small-buffer
 * optimization, replacing std::function on the event-schedule hot path.
 *
 * Every event the kernel schedules captures a handful of pointers (a
 * component `this`, a shared message pointer); std::function heap-
 * allocates those captures on every schedule() call. SmallCallback
 * stores any nothrow-movable callable of up to INLINE_SIZE bytes in an
 * internal buffer -- zero allocations on the steady-state path -- and
 * falls back to the heap only for oversized captures, which
 * EventQueue counts so benchmarks can assert the fallback never fires.
 */

#ifndef INPG_COMMON_SMALL_FUNCTION_HH
#define INPG_COMMON_SMALL_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace inpg {

/** Move-only SBO `void()` callable (see file comment). */
class SmallCallback
{
  public:
    /** Inline capture budget; covers every kernel callback today. */
    static constexpr std::size_t INLINE_SIZE = 48;

    SmallCallback() = default;
    SmallCallback(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    SmallCallback(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(storage)) Fn(std::forward<F>(f));
            ops = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(storage))
                Fn *(new Fn(std::forward<F>(f)));
            ops = &heapOps<Fn>;
        }
    }

    SmallCallback(SmallCallback &&other) noexcept { moveFrom(other); }

    SmallCallback &
    operator=(SmallCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallCallback(const SmallCallback &) = delete;
    SmallCallback &operator=(const SmallCallback &) = delete;

    ~SmallCallback() { reset(); }

    void
    operator()()
    {
        ops->invoke(storage);
    }

    explicit operator bool() const { return ops != nullptr; }
    bool operator==(std::nullptr_t) const { return ops == nullptr; }
    bool operator!=(std::nullptr_t) const { return ops != nullptr; }

    /** True when the callable lives in the inline buffer (no heap). */
    bool isInline() const { return ops != nullptr && !ops->onHeap; }

  private:
    struct Ops {
        void (*invoke)(void *obj);
        /** Move-construct into dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *obj);
        bool onHeap;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= INLINE_SIZE &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static Fn &
    inlineObj(void *buf)
    {
        return *std::launder(reinterpret_cast<Fn *>(buf));
    }

    template <typename Fn>
    static Fn *&
    heapPtr(void *buf)
    {
        return *std::launder(reinterpret_cast<Fn **>(buf));
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *obj) { inlineObj<Fn>(obj)(); },
        [](void *dst, void *src) {
            ::new (dst) Fn(std::move(inlineObj<Fn>(src)));
            inlineObj<Fn>(src).~Fn();
        },
        [](void *obj) { inlineObj<Fn>(obj).~Fn(); },
        false,
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *obj) { (*heapPtr<Fn>(obj))(); },
        [](void *dst, void *src) {
            ::new (dst) Fn *(heapPtr<Fn>(src));
        },
        [](void *obj) { delete heapPtr<Fn>(obj); },
        true,
    };

    void
    moveFrom(SmallCallback &other) noexcept
    {
        ops = other.ops;
        if (ops)
            ops->relocate(storage, other.storage);
        other.ops = nullptr;
    }

    void
    reset() noexcept
    {
        if (ops) {
            ops->destroy(storage);
            ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage[INLINE_SIZE];
    const Ops *ops = nullptr;
};

} // namespace inpg

#endif // INPG_COMMON_SMALL_FUNCTION_HH
