/**
 * @file
 * Minimal gem5-flavoured logging and assertion helpers.
 *
 * fatal()  -- the simulation cannot continue due to a user error
 *             (bad configuration, invalid arguments).
 * panic()  -- something happened that should never happen regardless of
 *             user input, i.e. a simulator bug.
 * warn()   -- functionality works but deserves user attention.
 * inform() -- normal status messages.
 */

#ifndef INPG_COMMON_LOGGING_HH
#define INPG_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace inpg {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Silent = 0,
    Fatal = 1,
    Warn = 2,
    Inform = 3,
    Debug = 4,
};

/** Process-wide log level; defaults to Warn. */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an error message and throw FatalError (user error). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an error message and abort (simulator bug). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Install a hook that panic() invokes (after printing its message,
 * before aborting) so diagnostic state -- e.g. the telemetry flight
 * recorder -- can be dumped on any simulator bug. One hook process-wide;
 * installing is idempotent, nullptr uninstalls. The hook must be safe
 * to call from any thread and must not itself panic.
 */
void setPanicHook(void (*hook)());

/** Print a warning if the log level admits it. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message if the log level admits it. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message if the log level admits it. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Exception thrown by fatal() so that tests can catch user errors. */
class FatalError : public std::exception
{
  public:
    explicit FatalError(std::string what) : message(std::move(what)) {}

    const char *what() const noexcept override { return message.c_str(); }

  private:
    std::string message;
};

} // namespace inpg

/**
 * Simulator-bug assertion: active in all build types, unlike assert().
 * Use for invariants whose violation indicates a broken model.
 */
#define INPG_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::inpg::panic("assertion '%s' failed at %s:%d: %s", #cond,      \
                          __FILE__, __LINE__,                               \
                          ::inpg::format(__VA_ARGS__).c_str());             \
        }                                                                   \
    } while (0)

#endif // INPG_COMMON_LOGGING_HH
