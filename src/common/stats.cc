#include "common/stats.hh"

#include <sstream>

namespace inpg {

namespace {
const SampleStat EMPTY_SAMPLE;
} // namespace

std::uint64_t
StatGroup::value(const std::string &key) const
{
    auto it = counters.find(key);
    return it == counters.end() ? 0 : it->second;
}

const SampleStat &
StatGroup::sampleValue(const std::string &key) const
{
    auto it = samples.find(key);
    return it == samples.end() ? EMPTY_SAMPLE : it->second;
}

void
StatGroup::reset()
{
    for (auto &kv : counters)
        kv.second = 0;
    for (auto &kv : samples)
        kv.second.reset();
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters)
        os << name << "." << kv.first << " = " << kv.second << "\n";
    for (const auto &kv : samples) {
        os << name << "." << kv.first << " = mean " << kv.second.mean()
           << " min " << kv.second.min() << " max " << kv.second.max()
           << " n " << kv.second.count() << "\n";
    }
    return os.str();
}

} // namespace inpg
