#include "common/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace inpg {

namespace {

struct TraceState {
    bool envChecked = false;
    bool allEnabled = false;
    std::set<std::string> channels;
    Trace::Sink sink;
};

TraceState &
state()
{
    static TraceState s;
    return s;
}

void
lazyInit()
{
    if (!state().envChecked)
        Trace::initFromEnvironment();
}

} // namespace

void
Trace::initFromEnvironment()
{
    TraceState &s = state();
    s.envChecked = true;
    const char *env = std::getenv("INPG_TRACE");
    if (!env)
        return;
    std::string spec = trim(env);
    if (spec.empty())
        return;
    // Backwards compatible: INPG_TRACE=1 means everything.
    if (spec == "1" || toLower(spec) == "all") {
        s.allEnabled = true;
        return;
    }
    for (const auto &ch : split(spec, ','))
        if (!trim(ch).empty())
            s.channels.insert(toLower(trim(ch)));
}

void
Trace::enable(const std::string &channel)
{
    lazyInit();
    if (toLower(channel) == "all")
        state().allEnabled = true;
    else
        state().channels.insert(toLower(channel));
}

void
Trace::disable(const std::string &channel)
{
    lazyInit();
    if (toLower(channel) == "all") {
        state().allEnabled = false;
        state().channels.clear();
    } else {
        state().channels.erase(toLower(channel));
    }
}

bool
Trace::enabled(const std::string &channel)
{
    lazyInit();
    const TraceState &s = state();
    return s.allEnabled || s.channels.count(toLower(channel)) > 0;
}

Trace::Sink
Trace::setSink(Sink sink)
{
    lazyInit();
    Sink previous = state().sink;
    state().sink = std::move(sink);
    return previous;
}

void
Trace::emit(const std::string &channel, Cycle now,
            const std::string &message)
{
    std::string line = format("[%llu] %s: %s",
                              static_cast<unsigned long long>(now),
                              channel.c_str(), message.c_str());
    if (state().sink)
        state().sink(line);
    else
        std::fprintf(stderr, "%s\n", line.c_str());
}

} // namespace inpg
