#include "common/trace.hh"

#include <atomic> // lint:allow(threading-outside-parallel)
#include <cstdio>
#include <cstdlib>
#include <mutex> // lint:allow(threading-outside-parallel)
#include <set>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace inpg {

namespace {

/**
 * Process-wide state. The sweep runner traces from several worker
 * threads at once, so emission and all mutation are serialized by
 * `mtx`; the hot enabled() check stays lock-free via the mirrored
 * atomics (a disabled channel costs three relaxed loads and never
 * takes the lock). Sinks run under the lock -- that is what keeps
 * concurrent lines from tearing -- so a sink must not call back into
 * Trace.
 */
struct TraceState {
    std::atomic<bool> envChecked{false}; // lint:allow(threading-outside-parallel)
    std::atomic<bool> allEnabled{false}; // lint:allow(threading-outside-parallel)
    std::atomic<std::size_t> channelCount{0}; // lint:allow(threading-outside-parallel)
    std::mutex mtx; ///< guards channels, sink, and emission // lint:allow(threading-outside-parallel)
    std::set<std::string> channels;
    Trace::Sink sink;
};

TraceState &
state()
{
    static TraceState s;
    return s;
}

void
lazyInit()
{
    if (!state().envChecked.load(std::memory_order_acquire))
        Trace::initFromEnvironment();
}

} // namespace

void
Trace::initFromEnvironment()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mtx); // lint:allow(threading-outside-parallel)
    const char *env = std::getenv("INPG_TRACE");
    if (env) {
        std::string spec = trim(env);
        // Backwards compatible: INPG_TRACE=1 means everything.
        if (spec == "1" || toLower(spec) == "all") {
            s.allEnabled.store(true, std::memory_order_relaxed);
        } else {
            for (const auto &ch : split(spec, ','))
                if (!trim(ch).empty())
                    s.channels.insert(toLower(trim(ch)));
            s.channelCount.store(s.channels.size(),
                                 std::memory_order_relaxed);
        }
    }
    s.envChecked.store(true, std::memory_order_release);
}

void
Trace::enable(const std::string &channel)
{
    lazyInit();
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mtx); // lint:allow(threading-outside-parallel)
    if (toLower(channel) == "all") {
        s.allEnabled.store(true, std::memory_order_relaxed);
    } else {
        s.channels.insert(toLower(channel));
        s.channelCount.store(s.channels.size(),
                             std::memory_order_relaxed);
    }
}

void
Trace::disable(const std::string &channel)
{
    lazyInit();
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mtx); // lint:allow(threading-outside-parallel)
    if (toLower(channel) == "all") {
        s.allEnabled.store(false, std::memory_order_relaxed);
        s.channels.clear();
    } else {
        s.channels.erase(toLower(channel));
    }
    s.channelCount.store(s.channels.size(), std::memory_order_relaxed);
}

bool
Trace::enabled(const std::string &channel)
{
    lazyInit();
    TraceState &s = state();
    if (s.allEnabled.load(std::memory_order_relaxed))
        return true;
    if (s.channelCount.load(std::memory_order_relaxed) == 0)
        return false;
    std::lock_guard<std::mutex> lock(s.mtx); // lint:allow(threading-outside-parallel)
    return s.channels.count(toLower(channel)) > 0;
}

Trace::Sink
Trace::setSink(Sink sink)
{
    lazyInit();
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mtx); // lint:allow(threading-outside-parallel)
    Sink previous = std::move(s.sink);
    s.sink = std::move(sink);
    return previous;
}

void
Trace::emit(const std::string &channel, Cycle now,
            const std::string &message)
{
    // Format outside the lock; deliver under it so concurrent workers
    // never interleave within one line (or within one sink call).
    std::string line = format("[%llu] %s: %s",
                              static_cast<unsigned long long>(now),
                              channel.c_str(), message.c_str());
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mtx); // lint:allow(threading-outside-parallel)
    if (s.sink)
        s.sink(line);
    else
        std::fprintf(stderr, "%s\n", line.c_str());
}

} // namespace inpg
