/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic element of the model (workload phase lengths, tie
 * breaking in tests) draws from an Rng seeded from the system
 * configuration, so a run is exactly reproducible from its seed.
 */

#ifndef INPG_COMMON_RNG_HH
#define INPG_COMMON_RNG_HH

#include <cstdint>

#include "common/logging.hh"

namespace inpg {

/**
 * Small, fast, seedable PRNG (xoshiro256** core, splitmix64 seeding).
 *
 * Not cryptographic; chosen for speed and reproducibility across
 * platforms (unlike std::default_random_engine, the output sequence is
 * pinned by this implementation).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Re-seed, resetting the stream. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) with rejection (bound > 0). */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive (lo <= hi). */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        INPG_ASSERT(lo <= hi, "bad range [%lld, %lld]",
                    static_cast<long long>(lo), static_cast<long long>(hi));
        return lo + static_cast<std::int64_t>(
            nextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p of true. */
    bool chance(double p) { return nextDouble() < p; }

    /**
     * Geometric-ish positive integer with the given mean (>= 1).
     * Used for phase-length draws; always returns at least 1.
     */
    std::uint64_t nextGeometric(double mean);

  private:
    std::uint64_t state[4];
};

} // namespace inpg

#endif // INPG_COMMON_RNG_HH
