/**
 * @file
 * Umbrella header of libinpg: the public API of the iNPG many-core
 * simulation library.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   #include <inpg/inpg.hh>
 *
 *   inpg::SystemConfig cfg;          // paper Table 1 defaults
 *   cfg.mechanism = inpg::Mechanism::Inpg;
 *
 *   inpg::RunConfig rc;
 *   rc.profile = inpg::benchmarkByName("freq");
 *   rc.system = cfg;
 *   inpg::RunResult r = inpg::runBenchmark(rc);
 *
 * Layering (each header usable on its own; lower layers never include
 * higher ones):
 *   common/    types, logging, RNG, config, stats, histogram
 *   sim/       cycle kernel + event queue
 *   telemetry/ observers over all of the above: JSON builder,
 *              Chrome-trace sink, packet-lifetime tracker, LCO
 *              attribution, stats registry. Sits beside noc/coh/sync
 *              (they hold nullable observer pointers into it);
 *              enabling it never changes simulated results.
 *   noc/       Garnet-style mesh NoC (flits, VCs, routers, NIs)
 *   coh/       directory MOESI coherence substrate
 *   inpg/      big routers: in-network packet generation (the paper's
 *              contribution), locking barrier table, synthesis model
 *   ocor/      OCOR baseline priority policy
 *   sync/      lock primitives (TAS/TTL/ABQL/MCS/QSL) + thread contexts
 *   workload/  PARSEC / SPEC OMP2012 benchmark profiles
 *   harness/   system builder (owns the Telemetry facade), mechanisms,
 *              experiment runner; SystemConfig::impl / ::telemetry are
 *              the two public configuration switches
 */

#ifndef INPG_INPG_HH
#define INPG_INPG_HH

#include "coh/coherent_system.hh"
#include "coh/golden_memory.hh"
#include "common/config.hh"
#include "common/histogram.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "harness/table_printer.hh"
#include "inpg/big_router.hh"
#include "inpg/lock_barrier_table.hh"
#include "inpg/synthesis_model.hh"
#include "noc/network.hh"
#include "ocor/ocor_policy.hh"
#include "sim/simulator.hh"
#include "sync/lock_manager.hh"
#include "sync/thread_context.hh"
#include "telemetry/json.hh"
#include "telemetry/lco_attribution.hh"
#include "telemetry/packet_lifetime.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace_event.hh"
#include "workload/benchmark_profile.hh"
#include "workload/workload.hh"

#endif // INPG_INPG_HH
