/**
 * @file
 * Umbrella header of libinpg: the public API of the iNPG many-core
 * simulation library.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   #include <inpg/inpg.hh>
 *
 *   inpg::SystemConfig cfg;          // paper Table 1 defaults
 *   cfg.mechanism = inpg::Mechanism::Inpg;
 *
 *   inpg::RunConfig rc;
 *   rc.profile = inpg::benchmarkByName("freq");
 *   rc.system = cfg;
 *   inpg::RunResult r = inpg::runBenchmark(rc);
 *
 * Layering (each header usable on its own):
 *   common/   types, logging, RNG, config, stats, histogram
 *   sim/      cycle kernel + event queue
 *   noc/      Garnet-style mesh NoC (flits, VCs, routers, NIs)
 *   coh/      directory MOESI coherence substrate
 *   inpg/     big routers: in-network packet generation (the paper's
 *             contribution), locking barrier table, synthesis model
 *   ocor/     OCOR baseline priority policy
 *   sync/     lock primitives (TAS/TTL/ABQL/MCS/QSL) + thread contexts
 *   workload/ PARSEC / SPEC OMP2012 benchmark profiles
 *   harness/  system builder, mechanisms, experiment runner
 */

#ifndef INPG_INPG_HH
#define INPG_INPG_HH

#include "coh/coherent_system.hh"
#include "coh/golden_memory.hh"
#include "common/config.hh"
#include "common/histogram.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "harness/table_printer.hh"
#include "inpg/big_router.hh"
#include "inpg/lock_barrier_table.hh"
#include "inpg/synthesis_model.hh"
#include "noc/network.hh"
#include "ocor/ocor_policy.hh"
#include "sim/simulator.hh"
#include "sync/lock_manager.hh"
#include "sync/thread_context.hh"
#include "workload/benchmark_profile.hh"
#include "workload/workload.hh"

#endif // INPG_INPG_HH
