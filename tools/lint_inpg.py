#!/usr/bin/env python3
"""Determinism lint for the iNPG simulator sources (DESIGN.md Section 8).

Rules (numbered as DESIGN.md invariants 10-19):

  unordered-iteration  (inv. 10)
      No range-for over std::unordered_map / std::unordered_set in the
      simulation directories (src/sim, src/noc, src/coh, src/inpg).
      Hash-order iteration silently breaks the bit-identical
      determinism the fingerprint tests rely on.

  raw-flit-new         (inv. 11)
      No raw `new Flit` outside src/noc/flit_pool.cc. Flits are
      pool-recycled; a raw allocation leaks a flit past the pool's
      generation counters.

  nondeterminism       (inv. 12)
      No rand()/srand()/time() and no wall-clock reads
      (std::chrono::*_clock) in the simulation directories. All
      randomness flows through common/rng.hh; all time is Cycle.
      Host-side profiling may opt out per line.

  shared-ptr-flit      (inv. 13)
      No std::shared_ptr<Flit> anywhere in src/. The NoC hot paths
      moved to pooled raw pointers (PR 1); a shared_ptr regression
      reintroduces atomic refcount traffic per hop.

  unbounded-recording  (inv. 14)
      No unguarded push_back/emplace_back in the telemetry recording
      modules (flight recorder, timeseries sampler, trace sink, packet
      lifetime, LCO attribution). Per-event records must land in a
      bounded store -- a ring buffer or a capacity-capped vector with
      a drop counter -- or an hours-long run OOMs the host. A growth
      call passes when a capacity/size guard appears within the
      preceding 16 lines.

  threading-outside-parallel (inv. 16)
      No std::thread / std::mutex / std::atomic /
      std::condition_variable (or their headers) outside
      src/sim/parallel/ and src/harness/. Simulated components are
      single-threaded by construction -- the parallel kernel's barrier
      discipline is the only sanctioned cross-thread channel, and a
      stray atomic in a component silently turns a determinism bug
      into a data race. Host-side infrastructure (the trace registry,
      the recorder registry) must opt out per line.

  coordinate-arithmetic (inv. 17)
      No arithmetic on meshWidth / meshHeight (or mesh_w / mesh_h
      parameters) outside src/noc/topology.{hh,cc} and
      src/noc/routing.{hh,cc}. Grid geometry -- id <-> coordinate
      decomposition, wrap math, placement -- is the Topology layer's
      contract; a stray `id % meshWidth` elsewhere silently assumes a
      non-concentrated mesh and breaks on torus/cmesh fabrics. The
      config's own numRouters() product opts out per line.

  node-container-noc   (inv. 15)
      No std::deque / std::list / std::forward_list / std::map /
      std::set (or their multi variants) in src/noc. The NoC hot path
      is data-oriented: flit and credit queues are pow2 ring buffers,
      VC state is SoA arrays. A node container reintroduces a heap
      allocation per enqueued element on the per-cycle path. Cold-path
      uses (if ever justified) must carry an explicit lint:allow.

  table-row-outside-tables (inv. 18)
      No direct construction of protocol transition-table rows --
      `TransitionTable<...>` instantiation, a `ProtoTransition{...}`
      row literal, or a `withRows(...)` rebuild -- outside
      src/coh/protocol_tables.cc (and the defining header
      src/coh/transition_table.hh). The shipped tables are the single
      source of protocol truth: protocol_check proves their static
      invariants and protocol_mc model-checks their composition, so a
      row built anywhere else ships unverified protocol behavior.
      Deliberate rebuilds (the model checker's seeded-mutation
      harness) must opt out per line.

  ad-hoc-json          (inv. 19)
      No hand-formatted JSON emission -- a `\\"key\\":` fragment inside
      a string literal -- in src/ outside src/telemetry/json.*. Every
      machine-readable document (stats snapshots, run records, hang
      reports) flows through JsonValue so schema versioning, escaping
      and the canonical round-trip guarantee hold; a stray fprintf of
      JSON text silently forks the schema. Scanned on RAW file text
      (string literals are exactly the evidence), so the historical
      Chrome-trace writer carries per-line lint:allow markers.

A finding is suppressed by an end-of-line marker naming its rule:

    auto t0 = std::chrono::steady_clock::now();  // lint:allow(nondeterminism)

Exit status: 0 clean, 1 findings, 2 usage error. --self-test runs the
rules against embedded known-bad snippets and fails unless every rule
fires (and suppression works).
"""

import argparse
import re
import sys
from pathlib import Path

SIM_DIRS = ("src/sim", "src/noc", "src/coh", "src/inpg")
ALL_SRC = ("src",)
ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z\-,\s]+)\)")

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s+(\w+)\s*[;{=]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*?:\s*([^)]+)\)")
FINAL_IDENT_RE = re.compile(r"(\w+)\s*(?:\(\s*\))?\s*$")
RAW_FLIT_NEW_RE = re.compile(r"\bnew\s+Flit\b")
NONDET_RE = re.compile(
    r"\b(?:std::)?(?:rand|srand)\s*\("
    r"|\b(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|\&|\))"
    r"|std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
)
SHARED_PTR_FLIT_RE = re.compile(r"std::shared_ptr\s*<\s*Flit\b")
NODE_CONTAINER_RE = re.compile(
    r"std::(?:deque|list|forward_list|map|set|multimap|multiset)\s*<"
    r"|#include\s*<(?:deque|list|forward_list|map|set)>")

THREADING_RE = re.compile(
    r"std::(?:thread|jthread|mutex|recursive_mutex|shared_mutex"
    r"|condition_variable|atomic)\b"
    r"|#include\s*<(?:thread|mutex|shared_mutex|atomic"
    r"|condition_variable)>")
# Directories where host-side threading primitives are sanctioned:
# the parallel kernel itself and the harness (sweep thread pool).
THREADING_OK_DIRS = ("src/sim/parallel", "src/harness")

# Grid-geometry identifiers whose arithmetic use marks coordinate
# math: the NocConfig members and the conventional parameter
# spellings. An arithmetic operator directly before or after the
# identifier is the signal; bare reads (assignment, argument passing,
# comparisons in min/max clamps) stay legal everywhere.
COORD_ARITH_RE = re.compile(
    r"[%*/+\-]\s*(?:\w+\s*(?:\.|->)\s*)?"
    r"mesh(?:Width|Height|_w(?:idth)?|_h(?:eight)?)\b"
    r"|\bmesh(?:Width|Height|_w(?:idth)?|_h(?:eight)?)\b\s*[%*/+\-]")
# Files that own grid geometry: the Topology implementations and the
# dimension-order routing helpers they are built on.
COORD_OK_PREFIXES = ("src/noc/topology", "src/noc/routing")

# Telemetry modules that record per-event data over a run (registries
# and build-only JSON values are out of scope).
RECORDING_STEMS = ("flight_recorder", "timeseries", "trace_event",
                   "packet_lifetime", "lco_attribution")
PUSH_RE = re.compile(r"\b(?:push_back|emplace_back)\s*\(")
# Evidence of a bounded store near a growth call: an explicit size
# comparison, a named cap, or a reserve sized from existing state.
GUARD_RE = re.compile(
    r"\.size\(\)\s*[<>]|maxRows|maxEvents|recordCap|capacity"
    r"|\.empty\(\)|\breserve\s*\(")
GUARD_WINDOW = 16


# Direct table-row construction: instantiating a TransitionTable,
# brace-initializing a ProtoTransition row, or rebuilding a table from
# an edited row vector. Reads (`const ProtoTransition &`, `find()`,
# `rows()`) stay legal everywhere -- only construction is fenced in.
TABLE_ROW_RE = re.compile(
    r"\bTransitionTable\s*<"
    r"|\bProtoTransition\s*\{"
    r"|(?:\.|->)\s*withRows\s*\(")
# The one verified home for row construction, plus the header that
# defines the table types themselves.
TABLE_OK_PREFIXES = ("src/coh/protocol_tables", "src/coh/transition_table")


# Hand-formatted JSON emission: an escaped-quoted key followed by a
# colon (`\"key\":`) inside a string literal. This rule scans RAW file
# text -- strip_comments blanks string literals, and the literal is
# exactly the evidence here. JsonValue (src/telemetry/json.*) owns
# escaping, schema_version stamping and the canonical round-trip.
ADHOC_JSON_RE = re.compile(r'\\"[A-Za-z0-9_]+\\"\s*:')
ADHOC_JSON_OK_PREFIXES = ("src/telemetry/json",)


def strip_comments(text):
    """Blank out comments and string literals, preserving line structure
    and any lint:allow markers (kept so suppression still works)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            comment = text[i:j]
            m = ALLOW_RE.search(comment)
            out.append(m.group(0) if m else "")
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                j += 1
            out.append(quote + quote)
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def allowed(lines, lineno, rule):
    m = ALLOW_RE.search(lines[lineno - 1]) if lineno <= len(lines) else None
    if not m:
        return False
    rules = {r.strip() for r in m.group(1).split(",")}
    return rule in rules


def collect_unordered_names(files):
    """Names declared with an unordered container type anywhere in the
    scanned set (headers declare, .cc files iterate)."""
    names = set()
    for path, text in files:
        del path
        for m in UNORDERED_DECL_RE.finditer(text):
            names.add(m.group(1))
    return names


def check_unordered_iteration(files, names):
    findings = []
    for path, text in files:
        lines = text.splitlines()
        for m in RANGE_FOR_RE.finditer(text):
            expr = m.group(1).strip()
            ident = FINAL_IDENT_RE.search(expr)
            if not ident or ident.group(1) not in names:
                continue
            ln = line_of(text, m.start())
            if allowed(lines, ln, "unordered-iteration"):
                continue
            findings.append(Finding(
                "unordered-iteration", path, ln,
                "range-for over unordered container '%s': hash-order "
                "iteration breaks determinism; use FlatHashMap or sort "
                "the keys" % ident.group(1)))
    return findings


def check_raw_flit_new(files):
    findings = []
    for path, text in files:
        if path.as_posix().endswith("src/noc/flit_pool.cc"):
            continue
        lines = text.splitlines()
        for m in RAW_FLIT_NEW_RE.finditer(text):
            ln = line_of(text, m.start())
            if allowed(lines, ln, "raw-flit-new"):
                continue
            findings.append(Finding(
                "raw-flit-new", path, ln,
                "raw `new Flit` outside flit_pool.cc: flits are "
                "pool-recycled (FlitPool::make)"))
    return findings


def check_nondeterminism(files):
    findings = []
    for path, text in files:
        lines = text.splitlines()
        for m in NONDET_RE.finditer(text):
            ln = line_of(text, m.start())
            if allowed(lines, ln, "nondeterminism"):
                continue
            findings.append(Finding(
                "nondeterminism", path, ln,
                "'%s': sim code must draw randomness from common/rng.hh "
                "and time from the Cycle clock" % m.group(0).strip()))
    return findings


def check_shared_ptr_flit(files):
    findings = []
    for path, text in files:
        lines = text.splitlines()
        for m in SHARED_PTR_FLIT_RE.finditer(text):
            ln = line_of(text, m.start())
            if allowed(lines, ln, "shared-ptr-flit"):
                continue
            findings.append(Finding(
                "shared-ptr-flit", path, ln,
                "std::shared_ptr<Flit> regression: the NoC hot paths "
                "use pooled raw pointers"))
    return findings


def check_node_container_noc(files):
    findings = []
    for path, text in files:
        if "src/noc" not in path.as_posix():
            continue
        lines = text.splitlines()
        for m in NODE_CONTAINER_RE.finditer(text):
            ln = line_of(text, m.start())
            if allowed(lines, ln, "node-container-noc"):
                continue
            findings.append(Finding(
                "node-container-noc", path, ln,
                "'%s' in src/noc: the NoC hot path uses pow2 ring "
                "buffers and SoA arrays, not node containers (see "
                "noc/ring_buffer.hh)" % m.group(0).strip()))
    return findings


def check_threading_scope(files):
    findings = []
    for path, text in files:
        posix = path.as_posix()
        if any(posix.startswith(d) for d in THREADING_OK_DIRS):
            continue
        lines = text.splitlines()
        for m in THREADING_RE.finditer(text):
            ln = line_of(text, m.start())
            if allowed(lines, ln, "threading-outside-parallel"):
                continue
            findings.append(Finding(
                "threading-outside-parallel", path, ln,
                "'%s' outside src/sim/parallel and src/harness: "
                "simulated components are single-threaded; cross-"
                "thread state belongs to the parallel kernel's barrier "
                "discipline" % m.group(0).strip()))
    return findings


def check_coordinate_arithmetic(files):
    findings = []
    for path, text in files:
        posix = path.as_posix()
        if any(posix.startswith(p) for p in COORD_OK_PREFIXES):
            continue
        lines = text.splitlines()
        for m in COORD_ARITH_RE.finditer(text):
            ln = line_of(text, m.start())
            if allowed(lines, ln, "coordinate-arithmetic"):
                continue
            findings.append(Finding(
                "coordinate-arithmetic", path, ln,
                "'%s': grid geometry (id <-> coordinate decomposition, "
                "wrap math, placement) belongs to src/noc/topology* / "
                "src/noc/routing*; ask the Topology object instead of "
                "doing width/height arithmetic here"
                % m.group(0).strip()))
    return findings


def check_unbounded_recording(files):
    findings = []
    for path, text in files:
        if "src/telemetry" not in path.as_posix():
            continue
        if not any(s in path.stem for s in RECORDING_STEMS):
            continue
        lines = text.splitlines()
        for m in PUSH_RE.finditer(text):
            ln = line_of(text, m.start())
            if allowed(lines, ln, "unbounded-recording"):
                continue
            window = "\n".join(lines[max(0, ln - GUARD_WINDOW):ln])
            if GUARD_RE.search(window):
                continue
            findings.append(Finding(
                "unbounded-recording", path, ln,
                "growth call in a telemetry recording module without a "
                "nearby capacity guard: per-event records must use a "
                "bounded store (ring buffer, or capped vector with a "
                "drop counter)"))
    return findings


def check_table_row_construction(files):
    findings = []
    for path, text in files:
        posix = path.as_posix()
        if any(posix.startswith(p) for p in TABLE_OK_PREFIXES):
            continue
        lines = text.splitlines()
        for m in TABLE_ROW_RE.finditer(text):
            ln = line_of(text, m.start())
            if allowed(lines, ln, "table-row-outside-tables"):
                continue
            findings.append(Finding(
                "table-row-outside-tables", path, ln,
                "'%s': protocol transition rows are built only in "
                "src/coh/protocol_tables.cc (protocol_check and "
                "protocol_mc verify that file); read tables via "
                "find()/require()/rows(), and carry an explicit "
                "lint:allow for deliberate test rebuilds"
                % m.group(0).strip()))
    return findings


def check_adhoc_json(raw_files):
    """Operates on RAW text (gather with strip=False): strip_comments
    blanks string literals, which are this rule's evidence."""
    findings = []
    for path, text in raw_files:
        posix = path.as_posix()
        if any(posix.startswith(p) for p in ADHOC_JSON_OK_PREFIXES):
            continue
        lines = text.splitlines()
        for m in ADHOC_JSON_RE.finditer(text):
            ln = line_of(text, m.start())
            if allowed(lines, ln, "ad-hoc-json"):
                continue
            findings.append(Finding(
                "ad-hoc-json", path, ln,
                "'%s': hand-formatted JSON outside src/telemetry/json.* "
                "forks the schema; build a JsonValue and dump() it "
                "(escaping, schema_version and the round-trip guarantee "
                "live there)" % m.group(0).strip()))
    return findings


def gather(root, rel_dirs, strip=True):
    """strip=False keeps string literals intact for the raw-text rules
    (ad-hoc-json reads the literals as its evidence)."""
    files = []
    for rel in rel_dirs:
        base = root / rel
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".cc", ".hh", ".cpp", ".hpp", ".h"):
                text = path.read_text(errors="replace")
                files.append((path.relative_to(root),
                              strip_comments(text) if strip else text))
    return files


def run_lint(root):
    sim_files = gather(root, SIM_DIRS)
    all_files = gather(root, ALL_SRC)
    findings = []
    findings += check_unordered_iteration(
        sim_files, collect_unordered_names(sim_files))
    findings += check_raw_flit_new(sim_files)
    findings += check_nondeterminism(sim_files)
    findings += check_shared_ptr_flit(all_files)
    findings += check_node_container_noc(all_files)
    findings += check_unbounded_recording(all_files)
    findings += check_threading_scope(all_files)
    findings += check_coordinate_arithmetic(all_files)
    findings += check_table_row_construction(all_files)
    findings += check_adhoc_json(gather(root, ALL_SRC, strip=False))
    findings.sort(key=lambda f: (str(f.path), f.line))
    return findings


SELF_TEST_BAD = """
#include <unordered_map>
std::unordered_map<int, int> table;
void f() {
    for (const auto &kv : table) { (void)kv; }
    Flit *raw = new Flit(pkt, HEAD, 0);
    int r = rand();
    auto t = std::chrono::steady_clock::now();
    std::shared_ptr<Flit> keep;
    std::deque<int> queue;
    std::atomic<int> racy{0};
    int x = id % cfg.meshWidth;
    TransitionTable<TS, TE> rogue(2, 2, {});
    ProtoTransition row{0, 0, PROTO_OK, {}, {}, {}, ""};
}
"""

SELF_TEST_SUPPRESSED = """
void g() {
    auto t = std::chrono::steady_clock::now(); // lint:allow(nondeterminism)
}
"""

SELF_TEST_BAD_RECORDING = """
void FlightRecorder::record(const Event &ev) {
    events.push_back(ev);
}
"""

SELF_TEST_BAD_JSON = r"""
void dumpStats(std::FILE *f) {
    std::fprintf(f, "{\"runs\": [], \"roi_cycles\": %llu}\n", cycles);
}
"""

SELF_TEST_ALLOWED_JSON = r"""
void writeTrace(std::string &out) {
    out += "{\"ph\":\"X\","; // lint:allow(ad-hoc-json) Chrome trace format
}
"""

SELF_TEST_GUARDED_RECORDING = """
void FlightRecorder::record(const Event &ev) {
    if (events.size() >= maxEvents) {
        ++dropped;
        return;
    }
    events.push_back(ev);
}
"""


def run_self_test():
    files = [(Path("src/noc/selftest.cc"), strip_comments(SELF_TEST_BAD))]
    findings = []
    findings += check_unordered_iteration(
        files, collect_unordered_names(files))
    findings += check_raw_flit_new(files)
    findings += check_nondeterminism(files)
    findings += check_shared_ptr_flit(files)
    findings += check_node_container_noc(files)
    findings += check_unbounded_recording(
        [(Path("src/telemetry/flight_recorder_bad.cc"),
          strip_comments(SELF_TEST_BAD_RECORDING))])
    findings += check_threading_scope(files)
    findings += check_coordinate_arithmetic(files)
    findings += check_table_row_construction(files)
    fired = {f.rule for f in findings}
    want = {"unordered-iteration", "raw-flit-new", "nondeterminism",
            "shared-ptr-flit", "node-container-noc",
            "unbounded-recording", "threading-outside-parallel",
            "coordinate-arithmetic", "table-row-outside-tables"}
    failures = want - fired
    for rule in sorted(want):
        status = "ok" if rule in fired else "MISSED"
        print("lint_inpg --self-test: %s: rule %s fires on the bad "
              "snippet" % (status, rule))

    sup = [(Path("src/noc/ok.cc"), strip_comments(SELF_TEST_SUPPRESSED))]
    leftover = check_nondeterminism(sup)
    if leftover:
        print("lint_inpg --self-test: MISSED: lint:allow suppression")
        failures.add("suppression")
    else:
        print("lint_inpg --self-test: ok: lint:allow suppresses a "
              "finding")

    # A capacity guard just above the growth call satisfies the
    # bounded-recording rule without a lint:allow marker.
    guarded = [(Path("src/telemetry/flight_recorder_ok.cc"),
                strip_comments(SELF_TEST_GUARDED_RECORDING))]
    if check_unbounded_recording(guarded):
        print("lint_inpg --self-test: MISSED: capacity guard exempts "
              "a growth call")
        failures.add("guarded-recording")
    else:
        print("lint_inpg --self-test: ok: capacity guard exempts a "
              "growth call")

    # Node containers stay legal outside src/noc (the coherence layer
    # keeps deques on its cold paths).
    coh = [(Path("src/coh/ok.cc"),
            strip_comments("std::deque<CohMsgPtr> deferred;\n"))]
    if check_node_container_noc(coh):
        print("lint_inpg --self-test: MISSED: node containers outside "
              "src/noc are exempt")
        failures.add("node-container-scope")
    else:
        print("lint_inpg --self-test: ok: node containers outside "
              "src/noc are exempt")

    # Threading primitives are legal inside the parallel kernel and
    # the harness thread pool.
    par = [(Path("src/sim/parallel/ok.hh"),
            strip_comments("std::atomic<bool> stopFlag{false};\n")),
           (Path("src/harness/ok.cc"),
            strip_comments("std::thread worker;\n"))]
    if check_threading_scope(par):
        print("lint_inpg --self-test: MISSED: threading inside "
              "src/sim/parallel and src/harness is exempt")
        failures.add("threading-scope")
    else:
        print("lint_inpg --self-test: ok: threading inside "
              "src/sim/parallel and src/harness is exempt")

    # Coordinate math is legal inside the Topology layer itself (the
    # decomposition in topology.cc and routing.cc is the one sanctioned
    # home for it).
    topo = [(Path("src/noc/topology.cc"),
             strip_comments("Coord c{id % cfg.meshWidth,"
                            " id / cfg.meshWidth};\n")),
            (Path("src/noc/routing.cc"),
             strip_comments("return c.y * meshWidth + c.x;\n"))]
    if check_coordinate_arithmetic(topo):
        print("lint_inpg --self-test: MISSED: coordinate math inside "
              "src/noc/topology* and src/noc/routing* is exempt")
        failures.add("coordinate-scope")
    else:
        print("lint_inpg --self-test: ok: coordinate math inside "
              "src/noc/topology* and src/noc/routing* is exempt")

    # Row construction is legal inside protocol_tables.cc itself (the
    # verified home) and in the header defining the table types.
    tables_home = [
        (Path("src/coh/protocol_tables.cc"),
         strip_comments("TransitionTable<L1State, L1Event> t(5, 9, {});"
                        "\nProtoTransition row{};\n")),
        (Path("src/coh/transition_table.hh"),
         strip_comments("TransitionTable<S, E> withRows(...) const;\n"))]
    if check_table_row_construction(tables_home):
        print("lint_inpg --self-test: MISSED: row construction inside "
              "src/coh/protocol_tables.cc is exempt")
        failures.add("table-row-scope")
    else:
        print("lint_inpg --self-test: ok: row construction inside "
              "src/coh/protocol_tables.cc is exempt")

    # ... and a deliberate rebuild elsewhere (the mutation harness)
    # passes with an explicit per-line opt-out.
    rebuild = [(Path("src/verify/ok.cc"), strip_comments(
        "auto t = prod.withRows(rows);"
        " // lint:allow(table-row-outside-tables)\n"))]
    if check_table_row_construction(rebuild):
        print("lint_inpg --self-test: MISSED: lint:allow exempts a "
              "deliberate withRows rebuild")
        failures.add("table-row-allow")
    else:
        print("lint_inpg --self-test: ok: lint:allow exempts a "
              "deliberate withRows rebuild")

    # Ad-hoc JSON emission fires on RAW text (the string literal is
    # the evidence) ...
    bad_json = [(Path("src/harness/bad_json.cc"), SELF_TEST_BAD_JSON)]
    if check_adhoc_json(bad_json):
        print("lint_inpg --self-test: ok: rule ad-hoc-json fires on "
              "the bad snippet")
    else:
        print("lint_inpg --self-test: MISSED: rule ad-hoc-json fires "
              "on the bad snippet")
        failures.add("ad-hoc-json")

    # ... stays legal inside the JsonValue implementation itself ...
    json_home = [(Path("src/telemetry/json.cc"), SELF_TEST_BAD_JSON)]
    if check_adhoc_json(json_home):
        print("lint_inpg --self-test: MISSED: src/telemetry/json.* is "
              "exempt from ad-hoc-json")
        failures.add("ad-hoc-json-scope")
    else:
        print("lint_inpg --self-test: ok: src/telemetry/json.* is "
              "exempt from ad-hoc-json")

    # ... and honors a per-line opt-out (the Chrome-trace writer emits
    # an externally specified format, not our schema).
    traced = [(Path("src/telemetry/trace_event_ok.cc"),
               SELF_TEST_ALLOWED_JSON)]
    if check_adhoc_json(traced):
        print("lint_inpg --self-test: MISSED: lint:allow exempts the "
              "Chrome-trace writer from ad-hoc-json")
        failures.add("ad-hoc-json-allow")
    else:
        print("lint_inpg --self-test: ok: lint:allow exempts the "
              "Chrome-trace writer from ad-hoc-json")

    # Comment text must never trip a rule (flit.hh documents the former
    # shared_ptr design in prose).
    commented = [(Path("src/noc/doc.hh"),
                  strip_comments("// drop-in for std::shared_ptr<Flit>\n"))]
    if check_shared_ptr_flit(commented):
        print("lint_inpg --self-test: MISSED: comments are exempt")
        failures.add("comments")
    else:
        print("lint_inpg --self-test: ok: comment text is exempt")

    return 0 if not failures else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".",
                    help="repository root (contains src/)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the rules fire on embedded bad snippets "
                         "before linting")
    args = ap.parse_args()

    root = Path(args.root).resolve()
    if not (root / "src").is_dir():
        print("lint_inpg: no src/ under %s" % root, file=sys.stderr)
        return 2

    if args.self_test and run_self_test() != 0:
        return 1

    findings = run_lint(root)
    for f in findings:
        print(f, file=sys.stderr)
    if findings:
        print("lint_inpg: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    print("lint_inpg: clean (%s)" % ", ".join(
        ("unordered-iteration", "raw-flit-new", "nondeterminism",
         "shared-ptr-flit", "node-container-noc",
         "unbounded-recording", "threading-outside-parallel",
         "coordinate-arithmetic", "table-row-outside-tables",
         "ad-hoc-json")))
    return 0


if __name__ == "__main__":
    sys.exit(main())
