/**
 * @file
 * inpg_sim: the general-purpose simulation driver.
 *
 * Runs any benchmark profile (or the whole suite) under any mechanism /
 * lock / platform configuration and reports the full set of metrics,
 * optionally as CSV and optionally with the per-component statistics
 * dump (routers, directories, L1s, locks).
 *
 * Usage:
 *   inpg_sim benchmark=freq mechanism=inpg lock=qsl cs_scale=0.1
 *   inpg_sim benchmark=all csv=1 > results.csv
 *   inpg_sim benchmark=kdtree dump_stats=1 mesh_width=4 mesh_height=4
 *   inpg_sim benchmark=freq topology=torus:8x8     # wraparound fabric
 *   inpg_sim benchmark=freq topology=cmesh:4x4x4   # 4 cores/router
 *   inpg_sim benchmark=freq topology=mesh:16x16 threads=4  # parallel
 *       kernel; bit-identical to threads=1 (src/sim/parallel)
 *   inpg_sim config=myrun.cfg        # "key = value" lines
 *   inpg_sim benchmark=freq --trace-out=run.json   # Chrome trace
 *   inpg_sim benchmark=freq telemetry=lco --stats-json=stats.json
 *   inpg_sim benchmark=freq --ledger-out=sweeps/ledger.jsonl  # append
 *       one RunRecord per run to the experiment ledger (JSONL; see
 *       src/telemetry/run_record.hh and tools/inpg_report)
 *   inpg_sim benchmark=freq --timeseries-out=ts.csv  # congestion rows
 *   inpg_sim benchmark=freq --watchdog-window=1000000 \
 *       --hang-report-out=hang.json   # exit 86 on detected no-progress
 *
 * GNU-style spellings are accepted for every key: "--trace-out=f"
 * means "trace_out=f". --stats-json collects one machine-readable
 * snapshot (StatsRegistry + LCO attribution) per run under {"runs":
 * [...]}; --trace-out force-enables packet tracing and writes a
 * Perfetto-loadable Chrome trace of the (last) run.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "harness/table_printer.hh"
#include "inpg/big_router.hh"
#include "workload/workload.hh"

using namespace inpg;

namespace {

void
addResultRow(TablePrinter &t, const RunResult &r, int threads)
{
    t.row({r.benchmark, mechanismName(r.mechanism),
           lockKindName(r.lockKind), std::to_string(r.roiCycles),
           std::to_string(r.csCompleted),
           fixed(100.0 * r.phaseFraction(r.parallelCycles, threads), 1),
           fixed(100.0 * r.phaseFraction(r.cohCycles, threads), 1),
           fixed(100.0 * r.phaseFraction(r.cseCycles, threads), 1),
           fixed(100.0 *
                     static_cast<double>(r.lockCohCycles) /
                     (static_cast<double>(r.roiCycles) * threads),
                 1),
           fixed(r.rttMean, 1), std::to_string(r.rttMax),
           std::to_string(r.earlyInvs), std::to_string(r.sleeps)});
}

/** One run with the optional component-level statistics dump. */
RunResult
runWithDump(const RunConfig &rc, bool dump)
{
    if (!dump)
        return runBenchmark(rc);

    SystemConfig sys_cfg = rc.system;
    if (!rc.traceOutPath.empty()) {
        sys_cfg.telemetry.traceEvents = true;
        sys_cfg.telemetry.packets = true;
    }
    if (!rc.timeseriesOutPath.empty() &&
        sys_cfg.telemetry.timeseriesEpoch == 0)
        sys_cfg.telemetry.timeseriesEpoch = DEFAULT_TIMESERIES_EPOCH;
    sys_cfg.finalize();
    System system(sys_cfg);
    Workload::Params wp;
    wp.profile = rc.profile;
    wp.threads = sys_cfg.numCores();
    wp.csScale = rc.csScale;
    wp.lockHome = rc.lockHome;
    wp.lockKind = sys_cfg.lockKind;
    wp.seed = sys_cfg.seed;
    Workload w(wp, system.coherent(), system.locks(), system.sim());
    w.start();
    system.runUntil([&] { return w.done(); }, rc.maxCycles);

    std::printf("--- component statistics (%s / %s) ---\n",
                rc.profile.name.c_str(),
                mechanismName(sys_cfg.mechanism));
    StatGroup routers("routers.total");
    StatGroup dirs("dirs.total");
    StatGroup l1s("l1s.total");
    Network &dump_net = system.coherent().network();
    for (NodeId r = 0; r < dump_net.numRouters(); ++r)
        for (const auto &kv :
             dump_net.router(r).stats.allCounters())
            routers.counter(kv.first) += kv.second;
    for (NodeId n = 0; n < sys_cfg.numCores(); ++n) {
        for (const auto &kv :
             system.coherent().directory(n).stats.allCounters())
            dirs.counter(kv.first) += kv.second;
        for (const auto &kv :
             system.coherent().l1(n).stats.allCounters())
            l1s.counter(kv.first) += kv.second;
    }
    std::fputs(routers.dump().c_str(), stdout);
    std::fputs(dirs.dump().c_str(), stdout);
    std::fputs(l1s.dump().c_str(), stdout);
    for (const auto &lock : system.locks().locks())
        std::fputs(lock->stats.dump().c_str(), stdout);
    for (NodeId n = 0; n < dump_net.numRouters(); ++n) {
        if (auto *br = dynamic_cast<BigRouter *>(
                &dump_net.router(n))) {
            if (br->generator().stats.value("early_invs_generated"))
                std::fputs(br->generator().stats.dump().c_str(), stdout);
        }
    }
    std::printf("---\n");

    RunResult r;
    r.benchmark = rc.profile.name;
    r.mechanism = sys_cfg.mechanism;
    r.lockKind = sys_cfg.lockKind;
    r.roiCycles = w.roiFinish();
    r.csCompleted = w.csCompleted();
    r.parallelCycles = w.totalCycles(ThreadPhase::Parallel);
    r.cohCycles = w.totalCycles(ThreadPhase::Coh) +
                  w.totalCycles(ThreadPhase::Sleep);
    r.sleepCycles = w.totalCycles(ThreadPhase::Sleep);
    r.cseCycles = w.totalCycles(ThreadPhase::Cse);
    r.rttMean = system.coherent().cohStats().rttHistogram.mean();
    r.rttMax = system.coherent().cohStats().rttHistogram.max();
    r.earlyInvs = system.totalEarlyInvs();

    Telemetry *telem = system.telemetry();
    if (telem && telem->lco)
        r.lco = telem->lco->summary();
    if (telem && telem->trace && !rc.traceOutPath.empty())
        telem->trace->writeJsonFile(rc.traceOutPath);
    if (telem && telem->timeseries && !rc.timeseriesOutPath.empty())
        telem->timeseries->writeFile(rc.timeseriesOutPath);
    r.stats = system.statsSnapshot();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    Config overrides;
    overrides.loadArgs(argc, argv);
    if (overrides.has("config"))
        overrides.loadFile(overrides.getString("config"));
    // Command line wins over the file: re-apply argv.
    overrides.loadArgs(argc, argv);

    const std::string bench = overrides.getString("benchmark", "freq");
    const bool csv = overrides.getBool("csv", false);
    const bool dump = overrides.getBool("dump_stats", false);
    const bool all_mechs = overrides.getBool("all_mechanisms", false);

    std::vector<BenchmarkProfile> profiles;
    if (bench == "all")
        profiles = allBenchmarks();
    else
        for (const auto &name : split(bench, ','))
            profiles.push_back(benchmarkByName(trim(name)));

    RunConfig rc;
    rc.system.applyOverrides(overrides);
    rc.csScale = overrides.getDouble("cs_scale", 0.05);
    if (overrides.has("lock_home"))
        rc.lockHome =
            static_cast<NodeId>(overrides.getInt("lock_home"));
    rc.traceOutPath = overrides.getString("trace_out", "");
    rc.timeseriesOutPath = overrides.getString("timeseries_out", "");
    const std::string stats_json_path =
        overrides.getString("stats_json", "");
    const std::string hang_report_path =
        overrides.getString("hang_report_out", "");
    const std::string ledger_path =
        overrides.getString("ledger_out", "");
    std::unique_ptr<ExperimentLedger> ledger;
    if (!ledger_path.empty()) {
        ledger = std::make_unique<ExperimentLedger>(ledger_path);
        if (!ledger->ok())
            fatal("cannot open ledger '%s'", ledger_path.c_str());
    }

    TablePrinter t("inpg_sim results");
    t.header({"benchmark", "mechanism", "lock", "roi_cycles",
              "cs_completed", "parallel%", "coh%", "cse%", "lco%",
              "rtt_mean", "rtt_max", "early_invs", "sleeps"});

    const int threads = rc.system.numCores();
    JsonValue runs = JsonValue::array();
    auto one_run = [&](const RunConfig &run_rc) {
        RunResult r = runWithDump(run_rc, dump);
        addResultRow(t, r, threads);
        if (ledger)
            ledger->append(makeRunRecord(run_rc, r));
        if (!stats_json_path.empty()) {
            JsonValue entry = JsonValue::object();
            entry["benchmark"] = r.benchmark;
            entry["mechanism"] = mechanismName(r.mechanism);
            entry["lock"] = lockKindName(r.lockKind);
            entry["roi_cycles"] =
                static_cast<std::uint64_t>(r.roiCycles);
            entry["cs_completed"] = r.csCompleted;
            entry["stats"] = std::move(r.stats);
            runs.push(std::move(entry));
        }
    };
    try {
        for (const auto &p : profiles) {
            rc.profile = p;
            // num_locks=1 concentrates the profile's CS traffic on
            // one lock, as the LCO figure benches do.
            if (overrides.has("num_locks"))
                rc.profile.numLocks = overrides.getInt("num_locks");
            if (all_mechs) {
                for (Mechanism m : ALL_MECHANISMS) {
                    rc.system.mechanism = m;
                    one_run(rc);
                }
            } else {
                one_run(rc);
            }
        }
    } catch (const SimHangError &e) {
        // Watchdog trip: persist the structured hang report and exit
        // with the dedicated code so harnesses can tell a detected
        // hang from an ordinary failure.
        std::fprintf(stderr, "inpg_sim: %s\n", e.what());
        std::FILE *out = stdout;
        if (!hang_report_path.empty()) {
            out = std::fopen(hang_report_path.c_str(), "w");
            if (!out)
                fatal("cannot open hang report file '%s'",
                      hang_report_path.c_str());
        }
        const std::string &report = e.reportJson();
        std::fwrite(report.data(), 1, report.size(), out);
        std::fputc('\n', out);
        if (out != stdout) {
            std::fclose(out);
            std::fprintf(stderr, "inpg_sim: hang report written to %s\n",
                         hang_report_path.c_str());
        }
        return HANG_EXIT_CODE;
    }

    if (!stats_json_path.empty()) {
        JsonValue doc = JsonValue::object();
        doc["schema_version"] = STATS_JSON_SCHEMA_VERSION;
        doc["runs"] = std::move(runs);
        std::FILE *f = std::fopen(stats_json_path.c_str(), "w");
        if (!f)
            fatal("cannot open '%s'", stats_json_path.c_str());
        const std::string text = doc.dump(2);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
    }

    if (csv)
        std::fputs(t.renderCsv().c_str(), stdout);
    else
        std::fputs(t.render().c_str(), stdout);
    return 0;
}
