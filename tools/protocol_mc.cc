/**
 * @file
 * protocol_mc: explicit-state model checker driver for the composed
 * MOESI x iNPG protocol (DESIGN.md Section 13).
 *
 * Default run sweeps every scenario x {big router on, off} at N=2
 * cores, exploring the full reachable state space (BFS, symmetry
 * reduction over core ids) and printing the reachable-state count per
 * configuration. Any invariant violation prints its flight-recorder
 * witness and exits 1.
 *
 * Flags:
 *   --self-test        run the seeded-mutation harness instead: every
 *                      catalog bug must be caught by its expected
 *                      invariant with a non-empty witness.
 *   --mutate NAME      run one catalog mutation and print its witness
 *                      (exit 0 when it is caught as expected).
 *   --cores N          number of L1 cores (2..3, default 2).
 *   --scenario NAME    restrict to one scenario (tas, tas-nd,
 *                      tas-held, counter, rw; default: all).
 *   --big-router / --no-big-router
 *                      restrict the big-router axis (default: both).
 *   --max-states N     state budget (0 = unlimited, default).
 *   --max-depth N      BFS depth bound (0 = unlimited, default).
 *   --no-symmetry      disable core-id canonicalization.
 *   --verbose          per-mutation witness traces in --self-test.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "verify/model_check.hh"

namespace {

using namespace inpg;

void
printViolation(const McViolation &v)
{
    std::printf("VIOLATION: %s -- %s\n", v.invariant.c_str(),
                v.detail.c_str());
    std::printf("witness (%zu lines):\n", v.trace.size());
    for (const std::string &line : v.trace)
        std::printf("  %s\n", line.c_str());
}

int
runSweep(const McConfig &base, const std::vector<McScenario> &scenarios,
         const std::vector<bool> &brAxis)
{
    int rc = 0;
    for (McScenario sc : scenarios) {
        for (bool br : brAxis) {
            McConfig cfg = base;
            cfg.scenario = sc;
            cfg.bigRouter = br;
            McResult res = runModelCheck(cfg);
            std::printf("scenario %-8s cores=%d big-router=%-3s : "
                        "%llu states, %llu transitions, %llu final, "
                        "depth %d%s%s\n",
                        mcScenarioName(sc), cfg.numCores,
                        br ? "on" : "off",
                        static_cast<unsigned long long>(
                            res.statesVisited),
                        static_cast<unsigned long long>(
                            res.transitions),
                        static_cast<unsigned long long>(
                            res.finalStates),
                        res.maxDepth,
                        res.complete ? " (exhaustive)" : " (truncated)",
                        res.ok() ? "" : " FAIL");
            if (!res.ok()) {
                printViolation(*res.violation);
                rc = 1;
            }
        }
    }
    return rc;
}

int
runSelfTest(bool verbose)
{
    std::vector<std::string> log;
    McSelfTestOutcome out = runMcSelfTest(verbose, &log);
    for (const std::string &line : log)
        std::printf("%s\n", line.c_str());
    std::printf("self-test: %d/%d seeded mutations caught\n",
                out.caught, out.mutationsRun);
    if (!out.ok()) {
        std::printf("self-test FAILED (%zu failures)\n",
                    out.failures.size());
        return 1;
    }
    return 0;
}

int
runMutation(const std::string &name)
{
    const McMutation *m = mcFindMutation(name);
    if (!m) {
        std::fprintf(stderr, "unknown mutation '%s'; catalog:\n",
                     name.c_str());
        for (const McMutation &c : mcMutationCatalog())
            std::fprintf(stderr, "  %-34s %s\n", c.name, c.what);
        return 2;
    }
    std::printf("mutation %s: %s\n", m->name, m->what);
    McResult res = runMutatedModelCheck(*m);
    if (!res.violation.has_value()) {
        std::printf("NOT CAUGHT (%llu states explored, %s)\n",
                    static_cast<unsigned long long>(res.statesVisited),
                    res.complete ? "complete" : "truncated");
        return 1;
    }
    printViolation(*res.violation);
    return 0;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--self-test [--verbose]] [--mutate NAME]\n"
                 "          [--cores N] [--scenario NAME] [--big-router]"
                 " [--no-big-router]\n"
                 "          [--max-states N] [--max-depth N] "
                 "[--no-symmetry]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool selfTest = false;
    bool verbose = false;
    std::string mutate;
    McConfig cfg;
    std::vector<McScenario> scenarios = mcAllScenarios();
    std::vector<bool> brAxis = {true, false};

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--self-test") {
            selfTest = true;
        } else if (a == "--verbose") {
            verbose = true;
        } else if (a == "--mutate") {
            mutate = next("--mutate");
        } else if (a == "--cores") {
            cfg.numCores = std::atoi(next("--cores"));
            if (cfg.numCores < 2 || cfg.numCores > 3) {
                std::fprintf(stderr, "--cores must be 2 or 3\n");
                return 2;
            }
        } else if (a == "--scenario") {
            const std::string name = next("--scenario");
            if (name != "all") {
                auto sc = mcScenarioFromName(name);
                if (!sc) {
                    std::fprintf(stderr, "unknown scenario '%s'\n",
                                 name.c_str());
                    return 2;
                }
                scenarios = {*sc};
            }
        } else if (a == "--big-router") {
            brAxis = {true};
        } else if (a == "--no-big-router") {
            brAxis = {false};
        } else if (a == "--max-states") {
            cfg.maxStates = static_cast<std::uint64_t>(
                std::atoll(next("--max-states")));
        } else if (a == "--max-depth") {
            cfg.maxDepth = std::atoi(next("--max-depth"));
        } else if (a == "--no-symmetry") {
            cfg.symmetry = false;
        } else {
            return usage(argv[0]);
        }
    }

    if (selfTest)
        return runSelfTest(verbose);
    if (!mutate.empty())
        return runMutation(mutate);
    return runSweep(cfg, scenarios, brAxis);
}
