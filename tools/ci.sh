#!/bin/sh
# PR gate (tools/ci.sh): the checks every change must pass beyond the
# plain unit suite:
#   1. static analysis -- tools/protocol_check --self-test (declarative
#      transition tables: coverage, vnet acyclicity, LCO hook tiling,
#      reachability) and tools/lint_inpg.py --self-test (determinism
#      lint, DESIGN.md invariants 10-18);
#   2. ./run_benches.sh --quick    -- kernel fast-forward A/B and busy
#      hot-path A/B perf smokes (non-zero exit if either optimization
#      changes simulated results or the optimized schedule path
#      allocates), refreshing BENCH_*.json;
#   3. seeded-hang watchdog smoke -- inpg_sim with the test-only
#      drop_dir_response knob must exit 86 (HANG_EXIT_CODE) and write
#      a well-formed structured hang report;
#   4. torus/fabric smoke -- a torus:8x8 iNPG run must be
#      deterministic and bit-identical between the serial and parallel
#      kernels, the no-escape-VC torus must be rejected by the
#      channel-dependency verifier, and a cmesh run must complete;
#   5. experiment-ledger report smoke -- identical tiny configs must
#      diff clean under tools/inpg_report, an injected metric delta
#      must be caught by diff and regress, and aggregate must render
#      the Fig-2 LCO table from a fresh ledger;
#   6. model check -- tools/protocol_mc explores the composed
#      MOESI x iNPG protocol: exhaustive at N=2 (every scenario, big
#      router on and off) and N=3 without the big router, bounded at
#      N=3 with it, plus the seeded-mutation --self-test; hard time
#      budget via timeout(1);
#   7. ./run_benches.sh --tsan then --sanitize -- the threaded suites
#      (parallel kernel, sweep pool, trace sink) under
#      ThreadSanitizer in build-tsan/, then configure + build + full
#      ctest under ASan/UBSan in build-asan/.
# Flags:
#   --tidy       additionally run clang-tidy over src/ (skipped with a
#                note when clang-tidy is not installed);
#   --tidy-only  run just the clang-tidy stage (the ci-clang-tidy
#                ctest entry);
#   --hang-only  run just the seeded-hang watchdog smoke (the
#                ci-hang-smoke ctest entry);
#   --torus-only run just the torus/fabric smoke (the ci-torus-smoke
#                ctest entry);
#   --mc-only    run just the model-check stage (the ci-model-check
#                ctest entry);
#   --report-only run just the experiment-ledger report smoke (the
#                ci-report-smoke ctest entry): identical configs must
#                diff clean, an injected metric delta must be caught,
#                and `inpg_report aggregate` must render the Fig-2
#                table from a fresh ledger.
# Expects ./build to be configured (configures it if missing). Wired
# as the `ci-smoke` ctest when the tree is configured with
# -DINPG_CI_SMOKE=ON; off by default because it builds and tests a
# second tree.
set -e
repo_root=$(cd "$(dirname "$0")/.." && pwd)

want_tidy=0
tidy_only=0
hang_only=0
torus_only=0
mc_only=0
report_only=0
for arg in "$@"; do
    case "$arg" in
      --tidy) want_tidy=1 ;;
      --tidy-only) want_tidy=1; tidy_only=1 ;;
      --hang-only) hang_only=1 ;;
      --torus-only) torus_only=1 ;;
      --mc-only) mc_only=1 ;;
      --report-only) report_only=1 ;;
      *) echo "usage: tools/ci.sh [--tidy|--tidy-only|--hang-only|" \
              "--torus-only|--mc-only|--report-only]" >&2
         exit 2 ;;
    esac
done

if [ ! -f "$repo_root/build/CMakeCache.txt" ]; then
    cmake -B "$repo_root/build" -S "$repo_root"
fi

run_tidy() {
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "ci.sh: clang-tidy not installed; skipping tidy stage" >&2
        return 0
    fi
    # The build exports compile_commands.json
    # (CMAKE_EXPORT_COMPILE_COMMANDS); .clang-tidy at the repo root
    # selects the bugprone/performance/narrowing checks.
    find "$repo_root/src" -name '*.cc' -print | sort | \
        xargs clang-tidy -p "$repo_root/build" --quiet
}

# Seeded-hang watchdog smoke: a dropped directory response deadlocks
# the run deterministically; the progress watchdog must detect it,
# exit with the dedicated code (86) and emit a parseable structured
# report naming the wedged components.
run_hang_smoke() {
    cmake --build "$repo_root/build" -j "$(nproc)" --target inpg_sim
    report="$repo_root/build/hang_smoke_report.json"
    rm -f "$report"
    set +e
    "$repo_root/build/tools/inpg_sim" benchmark=freq \
        mechanism=original lock=tas mesh_width=4 mesh_height=4 \
        drop_dir_response=1 watchdog_window=50000 \
        telemetry=recorder,packets \
        hang_report_out="$report" >/dev/null 2>&1
    rc=$?
    set -e
    if [ "$rc" != 86 ]; then
        echo "FAIL: seeded hang exited $rc (expected HANG_EXIT_CODE 86)" >&2
        exit 1
    fi
    python3 - "$report" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
for key in ("report", "schema_version", "reason", "cycle", "watchdog",
            "event_queue", "routers", "directories", "l1s",
            "flight_recorder"):
    assert key in d, "hang report missing key: " + key
assert d["report"] == "inpg-hang-report", d["report"]
assert d["schema_version"] == 1, d["schema_version"]
assert d["flight_recorder"]["events"], "flight recorder dump is empty"
print("hang report OK: reason=%s cycle=%d, %d recorder events"
      % (d["reason"], d["cycle"], len(d["flight_recorder"]["events"])))
EOF
}

# Torus/fabric smoke: the wraparound fabric must run deterministically
# under both kernels, the deadlock-capable configuration (no escape
# VCs) must be refused at System construction with the cycle witness,
# and the concentrated mesh must complete a run.
run_torus_smoke() {
    cmake --build "$repo_root/build" -j "$(nproc)" --target inpg_sim
    sim="$repo_root/build/tools/inpg_sim"
    out_a=$("$sim" benchmark=freq mechanism=inpg topology=torus:8x8 \
        big_routers=8 csv=1)
    out_b=$("$sim" benchmark=freq mechanism=inpg topology=torus:8x8 \
        big_routers=8 csv=1)
    if [ "$out_a" != "$out_b" ]; then
        echo "FAIL: torus runs are not deterministic" >&2
        exit 1
    fi
    out_par=$("$sim" benchmark=freq mechanism=inpg topology=torus:8x8 \
        big_routers=8 threads=4 csv=1)
    if [ "$out_a" != "$out_par" ]; then
        echo "FAIL: torus threads=4 diverges from the serial kernel" >&2
        exit 1
    fi
    set +e
    "$sim" benchmark=freq topology=torus:8x8 escape_vcs=0 \
        >/dev/null 2>&1
    rc=$?
    set -e
    if [ "$rc" = 0 ]; then
        echo "FAIL: no-escape-VC torus was accepted (verifier hole)" >&2
        exit 1
    fi
    "$sim" benchmark=freq mechanism=inpg topology=cmesh:4x4x4 \
        big_routers=4 csv=1 >/dev/null
    echo "torus smoke OK: deterministic, serial==threads=4," \
         "no-escape-VC rejected, cmesh completes"
}

# Experiment-ledger report smoke: two identical tiny configs must diff
# clean (exit 0); an injected single-metric delta must be caught by
# both diff and regress (exit 1); and `inpg_report aggregate` must
# render the Fig-2 LCO table from the fresh ledger. All runs are
# deterministic, so the stage needs no committed fixture.
run_report_smoke() {
    cmake --build "$repo_root/build" -j "$(nproc)" \
        --target inpg_sim --target inpg_report
    sim="$repo_root/build/tools/inpg_sim"
    rep="$repo_root/build/tools/inpg_report"
    led_a="$repo_root/build/report_smoke_a.jsonl"
    led_b="$repo_root/build/report_smoke_b.jsonl"
    led_c="$repo_root/build/report_smoke_c.jsonl"
    rm -f "$led_a" "$led_b" "$led_c"
    "$sim" benchmark=freq lock=qsl mechanism=inpg topology=mesh:4x4 \
        cs_scale=0.02 num_locks=1 telemetry=lco \
        --ledger-out="$led_a" >/dev/null
    "$sim" benchmark=freq lock=qsl mechanism=inpg topology=mesh:4x4 \
        cs_scale=0.02 num_locks=1 telemetry=lco \
        --ledger-out="$led_b" >/dev/null
    "$rep" diff "$led_a" "$led_b"
    echo "report smoke: identical configs diff clean"
    # Seed a one-metric delta into a copy of B; diff and regress must
    # both catch it and exit nonzero.
    python3 - "$led_b" "$led_c" <<'EOF'
import json, sys
rec = json.loads(open(sys.argv[1]).read().splitlines()[0])
rec["metrics"]["roi_cycles"] += 1
open(sys.argv[2], "w").write(json.dumps(rec) + "\n")
EOF
    if "$rep" diff "$led_a" "$led_c" > /dev/null; then
        echo "FAIL: injected roi_cycles delta not detected by diff" >&2
        exit 1
    fi
    if "$rep" regress "$led_c" "$led_a" > /dev/null; then
        echo "FAIL: injected roi_cycles delta not detected by regress" >&2
        exit 1
    fi
    echo "report smoke: injected delta caught by diff and regress"
    agg=$("$rep" aggregate "$led_a")
    case "$agg" in
        *"LCO share of running time"*) ;;
        *) echo "FAIL: aggregate output is missing the Fig-2 table" >&2
           exit 1 ;;
    esac
    echo "report smoke OK: diff/regress/aggregate behave"
}

# Model-check stage: exhaustive exploration of the composed protocol
# with a hard wall-clock budget per invocation. The N=2 sweep and the
# N=3 no-big-router sweep are exhaustive (zero violations required);
# the N=3 big-router configuration's state space is out of a CI
# budget, so it runs depth-bounded as a smoke. The seeded-mutation
# self-test proves the checker still catches real table bugs.
run_model_check() {
    cmake --build "$repo_root/build" -j "$(nproc)" --target protocol_mc
    mc="$repo_root/build/tools/protocol_mc"
    echo "--- protocol_mc: N=2 exhaustive sweep (budget 120s)"
    timeout 120 "$mc"
    echo "--- protocol_mc: N=3 exhaustive, big router off (budget 120s)"
    timeout 120 "$mc" --cores 3 --no-big-router
    echo "--- protocol_mc: N=3 depth-bounded, big router on (budget 180s)"
    timeout 180 "$mc" --cores 3 --big-router --scenario tas \
        --max-states 200000
    echo "--- protocol_mc: seeded-mutation self-test (budget 120s)"
    timeout 120 "$mc" --self-test
    echo "model check OK"
}

if [ "$tidy_only" = 1 ]; then
    run_tidy
    exit 0
fi
if [ "$hang_only" = 1 ]; then
    echo "=== ci.sh: seeded-hang watchdog smoke ==="
    run_hang_smoke
    exit 0
fi
if [ "$torus_only" = 1 ]; then
    echo "=== ci.sh: torus/fabric smoke ==="
    run_torus_smoke
    exit 0
fi
if [ "$mc_only" = 1 ]; then
    echo "=== ci.sh: protocol model check ==="
    run_model_check
    exit 0
fi
if [ "$report_only" = 1 ]; then
    echo "=== ci.sh: experiment-ledger report smoke ==="
    run_report_smoke
    exit 0
fi

echo "=== ci.sh stage 1: static analysis ==="
cmake --build "$repo_root/build" -j "$(nproc)" --target protocol_check
"$repo_root/build/tools/protocol_check" --self-test
python3 "$repo_root/tools/lint_inpg.py" --root "$repo_root" --self-test
if [ "$want_tidy" = 1 ]; then
    run_tidy
fi

echo "=== ci.sh stage 2: perf smokes ==="
cmake --build "$repo_root/build" -j "$(nproc)" --target bench_micro
"$repo_root/run_benches.sh" --quick

echo "=== ci.sh stage 3: seeded-hang watchdog smoke ==="
run_hang_smoke

echo "=== ci.sh stage 4: torus/fabric smoke ==="
run_torus_smoke

echo "=== ci.sh stage 5: experiment-ledger report smoke ==="
run_report_smoke

echo "=== ci.sh stage 6: protocol model check ==="
run_model_check

echo "=== ci.sh stage 7: sanitizer suites ==="
# ThreadSanitizer over the threaded surfaces first (parallel kernel
# bit-identity suite, sweep pool, trace sink), then the full ASan/
# UBSan tree. Both configure their own build dirs.
"$repo_root/run_benches.sh" --tsan
"$repo_root/run_benches.sh" --sanitize
