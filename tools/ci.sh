#!/bin/sh
# PR gate (tools/ci.sh): the checks every change must pass beyond the
# plain unit suite:
#   1. static analysis -- tools/protocol_check --self-test (declarative
#      transition tables: coverage, vnet acyclicity, LCO hook tiling,
#      reachability) and tools/lint_inpg.py --self-test (determinism
#      lint, DESIGN.md invariants 10-13);
#   2. ./run_benches.sh --quick    -- kernel fast-forward A/B and busy
#      hot-path A/B perf smokes (non-zero exit if either optimization
#      changes simulated results or the optimized schedule path
#      allocates), refreshing BENCH_*.json;
#   3. ./run_benches.sh --sanitize -- configure + build + full ctest
#      under ASan/UBSan in build-asan/.
# Flags:
#   --tidy       additionally run clang-tidy over src/ (skipped with a
#                note when clang-tidy is not installed);
#   --tidy-only  run just the clang-tidy stage (the ci-clang-tidy
#                ctest entry).
# Expects ./build to be configured (configures it if missing). Wired
# as the `ci-smoke` ctest when the tree is configured with
# -DINPG_CI_SMOKE=ON; off by default because it builds and tests a
# second tree.
set -e
repo_root=$(cd "$(dirname "$0")/.." && pwd)

want_tidy=0
tidy_only=0
for arg in "$@"; do
    case "$arg" in
      --tidy) want_tidy=1 ;;
      --tidy-only) want_tidy=1; tidy_only=1 ;;
      *) echo "usage: tools/ci.sh [--tidy|--tidy-only]" >&2; exit 2 ;;
    esac
done

if [ ! -f "$repo_root/build/CMakeCache.txt" ]; then
    cmake -B "$repo_root/build" -S "$repo_root"
fi

run_tidy() {
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "ci.sh: clang-tidy not installed; skipping tidy stage" >&2
        return 0
    fi
    # The build exports compile_commands.json
    # (CMAKE_EXPORT_COMPILE_COMMANDS); .clang-tidy at the repo root
    # selects the bugprone/performance/narrowing checks.
    find "$repo_root/src" -name '*.cc' -print | sort | \
        xargs clang-tidy -p "$repo_root/build" --quiet
}

if [ "$tidy_only" = 1 ]; then
    run_tidy
    exit 0
fi

echo "=== ci.sh stage 1: static analysis ==="
cmake --build "$repo_root/build" -j "$(nproc)" --target protocol_check
"$repo_root/build/tools/protocol_check" --self-test
python3 "$repo_root/tools/lint_inpg.py" --root "$repo_root" --self-test
if [ "$want_tidy" = 1 ]; then
    run_tidy
fi

echo "=== ci.sh stage 2: perf smokes ==="
cmake --build "$repo_root/build" -j "$(nproc)" --target bench_micro
"$repo_root/run_benches.sh" --quick

echo "=== ci.sh stage 3: sanitizer suite ==="
"$repo_root/run_benches.sh" --sanitize
