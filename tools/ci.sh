#!/bin/sh
# PR gate (tools/ci.sh): the checks every change must pass beyond the
# plain unit suite:
#   1. ./run_benches.sh --quick    -- kernel fast-forward A/B and busy
#      hot-path A/B perf smokes (non-zero exit if either optimization
#      changes simulated results or the optimized schedule path
#      allocates), refreshing BENCH_*.json;
#   2. ./run_benches.sh --sanitize -- configure + build + full ctest
#      under ASan/UBSan in build-asan/.
# Expects ./build to be configured (configures it if missing). Wired
# as the `ci-smoke` ctest when the tree is configured with
# -DINPG_CI_SMOKE=ON; off by default because it builds and tests a
# second tree.
set -e
repo_root=$(cd "$(dirname "$0")/.." && pwd)
if [ ! -f "$repo_root/build/CMakeCache.txt" ]; then
    cmake -B "$repo_root/build" -S "$repo_root"
fi
cmake --build "$repo_root/build" -j "$(nproc)" --target bench_micro
"$repo_root/run_benches.sh" --quick
"$repo_root/run_benches.sh" --sanitize
