/**
 * @file
 * protocol_check: build-time static verifier over the declarative
 * MOESI transition tables (DESIGN.md Section 8).
 *
 * Runs four structural checks over the three production tables (L1,
 * directory, big-router barrier FSM):
 *
 *  1. coverage      -- the full state x event space is enumerated:
 *                      every pair carries exactly one entry, either an
 *                      action or an explicit illegal-with-reason.
 *  2. vnet-graph    -- the message-class dependency graph extracted
 *                      from the tables' emit annotations is acyclic
 *                      across the 4 virtual networks (relay emits must
 *                      stay on their own class).
 *  3. lco-hooks     -- transition stat hooks name real LcoTracker
 *                      cursor hooks and jointly tile the attribution
 *                      legs.
 *  4. reachability  -- no dead states.
 *  5. channel-deps  -- topology-aware routing deadlock freedom: the
 *                      channel-dependency graph each supported fabric's
 *                      routing function induces (mesh, torus with
 *                      escape VCs, cmesh) is acyclic, and a torus
 *                      WITHOUT escape VCs is correctly rejected with a
 *                      ring-cycle witness (the check's own negative
 *                      control).
 *
 * Exit 0 when the protocol verifies clean, 1 when any diagnostic
 * fires. `--self-test` additionally feeds deliberately broken tables
 * through each check and fails unless every seeded bug is detected.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "coh/protocol_tables.hh"
#include "coh/protocol_verify.hh"
#include "noc/topology.hh"

namespace {

using namespace inpg;

int
runProduction(bool verbose)
{
    int worst = 0;
    for (int i = 0; i < PROTO_NUM_TABLES; ++i) {
        const ProtoTableBase &t = protocolTable(i);
        int legal = 0, illegal = 0;
        for (int s = 0; s < t.numStates(); ++s) {
            for (int e = 0; e < t.numEvents(); ++e) {
                const ProtoTransition *tr = t.find(s, e);
                if (!tr)
                    continue;
                if (tr->legal())
                    ++legal;
                else
                    ++illegal;
            }
        }
        std::printf("table %-10s %d states x %d events = %3d pairs "
                    "(%d actions, %d declared illegal)\n",
                    t.name(), t.numStates(), t.numEvents(),
                    t.numStates() * t.numEvents(), legal, illegal);
        if (verbose) {
            for (int s = 0; s < t.numStates(); ++s)
                for (int e = 0; e < t.numEvents(); ++e)
                    if (const ProtoTransition *tr = t.find(s, e))
                        std::printf("  (%s, %s) -> %s\n", t.stateName(s),
                                    t.eventName(e),
                                    tr->legal() ? "action"
                                                : tr->note);
        }
    }

    const auto diags = verifyProductionProtocol();
    for (const auto &d : diags) {
        std::fprintf(stderr, "protocol_check: %s\n",
                     d.toString().c_str());
        worst = 1;
    }

    // Check 5: fabric-level deadlock freedom across the supported
    // topologies, plus the negative control (a torus with the escape
    // VCs disabled MUST produce a cycle, or the check is vacuous).
    struct FabricCase {
        const char *label;
        TopologyKind kind;
        int w, h, conc;
        bool escape;
        bool expect_cycle;
    };
    const FabricCase fabrics[] = {
        {"mesh:8x8", TopologyKind::Mesh, 8, 8, 1, true, false},
        {"torus:8x8", TopologyKind::Torus, 8, 8, 1, true, false},
        {"cmesh:4x4x4", TopologyKind::CMesh, 4, 4, 4, true, false},
        {"torus:8x8 (no escape VCs)", TopologyKind::Torus, 8, 8, 1,
         false, true},
    };
    for (const FabricCase &fc : fabrics) {
        NocConfig noc;
        noc.topology = fc.kind;
        noc.meshWidth = fc.w;
        noc.meshHeight = fc.h;
        noc.concentration = fc.conc;
        noc.escapeVcs = fc.escape;
        const auto cd = verifyChannelDeps(*makeTopology(noc));
        const bool cyclic = !cd.empty();
        if (cyclic != fc.expect_cycle) {
            std::fprintf(stderr,
                         "protocol_check: channel-deps [%s]: expected "
                         "%s, got %s\n",
                         fc.label, fc.expect_cycle ? "a cycle" : "acyclic",
                         cyclic ? cd.front().toString().c_str()
                                : "acyclic");
            worst = 1;
        } else {
            std::printf("protocol_check: channel-deps %-26s %s\n",
                        fc.label,
                        cyclic ? "cycle detected (as expected)"
                               : "acyclic");
        }
    }
    if (worst == 0)
        std::printf("protocol_check: all checks passed "
                    "(coverage, vnet-graph, lco-hooks, reachability, "
                    "channel-deps)\n");
    return worst;
}

/** A tiny 2-state / 2-event table for seeding deliberate bugs. */
enum class TS { A, B };
enum class TE { X, Y };

const char *
tsName(int s)
{
    return s == 0 ? "A" : "B";
}

const char *
teName(int e)
{
    return e == 0 ? "X" : "Y";
}

int
teVnet(int)
{
    return VNET_REQUEST;
}

bool
anyDiagContains(const std::vector<ProtoDiagnostic> &diags,
                const char *needle)
{
    for (const auto &d : diags)
        if (d.toString().find(needle) != std::string::npos)
            return true;
    return false;
}

int
runSelfTest()
{
    int failures = 0;
    auto expect = [&failures](bool ok, const char *what) {
        if (!ok) {
            std::fprintf(stderr,
                         "protocol_check --self-test: FAILED: %s\n",
                         what);
            ++failures;
        } else {
            std::printf("protocol_check --self-test: ok: %s\n", what);
        }
    };

    // Seed 1: a hole in the coverage grid (B, Y missing).
    {
        TransitionTable<TS, TE> t(
            "selftest-hole", 2, 2, 0, tsName, teName, teVnet,
            {
                {0, 0, 0, {0}, {}, {}, nullptr},
                {0, 1, 0, {1}, {}, {}, nullptr},
                {1, 0, 0, {0}, {}, {}, nullptr},
            });
        expect(anyDiagContains(verifyCoverage(t),
                               "unhandled transition (B, Y)"),
               "coverage check flags the missing (B, Y) entry");
    }

    // Seed 2: a duplicate declaration (ambiguity).
    {
        TransitionTable<TS, TE> t(
            "selftest-dup", 2, 2, 0, tsName, teName, teVnet,
            {
                {0, 0, 0, {0}, {}, {}, nullptr},
                {0, 0, 1, {1}, {}, {}, nullptr},
                {0, 1, 0, {0}, {}, {}, nullptr},
                {1, 0, 0, {0}, {}, {}, nullptr},
                {1, 1, 0, {0}, {}, {}, nullptr},
            });
        expect(anyDiagContains(verifyCoverage(t),
                               "ambiguous transition (A, X)"),
               "coverage check flags the duplicate (A, X) entry");
    }

    // Seed 3: a request-class consumer that re-injects request-class
    // traffic without a relay annotation -- a 0 -> 0 self-dependency.
    {
        TransitionTable<TS, TE> t(
            "selftest-cycle", 2, 2, 0, tsName, teName, teVnet,
            {
                {0, 0, 0, {0}, {{CohMsgKind::GetX, false}}, {}, nullptr},
                {0, 1, 0, {0}, {}, {}, nullptr},
                {1, 0, 0, {0}, {}, {}, nullptr},
                {1, 1, 0, {0}, {}, {}, nullptr},
            });
        expect(anyDiagContains(verifyVnetGraph({&t}), "self-dependency"),
               "vnet check flags the unannotated same-class emission");
    }

    // Seed 4: a "relay" that actually hops to another message class.
    {
        TransitionTable<TS, TE> t(
            "selftest-relay", 2, 2, 0, tsName, teName, teVnet,
            {
                {0, 0, 0, {0}, {{CohMsgKind::Data, true}}, {}, nullptr},
                {0, 1, 0, {0}, {}, {}, nullptr},
                {1, 0, 0, {0}, {}, {}, nullptr},
                {1, 1, 0, {0}, {}, {}, nullptr},
            });
        expect(anyDiagContains(verifyVnetGraph({&t}), "crosses"),
               "vnet check flags a relay crossing message classes");
    }

    // Seed 5: an unknown LCO hook name.
    {
        TransitionTable<TS, TE> t(
            "selftest-hook", 2, 2, 0, tsName, teName, teVnet,
            {
                {0, 0, 0, {0}, {}, {"notAHook"}, nullptr},
                {0, 1, 0, {0}, {}, {}, nullptr},
                {1, 0, 0, {0}, {}, {}, nullptr},
                {1, 1, 0, {0}, {}, {}, nullptr},
            });
        expect(anyDiagContains(verifyLcoHooks({&t}),
                               "unknown LCO hook 'notAHook'"),
               "hook check flags an unknown hook name");
    }

    // Seed 6: state B is declared but no transition ever produces it.
    {
        TransitionTable<TS, TE> t(
            "selftest-dead", 2, 2, 0, tsName, teName, teVnet,
            {
                {0, 0, 0, {0}, {}, {}, nullptr},
                {0, 1, 0, {0}, {}, {}, nullptr},
                {1, 0, 0, {0}, {}, {}, nullptr},
                {1, 1, 0, {0}, {}, {}, nullptr},
            });
        expect(anyDiagContains(verifyReachability(t), "dead state B"),
               "reachability check flags the unreachable state B");
    }

    if (failures == 0)
        std::printf("protocol_check --self-test: all seeded bugs "
                    "detected\n");
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool self_test = false;
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--self-test") == 0) {
            self_test = true;
        } else if (std::strcmp(argv[i], "--verbose") == 0 ||
                   std::strcmp(argv[i], "-v") == 0) {
            verbose = true;
        } else {
            std::fprintf(stderr,
                         "usage: protocol_check [--self-test] "
                         "[--verbose]\n");
            return 2;
        }
    }
    int rc = runProduction(verbose);
    if (self_test && rc == 0)
        rc = runSelfTest();
    return rc;
}
