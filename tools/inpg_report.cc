/**
 * @file
 * inpg_report: cross-run differential reports over experiment ledgers
 * (JSONL files of RunRecords; see src/telemetry/run_record.hh).
 *
 * Usage:
 *   inpg_report diff A.jsonl B.jsonl [tolerance=0.02] [verbose=1]
 *       Pair runs by simulated configuration and report per-metric
 *       deltas. Exit 0 when every paired metric is within threshold,
 *       1 otherwise. Simulated counters compare exactly by default
 *       (the kernel is deterministic); host-time measurements are
 *       never compared.
 *
 *   inpg_report aggregate LEDGER.jsonl...
 *       Markdown paper-figure tables on stdout: the Fig-2 LCO share
 *       table, the LCO home/big-router invalidation split, and ROI
 *       speedup vs core count.
 *
 *   inpg_report regress FRESH.jsonl BASELINE.jsonl [tolerance=...]
 *       Pass/fail gate: every baseline configuration must appear in
 *       the fresh ledger with all metrics within threshold. Exit 0 on
 *       PASS, 1 on FAIL. Used by run_benches.sh --quick and ci.sh.
 *
 * Flags accept GNU spellings too (--tolerance=0.02).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/strutil.hh"
#include "telemetry/report.hh"

using namespace inpg;

namespace {

int
usage()
{
    std::fputs("usage: inpg_report diff A.jsonl B.jsonl "
               "[tolerance=R] [verbose=1]\n"
               "       inpg_report aggregate LEDGER.jsonl...\n"
               "       inpg_report regress FRESH.jsonl BASELINE.jsonl "
               "[tolerance=R]\n",
               stderr);
    return 2;
}

/** Split positional paths from key=value options. */
struct Args {
    std::vector<std::string> paths;
    ReportOptions opts;
    bool ok = true;
};

Args
parseArgs(int argc, char **argv, int first)
{
    Args a;
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        while (startsWith(arg, "-"))
            arg = arg.substr(1);
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
            a.paths.push_back(argv[i]);
            continue;
        }
        const std::string key = arg.substr(0, eq);
        const std::string val = arg.substr(eq + 1);
        if (key == "tolerance") {
            a.opts.tolerance = parseDouble(val);
        } else if (key == "verbose") {
            a.opts.verbose = parseBool(val);
        } else {
            std::fprintf(stderr, "inpg_report: unknown option '%s'\n",
                         argv[i]);
            a.ok = false;
        }
    }
    return a;
}

std::vector<RunRecord>
loadOrDie(const std::string &path, bool &ok)
{
    std::string err;
    std::vector<RunRecord> recs = ExperimentLedger::load(path, &err);
    if (!err.empty()) {
        std::fprintf(stderr, "inpg_report: %s\n", err.c_str());
        ok = false;
    }
    return recs;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    if (cmd == "diff" || cmd == "regress") {
        Args a = parseArgs(argc, argv, 2);
        if (!a.ok || a.paths.size() != 2)
            return usage();
        bool ok = true;
        const auto first = loadOrDie(a.paths[0], ok);
        const auto second = loadOrDie(a.paths[1], ok);
        if (!ok)
            return 2;
        if (cmd == "diff") {
            const DiffResult d = diffLedgers(first, second, a.opts);
            std::fputs(d.render(a.opts).c_str(), stdout);
            return d.identical() ? 0 : 1;
        }
        const RegressResult r = regressLedger(first, second, a.opts);
        std::fputs(r.render(a.opts).c_str(), stdout);
        return r.pass ? 0 : 1;
    }

    if (cmd == "aggregate") {
        Args a = parseArgs(argc, argv, 2);
        if (!a.ok || a.paths.empty())
            return usage();
        bool ok = true;
        std::vector<RunRecord> all;
        for (const std::string &p : a.paths) {
            auto recs = loadOrDie(p, ok);
            for (auto &r : recs)
                all.push_back(std::move(r));
        }
        if (!ok)
            return 2;
        std::fputs(aggregateReport(all).c_str(), stdout);
        return 0;
    }

    return usage();
}
