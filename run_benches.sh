#!/bin/sh
# Regenerate every paper table/figure (see README).
# --quick:    only the perf smokes (bench_micro --json): kernel
#             fast-forward A/B and busy hot-path A/B, refreshing
#             build/BENCH_*.json and the tracked repo-root copies,
#             plus the experiment-ledger regression gate: a fresh
#             mini-sweep is appended to build/BENCH_ledger.jsonl and
#             checked with `inpg_report regress` against the committed
#             sweeps/BASELINE_ledger.jsonl (see EXPERIMENTS.md for the
#             regeneration recipe when simulated behavior changes
#             intentionally).
# --ledger-out=PATH (any position): experiment ledger to append runs
#             to; default sweeps/ledger.jsonl. Exported to benches as
#             INPG_LEDGER_PATH and stamped into BENCH_*.json meta.
# --sanitize: configure + build + ctest under ASan/UBSan in
#             build-asan/ (exercises the raw-storage containers and
#             callback small-buffer code under the sanitizers).
# --tsan:     configure + build under ThreadSanitizer in build-tsan/
#             and run the threaded suites (parallel simulation
#             kernel, sweep-runner pool, the thread-safe Trace sink,
#             determinism harness).
repo_root=$(dirname "$0")
# Provenance for BENCH_*.json: bench_micro stamps its output with this
# SHA (plus a dirty flag) so perf numbers stay attributable to a
# commit. A pre-set INPG_GIT_SHA that disagrees with the checkout is a
# stale-provenance bug -- refuse to stamp numbers with the wrong SHA.
head_sha=$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null \
           || echo unknown)
if [ -n "$INPG_GIT_SHA" ] && [ "$INPG_GIT_SHA" != "$head_sha" ]; then
    echo "run_benches.sh: INPG_GIT_SHA=$INPG_GIT_SHA does not match" \
         "git HEAD ($head_sha); refusing to stamp stale provenance" >&2
    exit 1
fi
INPG_GIT_SHA=$head_sha
export INPG_GIT_SHA
if [ "$head_sha" != "unknown" ] && \
   ! git -C "$repo_root" diff --quiet HEAD -- 2>/dev/null; then
    INPG_GIT_DIRTY=1
else
    INPG_GIT_DIRTY=0
fi
export INPG_GIT_DIRTY
# Experiment ledger (JSONL of RunRecords; tools/inpg_report consumes
# it). --ledger-out may appear at any argument position; it is consumed
# here (rotated out of $@) and not forwarded to the benches.
INPG_LEDGER_PATH="$repo_root/sweeps/ledger.jsonl"
for arg in "$@"; do
    shift
    case "$arg" in
        --ledger-out=*) INPG_LEDGER_PATH=${arg#--ledger-out=} ;;
        *) set -- "$@" "$arg" ;;
    esac
done
export INPG_LEDGER_PATH
mkdir -p "$(dirname "$INPG_LEDGER_PATH")"
if [ "$1" = "--sanitize" ]; then
    set -e
    cmake -B "$repo_root/build-asan" -S "$repo_root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DINPG_SANITIZE=ON
    cmake --build "$repo_root/build-asan" -j "$(nproc)"
    cd "$repo_root/build-asan"
    exec ctest --output-on-failure -j "$(nproc)"
fi
if [ "$1" = "--tsan" ]; then
    set -e
    cmake -B "$repo_root/build-tsan" -S "$repo_root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DINPG_SANITIZE=tsan
    cmake --build "$repo_root/build-tsan" -j "$(nproc)" \
        --target inpg_tests
    cd "$repo_root/build-tsan"
    # The race-prone surface: the parallel simulation kernel's barrier
    # discipline, the sweep runner's worker pool and the
    # mutex-serialized Trace sink (plus the determinism fingerprints,
    # which would surface any cross-thread state bleed as a mismatch).
    exec ctest --output-on-failure -R 'Parallel|Sweep|Trace|Determinism'
fi
if [ "$1" = "--quick" ]; then
    set -e
    "$repo_root"/build/bench/bench_micro --json \
        --out "$repo_root"/build/BENCH_kernel.json \
        --hotpath-out "$repo_root"/build/BENCH_hotpath.json
    # Gate before refreshing the committed copy: the fresh hotpath
    # numbers must be bit-identical and within 5% of the committed
    # baseline's optimized events/sec. Catches silent perf regressions
    # (and any fast/reference divergence) at bench time, not review
    # time.
    python3 - "$repo_root"/BENCH_hotpath.json \
        "$repo_root"/build/BENCH_hotpath.json <<'EOF'
import json, sys
old_path, new_path = sys.argv[1], sys.argv[2]
new = json.load(open(new_path))
if new.get("bit_identical") is not True:
    sys.exit("FAIL: BENCH_hotpath.json has bit_identical: false -- "
             "the optimized hot path changed simulated results")
for fabric, row in new.get("topology", {}).items():
    if row.get("bit_identical_threads2") is not True:
        sys.exit("FAIL: fabric %s diverged between the serial and "
                 "threads=2 kernels (topology section)" % fabric)
try:
    old = json.load(open(old_path))
except FileNotFoundError:
    print("hotpath gate: no committed baseline; skipping perf check")
    sys.exit(0)
old_eps = old["runs"]["optimized"]["events_per_sec"]
new_eps = new["runs"]["optimized"]["events_per_sec"]
ratio = new_eps / old_eps if old_eps else float("inf")
print("hotpath gate: optimized %.0f -> %.0f events/sec (%.2fx)"
      % (old_eps, new_eps, ratio))
if ratio < 0.95:
    sys.exit("FAIL: optimized hot path regressed >5%% vs the "
             "committed BENCH_hotpath.json (%.0f -> %.0f events/sec); "
             "fix the regression or regenerate the baseline knowingly"
             % (old_eps, new_eps))
EOF
    # Experiment-ledger regression gate: re-run the baseline's
    # mini-sweep (freq under all four mechanisms on mesh:4x4; the exact
    # invocation EXPERIMENTS.md documents for regenerating
    # sweeps/BASELINE_ledger.jsonl) into a fresh ledger and require
    # every committed metric to reproduce bit-exactly. The kernel is
    # deterministic, so any delta is a real behavior change.
    fresh="$repo_root"/build/BENCH_ledger.jsonl
    rm -f "$fresh"
    "$repo_root"/build/tools/inpg_sim benchmark=freq all_mechanisms=1 \
        topology=mesh:4x4 cs_scale=0.05 \
        --ledger-out="$fresh" > /dev/null
    if [ -f "$repo_root"/sweeps/BASELINE_ledger.jsonl ]; then
        "$repo_root"/build/tools/inpg_report regress "$fresh" \
            "$repo_root"/sweeps/BASELINE_ledger.jsonl
    else
        echo "ledger gate: no committed baseline; skipping regress check"
    fi
    # The gated runs join the append-only history ledger.
    cat "$fresh" >> "$INPG_LEDGER_PATH"
    # Keep the perf trajectory visible at the repo root (committed).
    cp "$repo_root"/build/BENCH_kernel.json \
       "$repo_root"/build/BENCH_hotpath.json "$repo_root"/
    exit 0
fi
for b in "$repo_root"/build/bench/bench_*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "################################################################"
    echo "### $b"
    echo "################################################################"
    "$b" "$@"
    echo
done
