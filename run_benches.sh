#!/bin/sh
# Regenerate every paper table/figure (see README).
for b in build/bench/bench_*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "################################################################"
    echo "### $b"
    echo "################################################################"
    "$b" "$@"
    echo
done
