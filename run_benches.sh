#!/bin/sh
# Regenerate every paper table/figure (see README).
# --quick: only the kernel perf smoke (bench_micro --json), writing
#          build/BENCH_kernel.json.
if [ "$1" = "--quick" ]; then
    exec build/bench/bench_micro --json --out build/BENCH_kernel.json
fi
for b in build/bench/bench_*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "################################################################"
    echo "### $b"
    echo "################################################################"
    "$b" "$@"
    echo
done
