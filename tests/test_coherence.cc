/**
 * @file
 * Directory MOESI protocol tests: transitions, atomicity, invariants.
 */

#include <gtest/gtest.h>

#include <set>

#include "coh/coherent_system.hh"
#include "coh/golden_memory.hh"
#include "common/rng.hh"
#include "sim/simulator.hh"

namespace inpg {
namespace {

struct CohHarness {
    explicit CohHarness(int w = 4, int h = 4)
    {
        nocCfg.meshWidth = w;
        nocCfg.meshHeight = h;
        sys = std::make_unique<CoherentSystem>(nocCfg, cohCfg, sim);
        sys->setOpLog([this](const OpRecord &r) { golden.record(r); });
    }

    /** Run until `done` or fail the test on timeout. */
    void
    runUntil(const std::function<bool()> &done, Cycle max = 100000)
    {
        ASSERT_TRUE(sim.runUntil(done, max)) << "timeout at cycle "
                                             << sim.now();
    }

    NocConfig nocCfg;
    CohConfig cohCfg;
    Simulator sim;
    std::unique_ptr<CoherentSystem> sys;
    GoldenMemory golden;
};

TEST(Coherence, ColdLoadReturnsInitialValueAndGrantsE)
{
    CohHarness h;
    Addr a = h.cohCfg.lineHomedAt(5);
    h.sys->directory(5).initValue(a, 77);

    bool done = false;
    std::uint64_t got = 0;
    h.sys->l1(0).issueLoad(a, false, [&](std::uint64_t v) {
        got = v;
        done = true;
    });
    h.runUntil([&] { return done; });
    EXPECT_EQ(got, 77u);
    EXPECT_EQ(h.sys->l1(0).lineState(a), L1State::E);
    const auto *e = h.sys->directory(5).entry(a);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->owner, 0);
}

TEST(Coherence, StoreAfterExclusiveLoadHitsLocally)
{
    CohHarness h;
    Addr a = h.cohCfg.lineHomedAt(3);
    bool done = false;
    h.sys->l1(1).issueLoad(a, false, [&](std::uint64_t) {
        h.sys->l1(1).issueStore(a, 42, false,
                                [&](std::uint64_t) { done = true; });
    });
    h.runUntil([&] { return done; });
    EXPECT_EQ(h.sys->l1(1).lineState(a), L1State::M);
    EXPECT_EQ(h.sys->l1(1).lineValue(a), 42u);
    // The store hit locally: no GetX reached the home.
    EXPECT_EQ(h.sys->directory(3).stats.value("getx"), 0u);
}

TEST(Coherence, SecondReaderSharesViaOwnerForward)
{
    CohHarness h;
    Addr a = h.cohCfg.lineHomedAt(0);
    h.sys->directory(0).initValue(a, 9);
    int done = 0;
    std::uint64_t v1 = 0;
    h.sys->l1(2).issueLoad(a, false, [&](std::uint64_t) { ++done; });
    h.runUntil([&] { return done == 1; });
    h.sys->l1(7).issueLoad(a, false, [&](std::uint64_t v) {
        v1 = v;
        ++done;
    });
    h.runUntil([&] { return done == 2; });
    EXPECT_EQ(v1, 9u);
    EXPECT_EQ(h.sys->l1(2).lineState(a), L1State::O);
    EXPECT_EQ(h.sys->l1(7).lineState(a), L1State::S);
    EXPECT_EQ(h.sys->checkSwmr(a), "");
}

TEST(Coherence, WriterInvalidatesSharers)
{
    CohHarness h;
    Addr a = h.cohCfg.lineHomedAt(6);
    int loads = 0;
    for (CoreId c : {1, 2, 3}) {
        h.sys->l1(c).issueLoad(a, false, [&](std::uint64_t) { ++loads; });
        h.runUntil([&, c] { return loads == c; });
    }
    bool stored = false;
    h.sys->l1(4).issueStore(a, 5, false,
                            [&](std::uint64_t) { stored = true; });
    h.runUntil([&] { return stored; });
    EXPECT_EQ(h.sys->l1(4).lineState(a), L1State::M);
    EXPECT_EQ(h.sys->l1(2).lineState(a), L1State::I);
    EXPECT_EQ(h.sys->l1(3).lineState(a), L1State::I);
    EXPECT_EQ(h.sys->checkSwmr(a), "");
    EXPECT_EQ(h.golden.verify(), "");
}

TEST(Coherence, SwapCompetitionHasExactlyOneWinner)
{
    CohHarness h;
    Addr a = h.cohCfg.lineHomedAt(10);
    const int n = 16;
    int completions = 0;
    int winners = 0;
    // All cores read first (building a full sharer set), then swap.
    int reads = 0;
    for (CoreId c = 0; c < n; ++c)
        h.sys->l1(c).issueLoad(a, true, [&](std::uint64_t) { ++reads; });
    h.runUntil([&] { return reads == n; });
    for (CoreId c = 0; c < n; ++c) {
        h.sys->l1(c).issueAtomic(a, AtomicOp::Swap, 1, 0, true,
                                 [&](std::uint64_t old, bool) {
                                     if (old == 0)
                                         ++winners;
                                     ++completions;
                                 });
    }
    h.runUntil([&] { return completions == n; });
    EXPECT_EQ(winners, 1);
    EXPECT_EQ(h.golden.verify(), "");
    EXPECT_EQ(h.sys->checkSwmr(a), "");
}

TEST(Coherence, FetchAddYieldsPermutation)
{
    CohHarness h;
    Addr a = h.cohCfg.lineHomedAt(12);
    const int n = 16;
    std::set<std::uint64_t> seen;
    int completions = 0;
    for (CoreId c = 0; c < n; ++c) {
        h.sys->l1(c).issueAtomic(a, AtomicOp::FetchAdd, 1, 0, false,
                                 [&](std::uint64_t old, bool) {
                                     seen.insert(old);
                                     ++completions;
                                 });
    }
    h.runUntil([&] { return completions == n; });
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), static_cast<std::uint64_t>(n - 1));
    const auto *e = h.sys->homeOf(a).entry(a);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(h.golden.finalValue(a), static_cast<std::uint64_t>(n));
    EXPECT_EQ(h.golden.verify(), "");
}

TEST(Coherence, CasOnlySucceedsOnExpectedValue)
{
    CohHarness h;
    Addr a = h.cohCfg.lineHomedAt(1);
    int completions = 0;
    int successes = 0;
    for (CoreId c = 0; c < 8; ++c) {
        h.sys->l1(c).issueAtomic(a, AtomicOp::Cas, 0, 100 + c, false,
                                 [&](std::uint64_t old, bool) {
                                     if (old == 0)
                                         ++successes;
                                     ++completions;
                                 });
    }
    h.runUntil([&] { return completions == 8; });
    EXPECT_EQ(successes, 1);
    EXPECT_EQ(h.golden.verify(), "");
}

/** Random op soup across cores/addresses with invariant sampling. */
class CoherenceRandomTest : public ::testing::TestWithParam<int>
{};

TEST_P(CoherenceRandomTest, RandomOpsKeepInvariants)
{
    CohHarness h;
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const int n_cores = 16;
    const int n_addrs = 4;
    std::vector<Addr> addrs;
    for (int i = 0; i < n_addrs; ++i)
        addrs.push_back(
            h.cohCfg.lineHomedAt(static_cast<NodeId>(rng.nextBounded(16))));

    const int ops_per_core = 30;
    std::vector<int> remaining(n_cores, ops_per_core);
    int active = n_cores;

    // Each core issues a random op chain; completion triggers the next.
    std::function<void(CoreId)> next = [&](CoreId c) {
        if (remaining[static_cast<std::size_t>(c)]-- <= 0) {
            --active;
            return;
        }
        Addr a = addrs[rng.nextBounded(static_cast<std::uint64_t>(
            n_addrs))];
        switch (rng.nextBounded(4)) {
          case 0:
            h.sys->l1(c).issueLoad(a, false,
                                   [&next, c](std::uint64_t) { next(c); });
            break;
          case 1:
            h.sys->l1(c).issueStore(a, rng.nextBounded(100), false,
                                    [&next, c](std::uint64_t) { next(c); });
            break;
          case 2:
            h.sys->l1(c).issueAtomic(
                a, AtomicOp::FetchAdd, 1, 0, false,
                [&next, c](std::uint64_t, bool) { next(c); });
            break;
          default:
            h.sys->l1(c).issueAtomic(
                a, AtomicOp::Swap, rng.nextBounded(100), 0, false,
                [&next, c](std::uint64_t, bool) { next(c); });
            break;
        }
    };
    for (CoreId c = 0; c < n_cores; ++c)
        next(c);

    while (active > 0) {
        h.sim.step();
        // SWMR must hold at every cycle, including transient windows.
        for (Addr a : addrs)
            ASSERT_EQ(h.sys->checkSwmr(a), "") << "cycle " << h.sim.now();
        ASSERT_LT(h.sim.now(), 300000u) << "random soup deadlocked";
    }
    EXPECT_EQ(h.golden.verify(), "");
    EXPECT_EQ(h.golden.size(),
              static_cast<std::size_t>(n_cores * ops_per_core));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceRandomTest,
                         ::testing::Range(1, 9));

} // namespace
} // namespace inpg
