/**
 * @file
 * Telemetry subsystem tests: the LCO attribution tiling invariant
 * (leg sum == end-to-end acquire latency, exactly), the TAS-vs-MCS
 * attribution ordering of Figure 2, packet-lifetime accounting,
 * trace-sink capping, the stats snapshot document, the ImplMode
 * config collapse, and that enabling telemetry never changes
 * simulated results.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/system.hh"
#include "workload/benchmark_profile.hh"
#include "workload/workload.hh"

namespace inpg {
namespace {

/** One instrumented run; keeps the tracker state alive for asserts. */
struct LcoRun {
    std::vector<LcoAcquireRecord> records;
    LcoSummary summary;
    Cycle roi = 0;
    std::uint64_t lockCohCycles = 0;
    std::uint64_t csCompleted = 0;
};

LcoRun
runWithLco(LockKind kind, Mechanism mech = Mechanism::Original,
           const char *bench = "face", double cs_scale = 0.01,
           int num_locks = 0)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = 4;
    cfg.noc.meshHeight = 4;
    cfg.lockKind = kind;
    cfg.mechanism = mech;
    cfg.telemetry.lco = true;
    cfg.finalize();
    System system(cfg);

    Workload::Params wp;
    wp.profile = benchmarkByName(bench);
    if (num_locks > 0)
        wp.profile.numLocks = num_locks;
    wp.threads = cfg.numCores();
    wp.csScale = cs_scale;
    wp.lockKind = kind;
    wp.seed = 1;
    Workload w(wp, system.coherent(), system.locks(), system.sim());
    w.start();
    system.runUntil([&] { return w.done(); });

    LcoRun out;
    LcoTracker *lco = system.telemetry()->lco;
    out.records = lco->records();
    out.summary = lco->summary();
    out.roi = w.roiFinish();
    out.csCompleted = w.csCompleted();
    for (int c = 0; c < cfg.numCores(); ++c)
        out.lockCohCycles +=
            system.coherent().l1(c).stats.value("lock_coh_cycles");
    return out;
}

/** Coherence-protocol share of the attributed acquire time. */
double
cohShare(const LcoSummary &s)
{
    const Cycle coh = s.legs.l1Access + s.legs.reqNetwork +
                      s.legs.dirService + s.legs.respNetwork +
                      s.legs.invAckWait;
    return s.totalLatency
               ? static_cast<double>(coh) /
                     static_cast<double>(s.totalLatency)
               : 0;
}

TEST(LcoAttribution, LegsTileEveryAcquireExactly_Tas)
{
    LcoRun r = runWithLco(LockKind::Tas);
    ASSERT_GT(r.records.size(), 0u);
    for (const auto &rec : r.records)
        ASSERT_EQ(rec.legs.sum(), rec.latency())
            << "thread " << rec.thread << " acquire at " << rec.start;
    EXPECT_EQ(r.summary.legs.sum(), r.summary.totalLatency);
    EXPECT_EQ(r.summary.acquires, r.csCompleted);
}

TEST(LcoAttribution, LegsTileEveryAcquireExactly_Mcs)
{
    LcoRun r = runWithLco(LockKind::Mcs);
    ASSERT_GT(r.records.size(), 0u);
    for (const auto &rec : r.records)
        ASSERT_EQ(rec.legs.sum(), rec.latency())
            << "thread " << rec.thread << " acquire at " << rec.start;
    EXPECT_EQ(r.summary.legs.sum(), r.summary.totalLatency);
}

TEST(LcoAttribution, LegsTileEveryAcquireExactly_QslWithSleeps)
{
    // QSL exercises the sleep legs; the tiling must still be exact.
    LcoRun r = runWithLco(LockKind::Qsl);
    ASSERT_GT(r.records.size(), 0u);
    for (const auto &rec : r.records)
        ASSERT_EQ(rec.legs.sum(), rec.latency());
    EXPECT_EQ(r.summary.legs.sum(), r.summary.totalLatency);
}

TEST(LcoAttribution, TasVsMcsOrderingMatchesFig02)
{
    // Figure 2: TAS has the highest lock-coherence share, MCS among
    // the lowest. The attribution must reproduce that ordering, and
    // agree with the independent L1-side lock_coh_cycles accounting.
    // Like bench_fig02_lco, concentrate all threads on a single lock
    // so contention (which is what separates the two) dominates.
    LcoRun tas = runWithLco(LockKind::Tas, Mechanism::Original, "face",
                            0.01, 1);
    LcoRun mcs = runWithLco(LockKind::Mcs, Mechanism::Original, "face",
                            0.01, 1);
    ASSERT_GT(tas.summary.acquires, 0u);
    ASSERT_GT(mcs.summary.acquires, 0u);

    const double tas_attr =
        static_cast<double>(tas.summary.totalLatency) * cohShare(
            tas.summary);
    const double mcs_attr =
        static_cast<double>(mcs.summary.totalLatency) * cohShare(
            mcs.summary);
    EXPECT_GT(tas_attr, mcs_attr);
    EXPECT_GT(tas.lockCohCycles, mcs.lockCohCycles);
}

TEST(LcoAttribution, InpgMarksEarlyInvalidatedAcquires)
{
    LcoRun r = runWithLco(LockKind::Tas, Mechanism::Inpg);
    EXPECT_GT(r.summary.acquiresWithEarlyInv, 0u);
    EXPECT_GT(r.summary.earlyInvAcks + r.summary.homeInvAcks, 0u);
}

TEST(Telemetry, EnablingItNeverChangesSimulatedResults)
{
    auto fingerprint = [](bool telemetry_on) {
        SystemConfig cfg;
        cfg.noc.meshWidth = 4;
        cfg.noc.meshHeight = 4;
        cfg.lockKind = LockKind::Tas;
        cfg.mechanism = Mechanism::Inpg;
        if (telemetry_on)
            cfg.telemetry.applySpec("all");
        cfg.finalize();
        System system(cfg);
        Workload::Params wp;
        wp.profile = benchmarkByName("face");
        wp.threads = cfg.numCores();
        wp.csScale = 0.01;
        wp.lockKind = cfg.lockKind;
        wp.seed = 3;
        Workload w(wp, system.coherent(), system.locks(),
                   system.sim());
        w.start();
        system.runUntil([&] { return w.done(); });
        std::uint64_t l1_sum = 0;
        for (int c = 0; c < cfg.numCores(); ++c)
            for (const auto &kv :
                 system.coherent().l1(c).stats.allCounters())
                l1_sum += kv.second;
        return std::make_tuple(w.roiFinish(), w.csCompleted(), l1_sum,
                               system.totalEarlyInvs());
    };
    EXPECT_EQ(fingerprint(false), fingerprint(true));
}

TEST(Telemetry, ConfigSpecParsing)
{
    TelemetryConfig tc;
    EXPECT_FALSE(tc.any());
    tc.applySpec("lco,trace");
    EXPECT_TRUE(tc.lco);
    EXPECT_TRUE(tc.traceEvents);
    EXPECT_FALSE(tc.packets);
    tc.applySpec("all");
    EXPECT_TRUE(tc.packets && tc.kernel);
    tc.applySpec("off");
    EXPECT_FALSE(tc.any());
    tc.applySpec("kernel,unknown-token");
    EXPECT_TRUE(tc.kernel);
    EXPECT_FALSE(tc.lco);
}

TEST(PacketLifetime, QueueAndNetworkLegsSumToTotalLatency)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = 4;
    cfg.noc.meshHeight = 4;
    cfg.telemetry.packets = true;
    cfg.finalize();
    System system(cfg);
    Workload::Params wp;
    wp.profile = benchmarkByName("freq");
    wp.threads = cfg.numCores();
    wp.csScale = 0.005;
    wp.lockKind = cfg.lockKind;
    Workload w(wp, system.coherent(), system.locks(), system.sim());
    w.start();
    system.runUntil([&] { return w.done(); });

    const StatGroup &ps = system.telemetry()->packets->statGroup();
    ASSERT_GT(ps.value("packets_completed"), 0u);
    EXPECT_EQ(ps.value("packets_tracked"),
              ps.value("packets_completed") +
                  system.telemetry()->packets->inFlight());
    EXPECT_DOUBLE_EQ(ps.sampleValue("queue_wait").sum() +
                         ps.sampleValue("net_latency").sum(),
                     ps.sampleValue("total_latency").sum());
    EXPECT_GE(ps.sampleValue("hops").min(), 1.0);
}

TEST(TraceEvents, SinkCapsAndCounts)
{
    TraceEventSink sink(/*max_events=*/3);
    sink.duration(TrackGroup::Routers, 0, "a", 10, 5);
    sink.instant(TrackGroup::Routers, 0, "b", 12);
    sink.duration(TrackGroup::Threads, 1, "c", 14, 2);
    sink.instant(TrackGroup::Threads, 1, "d", 20); // over the cap
    EXPECT_EQ(sink.eventCount(), 3u);
    EXPECT_EQ(sink.droppedCount(), 1u);
    const std::string json = sink.writeJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_EQ(json.find("\"name\":\"d\""), std::string::npos);
}

TEST(StatsSnapshot, DocumentHasAllSections)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = 2;
    cfg.noc.meshHeight = 2;
    cfg.telemetry.applySpec("all");
    cfg.finalize();
    System system(cfg);
    system.locks().createLock(LockKind::Tas, cfg.numCores());
    system.sim().run(50);

    StatsRegistry reg = system.buildStatsRegistry();
    EXPECT_GT(reg.groupCount(), 0u);
    JsonValue snap = system.statsSnapshot();
    const std::string text = snap.dump();
    EXPECT_NE(text.find("\"groups\""), std::string::npos);
    EXPECT_NE(text.find("\"scalars\""), std::string::npos);
    EXPECT_NE(text.find("\"histograms\""), std::string::npos);
    EXPECT_NE(text.find("\"lco\""), std::string::npos);
    EXPECT_NE(text.find("\"sim.cycles\""), std::string::npos);
    EXPECT_NE(text.find("\"l1.0\""), std::string::npos);
    EXPECT_NE(text.find("lock.") , std::string::npos);
}

TEST(Json, BuilderEmitsValidDocuments)
{
    JsonValue doc = JsonValue::object();
    doc["int"] = -3;
    doc["uint"] = static_cast<std::uint64_t>(1) << 40;
    doc["str"] = "a\"b\\c\n\t";
    doc["bool"] = true;
    doc["null"];
    doc["arr"].push(1);
    doc["arr"].push("two");
    doc["nested"]["x"] = 0.5;
    EXPECT_EQ(doc.dump(),
              "{\"int\":-3,\"uint\":1099511627776,"
              "\"str\":\"a\\\"b\\\\c\\n\\t\",\"bool\":true,"
              "\"null\":null,\"arr\":[1,\"two\"],"
              "\"nested\":{\"x\":0.5}}");
}

TEST(KernelProfile, RecordsCyclesAndFastForwardSkips)
{
    TelemetryConfig tc;
    tc.kernel = true;
    Telemetry telem(tc, 1);
    Simulator sim;
    sim.setTelemetry(&telem);
    bool fired = false;
    sim.scheduleIn(500, [&] { fired = true; });
    sim.run(600); // idle span fast-forwards to the event
    EXPECT_TRUE(fired);
    EXPECT_GT(telem.kernel->eventsPerCycleHist().count(), 0u);
    EXPECT_GT(telem.kernel->ffSkipHist().count(), 0u);
    EXPECT_GE(telem.kernel->ffSkipHist().max(), 400u);
}

TEST(ImplMode, ReferenceCollapsesAllStructureToggles)
{
    SystemConfig cfg;
    cfg.impl = ImplMode::Reference;
    cfg.finalize();
    EXPECT_FALSE(cfg.noc.precomputeRoutes);
    EXPECT_FALSE(cfg.noc.fastAllocScan);
    EXPECT_FALSE(cfg.noc.soaVcState);
    EXPECT_FALSE(cfg.coh.flatContainers);

    // Fast (the default) leaves hand-set toggles alone so the
    // determinism A/B tests can still drive individual flags.
    SystemConfig fast;
    fast.noc.precomputeRoutes = false;
    fast.finalize();
    EXPECT_FALSE(fast.noc.precomputeRoutes);
    EXPECT_TRUE(fast.noc.fastAllocScan);
}

TEST(ImplMode, EnvironmentOverrideWins)
{
    ::setenv("INPG_IMPL", "reference", 1);
    SystemConfig cfg;
    cfg.impl = ImplMode::Fast;
    cfg.finalize();
    ::unsetenv("INPG_IMPL");
    EXPECT_EQ(cfg.impl, ImplMode::Reference);
    EXPECT_FALSE(cfg.noc.precomputeRoutes);
    EXPECT_FALSE(cfg.coh.flatContainers);
}

TEST(ImplMode, FastAndReferenceAreBitIdentical)
{
    auto run = [](ImplMode impl) {
        RunConfig rc;
        rc.profile = benchmarkByName("freq");
        rc.system.noc.meshWidth = 4;
        rc.system.noc.meshHeight = 4;
        rc.system.lockKind = LockKind::Mcs;
        rc.system.impl = impl;
        rc.csScale = 0.005;
        RunResult r = runBenchmark(rc);
        return std::make_tuple(r.roiCycles, r.csCompleted,
                               r.lockCohCycles);
    };
    EXPECT_EQ(run(ImplMode::Fast), run(ImplMode::Reference));
}

} // namespace
} // namespace inpg
