/**
 * @file
 * iNPG tests: locking barrier table mechanics, big-router deployment,
 * protocol transparency (all coherence invariants hold with big
 * routers), and early-invalidation effectiveness under contention.
 */

#include <gtest/gtest.h>

#include <set>

#include "coh/coherent_system.hh"
#include "coh/golden_memory.hh"
#include "common/rng.hh"
#include "inpg/big_router.hh"
#include "inpg/lock_barrier_table.hh"
#include "sim/simulator.hh"

namespace inpg {
namespace {

// ---------------------------------------------------------------------
// LockBarrierTable unit tests
// ---------------------------------------------------------------------

TEST(BarrierTable, CreateAndFind)
{
    LockBarrierTable t(4, 4, 128);
    EXPECT_FALSE(t.hasBarrier(0x100, 0));
    EXPECT_TRUE(t.createBarrier(0x100, 0));
    EXPECT_TRUE(t.hasBarrier(0x100, 10));
    EXPECT_EQ(t.numBarriers(), 1u);
    // Idempotent creation.
    EXPECT_TRUE(t.createBarrier(0x100, 5));
    EXPECT_EQ(t.numBarriers(), 1u);
}

TEST(BarrierTable, TtlExpiresIdleBarrier)
{
    LockBarrierTable t(4, 4, 128);
    t.createBarrier(0x100, 0);
    EXPECT_TRUE(t.hasBarrier(0x100, 127));
    EXPECT_FALSE(t.hasBarrier(0x100, 128));
    EXPECT_EQ(t.numBarriers(), 0u);
}

TEST(BarrierTable, EiEntryResetsTtl)
{
    LockBarrierTable t(4, 4, 128);
    t.createBarrier(0x100, 0);
    ASSERT_TRUE(t.addEi(0x100, 3, 100));
    // With a live EI the barrier cannot expire, ever.
    EXPECT_TRUE(t.hasBarrier(0x100, 100000));
    // Completing the EI restarts the countdown from that point.
    EXPECT_TRUE(t.completeEi(0x100, 3, 100000));
    EXPECT_TRUE(t.hasBarrier(0x100, 100127));
    EXPECT_FALSE(t.hasBarrier(0x100, 100128));
}

TEST(BarrierTable, CapacityLimits)
{
    LockBarrierTable t(2, 2, 128);
    EXPECT_TRUE(t.createBarrier(0x100, 0));
    EXPECT_TRUE(t.createBarrier(0x200, 0));
    EXPECT_FALSE(t.createBarrier(0x300, 0)); // table full
    ASSERT_TRUE(t.addEi(0x100, 1, 0));
    ASSERT_TRUE(t.addEi(0x100, 2, 0));
    EXPECT_FALSE(t.addEi(0x100, 3, 0)); // EI list full
    EXPECT_FALSE(t.addEi(0x100, 1, 0)); // duplicate core refused
    EXPECT_FALSE(t.addEi(0x400, 1, 0)); // no barrier
}

TEST(BarrierTable, CompleteUnknownEiIsStale)
{
    LockBarrierTable t(2, 2, 128);
    t.createBarrier(0x100, 0);
    EXPECT_FALSE(t.completeEi(0x100, 9, 1));
    EXPECT_FALSE(t.completeEi(0x999, 1, 1));
}

// ---------------------------------------------------------------------
// Deployment helper
// ---------------------------------------------------------------------

TEST(Deployment, CountsAreExact)
{
    for (int count : {0, 4, 16, 32, 64}) {
        int marked = 0;
        for (NodeId n = 0; n < 64; ++n)
            marked += isBigRouterNode(n, 8, 8, count) ? 1 : 0;
        EXPECT_EQ(marked, count) << "count=" << count;
    }
}

TEST(Deployment, HalfPopulationIsCheckerboard)
{
    for (NodeId n = 0; n < 64; ++n) {
        int x = n % 8;
        int y = n / 8;
        EXPECT_EQ(isBigRouterNode(n, 8, 8, 32), (x + y) % 2 == 1);
    }
}

// ---------------------------------------------------------------------
// Full-system transparency & effectiveness
// ---------------------------------------------------------------------

struct InpgHarness {
    explicit InpgHarness(int big_routers, int w = 4, int h = 4)
    {
        nocCfg.meshWidth = w;
        nocCfg.meshHeight = h;
        inpgCfg.numBigRouters = big_routers;
        sys = std::make_unique<CoherentSystem>(
            nocCfg, cohCfg, sim, makeInpgRouterFactory(inpgCfg, cohCfg));
        sys->setOpLog([this](const OpRecord &r) { golden.record(r); });
    }

    std::uint64_t
    totalEarlyInvs()
    {
        std::uint64_t total = 0;
        for (NodeId n = 0; n < sys->network().numRouters(); ++n) {
            auto *br = dynamic_cast<BigRouter *>(&sys->network().router(n));
            if (br)
                total += br->generator().stats.value(
                    "early_invs_generated");
        }
        return total;
    }

    NocConfig nocCfg;
    CohConfig cohCfg;
    InpgConfig inpgCfg;
    Simulator sim;
    std::unique_ptr<CoherentSystem> sys;
    GoldenMemory golden;
};

/** Heavy lock contention: load then swap from every core, repeatedly. */
static void
runLockStorm(InpgHarness &h, Addr lock, int rounds_per_core,
             int n_cores)
{
    std::vector<int> remaining(static_cast<std::size_t>(n_cores),
                               rounds_per_core);
    int active = n_cores;
    std::function<void(CoreId)> spin = [&](CoreId c) {
        if (remaining[static_cast<std::size_t>(c)]-- <= 0) {
            --active;
            return;
        }
        h.sys->l1(c).issueLoad(lock, true, [&, c](std::uint64_t) {
            h.sys->l1(c).issueAtomic(lock, AtomicOp::Swap, 1, 0, true,
                                     [&, c](std::uint64_t old, bool) {
                                         if (old == 0) {
                                             // "Release" immediately.
                                             h.sys->l1(c).issueStore(
                                                 lock, 0, true,
                                                 [&, c](std::uint64_t) {
                                                     spin(c);
                                                 });
                                         } else {
                                             spin(c);
                                         }
                                     });
        });
    };
    for (CoreId c = 0; c < n_cores; ++c)
        spin(c);
    while (active > 0) {
        h.sim.step();
        ASSERT_LT(h.sim.now(), 2000000u) << "lock storm deadlocked";
    }
}

TEST(Inpg, TransparencyLockStormKeepsGoldenChain)
{
    InpgHarness h(8); // half the 16 nodes are big routers
    Addr lock = h.sys->cohConfig().lineHomedAt(10);
    runLockStorm(h, lock, 8, 16);
    EXPECT_EQ(h.golden.verify(), "");
    EXPECT_EQ(h.sys->checkSwmr(lock), "");
    // Under this contention the big routers must have fired.
    EXPECT_GT(h.totalEarlyInvs(), 0u);
}

TEST(Inpg, NoBigRoutersMeansNoEarlyInvs)
{
    InpgHarness h(0);
    Addr lock = h.sys->cohConfig().lineHomedAt(10);
    runLockStorm(h, lock, 4, 16);
    EXPECT_EQ(h.totalEarlyInvs(), 0u);
    EXPECT_EQ(h.golden.verify(), "");
}

TEST(Inpg, ResultsIdenticalWithAndWithoutBigRouters)
{
    // iNPG is a pure performance mechanism: the set of observed swap
    // winners per round and final memory values must be unchanged.
    std::set<std::uint64_t> winners_base;
    std::set<std::uint64_t> winners_inpg;
    for (int big : {0, 8}) {
        InpgHarness h(big);
        Addr lock = h.sys->cohConfig().lineHomedAt(5);
        runLockStorm(h, lock, 6, 16);
        ASSERT_EQ(h.golden.verify(), "");
        std::uint64_t acquisitions = 0;
        for (const auto &r : h.golden.records()) {
            if (r.kind == OpRecord::Kind::Atomic && r.oldValue == 0)
                ++acquisitions;
        }
        if (big == 0)
            winners_base.insert(acquisitions);
        else
            winners_inpg.insert(acquisitions);
        EXPECT_EQ(h.golden.finalValue(lock), 0u);
    }
    // Both runs completed all rounds; acquisition counts are positive.
    EXPECT_FALSE(winners_base.empty());
    EXPECT_FALSE(winners_inpg.empty());
}

TEST(Inpg, RandomSoupWithBigRoutersKeepsInvariants)
{
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
        InpgHarness h(8);
        Rng rng(seed);
        const int n_cores = 16;
        std::vector<Addr> addrs;
        for (int i = 0; i < 4; ++i)
            addrs.push_back(h.cohCfg.lineHomedAt(
                static_cast<NodeId>(rng.nextBounded(16))));
        std::vector<int> remaining(n_cores, 25);
        int active = n_cores;
        std::function<void(CoreId)> next = [&](CoreId c) {
            if (remaining[static_cast<std::size_t>(c)]-- <= 0) {
                --active;
                return;
            }
            Addr a = addrs[rng.nextBounded(4)];
            switch (rng.nextBounded(3)) {
              case 0:
                h.sys->l1(c).issueLoad(a, true, [&next, c](std::uint64_t) {
                    next(c);
                });
                break;
              case 1:
                h.sys->l1(c).issueStore(a, rng.nextBounded(50), true,
                                        [&next, c](std::uint64_t) {
                                            next(c);
                                        });
                break;
              default:
                h.sys->l1(c).issueAtomic(
                    a, AtomicOp::Swap, rng.nextBounded(50), 0, true,
                    [&next, c](std::uint64_t, bool) { next(c); });
                break;
            }
        };
        for (CoreId c = 0; c < n_cores; ++c)
            next(c);
        while (active > 0) {
            h.sim.step();
            for (Addr a : addrs)
                ASSERT_EQ(h.sys->checkSwmr(a), "")
                    << "seed " << seed << " cycle " << h.sim.now();
            ASSERT_LT(h.sim.now(), 500000u);
        }
        EXPECT_EQ(h.golden.verify(), "") << "seed " << seed;
    }
}

TEST(Inpg, EarlyInvalidationShortensRoundTrips)
{
    // Same storm, with and without iNPG; the mean Inv-Ack round trip
    // must drop and the long tail shrink (paper Figure 10).
    double mean_base = 0;
    double mean_inpg = 0;
    double early_mean = 0;
    double home_mean_inpg = 0;
    for (int big : {0, 8}) {
        InpgHarness h(big);
        Addr lock = h.sys->cohConfig().lineHomedAt(5);
        runLockStorm(h, lock, 8, 16);
        ASSERT_EQ(h.golden.verify(), "");
        if (big == 0) {
            mean_base = h.sys->cohStats().rttHistogram.mean();
            EXPECT_EQ(h.sys->cohStats().rttEarly.count(), 0u);
        } else {
            mean_inpg = h.sys->cohStats().rttHistogram.mean();
            early_mean = h.sys->cohStats().rttEarly.mean();
            home_mean_inpg = h.sys->cohStats().rttHome.mean();
            EXPECT_GT(h.sys->cohStats().rttEarly.count(), 0u);
        }
    }
    EXPECT_GT(mean_base, 0.0);
    EXPECT_GT(mean_inpg, 0.0);
    EXPECT_LT(mean_inpg, mean_base);
    // Locality: the big-router round trips are shorter than the
    // home-node ones within the same run. (The full tail-collapse
    // comparison runs on the 8x8 system in bench_fig10_rtt.)
    if (home_mean_inpg > 0)
        EXPECT_LT(early_mean, home_mean_inpg);
}

} // namespace
} // namespace inpg
