/**
 * @file
 * Parallel-kernel equivalence tests: the tile-sharded kernel
 * (src/sim/parallel) must be bit-identical in simulated results to
 * the serial kernel at every thread count -- workload fingerprints,
 * full stats-JSON snapshots, and seeded-hang reports all byte-equal
 * -- and hand the simulator back to serial stepping unchanged after
 * shutdown(). Also covers the lookahead quantum with creditLatency
 * >= 2, the mesh=WxH preset, and the sweep thread-budget arbiter.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/config.hh"
#include "harness/sweep_runner.hh"
#include "harness/system.hh"
#include "noc/network.hh"
#include "sim/parallel/parallel_kernel.hh"
#include "telemetry/watchdog.hh"
#include "workload/benchmark_profile.hh"
#include "workload/workload.hh"

namespace inpg {
namespace {

/** Everything a run can legally differ in shows up in these fields. */
struct Fingerprint {
    Cycle simCycles = 0;
    Cycle roiCycles = 0;
    std::uint64_t csCompleted = 0;
    Cycle parallelCycles = 0;
    Cycle cohCycles = 0;
    Cycle sleepCycles = 0;
    Cycle cseCycles = 0;
    std::uint64_t earlyInvs = 0;
    std::uint64_t flitsSent = 0;

    bool
    operator==(const Fingerprint &o) const
    {
        return simCycles == o.simCycles && roiCycles == o.roiCycles &&
               csCompleted == o.csCompleted &&
               parallelCycles == o.parallelCycles &&
               cohCycles == o.cohCycles && sleepCycles == o.sleepCycles &&
               cseCycles == o.cseCycles && earlyInvs == o.earlyInvs &&
               flitsSent == o.flitsSent;
    }
};

struct RunSpec {
    int threads = 1;
    int mesh = 4;
    Mechanism mech = Mechanism::Original;
    const char *bench = "freq";
    double csScale = 0.05;
    bool statsJson = false;
};

Fingerprint
runOnce(const RunSpec &spec, std::string *stats_json = nullptr)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = spec.mesh;
    cfg.noc.meshHeight = spec.mesh;
    cfg.mechanism = spec.mech;
    cfg.lockKind = LockKind::Qsl;
    cfg.threads = spec.threads;
    cfg.finalize();

    System system(cfg);
    EXPECT_EQ(system.parallelKernel() != nullptr, spec.threads > 1);

    Workload::Params wp;
    wp.profile = benchmarkByName(spec.bench);
    wp.threads = cfg.numCores();
    wp.csScale = spec.csScale;
    wp.lockKind = cfg.lockKind;
    wp.seed = cfg.seed;
    Workload workload(wp, system.coherent(), system.locks(),
                      system.sim());
    workload.start();
    system.runUntil([&] { return workload.done(); });

    Fingerprint f;
    f.simCycles = system.sim().now();
    f.roiCycles = workload.roiFinish();
    f.csCompleted = workload.csCompleted();
    f.parallelCycles = workload.totalCycles(ThreadPhase::Parallel);
    f.cohCycles = workload.totalCycles(ThreadPhase::Coh);
    f.sleepCycles = workload.totalCycles(ThreadPhase::Sleep);
    f.cseCycles = workload.totalCycles(ThreadPhase::Cse);
    f.earlyInvs = system.totalEarlyInvs();
    for (NodeId n = 0; n < system.coherent().network().numRouters();
         ++n)
        f.flitsSent += system.coherent().network().router(n)
                           .stats.value("flits_sent");
    if (stats_json) {
        // Exclude the host-time self-profile: everything else in the
        // snapshot is simulated state and must match across thread
        // counts (the profile itself is covered by its own test).
        *stats_json = system.statsSnapshot(false).dump(2);
    }
    return f;
}

TEST(ParallelKernel, FingerprintMatchesSerialOn4x4)
{
    RunSpec serial;
    Fingerprint ref = runOnce(serial);
    for (int t : {2, 4, 8}) {
        RunSpec par = serial;
        par.threads = t;
        EXPECT_TRUE(runOnce(par) == ref) << "threads=" << t;
    }
}

TEST(ParallelKernel, FingerprintMatchesSerialOn8x8)
{
    RunSpec serial;
    serial.mesh = 8;
    serial.csScale = 0.02;
    Fingerprint ref = runOnce(serial);
    for (int t : {2, 4}) {
        RunSpec par = serial;
        par.threads = t;
        EXPECT_TRUE(runOnce(par) == ref) << "threads=" << t;
    }
}

TEST(ParallelKernel, FingerprintMatchesSerialWithInpg)
{
    RunSpec serial;
    serial.mesh = 8;
    serial.mech = Mechanism::Inpg;
    serial.csScale = 0.02;
    Fingerprint ref = runOnce(serial);
    RunSpec par = serial;
    par.threads = 4;
    EXPECT_TRUE(runOnce(par) == ref);
}

TEST(ParallelKernel, FingerprintMatchesSerialOn16x16)
{
    RunSpec serial;
    serial.mesh = 16;
    serial.csScale = 0.005;
    Fingerprint ref = runOnce(serial);
    RunSpec par = serial;
    par.threads = 4;
    EXPECT_TRUE(runOnce(par) == ref);
}

TEST(ParallelKernel, StatsSnapshotByteIdentical)
{
    // The full machine-readable stats surface -- every router, NI,
    // directory, L1 and lock counter -- must match, not just the
    // workload-level fingerprint.
    RunSpec serial;
    serial.mech = Mechanism::Inpg;
    std::string ref, par_json;
    runOnce(serial, &ref);
    RunSpec par = serial;
    par.threads = 4;
    runOnce(par, &par_json);
    EXPECT_EQ(ref, par_json);
}

TEST(ParallelKernel, SelfProfileSurfacesInSnapshot)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = 4;
    cfg.noc.meshHeight = 4;
    cfg.threads = 4;
    cfg.finalize();
    System system(cfg);
    ASSERT_NE(system.parallelKernel(), nullptr);

    Workload::Params wp;
    wp.profile = benchmarkByName("freq");
    wp.threads = cfg.numCores();
    wp.csScale = 0.05;
    wp.lockKind = cfg.lockKind;
    wp.seed = cfg.seed;
    Workload w(wp, system.coherent(), system.locks(), system.sim());
    w.start();
    system.runUntil([&] { return w.done(); });

    const ParallelProfile &prof = system.parallelKernel()->profile();
    EXPECT_GT(prof.quantaCount(), 0u);
    EXPECT_EQ(prof.quantaCount(),
              prof.barrierCount() + prof.barriersElidedCount());

    const JsonValue snap = system.statsSnapshot();
    const JsonValue *pp = snap.find("parallel_profile");
    ASSERT_NE(pp, nullptr);
    EXPECT_EQ(pp->at("threads").asInt(0), 4);
    EXPECT_GT(pp->at("quanta").asUint(0), 0u);
    EXPECT_GT(pp->at("drained_flits").asUint(0), 0u);
    // Host section: one busy/wait slot per worker thread.
    const JsonValue &workers = pp->at("host").at("workers");
    ASSERT_EQ(workers.size(), 3u);
    std::uint64_t busy = 0;
    for (std::size_t i = 0; i < workers.size(); ++i)
        busy += workers.item(i).at("busy_ns").asUint(0);
    EXPECT_GT(busy, 0u);

    // Serial systems must not grow the section (byte-identity with
    // pre-profiler snapshots is asserted elsewhere).
    SystemConfig scfg;
    scfg.noc.meshWidth = 2;
    scfg.noc.meshHeight = 2;
    scfg.finalize();
    System serial(scfg);
    serial.sim().run(10);
    EXPECT_EQ(serial.statsSnapshot().find("parallel_profile"), nullptr);
}

/**
 * Seeded protocol hang under full diagnosis instrumentation
 * (watchdog + flight recorder + packet-lifetime tracking). The hang
 * report dumps router pipeline state, in-flight packet waterfalls and
 * the recorder ring; all of it must be byte-identical when the fabric
 * ran sharded -- this is what makes --threads an honest debugging
 * tool, not just a fast one.
 */
std::string
hangReport(int threads)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = 4;
    cfg.noc.meshHeight = 4;
    cfg.lockKind = LockKind::Tas;
    cfg.threads = threads;
    cfg.coh.dropDirResponseNth = 1;
    cfg.telemetry.watchdogWindow = 50000;
    cfg.telemetry.recorder = true;
    cfg.telemetry.packets = true;
    cfg.finalize();
    System system(cfg);

    Workload::Params wp;
    wp.profile = benchmarkByName("freq");
    wp.threads = cfg.numCores();
    wp.csScale = 0.01;
    wp.lockKind = cfg.lockKind;
    Workload w(wp, system.coherent(), system.locks(), system.sim());
    w.start();
    try {
        system.runUntil([&] { return w.done(); }, 5000000);
    } catch (const SimHangError &e) {
        return e.reportJson();
    }
    ADD_FAILURE() << "seeded hang did not trip the watchdog";
    return std::string();
}

TEST(ParallelKernel, SeededHangReportByteIdentical)
{
    std::string serial = hangReport(1);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, hangReport(4));
}

/** Standalone NoC harness (no coherence layer) for kernel-level tests. */
struct NocHarness {
    NocHarness(int w, int h, Cycle credit_latency = 1)
    {
        cfg.meshWidth = w;
        cfg.meshHeight = h;
        cfg.creditLatency = credit_latency;
        net = std::make_unique<Network>(cfg, sim);
        for (NodeId id = 0; id < net->numNodes(); ++id) {
            net->niFor(id).setDeliverCallback(
                id, [this, id](const PacketPtr &pkt, Cycle now) {
                    (void)now;
                    ++delivered[pkt->id];
                    lastDst[pkt->id] = id;
                });
        }
    }

    void
    injectAll()
    {
        // A deterministic all-to-one + neighbor pattern crossing every
        // vertical tile boundary.
        for (NodeId src = 0; src < net->numNodes(); ++src) {
            NodeId dst = static_cast<NodeId>(
                (src * 7 + 3) % net->numNodes());
            net->inject(net->makePacket(src, dst, src % 3, 1 + src % 4),
                        sim.now());
        }
    }

    std::uint64_t
    flitsSent() const
    {
        return net->routerCounterTotal("flits_sent");
    }

    NocConfig cfg;
    Simulator sim;
    std::unique_ptr<Network> net;
    std::map<PacketId, int> delivered;
    std::map<PacketId, NodeId> lastDst;
};

TEST(ParallelKernel, LookaheadFollowsCreditLatency)
{
    // Default latencies give lookahead 1; a 2-cycle credit loop
    // stretches the conservative quantum to 2.
    NocHarness h1(4, 4);
    ParallelKernel k1(h1.sim, *h1.net, 2);
    EXPECT_EQ(k1.lookahead(), 1u);

    NocHarness h2(4, 4, 2);
    ParallelKernel k2(h2.sim, *h2.net, 2);
    EXPECT_EQ(k2.lookahead(), 2u);
}

TEST(ParallelKernel, MultiCycleQuantumMatchesSerial)
{
    // With creditLatency=2 the kernel may batch 2 cycles per barrier;
    // the simulated outcome must still match the serial kernel cycle
    // for cycle.
    const Cycle span = 400;
    NocHarness serial(4, 4, 2);
    serial.injectAll();
    serial.sim.run(span);

    NocHarness par(4, 4, 2);
    par.injectAll();
    ParallelKernel k(par.sim, *par.net, 4);
    EXPECT_EQ(k.lookahead(), 2u);
    par.sim.run(span);
    k.shutdown();

    EXPECT_EQ(par.sim.now(), serial.sim.now());
    EXPECT_EQ(par.delivered, serial.delivered);
    EXPECT_EQ(par.lastDst, serial.lastDst);
    EXPECT_EQ(par.flitsSent(), serial.flitsSent());
}

TEST(ParallelKernel, ShutdownHandsBackSerialStepping)
{
    // Run the first half sharded, shut the kernel down mid-flight,
    // finish serially; every simulated observable must match a run
    // that was serial throughout.
    const Cycle half = 40, full = 400;
    NocHarness serial(4, 4);
    serial.injectAll();
    serial.sim.run(full);

    NocHarness par(4, 4);
    par.injectAll();
    {
        ParallelKernel k(par.sim, *par.net, 4);
        EXPECT_GT(k.stolenComponents(), 0u);
        EXPECT_GT(k.boundaryChannels(), 0u);
        par.sim.run(half);
        k.shutdown();
    }
    par.sim.run(full - half);

    EXPECT_EQ(par.sim.now(), serial.sim.now());
    EXPECT_EQ(par.delivered, serial.delivered);
    EXPECT_EQ(par.flitsSent(), serial.flitsSent());
    EXPECT_TRUE(par.net->quiescent());
}

TEST(ParallelKernel, MeshPresetParsesWxH)
{
    Config overrides;
    overrides.loadString("mesh = 16x16\nthreads = 4\n");
    SystemConfig cfg;
    cfg.applyOverrides(overrides);
    EXPECT_EQ(cfg.noc.meshWidth, 16);
    EXPECT_EQ(cfg.noc.meshHeight, 16);
    EXPECT_EQ(cfg.threads, 4);

    // Explicit dimension keys still win over the preset.
    Config both;
    both.loadString("mesh = 16x16\nmesh_width = 8\nmesh_height = 4\n");
    SystemConfig cfg2;
    cfg2.applyOverrides(both);
    EXPECT_EQ(cfg2.noc.meshWidth, 8);
    EXPECT_EQ(cfg2.noc.meshHeight, 4);
}

TEST(ParallelKernel, ThreadsClampToSaneRange)
{
    Config overrides;
    overrides.loadString("threads = 0\n");
    SystemConfig cfg;
    cfg.applyOverrides(overrides);
    EXPECT_EQ(cfg.threads, 1);

    Config big;
    big.loadString("threads = 9999\n");
    SystemConfig cfg2;
    cfg2.applyOverrides(big);
    EXPECT_EQ(cfg2.threads, 64);
}

TEST(ParallelKernel, SweepThreadBudgetArbitration)
{
    // Serial runs stay serial regardless of the sweep width.
    EXPECT_EQ(perRunThreadBudget(8, 1, 16), 1);
    // A lone sweep worker hands the whole host to the run.
    EXPECT_EQ(perRunThreadBudget(1, 8, 16), 8);
    // Concurrent runs split the host evenly...
    EXPECT_EQ(perRunThreadBudget(4, 8, 16), 4);
    // ...but a request below the share is honored as-is...
    EXPECT_EQ(perRunThreadBudget(4, 2, 16), 2);
    // ...and oversubscribed hosts degrade to serial runs.
    EXPECT_EQ(perRunThreadBudget(16, 8, 4), 1);
}

} // namespace
} // namespace inpg
