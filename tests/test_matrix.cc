/**
 * @file
 * Full cross-matrix integration sweep: every locking primitive under
 * every mechanism runs a contended workload to completion on a small
 * mesh, with the golden memory model attached and invariants checked.
 * This is the suite that guards the combinatorial surface (e.g. an
 * iNPG change that only breaks ABQL under OCOR).
 */

#include <gtest/gtest.h>

#include "coh/golden_memory.hh"
#include "harness/system.hh"
#include "workload/workload.hh"

namespace inpg {
namespace {

struct MatrixCase {
    LockKind lock;
    Mechanism mech;
};

std::string
caseName(const ::testing::TestParamInfo<MatrixCase> &info)
{
    std::string m;
    switch (info.param.mech) {
      case Mechanism::Original:
        m = "Original";
        break;
      case Mechanism::Ocor:
        m = "OCOR";
        break;
      case Mechanism::Inpg:
        m = "iNPG";
        break;
      case Mechanism::InpgOcor:
        m = "iNPGplusOCOR";
        break;
    }
    return std::string(lockKindName(info.param.lock)) + "_" + m;
}

class MechanismLockMatrix : public ::testing::TestWithParam<MatrixCase>
{};

TEST_P(MechanismLockMatrix, ContendedRunCompletesConsistently)
{
    const MatrixCase mc = GetParam();
    SystemConfig cfg;
    cfg.noc.meshWidth = 4;
    cfg.noc.meshHeight = 4;
    cfg.lockKind = mc.lock;
    cfg.mechanism = mc.mech;
    cfg.inpg.numBigRouters = 8;
    cfg.finalize();
    System system(cfg);

    GoldenMemory golden;
    system.coherent().setOpLog(
        [&golden](const OpRecord &r) { golden.record(r); });

    Workload::Params wp;
    wp.profile = benchmarkByName("fluid"); // contended, multi-lock
    wp.threads = cfg.numCores();
    wp.csScale = 0.05;
    wp.lockKind = mc.lock;
    Workload w(wp, system.coherent(), system.locks(), system.sim());
    for (const auto &kv : system.locks().initialValues())
        golden.setInitial(kv.first, kv.second);
    w.start();
    system.runUntil([&] { return w.done(); }, 30000000);

    // Exact completion accounting.
    EXPECT_EQ(w.csCompleted(),
              static_cast<std::uint64_t>(w.csTargetPerThread()) *
                  static_cast<std::uint64_t>(cfg.numCores()));
    // Sequential-consistency reference over every executed operation.
    EXPECT_EQ(golden.verify(), "");
    // Every lock's acquisitions balance its releases and the mutual-
    // exclusion guard never fired (it panics on violation).
    for (const auto &lock : system.locks().locks()) {
        EXPECT_EQ(lock->stats.value("acquisitions"),
                  lock->stats.value("releases"));
        EXPECT_EQ(lock->holders(), 0);
    }
    // iNPG fires exactly when deployed.
    if (usesInpg(mc.mech))
        EXPECT_EQ(system.deployedBigRouters(), 8);
    else
        EXPECT_EQ(system.totalEarlyInvs(), 0u);
}

std::vector<MatrixCase>
allCases()
{
    std::vector<MatrixCase> cases;
    for (LockKind k : {LockKind::Tas, LockKind::Ticket, LockKind::Abql,
                       LockKind::Mcs, LockKind::Qsl})
        for (Mechanism m : ALL_MECHANISMS)
            cases.push_back({k, m});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, MechanismLockMatrix,
                         ::testing::ValuesIn(allCases()), caseName);

} // namespace
} // namespace inpg
